#!/usr/bin/env bash
# Cross-backend determinism gate: the simulation's observable outputs —
# simulated results, trace spans, and the dacc::obs metrics snapshot — must
# be bit-identical under the coroutine, thread, and parallel execution
# backends.
#
# Two layers of checking:
#   1. ctest: the in-process determinism suites (tests/sim, tests/obs) and
#      every obs-labelled smoke test.
#   2. process-level: run examples/metrics_dump once per backend via
#      DACC_SIM_BACKEND and byte-compare the exported JSON + Prometheus
#      snapshots across the three runs.
#
#   $ scripts/check_determinism.sh [build-dir]
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build="${1:-$repo/build-det}"

cmake -B "$build" -S "$repo" \
  -DCMAKE_BUILD_TYPE=Release \
  -DDACC_BUILD_BENCHMARKS=OFF \
  -DDACC_BUILD_EXAMPLES=ON
cmake --build "$build" -j "$(nproc)"

# In-process determinism + observability suites.
ctest --test-dir "$build" --output-on-failure -j "$(nproc)" \
  -R 'Determinism|ObsDeterminism'
ctest --test-dir "$build" --output-on-failure -j "$(nproc)" -L obs

# Process-level: identical metrics snapshots from separate processes pinned
# to each backend.
out="$build/det-snapshots"
mkdir -p "$out"
for backend in coroutine thread parallel:4; do
  tag="${backend/:/_}"
  (cd "$out" && DACC_SIM_BACKEND="$backend" \
    "$build/examples/metrics_dump" "metrics_$tag" > "run_$tag.log")
done

for ext in json prom; do
  cmp "$out/metrics_coroutine.$ext" "$out/metrics_thread.$ext"
  cmp "$out/metrics_coroutine.$ext" "$out/metrics_parallel_4.$ext"
done

# Per-shard era series (windows entered, horizon stalls, inbox batches):
# registered by the parallel backend only, and deterministic — a replay
# with the same shard map reproduces them byte for byte. Sequential
# backends must not register any.
for tag in coroutine thread; do
  if [ -s "$out/metrics_$tag.shard.prom" ]; then
    echo "unexpected shard series under the $tag backend" >&2
    exit 1
  fi
done
grep -q 'dacc_sim_shard_windows_total' "$out/metrics_parallel_4.shard.prom"
grep -q 'dacc_sim_shard_horizon_stalls_total' \
  "$out/metrics_parallel_4.shard.prom"
grep -q 'dacc_sim_shard_inbox_batch' "$out/metrics_parallel_4.shard.prom"
(cd "$out" && DACC_SIM_BACKEND=parallel:4 \
  "$build/examples/metrics_dump" "metrics_replay" > "run_replay.log")
cmp "$out/metrics_parallel_4.shard.prom" "$out/metrics_replay.shard.prom"

# Wallclock profiler tier (DESIGN.md §9.2): with DACC_PROF=1 the profiler
# attaches and exports dacc_prof_* series to a separate .prof.prom file —
# the deterministic snapshot must stay byte-identical to the unprofiled
# runs above, and no dacc_prof_ series may leak into it.
for backend in coroutine thread parallel:4; do
  tag="${backend/:/_}"
  (cd "$out" && DACC_SIM_BACKEND="$backend" DACC_PROF=1 \
    "$build/examples/metrics_dump" "metrics_prof_$tag" \
    > "run_prof_$tag.log")
done

for ext in json prom; do
  for tag in coroutine thread parallel_4; do
    cmp "$out/metrics_coroutine.$ext" "$out/metrics_prof_$tag.$ext"
  done
done

for tag in coroutine thread parallel_4; do
  if [ ! -s "$out/metrics_prof_$tag.prof.prom" ]; then
    echo "profiler enabled but no wallclock series exported ($tag)" >&2
    exit 1
  fi
  if grep -q 'dacc_prof_' "$out/metrics_prof_$tag.prom"; then
    echo "wallclock series leaked into the deterministic snapshot ($tag)" >&2
    exit 1
  fi
done

# Batched command streams: repeat the process-level check with DACC_RPC_BATCH
# coalescing small ops into kBatch frames. The frame boundaries (rpc message
# counts, flush-size histograms) land in the snapshot, so this also pins the
# coalescing itself to be backend-invariant.
for backend in coroutine thread parallel:4; do
  tag="${backend/:/_}"
  (cd "$out" && DACC_SIM_BACKEND="$backend" DACC_RPC_BATCH=8 \
    "$build/examples/metrics_dump" "metrics_batch_$tag" > "run_batch_$tag.log")
done

for ext in json prom; do
  cmp "$out/metrics_batch_coroutine.$ext" "$out/metrics_batch_thread.$ext"
  cmp "$out/metrics_batch_coroutine.$ext" "$out/metrics_batch_parallel_4.$ext"
done

# Replicated ARM (DESIGN.md §11): a whole chaos schedule — elections,
# a seeded leader kill, failover, re-election — must replay identically
# under every backend AND shard count. raft_dump exits nonzero unless the
# kill landed and the pool drained; its .raft digest carries the full
# election history, so the byte-compare pins election timing itself.
for backend in coroutine thread parallel:1 parallel:4 parallel:8; do
  tag="${backend/:/_}"
  (cd "$out" && DACC_SIM_BACKEND="$backend" \
    "$build/examples/raft_dump" "raft_$tag" 42 > "run_raft_$tag.log")
done

for ext in json prom raft; do
  for tag in thread parallel_1 parallel_4 parallel_8; do
    cmp "$out/raft_coroutine.$ext" "$out/raft_$tag.$ext"
  done
done

# Typed scheduler chaos (DESIGN.md §13): mixed priority classes, a kind- and
# memory-constrained heterogeneous pool, an arrival-triggered preemption with
# transparent replay, and a post-settlement leader kill. sched_dump exits
# nonzero unless exactly one preemption and one replacement happened and the
# per-priority assign-wait SLOs pass; its .sched digest carries the election
# history, pool counters, SLO table and replica fingerprints, so the
# byte-compare pins every scheduling decision across backends and shard
# counts.
for backend in coroutine thread parallel:1 parallel:4 parallel:8; do
  tag="${backend/:/_}"
  (cd "$out" && DACC_SIM_BACKEND="$backend" \
    "$build/examples/sched_dump" "sched_$tag" 42 > "run_sched_$tag.log")
done

for ext in json prom sched; do
  for tag in thread parallel_1 parallel_4 parallel_8; do
    cmp "$out/sched_coroutine.$ext" "$out/sched_$tag.$ext"
  done
done

echo "determinism check passed: metrics snapshots identical across backends (plain + profiled + batched + replicated-ARM chaos + scheduler chaos)"
