#!/usr/bin/env bash
# Tier-1 test suite under ThreadSanitizer.
#
# TSan is the proof vehicle for the parallel execution backend: the build
# pins thread strands (DACC_SIM_FORCE_THREAD_BACKEND, set automatically by
# CMake when DACC_SANITIZE is active) so every context switch is a real OS
# hand-off TSan can follow, and the run exports DACC_SIM_BACKEND=parallel
# with a multi-thread worker pool so the window barriers, staged inboxes
# and cross-shard wakes all execute on genuinely concurrent threads.
# Benchmarks and examples are skipped: they add nothing to the
# thread-safety surface and triple the build time.
#
#   $ scripts/check_tsan.sh [build-dir]
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build="${1:-$repo/build-tsan}"

cmake -B "$build" -S "$repo" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDACC_SANITIZE=thread \
  -DDACC_BUILD_BENCHMARKS=OFF \
  -DDACC_BUILD_EXAMPLES=OFF
cmake --build "$build" -j "$(nproc)"

# Pass 1: default backend selection (thread strands, serial scheduler).
ctest --test-dir "$build" --output-on-failure -j "$(nproc)"

# Pass 2: the parallel scheduler with real worker threads — four shards,
# two workers, so shard execution crosses OS threads even on small hosts.
DACC_SIM_BACKEND=parallel:4 DACC_SIM_PARALLEL_WORKERS=2 \
  ctest --test-dir "$build" --output-on-failure -j "$(nproc)"

# Pass 3: the 10k-node scaling scenario with a wider pool — four workers
# over sixteen shards, so the horizon publishes, staged-inbox absorbs and
# null-message pushes all cross OS threads at scale.
DACC_SIM_PARALLEL_WORKERS=4 \
  ctest --test-dir "$build" --output-on-failure -R 'ParallelScale'
