#!/usr/bin/env bash
# Tier-1 test suite under AddressSanitizer.
#
# The simulator's coroutine backend hand-switches stacks, which ASan cannot
# track, so the build pins the thread execution backend
# (DACC_SIM_FORCE_THREAD_BACKEND is set automatically by CMake when
# DACC_SANITIZE is active). Benchmarks and examples are skipped: they add
# nothing to the memory-safety surface and triple the build time.
#
#   $ scripts/check_asan.sh [build-dir]
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build="${1:-$repo/build-asan}"

cmake -B "$build" -S "$repo" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDACC_SANITIZE=address \
  -DDACC_BUILD_BENCHMARKS=OFF \
  -DDACC_BUILD_EXAMPLES=OFF
cmake --build "$build" -j "$(nproc)"
ctest --test-dir "$build" --output-on-failure -j "$(nproc)"
