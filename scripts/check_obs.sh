#!/usr/bin/env bash
# Observability gate (DESIGN.md §9): the two-tier contract in one script.
#
#   1. ctest -L obs: the metrics/trace/profiler/flight suites plus the
#      obs-labelled example smoke tests.
#   2. profiler on/off snapshot byte-compare: attaching the wallclock tier
#      (DACC_PROF=1) must not change one byte of the deterministic metrics
#      snapshot.
#   3. namespace collision check: the deterministic registry must never
#      carry a dacc_prof_ series, the profiler export must carry nothing
#      else, and no series name may appear twice in either exposition.
#
#   $ scripts/check_obs.sh [build-dir]
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build="${1:-$repo/build-obs}"

cmake -B "$build" -S "$repo" \
  -DCMAKE_BUILD_TYPE=Release \
  -DDACC_BUILD_BENCHMARKS=OFF \
  -DDACC_BUILD_EXAMPLES=ON
cmake --build "$build" -j "$(nproc)"

# 1. The observability suites and smoke tests.
ctest --test-dir "$build" --output-on-failure -j "$(nproc)" -L obs

out="$build/obs-snapshots"
mkdir -p "$out"

# 2. Profiler on vs. off: identical deterministic snapshots.
(cd "$out" && DACC_PROF=0 \
  "$build/examples/metrics_dump" "metrics_off" > "run_off.log")
(cd "$out" && DACC_PROF=1 \
  "$build/examples/metrics_dump" "metrics_on" > "run_on.log")
for ext in json prom; do
  cmp "$out/metrics_off.$ext" "$out/metrics_on.$ext"
done
if [ -e "$out/metrics_off.prof.prom" ]; then
  echo "profiler disabled but a wallclock export appeared" >&2
  exit 1
fi
if [ ! -s "$out/metrics_on.prof.prom" ]; then
  echo "profiler enabled but no wallclock series exported" >&2
  exit 1
fi

# 3. Namespace hygiene. The deterministic snapshot must not know the
# dacc_prof_ prefix; the wallclock export must use nothing else; neither
# exposition may register the same series name twice.
if grep -q 'dacc_prof_' "$out/metrics_on.prom"; then
  echo "dacc_prof_ series leaked into the deterministic snapshot" >&2
  exit 1
fi
if grep -v '^#' "$out/metrics_on.prof.prom" | grep -vq '^dacc_prof_'; then
  echo "wallclock export contains a series outside dacc_prof_" >&2
  exit 1
fi
for f in "$out/metrics_on.prom" "$out/metrics_on.prof.prom"; do
  dups="$(grep -v '^#' "$f" | awk '{print $1}' | sort | uniq -d)"
  if [ -n "$dups" ]; then
    echo "duplicate series in $f:" >&2
    echo "$dups" >&2
    exit 1
  fi
done

echo "obs check passed: suites green, profiler attach is snapshot-neutral, series namespaces disjoint and collision-free"
