// Scheduler scale bench (DESIGN.md §13): LeaseMachine::apply driven
// directly — no cluster, no fabric — so the measured cost is the decision
// path itself: indexed free-list grant, priority-ordered enqueue, and
// backfill drain on release. The sweep holds the workload shape fixed and
// grows only the pool (1k → 10k slots, half gpu / half mic) under a deep
// waiting queue (~1M queued requests across the sweep); with the
// per-(kind, memory)-class free-list indexes the per-decision cost must
// stay flat as the pool grows — a linear slot scan would show up as a
// 10x slope.
//
// Emits BENCH_sched.json (override with --out PATH); --quick shrinks the
// sweep for use as a ctest smoke test. Exits nonzero when the 10k/1k
// per-decision cost ratio exceeds the flatness bound.
//
//   $ ./bench/sched_scale [--quick] [--out BENCH_sched.json]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "arm/lease_machine.hpp"
#include "obs/metrics.hpp"
#include "proto/wire.hpp"
#include "util/buffer.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace dacc::bench {
namespace {

using arm::ArmOp;
using arm::ArmResult;
using arm::Command;
using arm::Effect;
using arm::LeaseMachine;
using arm::ResourceRequest;
using proto::WireReader;
using proto::WireWriter;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct HeldLease {
  std::uint64_t job = 0;
  dmpi::Rank daemon_rank = -1;
  std::uint64_t lease_id = 0;
};

Command acquire_command(const ResourceRequest& req) {
  Command c;
  c.client = 7;
  c.reply_tag =
      arm::kArmReplyTagBase + static_cast<int>(req.job);  // tag -> job
  c.op = static_cast<std::uint32_t>(ArmOp::kAcquire);
  WireWriter w;
  req.encode_body(w);
  c.body = w.finish();
  return c;
}

Command release_command(const HeldLease& h, int tag) {
  Command c;
  c.client = 7;
  // Unique per release and below the job tag range: the machine's
  // at-least-once reply cache is keyed on (client, tag), so a reused tag
  // would answer every later release from the cache without releasing.
  c.reply_tag = tag;
  c.op = static_cast<std::uint32_t>(ArmOp::kRelease);
  c.body = WireWriter{}
               .u64(h.job)
               .u64(static_cast<std::uint64_t>(h.daemon_rank))
               .u64(h.lease_id)
               .finish();
  return c;
}

/// Harvest granted leases out of an apply's reply effects. Reply tags carry
/// the requesting job id, so drain grants triggered by a release are
/// attributed to the right job.
void harvest_grants(const std::vector<Effect>& effects,
                    std::vector<HeldLease>& held, std::uint64_t* grants) {
  for (const Effect& e : effects) {
    if (e.kind != Effect::Kind::kReply || e.tag < arm::kArmReplyTagBase) {
      continue;
    }
    WireReader r(e.frame.view());
    if (static_cast<ArmResult>(r.u32()) != ArmResult::kOk) continue;
    const std::uint32_t n = r.u32();
    const auto job =
        static_cast<std::uint64_t>(e.tag - arm::kArmReplyTagBase);
    for (std::uint32_t i = 0; i < n; ++i) {
      const auto rank = static_cast<dmpi::Rank>(r.u64());
      held.push_back({job, rank, r.u64()});
      ++*grants;
    }
  }
}

/// Mixed request stream: 30% pinned to "gpu", 30% pinned to "mic" (half of
/// those via the memory constraint instead of the kind string), the rest
/// unconstrained; priorities spread over all four classes.
ResourceRequest mixed_request(std::uint64_t job, util::Rng& rng) {
  ResourceRequest rq;
  rq.job = job;
  rq.count = 1;
  rq.wait = true;
  rq.priority = static_cast<std::uint32_t>(rng.next_below(4));
  const std::uint64_t shape = rng.next_below(10);
  if (shape < 3) {
    rq.kind = "gpu";
  } else if (shape < 6) {
    if (shape == 3) {
      rq.memory_bytes = 6_GiB;  // only the 8 GiB mic class satisfies this
    } else {
      rq.kind = "mic";
    }
  }
  return rq;
}

struct SizeResult {
  int pool = 0;
  std::uint64_t queued = 0;
  std::uint64_t applies = 0;
  std::uint64_t grants = 0;
  double fill_ns_per_op = 0.0;
  double enqueue_ns_per_op = 0.0;
  double drain_ns_per_op = 0.0;
  // Per-priority assign-wait quantiles (sim-time ns; now advances 1 us per
  // applied command, so waits are queue depth in command ticks).
  std::uint64_t wait_p50[arm::kPriorityClasses] = {};
  std::uint64_t wait_p99[arm::kPriorityClasses] = {};
};

SizeResult run_size(int pool_size, std::uint64_t queue_depth,
                    std::uint64_t seed) {
  std::vector<arm::AcceleratorInfo> pool;
  pool.reserve(static_cast<std::size_t>(pool_size));
  for (int i = 0; i < pool_size; ++i) {
    const bool gpu = (i % 2) == 0;
    pool.push_back({/*daemon_rank=*/1000 + i, gpu ? "c1060" : "knc",
                    gpu ? "gpu" : "mic", gpu ? 4_GiB : 8_GiB});
  }
  // Backfill keeps a kind-blocked queue head from stalling the drain; the
  // priority ordering on top of it is what the bench exercises.
  LeaseMachine machine(std::move(pool), arm::QueuePolicy::kBackfill);
  obs::Registry registry;
  machine.bind_metrics(&registry);

  util::Rng rng(seed);
  SimTime now = 0;
  SizeResult res;
  res.pool = pool_size;
  res.queued = queue_depth;
  std::vector<HeldLease> held;
  held.reserve(static_cast<std::size_t>(pool_size) + queue_depth);
  std::uint64_t job = 1;

  auto apply = [&](const Command& c) {
    now += 1_us;
    const arm::ApplyResult r = machine.apply(c, now);
    ++res.applies;
    harvest_grants(r.effects, held, &res.grants);
  };

  // Phase A — fill: unconstrained count-1 grants until every slot is
  // assigned. Pure indexed-grant path. Slots are taken at the top priority
  // so phase B measures the enqueue path alone: no arrival ever finds a
  // lower-priority victim, which pins the indexed no-victim preemption
  // check (the eviction path itself is covered by tests/arm).
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < pool_size; ++i) {
    ResourceRequest rq;
    rq.job = job++;
    rq.count = 1;
    rq.wait = false;
    rq.priority = arm::kPriorityUrgent;
    apply(acquire_command(rq));
  }
  res.fill_ns_per_op =
      seconds_since(t0) * 1e9 / static_cast<double>(pool_size);

  // Phase B — load: `queue_depth` mixed waiting requests against the full
  // pool. Pure priority-ordered enqueue path (arrival preemption never
  // fires: every slot owner holds top priority, so the indexed victim
  // count comes back zero on each arrival).
  t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < queue_depth; ++i) {
    apply(acquire_command(mixed_request(job++, rng)));
  }
  res.enqueue_ns_per_op =
      seconds_since(t0) * 1e9 / static_cast<double>(queue_depth);

  // Phase C — churn: release held leases round-robin; every release
  // backfills from the queue, so each apply is one release + one indexed
  // re-grant decision. Runs until the queue is dry.
  std::size_t next = 0;
  int release_tag = 1;
  std::uint64_t churn_applies = 0;
  const std::uint64_t cap = 4 * (queue_depth + res.grants);
  t0 = std::chrono::steady_clock::now();
  while (machine.stats().queued_requests > 0 && churn_applies < cap) {
    if (next >= held.size()) {
      std::fprintf(stderr, "sched_scale: no held lease left to release "
                           "(pool %d)\n", res.pool);
      break;
    }
    apply(release_command(held[next++], release_tag++));
    ++churn_applies;
  }
  res.drain_ns_per_op =
      seconds_since(t0) * 1e9 / static_cast<double>(churn_applies);

  for (std::uint32_t c = 0; c < arm::kPriorityClasses; ++c) {
    const obs::Hist h = registry.hist(obs::labeled(
        "dacc_arm_assign_wait_ns", "prio", arm::priority_class_name(c)));
    res.wait_p50[c] = h.p50();
    res.wait_p99[c] = h.p99();
  }
  machine.bind_metrics(nullptr);
  return res;
}

int run(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_sched.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  const std::vector<int> sizes =
      quick ? std::vector<int>{512, 2048}
            : std::vector<int>{1000, 2000, 5000, 10'000};
  const std::uint64_t queue_depth = quick ? 20'000 : 250'000;

  std::printf("scheduler scale bench%s: %zu pool sizes, %llu queued "
              "requests each\n",
              quick ? " (quick)" : "", sizes.size(),
              static_cast<unsigned long long>(queue_depth));

  std::vector<SizeResult> results;
  for (const int n : sizes) {
    const SizeResult r = run_size(n, queue_depth, /*seed=*/0x5C43D);
    results.push_back(r);
    std::printf(
        "  pool %5d: fill %7.0f ns/op  enqueue %7.0f ns/op  drain %7.0f "
        "ns/op  (%llu applies, %llu grants)\n",
        r.pool, r.fill_ns_per_op, r.enqueue_ns_per_op, r.drain_ns_per_op,
        static_cast<unsigned long long>(r.applies),
        static_cast<unsigned long long>(r.grants));
    for (std::uint32_t c = 0; c < arm::kPriorityClasses; ++c) {
      std::printf("    %-6s assign-wait p50 %9llu ns  p99 %9llu ns\n",
                  arm::priority_class_name(c),
                  static_cast<unsigned long long>(r.wait_p50[c]),
                  static_cast<unsigned long long>(r.wait_p99[c]));
    }
  }

  // Flatness: indexed decisions must not scale with the pool. The bound is
  // loose (wall-clock noise on shared hosts) — a linear scan would blow
  // past it by an order of magnitude.
  const double bound = 3.0;
  const SizeResult& lo = results.front();
  const SizeResult& hi = results.back();
  const double drain_ratio = hi.drain_ns_per_op / lo.drain_ns_per_op;
  const double enqueue_ratio = hi.enqueue_ns_per_op / lo.enqueue_ns_per_op;
  std::printf(
      "flatness %d -> %d slots: drain x%.2f, enqueue x%.2f (bound x%.1f)\n",
      lo.pool, hi.pool, drain_ratio, enqueue_ratio, bound);

  std::ofstream json(out_path);
  json << "{\n"
       << "  \"bench\": \"sched_scale\",\n"
       << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
       << "  \"queued_per_size\": " << queue_depth << ",\n"
       << "  \"sizes\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SizeResult& r = results[i];
    json << "    {\"pool\": " << r.pool << ", \"applies\": " << r.applies
         << ", \"grants\": " << r.grants
         << ", \"fill_ns_per_op\": " << r.fill_ns_per_op
         << ", \"enqueue_ns_per_op\": " << r.enqueue_ns_per_op
         << ", \"drain_ns_per_op\": " << r.drain_ns_per_op
         << ",\n     \"assign_wait\": {";
    for (std::uint32_t c = 0; c < arm::kPriorityClasses; ++c) {
      json << "\"" << arm::priority_class_name(c)
           << "\": {\"p50_ns\": " << r.wait_p50[c]
           << ", \"p99_ns\": " << r.wait_p99[c] << "}"
           << (c + 1 < arm::kPriorityClasses ? ", " : "");
    }
    json << "}}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"flatness\": {\"drain_ratio\": " << drain_ratio
       << ", \"enqueue_ratio\": " << enqueue_ratio
       << ", \"bound\": " << bound << "}\n"
       << "}\n";
  json.flush();
  if (!json) {
    std::fprintf(stderr, "error: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());

  if (drain_ratio > bound || enqueue_ratio > bound) {
    std::fprintf(stderr,
                 "error: per-decision cost is not flat across the pool "
                 "sweep (drain x%.2f, enqueue x%.2f, bound x%.1f)\n",
                 drain_ratio, enqueue_ratio, bound);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dacc::bench

int main(int argc, char** argv) { return dacc::bench::run(argc, argv); }
