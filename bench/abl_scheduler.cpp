// Ablation D — the economy argument (paper Sections I/III): a static
// architecture binds one GPU to each compute node, so a job needing three
// GPUs must occupy three nodes, and a CPU-only job still locks up its
// node's GPU. The dynamic architecture draws accelerators from a shared
// pool through the ARM. Same arrival stream, same hardware total (4 compute
// nodes, 4 GPUs) — only the attachment (and, for the third row, the ARM's
// queue policy) differs.
#include <deque>

#include "arm/arm.hpp"
#include "bench_util.hpp"
#include "sim/sync.hpp"
#include "util/rng.hpp"

using namespace dacc;

namespace {

struct Task {
  int id = 0;
  std::uint32_t gpus = 0;
  SimDuration duration = 0;
  SimTime arrival = 0;
};

std::vector<Task> make_mix(int count, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Task> tasks;
  SimTime clock = 0;
  for (int i = 0; i < count; ++i) {
    const double p = rng.next_double();
    std::uint32_t k = 0;
    if (p > 0.30) k = 1;
    if (p > 0.65) k = 2;
    if (p > 0.85) k = 3;
    clock += static_cast<SimDuration>(rng.exponential(1.0 / 8.0) * 1.0e6);
    tasks.push_back(Task{i, k,
                         static_cast<SimDuration>(
                             rng.uniform(5.0, 40.0) * 1.0e6),
                         clock});
  }
  return tasks;
}

/// All-or-nothing FCFS counting resource (a node pool): a request for n
/// units is granted atomically, in arrival order, with no backfill.
class FifoPool {
 public:
  FifoPool(sim::Engine& engine, int units)
      : engine_(engine), free_(units) {}

  void acquire(sim::Context& ctx, int n) {
    if (queue_.empty() && free_ >= n) {
      free_ -= n;
      return;
    }
    Waiter w{&ctx.self(), n, false};
    queue_.push_back(&w);
    while (!w.granted) ctx.suspend();
  }

  void release(int n) {
    free_ += n;
    while (!queue_.empty() && queue_.front()->n <= free_) {
      Waiter* head = queue_.front();
      queue_.pop_front();
      free_ -= head->n;
      head->granted = true;
      engine_.wake(*head->process);
    }
  }

 private:
  struct Waiter {
    sim::Process* process;
    int n;
    bool granted;
  };
  sim::Engine& engine_;
  int free_;
  std::deque<Waiter*> queue_;
};

struct Outcome {
  SimDuration makespan = 0;
  SimDuration total_wait = 0;
  double gpu_utilization = 0.0;
};

/// Static architecture: 4 node+GPU bundles; a task needing k GPUs occupies
/// max(k, 1) bundles for its whole duration.
Outcome run_static(const std::vector<Task>& tasks) {
  sim::Engine engine;
  FifoPool bundles(engine, 4);
  Outcome out;
  SimDuration gpu_busy = 0;

  for (const Task& task : tasks) {
    engine.spawn("task" + std::to_string(task.id), [&, task](
                                                       sim::Context& ctx) {
      ctx.wait_until(task.arrival);
      const int need = static_cast<int>(std::max<std::uint32_t>(task.gpus, 1));
      const SimTime submitted = ctx.now();
      bundles.acquire(ctx, need);
      out.total_wait += ctx.now() - submitted;
      gpu_busy += task.gpus * task.duration;
      ctx.wait_for(task.duration);
      bundles.release(need);
    });
  }
  engine.run();
  out.makespan = engine.now();
  out.gpu_utilization = static_cast<double>(gpu_busy) /
                        (4.0 * static_cast<double>(out.makespan));
  return out;
}

/// Dynamic architecture: 4 compute nodes plus 4 pooled GPUs behind a real
/// ARM. A task occupies one node and exactly the GPUs it needs. The ARM
/// deployment is a rank set, not a single baked-in rank — the client takes
/// the whole endpoint list, so swapping in a replicated group (DESIGN.md
/// §11) is a one-line change here.
constexpr dmpi::Rank kArmRank = 1;
const std::vector<dmpi::Rank> kArmEndpoints{kArmRank};

Outcome run_dynamic(const std::vector<Task>& tasks,
                    arm::Arm::QueuePolicy policy) {
  sim::Engine engine;
  net::Fabric fabric(engine, 2);
  dmpi::World world(engine, fabric, {0, kArmRank});
  std::vector<arm::AcceleratorInfo> pool;
  for (int i = 0; i < 4; ++i) {
    pool.push_back(arm::AcceleratorInfo{kArmRank, "ac" + std::to_string(i)});
  }
  arm::Arm arm(world, kArmRank, std::move(pool), policy);
  sim::Process& armp =
      engine.spawn("arm", [&](sim::Context& ctx) { arm.run(ctx); });
  engine.set_daemon(armp);

  FifoPool nodes(engine, 4);
  Outcome out;

  for (const Task& task : tasks) {
    engine.spawn("task" + std::to_string(task.id), [&, task](
                                                       sim::Context& ctx) {
      dmpi::Mpi mpi(world, ctx, 0);
      arm::ArmClient client(mpi, world.world_comm(), kArmEndpoints);
      ctx.wait_until(task.arrival);
      const SimTime submitted = ctx.now();
      nodes.acquire(ctx, 1);
      if (task.gpus > 0) {
        const auto leases = client.acquire(
            static_cast<std::uint64_t>(task.id) + 1, task.gpus, true);
        if (leases.size() != task.gpus) {
          throw std::runtime_error("scheduler bench: acquire failed");
        }
      }
      out.total_wait += ctx.now() - submitted;
      ctx.wait_for(task.duration);
      nodes.release(1);
      if (task.gpus > 0) {
        (void)client.release_job(static_cast<std::uint64_t>(task.id) + 1);
      }
    });
  }
  engine.run();
  out.makespan = engine.now();
  double util_sum = 0.0;
  for (double u : arm.utilization(engine.now())) util_sum += u;
  out.gpu_utilization = util_sum / 4.0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::Table table({"job mix", "arch", "makespan [ms]", "mean wait [ms]",
                     "GPU util"});
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const auto tasks = make_mix(32, seed);
    const Outcome st = run_static(tasks);
    const Outcome dy = run_dynamic(tasks, arm::Arm::QueuePolicy::kFcfs);
    const Outcome bf = run_dynamic(tasks, arm::Arm::QueuePolicy::kBackfill);
    const auto n = static_cast<double>(tasks.size());
    auto add_row = [&](const char* arch, const Outcome& o) {
      table.row()
          .add("mix-" + std::to_string(seed))
          .add(arch)
          .add(to_ms(o.makespan), 1)
          .add(to_ms(o.total_wait) / n, 1)
          .add(o.gpu_utilization, 2);
    };
    add_row("static", st);
    add_row("dynamic", dy);
    add_row("dyn+backfill", bf);
    bench::register_result("abl_scheduler/static/mix" + std::to_string(seed),
                           st.makespan);
    bench::register_result(
        "abl_scheduler/dynamic/mix" + std::to_string(seed), dy.makespan);
    bench::register_result(
        "abl_scheduler/backfill/mix" + std::to_string(seed), bf.makespan);
  }

  std::printf(
      "Ablation D — scheduling a Poisson job stream on 4 nodes + 4 GPUs\n"
      "(static: GPUs bound 1-per-node; dynamic: pooled behind the ARM;\n"
      " dyn+backfill: pooled with EASY-style backfill at the ARM)\n\n");
  table.print(std::cout);
  std::printf("\n");
  return bench::finish(argc, argv);
}
