// Ablation E — look-ahead in the hybrid QR (an optimization beyond the
// paper's prototype): the next panel's owner updates that block first and
// defers its bulk update, so the panel download + CPU factorization overlap
// with the trailing update instead of waiting behind it.
#include "la_util.hpp"

using namespace dacc;

namespace {

la::FactorResult qr_with(int n, int g, bool lookahead) {
  rt::ClusterConfig cc;
  cc.compute_nodes = 1;
  cc.accelerators = g;
  cc.functional_gpus = false;
  cc.registry = la::la_registry();
  rt::Cluster cluster(cc);
  la::FactorResult result;
  rt::JobSpec spec;
  spec.accelerators_per_rank = static_cast<std::uint32_t>(g);
  spec.body = [&](rt::JobContext& job) {
    std::vector<std::unique_ptr<core::RemoteDeviceLink>> links;
    std::vector<core::DeviceLink*> gpus;
    for (std::size_t i = 0; i < job.session().size(); ++i) {
      links.push_back(std::make_unique<core::RemoteDeviceLink>(
          job.session()[i], job.ctx()));
      gpus.push_back(links.back().get());
    }
    la::LaParams params;
    params.qr_lookahead = lookahead;
    la::HostMatrix a(n, n, false);
    result = la::dgeqrf_hybrid(job.ctx(), gpus, a, 128, params);
  };
  cluster.submit(spec);
  cluster.run();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  util::Table table({"N", "GPUs", "no look-ahead", "look-ahead", "gain"});
  for (const int n : {2048, 4032, 6048, 8064, 10240}) {
    for (const int g : {1, 3}) {
      const auto off = qr_with(n, g, false);
      const auto on = qr_with(n, g, true);
      table.row()
          .add(static_cast<std::uint64_t>(n))
          .add(static_cast<std::uint64_t>(g))
          .add(off.gflops, 1)
          .add(on.gflops, 1)
          .add(on.gflops / off.gflops, 3);
      const std::string key =
          std::to_string(n) + "/g" + std::to_string(g);
      bench::register_result("abl_lookahead/off/" + key, off.factor_time, 0,
                             off.gflops);
      bench::register_result("abl_lookahead/on/" + key, on.factor_time, 0,
                             on.gflops);
    }
  }

  std::printf(
      "Ablation E — QR [GFlop/s] with and without look-ahead scheduling\n"
      "(hides the panel round trip behind the bulk trailing update)\n\n");
  table.print(std::cout);
  std::printf("\n");
  return bench::finish(argc, argv);
}
