// Figure 11: the MP2C molecular-dynamics application, 2 MPI ranks with one
// GPU each, 300 steps with the SRD collision offloaded every 5th step:
// node-local GPUs vs network-attached GPUs at 5.12M / 7.29M / 10M
// particles.
//
// Paper shape: the dynamic architecture "prolongs execution by at most 4%".
#include "bench_util.hpp"
#include "mdsim/mp2c.hpp"

using namespace dacc;

namespace {

SimDuration mp2c_point(std::uint64_t particles, bool local) {
  auto registry = gpu::KernelRegistry::with_builtins();
  mdsim::register_mdsim_kernels(*registry);
  rt::ClusterConfig cc;
  cc.compute_nodes = 2;
  cc.accelerators = local ? 0 : 2;
  cc.local_gpus = local;
  cc.functional_gpus = false;
  cc.registry = registry;
  rt::Cluster cluster(cc);

  SimDuration elapsed = 0;
  rt::JobSpec spec;
  spec.ranks = 2;
  spec.accelerators_per_rank = local ? 0 : 1;
  spec.body = [&](rt::JobContext& job) {
    std::unique_ptr<core::DeviceLink> link;
    if (local) {
      link = std::make_unique<core::LocalDeviceLink>(job.local_gpu());
    } else {
      link = std::make_unique<core::RemoteDeviceLink>(job.session()[0],
                                                      job.ctx());
    }
    const auto result = mdsim::run_mp2c(job, link.get(), particles);
    if (job.rank() == 0) elapsed = result.elapsed;
  };
  cluster.submit(spec);
  cluster.run();
  return elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  util::Table table({"particles", "CUDA local [min]",
                     "dynamic architecture [min]", "slowdown"});

  for (const std::uint64_t n : {5'120'000ull, 7'290'000ull, 10'000'000ull}) {
    const SimDuration local = mp2c_point(n, true);
    const SimDuration remote = mp2c_point(n, false);
    const double slowdown =
        static_cast<double>(remote) / static_cast<double>(local) - 1.0;
    table.row()
        .add(n)
        .add(to_seconds(local) / 60.0, 2)
        .add(to_seconds(remote) / 60.0, 2)
        .add("+" + std::to_string(static_cast<int>(slowdown * 1000) / 10.0)
                       .substr(0, 4) +
             "%");
    const std::string sz = std::to_string(n / 10000) + "e4";
    bench::register_result("fig11/mp2c/local/" + sz, local);
    bench::register_result("fig11/mp2c/dynamic/" + sz, remote);
  }

  std::printf(
      "Figure 11 — MP2C, 2 ranks x 1 GPU, 300 steps, SRD every 5th\n"
      "(paper: ~13/17/22 minutes; dynamic architecture at most +4%%)\n\n");
  table.print(std::cout);
  std::printf("\n");
  return bench::finish(argc, argv, "BENCH_fig11.json");
}
