// Figure 5: host-to-device bandwidth of the remote acMemCpy() for the naive
// protocol, fixed pipeline block sizes (128/256/512 KiB), the adaptive
// 128-512K policy, and the raw MPI PingPong upper bound.
//
// Paper shape: all pipeline variants beat naive for large messages; 128 KiB
// wins between ~0.5 and ~8 MiB, larger blocks win beyond ~9 MiB; the best
// pipeline tracks the MPI bound (~2660 MiB/s at 64 MiB).
#include "bench_util.hpp"

using namespace dacc;
using bench::Probe;

int main(int argc, char** argv) {
  struct Curve {
    const char* name;
    proto::TransferConfig config;
    bool is_mpi = false;
  };
  const std::vector<Curve> curves = {
      {"naive", proto::TransferConfig::naive()},
      {"pipeline-128K", proto::TransferConfig::pipeline(128_KiB)},
      {"pipeline-256K", proto::TransferConfig::pipeline(256_KiB)},
      {"pipeline-512K", proto::TransferConfig::pipeline(512_KiB)},
      {"pipeline-128-512K", proto::TransferConfig::pipeline_adaptive()},
      {"MPI (IMB PingPong)", proto::TransferConfig{}, true},
  };

  std::vector<std::string> headers{"size"};
  for (const Curve& c : curves) headers.emplace_back(c.name);
  util::Table table(headers);

  for (const std::uint64_t bytes : bench::figure_sizes()) {
    table.row().add(bench::size_label(bytes));
    for (const Curve& c : curves) {
      const Probe p = c.is_mpi ? bench::mpi_pingpong(bytes)
                               : bench::remote_copy(bytes, c.config, true);
      table.add(p.mib_s, 0);
      bench::register_result(
          "fig05/h2d/" + std::string(c.name) + "/" + bench::size_label(bytes),
          p.elapsed, p.mib_s);
    }
  }

  std::printf(
      "Figure 5 — host-to-device bandwidth [MiB/s], dynamic architecture\n"
      "(paper: pipeline ~tracks MPI; naive ~1700 at 64 MiB; MPI peak "
      "~2660)\n\n");
  table.print(std::cout);
  std::printf("\n");
  return bench::finish(argc, argv);
}
