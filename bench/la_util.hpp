// Helpers for the linear-algebra figure benches (Figures 9/10).
#pragma once

#include "bench_util.hpp"
#include "la/factorizations.hpp"

namespace dacc::bench {

enum class Routine { kQr, kCholesky };

/// One figure point: factorize an N x N phantom matrix with `g` GPUs —
/// node-local (g must be 1) or network-attached — and return the result.
inline la::FactorResult la_point(Routine routine, int n, int g, bool local,
                                 int nb = 128) {
  rt::ClusterConfig cc;
  cc.compute_nodes = 1;
  cc.accelerators = local ? 0 : g;
  cc.local_gpus = local;
  cc.functional_gpus = false;
  cc.registry = la::la_registry();
  rt::Cluster cluster(cc);

  la::FactorResult result;
  rt::JobSpec spec;
  spec.accelerators_per_rank = local ? 0 : static_cast<std::uint32_t>(g);
  spec.body = [&](rt::JobContext& job) {
    std::vector<std::unique_ptr<core::DeviceLink>> links;
    std::vector<core::DeviceLink*> gpus;
    if (local) {
      links.push_back(
          std::make_unique<core::LocalDeviceLink>(job.local_gpu()));
    } else {
      for (std::size_t i = 0; i < job.session().size(); ++i) {
        links.push_back(std::make_unique<core::RemoteDeviceLink>(
            job.session()[i], job.ctx()));
      }
    }
    for (auto& link : links) gpus.push_back(link.get());
    la::HostMatrix a(n, n, /*functional=*/false);
    result = routine == Routine::kQr
                 ? la::dgeqrf_hybrid(job.ctx(), gpus, a, nb)
                 : la::dpotrf_hybrid(job.ctx(), gpus, a, nb);
  };
  cluster.submit(spec);
  cluster.run();
  return result;
}

/// The paper's N sweep for Figures 9 and 10.
inline std::vector<int> figure9_sizes() {
  return {1024, 2048, 3072, 4032, 5184, 6048, 7200, 8064, 8928, 10240};
}

}  // namespace dacc::bench
