// Ablation A — pipeline block-size sensitivity. The paper tunes the block
// size per message size ("128 KiB ... for messages smaller than 9 MiB and
// 512 KiB blocks for larger messages", Section V.A). This bench sweeps the
// block size across message sizes, reports the best block per size, and
// locates the 128K/512K crossover.
#include "bench_util.hpp"

using namespace dacc;

int main(int argc, char** argv) {
  const std::vector<std::uint64_t> blocks = {32_KiB,  64_KiB,  128_KiB,
                                             256_KiB, 512_KiB, 1_MiB,
                                             2_MiB};
  const std::vector<std::uint64_t> sizes = {1_MiB, 2_MiB, 4_MiB, 6_MiB,
                                            8_MiB, 9_MiB, 12_MiB, 16_MiB,
                                            32_MiB, 64_MiB};

  std::vector<std::string> headers{"size"};
  for (auto b : blocks) headers.push_back(bench::size_label(b));
  headers.emplace_back("best");
  util::Table table(headers);

  std::uint64_t crossover = 0;
  bool was_128_better = true;
  for (const std::uint64_t size : sizes) {
    table.row().add(bench::size_label(size));
    double best_bw = 0.0;
    std::uint64_t best_block = 0;
    double bw128 = 0.0;
    double bw512 = 0.0;
    for (const std::uint64_t block : blocks) {
      const auto p = bench::remote_copy(
          size, proto::TransferConfig::pipeline(block), true);
      table.add(p.mib_s, 0);
      if (p.mib_s > best_bw) {
        best_bw = p.mib_s;
        best_block = block;
      }
      if (block == 128_KiB) bw128 = p.mib_s;
      if (block == 512_KiB) bw512 = p.mib_s;
      bench::register_result("abl_blocksize/h2d/" +
                                 bench::size_label(block) + "/" +
                                 bench::size_label(size),
                             p.elapsed, p.mib_s);
    }
    table.add(bench::size_label(best_block));
    if (was_128_better && bw512 > bw128 && crossover == 0) crossover = size;
    was_128_better = bw128 >= bw512;
  }

  std::printf(
      "Ablation A — H2D bandwidth [MiB/s] by pipeline block size\n"
      "(paper: 128K best below ~9 MiB, 512K above)\n\n");
  table.print(std::cout);
  if (crossover != 0) {
    std::printf("\n128K/512K crossover observed at ~%s (paper: ~9 MiB)\n\n",
                bench::size_label(crossover).c_str());
  }
  return bench::finish(argc, argv);
}
