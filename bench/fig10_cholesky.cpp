// Figure 10: MAGMA-style Cholesky factorization (dpotrf) on one compute
// node — node-local GPU vs 1/2/3 network-attached GPUs.
//
// Paper shape: like QR but less bandwidth-sensitive — one remote GPU sits
// closer to the local GPU, and multiple network-attached GPUs still deliver
// speedups impossible with the single node-attached device.
#include "la_util.hpp"

using namespace dacc;

int main(int argc, char** argv) {
  util::Table table({"N", "CUDA local GPU", "1 net GPU", "2 net GPUs",
                     "3 net GPUs", "best/local"});

  double remote1_penalty_at_max = 0.0;
  for (const int n : bench::figure9_sizes()) {
    const auto local = bench::la_point(bench::Routine::kCholesky, n, 1, true);
    const auto r1 = bench::la_point(bench::Routine::kCholesky, n, 1, false);
    const auto r2 = bench::la_point(bench::Routine::kCholesky, n, 2, false);
    const auto r3 = bench::la_point(bench::Routine::kCholesky, n, 3, false);
    const double best = std::max({r1.gflops, r2.gflops, r3.gflops});
    remote1_penalty_at_max = r1.gflops / local.gflops;
    table.row()
        .add(static_cast<std::uint64_t>(n))
        .add(local.gflops, 1)
        .add(r1.gflops, 1)
        .add(r2.gflops, 1)
        .add(r3.gflops, 1)
        .add(best / local.gflops, 2);
    const std::string sz = std::to_string(n);
    bench::register_result("fig10/chol/local/" + sz, local.factor_time, 0,
                           local.gflops);
    bench::register_result("fig10/chol/net1/" + sz, r1.factor_time, 0,
                           r1.gflops);
    bench::register_result("fig10/chol/net2/" + sz, r2.factor_time, 0,
                           r2.gflops);
    bench::register_result("fig10/chol/net3/" + sz, r3.factor_time, 0,
                           r3.gflops);
  }

  std::printf(
      "Figure 10 — Cholesky factorization [GFlop/s], one compute node\n"
      "(paper: Cholesky less sensitive to the bandwidth penalty than QR)\n\n");
  table.print(std::cout);
  std::printf("\nmeasured 1-remote-GPU/local ratio at N=10240: %.2f\n\n",
              remote1_penalty_at_max);
  return bench::finish(argc, argv);
}
