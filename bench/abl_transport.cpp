// Ablation C — transport comparison. The paper argues (Section II) that its
// MPI-based protocol beats TCP/IP-based remoting frameworks (rCUDA-class).
// This bench runs the identical middleware over the TCP/IPoIB baseline
// transport, plus the interior point "their transport with our pipeline".
#include "baseline/rcuda_like.hpp"
#include "bench_util.hpp"
#include "la_util.hpp"

using namespace dacc;

namespace {

bench::Probe copy_on(rt::ClusterConfig cc, proto::TransferConfig transfer,
                     std::uint64_t bytes) {
  cc.functional_gpus = false;
  rt::Cluster cluster(std::move(cc));
  bench::Probe probe;
  rt::JobSpec spec;
  spec.accelerators_per_rank = 1;
  spec.body = [&](rt::JobContext& job) {
    auto& ac = job.session()[0];
    ac.set_transfer_config(transfer);
    const gpu::DevPtr p = ac.mem_alloc(bytes);
    ac.memcpy_h2d(p, util::Buffer::phantom(bytes));
    const SimTime t0 = job.ctx().now();
    ac.memcpy_h2d(p, util::Buffer::phantom(bytes));
    probe.elapsed = job.ctx().now() - t0;
    probe.mib_s = mib_per_s(bytes, probe.elapsed);
  };
  cluster.submit(spec);
  cluster.run();
  return probe;
}

rt::ClusterConfig mpi_config() {
  rt::ClusterConfig c;
  c.compute_nodes = 1;
  c.accelerators = 1;
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  util::Table table({"size", "dacc (MPI+pipeline)", "rCUDA-like (TCP naive)",
                     "TCP + our pipeline"});
  for (const std::uint64_t size : {1_MiB, 4_MiB, 16_MiB, 64_MiB}) {
    const auto ours = copy_on(mpi_config(),
                              proto::TransferConfig::pipeline_adaptive(),
                              size);
    const auto tcp_naive = copy_on(baseline::tcp_cluster_config(1, 1),
                                   baseline::tcp_transfer_config(), size);
    auto tcp_pipe_cfg = proto::TransferConfig::pipeline(512_KiB);
    tcp_pipe_cfg.gpudirect = false;
    const auto tcp_pipe =
        copy_on(baseline::tcp_cluster_config(1, 1), tcp_pipe_cfg, size);
    table.row()
        .add(bench::size_label(size))
        .add(ours.mib_s, 0)
        .add(tcp_naive.mib_s, 0)
        .add(tcp_pipe.mib_s, 0);
    const std::string sz = bench::size_label(size);
    bench::register_result("abl_transport/mpi/" + sz, ours.elapsed,
                           ours.mib_s);
    bench::register_result("abl_transport/tcp-naive/" + sz,
                           tcp_naive.elapsed, tcp_naive.mib_s);
    bench::register_result("abl_transport/tcp-pipeline/" + sz,
                           tcp_pipe.elapsed, tcp_pipe.mib_s);
  }

  std::printf(
      "Ablation C — H2D bandwidth [MiB/s] by remoting transport\n"
      "(paper Section II: TCP-based remoting 'may introduce higher "
      "overhead')\n\n");
  table.print(std::cout);
  std::printf("\n");
  return bench::finish(argc, argv);
}
