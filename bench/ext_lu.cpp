// Extension — LU factorization (dgetrf, partial pivoting): the third
// MAGMA-class routine on the dynamic architecture, beyond the paper's
// QR/Cholesky pair. Same experiment design as Figures 9/10.
#include "la_util.hpp"

using namespace dacc;

namespace {

la::FactorResult lu_point(int n, int g, bool local) {
  rt::ClusterConfig cc;
  cc.compute_nodes = 1;
  cc.accelerators = local ? 0 : g;
  cc.local_gpus = local;
  cc.functional_gpus = false;
  cc.registry = la::la_registry();
  rt::Cluster cluster(cc);
  la::FactorResult result;
  rt::JobSpec spec;
  spec.accelerators_per_rank = local ? 0 : static_cast<std::uint32_t>(g);
  spec.body = [&](rt::JobContext& job) {
    std::vector<std::unique_ptr<core::DeviceLink>> links;
    std::vector<core::DeviceLink*> gpus;
    if (local) {
      links.push_back(
          std::make_unique<core::LocalDeviceLink>(job.local_gpu()));
    } else {
      for (std::size_t i = 0; i < job.session().size(); ++i) {
        links.push_back(std::make_unique<core::RemoteDeviceLink>(
            job.session()[i], job.ctx()));
      }
    }
    for (auto& link : links) gpus.push_back(link.get());
    la::HostMatrix a(n, n, false);
    result = la::dgetrf_hybrid(job.ctx(), gpus, a, 128);
  };
  cluster.submit(spec);
  cluster.run();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  util::Table table({"N", "CUDA local GPU", "1 net GPU", "2 net GPUs",
                     "3 net GPUs", "best/local"});
  for (const int n : bench::figure9_sizes()) {
    const auto local = lu_point(n, 1, true);
    const auto r1 = lu_point(n, 1, false);
    const auto r2 = lu_point(n, 2, false);
    const auto r3 = lu_point(n, 3, false);
    const double best = std::max({r1.gflops, r2.gflops, r3.gflops});
    table.row()
        .add(static_cast<std::uint64_t>(n))
        .add(local.gflops, 1)
        .add(r1.gflops, 1)
        .add(r2.gflops, 1)
        .add(r3.gflops, 1)
        .add(best / local.gflops, 2);
    const std::string sz = std::to_string(n);
    bench::register_result("ext_lu/local/" + sz, local.factor_time, 0,
                           local.gflops);
    bench::register_result("ext_lu/net1/" + sz, r1.factor_time, 0, r1.gflops);
    bench::register_result("ext_lu/net2/" + sz, r2.factor_time, 0, r2.gflops);
    bench::register_result("ext_lu/net3/" + sz, r3.factor_time, 0, r3.gflops);
  }

  std::printf(
      "Extension — LU factorization [GFlop/s], one compute node\n"
      "(beyond the paper: the same dynamic-architecture pattern holds)\n\n");
  table.print(std::cout);
  std::printf("\n");
  return bench::finish(argc, argv);
}
