// Latency characterization (Section V.A text): "the additional MPI over
// Infiniband latency of roughly two us is negligible" for the megabyte-class
// transfers the middleware moves. This bench reports the small-message
// latency ladder of the whole stack.
#include "bench_util.hpp"

using namespace dacc;

namespace {

struct Latencies {
  SimDuration alloc_rtt = 0;
  SimDuration tiny_h2d = 0;
  SimDuration kernel_rtt = 0;
};

Latencies remote_latencies() {
  rt::ClusterConfig cc;
  cc.compute_nodes = 1;
  cc.accelerators = 1;
  rt::Cluster cluster(cc);
  Latencies lat;
  rt::JobSpec spec;
  spec.accelerators_per_rank = 1;
  spec.body = [&](rt::JobContext& job) {
    core::Accelerator& ac = job.session()[0];
    SimTime t0 = job.ctx().now();
    const gpu::DevPtr p = ac.mem_alloc(4096);
    lat.alloc_rtt = job.ctx().now() - t0;

    t0 = job.ctx().now();
    ac.memcpy_h2d(p, util::Buffer::backed_zero(64));
    lat.tiny_h2d = job.ctx().now() - t0;

    ac.launch("fill_f64", {}, {p, std::int64_t{8}, 0.0});  // warm path
    t0 = job.ctx().now();
    ac.launch("fill_f64", {}, {p, std::int64_t{8}, 0.0});
    lat.kernel_rtt = job.ctx().now() - t0;
  };
  cluster.submit(spec);
  cluster.run();
  return lat;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Probe mpi1 = bench::mpi_pingpong(1);
  const bench::Probe mpi64m = bench::mpi_pingpong(64_MiB);
  const Latencies lat = remote_latencies();
  const bench::Probe local_tiny =
      bench::local_copy(64, gpu::HostMemType::kPinned, true);

  util::Table table({"operation", "latency [us]", "paper reference"});
  table.row()
      .add("MPI PingPong, 1 B (half RTT)")
      .add(to_us(mpi1.elapsed), 2)
      .add("~2 us (Section V.A)");
  table.row()
      .add("remote acMemAlloc round trip")
      .add(to_us(lat.alloc_rtt), 2)
      .add("request + response pair");
  table.row()
      .add("remote acMemCpy H2D, 64 B")
      .add(to_us(lat.tiny_h2d), 2)
      .add("request + payload + DMA + ack");
  table.row()
      .add("remote acKernelRun issue")
      .add(to_us(lat.kernel_rtt), 2)
      .add("async issue acknowledgement");
  table.row()
      .add("local cudaMemcpy H2D, 64 B")
      .add(to_us(local_tiny.elapsed), 2)
      .add("DMA setup dominated");

  std::printf(
      "Latency ladder of the dynamic accelerator-cluster stack\n"
      "(and MPI peak at 64 MiB: %.0f MiB/s; paper: ~2660 MiB/s)\n\n",
      mpi64m.mib_s);
  table.print(std::cout);
  std::printf("\n");

  bench::register_result("t01/mpi-pingpong-1B", mpi1.elapsed);
  bench::register_result("t01/mpi-pingpong-64MiB", mpi64m.elapsed,
                         mpi64m.mib_s);
  bench::register_result("t01/remote-alloc-rtt", lat.alloc_rtt);
  bench::register_result("t01/remote-h2d-64B", lat.tiny_h2d);
  bench::register_result("t01/remote-kernel-issue", lat.kernel_rtt);
  bench::register_result("t01/local-h2d-64B", local_tiny.elapsed);
  return bench::finish(argc, argv);
}
