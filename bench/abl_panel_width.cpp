// Ablation F — panel width (nb) of the hybrid QR: the classic hybrid-
// algorithm tradeoff. Narrow panels keep the GPU updates level-3-efficient
// per column but multiply the per-panel round trips; wide panels amortize
// the middleware but push more work into the slow CPU panel factorization.
#include "la_util.hpp"

using namespace dacc;

int main(int argc, char** argv) {
  const std::vector<int> widths = {32, 64, 96, 128, 192, 256, 384};
  util::Table table({"N", "GPUs", "nb=32", "nb=64", "nb=96", "nb=128",
                     "nb=192", "nb=256", "nb=384", "best"});
  for (const int n : {2048, 6048, 10240}) {
    for (const int g : {1, 3}) {
      table.row()
          .add(static_cast<std::uint64_t>(n))
          .add(static_cast<std::uint64_t>(g));
      double best = 0.0;
      int best_nb = 0;
      for (const int nb : widths) {
        const auto r =
            bench::la_point(bench::Routine::kQr, n, g, /*local=*/false, nb);
        table.add(r.gflops, 1);
        if (r.gflops > best) {
          best = r.gflops;
          best_nb = nb;
        }
        bench::register_result("abl_panel_width/n" + std::to_string(n) +
                                   "/g" + std::to_string(g) + "/nb" +
                                   std::to_string(nb),
                               r.factor_time, 0, r.gflops);
      }
      table.add("nb=" + std::to_string(best_nb));
    }
  }

  std::printf(
      "Ablation F — QR [GFlop/s] by panel width nb (network-attached "
      "GPUs)\n\n");
  table.print(std::cout);
  std::printf("\n");
  return bench::finish(argc, argv);
}
