// Figure 9: MAGMA-style QR factorization (dgeqrf) on one compute node —
// node-local GPU vs 1/2/3 network-attached GPUs, GFlop/s over matrix size.
//
// Paper shape: one remote GPU runs slightly below the local GPU (QR is the
// more bandwidth-sensitive of the two routines); with three remote GPUs the
// same single node reaches ~2.2x the local-GPU performance at N = 10240,
// with no cross-node MPI in the application; at small N the extra
// overheads make multi-GPU counterproductive.
#include "la_util.hpp"

using namespace dacc;

int main(int argc, char** argv) {
  util::Table table({"N", "CUDA local GPU", "1 net GPU", "2 net GPUs",
                     "3 net GPUs", "best/local"});

  double speedup_at_max = 0.0;
  for (const int n : bench::figure9_sizes()) {
    const auto local = bench::la_point(bench::Routine::kQr, n, 1, true);
    const auto r1 = bench::la_point(bench::Routine::kQr, n, 1, false);
    const auto r2 = bench::la_point(bench::Routine::kQr, n, 2, false);
    const auto r3 = bench::la_point(bench::Routine::kQr, n, 3, false);
    const double best = std::max({r1.gflops, r2.gflops, r3.gflops});
    speedup_at_max = r3.gflops / local.gflops;
    table.row()
        .add(static_cast<std::uint64_t>(n))
        .add(local.gflops, 1)
        .add(r1.gflops, 1)
        .add(r2.gflops, 1)
        .add(r3.gflops, 1)
        .add(best / local.gflops, 2);
    const std::string sz = std::to_string(n);
    bench::register_result("fig09/qr/local/" + sz, local.factor_time, 0,
                           local.gflops);
    bench::register_result("fig09/qr/net1/" + sz, r1.factor_time, 0,
                           r1.gflops);
    bench::register_result("fig09/qr/net2/" + sz, r2.factor_time, 0,
                           r2.gflops);
    bench::register_result("fig09/qr/net3/" + sz, r3.factor_time, 0,
                           r3.gflops);
  }

  std::printf(
      "Figure 9 — QR factorization [GFlop/s], one compute node\n"
      "(paper: 3 network-attached GPUs reach ~2.2x one local GPU at "
      "N=10240)\n\n");
  table.print(std::cout);
  std::printf("\nmeasured 3-GPU speedup over local at N=10240: %.2fx\n\n",
              speedup_at_max);
  return bench::finish(argc, argv, "BENCH_fig09.json");
}
