// Wall-clock throughput of the simulation core (not a paper figure: this
// measures the simulator itself). Three probes:
//
//   * process-switch throughput — a process yielding in a tight loop; every
//     yield is one block + one resume event + one slice. Run under both
//     execution backends, so the printed ratio is the coroutine speedup
//     over the one-OS-thread-per-process baton baseline.
//   * event throughput — a self-rescheduling callback chain, no processes:
//     the pooled event queue in isolation.
//   * figure-9 wall time — one QR factorization point (N x N phantom, 3
//     network-attached GPUs) end to end: the user-visible effect on the
//     paper sweeps.
//   * parallel cluster scenario — an MP2C-style job over a ≥128-node
//     fabric (64 CNs + 64 ACs + ARM) with lease churn across waves, run
//     under the serial baseline and the sharded parallel backend. Besides
//     wall time it reports the engine's exposed parallelism (parallel
//     events / critical-path events): wall speedup is bounded by
//     min(exposed parallelism, host cores), so on a 1-core host the wall
//     ratio reflects pure scheduling overhead while the exposed figure is
//     the speedup a multi-core host can realize.
//
// Emits BENCH_engine.json (override with --out PATH); --quick shrinks the
// iteration counts for use as a ctest smoke test.
//
//   $ ./bench/wallclock_engine [--quick] [--out BENCH_engine.json]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "la_util.hpp"
#include "mdsim/mp2c.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "rpc/channel.hpp"
#include "sim/engine.hpp"
#include "sim/exec.hpp"

namespace dacc::bench {
namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct SwitchProbe {
  std::uint64_t switches = 0;
  double wall_s = 0.0;
  double per_sec = 0.0;
};

SwitchProbe switch_throughput(sim::ExecBackend backend, std::uint64_t iters) {
  sim::Engine engine(backend);
  engine.spawn("pinger", [iters](sim::Context& ctx) {
    for (std::uint64_t i = 0; i < iters; ++i) ctx.yield();
  });
  const auto t0 = std::chrono::steady_clock::now();
  engine.run();
  SwitchProbe p;
  p.wall_s = seconds_since(t0);
  p.switches = engine.process_switches();
  p.per_sec = static_cast<double>(p.switches) / p.wall_s;
  return p;
}

struct EventProbe {
  std::uint64_t events = 0;
  double wall_s = 0.0;
  double per_sec = 0.0;
  std::uint64_t pool_nodes = 0;
  std::uint64_t heap_fallbacks = 0;
};

EventProbe event_throughput(std::uint64_t count) {
  sim::Engine engine;
  std::uint64_t fired = 0;
  std::function<void()> chain = [&] {
    if (++fired < count) engine.schedule_in(1, chain);
  };
  engine.schedule_at(0, chain);
  const auto t0 = std::chrono::steady_clock::now();
  engine.run();
  EventProbe p;
  p.wall_s = seconds_since(t0);
  p.events = engine.events_executed();
  p.per_sec = static_cast<double>(p.events) / p.wall_s;
  p.pool_nodes = engine.event_stats().pool_nodes;
  p.heap_fallbacks = engine.event_stats().heap_fallbacks;
  return p;
}

struct QrProbe {
  int n = 0;
  double sim_ms = 0.0;
  double wall_s = 0.0;
};

QrProbe qr_wall_time(int n) {
  const auto t0 = std::chrono::steady_clock::now();
  const la::FactorResult r = la_point(Routine::kQr, n, /*g=*/3,
                                      /*local=*/false);
  QrProbe p;
  p.wall_s = seconds_since(t0);
  p.n = n;
  p.sim_ms = to_ms(r.factor_time);
  return p;
}

struct ChurnProbe {
  std::uint64_t events = 0;
  std::uint64_t switches = 0;
  double wall_s = 0.0;
  double events_per_sec = 0.0;
  double sim_ms = 0.0;
  sim::Engine::ParallelStats pstats;  // zeros under the serial backends
  // Message accounting (zeros unless metrics are enabled).
  std::uint64_t dmpi_msgs = 0;  ///< every dmpi send in the fabric
  std::uint64_t rpc_msgs = 0;   ///< front-end channel messages (all CNs)
  std::uint64_t rpc_ops = 0;    ///< front-end ops carried by those messages
};

/// MP2C-style cluster scenario: `nodes` compute nodes each leasing one of
/// `nodes` accelerators (2*nodes+1 fabric nodes including the ARM), running
/// the MP2C halo/migration/SRD loop on phantom GPUs. Each wave is a fresh
/// job, so the ARM lease/release path churns nodes-many sessions per wave.
/// `band_gap` pins the serial-control era width (0 = the 64x-wire default).
ChurnProbe cluster_churn(sim::ExecBackend backend, int shards, int nodes,
                         int waves, int steps, SimDuration band_gap = 0,
                         obs::Profiler* prof = nullptr) {
  auto registry = gpu::KernelRegistry::with_builtins();
  mdsim::register_mdsim_kernels(*registry);
  rt::ClusterConfig cc;
  cc.compute_nodes = nodes;
  cc.accelerators = nodes;
  cc.functional_gpus = false;
  cc.registry = registry;
  cc.sim_backend = backend;
  cc.sim_shards = shards;
  cc.sim_band_gap = band_gap;
  rt::Cluster cluster(cc);
  if (prof != nullptr) cluster.engine().set_wall_profiler(prof);

  const auto t0 = std::chrono::steady_clock::now();
  for (int w = 0; w < waves; ++w) {
    rt::JobSpec spec;
    spec.name = "mp2c-w" + std::to_string(w);
    spec.ranks = nodes;
    spec.accelerators_per_rank = 1;
    spec.body = [steps](rt::JobContext& job) {
      core::RemoteDeviceLink gpu(job.session()[0], job.ctx());
      mdsim::SrdParams srd;
      srd.steps = steps;
      (void)mdsim::run_mp2c(job, &gpu,
                            /*total_particles=*/20'000u *
                                static_cast<std::uint64_t>(job.size()),
                            srd);
    };
    cluster.submit(spec);
    cluster.run();
  }
  ChurnProbe p;
  p.wall_s = seconds_since(t0);
  p.events = cluster.engine().events_executed();
  p.switches = cluster.engine().process_switches();
  p.events_per_sec = static_cast<double>(p.events) / p.wall_s;
  p.sim_ms = to_ms(cluster.engine().now());
  p.pstats = cluster.engine().parallel_stats();
  return p;
}

/// Op-dense command-stream churn: every CN drives its accelerator with
/// MP2C-style kernel streams issued as async bursts (the shape run_mp2c
/// produces per SRD step, minus the halo barriers that would drain the
/// stream one op at a time). This is the workload the kBatch coalescing
/// targets: many tiny control ops in flight at once.
ChurnProbe stream_churn(sim::ExecBackend backend, int nodes, int bursts,
                        rpc::StreamConfig batch) {
  rt::ClusterConfig cc;
  cc.compute_nodes = nodes;
  cc.accelerators = nodes;
  cc.functional_gpus = false;
  cc.sim_backend = backend;
  cc.metrics = true;
  cc.batch = batch;
  rt::Cluster cluster(cc);

  rt::JobSpec spec;
  spec.name = "stream-churn";
  spec.ranks = nodes;
  spec.accelerators_per_rank = 1;
  spec.body = [bursts](rt::JobContext& job) {
    core::Accelerator& ac = job.session()[0];
    const std::int64_t n = 4096;
    const gpu::DevPtr p = ac.mem_alloc(static_cast<std::uint64_t>(n) * 8);
    for (int b = 0; b < bursts; ++b) {
      std::vector<core::Future> stream;
      stream.reserve(16);
      for (int i = 0; i < 16; ++i) {
        stream.push_back(
            ac.launch_async("dscal", {}, {n, 1.0 + 0.1 * i, p}));
      }
      job.session().wait_all(stream);
    }
    ac.mem_free(p);
  };
  const auto t0 = std::chrono::steady_clock::now();
  cluster.submit(spec);
  cluster.run();

  ChurnProbe p;
  p.wall_s = seconds_since(t0);
  p.events = cluster.engine().events_executed();
  p.switches = cluster.engine().process_switches();
  p.events_per_sec = static_cast<double>(p.events) / p.wall_s;
  p.sim_ms = to_ms(cluster.engine().now());
  const obs::Registry& m = cluster.metrics();
  for (int r = 0; r < 2 * nodes + 1; ++r) {
    p.dmpi_msgs += m.counter_value("dacc_dmpi_msgs_total{rank=\"" +
                                   std::to_string(r) + "\"}");
  }
  for (int cn = 0; cn < nodes; ++cn) {
    const std::string chan =
        "{chan=\"fe-r" + std::to_string(cluster.cn_rank(cn)) + "\"}";
    p.rpc_msgs += m.counter_value("dacc_rpc_msgs_total" + chan);
    p.rpc_ops += m.counter_value("dacc_rpc_ops_total" + chan);
  }
  return p;
}

struct ScaleProbe {
  int nodes = 0;
  int shards = 0;  ///< 0 = serial baseline
  std::uint64_t events = 0;
  double wall_s = 0.0;
  double per_sec = 0.0;
  sim::Engine::ParallelStats pstats;
  double exposed = 0.0;
};

/// Raw-engine scaling scenario (1k/10k fabric nodes): every node runs a
/// self-rescheduling walker whose events are node-local except that every
/// `hop_every`-th event forwards the walker to its ring neighbor over a
/// short (120 ns) link. The short ring makes the topology partitioner
/// place neighbors contiguously, so cross-shard traffic concentrates at
/// the chunk boundaries — the shape the per-shard-pair lookahead matrix
/// and asynchronous horizon advancement are built for.
ScaleProbe ring_scale(sim::ExecBackend backend, int shards, int nodes,
                      std::uint64_t events_per_node, int hop_every) {
  sim::Engine engine(backend, shards);
  engine.set_node_count(nodes);
  engine.set_lookahead(1200);
  std::vector<sim::Engine::LatencyOverride> links;
  links.reserve(static_cast<std::size_t>(nodes));
  for (int i = 0; i < nodes; ++i) {
    links.push_back({i, (i + 1) % nodes, 120});
  }
  engine.set_lookahead_overrides(1200, links);

  // Walker state is only touched from the walker's own events, so the
  // workload is race-free under the parallel backend by construction.
  struct Walker {
    std::uint64_t done = 0;
    int node = 0;
  };
  std::vector<Walker> walkers(static_cast<std::size_t>(nodes));
  std::function<void(int)> step = [&](int w) {
    Walker& wk = walkers[static_cast<std::size_t>(w)];
    if (++wk.done >= events_per_node) return;
    if (wk.done % static_cast<std::uint64_t>(hop_every) == 0) {
      wk.node = (wk.node + 1) % nodes;  // hop to the ring neighbor
    }
    engine.post(wk.node, engine.now() + 10, [&step, w] { step(w); });
  };
  for (int w = 0; w < nodes; ++w) {
    walkers[static_cast<std::size_t>(w)].node = w;
    engine.post(w, 0, [&step, w] { step(w); });
  }
  const auto t0 = std::chrono::steady_clock::now();
  engine.run();

  ScaleProbe p;
  p.nodes = nodes;
  p.shards = backend == sim::ExecBackend::kParallel ? engine.shard_count() : 0;
  p.wall_s = seconds_since(t0);
  p.events = engine.events_executed();
  p.per_sec = static_cast<double>(p.events) / p.wall_s;
  p.pstats = engine.parallel_stats();
  p.exposed = p.pstats.critical_path_events == 0
                  ? 1.0
                  : static_cast<double>(p.pstats.parallel_events) /
                        static_cast<double>(p.pstats.critical_path_events);
  return p;
}

void print_switch(const char* label, const SwitchProbe& p) {
  std::printf("  %-10s %9llu switches in %.3f s  ->  %.0f switches/s\n",
              label, static_cast<unsigned long long>(p.switches), p.wall_s,
              p.per_sec);
}

int run(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_engine.json";
  std::string out_parallel = "BENCH_parallel.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--out-parallel") == 0 && i + 1 < argc) {
      out_parallel = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--out PATH] [--out-parallel PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  const std::uint64_t coro_iters = quick ? 50'000 : 500'000;
  const std::uint64_t thread_iters = quick ? 5'000 : 50'000;
  const std::uint64_t event_count = quick ? 200'000 : 2'000'000;
  const int qr_n = quick ? 2048 : 8064;

#if defined(DACC_SIM_FORCE_THREAD_BACKEND)
  const bool have_coro = false;
#else
  const bool have_coro = true;
#endif

  std::printf("engine wall-clock benchmark%s\n", quick ? " (quick)" : "");

  std::printf("process-switch throughput:\n");
  SwitchProbe coro;
  if (have_coro) {
    coro = switch_throughput(sim::ExecBackend::kCoroutine, coro_iters);
    print_switch("coroutine", coro);
  } else {
    std::printf("  coroutine  disabled (sanitizer build)\n");
  }
  const SwitchProbe thread =
      switch_throughput(sim::ExecBackend::kThread, thread_iters);
  print_switch("thread", thread);
  const double speedup = have_coro ? coro.per_sec / thread.per_sec : 0.0;
  if (have_coro) std::printf("  speedup    %.1fx\n", speedup);

  const EventProbe ev = event_throughput(event_count);
  std::printf("event throughput: %llu events in %.3f s  ->  %.2fM events/s "
              "(pool %llu nodes, %llu heap fallbacks)\n",
              static_cast<unsigned long long>(ev.events), ev.wall_s,
              ev.per_sec / 1e6,
              static_cast<unsigned long long>(ev.pool_nodes),
              static_cast<unsigned long long>(ev.heap_fallbacks));

  const QrProbe qr = qr_wall_time(qr_n);
  std::printf("figure-9 QR point: N=%d, 3 GPUs  ->  %.1f ms simulated, "
              "%.3f s wall\n",
              qr.n, qr.sim_ms, qr.wall_s);

  // Parallel cluster scenario. 64 CNs + 64 ACs + the ARM = 129 fabric
  // nodes in the full run; the serial baseline is the coroutine backend
  // (thread under sanitizer builds).
  const int churn_nodes = quick ? 16 : 64;
  const int churn_waves = quick ? 1 : 3;
  const int churn_steps = quick ? 10 : 30;
  const int churn_shards = 16;
  const int host_cores = static_cast<int>(std::thread::hardware_concurrency());
  const sim::ExecBackend base_backend =
      have_coro ? sim::ExecBackend::kCoroutine : sim::ExecBackend::kThread;
  const char* base_label = have_coro ? "coroutine" : "thread";
  std::printf(
      "parallel cluster scenario: %d fabric nodes (%d CN + %d AC + ARM), "
      "%d wave(s) x %d MP2C steps, lease churn per wave\n",
      2 * churn_nodes + 1, churn_nodes, churn_nodes, churn_waves,
      churn_steps);
  const ChurnProbe base =
      cluster_churn(base_backend, 0, churn_nodes, churn_waves, churn_steps);
  std::printf("  %-10s %9llu events in %.3f s  ->  %.2fM events/s\n",
              base_label, static_cast<unsigned long long>(base.events),
              base.wall_s, base.events_per_sec / 1e6);
  const ChurnProbe par = cluster_churn(sim::ExecBackend::kParallel,
                                       churn_shards, churn_nodes, churn_waves,
                                       churn_steps);
  const double exposed =
      par.pstats.critical_path_events == 0
          ? 1.0
          : static_cast<double>(par.pstats.parallel_events) /
                static_cast<double>(par.pstats.critical_path_events);
  const double wall_speedup = base.wall_s / par.wall_s;
  std::printf(
      "  parallel:%d %9llu events in %.3f s  ->  %.2fM events/s  "
      "(%llu windows, exposed parallelism %.2fx)\n",
      churn_shards, static_cast<unsigned long long>(par.events), par.wall_s,
      par.events_per_sec / 1e6,
      static_cast<unsigned long long>(par.pstats.windows), exposed);
  std::printf(
      "  wall speedup %.2fx on %d host core(s); multi-core bound is "
      "min(exposed parallelism, cores) = %.2fx\n",
      wall_speedup, host_cores,
      std::min(exposed, static_cast<double>(host_cores)));
  if (base.events != par.events || base.switches != par.switches) {
    std::fprintf(stderr,
                 "warning: backend divergence (events %llu vs %llu, "
                 "switches %llu vs %llu) — determinism contract violated\n",
                 static_cast<unsigned long long>(base.events),
                 static_cast<unsigned long long>(par.events),
                 static_cast<unsigned long long>(base.switches),
                 static_cast<unsigned long long>(par.switches));
    return 1;
  }
  std::printf("  determinism cross-check: event and switch counts match\n");

  // Era accounting: the same scenario with the band gap pinned to one wire
  // latency reproduces the pre-async global-window behavior, so the window
  // ratio is exactly what the asynchronous band-gap eras bought.
  const SimDuration wire = net::FabricParams{}.wire_latency;
  const ChurnProbe narrow =
      cluster_churn(sim::ExecBackend::kParallel, churn_shards, churn_nodes,
                    churn_waves, churn_steps, /*band_gap=*/wire);
  const double window_cut =
      par.pstats.windows == 0
          ? 0.0
          : static_cast<double>(narrow.pstats.windows) /
                static_cast<double>(par.pstats.windows);
  std::printf(
      "  era accounting: %llu windows with one-lookahead eras vs %llu with "
      "band-gap eras  ->  %.1fx fewer serial syncs\n",
      static_cast<unsigned long long>(narrow.pstats.windows),
      static_cast<unsigned long long>(par.pstats.windows), window_cut);

  // Node-count scaling: the raw-engine ring-walker scenario at 1k and 10k
  // fabric nodes, per shard count, plus the serial baseline.
  const int hop_every = 64;
  std::vector<int> scale_nodes = quick ? std::vector<int>{256}
                                       : std::vector<int>{1000, 10'000};
  std::vector<int> scale_shards{1, 16, 64};
  std::vector<ScaleProbe> scale;
  bool scale_diverged = false;
  for (const int nodes : scale_nodes) {
    const std::uint64_t per_node =
        quick ? 200 : (nodes >= 10'000 ? 1000 : 2000);
    const ScaleProbe sbase =
        ring_scale(base_backend, 0, nodes, per_node, hop_every);
    scale.push_back(sbase);
    std::printf(
        "node-count scaling: %d nodes, %llu events (%s baseline "
        "%.2fM events/s)\n",
        nodes, static_cast<unsigned long long>(sbase.events), base_label,
        sbase.per_sec / 1e6);
    for (const int shards : scale_shards) {
      const ScaleProbe p = ring_scale(sim::ExecBackend::kParallel, shards,
                                      nodes, per_node, hop_every);
      scale.push_back(p);
      std::printf(
          "  parallel:%-3d %.2fM events/s  (%llu windows, exposed "
          "parallelism %.2fx)\n",
          shards, p.per_sec / 1e6,
          static_cast<unsigned long long>(p.pstats.windows), p.exposed);
      if (p.events != sbase.events) {
        std::fprintf(stderr,
                     "warning: scaling divergence at %d nodes / %d shards "
                     "(%llu vs %llu events)\n",
                     nodes, shards,
                     static_cast<unsigned long long>(p.events),
                     static_cast<unsigned long long>(sbase.events));
        scale_diverged = true;
      }
    }
  }
  if (scale_diverged) return 1;

  std::ofstream pjson(out_parallel);
  pjson << "{\n"
        << "  \"bench\": \"parallel_scaling\",\n"
        << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
        << "  \"cluster_churn\": {\n"
        << "    \"fabric_nodes\": " << 2 * churn_nodes + 1
        << ", \"shards\": " << churn_shards
        << ", \"waves\": " << churn_waves << ", \"steps\": " << churn_steps
        << ",\n"
        << "    \"" << base_label << "\": {\"events\": " << base.events
        << ", \"wall_s\": " << base.wall_s
        << ", \"events_per_sec\": " << base.events_per_sec << "},\n"
        << "    \"parallel\": {\"events\": " << par.events
        << ", \"wall_s\": " << par.wall_s
        << ", \"events_per_sec\": " << par.events_per_sec
        << ", \"windows\": " << par.pstats.windows
        << ", \"parallel_events\": " << par.pstats.parallel_events
        << ", \"critical_path_events\": " << par.pstats.critical_path_events
        << "},\n"
        << "    \"one_lookahead_windows\": " << narrow.pstats.windows
        << ", \"window_reduction\": " << window_cut
        << ", \"exposed_parallelism\": " << exposed << "\n"
        << "  },\n"
        << "  \"ring_scaling\": [\n";
  for (std::size_t i = 0; i < scale.size(); ++i) {
    const ScaleProbe& p = scale[i];
    pjson << "    {\"nodes\": " << p.nodes << ", \"shards\": " << p.shards
          << ", \"events\": " << p.events << ", \"wall_s\": " << p.wall_s
          << ", \"events_per_sec\": " << p.per_sec
          << ", \"windows\": " << p.pstats.windows
          << ", \"exposed_parallelism\": " << p.exposed << "}"
          << (i + 1 < scale.size() ? "," : "") << "\n";
  }
  pjson << "  ]\n}\n";
  pjson.flush();
  if (!pjson) {
    std::fprintf(stderr, "error: could not write %s\n", out_parallel.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_parallel.c_str());

  // Command-stream batching: op-dense churn (MP2C-style async kernel
  // streams) with obs counters on — how many wire messages does the front
  // end spend per op with and without kBatch coalescing?
  const int cs_nodes = quick ? 4 : 8;
  const int cs_bursts = quick ? 5 : 10;
  std::printf(
      "command-stream batching: %d CN + %d AC, %d bursts x 16 async "
      "launches per CN\n",
      cs_nodes, cs_nodes, cs_bursts);
  const ChurnProbe un = stream_churn(base_backend, cs_nodes, cs_bursts,
                                     {/*enabled=*/false, /*watermark=*/16});
  const ChurnProbe ba = stream_churn(base_backend, cs_nodes, cs_bursts,
                                     {/*enabled=*/true, /*watermark=*/16});
  const double un_per_op = static_cast<double>(un.rpc_msgs) /
                           static_cast<double>(un.rpc_ops);
  const double ba_per_op = static_cast<double>(ba.rpc_msgs) /
                           static_cast<double>(ba.rpc_ops);
  const double rpc_drop = 1.0 - static_cast<double>(ba.rpc_msgs) /
                                    static_cast<double>(un.rpc_msgs);
  const double dmpi_drop = 1.0 - static_cast<double>(ba.dmpi_msgs) /
                                     static_cast<double>(un.dmpi_msgs);
  std::printf(
      "  unbatched  %7llu rpc msgs / %llu ops = %.2f msgs/op  "
      "(%llu dmpi msgs total)\n",
      static_cast<unsigned long long>(un.rpc_msgs),
      static_cast<unsigned long long>(un.rpc_ops), un_per_op,
      static_cast<unsigned long long>(un.dmpi_msgs));
  std::printf(
      "  batched    %7llu rpc msgs / %llu ops = %.2f msgs/op  "
      "(%llu dmpi msgs total)\n",
      static_cast<unsigned long long>(ba.rpc_msgs),
      static_cast<unsigned long long>(ba.rpc_ops), ba_per_op,
      static_cast<unsigned long long>(ba.dmpi_msgs));
  std::printf("  reduction  %.1f%% front-end rpc msgs, %.1f%% fabric-wide "
              "dmpi msgs\n",
              100.0 * rpc_drop, 100.0 * dmpi_drop);

  // Profiler overhead: the 129-node churn scenario with the wallclock
  // profiler detached vs. attached, best-of-N wall time each way. Detached
  // is the baseline by construction (one null-pointer check per hook site);
  // attached must cost < 2% on the serial hot loop, whose instrumentation
  // is two clock reads per run() call.
  const int prof_reps = quick ? 3 : 5;
  double prof_off_s = 0.0;
  double prof_on_s = 0.0;
  obs::Profiler serial_prof;
  for (int r = 0; r < prof_reps; ++r) {
    const ChurnProbe off = cluster_churn(base_backend, 0, churn_nodes,
                                         churn_waves, churn_steps);
    if (r == 0 || off.wall_s < prof_off_s) prof_off_s = off.wall_s;
    const ChurnProbe on =
        cluster_churn(base_backend, 0, churn_nodes, churn_waves, churn_steps,
                      /*band_gap=*/0, &serial_prof);
    if (r == 0 || on.wall_s < prof_on_s) prof_on_s = on.wall_s;
  }
  const double prof_overhead_pct =
      prof_off_s > 0.0
          ? std::max(0.0, 100.0 * (prof_on_s - prof_off_s) / prof_off_s)
          : 0.0;
  // Attribution coverage on the parallel backend: per-shard busy / stall /
  // inbox-drain / sync phases plus worker waits and coordinator serial
  // time must tile the measured worker wallclock.
  obs::Profiler par_prof;
  const ChurnProbe prof_par =
      cluster_churn(sim::ExecBackend::kParallel, churn_shards, churn_nodes,
                    churn_waves, churn_steps, /*band_gap=*/0, &par_prof);
  const double attribution_pct =
      par_prof.measured_ns() > 0
          ? 100.0 * static_cast<double>(par_prof.attributed_ns()) /
                static_cast<double>(par_prof.measured_ns())
          : 0.0;
  std::printf(
      "profiler overhead: churn best-of-%d  %.3fs detached, %.3fs attached "
      "->  %.2f%% (bound 2%%)\n",
      prof_reps, prof_off_s, prof_on_s, prof_overhead_pct);
  std::printf(
      "  parallel attribution: %.3f ms attributed of %.3f ms measured "
      "(%.1f%%, bound >= 95%%) over %llu events\n",
      par_prof.attributed_ns() / 1e6, par_prof.measured_ns() / 1e6,
      attribution_pct, static_cast<unsigned long long>(prof_par.events));
  for (int shard = 0; shard < churn_shards; ++shard) {
    std::uint64_t total = 0;
    for (int p = 0; p < sim::WallSink::kPhases; ++p) {
      total += par_prof.shard_ns(shard, static_cast<sim::WallSink::Phase>(p));
    }
    if (total == 0) continue;
    std::printf("    shard %2d: busy=%.3fms stall=%.3fms inbox=%.3fms "
                "sync=%.3fms\n",
                shard, par_prof.shard_ns(shard, sim::WallSink::kBusy) / 1e6,
                par_prof.shard_ns(shard, sim::WallSink::kStall) / 1e6,
                par_prof.shard_ns(shard, sim::WallSink::kInbox) / 1e6,
                par_prof.shard_ns(shard, sim::WallSink::kSync) / 1e6);
  }
  // The committed bounds. Quick mode keeps the attribution identity (it is
  // structural, not statistical) but relaxes the wall-time bound: tiny
  // quick runs put scheduler noise above the 2% the full runs resolve.
  const double overhead_bound = quick ? 20.0 : 2.0;
  if (prof_overhead_pct > overhead_bound) {
    std::fprintf(stderr,
                 "error: profiler overhead %.2f%% above the %.1f%% bound\n",
                 prof_overhead_pct, overhead_bound);
    return 1;
  }
  if (attribution_pct < 95.0) {
    std::fprintf(stderr,
                 "error: profiler attribution %.1f%% below the 95%% bound\n",
                 attribution_pct);
    return 1;
  }

  std::ofstream json(out_path);
  json << "{\n"
       << "  \"bench\": \"wallclock_engine\",\n"
       << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
       << "  \"switch_throughput\": {\n";
  if (have_coro) {
    json << "    \"coroutine\": {\"switches\": " << coro.switches
         << ", \"wall_s\": " << coro.wall_s
         << ", \"per_sec\": " << coro.per_sec << "},\n";
  }
  json << "    \"thread\": {\"switches\": " << thread.switches
       << ", \"wall_s\": " << thread.wall_s
       << ", \"per_sec\": " << thread.per_sec << "}";
  if (have_coro) json << ",\n    \"coroutine_speedup\": " << speedup;
  json << "\n  },\n"
       << "  \"event_throughput\": {\"events\": " << ev.events
       << ", \"wall_s\": " << ev.wall_s << ", \"per_sec\": " << ev.per_sec
       << ", \"pool_nodes\": " << ev.pool_nodes
       << ", \"heap_fallbacks\": " << ev.heap_fallbacks << "},\n"
       << "  \"fig09_qr\": {\"n\": " << qr.n << ", \"gpus\": 3"
       << ", \"sim_ms\": " << qr.sim_ms << ", \"wall_s\": " << qr.wall_s
       << "},\n"
       << "  \"parallel_cluster\": {\n"
       << "    \"fabric_nodes\": " << 2 * churn_nodes + 1
       << ", \"compute_nodes\": " << churn_nodes
       << ", \"accelerators\": " << churn_nodes
       << ", \"waves\": " << churn_waves << ", \"steps\": " << churn_steps
       << ",\n"
       << "    \"host_cores\": " << host_cores << ",\n"
       << "    \"" << base_label << "\": {\"events\": " << base.events
       << ", \"wall_s\": " << base.wall_s
       << ", \"events_per_sec\": " << base.events_per_sec << "},\n"
       << "    \"parallel\": {\"shards\": " << churn_shards
       << ", \"events\": " << par.events << ", \"wall_s\": " << par.wall_s
       << ", \"events_per_sec\": " << par.events_per_sec
       << ", \"windows\": " << par.pstats.windows
       << ", \"parallel_events\": " << par.pstats.parallel_events
       << ", \"critical_path_events\": " << par.pstats.critical_path_events
       << "},\n"
       << "    \"wall_speedup\": " << wall_speedup
       << ", \"exposed_parallelism\": " << exposed << "\n"
       << "  },\n"
       << "  \"command_stream\": {\n"
       << "    \"compute_nodes\": " << cs_nodes
       << ", \"bursts\": " << cs_bursts << ", \"watermark\": 16,\n"
       << "    \"unbatched\": {\"rpc_msgs\": " << un.rpc_msgs
       << ", \"rpc_ops\": " << un.rpc_ops
       << ", \"msgs_per_op\": " << un_per_op
       << ", \"dmpi_msgs\": " << un.dmpi_msgs
       << ", \"sim_ms\": " << un.sim_ms << "},\n"
       << "    \"batched\": {\"rpc_msgs\": " << ba.rpc_msgs
       << ", \"rpc_ops\": " << ba.rpc_ops
       << ", \"msgs_per_op\": " << ba_per_op
       << ", \"dmpi_msgs\": " << ba.dmpi_msgs
       << ", \"sim_ms\": " << ba.sim_ms << "},\n"
       << "    \"rpc_msg_reduction\": " << rpc_drop
       << ", \"dmpi_msg_reduction\": " << dmpi_drop << "\n"
       << "  },\n"
       << "  \"profiler_overhead\": {\n"
       << "    \"fabric_nodes\": " << 2 * churn_nodes + 1
       << ", \"best_of\": " << prof_reps << ",\n"
       << "    \"detached_wall_s\": " << prof_off_s
       << ", \"attached_wall_s\": " << prof_on_s
       << ", \"overhead_pct\": " << prof_overhead_pct
       << ", \"overhead_bound_pct\": " << overhead_bound << ",\n"
       << "    \"parallel_attributed_ns\": " << par_prof.attributed_ns()
       << ", \"parallel_measured_ns\": " << par_prof.measured_ns()
       << ", \"attribution_pct\": " << attribution_pct
       << ", \"attribution_bound_pct\": 95\n"
       << "  }\n"
       << "}\n";
  json.flush();
  if (!json) {
    std::fprintf(stderr, "error: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace dacc::bench

int main(int argc, char** argv) { return dacc::bench::run(argc, argv); }
