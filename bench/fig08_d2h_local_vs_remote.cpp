// Figure 8: device-to-host counterpart of Figure 7; the remote line uses
// the best fixed block for this direction (128 KiB, per Figure 6).
#include "bench_util.hpp"

using namespace dacc;
using bench::Probe;

int main(int argc, char** argv) {
  util::Table table({"size", "CUDA local (pinned)", "CUDA local (pageable)",
                     "MPI (IMB PingPong)", "Dyn. arch (pipeline-128K)"});

  for (const std::uint64_t bytes : bench::figure_sizes()) {
    const Probe pinned = bench::local_copy(bytes, gpu::HostMemType::kPinned,
                                           /*h2d=*/false);
    const Probe pageable =
        bench::local_copy(bytes, gpu::HostMemType::kPageable, false);
    const Probe mpi = bench::mpi_pingpong(bytes);
    const Probe remote = bench::remote_copy(
        bytes, proto::TransferConfig::pipeline(128_KiB), false);
    table.row()
        .add(bench::size_label(bytes))
        .add(pinned.mib_s, 0)
        .add(pageable.mib_s, 0)
        .add(mpi.mib_s, 0)
        .add(remote.mib_s, 0);
    const std::string sz = bench::size_label(bytes);
    bench::register_result("fig08/d2h/local-pinned/" + sz, pinned.elapsed,
                           pinned.mib_s);
    bench::register_result("fig08/d2h/local-pageable/" + sz,
                           pageable.elapsed, pageable.mib_s);
    bench::register_result("fig08/d2h/mpi/" + sz, mpi.elapsed, mpi.mib_s);
    bench::register_result("fig08/d2h/remote-128K/" + sz, remote.elapsed,
                           remote.mib_s);
  }

  std::printf(
      "Figure 8 — D2H, node-attached vs network-attached GPU [MiB/s]\n"
      "(paper peaks: pinned ~5700, pageable ~4700, remote ~2600)\n\n");
  table.print(std::cout);
  std::printf("\n");
  return bench::finish(argc, argv);
}
