// Ablation B — GPUDirect v1. The protocol relies on NIC/GPU shared pinned
// pages so a received block is DMA-able in place (Section IV). Without it,
// every block pays a host staging copy that serializes with its DMA; this
// bench quantifies what that sharing buys.
#include "bench_util.hpp"

using namespace dacc;

int main(int argc, char** argv) {
  util::Table table({"size", "H2D gpudirect", "H2D no-gpudirect",
                     "D2H gpudirect", "D2H no-gpudirect", "H2D gain"});

  for (const std::uint64_t size : {1_MiB, 4_MiB, 16_MiB, 64_MiB}) {
    auto with = proto::TransferConfig::pipeline(128_KiB);
    auto without = with;
    without.gpudirect = false;
    const auto h2d_on = bench::remote_copy(size, with, true);
    const auto h2d_off = bench::remote_copy(size, without, true);
    const auto d2h_on = bench::remote_copy(size, with, false);
    const auto d2h_off = bench::remote_copy(size, without, false);
    table.row()
        .add(bench::size_label(size))
        .add(h2d_on.mib_s, 0)
        .add(h2d_off.mib_s, 0)
        .add(d2h_on.mib_s, 0)
        .add(d2h_off.mib_s, 0)
        .add(h2d_on.mib_s / h2d_off.mib_s, 2);
    const std::string sz = bench::size_label(size);
    bench::register_result("abl_gpudirect/h2d/on/" + sz, h2d_on.elapsed,
                           h2d_on.mib_s);
    bench::register_result("abl_gpudirect/h2d/off/" + sz, h2d_off.elapsed,
                           h2d_off.mib_s);
    bench::register_result("abl_gpudirect/d2h/on/" + sz, d2h_on.elapsed,
                           d2h_on.mib_s);
    bench::register_result("abl_gpudirect/d2h/off/" + sz, d2h_off.elapsed,
                           d2h_off.mib_s);
  }

  std::printf(
      "Ablation B — pipeline bandwidth [MiB/s] with and without GPUDirect\n"
      "(128 KiB blocks; 'gain' is the H2D speedup from page sharing)\n\n");
  table.print(std::cout);
  std::printf("\n");
  return bench::finish(argc, argv);
}
