// Shared helpers for the figure-reproduction benchmarks.
//
// Every bench binary follows the same pattern: run the deterministic
// simulation sweep once, print the paper-style series as an aligned table
// (plus the paper's expectation for EXPERIMENTS.md), then register the
// cached results as google-benchmark entries (manual time = simulated time)
// so standard tooling (--benchmark_format=json etc.) works too.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/api.hpp"
#include "dmpi/mpi.hpp"
#include "obs/metrics.hpp"
#include "rt/cluster.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace dacc::bench {

struct Probe {
  SimDuration elapsed = 0;
  double mib_s = 0.0;
};

/// Effective bandwidth of one remote acMemCpy through the full middleware
/// (1 CN + 1 AC phantom cluster; warm-up copy, then the timed one).
inline Probe remote_copy(std::uint64_t bytes, proto::TransferConfig config,
                         bool h2d) {
  rt::ClusterConfig cc;
  cc.compute_nodes = 1;
  cc.accelerators = 1;
  cc.functional_gpus = false;
  rt::Cluster cluster(cc);
  Probe probe;
  rt::JobSpec spec;
  spec.accelerators_per_rank = 1;
  spec.body = [&](rt::JobContext& job) {
    core::Accelerator& ac = job.session()[0];
    ac.set_transfer_config(config);
    const gpu::DevPtr p = ac.mem_alloc(bytes);
    if (h2d) {
      ac.memcpy_h2d(p, util::Buffer::phantom(bytes));  // warm-up
      const SimTime t0 = job.ctx().now();
      ac.memcpy_h2d(p, util::Buffer::phantom(bytes));
      probe.elapsed = job.ctx().now() - t0;
    } else {
      (void)ac.memcpy_d2h(p, bytes);  // warm-up
      const SimTime t0 = job.ctx().now();
      (void)ac.memcpy_d2h(p, bytes);
      probe.elapsed = job.ctx().now() - t0;
    }
    probe.mib_s = mib_per_s(bytes, probe.elapsed);
  };
  cluster.submit(spec);
  cluster.run();
  return probe;
}

/// Node-local cudaMemcpy-equivalent bandwidth (paper's "CUDA local" lines).
inline Probe local_copy(std::uint64_t bytes, gpu::HostMemType mem, bool h2d) {
  sim::Engine engine;
  gpu::Device device(engine, gpu::tesla_c1060(),
                     gpu::KernelRegistry::with_builtins(),
                     /*functional=*/false);
  Probe probe;
  engine.spawn("host", [&](sim::Context& ctx) {
    gpu::Driver drv(device, ctx);
    const gpu::DevPtr p = drv.mem_alloc(bytes);
    const SimTime t0 = ctx.now();
    if (h2d) {
      drv.memcpy_htod(p, util::Buffer::phantom(bytes), mem);
    } else {
      (void)drv.memcpy_dtoh(p, bytes, mem);
    }
    probe.elapsed = ctx.now() - t0;
    probe.mib_s = mib_per_s(bytes, probe.elapsed);
  });
  engine.run();
  return probe;
}

/// Raw dmpi bandwidth: the IMB PingPong upper bound of Figures 5-8.
inline Probe mpi_pingpong(std::uint64_t bytes,
                          net::FabricParams fabric_params = {},
                          dmpi::MpiParams mpi_params = {}) {
  sim::Engine engine;
  net::Fabric fabric(engine, 2, fabric_params);
  dmpi::World world(engine, fabric, {0, 1}, mpi_params);
  Probe probe;
  engine.spawn("rank0", [&](sim::Context& ctx) {
    dmpi::Mpi mpi(world, ctx, 0);
    // Warm-up, then one timed round trip.
    mpi.send(world.world_comm(), 1, 0, util::Buffer::phantom(bytes));
    (void)mpi.recv(world.world_comm(), 1, 0);
    const SimTime t0 = ctx.now();
    mpi.send(world.world_comm(), 1, 0, util::Buffer::phantom(bytes));
    (void)mpi.recv(world.world_comm(), 1, 0);
    probe.elapsed = (ctx.now() - t0) / 2;  // IMB convention: half RTT
    probe.mib_s = mib_per_s(bytes, probe.elapsed);
  });
  engine.spawn("rank1", [&](sim::Context& ctx) {
    dmpi::Mpi mpi(world, ctx, 1);
    for (int i = 0; i < 2; ++i) {
      auto msg = mpi.recv(world.world_comm(), 0, 0);
      mpi.send(world.world_comm(), 0, 0, std::move(msg));
    }
  });
  engine.run();
  return probe;
}

/// Everything register_result() has seen, in registration order — the
/// source for the machine-readable JSON finish() can emit.
struct Result {
  std::string name;
  SimDuration simulated = 0;
  double mib_s = 0.0;
  double gflops = 0.0;
};

inline std::vector<Result>& results() {
  static std::vector<Result> cache;
  return cache;
}

/// One cached result registered as a google-benchmark entry whose manual
/// time is the simulated duration; also recorded for finish()'s JSON file.
inline void register_result(const std::string& name, SimDuration simulated,
                            double mib_s = 0.0, double gflops = 0.0) {
  results().push_back({name, simulated, mib_s, gflops});
  benchmark::RegisterBenchmark(
      name.c_str(),
      [simulated, mib_s, gflops](benchmark::State& state) {
        for (auto _ : state) {
          state.SetIterationTime(to_seconds(simulated));
        }
        if (mib_s > 0.0) state.counters["MiB/s"] = mib_s;
        if (gflops > 0.0) state.counters["GFlop/s"] = gflops;
      })
      ->UseManualTime()
      ->Iterations(1);
}

/// Metrics snapshot finish() folds into the BENCH_*.json file (under an
/// "obs" key). Benches that run with ClusterConfig::metrics call
/// record_metrics(cluster.metrics()) after cluster.run(); the snapshot is
/// deterministic, so the committed JSON stays stable across machines and
/// execution backends.
inline std::string& metrics_snapshot() {
  static std::string cache;
  return cache;
}

inline void record_metrics(const obs::Registry& registry) {
  std::string snap = registry.json();
  while (!snap.empty() && snap.back() == '\n') snap.pop_back();
  metrics_snapshot() = std::move(snap);
}

/// Standard message-size sweep of the bandwidth figures (1 KiB .. 64 MiB).
inline std::vector<std::uint64_t> figure_sizes() {
  return {1_KiB,  4_KiB,   16_KiB, 64_KiB, 256_KiB,
          1_MiB,  4_MiB,   16_MiB, 64_MiB};
}

inline std::string size_label(std::uint64_t bytes) {
  if (bytes >= 1_MiB) return std::to_string(bytes / 1_MiB) + "MiB";
  return std::to_string(bytes / 1_KiB) + "KiB";
}

/// Runs the registered google-benchmark entries; when json_path is
/// non-empty, additionally writes every register_result() entry to that
/// file as one JSON object per series point (the BENCH_fig*.json files
/// committed at the repo root — simulated nanoseconds plus whichever of
/// MiB/s and GFlop/s the figure reports).
inline int finish(int argc, char** argv, const std::string& json_path = "") {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (json_path.empty()) return 0;
  std::ofstream json(json_path);
  json << "{\n  \"results\": [\n";
  const std::vector<Result>& all = results();
  for (std::size_t i = 0; i < all.size(); ++i) {
    const Result& r = all[i];
    json << "    {\"name\": \"" << r.name
         << "\", \"sim_ns\": " << r.simulated;
    if (r.mib_s > 0.0) json << ", \"mib_s\": " << r.mib_s;
    if (r.gflops > 0.0) json << ", \"gflops\": " << r.gflops;
    json << '}' << (i + 1 < all.size() ? "," : "") << '\n';
  }
  json << "  ]";
  if (!metrics_snapshot().empty()) {
    json << ",\n  \"obs\": " << metrics_snapshot();
  }
  json << "\n}\n";
  json.flush();
  if (!json) {
    std::fprintf(stderr, "error: could not write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace dacc::bench
