// Figure 7: host-to-device comparison between a node-attached GPU (CUDA
// local, pinned DMA and pageable PIO) and a network-attached GPU (pipeline
// 128-512K), with the MPI bound for reference.
//
// Paper shape: local pinned peaks ~5700 MiB/s, local pageable ~4700, the
// remote pipeline ~2600 — a clear local advantage in raw bandwidth whose
// application-level impact Figures 9-11 then put into perspective.
#include "bench_util.hpp"

using namespace dacc;
using bench::Probe;

int main(int argc, char** argv) {
  util::Table table({"size", "CUDA local (pinned)", "CUDA local (pageable)",
                     "MPI (IMB PingPong)", "Dyn. arch (pipeline-128-512K)"});

  for (const std::uint64_t bytes : bench::figure_sizes()) {
    const Probe pinned = bench::local_copy(bytes, gpu::HostMemType::kPinned,
                                           /*h2d=*/true);
    const Probe pageable =
        bench::local_copy(bytes, gpu::HostMemType::kPageable, true);
    const Probe mpi = bench::mpi_pingpong(bytes);
    const Probe remote = bench::remote_copy(
        bytes, proto::TransferConfig::pipeline_adaptive(), true);
    table.row()
        .add(bench::size_label(bytes))
        .add(pinned.mib_s, 0)
        .add(pageable.mib_s, 0)
        .add(mpi.mib_s, 0)
        .add(remote.mib_s, 0);
    const std::string sz = bench::size_label(bytes);
    bench::register_result("fig07/h2d/local-pinned/" + sz, pinned.elapsed,
                           pinned.mib_s);
    bench::register_result("fig07/h2d/local-pageable/" + sz,
                           pageable.elapsed, pageable.mib_s);
    bench::register_result("fig07/h2d/mpi/" + sz, mpi.elapsed, mpi.mib_s);
    bench::register_result("fig07/h2d/remote-adaptive/" + sz, remote.elapsed,
                           remote.mib_s);
  }

  std::printf(
      "Figure 7 — H2D, node-attached vs network-attached GPU [MiB/s]\n"
      "(paper peaks: pinned ~5700, pageable ~4700, remote ~2600)\n\n");
  table.print(std::cout);
  std::printf("\n");
  return bench::finish(argc, argv);
}
