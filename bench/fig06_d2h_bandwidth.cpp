// Figure 6: device-to-host bandwidth of the remote acMemCpy() for the naive
// protocol and pipeline block sizes 64/128/256/512 KiB against the MPI
// PingPong bound.
//
// Paper shape: pipeline beats naive for large messages; 128 KiB is the best
// single block size in this direction.
#include "bench_util.hpp"

using namespace dacc;
using bench::Probe;

int main(int argc, char** argv) {
  struct Curve {
    const char* name;
    proto::TransferConfig config;
    bool is_mpi = false;
  };
  const std::vector<Curve> curves = {
      {"naive", proto::TransferConfig::naive()},
      {"pipeline-64K", proto::TransferConfig::pipeline(64_KiB)},
      {"pipeline-128K", proto::TransferConfig::pipeline(128_KiB)},
      {"pipeline-256K", proto::TransferConfig::pipeline(256_KiB)},
      {"pipeline-512K", proto::TransferConfig::pipeline(512_KiB)},
      {"MPI (IMB PingPong)", proto::TransferConfig{}, true},
  };

  std::vector<std::string> headers{"size"};
  for (const Curve& c : curves) headers.emplace_back(c.name);
  util::Table table(headers);

  for (const std::uint64_t bytes : bench::figure_sizes()) {
    table.row().add(bench::size_label(bytes));
    for (const Curve& c : curves) {
      const Probe p = c.is_mpi ? bench::mpi_pingpong(bytes)
                               : bench::remote_copy(bytes, c.config, false);
      table.add(p.mib_s, 0);
      bench::register_result(
          "fig06/d2h/" + std::string(c.name) + "/" + bench::size_label(bytes),
          p.elapsed, p.mib_s);
    }
  }

  std::printf(
      "Figure 6 — device-to-host bandwidth [MiB/s], dynamic architecture\n"
      "(paper: pipeline-128K best fixed block in this direction)\n\n");
  table.print(std::cout);
  std::printf("\n");
  return bench::finish(argc, argv);
}
