// Deterministic metrics registry (dacc::obs).
//
// Named counters, gauges and fixed-bucket histograms over simulated-time
// quantities (latencies, bytes, queue depths). Components hold cheap handles
// (a registry pointer + index) so the hot path is one branch and one integer
// update; a default-constructed handle is a no-op, which keeps every
// instrumentation site free when no registry is attached.
//
// Determinism contract: all stored state is integral (no floats), and under
// the parallel execution backend updates are not applied in worker order —
// they are tagged with the canonical key of the emitting event (time, ord,
// intra-event seq) and buffered per shard, exactly like sim::Tracer spans,
// then merged and applied in canonical order when the run ends. A snapshot
// is therefore byte-identical across the coroutine, thread and parallel
// backends (tests/obs/obs_determinism_test.cpp enforces this).
//
// Exporters: write_json (machine-readable snapshot, folded into BENCH_*.json
// by bench_util) and write_prometheus (text exposition format). Both sort by
// metric name so the output does not depend on registration order, which may
// legitimately differ between backends when components bind lazily from
// shard workers.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/units.hpp"

namespace dacc::sim {
class Engine;
}

namespace dacc::obs {

class Registry;

/// Monotonic event count. `add` is hot-path safe from any simulation context.
class Counter {
 public:
  Counter() = default;
  inline void add(std::uint64_t v = 1);
  explicit operator bool() const { return reg_ != nullptr; }

 private:
  friend class Registry;
  Counter(Registry* reg, std::uint32_t idx) : reg_(reg), idx_(idx) {}
  Registry* reg_ = nullptr;
  std::uint32_t idx_ = 0;
};

/// Last-write-wins level (pool occupancy, queue depth). Signed.
class Gauge {
 public:
  Gauge() = default;
  inline void set(std::int64_t v);
  inline void add(std::int64_t delta);
  explicit operator bool() const { return reg_ != nullptr; }

 private:
  friend class Registry;
  Gauge(Registry* reg, std::uint32_t idx) : reg_(reg), idx_(idx) {}
  Registry* reg_ = nullptr;
  std::uint32_t idx_ = 0;
};

/// Fixed-bound histogram; buckets are cumulative in exports (Prometheus
/// semantics). Observations are unsigned (sim-time ns, bytes, percentages).
class Histogram {
 public:
  Histogram() = default;
  inline void observe(std::uint64_t value);
  explicit operator bool() const { return reg_ != nullptr; }

 private:
  friend class Registry;
  Histogram(Registry* reg, std::uint32_t idx) : reg_(reg), idx_(idx) {}
  Registry* reg_ = nullptr;
  std::uint32_t idx_ = 0;
};

/// Default latency bounds (ns): 1us .. 1s, decades.
std::vector<std::uint64_t> latency_bounds_ns();

/// Composes a metric name with one embedded Prometheus-style label:
/// labeled("dacc_raft_term", "replica", "2") -> `dacc_raft_term{replica="2"}`.
/// An empty name yields just the label suffix, for callers that append it to
/// several series of one component. Backslash, double quote and newline in
/// the value are escaped per the Prometheus text exposition format, so the
/// stored series name is already a valid exposition label.
std::string labeled(std::string_view name, std::string_view key,
                    std::string_view value);

/// Read-only histogram readout with fixed-bucket quantile estimation — the
/// SLO layer. Snapshot semantics: `Registry::hist` copies the buckets, so a
/// Hist stays stable while the run continues. All arithmetic is integral
/// (quantiles are requested in permille), so a quantile computed from a
/// deterministic snapshot is itself deterministic.
class Hist {
 public:
  /// False when the series does not exist (or is not a histogram); every
  /// readout on an invalid Hist returns 0.
  bool valid() const { return valid_; }
  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }

  /// Quantile estimate: q in permille (500 = p50, 990 = p99). Locates the
  /// bucket holding the ceil(q*count/1000)-th observation and interpolates
  /// linearly between the bucket's bounds. An empty histogram yields 0; a
  /// rank landing in the overflow bucket clamps to the highest finite bound
  /// (fixed-bucket histograms cannot see past it).
  std::uint64_t quantile_permille(std::uint32_t q) const;
  std::uint64_t p50() const { return quantile_permille(500); }
  std::uint64_t p90() const { return quantile_permille(900); }
  std::uint64_t p99() const { return quantile_permille(990); }

  const std::vector<std::uint64_t>& bounds() const { return bounds_; }
  /// Non-cumulative, one extra overflow bucket past the last bound.
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

 private:
  friend class Registry;
  bool valid_ = false;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::vector<std::uint64_t> bounds_;
  std::vector<std::uint64_t> buckets_;
};

/// One per-series SLO target: "quantile q of `series` must be <= bound".
struct Slo {
  std::string series;
  std::uint32_t q_permille = 990;
  std::uint64_t bound = 0;
};

/// Result of evaluating one Slo against the current snapshot. A series with
/// zero observations passes vacuously (nothing was measured, nothing was
/// violated); a missing series fails so typos surface.
struct SloResult {
  Slo slo;
  std::uint64_t observed = 0;
  std::uint64_t count = 0;
  bool ok = true;
};

/// Deterministic fixed-order table of SLO results (one line per target:
/// series, quantile, bound, observed, sample count, PASS/FAIL). Shared by
/// the readout examples and benches so their byte-compared digests agree.
void write_slo_report(const std::vector<SloResult>& results,
                      std::ostream& os);

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Get-or-create. Names follow Prometheus conventions; labels are embedded
  /// in the name, e.g. `dacc_dmpi_msgs_total{rank="3"}`. Re-registering an
  /// existing name with a different kind (or different histogram bounds)
  /// throws std::invalid_argument.
  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  Histogram histogram(const std::string& name,
                      std::vector<std::uint64_t> bounds);

  // --- snapshot reads (tests / harnesses; not hot-path) -------------------
  std::size_t size() const;
  std::uint64_t counter_value(const std::string& name) const;
  std::int64_t gauge_value(const std::string& name) const;
  std::uint64_t histogram_count(const std::string& name) const;
  std::uint64_t histogram_sum(const std::string& name) const;

  /// Quantile readout: copies the named histogram's buckets into a Hist
  /// (invalid when the series is missing or not a histogram).
  Hist hist(const std::string& name) const;

  /// Registers an SLO target evaluated by check_slos(). Targets are not part
  /// of the snapshot exporters, so registering them never perturbs the
  /// byte-compared deterministic output.
  void set_slo(std::string series, std::uint32_t q_permille,
               std::uint64_t bound);

  /// Evaluates every registered SLO against the current buckets, in
  /// registration order. Deterministic: quantiles are integer math over the
  /// deterministic histogram state.
  std::vector<SloResult> check_slos() const;

  /// JSON snapshot: {"metrics":[{...}, ...]} sorted by name. Deterministic.
  void write_json(std::ostream& os) const;
  std::string json() const;

  /// Prometheus text exposition format, sorted by name. Deterministic.
  void write_prometheus(std::ostream& os) const;
  std::string prometheus() const;

  /// Prefix-filtered snapshots: include=true keeps only metrics whose name
  /// starts with `prefix`, include=false drops them (empty prefix = no
  /// filter). The cross-backend byte-identity comparisons use these to
  /// split backend-invariant series from the parallel backend's
  /// shard-placement series (kShardSeriesPrefix), which are instead
  /// compared parallel-run against parallel-replay.
  void write_json(std::ostream& os, std::string_view prefix,
                  bool include) const;
  std::string json(std::string_view prefix, bool include) const;
  void write_prometheus(std::ostream& os, std::string_view prefix,
                        bool include) const;
  std::string prometheus(std::string_view prefix, bool include) const;

  /// Name prefix of the parallel backend's per-shard era series (windows
  /// entered, horizon stalls, inbox drain batches).
  static constexpr std::string_view kShardSeriesPrefix = "dacc_sim_shard_";

  /// Resets all values (registrations and handles stay valid).
  void reset();

 private:
  friend class sim::Engine;
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
  enum class OpKind : std::uint8_t { kAdd, kSet, kGaugeAdd, kObserve };

  struct Metric {
    std::string name;
    Kind kind = Kind::kCounter;
    std::uint64_t count = 0;  ///< counter value / histogram observation count
    std::int64_t gauge = 0;
    std::uint64_t sum = 0;                 ///< histogram sum
    std::vector<std::uint64_t> bounds;     ///< upper bounds, ascending
    std::vector<std::uint64_t> buckets;    ///< non-cumulative, +1 overflow
  };

  /// One buffered update, tagged with the canonical key of the event that
  /// emitted it (same scheme as Tracer::Tagged).
  struct PendingOp {
    std::uint32_t idx = 0;
    OpKind op = OpKind::kAdd;
    std::int64_t value = 0;
    SimTime time = 0;
    std::uint64_t ord = 0;
    std::uint32_t seq = 0;
  };

  // Engine hooks (see Engine::set_metrics).
  void attach(sim::Engine* engine) { engine_ = engine; }
  void begin_parallel(int buffers);
  void merge_parallel();

  std::uint32_t intern(const std::string& name, Kind kind,
                       const std::vector<std::uint64_t>* bounds);
  void record(std::uint32_t idx, OpKind op, std::int64_t value);
  void apply(std::uint32_t idx, OpKind op, std::int64_t value);
  const Metric* find(const std::string& name, Kind kind) const;
  std::vector<const Metric*> collect(std::string_view prefix,
                                     bool include) const;

  sim::Engine* engine_ = nullptr;
  /// Guards names_/metrics_ during registration only: components may bind
  /// lazily from shard workers. Hot-path updates never take it — in a
  /// parallel window each shard appends to its own pending buffer; outside
  /// one, execution is single-threaded.
  mutable std::mutex reg_mutex_;
  std::vector<Metric> metrics_;
  std::map<std::string, std::uint32_t> names_;
  std::vector<std::vector<PendingOp>> pending_;  // one per shard + global band
  std::vector<Slo> slos_;
};

inline void Counter::add(std::uint64_t v) {
  if (reg_ != nullptr) {
    reg_->record(idx_, Registry::OpKind::kAdd, static_cast<std::int64_t>(v));
  }
}

inline void Gauge::set(std::int64_t v) {
  if (reg_ != nullptr) reg_->record(idx_, Registry::OpKind::kSet, v);
}

inline void Gauge::add(std::int64_t delta) {
  if (reg_ != nullptr) reg_->record(idx_, Registry::OpKind::kGaugeAdd, delta);
}

inline void Histogram::observe(std::uint64_t value) {
  if (reg_ != nullptr) {
    reg_->record(idx_, Registry::OpKind::kObserve,
                 static_cast<std::int64_t>(value));
  }
}

}  // namespace dacc::obs
