// Wallclock profiler (dacc::obs) — the non-deterministic observability tier.
//
// Implements sim::WallSink: the engine attributes host-wallclock intervals
// to per-shard phases (busy / horizon-stall / inbox-drain / band-gap-sync),
// per-worker barrier waits, and serial-context execution. Attribution is
// chained (each clock read closes the previous interval), so the phase sums
// tile the measured worker wallclock — `attributed_ns()` over
// `measured_ns()` is the coverage identity the bench asserts at >= 95%.
//
// Everything here is explicitly OUTSIDE the deterministic snapshot contract:
// the profiler is a separate object from obs::Registry, its exporters emit
// only `dacc_prof_*` series, and scripts/check_determinism.sh proves the
// byte-compared snapshots are identical with the profiler on and off.
//
// Threading: shard slots are single-writer (the engine's stable
// shard->worker stride assignment), worker slots are written only by their
// own worker, and serial/run totals only from the coordinator. Reads
// (export, accessors) are meant for after run() returns, where the era
// barrier already ordered every write.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace dacc::obs {

class Profiler final : public sim::WallSink {
 public:
  Profiler() = default;
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  // --- sim::WallSink ------------------------------------------------------
  void begin_run(int shards, int workers) override;
  void shard_phase(int shard, Phase phase, std::uint64_t ns) override;
  void worker_wait(int worker, std::uint64_t ns) override;
  void serial(std::uint64_t ns, std::uint64_t events) override;
  void run_complete(std::uint64_t wall_ns, int effective_workers) override;

  /// Scoped wallclock timer for arbitrary hot paths outside the engine:
  /// accumulates into `dacc_prof_scope_ns{name="..."}` (+ a sample counter)
  /// when the scope closes. `name` is interned on first use (serial
  /// contexts only — scopes are for harness/bench/cluster code, not shard
  /// workers).
  class Scope {
   public:
    Scope(Profiler& prof, const std::string& name);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Profiler& prof_;
    std::size_t idx_;
    std::uint64_t t0_;
  };
  Scope scope(const std::string& name) { return Scope(*this, name); }

  // --- readouts (after run) ----------------------------------------------
  int shards() const { return static_cast<int>(shard_slots_.size()); }
  std::uint64_t shard_ns(int shard, Phase phase) const;
  std::uint64_t shard_samples(int shard, Phase phase) const;
  std::uint64_t worker_wait_ns(int worker) const;
  std::uint64_t serial_ns() const { return serial_ns_; }
  std::uint64_t serial_events() const { return serial_events_; }

  /// Total wallclock the profiler attributed to a category (phases + worker
  /// waits + serial). Compare against measured_ns() for coverage.
  std::uint64_t attributed_ns() const;
  /// Total measured worker-wallclock budget: sum over runs of
  /// run-wall * effective-workers. Sequential runs count their serial wall
  /// once (workers = 1).
  std::uint64_t measured_ns() const { return measured_ns_; }

  static const char* phase_name(Phase phase);

  /// Exporters, separate from Registry's by construction: every series name
  /// starts with kSeriesPrefix. Sorted; values are wallclock ns, so the
  /// output is NOT deterministic and must never be byte-compared.
  static constexpr std::string_view kSeriesPrefix = "dacc_prof_";
  void write_prometheus(std::ostream& os) const;
  void write_json(std::ostream& os) const;
  std::string prometheus() const;
  std::string json() const;

  void reset();

 private:
  friend class Scope;

  struct alignas(64) ShardSlot {
    std::uint64_t ns[kPhases] = {0, 0, 0, 0};
    std::uint64_t samples[kPhases] = {0, 0, 0, 0};
  };
  struct alignas(64) WorkerSlot {
    std::uint64_t wait_ns = 0;
    std::uint64_t waits = 0;
  };
  struct NamedScope {
    std::string name;
    std::uint64_t ns = 0;
    std::uint64_t samples = 0;
  };

  std::size_t intern_scope(const std::string& name);

  std::vector<ShardSlot> shard_slots_;
  std::vector<WorkerSlot> worker_slots_;
  std::vector<NamedScope> scopes_;
  std::uint64_t serial_ns_ = 0;
  std::uint64_t serial_events_ = 0;
  std::uint64_t measured_ns_ = 0;
  std::uint64_t runs_ = 0;
};

}  // namespace dacc::obs
