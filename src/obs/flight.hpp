// Flight recorder (dacc::obs) — fixed-size ring buffer over rare
// control-plane events: lease revocations, Raft elections and leader
// changes, engine merged fallbacks, RPC retry ladders, ARM client
// failovers, WireErrors, injected chaos faults.
//
// Post-mortem tool, wallclock tier: recording order (the seq stamp) is
// whatever order threads reach the mutex, so the ring is NOT part of the
// deterministic snapshot contract. The dump sorts by (sim time, seq) —
// causal order, since an effect never precedes its cause in simulated
// time — and carries the trace id active at the noting site, so a dump
// line can be joined against the Chrome trace.
//
// Dump triggers: explicit (Cluster::dump_flight_recorder), automatic after
// a run that had a fault injected (rt::Cluster), and on test failure via
// tests/common/testbed.hpp's FlightOnFailure guard.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace dacc::sim {
class Engine;
}

namespace dacc::obs {

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;

  struct Event {
    SimTime time = 0;          ///< simulated time of the noted event
    std::uint64_t trace_id = 0;  ///< causal trace active at the site (0 = none)
    std::uint64_t seq = 0;       ///< monotonic recording stamp (tiebreaker)
    std::string category;        ///< "raft", "arm", "chaos", "engine", ...
    std::string what;
  };

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  /// Records one event; keeps only the newest `capacity` events. Safe from
  /// any thread (shard workers included).
  void note(SimTime time, std::string category, std::string what,
            std::uint64_t trace_id = 0);

  /// Convenience: stamps the event with the engine's current simulated time
  /// and the trace id of the executing process (0 outside traces).
  void note(sim::Engine& engine, std::string category, std::string what);

  /// The retained events in causal order: ascending (time, seq).
  std::vector<Event> events() const;

  /// Total events ever noted (>= events().size(); the ring overwrites).
  std::uint64_t recorded() const;
  std::size_t capacity() const { return capacity_; }

  /// Human-readable post-mortem dump, one line per event in causal order.
  void dump(std::ostream& os) const;
  std::string dump() const;

  void clear();

 private:
  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::vector<Event> ring_;  ///< circular once full; next_ is the write slot
  std::size_t next_ = 0;
  std::uint64_t seq_ = 0;
};

}  // namespace dacc::obs
