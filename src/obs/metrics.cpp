#include "obs/metrics.hpp"

#include <algorithm>
#include <memory>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "sim/engine.hpp"

namespace dacc::obs {

std::vector<std::uint64_t> latency_bounds_ns() {
  return {1'000,      10'000,      100'000,      1'000'000,
          10'000'000, 100'000'000, 1'000'000'000};
}

std::string labeled(std::string_view name, std::string_view key,
                    std::string_view value) {
  std::string out;
  out.reserve(name.size() + key.size() + value.size() + 5);
  out.append(name);
  out.push_back('{');
  out.append(key);
  out.append("=\"");
  // Prometheus label-value escaping: backslash, double quote and newline
  // would otherwise terminate or corrupt the exposition line.
  for (const char c : value) {
    switch (c) {
      case '\\':
        out.append("\\\\");
        break;
      case '"':
        out.append("\\\"");
        break;
      case '\n':
        out.append("\\n");
        break;
      default:
        out.push_back(c);
    }
  }
  out.append("\"}");
  return out;
}

// ---------------------------------------------------------------------------
// SLO readout layer
// ---------------------------------------------------------------------------

std::uint64_t Hist::quantile_permille(std::uint32_t q) const {
  if (!valid_ || count_ == 0) return 0;
  if (q > 1000) q = 1000;
  // Rank of the target observation, 1-based, ceil(q * count / 1000) but at
  // least 1 so p0 still points at the first observation.
  std::uint64_t rank = (count_ * q + 999) / 1000;
  if (rank == 0) rank = 1;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t in_bucket = buckets_[i];
    if (cum + in_bucket < rank) {
      cum += in_bucket;
      continue;
    }
    if (i >= bounds_.size()) {
      // Overflow bucket: the estimator cannot see past the last finite
      // bound, so clamp there.
      return bounds_.empty() ? 0 : bounds_.back();
    }
    const std::uint64_t lo = i == 0 ? 0 : bounds_[i - 1];
    const std::uint64_t hi = bounds_[i];
    const std::uint64_t k = rank - cum;  // 1..in_bucket
    return lo + (hi - lo) * k / in_bucket;
  }
  return bounds_.empty() ? 0 : bounds_.back();
}

Hist Registry::hist(const std::string& name) const {
  Hist h;
  const Metric* m = find(name, Kind::kHistogram);
  if (m == nullptr) return h;
  h.valid_ = true;
  h.count_ = m->count;
  h.sum_ = m->sum;
  h.bounds_ = m->bounds;
  h.buckets_ = m->buckets;
  return h;
}

void Registry::set_slo(std::string series, std::uint32_t q_permille,
                       std::uint64_t bound) {
  std::lock_guard<std::mutex> lock(reg_mutex_);
  slos_.push_back(Slo{std::move(series), q_permille, bound});
}

std::vector<SloResult> Registry::check_slos() const {
  std::vector<SloResult> out;
  out.reserve(slos_.size());
  for (const Slo& slo : slos_) {
    SloResult r;
    r.slo = slo;
    const Hist h = hist(slo.series);
    if (!h.valid()) {
      r.ok = false;  // missing series: surface the typo, don't pass silently
      out.push_back(std::move(r));
      continue;
    }
    r.count = h.count();
    r.observed = h.quantile_permille(slo.q_permille);
    r.ok = r.count == 0 || r.observed <= slo.bound;
    out.push_back(std::move(r));
  }
  return out;
}

void write_slo_report(const std::vector<SloResult>& results,
                      std::ostream& os) {
  os << "slo report (" << results.size() << " targets)\n";
  for (const SloResult& r : results) {
    os << (r.ok ? "PASS" : "FAIL") << " " << r.slo.series << " p"
       << r.slo.q_permille << "<=" << r.slo.bound << " observed=" << r.observed
       << " n=" << r.count << "\n";
  }
}

// ---------------------------------------------------------------------------
// Registration
// ---------------------------------------------------------------------------

std::uint32_t Registry::intern(const std::string& name, Kind kind,
                               const std::vector<std::uint64_t>* bounds) {
  std::lock_guard<std::mutex> lock(reg_mutex_);
  const auto it = names_.find(name);
  if (it != names_.end()) {
    const Metric& m = metrics_[it->second];
    if (m.kind != kind) {
      throw std::invalid_argument("Registry: '" + name +
                                  "' already registered with another kind");
    }
    if (kind == Kind::kHistogram && bounds != nullptr && m.bounds != *bounds) {
      throw std::invalid_argument("Registry: '" + name +
                                  "' already registered with other bounds");
    }
    return it->second;
  }
  Metric m;
  m.name = name;
  m.kind = kind;
  if (kind == Kind::kHistogram) {
    if (bounds == nullptr || bounds->empty()) {
      throw std::invalid_argument("Registry: histogram '" + name +
                                  "' needs at least one bucket bound");
    }
    if (!std::is_sorted(bounds->begin(), bounds->end())) {
      throw std::invalid_argument("Registry: histogram '" + name +
                                  "' bounds must be ascending");
    }
    m.bounds = *bounds;
    m.buckets.assign(bounds->size() + 1, 0);  // +1 = overflow (+Inf)
  }
  const auto idx = static_cast<std::uint32_t>(metrics_.size());
  metrics_.push_back(std::move(m));
  names_.emplace(name, idx);
  return idx;
}

Counter Registry::counter(const std::string& name) {
  return Counter(this, intern(name, Kind::kCounter, nullptr));
}

Gauge Registry::gauge(const std::string& name) {
  return Gauge(this, intern(name, Kind::kGauge, nullptr));
}

Histogram Registry::histogram(const std::string& name,
                              std::vector<std::uint64_t> bounds) {
  return Histogram(this, intern(name, Kind::kHistogram, &bounds));
}

// ---------------------------------------------------------------------------
// Hot path + canonical-order merge (mirrors sim::Tracer)
// ---------------------------------------------------------------------------

void Registry::record(std::uint32_t idx, OpKind op, std::int64_t value) {
  if (engine_ != nullptr && !pending_.empty()) {
    SimTime t = 0;
    std::uint64_t ord = 0;
    std::uint32_t seq = 0;
    int buffer = 0;
    if (engine_->parallel_trace_key(&t, &ord, &seq, &buffer)) {
      pending_[static_cast<std::size_t>(buffer)].push_back(
          PendingOp{idx, op, value, t, ord, seq});
      return;
    }
  }
  apply(idx, op, value);
}

void Registry::apply(std::uint32_t idx, OpKind op, std::int64_t value) {
  Metric& m = metrics_[idx];
  switch (op) {
    case OpKind::kAdd:
      m.count += static_cast<std::uint64_t>(value);
      break;
    case OpKind::kSet:
      m.gauge = value;
      break;
    case OpKind::kGaugeAdd:
      m.gauge += value;
      break;
    case OpKind::kObserve: {
      const auto v = static_cast<std::uint64_t>(value);
      ++m.count;
      m.sum += v;
      const auto it = std::lower_bound(m.bounds.begin(), m.bounds.end(), v);
      ++m.buckets[static_cast<std::size_t>(it - m.bounds.begin())];
      break;
    }
  }
}

void Registry::begin_parallel(int buffers) {
  pending_.resize(static_cast<std::size_t>(buffers));
}

void Registry::merge_parallel() {
  std::size_t n = 0;
  for (const auto& buf : pending_) n += buf.size();
  if (n == 0) {
    pending_.clear();
    return;
  }
  std::vector<PendingOp> all;
  all.reserve(n);
  for (auto& buf : pending_) {
    for (auto& p : buf) all.push_back(p);
    buf.clear();
  }
  pending_.clear();
  // Canonical order: the emitting event's (time, ord), then emission order
  // within the event — exactly the order a sequential run applies in. For
  // counters and histograms the order is immaterial (commutative); for
  // gauges (kSet) it decides which write wins, so it must match.
  std::sort(all.begin(), all.end(),
            [](const PendingOp& a, const PendingOp& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.ord != b.ord) return a.ord < b.ord;
              return a.seq < b.seq;
            });
  for (const PendingOp& p : all) apply(p.idx, p.op, p.value);
}

// ---------------------------------------------------------------------------
// Snapshot reads
// ---------------------------------------------------------------------------

const Registry::Metric* Registry::find(const std::string& name,
                                       Kind kind) const {
  std::lock_guard<std::mutex> lock(reg_mutex_);
  const auto it = names_.find(name);
  if (it == names_.end()) return nullptr;
  const Metric& m = metrics_[it->second];
  return m.kind == kind ? &m : nullptr;
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(reg_mutex_);
  return metrics_.size();
}

std::uint64_t Registry::counter_value(const std::string& name) const {
  const Metric* m = find(name, Kind::kCounter);
  return m != nullptr ? m->count : 0;
}

std::int64_t Registry::gauge_value(const std::string& name) const {
  const Metric* m = find(name, Kind::kGauge);
  return m != nullptr ? m->gauge : 0;
}

std::uint64_t Registry::histogram_count(const std::string& name) const {
  const Metric* m = find(name, Kind::kHistogram);
  return m != nullptr ? m->count : 0;
}

std::uint64_t Registry::histogram_sum(const std::string& name) const {
  const Metric* m = find(name, Kind::kHistogram);
  return m != nullptr ? m->sum : 0;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(reg_mutex_);
  for (Metric& m : metrics_) {
    m.count = 0;
    m.gauge = 0;
    m.sum = 0;
    std::fill(m.buckets.begin(), m.buckets.end(), 0);
  }
  pending_.clear();
}

// ---------------------------------------------------------------------------
// Exporters. Sorted by name; integers only — byte-identical across backends.
// ---------------------------------------------------------------------------

namespace {

void write_json_escaped(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (u < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          os << "\\u00" << kHex[u >> 4] << kHex[u & 0xf];
        } else {
          os << c;
        }
    }
  }
}

/// Splits `dacc_x_ns{op="h2d"}` into base name and label body ("" if none).
void split_labels(const std::string& name, std::string* base,
                  std::string* labels) {
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos) {
    *base = name;
    labels->clear();
    return;
  }
  *base = name.substr(0, brace);
  // Everything between the braces, without the braces themselves.
  *labels = name.substr(brace + 1, name.size() - brace - 2);
}

}  // namespace

std::vector<const Registry::Metric*> Registry::collect(std::string_view prefix,
                                                       bool include) const {
  std::vector<const Metric*> sorted;
  std::lock_guard<std::mutex> lock(reg_mutex_);
  sorted.reserve(names_.size());
  // names_ is an ordered map: iteration is already sorted by name.
  for (const auto& [name, idx] : names_) {
    if (!prefix.empty()) {
      const bool match = std::string_view(name).substr(0, prefix.size()) ==
                         prefix;
      if (match != include) continue;
    }
    sorted.push_back(&metrics_[idx]);
  }
  return sorted;
}

void Registry::write_json(std::ostream& os) const { write_json(os, {}, false); }

void Registry::write_json(std::ostream& os, std::string_view prefix,
                          bool include) const {
  const std::vector<const Metric*> sorted = collect(prefix, include);
  os << "{\"metrics\":[";
  bool first = true;
  for (const Metric* m : sorted) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"";
    write_json_escaped(os, m->name);
    os << "\",";
    switch (m->kind) {
      case Kind::kCounter:
        os << "\"type\":\"counter\",\"value\":" << m->count;
        break;
      case Kind::kGauge:
        os << "\"type\":\"gauge\",\"value\":" << m->gauge;
        break;
      case Kind::kHistogram: {
        os << "\"type\":\"histogram\",\"count\":" << m->count
           << ",\"sum\":" << m->sum << ",\"buckets\":[";
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < m->bounds.size(); ++i) {
          cum += m->buckets[i];
          if (i != 0) os << ",";
          os << "{\"le\":" << m->bounds[i] << ",\"count\":" << cum << "}";
        }
        cum += m->buckets.back();
        if (!m->bounds.empty()) os << ",";
        os << "{\"le\":\"+Inf\",\"count\":" << cum << "}]";
        break;
      }
    }
    os << "}";
  }
  os << "]}\n";
}

std::string Registry::json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

std::string Registry::json(std::string_view prefix, bool include) const {
  std::ostringstream os;
  write_json(os, prefix, include);
  return os.str();
}

void Registry::write_prometheus(std::ostream& os) const {
  write_prometheus(os, {}, false);
}

void Registry::write_prometheus(std::ostream& os, std::string_view prefix,
                                bool include) const {
  const std::vector<const Metric*> sorted = collect(prefix, include);
  std::string last_family;
  for (const Metric* m : sorted) {
    std::string base, labels;
    split_labels(m->name, &base, &labels);
    if (base != last_family) {
      const char* type = m->kind == Kind::kCounter   ? "counter"
                         : m->kind == Kind::kGauge   ? "gauge"
                                                     : "histogram";
      os << "# TYPE " << base << " " << type << "\n";
      last_family = base;
    }
    const std::string brace_open = labels.empty() ? "" : "{" + labels + "}";
    switch (m->kind) {
      case Kind::kCounter:
        os << base << brace_open << " " << m->count << "\n";
        break;
      case Kind::kGauge:
        os << base << brace_open << " " << m->gauge << "\n";
        break;
      case Kind::kHistogram: {
        const std::string sep = labels.empty() ? "" : labels + ",";
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < m->bounds.size(); ++i) {
          cum += m->buckets[i];
          os << base << "_bucket{" << sep << "le=\"" << m->bounds[i] << "\"} "
             << cum << "\n";
        }
        cum += m->buckets.back();
        os << base << "_bucket{" << sep << "le=\"+Inf\"} " << cum << "\n";
        os << base << "_sum" << brace_open << " " << m->sum << "\n";
        os << base << "_count" << brace_open << " " << m->count << "\n";
        break;
      }
    }
  }
}

std::string Registry::prometheus() const {
  std::ostringstream os;
  write_prometheus(os);
  return os.str();
}

std::string Registry::prometheus(std::string_view prefix, bool include) const {
  std::ostringstream os;
  write_prometheus(os, prefix, include);
  return os.str();
}

}  // namespace dacc::obs

// ---------------------------------------------------------------------------
// Engine::set_metrics lives here (declared in sim/engine.hpp) so dacc_sim
// never depends on dacc_obs: the engine holds the registry behind a pointer
// and two std::function hooks, and only code that actually attaches a
// registry links this translation unit.
// ---------------------------------------------------------------------------

namespace dacc::sim {

namespace {

/// Per-shard handle set for the era-barrier stats sink, bound lazily the
/// first time a shard reports. Names carry the shard id as a label under
/// obs::Registry::kShardSeriesPrefix so the cross-backend comparisons can
/// split them out (shard placement is a scheduling detail, not simulated
/// behavior — but for a fixed shard map the series are still deterministic
/// and byte-identical across replays and worker counts).
struct ShardEraSeries {
  obs::Counter windows;  ///< eras in which the shard executed events
  obs::Counter events;   ///< events executed across those eras
  obs::Counter inbox;    ///< cross-shard events absorbed
  obs::Counter stalls;   ///< eras spent only pushing null horizons
  bool bound = false;
};

}  // namespace

void Engine::set_metrics(obs::Registry* registry) {
  metrics_ = registry;
  if (registry != nullptr) {
    registry->attach(this);
    metrics_begin_parallel_ = [registry](int buffers) {
      registry->begin_parallel(buffers);
    };
    metrics_merge_parallel_ = [registry] { registry->merge_parallel(); };
    auto series = std::make_shared<std::vector<ShardEraSeries>>();
    auto batch = std::make_shared<obs::Histogram>();
    metrics_shard_era_ = [registry, series, batch](
                             int shard, std::uint64_t events,
                             std::uint64_t inbox, bool stalled) {
      if (!*batch) {
        *batch = registry->histogram("dacc_sim_shard_inbox_batch",
                                     {1, 4, 16, 64, 256, 1024, 4096});
      }
      const auto idx = static_cast<std::size_t>(shard);
      if (idx >= series->size()) series->resize(idx + 1);
      ShardEraSeries& s = (*series)[idx];
      if (!s.bound) {
        const std::string id = std::to_string(shard);
        s.windows = registry->counter(
            obs::labeled("dacc_sim_shard_windows_total", "shard", id));
        s.events = registry->counter(
            obs::labeled("dacc_sim_shard_events_total", "shard", id));
        s.inbox = registry->counter(
            obs::labeled("dacc_sim_shard_inbox_events_total", "shard", id));
        s.stalls = registry->counter(
            obs::labeled("dacc_sim_shard_horizon_stalls_total", "shard", id));
        s.bound = true;
      }
      if (stalled) {
        s.stalls.add(1);
      } else {
        s.windows.add(1);
        s.events.add(events);
      }
      s.inbox.add(inbox);
      batch->observe(inbox);
    };
  } else {
    metrics_begin_parallel_ = nullptr;
    metrics_merge_parallel_ = nullptr;
    metrics_shard_era_ = nullptr;
  }
}

}  // namespace dacc::sim
