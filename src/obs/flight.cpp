#include "obs/flight.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "sim/engine.hpp"

namespace dacc::obs {

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void FlightRecorder::note(SimTime time, std::string category,
                          std::string what, std::uint64_t trace_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  Event e;
  e.time = time;
  e.trace_id = trace_id;
  e.seq = seq_++;
  e.category = std::move(category);
  e.what = std::move(what);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(e));
  } else {
    ring_[next_] = std::move(e);
  }
  next_ = (next_ + 1) % capacity_;
}

void FlightRecorder::note(sim::Engine& engine, std::string category,
                          std::string what) {
  note(engine.now(), std::move(category), std::move(what),
       engine.current_trace().trace_id);
}

std::vector<FlightRecorder::Event> FlightRecorder::events() const {
  std::vector<Event> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out = ring_;
  }
  std::sort(out.begin(), out.end(), [](const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  });
  return out;
}

std::uint64_t FlightRecorder::recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return seq_;
}

void FlightRecorder::dump(std::ostream& os) const {
  const std::vector<Event> evs = events();
  std::uint64_t total = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    total = seq_;
  }
  os << "=== flight recorder: " << evs.size() << " of " << total
     << " events (capacity " << capacity_ << ") ===\n";
  for (const Event& e : evs) {
    os << "t=" << e.time << " [" << e.category << "] " << e.what;
    if (e.trace_id != 0) os << " trace=0x" << std::hex << e.trace_id
                            << std::dec;
    os << '\n';
  }
}

std::string FlightRecorder::dump() const {
  std::ostringstream os;
  dump(os);
  return os.str();
}

void FlightRecorder::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  next_ = 0;
  seq_ = 0;
}

}  // namespace dacc::obs

// Engine::set_flight_recorder lives here (next to set_metrics's pattern in
// metrics.cpp) so dacc_sim never links against dacc_obs: the engine only
// holds an opaque pointer plus a type-erased note hook for its own events.
namespace dacc::sim {

void Engine::set_flight_recorder(obs::FlightRecorder* recorder) {
  flight_ = recorder;
  if (recorder == nullptr) {
    flight_note_ = nullptr;
    return;
  }
  flight_note_ = [this, recorder](const char* category, std::string what) {
    recorder->note(now(), category, std::move(what),
                   current_trace().trace_id);
  };
}

}  // namespace dacc::sim
