#include "obs/profiler.hpp"

#include <algorithm>
#include <chrono>
#include <ostream>
#include <sstream>
#include <utility>

#include "obs/metrics.hpp"

namespace dacc::obs {

namespace {

std::uint64_t scope_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void json_escape(std::ostream& os, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        os << c;
    }
  }
}

}  // namespace

void Profiler::begin_run(int shards, int workers) {
  if (static_cast<std::size_t>(shards) > shard_slots_.size()) {
    shard_slots_.resize(static_cast<std::size_t>(shards));
  }
  if (static_cast<std::size_t>(workers) > worker_slots_.size()) {
    worker_slots_.resize(static_cast<std::size_t>(workers));
  }
}

void Profiler::shard_phase(int shard, Phase phase, std::uint64_t ns) {
  ShardSlot& slot = shard_slots_[static_cast<std::size_t>(shard)];
  slot.ns[phase] += ns;
  ++slot.samples[phase];
}

void Profiler::worker_wait(int worker, std::uint64_t ns) {
  WorkerSlot& slot = worker_slots_[static_cast<std::size_t>(worker)];
  slot.wait_ns += ns;
  ++slot.waits;
}

void Profiler::serial(std::uint64_t ns, std::uint64_t events) {
  serial_ns_ += ns;
  serial_events_ += events;
}

void Profiler::run_complete(std::uint64_t wall_ns, int effective_workers) {
  measured_ns_ += wall_ns * static_cast<std::uint64_t>(effective_workers);
  ++runs_;
}

Profiler::Scope::Scope(Profiler& prof, const std::string& name)
    : prof_(prof), idx_(prof.intern_scope(name)), t0_(scope_now_ns()) {}

Profiler::Scope::~Scope() {
  NamedScope& s = prof_.scopes_[idx_];
  s.ns += scope_now_ns() - t0_;
  ++s.samples;
}

std::size_t Profiler::intern_scope(const std::string& name) {
  for (std::size_t i = 0; i < scopes_.size(); ++i) {
    if (scopes_[i].name == name) return i;
  }
  scopes_.push_back(NamedScope{name, 0, 0});
  return scopes_.size() - 1;
}

std::uint64_t Profiler::shard_ns(int shard, Phase phase) const {
  const auto s = static_cast<std::size_t>(shard);
  return s < shard_slots_.size() ? shard_slots_[s].ns[phase] : 0;
}

std::uint64_t Profiler::shard_samples(int shard, Phase phase) const {
  const auto s = static_cast<std::size_t>(shard);
  return s < shard_slots_.size() ? shard_slots_[s].samples[phase] : 0;
}

std::uint64_t Profiler::worker_wait_ns(int worker) const {
  const auto s = static_cast<std::size_t>(worker);
  return s < worker_slots_.size() ? worker_slots_[s].wait_ns : 0;
}

std::uint64_t Profiler::attributed_ns() const {
  std::uint64_t total = serial_ns_;
  for (const ShardSlot& slot : shard_slots_) {
    for (const std::uint64_t ns : slot.ns) total += ns;
  }
  for (const WorkerSlot& slot : worker_slots_) total += slot.wait_ns;
  return total;
}

const char* Profiler::phase_name(Phase phase) {
  switch (phase) {
    case kBusy:
      return "busy";
    case kStall:
      return "stall";
    case kInbox:
      return "inbox";
    case kSync:
      return "sync";
    default:
      return "unknown";
  }
}

namespace {
using Series = std::pair<std::string, std::uint64_t>;
}  // namespace

void Profiler::write_prometheus(std::ostream& os) const {
  std::vector<Series> out;
  const std::string prefix(kSeriesPrefix);
  for (std::size_t s = 0; s < shard_slots_.size(); ++s) {
    const std::string id = std::to_string(s);
    for (int p = 0; p < kPhases; ++p) {
      const auto phase = static_cast<Phase>(p);
      out.emplace_back(
          labeled(prefix + "shard_" + phase_name(phase) + "_ns", "shard", id),
          shard_slots_[s].ns[p]);
      out.emplace_back(labeled(prefix + "shard_" + phase_name(phase) +
                                   "_samples_total",
                               "shard", id),
                       shard_slots_[s].samples[p]);
    }
  }
  for (std::size_t i = 0; i < worker_slots_.size(); ++i) {
    const std::string id = std::to_string(i);
    out.emplace_back(labeled(prefix + "worker_wait_ns", "worker", id),
                     worker_slots_[i].wait_ns);
    out.emplace_back(labeled(prefix + "worker_waits_total", "worker", id),
                     worker_slots_[i].waits);
  }
  for (const NamedScope& s : scopes_) {
    out.emplace_back(labeled(prefix + "scope_ns", "name", s.name), s.ns);
    out.emplace_back(labeled(prefix + "scope_samples_total", "name", s.name),
                     s.samples);
  }
  out.emplace_back(prefix + "serial_ns", serial_ns_);
  out.emplace_back(prefix + "serial_events_total", serial_events_);
  out.emplace_back(prefix + "attributed_ns", attributed_ns());
  out.emplace_back(prefix + "measured_ns", measured_ns_);
  out.emplace_back(prefix + "runs_total", runs_);
  std::sort(out.begin(), out.end());
  for (const Series& s : out) {
    os << s.first << ' ' << s.second << '\n';
  }
}

void Profiler::write_json(std::ostream& os) const {
  std::ostringstream prom;
  write_prometheus(prom);
  // Same series, same order, JSON shape for bench embedding.
  os << "{\"profile\":[";
  std::istringstream in(prom.str());
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    const std::size_t sp = line.rfind(' ');
    if (sp == std::string::npos) continue;
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"";
    json_escape(os, std::string_view(line).substr(0, sp));
    os << "\",\"value\":" << line.substr(sp + 1) << '}';
  }
  os << "]}\n";
}

std::string Profiler::prometheus() const {
  std::ostringstream os;
  write_prometheus(os);
  return os.str();
}

std::string Profiler::json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

void Profiler::reset() {
  shard_slots_.clear();
  worker_slots_.clear();
  scopes_.clear();
  serial_ns_ = 0;
  serial_events_ = 0;
  measured_ns_ = 0;
  runs_ = 0;
}

}  // namespace dacc::obs
