// Cluster runtime: builds a simulated dynamic accelerator cluster out of the
// architecture's components (paper Figure 1) — compute nodes, accelerator
// nodes each running a back-end daemon, the accelerator resource manager,
// and the shared interconnect — and launches jobs on it.
//
// Job launch follows the paper's execution model (Section III.C): with
// `accelerators_per_rank > 0` the launcher performs the static assignment of
// Figure 3(a) (leases acquired from the ARM before the job starts, released
// automatically at job end); with 0, the job body may use the
// resource-management API for the dynamic assignment of Figure 3(b).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "arm/arm.hpp"
#include "arm/raft/node.hpp"
#include "core/api.hpp"
#include "daemon/daemon.hpp"
#include "dmpi/mpi.hpp"
#include "gpu/device.hpp"
#include "gpu/driver.hpp"
#include "net/fabric.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/trace.hpp"

namespace dacc::rt {

struct ClusterConfig {
  int compute_nodes = 4;
  int accelerators = 3;

  /// Attach one node-local GPU to every compute node as well (the classic
  /// static architecture used as the paper's baseline).
  bool local_gpus = false;

  /// functional GPUs execute kernels on real memory (tests/examples);
  /// phantom GPUs charge identical time without data (paper-scale benches).
  bool functional_gpus = true;

  net::FabricParams fabric;
  dmpi::MpiParams mpi;
  gpu::DeviceParams device = gpu::tesla_c1060();
  proto::ProtoParams proto;
  proto::TransferConfig transfer = proto::TransferConfig::pipeline_adaptive();

  /// Heterogeneous pools: when non-empty, one accelerator per entry is
  /// built (overriding `accelerators`/`device`), e.g. two C1060s plus a
  /// MIC. Jobs pick by kind through Session::acquire.
  std::vector<gpu::DeviceParams> accelerator_devices;

  /// How the ARM serves queued allocations.
  arm::Arm::QueuePolicy arm_policy = arm::Arm::QueuePolicy::kFcfs;

  /// Topology-aware placement: when the fabric declares per-link latency
  /// overrides, the cluster derives latency zones (connected components of
  /// links at or under the uniform wire latency) and hands the ARM a
  /// PlacementMap, so grants prefer accelerators near the requester. With a
  /// uniform fabric the map is trivial and grant order is exactly the
  /// legacy ascending-slot scan. Disable to force the legacy order even on
  /// a non-uniform fabric.
  bool topology_placement = true;

  /// Replicated ARM (DESIGN.md §11): with a value > 1, the lease table is
  /// hosted by this many Raft replicas — each on its own fabric node —
  /// instead of a single ARM rank. Jobs and the launcher are unchanged;
  /// their clients walk the failover ladder across the replica endpoints,
  /// so leases survive a leader kill. 1 = the classic single ARM.
  int arm_replicas = 1;

  /// Consensus knobs for the replicated deployment (ignored otherwise).
  arm::raft::RaftParams raft;

  /// Liveness protocol: when enabled, every accelerator node runs a
  /// heartbeat pacer and the ARM node a sweep monitor, so leases on dead
  /// accelerators are revoked after `heartbeat.period * miss_threshold`.
  /// Pacers only beat while jobs are running (the simulation still
  /// terminates when all work drains).
  arm::HeartbeatParams heartbeat;

  /// Front-end failure policy handed to every job's Session (timeouts,
  /// retries, transparent replacement).
  core::RetryPolicy retry;

  /// Command-stream batching handed to every job's Session (DESIGN.md §10):
  /// front-end proxies coalesce pending small control ops into one kBatch
  /// frame per flush. Defaults to the DACC_RPC_BATCH environment knob; off
  /// unless set.
  rpc::StreamConfig batch = rpc::default_stream_config();

  /// Record middleware spans (daemon requests, front-end proxy ops) into
  /// Cluster::tracer() for timeline inspection / Chrome-trace export.
  bool trace = false;

  /// Collect metrics (dacc::obs) into Cluster::metrics(): per-rank message
  /// counters, NIC traffic, daemon busy time, ARM pool gauges, front-end
  /// latency histograms. Off by default — instrumentation sites are no-ops
  /// without a registry. Snapshots are bit-identical across backends.
  bool metrics = false;

  /// Attach the wallclock profiler (obs::Profiler, the non-deterministic
  /// tier): per-shard busy/stall/inbox/sync attribution under the parallel
  /// backend, serial drain timing otherwise. Defaults to the DACC_PROF
  /// environment knob; off unless set. Never feeds Cluster::metrics() —
  /// `dacc_prof_*` series live only in Cluster::profiler()'s exporters.
  bool profile = default_profile();
  static bool default_profile();

  /// When non-empty, a post-mortem flight-recorder dump is written to this
  /// path automatically after a run during which a fault was injected
  /// (chaos hooks below). The recorder itself is always on — it only sees
  /// rare control-plane events, so it costs nothing on hot paths.
  std::string flight_dump_path;

  /// Kernel registry shared by all devices; defaults to the builtins.
  /// Workloads (la, mdsim) add their kernels before constructing a Cluster.
  std::shared_ptr<gpu::KernelRegistry> registry;

  /// Execution backend for the simulation engine (coroutines by default;
  /// see sim/exec.hpp). Results are identical under every backend.
  sim::ExecBackend sim_backend = sim::default_exec_backend();

  /// Shard count for the parallel backend: simulated nodes are partitioned
  /// into this many event queues (0 = auto, capped at a host-sized limit).
  /// Honors DACC_SIM_BACKEND=parallel:N by default; the node -> shard
  /// placement can be pinned with DACC_SIM_SHARD_MAP. Ignored by the
  /// sequential backends. Results are bit-identical for every shard count.
  int sim_shards = sim::default_parallel_shards();

  /// Width of the engine's serial-control band (sim::Engine::set_band_gap):
  /// node -> global effects are clamped up by this much, letting parallel
  /// shards run many wire latencies between global synchronizations. Like
  /// the lookahead it is part of the simulation semantics and applies
  /// identically under every backend. 0 = auto (64x the wire latency).
  SimDuration sim_band_gap = 0;
};

class Cluster;

/// Everything one job rank needs, handed to the job body.
class JobContext {
 public:
  JobContext(Cluster& cluster, sim::Context& ctx, int job_rank, int job_size,
             const dmpi::Comm& job_comm, core::Session& session);

  Cluster& cluster() { return cluster_; }
  sim::Context& ctx() { return ctx_; }
  int rank() const { return rank_; }
  int size() const { return size_; }

  /// MPI view for app-level communication within the job.
  dmpi::Mpi& mpi() { return mpi_; }
  const dmpi::Comm& job_comm() const { return job_comm_; }

  /// Middleware session (statically assigned accelerators are already
  /// attached; more can be acquired dynamically).
  core::Session& session() { return session_; }

  /// Driver for this compute node's node-local GPU (requires
  /// ClusterConfig::local_gpus). The "CUDA local" baseline path.
  gpu::Driver local_gpu();

 private:
  Cluster& cluster_;
  sim::Context& ctx_;
  int rank_;
  int size_;
  const dmpi::Comm& job_comm_;
  core::Session& session_;
  dmpi::Mpi mpi_;
};

struct JobSpec {
  std::string name = "job";
  int ranks = 1;
  /// Static assignment: leases acquired per rank before the job starts.
  std::uint32_t accelerators_per_rank = 0;
  /// Queue at the ARM until the static allocation is satisfiable.
  bool wait_for_accelerators = true;
  /// Scheduling class for every ARM request this job makes (the launcher's
  /// static acquisition and the ranks' dynamic ones alike). Higher classes
  /// may preempt lower ones; see arm::kPriorityBatch..kPriorityUrgent.
  std::uint32_t priority = arm::kPriorityNormal;
  /// Restrict the static assignment to one device class ("gpu", "mic");
  /// empty takes any accelerator.
  std::string accelerator_kind;
  proto::TransferConfig transfer = proto::TransferConfig::pipeline_adaptive();
  std::function<void(JobContext&)> body;
};

/// Completion handle for a submitted job.
class JobHandle {
 public:
  bool done() const { return completion_->done(); }
  void wait(sim::Context& ctx) { completion_->wait(ctx); }

 private:
  friend class Cluster;
  explicit JobHandle(std::shared_ptr<sim::Completion> c)
      : completion_(std::move(c)) {}
  std::shared_ptr<sim::Completion> completion_;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config = {});
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // --- topology -------------------------------------------------------------
  const ClusterConfig& config() const { return config_; }
  sim::Engine& engine() { return engine_; }
  net::Fabric& fabric() { return fabric_; }
  dmpi::World& world() { return *world_; }
  dmpi::Rank cn_rank(int cn) const;
  dmpi::Rank daemon_rank(int ac) const;
  /// The single ARM's rank — or, replicated, the first replica's (clients
  /// start their failover ladder there).
  dmpi::Rank arm_rank() const;
  /// Every ARM endpoint: {arm_rank()} for the single deployment, one rank
  /// per replica otherwise.
  std::vector<dmpi::Rank> arm_ranks() const;
  bool arm_replicated() const { return config_.arm_replicas > 1; }

  /// Single-ARM deployment only; throws std::logic_error when replicated.
  arm::Arm& arm();
  /// Replicated deployment only (0 <= replica < arm_replicas).
  arm::raft::RaftNode& arm_replica(int replica);
  /// Replica index of the current leader, -1 while no replica leads. Read
  /// it between engine steps or from the serial global band.
  int arm_leader() const;
  /// Pool statistics from whichever machine is authoritative (the single
  /// ARM, or the leader replica's lease machine).
  arm::PoolStats arm_stats() const;
  /// Per-accelerator busy fraction from the authoritative machine; same
  /// deployment-agnostic contract as arm_stats().
  std::vector<double> arm_utilization(SimTime now) const;
  sim::Tracer& tracer() { return tracer_; }
  obs::Registry& metrics() { return metrics_; }
  /// Wallclock tier (non-deterministic; see DESIGN.md §9.2). The profiler
  /// only accumulates when ClusterConfig::profile is set; the flight
  /// recorder is always recording.
  obs::Profiler& profiler() { return profiler_; }
  obs::FlightRecorder& flight() { return flight_; }
  /// Post-mortem dump of the retained flight-recorder events, in causal
  /// (sim time, recording seq) order with trace ids.
  void dump_flight_recorder(std::ostream& os) const { flight_.dump(os); }
  gpu::Device& accelerator_device(int ac);
  gpu::Device& local_device(int cn);
  daemon::Daemon& accelerator_daemon(int ac);

  // --- jobs -------------------------------------------------------------------
  /// Launches `spec.ranks` processes on compute nodes first_cn, first_cn+1,
  /// ... The job starts at the current simulated time (plus ARM assignment,
  /// for static allocations).
  JobHandle submit(JobSpec spec, int first_cn = 0);

  /// Runs the simulation until all submitted jobs are done.
  void run();

  // --- fault injection ---------------------------------------------------------
  /// Breaks accelerator `ac` at simulated time `at` (ECC failure).
  void break_accelerator(int ac, SimTime at);

  /// Fails fabric node `node`'s NIC at `at`: every transfer that would still
  /// be in flight then (or starts later) is dropped.
  void fail_link(net::NodeId node, SimTime at);

  /// fail_link for accelerator `ac`'s node — the daemon falls silent
  /// (requests and heartbeats stop flowing) without the device breaking.
  void fail_accelerator_link(int ac, SimTime at);

  /// Kills ARM replica `replica` at `at`: its fabric link fails and its
  /// consensus loop halts (chaos tier). Replicated deployments only.
  void kill_arm_replica(int replica, SimTime at);

  /// Kills whichever replica leads at `at` (no-op if an election is in
  /// flight right then — deterministically so, given a fixed seed).
  void kill_arm_leader(SimTime at);

  // --- reporting ------------------------------------------------------------------
  struct Report {
    struct AcceleratorRow {
      int index = 0;
      std::string name;
      double lease_util = 0.0;    ///< fraction of time ARM-assigned
      double compute_util = 0.0;  ///< fraction of time the GPU computed
      double copy_util = 0.0;     ///< fraction of time DMA engines were busy
      std::uint64_t requests = 0; ///< middleware requests served
    };
    SimTime now = 0;
    std::vector<AcceleratorRow> accelerators;
    std::uint64_t cn_bytes_sent = 0;  ///< aggregate compute-node NIC traffic
    std::uint64_t ac_bytes_sent = 0;  ///< aggregate accelerator NIC traffic

    void print(std::ostream& os) const;
  };

  /// Utilization snapshot at the current simulated time.
  Report report() const;

 private:
  /// Sends one liveness beat per period for accelerator `ac` while jobs run.
  void heartbeat_pacer(sim::Context& ctx, int ac);
  /// Periodically asks the ARM to sweep for missed beats while jobs run.
  void heartbeat_monitor(sim::Context& ctx);

  ClusterConfig config_;
  sim::Engine engine_;
  sim::Tracer tracer_;
  obs::Registry metrics_;
  obs::Profiler profiler_;
  obs::FlightRecorder flight_;
  bool fault_injected_ = false;  ///< arms the automatic flight dump
  net::Fabric fabric_;
  std::unique_ptr<dmpi::World> world_;
  std::shared_ptr<gpu::KernelRegistry> registry_;
  std::vector<std::unique_ptr<gpu::Device>> ac_devices_;
  std::vector<std::unique_ptr<gpu::Device>> local_devices_;
  std::vector<std::unique_ptr<daemon::Daemon>> daemons_;
  std::unique_ptr<arm::Arm> arm_;  ///< single-ARM deployment
  /// Replicated deployment: one consensus node per replica rank.
  std::vector<std::unique_ptr<arm::raft::RaftNode>> raft_nodes_;
  std::uint64_t next_job_ = 1;
  /// Heartbeat traffic is gated on running jobs so the event queue drains
  /// (and engine.run() returns) once all submitted work completes.
  /// `active_jobs_` is written from the engine's serial global band only
  /// (submit runs before the engine does; rank completion is posted to the
  /// band), so the liveness processes on accelerator shards can read it
  /// without racing under the parallel backend.
  int active_jobs_ = 0;
  /// One idle gate per liveness process (pacers, then the monitor): each
  /// gate's wait list is touched only by its owning process's shard and the
  /// global band, never by two shards.
  std::vector<std::unique_ptr<sim::WaitQueue>> hb_gates_;
  /// Same pattern for the consensus nodes: one activity gate per replica.
  std::vector<std::unique_ptr<sim::WaitQueue>> raft_gates_;
};

}  // namespace dacc::rt
