#include "rt/cluster.hpp"

#include <cstdlib>
#include <fstream>
#include <map>
#include <ostream>
#include <stdexcept>

#include "util/table.hpp"

namespace dacc::rt {

namespace {

std::vector<net::NodeId> rank_layout(int compute_nodes, int accelerators,
                                     int arm_nodes) {
  // World ranks: [0, C) compute-node processes, [C, C+A) daemons, then the
  // ARM — one service rank, or one per replica in the replicated
  // deployment. Fabric nodes use the same layout; every ARM rank gets its
  // own service node so a replica kill is one link failure.
  std::vector<net::NodeId> nodes;
  nodes.reserve(
      static_cast<std::size_t>(compute_nodes + accelerators + arm_nodes));
  for (int i = 0; i < compute_nodes + accelerators + arm_nodes; ++i) {
    nodes.push_back(i);
  }
  return nodes;
}

int arm_node_count(const ClusterConfig& config) {
  return config.arm_replicas > 1 ? config.arm_replicas : 1;
}

/// Derives the ARM's latency zones from the fabric: nodes joined by links
/// at or under the uniform wire latency share a zone (union-find over the
/// pair matrix — fine at control-plane scale), zone ids are assigned in
/// first-member order so the map is deterministic, and the zone-to-zone
/// latency matrix reads representative nodes. A fabric without overrides
/// yields the trivial single-zone map (legacy grant order).
arm::PlacementMap build_placement(const ClusterConfig& config,
                                  const net::Fabric& fabric, int nodes) {
  if (!config.topology_placement ||
      config.fabric.link_latency_overrides.empty()) {
    return {};
  }
  std::vector<int> parent(static_cast<std::size_t>(nodes));
  for (int i = 0; i < nodes; ++i) parent[static_cast<std::size_t>(i)] = i;
  std::function<int(int)> find = [&](int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      x = parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
    }
    return x;
  };
  for (int u = 0; u < nodes; ++u) {
    for (int v = u + 1; v < nodes; ++v) {
      if (fabric.latency_of(u, v) <= config.fabric.wire_latency) {
        parent[static_cast<std::size_t>(find(u))] = find(v);
      }
    }
  }
  arm::PlacementMap map;
  map.node_zone.assign(static_cast<std::size_t>(nodes), 0);
  std::vector<int> zone_rep;  // first member of each zone, in node order
  std::map<int, std::uint32_t> zone_of_root;
  for (int i = 0; i < nodes; ++i) {
    const int root = find(i);
    auto [it, inserted] = zone_of_root.try_emplace(
        root, static_cast<std::uint32_t>(zone_rep.size()));
    if (inserted) zone_rep.push_back(i);
    map.node_zone[static_cast<std::size_t>(i)] = it->second;
  }
  const std::uint32_t nz = static_cast<std::uint32_t>(zone_rep.size());
  map.zone_latency_ns.assign(static_cast<std::size_t>(nz) * nz, 0);
  for (std::uint32_t a = 0; a < nz; ++a) {
    for (std::uint32_t b = 0; b < nz; ++b) {
      map.zone_latency_ns[static_cast<std::size_t>(a) * nz + b] =
          static_cast<std::uint64_t>(
              fabric.latency_of(zone_rep[static_cast<std::size_t>(a)],
                                zone_rep[static_cast<std::size_t>(b)]));
    }
  }
  return map;
}

}  // namespace

bool ClusterConfig::default_profile() {
  const char* v = std::getenv("DACC_PROF");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

JobContext::JobContext(Cluster& cluster, sim::Context& ctx, int job_rank,
                       int job_size, const dmpi::Comm& job_comm,
                       core::Session& session)
    : cluster_(cluster),
      ctx_(ctx),
      rank_(job_rank),
      size_(job_size),
      job_comm_(job_comm),
      session_(session),
      mpi_(cluster.world(), ctx,
           job_comm.world_rank(static_cast<dmpi::Rank>(job_rank))) {}

gpu::Driver JobContext::local_gpu() {
  if (!cluster_.config().local_gpus) {
    throw std::logic_error(
        "local_gpu(): cluster built without node-local GPUs");
  }
  const dmpi::Rank world_rank =
      job_comm_.world_rank(static_cast<dmpi::Rank>(rank_));
  return gpu::Driver(cluster_.local_device(world_rank), ctx_);
}

namespace {

ClusterConfig normalize(ClusterConfig config) {
  if (!config.accelerator_devices.empty()) {
    config.accelerators =
        static_cast<int>(config.accelerator_devices.size());
  }
  if (config.arm_replicas < 1) config.arm_replicas = 1;
  return config;
}

}  // namespace

Cluster::Cluster(ClusterConfig config)
    : config_(normalize(std::move(config))),
      engine_(config_.sim_backend, config_.sim_shards),
      fabric_(engine_,
              config_.compute_nodes + config_.accelerators +
                  arm_node_count(config_),
              config_.fabric),
      registry_(config_.registry ? config_.registry
                                 : gpu::KernelRegistry::with_builtins()) {
  if (config_.compute_nodes <= 0) {
    throw std::invalid_argument("Cluster: need at least one compute node");
  }
  // Conservative lookahead: no cross-node effect can land sooner than one
  // wire latency (or the per-link override the fabric registered), so
  // shards may safely advance that far between each other. The clamp
  // applies under every backend, keeping results bit-identical.
  engine_.set_lookahead(config_.fabric.wire_latency);
  // Serial-control band gap: effects targeting the global band (job
  // completions, control notifications) are clamped up by a multiple of
  // the wire latency, so an era spans many lookaheads between global
  // synchronization points — the main source of the window-count drop.
  engine_.set_band_gap(config_.sim_band_gap > 0
                           ? config_.sim_band_gap
                           : 64 * config_.fabric.wire_latency);
  if (config_.trace) engine_.set_tracer(&tracer_);
  if (config_.metrics) engine_.set_metrics(&metrics_);
  if (config_.profile) engine_.set_wall_profiler(&profiler_);
  engine_.set_flight_recorder(&flight_);
  world_ = std::make_unique<dmpi::World>(
      engine_, fabric_,
      rank_layout(config_.compute_nodes, config_.accelerators,
                  arm_node_count(config_)),
      config_.mpi);

  // Accelerator nodes: one device plus one daemon process each.
  std::vector<arm::AcceleratorInfo> pool;
  for (int ac = 0; ac < config_.accelerators; ++ac) {
    const gpu::DeviceParams& dev_params =
        config_.accelerator_devices.empty()
            ? config_.device
            : config_.accelerator_devices[static_cast<std::size_t>(ac)];
    ac_devices_.push_back(std::make_unique<gpu::Device>(
        engine_, dev_params, registry_, config_.functional_gpus));
    daemons_.push_back(std::make_unique<daemon::Daemon>(
        *ac_devices_.back(), *world_, daemon_rank(ac), config_.proto));
    daemon::Daemon* d = daemons_.back().get();
    sim::Process& p = engine_.spawn_on(
        static_cast<std::int32_t>(daemon_rank(ac)),
        "daemon-ac" + std::to_string(ac),
        [d](sim::Context& ctx) { d->run(ctx); });
    engine_.set_daemon(p);
    pool.push_back(arm::AcceleratorInfo{daemon_rank(ac), dev_params.name,
                                        dev_params.kind,
                                        dev_params.memory_bytes});
  }

  // Node-local GPUs for the static-architecture baseline.
  if (config_.local_gpus) {
    for (int cn = 0; cn < config_.compute_nodes; ++cn) {
      local_devices_.push_back(std::make_unique<gpu::Device>(
          engine_, config_.device, registry_, config_.functional_gpus));
    }
  }

  // The accelerator resource manager: one rank, or a Raft replica group.
  const arm::PlacementMap placement = build_placement(
      config_, fabric_,
      config_.compute_nodes + config_.accelerators + arm_node_count(config_));
  if (!arm_replicated()) {
    arm_ = std::make_unique<arm::Arm>(*world_, arm_rank(), std::move(pool),
                                      config_.arm_policy, placement);
    sim::Process& armp = engine_.spawn_on(
        static_cast<std::int32_t>(arm_rank()), "arm",
        [this](sim::Context& ctx) { arm_->run(ctx); });
    engine_.set_daemon(armp);
  } else {
    const std::vector<dmpi::Rank> replicas = arm_ranks();
    for (int i = 0; i < config_.arm_replicas; ++i) {
      raft_gates_.push_back(std::make_unique<sim::WaitQueue>(engine_));
      raft_nodes_.push_back(std::make_unique<arm::raft::RaftNode>(
          *world_, replicas[static_cast<std::size_t>(i)], i, replicas, pool,
          config_.arm_policy, config_.raft, config_.heartbeat, placement));
      arm::raft::RaftNode* node = raft_nodes_.back().get();
      // `active_jobs_` is global-band serial state; replicas read it from
      // their own shard, exactly like the liveness pacers below.
      node->set_activity_gate([this] { return active_jobs_ > 0; },
                              raft_gates_.back().get());
      sim::Process& p = engine_.spawn_on(
          static_cast<std::int32_t>(replicas[static_cast<std::size_t>(i)]),
          "arm-r" + std::to_string(i),
          [node](sim::Context& ctx) { node->run(ctx); });
      engine_.set_daemon(p);
    }
  }

  // Liveness protocol: one pacer per accelerator node, plus — for the
  // single ARM — a sweep monitor co-located with it (a replicated leader
  // sweeps through its own log instead: a monitor process would die with
  // whichever replica it was homed on). All are engine daemons gated on
  // running jobs, so an idle cluster generates no heartbeat traffic.
  for (int i = 0; i < config_.accelerators + 1; ++i) {
    hb_gates_.push_back(std::make_unique<sim::WaitQueue>(engine_));
  }
  if (config_.heartbeat.enabled) {
    for (int ac = 0; ac < config_.accelerators; ++ac) {
      sim::Process& hb = engine_.spawn_on(
          static_cast<std::int32_t>(daemon_rank(ac)),
          "hb-pacer-ac" + std::to_string(ac),
          [this, ac](sim::Context& ctx) { heartbeat_pacer(ctx, ac); });
      engine_.set_daemon(hb);
    }
    if (!arm_replicated()) {
      sim::Process& mon = engine_.spawn_on(
          static_cast<std::int32_t>(arm_rank()), "hb-monitor",
          [this](sim::Context& ctx) { heartbeat_monitor(ctx); });
      engine_.set_daemon(mon);
    }
  }
}

void Cluster::heartbeat_pacer(sim::Context& ctx, int ac) {
  dmpi::Mpi mpi(*world_, ctx, daemon_rank(ac));
  gpu::Device* dev = ac_devices_[static_cast<std::size_t>(ac)].get();
  sim::WaitQueue& gate = *hb_gates_[static_cast<std::size_t>(ac)];
  const std::vector<dmpi::Rank> arm_endpoints = arm_ranks();
  std::uint64_t seq = 0;
  for (;;) {
    while (active_jobs_ == 0) gate.wait(ctx);
    ctx.wait_for(config_.heartbeat.period);
    if (active_jobs_ == 0) continue;  // drained while we slept
    arm::Heartbeat beat;
    beat.daemon_rank = daemon_rank(ac);
    beat.seq = ++seq;
    beat.device_ok = !dev->broken();
    beat.sent_at = ctx.now();
    // Broadcast to every replica: a beat must not die with a killed
    // leader. Only the leader logs its copy; followers drop theirs.
    for (const dmpi::Rank target : arm_endpoints) {
      mpi.send(world_->world_comm(), target, arm::kArmRequestTag,
               beat.encode());
    }
  }
}

void Cluster::heartbeat_monitor(sim::Context& ctx) {
  dmpi::Mpi mpi(*world_, ctx, arm_rank());
  sim::WaitQueue& gate =
      *hb_gates_[static_cast<std::size_t>(config_.accelerators)];
  bool fresh = true;
  for (;;) {
    while (active_jobs_ == 0) {
      gate.wait(ctx);
      fresh = true;  // amnesty: beat clocks restart after an idle phase
    }
    ctx.wait_for(config_.heartbeat.period);
    if (active_jobs_ == 0) continue;
    arm::SweepRequest sweep;
    sweep.period = config_.heartbeat.period;
    sweep.miss_threshold = config_.heartbeat.miss_threshold;
    sweep.fresh = fresh;
    fresh = false;
    mpi.send(world_->world_comm(), arm_rank(), arm::kArmRequestTag,
             sweep.encode());
  }
}

Cluster::~Cluster() = default;

dmpi::Rank Cluster::cn_rank(int cn) const {
  if (cn < 0 || cn >= config_.compute_nodes) {
    throw std::out_of_range("cn_rank");
  }
  return cn;
}

dmpi::Rank Cluster::daemon_rank(int ac) const {
  if (ac < 0 || ac >= config_.accelerators) {
    throw std::out_of_range("daemon_rank");
  }
  return config_.compute_nodes + ac;
}

dmpi::Rank Cluster::arm_rank() const {
  return config_.compute_nodes + config_.accelerators;
}

std::vector<dmpi::Rank> Cluster::arm_ranks() const {
  std::vector<dmpi::Rank> ranks;
  const int n = arm_replicated() ? config_.arm_replicas : 1;
  ranks.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) ranks.push_back(arm_rank() + i);
  return ranks;
}

arm::Arm& Cluster::arm() {
  if (arm_replicated()) {
    throw std::logic_error("arm(): replicated deployment, use arm_replica()");
  }
  return *arm_;
}

arm::raft::RaftNode& Cluster::arm_replica(int replica) {
  if (!arm_replicated()) {
    throw std::logic_error("arm_replica(): single-ARM deployment, use arm()");
  }
  return *raft_nodes_.at(static_cast<std::size_t>(replica));
}

int Cluster::arm_leader() const {
  for (std::size_t i = 0; i < raft_nodes_.size(); ++i) {
    const arm::raft::RaftNode& node = *raft_nodes_[i];
    if (!node.halted() && node.role() == arm::raft::RaftNode::Role::kLeader) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

arm::PoolStats Cluster::arm_stats() const {
  if (!arm_replicated()) return arm_->stats();
  const int leader = arm_leader();
  return raft_nodes_[static_cast<std::size_t>(leader < 0 ? 0 : leader)]
      ->machine()
      .stats();
}

std::vector<double> Cluster::arm_utilization(SimTime now) const {
  if (!arm_replicated()) return arm_->utilization(now);
  const int leader = arm_leader();
  return raft_nodes_[static_cast<std::size_t>(leader < 0 ? 0 : leader)]
      ->machine()
      .utilization(now);
}

gpu::Device& Cluster::accelerator_device(int ac) {
  return *ac_devices_.at(static_cast<std::size_t>(ac));
}

gpu::Device& Cluster::local_device(int cn) {
  if (!config_.local_gpus) {
    throw std::logic_error("cluster built without node-local GPUs");
  }
  return *local_devices_.at(static_cast<std::size_t>(cn));
}

daemon::Daemon& Cluster::accelerator_daemon(int ac) {
  return *daemons_.at(static_cast<std::size_t>(ac));
}

JobHandle Cluster::submit(JobSpec spec, int first_cn) {
  if (spec.ranks <= 0 || first_cn < 0 ||
      first_cn + spec.ranks > config_.compute_nodes) {
    throw std::invalid_argument("submit: job does not fit the cluster");
  }
  if (!spec.body) throw std::invalid_argument("submit: job body required");

  const std::uint64_t job_base = next_job_;
  next_job_ += static_cast<std::uint64_t>(spec.ranks);

  std::vector<dmpi::Rank> members;
  for (int r = 0; r < spec.ranks; ++r) {
    members.push_back(cn_rank(first_cn + r));
  }
  const dmpi::Comm& job_comm = world_->create_comm(members);

  auto completion = std::make_shared<sim::Completion>(engine_);
  auto remaining = std::make_shared<int>(spec.ranks);
  auto shared_spec = std::make_shared<JobSpec>(std::move(spec));

  // Un-gate the heartbeat pacers (and, replicated, the consensus nodes)
  // for the duration of this job. The wake is routed through an event (the
  // serial global band under the parallel backend) so submit() also works
  // from outside process context.
  ++active_jobs_;
  engine_.schedule_at(engine_.now(), [this] {
    for (auto& gate : hb_gates_) gate->notify_all();
    for (auto& gate : raft_gates_) gate->notify_all();
  });

  // The launcher performs the static assignment before starting the ranks
  // (paper Figure 3(a)); it speaks to the ARM with the first rank's
  // endpoint, strictly before any rank runs. It is homed on the first
  // rank's node, matching the endpoint it borrows.
  engine_.spawn_on(
      static_cast<std::int32_t>(members.front()),
      shared_spec->name + "-launcher",
      [this, shared_spec, job_base, members, &job_comm, completion,
       remaining](sim::Context& lctx) {
        std::vector<std::vector<arm::Lease>> static_leases(
            static_cast<std::size_t>(shared_spec->ranks));
        if (shared_spec->accelerators_per_rank > 0) {
          dmpi::Mpi launcher_mpi(*world_, lctx, members.front());
          arm::ArmClient arm_client(launcher_mpi, world_->world_comm(),
                                    arm_ranks());
          for (int r = 0; r < shared_spec->ranks; ++r) {
            arm::ResourceRequest rq;
            rq.job = job_base + static_cast<std::uint64_t>(r);
            rq.count = shared_spec->accelerators_per_rank;
            rq.wait = shared_spec->wait_for_accelerators;
            rq.kind = shared_spec->accelerator_kind;
            rq.priority = shared_spec->priority;
            rq.locality = static_cast<std::int64_t>(
                members[static_cast<std::size_t>(r)]);
            static_leases[static_cast<std::size_t>(r)] =
                arm_client.acquire(rq);
            if (static_leases[static_cast<std::size_t>(r)].size() !=
                shared_spec->accelerators_per_rank) {
              throw std::runtime_error("job '" + shared_spec->name +
                                       "': static allocation failed");
            }
          }
        }
        for (int r = 0; r < shared_spec->ranks; ++r) {
          const dmpi::Rank world_rank = members[static_cast<std::size_t>(r)];
          auto leases = static_leases[static_cast<std::size_t>(r)];
          engine_.spawn_on(
              static_cast<std::int32_t>(world_rank),
              shared_spec->name + "-r" + std::to_string(r),
              [this, shared_spec, job_base, r, world_rank, &job_comm,
               completion, remaining, leases](sim::Context& ctx) {
                core::Session::Config sc;
                sc.arm_rank = arm_rank();
                sc.arm_ranks = arm_ranks();
                sc.job_id = job_base + static_cast<std::uint64_t>(r);
                sc.priority = shared_spec->priority;
                sc.transfer = shared_spec->transfer;
                sc.proto = config_.proto;
                sc.retry = config_.retry;
                sc.batch = config_.batch;
                core::Session session(*world_, ctx, world_rank,
                                      world_->world_comm(), sc);
                for (const arm::Lease& lease : leases) {
                  session.attach(lease);
                }
                JobContext jctx(*this, ctx, r, shared_spec->ranks, job_comm,
                                session);
                shared_spec->body(jctx);
                // Automatic end-of-job release (paper Section III.C).
                session.close();
                // Rank-done accounting is shared by ranks on different
                // shards; serialize it on the global band.
                engine_.post(sim::kGlobalNode, ctx.now(),
                             [this, completion, remaining] {
                               if (--*remaining == 0) {
                                 --active_jobs_;
                                 completion->complete();
                               }
                             });
              });
        }
      });
  return JobHandle(completion);
}

void Cluster::run() {
  engine_.run();
  if (fault_injected_ && !config_.flight_dump_path.empty()) {
    // Post-mortem: a fault was injected this run, so leave the black box on
    // disk even when the run itself completed.
    std::ofstream os(config_.flight_dump_path);
    if (os) flight_.dump(os);
  }
}

void Cluster::break_accelerator(int ac, SimTime at) {
  gpu::Device* dev = &accelerator_device(ac);
  fault_injected_ = true;
  flight_.note(at, "chaos", "break-accelerator-ac" + std::to_string(ac));
  // The device lives on the accelerator's shard; run the fault there. When
  // called from a job rank the cross-node lookahead clamp applies, exactly
  // as it would for any message the rank could send.
  engine_.post(static_cast<std::int32_t>(daemon_rank(ac)), at,
               [dev] { dev->mark_broken(); });
}

void Cluster::fail_link(net::NodeId node, SimTime at) {
  fault_injected_ = true;
  flight_.note(at, "chaos", "fail-link-node-" + std::to_string(node));
  if (engine_.current() == nullptr) {
    // Configured up front (no events are running): write the fault mark
    // directly, preserving the exact in-flight-cut semantics for transfers
    // that straddle `at`.
    fabric_.fail_link(node, at);
    return;
  }
  // Mid-run injection from a process: the NIC fault marks are read by every
  // shard's send planning, so the write must run on the serial global band.
  engine_.post(sim::kGlobalNode, at,
               [this, node, at] { fabric_.fail_link(node, at); });
}

void Cluster::fail_accelerator_link(int ac, SimTime at) {
  fault_injected_ = true;
  flight_.note(at, "chaos", "fail-accelerator-link-ac" + std::to_string(ac));
  fabric_.fail_link(static_cast<net::NodeId>(daemon_rank(ac)), at);
}

void Cluster::kill_arm_replica(int replica, SimTime at) {
  if (!arm_replicated()) {
    throw std::logic_error("kill_arm_replica: single-ARM deployment");
  }
  flight_.note(at, "chaos", "kill-arm-replica-r" + std::to_string(replica));
  arm::raft::RaftNode* node =
      raft_nodes_.at(static_cast<std::size_t>(replica)).get();
  sim::WaitQueue* gate = raft_gates_[static_cast<std::size_t>(replica)].get();
  fail_link(static_cast<net::NodeId>(arm_rank() + replica), at);
  // Halting touches replica state read by its own shard, so it runs on the
  // serial global band; the gate nudge unparks a quiesced replica so its
  // loop can observe the halt and exit (the engine must drain).
  engine_.post(sim::kGlobalNode, at, [node, gate] {
    node->halt();
    gate->notify_all();
  });
}

void Cluster::kill_arm_leader(SimTime at) {
  if (!arm_replicated()) {
    throw std::logic_error("kill_arm_leader: single-ARM deployment");
  }
  fault_injected_ = true;
  // Which replica leads at `at` is only knowable at `at`: resolve inside a
  // global-band event, where every replica's role can be read race-free.
  engine_.post(sim::kGlobalNode, at, [this, at] {
    const int leader = arm_leader();
    if (leader < 0) return;  // mid-election: nothing leads right now
    arm::raft::RaftNode* node =
        raft_nodes_[static_cast<std::size_t>(leader)].get();
    fabric_.fail_link(static_cast<net::NodeId>(arm_rank() + leader), at);
    node->halt();
    raft_gates_[static_cast<std::size_t>(leader)]->notify_all();
    flight_.note(at, "chaos", "kill-leader-r" + std::to_string(leader));
    if (sim::Tracer* tracer = engine_.tracer()) {
      tracer->record("chaos", "kill-leader-r" + std::to_string(leader), at,
                     at);
    }
  });
}

Cluster::Report Cluster::report() const {
  Report r;
  r.now = engine_.now();
  const double now = r.now > 0 ? static_cast<double>(r.now) : 1.0;
  std::vector<double> lease;
  if (!arm_replicated()) {
    lease = arm_->utilization(r.now);
  } else {
    const int leader = arm_leader();
    lease = raft_nodes_[static_cast<std::size_t>(leader < 0 ? 0 : leader)]
                ->machine()
                .utilization(r.now);
  }
  for (int ac = 0; ac < config_.accelerators; ++ac) {
    const gpu::Device& dev = *ac_devices_[static_cast<std::size_t>(ac)];
    Report::AcceleratorRow row;
    row.index = ac;
    row.name = dev.params().name;
    row.lease_util = lease[static_cast<std::size_t>(ac)];
    row.compute_util = static_cast<double>(dev.compute_busy()) / now;
    row.copy_util = static_cast<double>(dev.copy_busy()) / now;
    row.requests =
        daemons_[static_cast<std::size_t>(ac)]->requests_served();
    r.accelerators.push_back(std::move(row));
  }
  for (int cn = 0; cn < config_.compute_nodes; ++cn) {
    r.cn_bytes_sent += fabric_.bytes_sent(cn);
  }
  for (int ac = 0; ac < config_.accelerators; ++ac) {
    r.ac_bytes_sent += fabric_.bytes_sent(config_.compute_nodes + ac);
  }
  return r;
}

void Cluster::Report::print(std::ostream& os) const {
  util::Table table({"accelerator", "device", "leased", "compute", "copy",
                     "requests"});
  for (const AcceleratorRow& row : accelerators) {
    table.row()
        .add("ac" + std::to_string(row.index))
        .add(row.name)
        .add(100.0 * row.lease_util, 0)
        .add(100.0 * row.compute_util, 0)
        .add(100.0 * row.copy_util, 0)
        .add(row.requests);
  }
  os << "cluster utilization over " << to_ms(now) << " ms (percent):\n";
  table.print(os);
  os << "NIC traffic: compute nodes sent "
     << (cn_bytes_sent / (1024.0 * 1024.0)) << " MiB, accelerators sent "
     << (ac_bytes_sent / (1024.0 * 1024.0)) << " MiB\n";
}

}  // namespace dacc::rt
