// rCUDA-style TCP baseline.
//
// The paper's related-work section (Section II) argues that rCUDA-class
// remoting frameworks pay for their TCP/IP transport: "the communication
// between client and server runs over TCP/IP, which may introduce higher
// overhead in comparison to our MPI-based solution". This module makes that
// claim measurable: it configures the identical middleware stack to run over
// a sockets-era transport — TCP over IP-over-InfiniBand on the same QDR
// fabric — and (matching rCUDA v3.2's data path) without the pipelined
// GPUDirect transfer engine.
//
// Parameters are calibrated to contemporaneous IPoIB measurements on QDR:
// ~20 us round-trip socket latency and roughly 1.1 GiB/s sustained stream
// bandwidth, with per-message costs dominated by the kernel socket stack.
#pragma once

#include "dmpi/mpi.hpp"
#include "net/fabric.hpp"
#include "proto/wire.hpp"
#include "rt/cluster.hpp"

namespace dacc::baseline {

/// Fabric seen through the TCP/IPoIB stack.
inline net::FabricParams tcp_fabric_params() {
  net::FabricParams p;
  p.link_bandwidth_mib_s = 1150.0;  // IPoIB stream throughput on QDR
  p.wire_latency = 8'000;           // kernel IP stack + wire, one way
  p.per_message_overhead = 12'000;  // per-send socket/syscall cost
  p.per_message_overhead_min_bytes = 4096;
  return p;
}

/// Message-passing layer over sockets: no rendezvous offload, higher
/// per-operation software cost, extra copies through socket buffers.
inline dmpi::MpiParams tcp_mpi_params() {
  dmpi::MpiParams p;
  p.eager_threshold = 64 * 1024;   // everything is "eager": write() + copy
  p.send_overhead = 3'000;         // syscall + TCP segmentation
  p.recv_overhead = 3'000;
  p.eager_copy_mib_s = 2'500.0;    // socket buffer copy-out
  return p;
}

/// The rCUDA v3.2-like data path: one-shot (non-pipelined) transfers and no
/// NIC/GPU page sharing.
inline proto::TransferConfig tcp_transfer_config() {
  proto::TransferConfig c = proto::TransferConfig::naive();
  c.gpudirect = false;
  return c;
}

/// A cluster whose remoting runs over the TCP baseline transport. Identical
/// topology and devices; only the transport differs.
inline rt::ClusterConfig tcp_cluster_config(int compute_nodes,
                                            int accelerators) {
  rt::ClusterConfig c;
  c.compute_nodes = compute_nodes;
  c.accelerators = accelerators;
  c.fabric = tcp_fabric_params();
  c.mpi = tcp_mpi_params();
  c.transfer = tcp_transfer_config();
  return c;
}

}  // namespace dacc::baseline
