// Built-in utility kernels. Workload modules (la, mdsim) register their own
// domain kernels on top of these.
#include <cstdint>

#include "gpu/device.hpp"

namespace dacc::gpu {
namespace {

/// Device global-memory bandwidth used by the cost models of memory-bound
/// kernels (C1060: ~102 GB/s theoretical, ~75 GB/s sustained).
constexpr double kDeviceMemMibS = 75.0 * 1024.0;

SimDuration memory_bound(std::uint64_t bytes) {
  return transfer_time(bytes, kDeviceMemMibS);
}

void register_builtins(KernelRegistry& reg) {
  // fill_f64(ptr x, i64 n, f64 value): x[i] = value
  reg.register_kernel(
      "fill_f64",
      KernelDef{
          [](Device& dev, const LaunchConfig&, const KernelArgs& args) {
            auto x = dev.span_as<double>(
                arg_ptr(args, 0),
                static_cast<std::uint64_t>(arg_i64(args, 1)));
            const double v = arg_f64(args, 2);
            for (double& e : x) e = v;
          },
          [](const LaunchConfig&, const KernelArgs& args) {
            return memory_bound(
                static_cast<std::uint64_t>(arg_i64(args, 1)) * 8);
          }});

  // vector_add_f64(ptr a, ptr b, ptr c, i64 n): c[i] = a[i] + b[i]
  reg.register_kernel(
      "vector_add_f64",
      KernelDef{
          [](Device& dev, const LaunchConfig&, const KernelArgs& args) {
            const auto n = static_cast<std::uint64_t>(arg_i64(args, 3));
            auto a = dev.span_as<double>(arg_ptr(args, 0), n);
            auto b = dev.span_as<double>(arg_ptr(args, 1), n);
            auto c = dev.span_as<double>(arg_ptr(args, 2), n);
            for (std::uint64_t i = 0; i < n; ++i) c[i] = a[i] + b[i];
          },
          [](const LaunchConfig&, const KernelArgs& args) {
            return memory_bound(
                static_cast<std::uint64_t>(arg_i64(args, 3)) * 24);
          }});

  // daxpy(i64 n, f64 alpha, ptr x, ptr y): y[i] += alpha * x[i]
  reg.register_kernel(
      "daxpy",
      KernelDef{
          [](Device& dev, const LaunchConfig&, const KernelArgs& args) {
            const auto n = static_cast<std::uint64_t>(arg_i64(args, 0));
            const double alpha = arg_f64(args, 1);
            auto x = dev.span_as<double>(arg_ptr(args, 2), n);
            auto y = dev.span_as<double>(arg_ptr(args, 3), n);
            for (std::uint64_t i = 0; i < n; ++i) y[i] += alpha * x[i];
          },
          [](const LaunchConfig&, const KernelArgs& args) {
            return memory_bound(
                static_cast<std::uint64_t>(arg_i64(args, 0)) * 24);
          }});

  // dscal(i64 n, f64 alpha, ptr x): x[i] *= alpha
  reg.register_kernel(
      "dscal",
      KernelDef{
          [](Device& dev, const LaunchConfig&, const KernelArgs& args) {
            const auto n = static_cast<std::uint64_t>(arg_i64(args, 0));
            const double alpha = arg_f64(args, 1);
            auto x = dev.span_as<double>(arg_ptr(args, 2), n);
            for (double& e : x) e *= alpha;
          },
          [](const LaunchConfig&, const KernelArgs& args) {
            return memory_bound(
                static_cast<std::uint64_t>(arg_i64(args, 0)) * 16);
          }});

  // reduce_sum_f64(ptr x, i64 n, ptr out): out[0] = sum(x[0..n))
  reg.register_kernel(
      "reduce_sum_f64",
      KernelDef{
          [](Device& dev, const LaunchConfig&, const KernelArgs& args) {
            const auto n = static_cast<std::uint64_t>(arg_i64(args, 1));
            auto x = dev.span_as<double>(arg_ptr(args, 0), n);
            auto out = dev.span_as<double>(arg_ptr(args, 2), 1);
            double sum = 0.0;
            for (double e : x) sum += e;
            out[0] = sum;
          },
          [](const LaunchConfig&, const KernelArgs& args) {
            return memory_bound(
                static_cast<std::uint64_t>(arg_i64(args, 1)) * 8);
          }});
}

}  // namespace

std::shared_ptr<KernelRegistry> KernelRegistry::with_builtins() {
  auto reg = std::make_shared<KernelRegistry>();
  register_builtins(*reg);
  return reg;
}

}  // namespace dacc::gpu
