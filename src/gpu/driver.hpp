// Blocking "CUDA driver API" facade over the simulated device.
//
// This is the layer the paper's back-end daemon drives (Figure 4: Daemon ->
// CUDA Driver API -> CUDA GPU), and also what "CUDA local" baseline runs
// use directly on a compute node. Calls block the calling simulated process
// until the device operation completes; async variants are exposed for the
// pipeline protocol, which overlaps network receives with DMA.
#pragma once

#include <stdexcept>
#include <string>

#include "gpu/device.hpp"
#include "sim/engine.hpp"

namespace dacc::gpu {

class DeviceError : public std::runtime_error {
 public:
  DeviceError(Result code, const std::string& what)
      : std::runtime_error(what + ": " + to_string(code)), code_(code) {}
  Result code() const { return code_; }

 private:
  Result code_;
};

class Driver {
 public:
  Driver(Device& device, sim::Context& ctx) : device_(device), ctx_(ctx) {}

  Device& device() { return device_; }

  // --- memory (blocking; throws DeviceError on failure) -------------------
  DevPtr mem_alloc(std::uint64_t bytes);
  void mem_free(DevPtr ptr);

  // --- copies (blocking) ---------------------------------------------------
  void memcpy_htod(DevPtr dst, const util::Buffer& src,
                   HostMemType mem = HostMemType::kPinned);
  util::Buffer memcpy_dtoh(DevPtr src, std::uint64_t bytes,
                           HostMemType mem = HostMemType::kPinned);
  void memcpy_dtod(DevPtr dst, DevPtr src, std::uint64_t bytes);

  // --- kernels (blocking) ---------------------------------------------------
  void launch(const std::string& kernel, const LaunchConfig& config,
              const KernelArgs& args);

  // --- async (for the pipeline protocol) -----------------------------------
  OpHandle memcpy_htod_async(Stream& stream, DevPtr dst,
                             const util::Buffer& src,
                             HostMemType mem = HostMemType::kPinned);
  OpHandle memcpy_dtoh_async(Stream& stream, DevPtr src, std::uint64_t bytes,
                             HostMemType mem, util::Buffer* out);
  OpHandle launch_async(Stream& stream, const std::string& kernel,
                        const LaunchConfig& config, const KernelArgs& args);

  /// Blocks until the handle's operation has completed.
  void wait(const OpHandle& op);
  /// Blocks until the stream is idle.
  void synchronize(Stream& stream);
  void synchronize() { synchronize(device_.default_stream()); }

  // --- events (cross-stream dependencies) -----------------------------------
  Event record(const Stream& stream) { return device_.record_event(stream); }
  void stream_wait(Stream& stream, Event event) {
    device_.stream_wait_event(stream, event);
  }
  /// Blocks the host until the event's point in the timeline has passed.
  void synchronize(Event event) { ctx_.wait_until(event.at); }

 private:
  static void check(const OpHandle& op, const char* what);

  Device& device_;
  sim::Context& ctx_;
};

}  // namespace dacc::gpu
