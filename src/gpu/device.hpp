// Simulated CUDA-like accelerator device.
//
// The paper's accelerators are NVIDIA Tesla C1060 GPUs driven through the
// CUDA driver API (Section IV). We have no GPUs here, so the device is
// simulated along two axes that share every code path:
//
//   * timing   — copy engines and the compute pipeline are analytic
//                serialized resources (sim::SerialResource) with parameters
//                calibrated to the C1060 numbers the paper reports
//                (~5700 MiB/s pinned DMA, ~4700 MiB/s pageable PIO,
//                Section V.A); kernels charge durations from per-kernel cost
//                models.
//   * function — in functional mode, device memory is real host memory and
//                kernels are host callbacks operating on it, so numerical
//                results can be verified end-to-end through the full remote
//                stack. In phantom mode (used for paper-scale benchmark
//                sizes) memory is size-only and executors are skipped; all
//                timing behaviour is identical.
//
// Streams follow CUDA semantics: operations within one stream serialize;
// operations in different streams may overlap (the pipeline protocol relies
// on this to overlap network receives with host-to-device DMA).
//
// Functional effects are applied at issue time while the clock charge is
// analytic; this is safe because every client issues dependent operations in
// simulated-time order.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "util/buffer.hpp"
#include "util/units.hpp"

namespace dacc::gpu {

/// Opaque device pointer. Nonzero values address bytes inside allocations;
/// arithmetic within an allocation (dptr + offset) is allowed, as in CUDA.
using DevPtr = std::uint64_t;
inline constexpr DevPtr kNullDevPtr = 0;

/// CUDA-like status codes carried back over the wire protocol.
enum class Result : std::uint32_t {
  kSuccess = 0,
  kOutOfMemory = 2,
  kInvalidValue = 11,
  kInvalidHandle = 400,
  kNotFound = 500,
  kEccError = 214,     // used by fault injection
  kUnavailable = 999,  // daemon unreachable: retries exhausted, no response
};

const char* to_string(Result r);

/// Where a host-side buffer lives; determines the copy engine model
/// (pinned -> DMA, pageable -> programmed I/O through the CPU).
enum class HostMemType { kPageable, kPinned };

struct DeviceParams {
  std::string name = "Tesla C1060 (simulated)";
  /// Device class used for constrained allocation at the ARM ("gpu",
  /// "mic", ...). The paper's architecture is "extensible to any
  /// accelerator programming interface"; kinds let one pool mix them.
  std::string kind = "gpu";
  std::uint64_t memory_bytes = 4ull * 1024 * 1024 * 1024;

  // Host<->device copy engines (paper Fig. 7/8: ~5700 MiB/s pinned DMA,
  // ~4700 MiB/s pageable PIO on the testbed).
  double h2d_pinned_mib_s = 5720.0;
  double h2d_pageable_mib_s = 4720.0;
  double d2h_pinned_mib_s = 5720.0;
  double d2h_pageable_mib_s = 4720.0;
  SimDuration copy_setup = 10'000;  // ns per copy operation

  /// Device-to-device copy within one GPU's memory.
  double d2d_mib_s = 70000.0;

  SimDuration kernel_launch_overhead = 7'000;  // ns

  /// Scale factor applied to every kernel cost model; lets one binary model
  /// heterogeneous pools (e.g. a MIC-flavoured device, Section VI).
  double compute_scale = 1.0;
};

/// Factory presets.
DeviceParams tesla_c1060();
DeviceParams mic_knc();  ///< "extensible to Intel MIC" (paper Section VI)

struct Dim3 {
  std::uint32_t x = 1;
  std::uint32_t y = 1;
  std::uint32_t z = 1;
  std::uint64_t total() const {
    return static_cast<std::uint64_t>(x) * y * z;
  }
};

struct LaunchConfig {
  Dim3 grid;
  Dim3 block;
  std::uint64_t threads() const { return grid.total() * block.total(); }
};

/// Kernel argument: device pointer or scalar.
using KernelArg = std::variant<DevPtr, std::int64_t, double>;
using KernelArgs = std::vector<KernelArg>;

DevPtr arg_ptr(const KernelArgs& args, std::size_t i);
std::int64_t arg_i64(const KernelArgs& args, std::size_t i);
double arg_f64(const KernelArgs& args, std::size_t i);

class Device;

/// Functional body of a kernel: runs host-side on the device's memory.
/// Only invoked in functional mode.
using KernelExecutor =
    std::function<void(Device&, const LaunchConfig&, const KernelArgs&)>;

/// Simulated duration of a kernel launch (before compute_scale).
using KernelCost =
    std::function<SimDuration(const LaunchConfig&, const KernelArgs&)>;

struct KernelDef {
  KernelExecutor executor;  // may be empty (timing-only kernel)
  KernelCost cost;          // required
};

/// Name -> definition map. Usually shared by all devices of a cluster;
/// modules (la, mdsim, examples) register their kernels here.
class KernelRegistry {
 public:
  void register_kernel(std::string name, KernelDef def);
  bool contains(const std::string& name) const;
  const KernelDef& lookup(const std::string& name) const;
  std::vector<std::string> names() const;

  /// Registry pre-loaded with the built-in utility kernels (vector_add,
  /// daxpy, dscal, fill, reduce_sum).
  static std::shared_ptr<KernelRegistry> with_builtins();

 private:
  std::map<std::string, KernelDef> kernels_;
};

/// An asynchronous operation's handle: the simulated completion time plus a
/// CUDA-like status (checked by the daemon and relayed over the wire).
struct OpHandle {
  SimTime done_at = 0;
  Result status = Result::kSuccess;
  bool ok() const { return status == Result::kSuccess; }
};

/// A CUDA-like stream: in-order queue of copies and launches.
class Stream {
 public:
  explicit Stream(Device& device) : device_(&device) {}

  /// Completion time of everything enqueued so far.
  SimTime ready_at() const { return ready_; }

 private:
  friend class Device;
  Device* device_;
  SimTime ready_ = 0;
};

/// A CUDA-like event: a marker in a stream's timeline (cuEventRecord /
/// cuStreamWaitEvent), used to express cross-stream dependencies.
struct Event {
  SimTime at = 0;
};

class Device {
 public:
  Device(sim::Engine& engine, DeviceParams params,
         std::shared_ptr<KernelRegistry> registry, bool functional = true);

  const DeviceParams& params() const { return params_; }
  bool functional() const { return functional_; }
  sim::Engine& engine() { return engine_; }
  KernelRegistry& registry() { return *registry_; }

  // --- memory -------------------------------------------------------------
  Result mem_alloc(std::uint64_t bytes, DevPtr* out);
  Result mem_free(DevPtr ptr);
  std::uint64_t memory_used() const { return memory_used_; }
  std::uint64_t memory_free() const {
    return params_.memory_bytes - memory_used_;
  }

  /// Raw access to allocation bytes (functional mode; executors use this).
  std::span<std::byte> span_of(DevPtr ptr, std::uint64_t bytes);
  template <typename T>
  std::span<T> span_as(DevPtr ptr, std::uint64_t count) {
    auto raw = span_of(ptr, count * sizeof(T));
    return {reinterpret_cast<T*>(raw.data()), count};
  }
  bool valid_range(DevPtr ptr, std::uint64_t bytes) const;

  // --- async operations (enqueue on a stream, return completion time) -----
  /// Copies `src` into device memory at `dst`. Functional effect applies
  /// immediately; timing per the pinned/pageable engine model. `extra_busy`
  /// adds serialized host-side cost to this operation (the daemon charges
  /// the staging copy here when GPUDirect is unavailable).
  OpHandle memcpy_htod_async(Stream& stream, DevPtr dst,
                             const util::Buffer& src, HostMemType mem,
                             SimTime earliest, SimDuration extra_busy = 0);
  /// Reads `bytes` from device memory at `src` into a returned buffer
  /// (backed in functional mode, phantom otherwise).
  OpHandle memcpy_dtoh_async(Stream& stream, DevPtr src, std::uint64_t bytes,
                             HostMemType mem, SimTime earliest,
                             util::Buffer* out, SimDuration extra_busy = 0);
  /// Device-internal copy.
  OpHandle memcpy_dtod_async(Stream& stream, DevPtr dst, DevPtr src,
                             std::uint64_t bytes, SimTime earliest);
  /// Launches a registered kernel.
  OpHandle launch_async(Stream& stream, const std::string& kernel,
                        const LaunchConfig& config, const KernelArgs& args,
                        SimTime earliest);

  Stream& default_stream() { return default_stream_; }

  /// Marks the current end of `stream`'s work (cuEventRecord).
  Event record_event(const Stream& stream) const { return {stream.ready_}; }

  /// Makes further work on `stream` wait for `event` (cuStreamWaitEvent).
  void stream_wait_event(Stream& stream, Event event) {
    stream.ready_ = std::max(stream.ready_, event.at);
  }

  /// Utilization accounting for the economy experiments.
  SimDuration compute_busy() const { return compute_.busy_total(); }
  SimDuration copy_busy() const {
    return h2d_.busy_total() + d2h_.busy_total();
  }

  // --- fault injection ----------------------------------------------------
  /// A broken device fails every subsequent operation with kEccError.
  void mark_broken() { broken_ = true; }
  bool broken() const { return broken_; }

 private:
  struct Allocation {
    std::uint64_t bytes;
    util::Buffer storage;  // backed in functional mode, phantom otherwise
  };

  /// Finds the allocation containing [ptr, ptr+bytes), or nullptr.
  Allocation* find(DevPtr ptr, std::uint64_t bytes, std::uint64_t* offset);
  const Allocation* find(DevPtr ptr, std::uint64_t bytes,
                         std::uint64_t* offset) const;

  sim::Engine& engine_;
  DeviceParams params_;
  std::shared_ptr<KernelRegistry> registry_;
  bool functional_;
  bool broken_ = false;

  std::map<DevPtr, Allocation> allocations_;  // keyed by base address
  DevPtr next_addr_ = 0x10000;
  std::uint64_t memory_used_ = 0;

  sim::SerialResource h2d_;
  sim::SerialResource d2h_;
  sim::SerialResource compute_;
  Stream default_stream_;
};

}  // namespace dacc::gpu
