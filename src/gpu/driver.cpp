#include "gpu/driver.hpp"

namespace dacc::gpu {

void Driver::check(const OpHandle& op, const char* what) {
  if (!op.ok()) throw DeviceError(op.status, what);
}

DevPtr Driver::mem_alloc(std::uint64_t bytes) {
  DevPtr out = kNullDevPtr;
  const Result r = device_.mem_alloc(bytes, &out);
  if (r != Result::kSuccess) throw DeviceError(r, "mem_alloc");
  return out;
}

void Driver::mem_free(DevPtr ptr) {
  const Result r = device_.mem_free(ptr);
  if (r != Result::kSuccess) throw DeviceError(r, "mem_free");
}

void Driver::memcpy_htod(DevPtr dst, const util::Buffer& src,
                         HostMemType mem) {
  const OpHandle op = device_.memcpy_htod_async(device_.default_stream(), dst,
                                                src, mem, ctx_.now());
  check(op, "memcpy_htod");
  ctx_.wait_until(op.done_at);
}

util::Buffer Driver::memcpy_dtoh(DevPtr src, std::uint64_t bytes,
                                 HostMemType mem) {
  util::Buffer out;
  const OpHandle op = device_.memcpy_dtoh_async(
      device_.default_stream(), src, bytes, mem, ctx_.now(), &out);
  check(op, "memcpy_dtoh");
  ctx_.wait_until(op.done_at);
  return out;
}

void Driver::memcpy_dtod(DevPtr dst, DevPtr src, std::uint64_t bytes) {
  const OpHandle op = device_.memcpy_dtod_async(device_.default_stream(), dst,
                                                src, bytes, ctx_.now());
  check(op, "memcpy_dtod");
  ctx_.wait_until(op.done_at);
}

void Driver::launch(const std::string& kernel, const LaunchConfig& config,
                    const KernelArgs& args) {
  const OpHandle op = device_.launch_async(device_.default_stream(), kernel,
                                           config, args, ctx_.now());
  check(op, ("launch " + kernel).c_str());
  ctx_.wait_until(op.done_at);
}

OpHandle Driver::memcpy_htod_async(Stream& stream, DevPtr dst,
                                   const util::Buffer& src, HostMemType mem) {
  return device_.memcpy_htod_async(stream, dst, src, mem, ctx_.now());
}

OpHandle Driver::memcpy_dtoh_async(Stream& stream, DevPtr src,
                                   std::uint64_t bytes, HostMemType mem,
                                   util::Buffer* out) {
  return device_.memcpy_dtoh_async(stream, src, bytes, mem, ctx_.now(), out);
}

OpHandle Driver::launch_async(Stream& stream, const std::string& kernel,
                              const LaunchConfig& config,
                              const KernelArgs& args) {
  return device_.launch_async(stream, kernel, config, args, ctx_.now());
}

void Driver::wait(const OpHandle& op) {
  check(op, "wait");
  ctx_.wait_until(op.done_at);
}

void Driver::synchronize(Stream& stream) {
  ctx_.wait_until(stream.ready_at());
}

}  // namespace dacc::gpu
