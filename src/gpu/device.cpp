#include "gpu/device.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace dacc::gpu {

const char* to_string(Result r) {
  switch (r) {
    case Result::kSuccess:
      return "success";
    case Result::kOutOfMemory:
      return "out of memory";
    case Result::kInvalidValue:
      return "invalid value";
    case Result::kInvalidHandle:
      return "invalid handle";
    case Result::kNotFound:
      return "not found";
    case Result::kEccError:
      return "uncorrectable ECC error";
    case Result::kUnavailable:
      return "accelerator unreachable";
  }
  return "unknown";
}

DeviceParams tesla_c1060() { return DeviceParams{}; }

DeviceParams mic_knc() {
  DeviceParams p;
  p.name = "Xeon Phi KNC (simulated)";
  p.kind = "mic";
  p.memory_bytes = 8ull * 1024 * 1024 * 1024;
  p.h2d_pinned_mib_s = 6300.0;
  p.h2d_pageable_mib_s = 5100.0;
  p.d2h_pinned_mib_s = 6300.0;
  p.d2h_pageable_mib_s = 5100.0;
  p.kernel_launch_overhead = 12'000;  // offload-model launches cost more
  p.compute_scale = 1.3;              // roughly comparable DP throughput
  return p;
}

DevPtr arg_ptr(const KernelArgs& args, std::size_t i) {
  return std::get<DevPtr>(args.at(i));
}
std::int64_t arg_i64(const KernelArgs& args, std::size_t i) {
  return std::get<std::int64_t>(args.at(i));
}
double arg_f64(const KernelArgs& args, std::size_t i) {
  return std::get<double>(args.at(i));
}

// ---------------------------------------------------------------------------
// KernelRegistry
// ---------------------------------------------------------------------------

void KernelRegistry::register_kernel(std::string name, KernelDef def) {
  if (!def.cost) {
    throw std::invalid_argument("kernel '" + name + "' needs a cost model");
  }
  kernels_[std::move(name)] = std::move(def);
}

bool KernelRegistry::contains(const std::string& name) const {
  return kernels_.count(name) != 0;
}

const KernelDef& KernelRegistry::lookup(const std::string& name) const {
  const auto it = kernels_.find(name);
  if (it == kernels_.end()) {
    throw std::out_of_range("unknown kernel: " + name);
  }
  return it->second;
}

std::vector<std::string> KernelRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(kernels_.size());
  for (const auto& [name, def] : kernels_) out.push_back(name);
  return out;
}

// ---------------------------------------------------------------------------
// Device
// ---------------------------------------------------------------------------

Device::Device(sim::Engine& engine, DeviceParams params,
               std::shared_ptr<KernelRegistry> registry, bool functional)
    : engine_(engine),
      params_(std::move(params)),
      registry_(std::move(registry)),
      functional_(functional),
      default_stream_(*this) {
  if (!registry_) {
    throw std::invalid_argument("Device: kernel registry required");
  }
}

Result Device::mem_alloc(std::uint64_t bytes, DevPtr* out) {
  if (out == nullptr || bytes == 0) return Result::kInvalidValue;
  if (broken_) return Result::kEccError;
  if (memory_used_ + bytes > params_.memory_bytes) {
    return Result::kOutOfMemory;
  }
  const DevPtr base = next_addr_;
  // Keep allocations 256-byte aligned and leave a guard gap so that
  // out-of-bounds pointer arithmetic lands in no allocation at all.
  next_addr_ += ((bytes + 255) / 256) * 256 + 256;
  Allocation alloc;
  alloc.bytes = bytes;
  alloc.storage = functional_ ? util::Buffer::backed_zero(bytes)
                              : util::Buffer::phantom(bytes);
  allocations_.emplace(base, std::move(alloc));
  memory_used_ += bytes;
  *out = base;
  return Result::kSuccess;
}

Result Device::mem_free(DevPtr ptr) {
  if (broken_) return Result::kEccError;
  const auto it = allocations_.find(ptr);
  if (it == allocations_.end()) return Result::kInvalidValue;
  memory_used_ -= it->second.bytes;
  allocations_.erase(it);
  return Result::kSuccess;
}

Device::Allocation* Device::find(DevPtr ptr, std::uint64_t bytes,
                                 std::uint64_t* offset) {
  return const_cast<Allocation*>(
      std::as_const(*this).find(ptr, bytes, offset));
}

const Device::Allocation* Device::find(DevPtr ptr, std::uint64_t bytes,
                                       std::uint64_t* offset) const {
  if (ptr == kNullDevPtr || allocations_.empty()) return nullptr;
  auto it = allocations_.upper_bound(ptr);
  if (it == allocations_.begin()) return nullptr;
  --it;
  const DevPtr base = it->first;
  const Allocation& alloc = it->second;
  if (ptr < base || ptr + bytes > base + alloc.bytes) return nullptr;
  if (offset != nullptr) *offset = ptr - base;
  return &alloc;
}

bool Device::valid_range(DevPtr ptr, std::uint64_t bytes) const {
  return find(ptr, bytes, nullptr) != nullptr;
}

std::span<std::byte> Device::span_of(DevPtr ptr, std::uint64_t bytes) {
  std::uint64_t offset = 0;
  Allocation* alloc = find(ptr, bytes, &offset);
  if (alloc == nullptr) {
    throw std::out_of_range("Device::span_of: invalid device range");
  }
  if (!alloc->storage.is_backed()) {
    throw std::logic_error("Device::span_of: phantom-mode device");
  }
  return alloc->storage.mutable_bytes().subspan(offset, bytes);
}

OpHandle Device::memcpy_htod_async(Stream& stream, DevPtr dst,
                                   const util::Buffer& src, HostMemType mem,
                                   SimTime earliest, SimDuration extra_busy) {
  if (broken_) return {engine_.now(), Result::kEccError};
  std::uint64_t offset = 0;
  Allocation* alloc = find(dst, src.size(), &offset);
  if (alloc == nullptr) return {engine_.now(), Result::kInvalidValue};
  // Functional effect now; analytic timing below.
  if (functional_ && src.is_backed()) {
    alloc->storage.write_at(offset, src);
  }
  const double rate = mem == HostMemType::kPinned
                          ? params_.h2d_pinned_mib_s
                          : params_.h2d_pageable_mib_s;
  const SimDuration busy =
      params_.copy_setup + extra_busy + transfer_time(src.size(), rate);
  const auto iv = h2d_.occupy(std::max(earliest, stream.ready_), busy);
  stream.ready_ = iv.end;
  return {iv.end, Result::kSuccess};
}

OpHandle Device::memcpy_dtoh_async(Stream& stream, DevPtr src,
                                   std::uint64_t bytes, HostMemType mem,
                                   SimTime earliest, util::Buffer* out,
                                   SimDuration extra_busy) {
  if (broken_) return {engine_.now(), Result::kEccError};
  std::uint64_t offset = 0;
  Allocation* alloc = find(src, bytes, &offset);
  if (alloc == nullptr || out == nullptr) {
    return {engine_.now(), Result::kInvalidValue};
  }
  *out = alloc->storage.slice(offset, bytes);  // phantom-aware copy-out
  const double rate = mem == HostMemType::kPinned
                          ? params_.d2h_pinned_mib_s
                          : params_.d2h_pageable_mib_s;
  const SimDuration busy =
      params_.copy_setup + extra_busy + transfer_time(bytes, rate);
  const auto iv = d2h_.occupy(std::max(earliest, stream.ready_), busy);
  stream.ready_ = iv.end;
  return {iv.end, Result::kSuccess};
}

OpHandle Device::memcpy_dtod_async(Stream& stream, DevPtr dst, DevPtr src,
                                   std::uint64_t bytes, SimTime earliest) {
  if (broken_) return {engine_.now(), Result::kEccError};
  std::uint64_t src_off = 0;
  std::uint64_t dst_off = 0;
  Allocation* s = find(src, bytes, &src_off);
  Allocation* d = find(dst, bytes, &dst_off);
  if (s == nullptr || d == nullptr) {
    return {engine_.now(), Result::kInvalidValue};
  }
  if (functional_) {
    // view(): read-only alias, one memcpy inside write_at instead of two.
    d->storage.write_at(dst_off, s->storage.view(src_off, bytes));
  }
  const SimDuration busy = transfer_time(bytes, params_.d2d_mib_s);
  const auto iv = compute_.occupy(std::max(earliest, stream.ready_), busy);
  stream.ready_ = iv.end;
  return {iv.end, Result::kSuccess};
}

OpHandle Device::launch_async(Stream& stream, const std::string& kernel,
                              const LaunchConfig& config,
                              const KernelArgs& args, SimTime earliest) {
  if (broken_) return {engine_.now(), Result::kEccError};
  if (!registry_->contains(kernel)) {
    return {engine_.now(), Result::kNotFound};
  }
  const KernelDef& def = registry_->lookup(kernel);
  if (functional_ && def.executor) {
    def.executor(*this, config, args);
  }
  const auto raw_cost = def.cost(config, args);
  const auto cost = static_cast<SimDuration>(
      static_cast<double>(raw_cost) / params_.compute_scale);
  const SimDuration busy = params_.kernel_launch_overhead + cost;
  const auto iv = compute_.occupy(std::max(earliest, stream.ready_), busy);
  stream.ready_ = iv.end;
  return {iv.end, Result::kSuccess};
}

}  // namespace dacc::gpu
