#include "rpc/channel.hpp"

#include <cstdlib>
#include <string>

namespace dacc::rpc {

namespace {
/// Front-end reply tags: each request attempt takes a fresh (reply, data)
/// tag pair. Daemon replies land on the even tag, bulk data on the odd one
/// (reply_tag + 1). The range stays below dmpi::kMaxUserTag and clear of
/// the ARM tag bases.
constexpr int kFeReplyTagBase = 4'000'000;
constexpr std::uint64_t kFeTagSpan = 100'000'000;
}  // namespace

StreamConfig default_stream_config() {
  StreamConfig config;
  const char* env = std::getenv("DACC_RPC_BATCH");
  if (env == nullptr || *env == '\0') return config;
  const std::string v(env);
  if (v == "0" || v == "off") return config;
  config.enabled = true;
  if (v != "1" && v != "on") {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 1) config.watermark = static_cast<std::uint32_t>(n);
  }
  return config;
}

proto::WireWriter request_header(std::uint32_t op_word, int reply_tag) {
  proto::WireWriter w;
  w.u32(op_word).u32(static_cast<std::uint32_t>(reply_tag));
  return w;
}

Channel::Options Channel::frontend(dmpi::Rank self) {
  Options o;
  o.request_tag = proto::kRequestTag;
  o.reply_tag_base = kFeReplyTagBase;
  o.reply_tag_span = kFeTagSpan;
  o.tag_stride = 2;
  o.trace_context = true;
  o.metrics_label = "fe-r" + std::to_string(self);
  return o;
}

Channel::Channel(dmpi::Mpi& mpi, const dmpi::Comm& comm, dmpi::Rank server,
                 Options options)
    : mpi_(mpi), comm_(comm), server_(server), options_(std::move(options)) {}

int Channel::next_reply_tag() {
  const std::uint64_t seq =
      options_.endpoint_tags ? mpi_.fresh_tag_seed() : seq_++;
  return options_.reply_tag_base +
         options_.tag_stride * static_cast<int>(seq % options_.reply_tag_span);
}

void Channel::bind_metrics(obs::Registry* reg) {
  const std::string labels = obs::labeled("", "chan", options_.metrics_label);
  m_msgs_ = reg->counter("dacc_rpc_msgs_total" + labels);
  m_ops_ = reg->counter("dacc_rpc_ops_total" + labels);
  m_batch_size_ =
      reg->histogram("dacc_rpc_batch_size" + labels, {1, 2, 4, 8, 16, 32, 64});
  metrics_bound_ = reg;
}

void Channel::count_msgs(std::uint64_t n) {
  if (options_.metrics_label.empty()) return;
  obs::Registry* const reg = mpi_.world().engine().metrics();
  if (reg == nullptr) return;
  if (metrics_bound_ != reg) bind_metrics(reg);
  m_msgs_.add(n);
}

void Channel::note_flush(std::uint32_t n) {
  if (options_.metrics_label.empty()) return;
  obs::Registry* const reg = mpi_.world().engine().metrics();
  if (reg == nullptr) return;
  if (metrics_bound_ != reg) bind_metrics(reg);
  m_ops_.add(n);
  m_batch_size_.observe(n);
}

proto::WireWriter Channel::request(std::uint32_t op_word, int reply_tag) {
  // Requests from a traced API call carry the causal context after the
  // reply tag (flag bit 31); untraced clients emit the unchanged format.
  if (options_.trace_context) {
    const sim::TraceCtx tc = mpi_.world().engine().current_trace();
    if (tc.active()) {
      proto::WireWriter w;
      w.u32(op_word)
          .u32(static_cast<std::uint32_t>(reply_tag) | proto::kTraceContextFlag)
          .u64(tc.trace_id)
          .u64(tc.span_id);
      return w;
    }
  }
  return request_header(op_word, reply_tag);
}

std::optional<util::Buffer> Channel::exchange(util::Buffer frame,
                                              int reply_tag,
                                              SimTime deadline) {
  dmpi::Request reply = post_reply(reply_tag);
  send_request(std::move(frame));
  if (!finish(reply, deadline)) return std::nullopt;
  return reply.take_payload();
}

void Channel::post(util::Buffer frame) {
  count_msgs(1);
  mpi_.send(comm_, server_, options_.request_tag, std::move(frame));
}

dmpi::Request Channel::post_reply(int reply_tag) {
  const dmpi::Rank source =
      options_.any_source_replies ? dmpi::kAnySource : server_;
  return mpi_.irecv(comm_, source, reply_tag);
}

void Channel::send_request(util::Buffer frame) {
  count_msgs(1);
  mpi_.send(comm_, server_, options_.request_tag, std::move(frame));
}

bool Channel::finish(dmpi::Request& reply, SimTime deadline) {
  if (!mpi_.wait_until(reply, deadline)) {
    mpi_.cancel(reply);
    return false;
  }
  count_msgs(1);
  return true;
}

util::Buffer ServerChannel::raw(dmpi::Rank* source) {
  dmpi::Status st;
  util::Buffer msg =
      mpi_.recv(comm_, dmpi::kAnySource, options_.request_tag, &st);
  *source = st.source;
  return msg;
}

Inbound ServerChannel::decode(dmpi::Rank source, util::Buffer frame) const {
  proto::WireReader r(std::move(frame));
  // Frame header: op code + the tag the client wants the reply on (bulk
  // data travels on reply_tag + 1), optionally followed by the client's
  // causal trace context (flag bit 31 of the tag word). A frame too short
  // to carry the header cannot even be answered.
  const std::uint32_t op_word = r.u32();
  std::uint32_t tag_word = r.u32();
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;
  if ((tag_word & proto::kTraceContextFlag) != 0) {
    trace_id = r.u64();
    parent_span = r.u64();
    tag_word &= ~proto::kTraceContextFlag;
  }
  const int reply_tag = static_cast<int>(tag_word);
  if (reply_tag < options_.min_reply_tag ||
      reply_tag >= dmpi::kMaxUserTag * 2) {
    throw proto::WireError("rpc: " + proto::op_name(op_word) +
                           " request with reply tag out of range");
  }
  Inbound in(source, std::move(r));
  in.op_word = op_word;
  in.reply_tag = reply_tag;
  in.trace_id = trace_id;
  in.parent_span = parent_span;
  return in;
}

void ServerChannel::reply(dmpi::Rank client, int reply_tag,
                          util::Buffer frame) {
  mpi_.send(comm_, client, reply_tag, std::move(frame));
}

}  // namespace dacc::rpc
