// Typed RPC channel over dmpi — the one place that knows the middleware's
// request framing.
//
// The paper's middleware is an RPC system at heart: every acMemAlloc /
// acKernelRun is a request/response message pair over MPI (Section IV), and
// the same header convention is shared by the front-end <-> daemon protocol,
// the daemon <-> daemon peer-transfer leg, and the ARM control protocol.
// Channel (client side) and ServerChannel (server side) own that convention:
//
//   header   = u32 op word | u32 reply-tag word
//   reply    = posted on the reply tag; bulk data blocks on reply_tag + 1
//   tracing  = bit 31 of the tag word (proto::kTraceContextFlag) marks two
//              appended u64s: causal trace id + parent span id
//   errors   = decoders throw proto::WireError; servers turn it into a
//              typed status instead of crashing or partially replying
//
// Channel also owns reply-tag allocation (per-channel sequence or the rank
// endpoint counter — both deterministic under every execution backend), the
// front-end RetryPolicy ladder (with_retry), and the per-channel message /
// ops instrumentation behind the command-stream batching of rpc/batch.hpp.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>

#include "dmpi/mpi.hpp"
#include "obs/metrics.hpp"
#include "proto/wire.hpp"
#include "util/buffer.hpp"
#include "util/units.hpp"

namespace dacc::rpc {

/// Failure-handling policy for channel requests (paper Section III.A: a
/// broken accelerator is replaced from the pool without losing the compute
/// node). All requests are idempotent from the daemon's perspective, so the
/// semantics are at-least-once.
struct RetryPolicy {
  /// Per-request response deadline; 0 disables timeouts (wait forever).
  /// Timeouts detect *loss* (dead link/daemon), not slowness — pick a value
  /// comfortably above the largest expected transfer time.
  SimDuration request_timeout = 0;
  /// Additional attempts after the first one times out.
  int max_retries = 3;
  /// Exponential backoff between attempts: base, base*2, base*4, ... capped.
  SimDuration backoff_base = 50'000;    // 50 us
  SimDuration backoff_cap = 2'000'000;  // 2 ms
  /// Transparently re-acquire a healthy accelerator when the leased one
  /// dies: the session's allocation table and operation log are replayed on
  /// the replacement and the failed request re-executed there.
  bool replace_on_failure = false;
  /// How many device deaths one accelerator handle survives.
  int max_replacements = 3;
};

/// Runs `attempt(deadline)` under the policy's timeout/backoff ladder: up to
/// 1 + max_retries tries with capped exponential backoff between them.
/// Returns true as soon as an attempt returns true; false when every attempt
/// timed out (the server is unreachable).
template <typename Fn>
bool with_retry(sim::Context& ctx, const RetryPolicy& rp, Fn&& attempt) {
  const int attempts = rp.request_timeout > 0 ? rp.max_retries + 1 : 1;
  for (int a = 0; a < attempts; ++a) {
    if (a > 0) {
      const int shift = a - 1 < 20 ? a - 1 : 20;
      const SimDuration backoff = rp.backoff_base << shift;
      ctx.wait_for(backoff < rp.backoff_cap ? backoff : rp.backoff_cap);
    }
    const SimTime deadline =
        rp.request_timeout > 0 ? ctx.now() + rp.request_timeout : kSimTimeNever;
    if (attempt(deadline)) return true;
  }
  return false;
}

/// Command-stream batching knobs (DESIGN.md §10). Off by default: every op
/// then travels as its own request/response pair — the exact legacy wire
/// format. When enabled, a front-end proxy coalesces consecutive pending
/// small control ops into one kBatch frame, at most `watermark` sub-requests
/// per flush. Synchronous calls and lone ops still go out as single legacy
/// frames, so enabling batching only changes the wire when an async command
/// stream has actually built up.
struct StreamConfig {
  bool enabled = false;
  std::uint32_t watermark = 16;
};

/// Process-wide default, from the DACC_RPC_BATCH environment knob:
/// unset/"0"/"off" -> disabled, "1"/"on" -> enabled with the default
/// watermark, N > 1 -> enabled with watermark N.
StreamConfig default_stream_config();

/// Bare request header (op word + reply-tag word, no trace context): the
/// building block Channel::request composes, exposed for one-way frames
/// encoded away from a live channel (the ARM liveness messages).
proto::WireWriter request_header(std::uint32_t op_word, int reply_tag);

/// Client side of one request/response relationship with a server rank.
class Channel {
 public:
  struct Options {
    int request_tag = proto::kRequestTag;
    /// Reply-tag allocator: base + stride * (seq % span). Stride 2 reserves
    /// reply_tag + 1 for bulk data blocks.
    int reply_tag_base = proto::kResponseTag;
    std::uint64_t reply_tag_span = 1;
    int tag_stride = 1;
    /// Draw the sequence from the rank endpoint counter
    /// (dmpi::Mpi::fresh_tag_seed) instead of a per-channel one — required
    /// when several channels share one endpoint and must never mint the
    /// same tag (concurrent ARM clients on a launcher rank).
    bool endpoint_tags = false;
    /// Append the engine's current causal trace context to request headers
    /// (proto::kTraceContextFlag).
    bool trace_context = false;
    /// Post reply receives with dmpi::kAnySource instead of pinning them to
    /// the addressed server. Required by replicated-service clients: after
    /// a failover the answer to a resent request may come from a different
    /// replica than the one last addressed (the reply tag alone already
    /// identifies the request).
    bool any_source_replies = false;
    /// Label for the per-channel obs instruments; empty disables them.
    std::string metrics_label;
  };

  /// Front-end -> daemon options: a fresh (reply, data) tag pair per
  /// attempt, so a response arriving after its deadline can never be
  /// mistaken for the answer to a retry; traced; metered per CN rank.
  static Options frontend(dmpi::Rank self);

  Channel(dmpi::Mpi& mpi, const dmpi::Comm& comm, dmpi::Rank server,
          Options options);

  dmpi::Mpi& mpi() { return mpi_; }
  const dmpi::Comm& comm() const { return comm_; }
  dmpi::Rank server() const { return server_; }
  /// Reroutes subsequent requests (transparent accelerator replacement).
  void set_server(dmpi::Rank server) { server_ = server; }

  /// Allocates the next reply tag (plus its data tag under stride 2).
  int next_reply_tag();

  /// Builds a request header; the caller appends the body and hands the
  /// frame to exchange()/post()/send_request().
  proto::WireWriter request(std::uint32_t op_word, int reply_tag);
  template <typename OpT, typename = std::enable_if_t<std::is_enum_v<OpT>>>
  proto::WireWriter request(OpT op, int reply_tag) {
    return request(static_cast<std::uint32_t>(op), reply_tag);
  }

  /// One request/response exchange. The reply receive is posted before the
  /// request goes out; on deadline expiry it is cancelled (a late response
  /// parks harmlessly on the abandoned tag) and nullopt returns.
  std::optional<util::Buffer> exchange(util::Buffer frame, int reply_tag,
                                       SimTime deadline = kSimTimeNever);

  /// Fire-and-forget request (one-way ops carry reply tag 0).
  void post(util::Buffer frame);

  // Split-phase exchange, for calls that move bulk payload blocks between
  // request and response (H2D, the peer-put leg): post the reply receive,
  // send the request, stream the blocks, then finish().
  dmpi::Request post_reply(int reply_tag);
  void send_request(util::Buffer frame);
  /// Waits for a posted reply until `deadline`; cancels it on expiry and
  /// returns false.
  bool finish(dmpi::Request& reply, SimTime deadline = kSimTimeNever);

  /// Records one flushed command group of `n` sub-requests against the
  /// channel's ops counter and batch-size histogram (no-op when unmetered).
  /// Singles count as groups of 1, so msgs-per-op is counters all the way.
  void note_flush(std::uint32_t n);

 private:
  void count_msgs(std::uint64_t n);
  void bind_metrics(obs::Registry* reg);

  dmpi::Mpi& mpi_;
  const dmpi::Comm& comm_;
  dmpi::Rank server_;
  Options options_;
  std::uint64_t seq_ = 0;

  // Metrics (lazy-bound, no-op handles when no registry is attached).
  obs::Registry* metrics_bound_ = nullptr;
  obs::Counter m_msgs_;
  obs::Counter m_ops_;
  obs::Histogram m_batch_size_;
};

/// One decoded request header, as servers see it.
struct Inbound {
  Inbound(dmpi::Rank src, proto::WireReader reader)
      : source(src), body(std::move(reader)) {}

  dmpi::Rank source;          ///< comm rank of the requester
  std::uint32_t op_word = 0;  ///< op code, trace flag stripped
  int reply_tag = 0;          ///< 0 = one-way message
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;
  proto::WireReader body;  ///< positioned at the request body

  template <typename OpT>
  OpT op() const {
    return static_cast<OpT>(op_word);
  }
  bool traced() const { return trace_id != 0; }
};

/// Server side: receives frames on the request tag, decodes headers, sends
/// replies. raw() and decode() are split so service loops can charge their
/// dispatch cost (and bind metrics) between arrival and decode, exactly
/// where the hand-rolled loops used to.
class ServerChannel {
 public:
  struct Options {
    int request_tag = proto::kRequestTag;
    /// Smallest acceptable reply tag; ARM-style one-way frames use 0.
    int min_reply_tag = 1;
  };

  ServerChannel(dmpi::Mpi& mpi, const dmpi::Comm& comm, Options options)
      : mpi_(mpi), comm_(comm), options_(std::move(options)) {}

  /// Blocks for the next raw request frame; reports the sender.
  util::Buffer raw(dmpi::Rank* source);

  /// Decodes a frame header. Throws proto::WireError on a frame too short
  /// to carry one or on an out-of-range reply tag; the message was consumed
  /// either way, so the caller can count the failure and keep serving.
  Inbound decode(dmpi::Rank source, util::Buffer frame) const;

  void reply(const Inbound& req, util::Buffer frame) {
    reply(req.source, req.reply_tag, std::move(frame));
  }
  void reply(dmpi::Rank client, int reply_tag, util::Buffer frame);

  dmpi::Mpi& mpi() { return mpi_; }
  const dmpi::Comm& comm() const { return comm_; }

 private:
  dmpi::Mpi& mpi_;
  const dmpi::Comm& comm_;
  Options options_;
};

}  // namespace dacc::rpc
