// Command-stream batch frames (proto::Op::kBatch).
//
// A batch carries N small control ops in one request message and gets one
// completion frame back, cutting the middleware's two-MPI-messages-per-
// request cost (paper Section IV) to 2/N for op-dense streams. Layout after
// the ordinary channel header:
//
//   request:  u32 count | count x ( u32 sub-op word | sub-op request body )
//   reply:    u32 count | count x ( u32 status | u64 ptr )
//
// Sub-op words must be plain (no trace flag — the batch header already
// carries the stream's context) and drawn from the batchable() set; bulk
// transfers keep the zero-copy pipeline path and are never batched. The
// reply's ptr is meaningful for kMemAlloc and zero otherwise. A server that
// rejects the whole batch answers with a bare u32 status frame instead —
// decode_batch_reply() expands it to one status per sub-request, so callers
// never see a partial reply.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "gpu/device.hpp"
#include "proto/wire.hpp"
#include "util/buffer.hpp"

namespace dacc::rpc {

/// Ops eligible for command-stream batching: small fixed-size control ops
/// whose request and reply both fit in one eager message.
bool batchable(proto::Op op);

struct BatchItem {
  proto::Op op = proto::Op::kMemAlloc;
  std::uint64_t arg = 0;  ///< kMemAlloc: byte count; kMemFree: device pointer
  std::string kernel;     ///< kKernelCreate / kKernelRun
  gpu::LaunchConfig launch;  ///< kKernelRun
  gpu::KernelArgs args;      ///< kKernelRun
};

struct BatchResult {
  gpu::Result status = gpu::Result::kSuccess;
  gpu::DevPtr ptr = gpu::kNullDevPtr;  ///< kMemAlloc only
};

/// Appends `count` and the sub-requests to a frame under construction.
void encode_batch(proto::WireWriter& w, std::span<const BatchItem> items);

/// Decodes the batched sub-requests (reader positioned after the header).
/// Throws proto::WireError naming the sub-request index and op on any
/// malformed item; the caller must not have executed anything yet.
std::vector<BatchItem> decode_batch(proto::WireReader& r);

util::Buffer encode_batch_reply(std::span<const BatchResult> results);

/// Deterministic child-span id for sub-op `index` of a batch whose
/// client-side span id is `batch_span`. Both ends of the wire derive the
/// same id, so no extra bytes travel in the frame: the front-end records
/// one child span per sub-op under this id, the daemon parents its
/// per-sub-op spans on it, and trace viewers stitch the small ops through
/// the batch frame they rode in.
inline std::uint64_t batch_sub_span(std::uint64_t batch_span,
                                    std::uint32_t index) {
  // Top byte 3 marks derived ids (1 = front-end roots, 2 = daemon-minted);
  // the index is mixed in so sibling sub-ops stay distinct.
  return (std::uint64_t{3} << 56) |
         ((batch_span ^
           ((std::uint64_t{index} + 1) * 0x9E3779B97F4A7C15ull)) &
          ((std::uint64_t{1} << 56) - 1));
}

/// Decodes a batched completion frame for `expected` sub-requests. A bare
/// status frame (the server rejecting the whole batch) is surfaced as
/// `expected` copies of that status.
std::vector<BatchResult> decode_batch_reply(util::Buffer frame,
                                            std::size_t expected);

}  // namespace dacc::rpc
