#include "rpc/batch.hpp"

namespace dacc::rpc {

using proto::Op;
using proto::WireError;

bool batchable(Op op) {
  switch (op) {
    case Op::kMemAlloc:
    case Op::kMemFree:
    case Op::kKernelCreate:
    case Op::kKernelRun:
      return true;
    default:
      return false;
  }
}

namespace {
/// Smallest possible sub-request: op word + a u32 body (empty kernel name).
constexpr std::size_t kMinItemBytes = 8;

std::string item_context(std::size_t index, std::uint32_t op_word) {
  return "batch sub-request " + std::to_string(index) + " (" +
         proto::op_name(op_word) + ")";
}
}  // namespace

void encode_batch(proto::WireWriter& w, std::span<const BatchItem> items) {
  w.u32(static_cast<std::uint32_t>(items.size()));
  for (const BatchItem& item : items) {
    w.u32(static_cast<std::uint32_t>(item.op));
    switch (item.op) {
      case Op::kMemAlloc:
      case Op::kMemFree:
        w.u64(item.arg);
        break;
      case Op::kKernelCreate:
        w.str(item.kernel);
        break;
      case Op::kKernelRun:
        w.str(item.kernel).launch_config(item.launch).kernel_args(item.args);
        break;
      default:
        throw WireError("batch: op " +
                        proto::op_name(static_cast<std::uint32_t>(item.op)) +
                        " is not batchable");
    }
  }
}

std::vector<BatchItem> decode_batch(proto::WireReader& r) {
  const std::uint32_t count = r.u32();
  if (count == 0) {
    throw WireError("batch: empty sub-request list");
  }
  if (count > r.remaining() / kMinItemBytes) {
    throw WireError("batch: sub-request count " + std::to_string(count) +
                    " overflows " + std::to_string(r.remaining()) +
                    "-byte frame");
  }
  std::vector<BatchItem> items;
  items.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t op_word = r.u32();
    if ((op_word & proto::kTraceContextFlag) != 0) {
      throw WireError(item_context(i, op_word & ~proto::kTraceContextFlag) +
                      ": trace flag set on inner op");
    }
    const Op op = static_cast<Op>(op_word);
    if (!batchable(op)) {
      throw WireError(item_context(i, op_word) + ": op is not batchable");
    }
    BatchItem item;
    item.op = op;
    try {
      switch (op) {
        case Op::kMemAlloc:
        case Op::kMemFree:
          item.arg = r.u64();
          break;
        case Op::kKernelCreate:
          item.kernel = r.str();
          break;
        case Op::kKernelRun:
          item.kernel = r.str();
          item.launch = r.launch_config();
          item.args = r.kernel_args();
          break;
        default:
          break;  // unreachable: batchable() filtered above
      }
    } catch (const WireError& e) {
      throw WireError(item_context(i, op_word) + ": " + e.what());
    }
    items.push_back(std::move(item));
  }
  return items;
}

util::Buffer encode_batch_reply(std::span<const BatchResult> results) {
  proto::WireWriter w;
  w.reserve(4 + results.size() * 12);
  w.u32(static_cast<std::uint32_t>(results.size()));
  for (const BatchResult& res : results) {
    w.result(res.status).u64(res.ptr);
  }
  return w.finish();
}

std::vector<BatchResult> decode_batch_reply(util::Buffer frame,
                                            std::size_t expected) {
  proto::WireReader r(std::move(frame));
  if (r.remaining() == 4) {
    // Batch-level rejection: one status applied to every sub-request.
    const gpu::Result status = r.result();
    return std::vector<BatchResult>(expected, BatchResult{status});
  }
  const std::uint32_t count = r.u32();
  if (count != expected) {
    throw WireError("batch reply: expected " + std::to_string(expected) +
                    " sub-results, got " + std::to_string(count));
  }
  std::vector<BatchResult> results;
  results.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    BatchResult res;
    res.status = r.result();
    res.ptr = r.u64();
    results.push_back(res);
  }
  return results;
}

}  // namespace dacc::rpc
