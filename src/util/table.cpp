#include "util/table.hpp"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace dacc::util {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

Table& Table::row() {
  cells_.emplace_back();
  return *this;
}

Table& Table::add(const std::string& cell) {
  if (cells_.empty()) cells_.emplace_back();
  cells_.back().push_back(cell);
  return *this;
}

Table& Table::add(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return add(os.str());
}

Table& Table::add(std::uint64_t value) { return add(std::to_string(value)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& r : cells_) {
    for (std::size_t c = 0; c < r.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < r.size() ? r[c] : std::string{};
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(width[c]))
         << cell;
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& r : cells_) emit(r);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << (c == 0 ? "" : ",") << r[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& r : cells_) emit(r);
}

}  // namespace dacc::util
