// Deterministic, seedable random number generation.
//
// The simulation must be bit-for-bit reproducible across runs, so all
// stochastic components (the SRD collision step, workload generators, fault
// injection) draw from explicitly seeded Rng instances instead of global
// state. The generator is xoshiro256** (public domain, Blackman & Vigna),
// which is fast and has no observable linear artifacts for our use.
#pragma once

#include <cstdint>
#include <cmath>

namespace dacc::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t next_below(std::uint64_t n) {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto l = static_cast<std::uint64_t>(m);
    if (l < n) {
      const std::uint64_t t = (0 - n) % n;
      while (l < t) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal variate (Marsaglia polar method).
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    have_spare_ = true;
    return u * factor;
  }

  /// Exponential variate with the given rate (mean = 1/rate).
  double exponential(double rate) {
    return -std::log1p(-next_double()) / rate;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace dacc::util
