// Plain-text table printer used by the benchmark harness to emit
// paper-figure-style series (one row per x value, one column per curve).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace dacc::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent add() calls fill it left to right.
  Table& row();
  Table& add(const std::string& cell);
  Table& add(double value, int precision = 1);
  Table& add(std::uint64_t value);

  /// Renders the table with aligned columns to `os`.
  void print(std::ostream& os) const;

  /// Renders as CSV (for offline plotting).
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return cells_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> cells_;
};

}  // namespace dacc::util
