#include "util/buffer.hpp"

namespace dacc::util {

BufferPool& BufferPool::instance() {
  // Leaked on purpose: Store destructors can run during static teardown,
  // after a function-local static pool would already be gone.
  static BufferPool* pool = new BufferPool();
  return *pool;
}

std::vector<std::byte> BufferPool::acquire(std::uint64_t size, bool zeroed) {
  const int b = bucket_for_acquire(size);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (b < kBuckets && !buckets_[b].empty()) {
      std::vector<std::byte> v = std::move(buckets_[b].back());
      buckets_[b].pop_back();
      ++stats_.hits;
      if (zeroed) v.clear();  // resize from 0 value-initializes every byte
      v.resize(size);
      return v;
    }
    ++stats_.misses;
  }
  return std::vector<std::byte>(size);
}

void BufferPool::release(std::vector<std::byte>&& bytes) {
  if (bytes.capacity() < kMinBytes) return;
  const int b = bucket_for_release(bytes.capacity());
  std::lock_guard<std::mutex> lock(mutex_);
  if (b >= kBuckets || buckets_[b].size() >= kMaxPerBucket) return;
  ++stats_.recycled;
  buckets_[b].push_back(std::move(bytes));
}

void BufferPool::trim() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& bucket : buckets_) {
    bucket.clear();
    bucket.shrink_to_fit();
  }
}

Buffer& Buffer::operator=(const Buffer& other) {
  if (this == &other) return *this;
  size_ = other.size_;
  is_backed_ = other.is_backed_;
  offset_ = 0;
  if (other.store_ != nullptr && other.size_ > 0) {
    auto v = BufferPool::instance().acquire(other.size_, /*zeroed=*/false);
    std::memcpy(v.data(), other.store_->bytes.data() + other.offset_,
                other.size_);
    store_ = std::make_shared<Store>(std::move(v));
  } else {
    store_.reset();
  }
  return *this;
}

Buffer Buffer::backed(std::vector<std::byte> bytes) {
  Buffer b;
  b.size_ = bytes.size();
  b.store_ = std::make_shared<Store>(std::move(bytes));
  return b;
}

Buffer Buffer::backed_zero(std::uint64_t size) {
  return backed(BufferPool::instance().acquire(size, /*zeroed=*/true));
}

Buffer Buffer::backed_copy(std::span<const std::byte> src) {
  auto v = BufferPool::instance().acquire(src.size(), /*zeroed=*/false);
  if (!src.empty()) std::memcpy(v.data(), src.data(), src.size());
  return backed(std::move(v));
}

void Buffer::unshare() {
  if (store_ == nullptr || store_.use_count() == 1) return;
  auto v = BufferPool::instance().acquire(size_, /*zeroed=*/false);
  if (size_ > 0) std::memcpy(v.data(), store_->bytes.data() + offset_, size_);
  store_ = std::make_shared<Store>(std::move(v));
  offset_ = 0;
}

}  // namespace dacc::util
