// Units used throughout dacc.
//
// All simulated time is an integral count of nanoseconds (SimTime); all data
// sizes are bytes. The helpers below exist so that model parameters read like
// the paper ("2 us latency", "128 KiB blocks", "2660 MiB/s") instead of raw
// integers.
#pragma once

#include <cstdint>

namespace dacc {

/// Simulated time in nanoseconds since simulation start.
using SimTime = std::uint64_t;

/// A duration in simulated nanoseconds.
using SimDuration = std::uint64_t;

inline constexpr SimTime kSimTimeNever = ~SimTime{0};

// --- data sizes -----------------------------------------------------------

inline constexpr std::uint64_t operator""_KiB(unsigned long long v) {
  return v * 1024ull;
}
inline constexpr std::uint64_t operator""_MiB(unsigned long long v) {
  return v * 1024ull * 1024ull;
}
inline constexpr std::uint64_t operator""_GiB(unsigned long long v) {
  return v * 1024ull * 1024ull * 1024ull;
}

// --- durations ------------------------------------------------------------

inline constexpr SimDuration operator""_ns(unsigned long long v) { return v; }
inline constexpr SimDuration operator""_us(unsigned long long v) {
  return v * 1000ull;
}
inline constexpr SimDuration operator""_ms(unsigned long long v) {
  return v * 1000ull * 1000ull;
}
inline constexpr SimDuration operator""_s(unsigned long long v) {
  return v * 1000ull * 1000ull * 1000ull;
}

/// Converts a simulated duration to (floating-point) seconds.
inline constexpr double to_seconds(SimDuration d) {
  return static_cast<double>(d) * 1e-9;
}

/// Converts a simulated duration to microseconds.
inline constexpr double to_us(SimDuration d) {
  return static_cast<double>(d) * 1e-3;
}

/// Converts a simulated duration to milliseconds.
inline constexpr double to_ms(SimDuration d) {
  return static_cast<double>(d) * 1e-6;
}

/// Bandwidth expressed as MiB/s given bytes moved over a simulated duration.
inline constexpr double mib_per_s(std::uint64_t bytes, SimDuration d) {
  if (d == 0) return 0.0;
  return (static_cast<double>(bytes) / (1024.0 * 1024.0)) / to_seconds(d);
}

/// Time to move `bytes` at `mib_s` MiB/s, rounded up to whole nanoseconds.
inline constexpr SimDuration transfer_time(std::uint64_t bytes, double mib_s) {
  if (mib_s <= 0.0) return 0;
  const double secs =
      static_cast<double>(bytes) / (mib_s * 1024.0 * 1024.0);
  return static_cast<SimDuration>(secs * 1e9 + 0.999999);
}

}  // namespace dacc
