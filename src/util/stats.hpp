// Small statistics helpers used by benchmarks and the resource manager's
// utilization accounting.
#pragma once

#include <cstddef>
#include <vector>

namespace dacc::util {

/// Streaming mean / variance / min / max (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Returns the p-th percentile (0..100) of `values` by linear interpolation.
/// The input is copied and sorted; empty input yields 0.
double percentile(std::vector<double> values, double p);

}  // namespace dacc::util
