// Message / memory payloads.
//
// dacc runs in two modes that share every code path above the byte level:
//
//  * backed  — the buffer owns real bytes; kernels and copies operate on
//              them, so tests can verify numerics end-to-end.
//  * phantom — the buffer records only a size; transfers and kernels charge
//              the same simulated time but move no data. Benchmarks use this
//              to run paper-scale problem sizes (tens of GiB of traffic)
//              without the memory or wall-clock cost.
//
// A phantom buffer is infectious: slicing or concatenating phantom data
// yields phantom data. Mixing is an error caught at the point of use.
//
// Storage model: a backed buffer is an (offset, size) range over a
// shared, refcounted byte store. Copies and slice() remain deep copies —
// value semantics, exactly as before — but view() produces a zero-copy
// alias of a range, which is what the transfer path uses to fan a payload
// out into blocks without duplicating it. Mutable access unshares first
// (clone-on-write), so no write can ever be observed through an alias.
// Stores recycle their bytes through a global BufferPool, so the
// steady-state message path performs no large allocations.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace dacc::util {

/// Size-bucketed recycler for payload byte storage. Buffers return their
/// backing vectors here when the last reference drops; acquire() serves the
/// next payload of similar size from the cache instead of the allocator.
/// The pool is process-global and the parallel simulation backend touches
/// it from several shard workers at once, so access is mutex-protected
/// (uncontended in the sequential backends).
class BufferPool {
 public:
  static BufferPool& instance();

  /// A vector of exactly `size` bytes. When `zeroed`, contents are all
  /// zero; otherwise recycled bytes may be stale (callers that overwrite
  /// the whole range skip the memset).
  std::vector<std::byte> acquire(std::uint64_t size, bool zeroed = true);

  /// Returns storage to the pool (no-op for tiny or empty vectors).
  void release(std::vector<std::byte>&& bytes);

  struct Stats {
    std::uint64_t hits = 0;      ///< acquires served from the cache
    std::uint64_t misses = 0;    ///< acquires that hit the allocator
    std::uint64_t recycled = 0;  ///< vectors accepted by release()
  };
  Stats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

  /// Drops all cached storage (tests use this to isolate measurements).
  void trim();

 private:
  // Bucket b holds vectors with capacity in [2^b, 2^(b+1)), so any vector
  // in bucket ceil(log2(size)) can serve an acquire of `size`.
  static constexpr std::size_t kMinBytes = 256;  // below this, malloc wins
  static constexpr std::size_t kMaxPerBucket = 16;
  static constexpr int kBuckets = 40;

  static int bucket_for_acquire(std::uint64_t size) {
    return std::bit_width(std::max<std::uint64_t>(size, 1) - 1);
  }
  static int bucket_for_release(std::uint64_t capacity) {
    return std::bit_width(capacity) - 1;
  }

  mutable std::mutex mutex_;
  std::array<std::vector<std::vector<std::byte>>, kBuckets> buckets_;
  Stats stats_;
};

class Buffer {
 public:
  Buffer() = default;

  // Deep value semantics on copy (as the vector-based buffer had); aliasing
  // is only ever created explicitly via view().
  Buffer(const Buffer& other) { *this = other; }
  Buffer& operator=(const Buffer& other);
  Buffer(Buffer&& other) noexcept { *this = std::move(other); }
  Buffer& operator=(Buffer&& other) noexcept {
    size_ = std::exchange(other.size_, 0);
    is_backed_ = std::exchange(other.is_backed_, true);
    offset_ = std::exchange(other.offset_, 0);
    store_ = std::move(other.store_);
    return *this;
  }
  ~Buffer() = default;

  /// A buffer owning real bytes.
  static Buffer backed(std::vector<std::byte> bytes);

  /// A zero-initialized backed buffer of `size` bytes (pooled storage).
  static Buffer backed_zero(std::uint64_t size);

  /// A backed buffer copied from a raw span (pooled storage).
  static Buffer backed_copy(std::span<const std::byte> src);

  /// A size-only buffer (no storage).
  static Buffer phantom(std::uint64_t size) {
    Buffer b;
    b.size_ = size;
    b.is_backed_ = false;
    return b;
  }

  /// A backed buffer viewing a typed object array (copies the bytes).
  template <typename T>
  static Buffer of(std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    return backed_copy(std::as_bytes(values));
  }

  std::uint64_t size() const { return size_; }
  bool is_backed() const { return is_backed_; }
  bool empty() const { return size_ == 0; }

  std::span<const std::byte> bytes() const {
    require_backed();
    if (store_ == nullptr) return {};
    return std::span<const std::byte>(store_->bytes)
        .subspan(offset_, size_);
  }

  /// Mutable access unshares first: writes are never visible through views.
  std::span<std::byte> mutable_bytes() {
    require_backed();
    if (store_ == nullptr) return {};
    unshare();
    return std::span<std::byte>(store_->bytes).subspan(offset_, size_);
  }

  /// Typed view of the contents (size must be a multiple of sizeof(T)).
  template <typename T>
  std::span<const T> as() const {
    static_assert(std::is_trivially_copyable_v<T>);
    require_element_multiple(sizeof(T));
    const auto b = bytes();
    return {reinterpret_cast<const T*>(b.data()), size_ / sizeof(T)};
  }
  template <typename T>
  std::span<T> as_mutable() {
    static_assert(std::is_trivially_copyable_v<T>);
    require_element_multiple(sizeof(T));
    const auto b = mutable_bytes();
    return {reinterpret_cast<T*>(b.data()), size_ / sizeof(T)};
  }

  /// Copy-out of a byte range [offset, offset+len). Phantom buffers yield
  /// phantom slices.
  Buffer slice(std::uint64_t offset, std::uint64_t len) const {
    check_range(offset, len, "Buffer::slice");
    if (!is_backed_) return phantom(len);
    return backed_copy(bytes().subspan(offset, len));
  }

  /// Zero-copy alias of a byte range: shares the store, copies nothing.
  /// Used on the transfer fast path to carve a payload into blocks. Safe to
  /// hand out freely — any mutable access (on either side) unshares first.
  Buffer view(std::uint64_t offset, std::uint64_t len) const {
    check_range(offset, len, "Buffer::view");
    if (!is_backed_) return phantom(len);
    Buffer b;
    b.size_ = len;
    b.offset_ = offset_ + offset;
    b.store_ = store_;
    return b;
  }
  Buffer view() const { return view(0, size_); }

  /// True if this buffer aliases storage with other holders (diagnostics).
  bool is_shared() const { return store_ != nullptr && store_.use_count() > 1; }

  /// Overwrites [offset, offset+src.size()) with the contents of `src`.
  /// If either side is phantom, only sizes are checked.
  void write_at(std::uint64_t offset, const Buffer& src) {
    if (offset + src.size() > size_) {
      throw std::out_of_range("Buffer::write_at out of range");
    }
    if (!is_backed_ || !src.is_backed_ || src.size() == 0) return;
    unshare();
    // After unshare() our bytes are private, so overlap with `src` is gone.
    std::memcpy(store_->bytes.data() + offset_ + offset, src.bytes().data(),
                src.size());
  }

 private:
  struct Store {
    explicit Store(std::vector<std::byte> b) : bytes(std::move(b)) {}
    ~Store() { BufferPool::instance().release(std::move(bytes)); }
    Store(const Store&) = delete;
    Store& operator=(const Store&) = delete;
    std::vector<std::byte> bytes;
  };

  void require_backed() const {
    if (!is_backed_) {
      throw std::logic_error("Buffer: byte access on phantom buffer");
    }
  }
  void require_element_multiple(std::size_t elem) const {
    require_backed();
    if (size_ % elem != 0) {
      throw std::logic_error("Buffer::as: size not a multiple of element");
    }
  }
  void check_range(std::uint64_t offset, std::uint64_t len,
                   const char* what) const {
    if (offset + len > size_) {
      throw std::out_of_range(std::string(what) + " out of range");
    }
  }

  /// Clones the viewed range into a private store if anyone else holds it.
  void unshare();

  std::uint64_t size_ = 0;
  bool is_backed_ = true;  // default: empty backed buffer
  std::uint64_t offset_ = 0;
  std::shared_ptr<Store> store_;
};

}  // namespace dacc::util
