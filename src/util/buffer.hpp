// Message / memory payloads.
//
// dacc runs in two modes that share every code path above the byte level:
//
//  * backed  — the buffer owns real bytes; kernels and copies operate on
//              them, so tests can verify numerics end-to-end.
//  * phantom — the buffer records only a size; transfers and kernels charge
//              the same simulated time but move no data. Benchmarks use this
//              to run paper-scale problem sizes (tens of GiB of traffic)
//              without the memory or wall-clock cost.
//
// A phantom buffer is infectious: slicing or concatenating phantom data
// yields phantom data. Mixing is an error caught at the point of use.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <vector>

namespace dacc::util {

class Buffer {
 public:
  Buffer() = default;

  /// A buffer owning real bytes.
  static Buffer backed(std::vector<std::byte> bytes) {
    Buffer b;
    b.size_ = bytes.size();
    b.bytes_ = std::move(bytes);
    b.is_backed_ = true;
    return b;
  }

  /// A zero-initialized backed buffer of `size` bytes.
  static Buffer backed_zero(std::uint64_t size) {
    return backed(std::vector<std::byte>(size));
  }

  /// A backed buffer copied from a raw span.
  static Buffer backed_copy(std::span<const std::byte> src) {
    return backed(std::vector<std::byte>(src.begin(), src.end()));
  }

  /// A size-only buffer (no storage).
  static Buffer phantom(std::uint64_t size) {
    Buffer b;
    b.size_ = size;
    b.is_backed_ = false;
    return b;
  }

  /// A backed buffer viewing a typed object array (copies the bytes).
  template <typename T>
  static Buffer of(std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    return backed_copy(std::as_bytes(values));
  }

  std::uint64_t size() const { return size_; }
  bool is_backed() const { return is_backed_; }
  bool empty() const { return size_ == 0; }

  std::span<const std::byte> bytes() const {
    require_backed();
    return bytes_;
  }
  std::span<std::byte> mutable_bytes() {
    require_backed();
    return bytes_;
  }

  /// Typed view of the contents (size must be a multiple of sizeof(T)).
  template <typename T>
  std::span<const T> as() const {
    static_assert(std::is_trivially_copyable_v<T>);
    require_backed();
    if (size_ % sizeof(T) != 0) {
      throw std::logic_error("Buffer::as: size not a multiple of element");
    }
    return {reinterpret_cast<const T*>(bytes_.data()), size_ / sizeof(T)};
  }
  template <typename T>
  std::span<T> as_mutable() {
    static_assert(std::is_trivially_copyable_v<T>);
    require_backed();
    if (size_ % sizeof(T) != 0) {
      throw std::logic_error("Buffer::as: size not a multiple of element");
    }
    return {reinterpret_cast<T*>(bytes_.data()), size_ / sizeof(T)};
  }

  /// Copy-out of a byte range [offset, offset+len). Phantom buffers yield
  /// phantom slices.
  Buffer slice(std::uint64_t offset, std::uint64_t len) const {
    if (offset + len > size_) {
      throw std::out_of_range("Buffer::slice out of range");
    }
    if (!is_backed_) return phantom(len);
    return backed_copy(std::span(bytes_).subspan(offset, len));
  }

  /// Overwrites [offset, offset+src.size()) with the contents of `src`.
  /// If either side is phantom, only sizes are checked.
  void write_at(std::uint64_t offset, const Buffer& src) {
    if (offset + src.size() > size_) {
      throw std::out_of_range("Buffer::write_at out of range");
    }
    if (!is_backed_ || !src.is_backed_) return;
    std::memcpy(bytes_.data() + offset, src.bytes_.data(), src.size());
  }

 private:
  void require_backed() const {
    if (!is_backed_) {
      throw std::logic_error("Buffer: byte access on phantom buffer");
    }
  }

  std::uint64_t size_ = 0;
  bool is_backed_ = true;  // default: empty backed buffer
  std::vector<std::byte> bytes_;
};

}  // namespace dacc::util
