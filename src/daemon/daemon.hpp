// Back-end daemon: the service that runs on every accelerator node
// (paper Figure 4). It receives middleware requests over dmpi, executes them
// on the local (simulated) GPU through the driver facade, and sends
// responses back — the "two MPI messages per request" protocol of
// Section IV. Bulk copies use the naive or pipeline transfer engine chosen
// by the client per request.
#pragma once

#include <cstdint>

#include "dmpi/mpi.hpp"
#include "gpu/device.hpp"
#include "obs/metrics.hpp"
#include "proto/wire.hpp"
#include "rpc/channel.hpp"

namespace dacc::daemon {

class Daemon {
 public:
  Daemon(gpu::Device& device, dmpi::World& world, dmpi::Rank self_world_rank,
         proto::ProtoParams params = {});

  /// Service loop: runs until a kShutdown request arrives. Must be invoked
  /// as the body of the accelerator node's sim process.
  void run(sim::Context& ctx);

  std::uint64_t requests_served() const { return requests_served_; }
  /// Frames rejected because they failed to decode (fuzzed/corrupted wire).
  std::uint64_t malformed_requests() const { return malformed_requests_; }
  gpu::Device& device() { return device_; }
  dmpi::Rank rank() const { return self_; }

 private:
  void handle_mem_alloc(rpc::ServerChannel& ch, dmpi::Rank client,
                        int reply_tag, proto::WireReader& req);
  void handle_mem_free(rpc::ServerChannel& ch, dmpi::Rank client,
                       int reply_tag, proto::WireReader& req);
  void handle_htod(rpc::ServerChannel& ch, sim::Context& ctx,
                   dmpi::Rank client, int reply_tag, proto::WireReader& req);
  void handle_dtoh(rpc::ServerChannel& ch, sim::Context& ctx,
                   dmpi::Rank client, int reply_tag, proto::WireReader& req);
  void handle_kernel_create(rpc::ServerChannel& ch, dmpi::Rank client,
                            int reply_tag, proto::WireReader& req);
  void handle_kernel_run(rpc::ServerChannel& ch, dmpi::Rank client,
                         int reply_tag, proto::WireReader& req);
  void handle_device_info(rpc::ServerChannel& ch, dmpi::Rank client,
                          int reply_tag);
  void handle_peer_send(rpc::ServerChannel& ch, sim::Context& ctx,
                        dmpi::Rank client, int reply_tag,
                        proto::WireReader& req);
  /// Executes a kBatch frame: decodes every sub-request before touching the
  /// device (a malformed batch is rejected whole, never partially applied),
  /// runs them in order charging be_dispatch each, replies once. When the
  /// stream is traced, `parent_span` (the client's batch span) parents one
  /// daemon span per sub-op via rpc::batch_sub_span.
  void handle_batch(rpc::ServerChannel& ch, sim::Context& ctx,
                    dmpi::Rank client, int reply_tag, proto::WireReader& req,
                    std::uint64_t parent_span);

  void respond_status(rpc::ServerChannel& ch, dmpi::Rank client,
                      int reply_tag, gpu::Result r);

  /// Serialized host-side cost added to a block's DMA: the GPUDirect v1
  /// shared-page rate penalty, or (without GPUDirect) the staging copy.
  SimDuration copy_extra_busy(std::uint64_t bytes, bool gpudirect,
                              bool h2d) const;

  /// Registers this daemon's metrics against `reg` (idempotent re-bind).
  void bind_metrics(obs::Registry* reg);

  gpu::Device& device_;
  dmpi::World& world_;
  dmpi::Rank self_;
  proto::ProtoParams params_;
  gpu::Stream stream_;  ///< single in-order op stream (CUDA default-stream)
  std::uint64_t requests_served_ = 0;
  std::uint64_t malformed_requests_ = 0;
  std::uint64_t span_seq_ = 0;  ///< per-request trace span ids

  // Metrics (lazy-bound, no-op handles when no registry is attached).
  obs::Registry* metrics_bound_ = nullptr;
  obs::Counter m_requests_;
  obs::Counter m_malformed_;
  obs::Counter m_busy_ns_;
  obs::Histogram m_h2d_overlap_pct_;
};

}  // namespace dacc::daemon
