#include "daemon/daemon.hpp"

#include <algorithm>
#include <vector>

#include "obs/flight.hpp"
#include "proto/transfer.hpp"
#include "rpc/batch.hpp"
#include "sim/trace.hpp"

namespace dacc::daemon {

using gpu::Result;
using proto::kDataTag;
using proto::kResponseTag;
using proto::Op;
using proto::TransferConfig;
using proto::WireReader;
using proto::WireWriter;

Daemon::Daemon(gpu::Device& device, dmpi::World& world,
               dmpi::Rank self_world_rank, proto::ProtoParams params)
    : device_(device),
      world_(world),
      self_(self_world_rank),
      params_(params),
      stream_(device) {}

SimDuration Daemon::copy_extra_busy(std::uint64_t bytes, bool gpudirect,
                                    bool h2d) const {
  if (!gpudirect) {
    // Staging copy through ordinary pinned memory, serialized with the DMA.
    return transfer_time(bytes, params_.staging_copy_mib_s);
  }
  // GPUDirect v1 shared pages DMA more slowly than the plain pinned path;
  // charge the rate difference on top of the device's pinned model.
  const double pinned = h2d ? device_.params().h2d_pinned_mib_s
                            : device_.params().d2h_pinned_mib_s;
  const SimDuration gd = transfer_time(bytes, params_.gpudirect_dma_mib_s);
  const SimDuration base = transfer_time(bytes, pinned);
  return gd > base ? gd - base : 0;
}

void Daemon::respond_status(rpc::ServerChannel& ch, dmpi::Rank client,
                            int reply_tag, gpu::Result r) {
  ch.reply(client, reply_tag, WireWriter{}.result(r).finish());
}

void Daemon::bind_metrics(obs::Registry* reg) {
  const std::string rank = "{rank=\"" + std::to_string(self_) + "\"}";
  m_requests_ = reg->counter("dacc_daemon_requests_total" + rank);
  m_malformed_ = reg->counter("dacc_daemon_malformed_total" + rank);
  m_busy_ns_ = reg->counter("dacc_daemon_busy_ns_total" + rank);
  m_h2d_overlap_pct_ = reg->histogram(
      "dacc_daemon_h2d_overlap_pct" + rank, {10, 25, 50, 75, 90, 100});
  metrics_bound_ = reg;
}

void Daemon::run(sim::Context& ctx) {
  dmpi::Mpi mpi(world_, ctx, self_);
  rpc::ServerChannel channel(mpi, world_.world_comm(),
                             rpc::ServerChannel::Options{});
  const std::string track = "daemon-r" + std::to_string(self_);
  for (;;) {
    dmpi::Rank source = -1;
    util::Buffer msg = channel.raw(&source);
    const SimTime begin = ctx.now();
    obs::Registry* const reg = world_.engine().metrics();
    if (reg != nullptr && metrics_bound_ != reg) bind_metrics(reg);
    const SimDuration busy_before =
        reg != nullptr ? device_.copy_busy() + device_.compute_busy() : 0;
    ctx.wait_for(params_.be_dispatch);
    ++requests_served_;
    if (reg != nullptr) m_requests_.add();
    // A frame whose header fails to decode (truncated, or reply tag out of
    // range) cannot even be answered — count it and stay alive.
    Op op{};
    std::uint64_t span_id = 0;
    std::uint64_t trace_id = 0;
    std::uint64_t parent_span = 0;
    bool shutdown = false;
    try {
      rpc::Inbound in = channel.decode(source, std::move(msg));
      op = in.op<Op>();
      trace_id = in.trace_id;
      parent_span = in.parent_span;
      // Execute the request under the client's trace so the NIC spans of
      // the reply (and of any daemon-to-daemon leg) chain to this span.
      if (in.traced()) {
        span_id = (std::uint64_t{2} << 56) |
                  (static_cast<std::uint64_t>(self_) << 24) | ++span_seq_;
        world_.engine().set_current_trace({trace_id, span_id});
      }
      try {
        switch (op) {
          case Op::kMemAlloc:
            handle_mem_alloc(channel, in.source, in.reply_tag, in.body);
            break;
          case Op::kMemFree:
            handle_mem_free(channel, in.source, in.reply_tag, in.body);
            break;
          case Op::kMemcpyHtoD:
          case Op::kPeerPut:  // peer puts are H2D copies fed by a peer daemon
            handle_htod(channel, ctx, in.source, in.reply_tag, in.body);
            break;
          case Op::kMemcpyDtoH:
            handle_dtoh(channel, ctx, in.source, in.reply_tag, in.body);
            break;
          case Op::kKernelCreate:
            handle_kernel_create(channel, in.source, in.reply_tag, in.body);
            break;
          case Op::kKernelRun:
            handle_kernel_run(channel, in.source, in.reply_tag, in.body);
            break;
          case Op::kDeviceInfo:
            handle_device_info(channel, in.source, in.reply_tag);
            break;
          case Op::kPeerSend:
            handle_peer_send(channel, ctx, in.source, in.reply_tag, in.body);
            break;
          case Op::kBatch:
            handle_batch(channel, ctx, in.source, in.reply_tag, in.body,
                         parent_span);
            break;
          case Op::kShutdown:
            respond_status(channel, in.source, in.reply_tag, Result::kSuccess);
            shutdown = true;
            break;
          default:
            ++malformed_requests_;
            respond_status(channel, in.source, in.reply_tag,
                           Result::kInvalidValue);
            break;
        }
      } catch (const proto::WireError&) {
        // Handlers decode their full payload before sending anything, so a
        // decode failure here has produced no partial reply yet.
        ++malformed_requests_;
        if (reg != nullptr) m_malformed_.add();
        if (obs::FlightRecorder* fr = world_.engine().flight()) {
          fr->note(ctx.now(), "daemon",
                   "wire-error: malformed " + std::string(proto::to_string(op)) +
                       " payload from r" + std::to_string(source),
                   trace_id);
        }
        respond_status(channel, in.source, in.reply_tag,
                       Result::kInvalidValue);
      }
    } catch (const proto::WireError&) {
      ++malformed_requests_;
      if (reg != nullptr) m_malformed_.add();
      if (obs::FlightRecorder* fr = world_.engine().flight()) {
        fr->note(ctx.now(), "daemon",
                 "wire-error: undecodable frame header from r" +
                     std::to_string(source));
      }
      continue;
    }
    if (trace_id != 0) world_.engine().set_current_trace({});
    if (sim::Tracer* tracer = world_.engine().tracer()) {
      tracer->record(track, proto::to_string(op), begin, ctx.now(), trace_id,
                     span_id, parent_span);
    }
    if (reg != nullptr) {
      const SimDuration busy =
          device_.copy_busy() + device_.compute_busy() - busy_before;
      m_busy_ns_.add(static_cast<std::uint64_t>(busy));
      if (op == Op::kMemcpyHtoD || op == Op::kPeerPut) {
        const SimDuration elapsed = ctx.now() - begin;
        // Overlap ratio: share of the request's wall time the copy engine
        // was busy — 100 means the network receive fully hid behind DMA.
        const std::uint64_t pct =
            elapsed > 0 ? std::min<std::uint64_t>(
                              100, static_cast<std::uint64_t>(busy) * 100 /
                                       static_cast<std::uint64_t>(elapsed))
                        : 0;
        m_h2d_overlap_pct_.observe(pct);
      }
    }
    if (shutdown) return;
  }
}

void Daemon::handle_mem_alloc(rpc::ServerChannel& ch, dmpi::Rank client,
                              int reply_tag, WireReader& req) {
  const std::uint64_t bytes = req.u64();
  gpu::DevPtr ptr = gpu::kNullDevPtr;
  const Result r = device_.mem_alloc(bytes, &ptr);
  ch.reply(client, reply_tag, WireWriter{}.result(r).u64(ptr).finish());
}

void Daemon::handle_mem_free(rpc::ServerChannel& ch, dmpi::Rank client,
                             int reply_tag, WireReader& req) {
  const gpu::DevPtr ptr = req.u64();
  respond_status(ch, client, reply_tag, device_.mem_free(ptr));
}

void Daemon::handle_htod(rpc::ServerChannel& ch, sim::Context& ctx,
                         dmpi::Rank client, int reply_tag, WireReader& req) {
  const gpu::DevPtr dst = req.u64();
  const std::uint64_t bytes = req.u64();
  const TransferConfig config = req.transfer_config();

  Result fail = Result::kSuccess;
  proto::recv_blocks(
      ch.mpi(), ch.comm(), client, bytes, config,
      [&](std::uint64_t offset, util::Buffer block) {
        // Without GPUDirect the receive buffer is not GPU-registered: each
        // block pays a host staging copy that serializes with its DMA (both
        // traverse host memory). With GPUDirect v1 the pinned pages are
        // shared but DMA through them runs below the plain pinned rate
        // (paper Section IV); both effects land in extra_busy.
        const gpu::OpHandle op = device_.memcpy_htod_async(
            stream_, dst + offset, block, gpu::HostMemType::kPinned,
            ctx.now(),
            copy_extra_busy(block.size(), config.gpudirect, /*h2d=*/true));
        if (!op.ok() && fail == Result::kSuccess) fail = op.status;
      },
      reply_tag + 1);
  // Drain the DMA chain before acknowledging.
  ctx.wait_until(stream_.ready_at());
  respond_status(ch, client, reply_tag, fail);
}

void Daemon::handle_dtoh(rpc::ServerChannel& ch, sim::Context& ctx,
                         dmpi::Rank client, int reply_tag, WireReader& req) {
  const gpu::DevPtr src = req.u64();
  const std::uint64_t bytes = req.u64();
  const TransferConfig config = req.transfer_config();
  dmpi::Mpi& mpi = ch.mpi();

  // Validate up front so the client learns about errors before it starts
  // waiting for data blocks.
  if (device_.broken() || !device_.valid_range(src, bytes)) {
    respond_status(ch, client, reply_tag,
                   device_.broken() ? Result::kEccError
                                    : Result::kInvalidValue);
    return;
  }
  respond_status(ch, client, reply_tag, Result::kSuccess);

  const proto::BlockPlan plan(bytes, config);
  Result fail = Result::kSuccess;
  std::vector<dmpi::Request> sends;
  sends.reserve(plan.count());
  for (std::size_t i = 0; i < plan.count(); ++i) {
    util::Buffer block;
    const gpu::OpHandle op = device_.memcpy_dtoh_async(
        stream_, src + plan.offset(i), plan.size(i),
        gpu::HostMemType::kPinned, ctx.now(), &block,
        copy_extra_busy(plan.size(i), config.gpudirect, /*h2d=*/false));
    if (!op.ok()) {
      // Keep the wire protocol intact: ship a zero block and report at the
      // end (a device may break mid-transfer under fault injection).
      if (fail == Result::kSuccess) fail = op.status;
      block = util::Buffer::phantom(plan.size(i));
    } else {
      ctx.wait_until(op.done_at);
    }
    sends.push_back(
        mpi.isend(ch.comm(), client, reply_tag + 1, std::move(block)));
  }
  mpi.wait_all(sends);
  respond_status(ch, client, reply_tag, fail);
}

void Daemon::handle_kernel_create(rpc::ServerChannel& ch, dmpi::Rank client,
                                  int reply_tag, WireReader& req) {
  const std::string name = req.str();
  const Result r = device_.broken() ? Result::kEccError
                  : device_.registry().contains(name) ? Result::kSuccess
                                                      : Result::kNotFound;
  respond_status(ch, client, reply_tag, r);
}

void Daemon::handle_kernel_run(rpc::ServerChannel& ch, dmpi::Rank client,
                               int reply_tag, WireReader& req) {
  const std::string name = req.str();
  const gpu::LaunchConfig config = req.launch_config();
  const gpu::KernelArgs args = req.kernel_args();
  // Kernel launches are asynchronous (CUDA semantics): the response carries
  // the issue status; the stream carries the execution cost, and later
  // operations on this daemon's stream order behind it.
  const gpu::OpHandle op = device_.launch_async(stream_, name, config, args,
                                                ch.mpi().context().now());
  respond_status(ch, client, reply_tag, op.status);
}

void Daemon::handle_device_info(rpc::ServerChannel& ch, dmpi::Rank client,
                                int reply_tag) {
  ch.reply(client, reply_tag,
           WireWriter{}
               .result(device_.broken() ? Result::kEccError : Result::kSuccess)
               .str(device_.params().name)
               .u64(device_.params().memory_bytes)
               .u64(device_.memory_free())
               .finish());
}

void Daemon::handle_peer_send(rpc::ServerChannel& ch, sim::Context& ctx,
                              dmpi::Rank client, int reply_tag,
                              WireReader& req) {
  const gpu::DevPtr src = req.u64();
  const std::uint64_t bytes = req.u64();
  const auto peer = static_cast<dmpi::Rank>(req.u64());
  const gpu::DevPtr peer_dst = req.u64();
  const TransferConfig config = req.transfer_config();
  dmpi::Mpi& mpi = ch.mpi();

  if (device_.broken() || !device_.valid_range(src, bytes)) {
    respond_status(ch, client, reply_tag,
                   device_.broken() ? Result::kEccError
                                    : Result::kInvalidValue);
    return;
  }

  // Head of the daemon-to-daemon leg: the peer executes it as an H2D copy
  // whose payload we stream directly from our device — the compute node is
  // not involved, which is the point of the paper's accelerator-to-
  // accelerator transfer claim (Section III.C). The fixed legacy tag pair
  // is fine here: the leg is source-disambiguated daemon-to-daemon traffic.
  rpc::Channel peer_ch(mpi, ch.comm(), peer, rpc::Channel::Options{});
  dmpi::Request verdict = peer_ch.post_reply(kResponseTag);
  peer_ch.send_request(peer_ch.request(Op::kPeerPut, kResponseTag)
                           .u64(peer_dst)
                           .u64(bytes)
                           .transfer_config(config)
                           .finish());

  const proto::BlockPlan plan(bytes, config);
  std::vector<dmpi::Request> sends;
  sends.reserve(plan.count());
  for (std::size_t i = 0; i < plan.count(); ++i) {
    util::Buffer block;
    const gpu::OpHandle op = device_.memcpy_dtoh_async(
        stream_, src + plan.offset(i), plan.size(i),
        gpu::HostMemType::kPinned, ctx.now(), &block);
    if (!op.ok()) block = util::Buffer::phantom(plan.size(i));
    if (op.ok()) ctx.wait_until(op.done_at);
    sends.push_back(mpi.isend(ch.comm(), peer, kDataTag, std::move(block)));
  }
  mpi.wait_all(sends);

  // The peer acknowledges the put to us; relay the verdict to the client.
  (void)peer_ch.finish(verdict);
  respond_status(ch, client, reply_tag,
                 WireReader(verdict.take_payload()).result());
}

void Daemon::handle_batch(rpc::ServerChannel& ch, sim::Context& ctx,
                          dmpi::Rank client, int reply_tag, WireReader& req,
                          std::uint64_t parent_span) {
  // Decode everything before executing anything: a malformed batch throws
  // out of here with the device untouched and run() answers with a single
  // kInvalidValue status — no partial execution, no partial reply.
  const std::vector<rpc::BatchItem> items = rpc::decode_batch(req);
  std::vector<rpc::BatchResult> results;
  results.reserve(items.size());
  sim::Tracer* const tracer = world_.engine().tracer();
  const std::uint64_t trace_id = world_.engine().current_trace().trace_id;
  const std::string track = "daemon-r" + std::to_string(self_);
  bool first = true;
  for (const rpc::BatchItem& item : items) {
    // Each sub-request pays the same dispatch cost as a standalone frame —
    // batching saves messages, not daemon CPU. run() charged the first one.
    if (!first) ctx.wait_for(params_.be_dispatch);
    first = false;
    const SimTime item_begin = ctx.now();
    rpc::BatchResult out;
    switch (item.op) {
      case Op::kMemAlloc: {
        gpu::DevPtr ptr = gpu::kNullDevPtr;
        out.status = device_.mem_alloc(item.arg, &ptr);
        out.ptr = ptr;
        break;
      }
      case Op::kMemFree:
        out.status = device_.mem_free(item.arg);
        break;
      case Op::kKernelCreate:
        out.status = device_.broken() ? Result::kEccError
                     : device_.registry().contains(item.kernel)
                         ? Result::kSuccess
                         : Result::kNotFound;
        break;
      case Op::kKernelRun:
        out.status = device_
                         .launch_async(stream_, item.kernel, item.launch,
                                       item.args, ctx.now())
                         .status;
        break;
      default:
        out.status = Result::kInvalidValue;  // unreachable: decode validated
        break;
    }
    // One daemon span per sub-op, parented on the front-end's derived child
    // span so viewers stitch each small op through the batch frame.
    if (tracer != nullptr && parent_span != 0) {
      const std::uint64_t span = (std::uint64_t{2} << 56) |
                                 (static_cast<std::uint64_t>(self_) << 24) |
                                 ++span_seq_;
      const auto index =
          static_cast<std::uint32_t>(&item - items.data());
      tracer->record(track, proto::to_string(item.op), item_begin, ctx.now(),
                     trace_id, span,
                     rpc::batch_sub_span(parent_span, index));
    }
    results.push_back(out);
  }
  // Sub-requests count like the standalone frames they replace (run()
  // already counted the batch frame as one).
  requests_served_ += items.size() - 1;
  m_requests_.add(items.size() - 1);
  ch.reply(client, reply_tag, rpc::encode_batch_reply(results));
}

}  // namespace dacc::daemon
