#include "mdsim/mp2c.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "mdsim/solutes.hpp"
#include "mdsim/srd.hpp"
#include "util/rng.hpp"

namespace dacc::mdsim {

namespace {

constexpr int kTagMigrateLeft = 501;
constexpr int kTagMigrateRight = 502;
constexpr int kTagCollLeft = 503;
constexpr int kTagCollRight = 504;

struct Particle {
  double x, y, z, vx, vy, vz;
};
static_assert(std::is_trivially_copyable_v<Particle>);
constexpr std::uint64_t kParticleBytes = sizeof(Particle);

struct Geometry {
  SrdGrid grid;    ///< shift filled per collision step
  double lx, ly, lz;
  double slab_w;   ///< slab width along x
  int ranks;
};

Geometry make_geometry(std::uint64_t total_particles, const SrdParams& srd,
                       int ranks) {
  const double cells =
      static_cast<double>(total_particles) / srd.particles_per_cell;
  const int side = std::max(
      ranks, static_cast<int>(std::llround(std::cbrt(cells))));
  Geometry geo;
  geo.grid.cell = srd.cell_size;
  geo.grid.nc[0] = side;
  geo.grid.nc[1] = side;
  geo.grid.nc[2] = side;
  geo.lx = side * srd.cell_size;
  geo.ly = geo.lx;
  geo.lz = geo.lx;
  geo.ranks = ranks;
  geo.slab_w = geo.lx / ranks;
  if (geo.slab_w < srd.cell_size) {
    throw std::invalid_argument("mp2c: slab narrower than a collision cell");
  }
  return geo;
}

int rank_of_x(double x, const Geometry& geo) {
  double wrapped = std::fmod(x, geo.lx);
  if (wrapped < 0) wrapped += geo.lx;
  return std::min(geo.ranks - 1,
                  static_cast<int>(wrapped / geo.slab_w));
}

double wrap(double x, double l) {
  double w = std::fmod(x, l);
  if (w < 0) w += l;
  return w;
}

/// Sends `out` to `to` and receives the neighbours' batch; returns it.
util::Buffer exchange(dmpi::Mpi& mpi, const dmpi::Comm& comm, int to,
                      int from, int tag, util::Buffer out) {
  dmpi::Request send = mpi.isend(comm, to, tag, std::move(out));
  util::Buffer in = mpi.recv(comm, from, tag);
  mpi.wait(send);
  return in;
}

}  // namespace

void register_mdsim_kernels(gpu::KernelRegistry& registry,
                            const CostParams& costs) {
  // srd_collide(ptr fluid, i64 n_fluid, ptr solutes, i64 n_solutes,
  //             f64 solute_mass, f64 cell, f64 sx, sy, sz,
  //             i64 ncx, ncy, ncz, f64 cos_a, f64 sin_a, i64 seed)
  registry.register_kernel(
      "srd_collide",
      gpu::KernelDef{
          [](gpu::Device& dev, const gpu::LaunchConfig&,
             const gpu::KernelArgs& args) {
            const auto n = static_cast<std::uint64_t>(gpu::arg_i64(args, 1));
            const auto ns = static_cast<std::uint64_t>(gpu::arg_i64(args, 3));
            if (n + ns == 0) return;
            auto data = dev.span_as<double>(gpu::arg_ptr(args, 0), n * 6);
            std::span<double> solutes;
            if (ns > 0) {
              solutes = dev.span_as<double>(gpu::arg_ptr(args, 2), ns * 6);
            }
            SrdGrid grid;
            grid.cell = gpu::arg_f64(args, 5);
            grid.shift[0] = gpu::arg_f64(args, 6);
            grid.shift[1] = gpu::arg_f64(args, 7);
            grid.shift[2] = gpu::arg_f64(args, 8);
            grid.nc[0] = static_cast<int>(gpu::arg_i64(args, 9));
            grid.nc[1] = static_cast<int>(gpu::arg_i64(args, 10));
            grid.nc[2] = static_cast<int>(gpu::arg_i64(args, 11));
            srd_collide_coupled(data, n, solutes, ns, gpu::arg_f64(args, 4),
                                grid, gpu::arg_f64(args, 12),
                                gpu::arg_f64(args, 13),
                                static_cast<std::uint64_t>(
                                    gpu::arg_i64(args, 14)));
          },
          [costs](const gpu::LaunchConfig&, const gpu::KernelArgs& args) {
            const double n = static_cast<double>(gpu::arg_i64(args, 1)) +
                             static_cast<double>(gpu::arg_i64(args, 3));
            return static_cast<SimDuration>(n *
                                            costs.gpu_srd_ns_per_particle);
          }});
}

Mp2cResult run_mp2c(rt::JobContext& job, core::DeviceLink* gpu,
                    std::uint64_t total_particles, const SrdParams& srd,
                    const CostParams& costs, std::uint64_t seed) {
  sim::Context& ctx = job.ctx();
  dmpi::Mpi& mpi = job.mpi();
  const dmpi::Comm& comm = job.job_comm();
  const int me = job.rank();
  const int ranks = job.size();
  const bool functional = job.cluster().config().functional_gpus;
  const Geometry geo = make_geometry(total_particles, srd, ranks);
  const double lo = me * geo.slab_w;
  const double hi = (me + 1) * geo.slab_w;
  const int left = (me - 1 + ranks) % ranks;
  const int right = (me + 1) % ranks;
  const double alpha = srd.alpha_deg * M_PI / 180.0;
  const double cos_a = std::cos(alpha);
  const double sin_a = std::sin(alpha);

  // --- initialize local particles ------------------------------------------
  std::uint64_t n_local =
      total_particles / static_cast<std::uint64_t>(ranks) +
      (static_cast<std::uint64_t>(me) <
               total_particles % static_cast<std::uint64_t>(ranks)
           ? 1
           : 0);
  std::vector<Particle> particles;
  if (functional) {
    util::Rng rng(seed + static_cast<std::uint64_t>(me) * 7919);
    particles.resize(n_local);
    for (Particle& p : particles) {
      p.x = rng.uniform(lo, hi);
      p.y = rng.uniform(0.0, geo.ly);
      p.z = rng.uniform(0.0, geo.lz);
      p.vx = rng.normal();
      p.vy = rng.normal();
      p.vz = rng.normal();
    }
    // Remove the global centre-of-mass drift so the conserved momentum is
    // zero (standard MD initialization).
    double sum[3] = {0, 0, 0};
    for (const Particle& p : particles) {
      sum[0] += p.vx;
      sum[1] += p.vy;
      sum[2] += p.vz;
    }
    double mean[3];
    for (int d = 0; d < 3; ++d) {
      mean[d] = mpi.allreduce_sum(comm, sum[d]) /
                static_cast<double>(total_particles);
    }
    for (Particle& p : particles) {
      p.vx -= mean[0];
      p.vy -= mean[1];
      p.vz -= mean[2];
    }
  }

  // MD solutes (the coupled multi-scale half of MP2C).
  std::unique_ptr<SoluteSystem> solutes;
  std::uint64_t n_solutes = srd.solutes.count / static_cast<std::uint64_t>(ranks);
  if (functional && srd.solutes.count > 0) {
    solutes = std::make_unique<SoluteSystem>(srd.solutes, me, ranks, lo, hi,
                                             geo.lx, geo.ly, geo.lz,
                                             seed ^ 0x50107eull);
    n_solutes = solutes->size();
  }

  // Device buffers with headroom for load imbalance.
  gpu::DevPtr d_data = gpu::kNullDevPtr;
  gpu::DevPtr d_solutes = gpu::kNullDevPtr;
  const std::uint64_t capacity = n_local + n_local / 2 + 1024;
  const std::uint64_t solute_capacity = 2 * n_solutes + 64;
  if (gpu != nullptr) {
    d_data = gpu->alloc(capacity * kParticleBytes);
    if (srd.solutes.count > 0) {
      d_solutes = gpu->alloc(solute_capacity * kParticleBytes);
    }
  }

  util::Rng shift_rng(seed ^ 0xabcdef);  // same stream on every rank

  Mp2cResult result;
  const SimTime t0 = ctx.now();

  for (int step = 1; step <= srd.steps; ++step) {
    // 1. MD / streaming step on the CPU.
    ctx.wait_for(static_cast<SimDuration>(
        static_cast<double>(n_local) * costs.cpu_md_ns_per_particle));
    if (functional) {
      for (Particle& p : particles) {
        p.x = wrap(p.x + p.vx * srd.dt, geo.lx);
        p.y = wrap(p.y + p.vy * srd.dt, geo.ly);
        p.z = wrap(p.z + p.vz * srd.dt, geo.lz);
      }
    }

    // 1b. MD solutes: velocity Verlet with LJ forces (+ ghost exchange).
    if (srd.solutes.count > 0) {
      ctx.wait_for(static_cast<SimDuration>(
          static_cast<double>(n_solutes) * costs.cpu_lj_ns_per_solute));
      if (solutes) {
        solutes->verlet_step(mpi, comm, srd.dt);
        n_solutes = solutes->size();
      }
    }

    // 2. Migration of particles that left the slab.
    if (ranks > 1) {
      ctx.wait_for(static_cast<SimDuration>(
          static_cast<double>(n_local) * costs.cpu_sort_ns_per_particle));
      util::Buffer to_left;
      util::Buffer to_right;
      if (functional) {
        std::vector<Particle> l, r, stay;
        stay.reserve(particles.size());
        for (const Particle& p : particles) {
          const int owner = rank_of_x(p.x, geo);
          if (owner == me) {
            stay.push_back(p);
          } else if (owner == left) {
            l.push_back(p);
          } else if (owner == right) {
            r.push_back(p);
          } else {
            throw std::runtime_error("mp2c: particle crossed a whole slab");
          }
        }
        result.migrated_out += l.size() + r.size();
        particles = std::move(stay);
        to_left = util::Buffer::of<Particle>(std::span<const Particle>(l));
        to_right = util::Buffer::of<Particle>(std::span<const Particle>(r));
      } else {
        const auto est = static_cast<std::uint64_t>(
            static_cast<double>(n_local) * costs.migration_fraction / 2.0);
        to_left = util::Buffer::phantom(est * kParticleBytes);
        to_right = util::Buffer::phantom(est * kParticleBytes);
      }
      util::Buffer from_right = exchange(mpi, comm, left, right,
                                         kTagMigrateLeft, std::move(to_left));
      util::Buffer from_left = exchange(mpi, comm, right, left,
                                        kTagMigrateRight, std::move(to_right));
      if (functional) {
        for (const util::Buffer* in : {&from_right, &from_left}) {
          for (const Particle& p : in->as<Particle>()) {
            particles.push_back(p);
          }
        }
        n_local = particles.size();
      }
    }

    // 3. SRD collision every srd_every-th step.
    if (step % srd.srd_every != 0) continue;
    ++result.srd_steps;

    SrdGrid grid = geo.grid;
    for (double& s : grid.shift) {
      s = shift_rng.uniform(0.0, grid.cell);
    }

    // 3a. Re-assign boundary-band particles to the rank owning their
    //     shifted collision cell (the cross-rank cell consistency step).
    if (ranks > 1) {
      util::Buffer to_left;
      util::Buffer to_right;
      if (functional) {
        std::vector<Particle> l, r, stay;
        stay.reserve(particles.size());
        for (const Particle& p : particles) {
          const int owner = rank_of_x(srd_cell_corner_x(p.x, grid), geo);
          if (owner == me) {
            stay.push_back(p);
          } else if (owner == left) {
            l.push_back(p);
          } else if (owner == right) {
            r.push_back(p);
          } else {
            throw std::runtime_error("mp2c: collision cell too far");
          }
        }
        particles = std::move(stay);
        to_left = util::Buffer::of<Particle>(std::span<const Particle>(l));
        to_right = util::Buffer::of<Particle>(std::span<const Particle>(r));
      } else {
        // One cell-wide band moves toward the lower-x neighbour.
        const auto est = static_cast<std::uint64_t>(
            static_cast<double>(n_local) * grid.cell / geo.slab_w);
        to_left = util::Buffer::phantom(est * kParticleBytes);
        to_right = util::Buffer::phantom(0);
      }
      util::Buffer from_right = exchange(mpi, comm, left, right,
                                         kTagCollLeft, std::move(to_left));
      util::Buffer from_left = exchange(mpi, comm, right, left,
                                        kTagCollRight, std::move(to_right));
      if (functional) {
        for (const util::Buffer* in : {&from_right, &from_left}) {
          for (const Particle& p : in->as<Particle>()) {
            particles.push_back(p);
          }
        }
        n_local = particles.size();
      }
    }

    // 3b. Offload the collision (solutes participate, mass-weighted).
    const std::uint64_t bytes = n_local * kParticleBytes;
    const std::uint64_t solute_bytes = n_solutes * kParticleBytes;
    const gpu::KernelArgs args{
        d_data,
        static_cast<std::int64_t>(n_local),
        srd.solutes.count > 0 ? d_solutes : d_data,
        static_cast<std::int64_t>(n_solutes),
        srd.solutes.mass,
        grid.cell,
        grid.shift[0],
        grid.shift[1],
        grid.shift[2],
        std::int64_t{grid.nc[0]},
        std::int64_t{grid.nc[1]},
        std::int64_t{grid.nc[2]},
        cos_a,
        sin_a,
        static_cast<std::int64_t>(seed + static_cast<std::uint64_t>(step))};
    if (gpu != nullptr) {
      if (n_local > capacity || n_solutes > solute_capacity) {
        throw std::runtime_error("mp2c: device buffer overflow");
      }
      util::Buffer up =
          functional ? util::Buffer::of<Particle>(
                           std::span<const Particle>(particles))
                     : util::Buffer::phantom(bytes);
      gpu->h2d(d_data, std::move(up));
      if (srd.solutes.count > 0 && n_solutes > 0) {
        util::Buffer sup =
            solutes ? util::Buffer::of<double>(std::span<const double>(
                          solutes->data().data(), n_solutes * 6))
                    : util::Buffer::phantom(solute_bytes);
        gpu->h2d(d_solutes, std::move(sup));
      }
      gpu->launch("srd_collide", args);
      util::Buffer down = gpu->d2h(d_data, bytes);
      if (functional) {
        auto updated = down.as<Particle>();
        std::copy(updated.begin(), updated.end(), particles.begin());
      }
      if (srd.solutes.count > 0 && n_solutes > 0) {
        util::Buffer sdown = gpu->d2h(d_solutes, solute_bytes);
        if (solutes) {
          auto view = sdown.as<double>();
          std::copy(view.begin(), view.end(), solutes->data().begin());
        }
      }
    } else {
      // CPU fallback: same math, CPU cost.
      ctx.wait_for(static_cast<SimDuration>(
          static_cast<double>(n_local + n_solutes) *
          costs.cpu_md_ns_per_particle));
      if (functional) {
        std::span<double> data(reinterpret_cast<double*>(particles.data()),
                               n_local * 6);
        std::span<double> sol =
            solutes ? std::span<double>(solutes->data().data(),
                                        n_solutes * 6)
                    : std::span<double>{};
        srd_collide_coupled(data, n_local, sol, n_solutes,
                            srd.solutes.mass, grid, cos_a, sin_a,
                            seed + static_cast<std::uint64_t>(step));
      }
    }
  }

  result.elapsed = ctx.now() - t0;
  result.local_particles = n_local;

  result.local_solutes = n_solutes;
  if (functional) {
    double ke = 0.0;
    double mom[3] = {0, 0, 0};
    for (const Particle& p : particles) {
      ke += 0.5 * (p.vx * p.vx + p.vy * p.vy + p.vz * p.vz);
      mom[0] += p.vx;
      mom[1] += p.vy;
      mom[2] += p.vz;
    }
    double smom[3] = {0, 0, 0};
    double ske = 0.0;
    double spot = 0.0;
    if (solutes) {
      solutes->momentum(smom);
      ske = solutes->kinetic_energy();
      spot = solutes->potential_energy();
    }
    result.kinetic_energy = mpi.allreduce_sum(comm, ke + ske);
    result.solute_kinetic = mpi.allreduce_sum(comm, ske);
    result.solute_potential = mpi.allreduce_sum(comm, spot);
    for (int d = 0; d < 3; ++d) {
      result.momentum[static_cast<std::size_t>(d)] =
          mpi.allreduce_sum(comm, mom[d] + smom[d]);
    }
  }

  if (gpu != nullptr) {
    if (d_solutes != gpu::kNullDevPtr) gpu->free(d_solutes);
    gpu->free(d_data);
  }
  return result;
}

}  // namespace dacc::mdsim
