// MD solutes for the MP2C-like application.
//
// The real MP2C is a *multi-scale* code: molecular-dynamics solutes coupled
// to the SRD solvent (paper Section V.C: "couples a mesoscopic fluid method
// based on multi-particle collision dynamics with molecular dynamics").
// This module supplies that MD half: Lennard-Jones solute particles
// integrated with velocity Verlet on the CPU, distributed over the same
// slab decomposition with ghost-position exchange for cross-rank pair
// forces, and coupled to the fluid by mass-weighted participation in the
// SRD collision cells (momentum flows both ways, exactly conserved).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dmpi/mpi.hpp"
#include "util/rng.hpp"

namespace dacc::mdsim {

struct SoluteParams {
  std::uint64_t count = 0;  ///< global solute count; 0 disables the MD half
  double mass = 10.0;       ///< fluid particles have mass 1
  double epsilon = 1.0;     ///< LJ well depth
  double sigma = 1.0;       ///< LJ length scale
  double rcut = 2.5;        ///< cutoff (absolute, >= sigma)
};

/// One rank's solutes (structure of arrays: x, y, z, vx, vy, vz per
/// particle, matching the fluid layout so the collision kernel can treat
/// both uniformly).
class SoluteSystem {
 public:
  /// Initializes this rank's share of `params.count` solutes on a lattice
  /// inside the slab [lo, hi) x [0, ly) x [0, lz), with thermal velocities.
  SoluteSystem(const SoluteParams& params, int rank, int ranks, double lo,
               double hi, double lx, double ly, double lz,
               std::uint64_t seed);

  std::uint64_t size() const { return n_; }
  std::span<double> data() { return {data_.data(), data_.size()}; }
  std::span<const double> data() const { return {data_.data(), data_.size()}; }

  /// Velocity-Verlet step of length dt: kick-drift (forces) kick. Pair
  /// forces across the slab boundary use ghost positions exchanged with
  /// both neighbours over `mpi`. Solutes never migrate more than one slab.
  void verlet_step(dmpi::Mpi& mpi, const dmpi::Comm& comm, double dt);

  /// Moves solutes that left the slab to the owning neighbour rank.
  void migrate(dmpi::Mpi& mpi, const dmpi::Comm& comm);

  double kinetic_energy() const;
  double potential_energy() const { return potential_; }
  void momentum(double out[3]) const;

  const SoluteParams& params() const { return params_; }

 private:
  void compute_forces(dmpi::Mpi& mpi, const dmpi::Comm& comm);
  std::vector<double> exchange_ghosts(dmpi::Mpi& mpi, const dmpi::Comm& comm);
  void accumulate_pair(double xi, double yi, double zi, double xj, double yj,
                       double zj, double* fi);

  SoluteParams params_;
  int rank_;
  int ranks_;
  double lo_, hi_, lx_, ly_, lz_;
  std::uint64_t n_ = 0;
  std::vector<double> data_;    // 6 doubles per solute
  std::vector<double> forces_;  // 3 doubles per solute
  double potential_ = 0.0;
  bool forces_valid_ = false;
};

}  // namespace dacc::mdsim
