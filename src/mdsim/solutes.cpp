#include "mdsim/solutes.hpp"

#include <cmath>
#include <stdexcept>

#include "util/buffer.hpp"

namespace dacc::mdsim {

namespace {

constexpr int kTagGhostLeft = 511;
constexpr int kTagGhostRight = 512;
constexpr int kTagSoluteMigrateLeft = 513;
constexpr int kTagSoluteMigrateRight = 514;

double wrap(double x, double l) {
  double w = std::fmod(x, l);
  if (w < 0) w += l;
  return w;
}

/// Minimum-image displacement along a periodic dimension.
double min_image(double d, double l) {
  if (d > l / 2) return d - l;
  if (d < -l / 2) return d + l;
  return d;
}

}  // namespace

SoluteSystem::SoluteSystem(const SoluteParams& params, int rank, int ranks,
                           double lo, double hi, double lx, double ly,
                           double lz, std::uint64_t seed)
    : params_(params),
      rank_(rank),
      ranks_(ranks),
      lo_(lo),
      hi_(hi),
      lx_(lx),
      ly_(ly),
      lz_(lz) {
  if (params_.rcut > (hi - lo)) {
    throw std::invalid_argument("solutes: cutoff wider than the slab");
  }
  n_ = params_.count / static_cast<std::uint64_t>(ranks) +
       (static_cast<std::uint64_t>(rank) <
                params_.count % static_cast<std::uint64_t>(ranks)
            ? 1
            : 0);
  data_.resize(n_ * 6);
  forces_.resize(n_ * 3, 0.0);

  // Lattice placement: spacing >= ~1.1 sigma keeps the LJ energy sane.
  const double spacing = std::max(1.1 * params_.sigma, 1.0);
  const auto per_row = static_cast<std::uint64_t>(
      std::max(1.0, std::floor((hi - lo) / spacing)));
  const auto per_col =
      static_cast<std::uint64_t>(std::max(1.0, std::floor(ly / spacing)));
  util::Rng rng(seed + static_cast<std::uint64_t>(rank) * 31337);
  const double vsigma = 1.0 / std::sqrt(params_.mass);  // unit temperature
  for (std::uint64_t i = 0; i < n_; ++i) {
    double* p = data_.data() + i * 6;
    const std::uint64_t ix = i % per_row;
    const std::uint64_t iy = (i / per_row) % per_col;
    const std::uint64_t iz = i / (per_row * per_col);
    p[0] = lo + (static_cast<double>(ix) + 0.5) * spacing;
    p[1] = wrap((static_cast<double>(iy) + 0.5) * spacing, ly);
    p[2] = wrap((static_cast<double>(iz) + 0.5) * spacing, lz);
    if (p[0] >= hi) p[0] = lo + (hi - lo) * 0.5;  // overflow: park mid-slab
    p[3] = vsigma * rng.normal();
    p[4] = vsigma * rng.normal();
    p[5] = vsigma * rng.normal();
  }
}

void SoluteSystem::accumulate_pair(double xi, double yi, double zi, double xj,
                                   double yj, double zj, double* fi) {
  const double dx = min_image(xi - xj, lx_);
  const double dy = min_image(yi - yj, ly_);
  const double dz = min_image(zi - zj, lz_);
  const double r2 = dx * dx + dy * dy + dz * dz;
  if (r2 >= params_.rcut * params_.rcut || r2 == 0.0) return;
  const double s2 = params_.sigma * params_.sigma / r2;
  const double s6 = s2 * s2 * s2;
  // LJ: U = 4 eps (s^12 - s^6); F = 24 eps (2 s^12 - s^6) / r^2 * dr.
  const double coeff = 24.0 * params_.epsilon * (2.0 * s6 * s6 - s6) / r2;
  fi[0] += coeff * dx;
  fi[1] += coeff * dy;
  fi[2] += coeff * dz;
  // Half of the pair potential (the other half is counted by the partner,
  // locally or on the neighbouring rank).
  potential_ += 2.0 * params_.epsilon * (s6 * s6 - s6);
}

std::vector<double> SoluteSystem::exchange_ghosts(dmpi::Mpi& mpi,
                                                  const dmpi::Comm& comm) {
  std::vector<double> ghosts;
  if (ranks_ == 1) return ghosts;  // periodic x handled by min_image locally
  const int left = (rank_ - 1 + ranks_) % ranks_;
  const int right = (rank_ + 1) % ranks_;
  std::vector<double> to_left;
  std::vector<double> to_right;
  for (std::uint64_t i = 0; i < n_; ++i) {
    const double* p = data_.data() + i * 6;
    // Distance to boundary in periodic x.
    if (wrap(p[0] - lo_, lx_) < params_.rcut) {
      to_left.insert(to_left.end(), p, p + 3);
    }
    if (wrap(hi_ - p[0], lx_) <= params_.rcut) {
      to_right.insert(to_right.end(), p, p + 3);
    }
  }
  auto xchg = [&](int to, int from, int tag, std::vector<double>& out) {
    dmpi::Request send = mpi.isend(
        comm, to, tag,
        util::Buffer::of<double>(std::span<const double>(out)));
    util::Buffer in = mpi.recv(comm, from, tag);
    mpi.wait(send);
    auto view = in.as<double>();
    return std::vector<double>(view.begin(), view.end());
  };
  const auto from_right = xchg(left, right, kTagGhostLeft, to_left);
  const auto from_left = xchg(right, left, kTagGhostRight, to_right);
  ghosts = from_right;
  ghosts.insert(ghosts.end(), from_left.begin(), from_left.end());
  return ghosts;
}

void SoluteSystem::compute_forces(dmpi::Mpi& mpi, const dmpi::Comm& comm) {
  potential_ = 0.0;
  std::fill(forces_.begin(), forces_.end(), 0.0);
  const std::vector<double> ghosts = exchange_ghosts(mpi, comm);
  for (std::uint64_t i = 0; i < n_; ++i) {
    const double* pi = data_.data() + i * 6;
    double* fi = forces_.data() + i * 3;
    for (std::uint64_t j = 0; j < n_; ++j) {
      if (i == j) continue;
      const double* pj = data_.data() + j * 6;
      accumulate_pair(pi[0], pi[1], pi[2], pj[0], pj[1], pj[2], fi);
    }
    for (std::size_t g = 0; g + 2 < ghosts.size(); g += 3) {
      accumulate_pair(pi[0], pi[1], pi[2], ghosts[g], ghosts[g + 1],
                      ghosts[g + 2], fi);
    }
  }
  // Each visit adds half a pair's energy: local pairs are visited twice
  // (i-j and j-i), ghost pairs once here and once on the neighbour, so the
  // global sum counts every pair exactly once.
  forces_valid_ = true;
}

void SoluteSystem::verlet_step(dmpi::Mpi& mpi, const dmpi::Comm& comm,
                               double dt) {
  if (n_ == 0 && ranks_ == 1) return;
  if (!forces_valid_) compute_forces(mpi, comm);
  const double half = 0.5 * dt / params_.mass;
  for (std::uint64_t i = 0; i < n_; ++i) {
    double* p = data_.data() + i * 6;
    const double* f = forces_.data() + i * 3;
    for (int d = 0; d < 3; ++d) p[3 + d] += half * f[d];
    p[0] = wrap(p[0] + p[3] * dt, lx_);
    p[1] = wrap(p[1] + p[4] * dt, ly_);
    p[2] = wrap(p[2] + p[5] * dt, lz_);
  }
  migrate(mpi, comm);
  compute_forces(mpi, comm);
  for (std::uint64_t i = 0; i < n_; ++i) {
    double* p = data_.data() + i * 6;
    const double* f = forces_.data() + i * 3;
    for (int d = 0; d < 3; ++d) p[3 + d] += half * f[d];
  }
}

void SoluteSystem::migrate(dmpi::Mpi& mpi, const dmpi::Comm& comm) {
  if (ranks_ == 1) return;
  const int left = (rank_ - 1 + ranks_) % ranks_;
  const int right = (rank_ + 1) % ranks_;
  const double slab_w = lx_ / ranks_;
  std::vector<double> stay;
  std::vector<double> to_left;
  std::vector<double> to_right;
  stay.reserve(data_.size());
  for (std::uint64_t i = 0; i < n_; ++i) {
    const double* p = data_.data() + i * 6;
    const int owner =
        std::min(ranks_ - 1, static_cast<int>(wrap(p[0], lx_) / slab_w));
    std::vector<double>* dest = &stay;
    if (owner == rank_) {
      dest = &stay;
    } else if (owner == left) {
      dest = &to_left;
    } else if (owner == right) {
      dest = &to_right;
    } else {
      throw std::runtime_error("solutes: particle crossed a whole slab");
    }
    dest->insert(dest->end(), p, p + 6);
  }
  auto xchg = [&](int to, int from, int tag, std::vector<double>& out) {
    dmpi::Request send = mpi.isend(
        comm, to, tag,
        util::Buffer::of<double>(std::span<const double>(out)));
    util::Buffer in = mpi.recv(comm, from, tag);
    mpi.wait(send);
    auto view = in.as<double>();
    stay.insert(stay.end(), view.begin(), view.end());
  };
  xchg(left, right, kTagSoluteMigrateLeft, to_left);
  xchg(right, left, kTagSoluteMigrateRight, to_right);
  data_ = std::move(stay);
  n_ = data_.size() / 6;
  forces_.assign(n_ * 3, 0.0);
  forces_valid_ = false;
}

double SoluteSystem::kinetic_energy() const {
  double ke = 0.0;
  for (std::uint64_t i = 0; i < n_; ++i) {
    const double* v = data_.data() + i * 6 + 3;
    ke += 0.5 * params_.mass * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]);
  }
  return ke;
}

void SoluteSystem::momentum(double out[3]) const {
  out[0] = out[1] = out[2] = 0.0;
  for (std::uint64_t i = 0; i < n_; ++i) {
    const double* v = data_.data() + i * 6 + 3;
    for (int d = 0; d < 3; ++d) out[d] += params_.mass * v[d];
  }
}

}  // namespace dacc::mdsim
