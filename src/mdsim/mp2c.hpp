// MP2C-like multi-particle collision dynamics application.
//
// The paper's real-world workload (Section V.C) is MP2C: a multi-scale
// molecular-dynamics code whose mesoscopic fluid solver implements
// stochastic rotation dynamics (SRD) in CUDA, parallelized with MPI over a
// geometric domain decomposition. This module reproduces that structure:
//
//   * slab domain decomposition along x over the job's ranks, with particle
//     migration over dmpi after every streaming step;
//   * SRD collisions on the (local or network-attached) GPU every
//     `srd_every`-th step: particle data H2D, one collision kernel, updated
//     velocities D2H — the transfer pattern whose bandwidth sensitivity
//     Figure 11 measures;
//   * the random grid shift of Malevanets/Kapral SRD, honoured across ranks
//     by re-assigning boundary-band particles to the rank that owns their
//     (shifted) collision cell before the collision.
//
// Functional runs use real particles and conserve momentum and kinetic
// energy exactly (the tests check this through the full remote stack);
// phantom runs reproduce the identical communication and compute timing at
// paper scale (5.12M - 10M particles).
//
// The MD solute coupling of MP2C is folded into the per-step CPU cost model
// (see DESIGN.md): its compute happens on the CPU in MP2C and does not
// change the GPU offload pattern the experiment targets.
#pragma once

#include <array>
#include <cstdint>

#include "core/link.hpp"
#include "mdsim/solutes.hpp"
#include "rt/cluster.hpp"
#include "util/units.hpp"

namespace dacc::mdsim {

struct SrdParams {
  int particles_per_cell = 10;  ///< paper: "particles per collision cell is 10"
  double cell_size = 1.0;
  double dt = 0.1;
  double alpha_deg = 130.0;  ///< SRD rotation angle
  int srd_every = 5;         ///< paper: "executed in every 5-th step"
  int steps = 300;           ///< paper: "of 300 steps in total"

  /// MD solutes coupled to the fluid (0 = pure SRD solvent). The real MP2C
  /// is a multi-scale MD+SRD code; see mdsim/solutes.hpp.
  SoluteParams solutes;
};

/// Calibrated cost model (see DESIGN.md for the derivation from Fig. 11).
struct CostParams {
  double cpu_md_ns_per_particle = 840.0;  ///< MD/streaming step, per local p.
  double cpu_sort_ns_per_particle = 25.0; ///< migration pack/unpack, cells
  double gpu_srd_ns_per_particle = 45.0;  ///< collision kernel on the C1060
  /// Lennard-Jones force evaluation per solute per step (CPU).
  double cpu_lj_ns_per_solute = 1500.0;
  /// Phantom-mode estimate of the per-step fraction of particles crossing a
  /// slab boundary (functional runs count them exactly).
  double migration_fraction = 0.02;
};

struct Mp2cResult {
  SimDuration elapsed = 0;
  std::uint64_t local_particles = 0;  ///< final count on this rank
  std::uint64_t srd_steps = 0;
  std::uint64_t migrated_out = 0;     ///< particles this rank sent (functional)
  double kinetic_energy = 0.0;        ///< global fluid + solute KE
  std::array<double, 3> momentum{};   ///< global fluid + solute momentum
  double solute_kinetic = 0.0;        ///< global, functional runs
  double solute_potential = 0.0;      ///< global LJ potential
  std::uint64_t local_solutes = 0;
};

/// Registers the SRD collision kernel ("srd_collide").
void register_mdsim_kernels(gpu::KernelRegistry& registry,
                            const CostParams& costs = {});

/// Runs the simulation; must be called collectively by every rank of the
/// job. `gpu` is this rank's accelerator (local or remote); when null, the
/// collision step runs on the CPU (charged at CPU rates) — the no-GPU
/// reference. Functional vs phantom follows the cluster's GPU mode.
Mp2cResult run_mp2c(rt::JobContext& job, core::DeviceLink* gpu,
                    std::uint64_t total_particles, const SrdParams& srd = {},
                    const CostParams& costs = {}, std::uint64_t seed = 42);

}  // namespace dacc::mdsim
