#include "mdsim/srd.hpp"

#include <cmath>
#include <array>
#include <unordered_map>

#include "util/rng.hpp"

namespace dacc::mdsim {

namespace {

/// Periodic cell coordinate along one dimension.
inline std::int64_t cell_coord(double x, double shift, double cell, int nc) {
  auto k = static_cast<std::int64_t>(std::floor((x - shift) / cell));
  k %= nc;
  if (k < 0) k += nc;
  return k;
}

}  // namespace

std::int64_t srd_cell_index(double x, double y, double z,
                            const SrdGrid& g) {
  const std::int64_t kx = cell_coord(x, g.shift[0], g.cell, g.nc[0]);
  const std::int64_t ky = cell_coord(y, g.shift[1], g.cell, g.nc[1]);
  const std::int64_t kz = cell_coord(z, g.shift[2], g.cell, g.nc[2]);
  return (kz * g.nc[1] + ky) * g.nc[0] + kx;
}

double srd_cell_corner_x(double x, const SrdGrid& g) {
  const double corner =
      std::floor((x - g.shift[0]) / g.cell) * g.cell + g.shift[0];
  const double lx = g.nc[0] * g.cell;
  double wrapped = std::fmod(corner, lx);
  if (wrapped < 0) wrapped += lx;
  return wrapped;
}

void srd_collide(std::span<double> data, std::uint64_t n, const SrdGrid& g,
                 double cos_a, double sin_a, std::uint64_t seed) {
  srd_collide_coupled(data, n, {}, 0, 1.0, g, cos_a, sin_a, seed);
}

void srd_collide_coupled(std::span<double> fluid, std::uint64_t n_fluid,
                         std::span<double> solutes, std::uint64_t n_solutes,
                         double solute_mass, const SrdGrid& g, double cos_a,
                         double sin_a, std::uint64_t seed) {
  struct CellAccum {
    double msum[3] = {0, 0, 0};
    double mass = 0.0;
  };
  std::unordered_map<std::int64_t, CellAccum> cells;
  cells.reserve((n_fluid + n_solutes) / 4 + 16);

  auto accumulate = [&](std::span<double> data, std::uint64_t n, double m) {
    for (std::uint64_t i = 0; i < n; ++i) {
      const double* p = data.data() + i * 6;
      CellAccum& c = cells[srd_cell_index(p[0], p[1], p[2], g)];
      c.msum[0] += m * p[3];
      c.msum[1] += m * p[4];
      c.msum[2] += m * p[5];
      c.mass += m;
    }
  };
  accumulate(fluid, n_fluid, 1.0);
  accumulate(solutes, n_solutes, solute_mass);

  // Per-cell random rotation axis, deterministic in (seed, cell index).
  std::unordered_map<std::int64_t, std::array<double, 3>> axes;
  axes.reserve(cells.size());
  for (const auto& [id, accum] : cells) {
    (void)accum;
    util::Rng rng(seed ^ (static_cast<std::uint64_t>(id) *
                          0x9e3779b97f4a7c15ull));
    const double z = rng.uniform(-1.0, 1.0);
    const double phi = rng.uniform(0.0, 2.0 * M_PI);
    const double r = std::sqrt(std::max(0.0, 1.0 - z * z));
    axes[id] = {r * std::cos(phi), r * std::sin(phi), z};
  }

  auto rotate = [&](std::span<double> data, std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i) {
      double* p = data.data() + i * 6;
      const std::int64_t id = srd_cell_index(p[0], p[1], p[2], g);
      const CellAccum& c = cells[id];
      const double inv = 1.0 / c.mass;
      const double mean[3] = {c.msum[0] * inv, c.msum[1] * inv,
                              c.msum[2] * inv};
      const double rel[3] = {p[3] - mean[0], p[4] - mean[1], p[5] - mean[2]};
      const auto& u = axes[id];
      // Rodrigues rotation: v' = v c + (u x v) s + u (u.v)(1 - c).
      const double dot = u[0] * rel[0] + u[1] * rel[1] + u[2] * rel[2];
      const double cross[3] = {u[1] * rel[2] - u[2] * rel[1],
                               u[2] * rel[0] - u[0] * rel[2],
                               u[0] * rel[1] - u[1] * rel[0]};
      for (int d = 0; d < 3; ++d) {
        p[3 + d] = mean[d] + rel[d] * cos_a + cross[d] * sin_a +
                   u[d] * dot * (1.0 - cos_a);
      }
    }
  };
  rotate(fluid, n_fluid);
  rotate(solutes, n_solutes);
}

}  // namespace dacc::mdsim
