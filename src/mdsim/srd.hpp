// Core stochastic-rotation-dynamics math (Malevanets/Kapral SRD as surveyed
// in Gompper et al., the paper's reference [11]): particles are binned into
// a randomly shifted cubic cell grid; within each cell, velocities relative
// to the cell mean are rotated by a fixed angle around a per-cell random
// axis. Exactly conserves per-cell momentum and kinetic energy.
//
// This is the functional body of the "srd_collide" GPU kernel and of the
// CPU fallback; it is exposed so tests can check the invariants directly.
#pragma once

#include <cstdint>
#include <span>

namespace dacc::mdsim {

struct SrdGrid {
  double cell = 1.0;
  double shift[3] = {0.0, 0.0, 0.0};
  int nc[3] = {1, 1, 1};  ///< global cell counts per dimension
};

/// Applies one SRD collision step in place. `data` holds n particles as
/// (x, y, z, vx, vy, vz) tuples. `cos_a`/`sin_a` encode the rotation angle;
/// the per-cell axis derives deterministically from (seed, cell index), so
/// ranks that share a (boundary) cell would agree — ownership re-assignment
/// makes that unnecessary, but determinism keeps runs replayable.
void srd_collide(std::span<double> data, std::uint64_t n, const SrdGrid& grid,
                 double cos_a, double sin_a, std::uint64_t seed);

/// Fluid-solute coupled collision: solutes (mass `solute_mass`, same 6-double
/// layout) participate in the mass-weighted cell means and rotations, so
/// momentum and kinetic energy flow between solvent and solutes while the
/// cell totals stay exactly conserved (MP2C's coupling mechanism).
void srd_collide_coupled(std::span<double> fluid, std::uint64_t n_fluid,
                         std::span<double> solutes, std::uint64_t n_solutes,
                         double solute_mass, const SrdGrid& grid,
                         double cos_a, double sin_a, std::uint64_t seed);

/// Global cell index of a position under the shifted grid (periodic).
std::int64_t srd_cell_index(double x, double y, double z,
                            const SrdGrid& grid);

/// x-coordinate of the (shifted) cell's lower corner containing `x`,
/// wrapped into [0, nc[0]*cell) — the coordinate that decides which rank
/// owns the cell for the collision.
double srd_cell_corner_x(double x, const SrdGrid& grid);

}  // namespace dacc::mdsim
