#include "core/ocl.hpp"

#include <stdexcept>

namespace dacc::ocl {

std::vector<Device> Platform::get_device_ids(std::uint32_t count,
                                             const std::string& kind) {
  std::vector<Device> devices;
  for (core::Accelerator* acc : session_->acquire(count, /*wait=*/false,
                                                  kind)) {
    devices.emplace_back(acc);
  }
  return devices;
}

void Kernel::set_arg(std::uint32_t index, gpu::KernelArg value) {
  if (args_.size() <= index) args_.resize(index + 1);
  args_[index] = Arg{false, value, nullptr};
}

void Kernel::set_arg(std::uint32_t index, Mem& mem) {
  if (args_.size() <= index) args_.resize(index + 1);
  args_[index] = Arg{true, gpu::KernelArg{}, &mem};
}

Context::Context(std::vector<Device> devices)
    : devices_(std::move(devices)) {
  if (devices_.empty()) {
    throw std::invalid_argument("ocl::Context: needs at least one device");
  }
}

Mem& Context::create_buffer(std::uint64_t size) {
  buffers_.push_back(std::unique_ptr<Mem>(new Mem(this, size)));
  return *buffers_.back();
}

Kernel& Context::create_kernel(const std::string& name) {
  // Validate once via the paper's acKernelCreate path.
  (void)devices_.front().accelerator().kernel_create(name);
  kernels_.push_back(std::unique_ptr<Kernel>(new Kernel(name)));
  return *kernels_.back();
}

CommandQueue Context::create_queue(std::size_t device_index) {
  Device device = devices_.at(device_index);
  return CommandQueue(this, device,
                      device.accelerator().session().context());
}

gpu::DevPtr CommandQueue::devptr(Mem& mem) {
  if (mem.context_ != context_) {
    throw std::logic_error("ocl: buffer used outside its context");
  }
  core::Accelerator* acc = &device_.accelerator();
  const auto it = mem.per_device_.find(acc);
  if (it != mem.per_device_.end()) return it->second;
  const gpu::DevPtr ptr = acc->mem_alloc(mem.size_);
  mem.per_device_.emplace(acc, ptr);
  return ptr;
}

Event CommandQueue::enqueue_write(Mem& mem, util::Buffer data,
                                  bool blocking) {
  if (data.size() > mem.size_) {
    throw std::invalid_argument("ocl: write larger than buffer");
  }
  core::Future f =
      device_.accelerator().memcpy_h2d_async(devptr(mem), std::move(data));
  if (blocking) {
    f.get(*sim_ctx_);
    return Event{};
  }
  pending_.push_back(f);
  return Event(std::move(f));
}

util::Buffer CommandQueue::enqueue_read(Mem& mem, std::uint64_t size) {
  if (size > mem.size_) {
    throw std::invalid_argument("ocl: read larger than buffer");
  }
  // Reads are blocking; the per-accelerator proxy keeps queue order, so
  // everything enqueued before is complete when the data arrives.
  util::Buffer out = device_.accelerator().memcpy_d2h(devptr(mem), size);
  pending_.clear();
  return out;
}

Event CommandQueue::enqueue_ndrange(Kernel& kernel, std::uint64_t global_size,
                                    std::uint64_t local_size) {
  gpu::KernelArgs args;
  args.reserve(kernel.args_.size());
  for (Kernel::Arg& a : kernel.args_) {
    if (a.is_mem) {
      if (a.mem == nullptr) {
        throw std::logic_error("ocl: unset kernel argument");
      }
      args.emplace_back(devptr(*a.mem));
    } else {
      args.push_back(a.scalar);
    }
  }
  gpu::LaunchConfig config;
  config.block.x = static_cast<std::uint32_t>(local_size);
  config.grid.x = static_cast<std::uint32_t>(
      (global_size + local_size - 1) / local_size);
  core::Future f =
      device_.accelerator().launch_async(kernel.name_, config, std::move(args));
  pending_.push_back(f);
  return Event(std::move(f));
}

void CommandQueue::finish() {
  for (core::Future& f : pending_) f.get(*sim_ctx_);
  pending_.clear();
}

}  // namespace dacc::ocl
