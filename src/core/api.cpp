#include "core/api.hpp"

#include <algorithm>

#include "proto/transfer.hpp"
#include "sim/trace.hpp"

namespace dacc::core {

using gpu::Result;
using proto::kDataTag;
using proto::kRequestTag;
using proto::kResponseTag;
using proto::Op;
using proto::WireReader;
using proto::WireWriter;

// ---------------------------------------------------------------------------
// Future
// ---------------------------------------------------------------------------

struct Future::State {
  explicit State(sim::Engine& eng) : engine(&eng) {}

  sim::Engine* engine;
  bool done = false;
  Result status = Result::kSuccess;
  gpu::DevPtr ptr = gpu::kNullDevPtr;
  util::Buffer data;
  DeviceInfo info;
  std::vector<sim::Process*> waiters;

  void complete(Result r) {
    done = true;
    status = r;
    for (sim::Process* w : waiters) engine->wake(*w);
    waiters.clear();
  }
};

bool Future::done() const { return state_ != nullptr && state_->done; }

Result Future::status() const {
  if (!done()) throw std::logic_error("Future::status before completion");
  return state_->status;
}

gpu::DevPtr Future::ptr() const {
  if (!done()) throw std::logic_error("Future::ptr before completion");
  return state_->ptr;
}

util::Buffer Future::take_data() {
  if (!done()) throw std::logic_error("Future::take_data before completion");
  return std::move(state_->data);
}

void Future::wait(sim::Context& ctx) {
  if (!valid()) throw std::logic_error("wait on invalid Future");
  sim::Process* self = &ctx.self();
  while (!state_->done) {
    auto& w = state_->waiters;
    if (std::find(w.begin(), w.end(), self) == w.end()) w.push_back(self);
    ctx.suspend();
  }
  auto& w = state_->waiters;
  w.erase(std::remove(w.begin(), w.end(), self), w.end());
}

void Future::get(sim::Context& ctx) {
  wait(ctx);
  if (state_->status != Result::kSuccess) {
    throw AcError(state_->status, "accelerator operation failed");
  }
}

// ---------------------------------------------------------------------------
// Kernel
// ---------------------------------------------------------------------------

void Kernel::run(const gpu::LaunchConfig& config) {
  acc_->launch(name_, config, args_);
}

Future Kernel::run_async(const gpu::LaunchConfig& config) {
  return acc_->launch_async(name_, config, args_);
}

// ---------------------------------------------------------------------------
// Accelerator
// ---------------------------------------------------------------------------

struct Accelerator::ProxyOp {
  enum class Kind {
    kAlloc,
    kFree,
    kH2D,
    kD2H,
    kLaunch,
    kKernelCheck,
    kInfo,
    kPeer,
    kStop,
  };

  Kind kind = Kind::kStop;
  std::uint64_t bytes = 0;
  gpu::DevPtr dst = gpu::kNullDevPtr;
  gpu::DevPtr src = gpu::kNullDevPtr;
  util::Buffer data;
  std::string kernel;
  gpu::LaunchConfig launch;
  gpu::KernelArgs args;
  dmpi::Rank peer = -1;
  gpu::DevPtr peer_dst = gpu::kNullDevPtr;
  proto::TransferConfig transfer;
  std::shared_ptr<Future::State> result;
};

Accelerator::Accelerator(Session& session, arm::Lease lease)
    : session_(&session),
      lease_(lease),
      transfer_(session.config().transfer),
      ops_(std::make_unique<sim::Mailbox<std::unique_ptr<ProxyOp>>>(
          session.world_.engine())) {
  sim::Engine& engine = session.world_.engine();
  proxy_ = &engine.spawn(
      "fe-proxy-r" + std::to_string(session.self_) + "-ac" +
          std::to_string(lease_.daemon_rank),
      [this](sim::Context& ctx) { proxy_main(ctx); });
  engine.set_daemon(*proxy_);
}

Accelerator::~Accelerator() { stop_proxy(); }

void Accelerator::stop_proxy(sim::Context* ctx) {
  if (stopped_) return;
  stopped_ = true;
  auto op = std::make_unique<ProxyOp>();
  op->kind = ProxyOp::Kind::kStop;
  auto state = std::make_shared<Future::State>(session_->world_.engine());
  op->result = state;
  ops_->put(std::move(op));
  if (ctx != nullptr) Future(state).wait(*ctx);
}

Future Accelerator::enqueue(ProxyOp op) {
  if (stopped_) {
    throw std::logic_error("Accelerator used after release");
  }
  auto state = std::make_shared<Future::State>(session_->world_.engine());
  op.result = state;
  ops_->put(std::make_unique<ProxyOp>(std::move(op)));
  return Future(state);
}

void Accelerator::proxy_main(sim::Context& ctx) {
  dmpi::Mpi mpi(session_->world_, ctx, session_->self_);
  const dmpi::Comm& comm = session_->comm_;
  const dmpi::Rank d = lease_.daemon_rank;
  const proto::ProtoParams& pp = session_->config().proto;
  const std::string track = "fe-r" + std::to_string(session_->self_) +
                            "-ac" + std::to_string(d);

  for (;;) {
    std::unique_ptr<ProxyOp> op = ops_->get(ctx);
    Future::State& res = *op->result;
    if (op->kind == ProxyOp::Kind::kStop) {
      res.complete(Result::kSuccess);
      return;
    }
    const SimTime op_begin = ctx.now();
    ctx.wait_for(pp.fe_marshal);  // request marshalling on the CN CPU
    const std::string label = session_->world_.engine().tracer() != nullptr
                                  ? op_label(*op)
                                  : std::string{};
    switch (op->kind) {
      case ProxyOp::Kind::kAlloc: {
        mpi.send(comm, d, kRequestTag,
                 WireWriter{}.op(Op::kMemAlloc).u64(op->bytes).finish());
        WireReader r(mpi.recv(comm, d, kResponseTag));
        const Result status = r.result();
        res.ptr = r.u64();
        res.complete(status);
        break;
      }
      case ProxyOp::Kind::kFree: {
        mpi.send(comm, d, kRequestTag,
                 WireWriter{}.op(Op::kMemFree).u64(op->dst).finish());
        res.complete(WireReader(mpi.recv(comm, d, kResponseTag)).result());
        break;
      }
      case ProxyOp::Kind::kH2D: {
        mpi.send(comm, d, kRequestTag,
                 WireWriter{}
                     .op(Op::kMemcpyHtoD)
                     .u64(op->dst)
                     .u64(op->data.size())
                     .transfer_config(op->transfer)
                     .finish());
        proto::send_blocks(mpi, comm, d, std::move(op->data), op->transfer);
        res.complete(WireReader(mpi.recv(comm, d, kResponseTag)).result());
        break;
      }
      case ProxyOp::Kind::kD2H: {
        mpi.send(comm, d, kRequestTag,
                 WireWriter{}
                     .op(Op::kMemcpyDtoH)
                     .u64(op->src)
                     .u64(op->bytes)
                     .transfer_config(op->transfer)
                     .finish());
        const Result pre = WireReader(mpi.recv(comm, d, kResponseTag)).result();
        if (pre != Result::kSuccess) {
          res.complete(pre);
          break;
        }
        res.data =
            proto::recv_assemble(mpi, comm, d, op->bytes, op->transfer);
        res.complete(WireReader(mpi.recv(comm, d, kResponseTag)).result());
        break;
      }
      case ProxyOp::Kind::kLaunch: {
        mpi.send(comm, d, kRequestTag,
                 WireWriter{}
                     .op(Op::kKernelRun)
                     .str(op->kernel)
                     .launch_config(op->launch)
                     .kernel_args(op->args)
                     .finish());
        res.complete(WireReader(mpi.recv(comm, d, kResponseTag)).result());
        break;
      }
      case ProxyOp::Kind::kKernelCheck: {
        mpi.send(comm, d, kRequestTag,
                 WireWriter{}.op(Op::kKernelCreate).str(op->kernel).finish());
        res.complete(WireReader(mpi.recv(comm, d, kResponseTag)).result());
        break;
      }
      case ProxyOp::Kind::kInfo: {
        mpi.send(comm, d, kRequestTag,
                 WireWriter{}.op(Op::kDeviceInfo).finish());
        WireReader r(mpi.recv(comm, d, kResponseTag));
        const Result status = r.result();
        if (status == Result::kSuccess) {
          res.info.name = r.str();
          res.info.memory_bytes = r.u64();
          res.info.memory_free = r.u64();
        }
        res.complete(status);
        break;
      }
      case ProxyOp::Kind::kPeer: {
        mpi.send(comm, d, kRequestTag,
                 WireWriter{}
                     .op(Op::kPeerSend)
                     .u64(op->src)
                     .u64(op->bytes)
                     .u64(static_cast<std::uint64_t>(op->peer))
                     .u64(op->peer_dst)
                     .transfer_config(op->transfer)
                     .finish());
        res.complete(WireReader(mpi.recv(comm, d, kResponseTag)).result());
        break;
      }
      case ProxyOp::Kind::kStop:
        break;  // handled above
    }
    if (sim::Tracer* tracer = session_->world_.engine().tracer()) {
      tracer->record(track, label, op_begin, ctx.now());
    }
  }
}

std::string Accelerator::op_label(const ProxyOp& op) {
  using Kind = ProxyOp::Kind;
  auto size_suffix = [&] {
    const std::uint64_t bytes =
        op.kind == Kind::kH2D ? op.data.size() : op.bytes;
    if (bytes >= 1024 * 1024) {
      return " " + std::to_string(bytes / (1024 * 1024)) + "MiB";
    }
    return " " + std::to_string(bytes) + "B";
  };
  switch (op.kind) {
    case Kind::kAlloc:
      return "alloc" + size_suffix();
    case Kind::kFree:
      return "free";
    case Kind::kH2D:
      return "h2d" + size_suffix();
    case Kind::kD2H:
      return "d2h" + size_suffix();
    case Kind::kLaunch:
      return "launch " + op.kernel;
    case Kind::kKernelCheck:
      return "kernel_create " + op.kernel;
    case Kind::kInfo:
      return "device_info";
    case Kind::kPeer:
      return "peer_copy" + size_suffix();
    case Kind::kStop:
      return "stop";
  }
  return "?";
}

Future Accelerator::mem_alloc_async(std::uint64_t bytes) {
  ProxyOp op;
  op.kind = ProxyOp::Kind::kAlloc;
  op.bytes = bytes;
  return enqueue(std::move(op));
}

Future Accelerator::memcpy_h2d_async(gpu::DevPtr dst, util::Buffer src) {
  ProxyOp op;
  op.kind = ProxyOp::Kind::kH2D;
  op.dst = dst;
  op.data = std::move(src);
  op.transfer = transfer_;
  return enqueue(std::move(op));
}

Future Accelerator::memcpy_d2h_async(gpu::DevPtr src, std::uint64_t bytes) {
  ProxyOp op;
  op.kind = ProxyOp::Kind::kD2H;
  op.src = src;
  op.bytes = bytes;
  op.transfer = transfer_;
  return enqueue(std::move(op));
}

Future Accelerator::launch_async(const std::string& kernel,
                                 const gpu::LaunchConfig& config,
                                 gpu::KernelArgs args) {
  ProxyOp op;
  op.kind = ProxyOp::Kind::kLaunch;
  op.kernel = kernel;
  op.launch = config;
  op.args = std::move(args);
  return enqueue(std::move(op));
}

Future Accelerator::copy_to_peer_async(gpu::DevPtr src, Accelerator& peer,
                                       gpu::DevPtr peer_dst,
                                       std::uint64_t bytes) {
  ProxyOp op;
  op.kind = ProxyOp::Kind::kPeer;
  op.src = src;
  op.bytes = bytes;
  op.peer = peer.daemon_rank();
  op.peer_dst = peer_dst;
  op.transfer = transfer_;
  return enqueue(std::move(op));
}

gpu::DevPtr Accelerator::mem_alloc(std::uint64_t bytes) {
  Future f = mem_alloc_async(bytes);
  f.get(session_->ctx_);
  return f.ptr();
}

void Accelerator::mem_free(gpu::DevPtr ptr) {
  ProxyOp op;
  op.kind = ProxyOp::Kind::kFree;
  op.dst = ptr;
  enqueue(std::move(op)).get(session_->ctx_);
}

void Accelerator::memcpy_h2d(gpu::DevPtr dst, util::Buffer src) {
  memcpy_h2d_async(dst, std::move(src)).get(session_->ctx_);
}

util::Buffer Accelerator::memcpy_d2h(gpu::DevPtr src, std::uint64_t bytes) {
  Future f = memcpy_d2h_async(src, bytes);
  f.get(session_->ctx_);
  return f.take_data();
}

void Accelerator::launch(const std::string& kernel,
                         const gpu::LaunchConfig& config,
                         gpu::KernelArgs args) {
  launch_async(kernel, config, std::move(args)).get(session_->ctx_);
}

Kernel Accelerator::kernel_create(const std::string& name) {
  ProxyOp op;
  op.kind = ProxyOp::Kind::kKernelCheck;
  op.kernel = name;
  enqueue(std::move(op)).get(session_->ctx_);
  return Kernel(*this, name);
}

DeviceInfo Accelerator::info() {
  ProxyOp op;
  op.kind = ProxyOp::Kind::kInfo;
  Future f = enqueue(std::move(op));
  f.get(session_->ctx_);
  return f.state_->info;
}

void Accelerator::copy_to_peer(gpu::DevPtr src, Accelerator& peer,
                               gpu::DevPtr peer_dst, std::uint64_t bytes) {
  copy_to_peer_async(src, peer, peer_dst, bytes).get(session_->ctx_);
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

Session::Session(dmpi::World& world, sim::Context& ctx, dmpi::Rank self,
                 const dmpi::Comm& comm, Config config)
    : world_(world),
      ctx_(ctx),
      self_(self),
      comm_(comm),
      config_(config),
      mpi_(world, ctx, self),
      arm_client_(mpi_, comm, config.arm_rank) {}

Session::~Session() {
  // Best effort: stop the proxies (no blocking in a destructor). Proper
  // shutdown — including returning leases to the ARM — is close().
  for (auto& acc : accelerators_) acc->stop_proxy();
}

std::vector<Accelerator*> Session::acquire(std::uint32_t count, bool wait,
                                           const std::string& kind) {
  const std::vector<arm::Lease> leases =
      arm_client_.acquire(config_.job_id, count, wait, kind);
  std::vector<Accelerator*> out;
  out.reserve(leases.size());
  for (const arm::Lease& lease : leases) out.push_back(attach(lease));
  return out;
}

Accelerator* Session::attach(arm::Lease lease) {
  accelerators_.push_back(
      std::unique_ptr<Accelerator>(new Accelerator(*this, lease)));
  return accelerators_.back().get();
}

void Session::release(Accelerator* acc) {
  const auto it = std::find_if(
      accelerators_.begin(), accelerators_.end(),
      [&](const auto& p) { return p.get() == acc; });
  if (it == accelerators_.end()) {
    throw std::logic_error("release: accelerator not owned by this session");
  }
  // Drain in-flight operations, then return the lease.
  acc->stop_proxy(&ctx_);
  const arm::Lease lease = acc->lease();
  accelerators_.erase(it);
  (void)arm_client_.release(config_.job_id, lease);
}

void Session::close() {
  if (closed_) return;
  closed_ = true;
  for (auto& acc : accelerators_) {
    acc->stop_proxy(&ctx_);
  }
  accelerators_.clear();
  (void)arm_client_.release_job(config_.job_id);
}

void Session::wait_all(std::vector<Future>& futures) {
  for (Future& f : futures) f.wait(ctx_);
}

}  // namespace dacc::core
