#include "core/api.hpp"

#include <algorithm>
#include <optional>

#include "obs/flight.hpp"
#include "proto/transfer.hpp"
#include "rpc/batch.hpp"
#include "sim/trace.hpp"

namespace dacc::core {

using gpu::Result;
using proto::Op;
using proto::WireReader;
using proto::WireWriter;

// ---------------------------------------------------------------------------
// Future
// ---------------------------------------------------------------------------

struct Future::State {
  explicit State(sim::Engine& eng) : engine(&eng) {}

  sim::Engine* engine;
  bool done = false;
  Result status = Result::kSuccess;
  gpu::DevPtr ptr = gpu::kNullDevPtr;
  util::Buffer data;
  DeviceInfo info;
  std::vector<sim::Process*> waiters;

  void complete(Result r) {
    done = true;
    status = r;
    for (sim::Process* w : waiters) engine->wake(*w);
    waiters.clear();
  }
};

bool Future::done() const { return state_ != nullptr && state_->done; }

Result Future::status() const {
  if (!done()) throw std::logic_error("Future::status before completion");
  return state_->status;
}

gpu::DevPtr Future::ptr() const {
  if (!done()) throw std::logic_error("Future::ptr before completion");
  return state_->ptr;
}

util::Buffer Future::take_data() {
  if (!done()) throw std::logic_error("Future::take_data before completion");
  return std::move(state_->data);
}

void Future::wait(sim::Context& ctx) {
  if (!valid()) throw std::logic_error("wait on invalid Future");
  sim::Process* self = &ctx.self();
  while (!state_->done) {
    auto& w = state_->waiters;
    if (std::find(w.begin(), w.end(), self) == w.end()) w.push_back(self);
    ctx.suspend();
  }
  auto& w = state_->waiters;
  w.erase(std::remove(w.begin(), w.end(), self), w.end());
}

void Future::get(sim::Context& ctx) {
  wait(ctx);
  if (state_->status != Result::kSuccess) {
    throw AcError(state_->status, "accelerator operation failed");
  }
}

// ---------------------------------------------------------------------------
// Kernel
// ---------------------------------------------------------------------------

void Kernel::run(const gpu::LaunchConfig& config) {
  acc_->launch(name_, config, args_);
}

Future Kernel::run_async(const gpu::LaunchConfig& config) {
  return acc_->launch_async(name_, config, args_);
}

// ---------------------------------------------------------------------------
// Accelerator
// ---------------------------------------------------------------------------

struct Accelerator::ProxyOp {
  enum class Kind {
    kAlloc,
    kFree,
    kH2D,
    kD2H,
    kLaunch,
    kKernelCheck,
    kInfo,
    kPeer,
    kStop,
  };

  Kind kind = Kind::kStop;
  std::uint64_t bytes = 0;
  gpu::DevPtr dst = gpu::kNullDevPtr;
  gpu::DevPtr src = gpu::kNullDevPtr;
  util::Buffer data;
  std::string kernel;
  gpu::LaunchConfig launch;
  gpu::KernelArgs args;
  dmpi::Rank peer = -1;
  gpu::DevPtr peer_dst = gpu::kNullDevPtr;
  proto::TransferConfig transfer;
  std::shared_ptr<Future::State> result;
};

Accelerator::Accelerator(Session& session, arm::Lease lease)
    : session_(&session),
      lease_(lease),
      transfer_(session.config().transfer),
      ops_(std::make_unique<sim::Mailbox<std::unique_ptr<ProxyOp>>>(
          session.world_.engine())) {
  sim::Engine& engine = session.world_.engine();
  proxy_ = &engine.spawn(
      "fe-proxy-r" + std::to_string(session.self_) + "-ac" +
          std::to_string(lease_.daemon_rank),
      [this](sim::Context& ctx) { proxy_main(ctx); });
  engine.set_daemon(*proxy_);
}

Accelerator::~Accelerator() { stop_proxy(); }

void Accelerator::stop_proxy(sim::Context* ctx) {
  if (stopped_) return;
  stopped_ = true;
  auto op = std::make_unique<ProxyOp>();
  op->kind = ProxyOp::Kind::kStop;
  auto state = std::make_shared<Future::State>(session_->world_.engine());
  op->result = state;
  ops_->put(std::move(op));
  if (ctx != nullptr) Future(state).wait(*ctx);
}

Future Accelerator::enqueue(ProxyOp op) {
  if (stopped_) {
    throw std::logic_error("Accelerator used after release");
  }
  auto state = std::make_shared<Future::State>(session_->world_.engine());
  op.result = state;
  ops_->put(std::make_unique<ProxyOp>(std::move(op)));
  return Future(state);
}

/// What one wire exchange produced (exec_op copies it into the Future once
/// the op is final — only then do virtual-pointer rewrites apply).
struct Accelerator::AttemptOut {
  Result status = Result::kSuccess;
  gpu::DevPtr ptr = gpu::kNullDevPtr;
  util::Buffer data;
  DeviceInfo info;
};

namespace {
/// Short op-kind labels for metric names (stable, label-safe).
constexpr const char* kOpKindLabel[] = {
    "alloc", "free", "h2d",  "d2h", "launch",
    "check", "info", "peer", "stop"};
}  // namespace

void Accelerator::bind_metrics(obs::Registry* reg) {
  const auto bounds = obs::latency_bounds_ns();
  for (std::size_t k = 0; k + 1 < op_latency_.size(); ++k) {  // skip kStop
    op_latency_[k] = reg->histogram(
        std::string("dacc_fe_op_latency_ns{op=\"") + kOpKindLabel[k] + "\"}",
        bounds);
  }
  metrics_bound_ = reg;
}

bool Accelerator::batchable_op(const ProxyOp& op) {
  switch (op.kind) {
    case ProxyOp::Kind::kAlloc:
    case ProxyOp::Kind::kFree:
    case ProxyOp::Kind::kLaunch:
    case ProxyOp::Kind::kKernelCheck:
      return true;
    default:
      return false;
  }
}

void Accelerator::proxy_main(sim::Context& ctx) {
  dmpi::Mpi mpi(session_->world_, ctx, session_->self_);
  rpc::Channel ch(mpi, session_->comm_, lease_.daemon_rank,
                  rpc::Channel::frontend(session_->self_));
  const rpc::StreamConfig& stream = session_->config().batch;

  // An op pulled off the mailbox while coalescing that cannot join the
  // batch; it is served right after the flush, before blocking again.
  std::unique_ptr<ProxyOp> held;
  for (;;) {
    std::unique_ptr<ProxyOp> op =
        held != nullptr ? std::move(held) : ops_->get(ctx);
    if (op->kind == ProxyOp::Kind::kStop) {
      op->result->complete(Result::kSuccess);
      return;
    }
    if (stream.enabled && batchable_op(*op)) {
      // Greedy flush-rule implementation: everything already enqueued at
      // this instant coalesces (up to the watermark). A synchronous caller
      // blocks on its future, so its op is always alone here and goes out
      // on the unchanged legacy frame; async bursts build real batches.
      std::vector<std::unique_ptr<ProxyOp>> group;
      group.push_back(std::move(op));
      while (group.size() < stream.watermark) {
        std::optional<std::unique_ptr<ProxyOp>> next = ops_->try_get();
        if (!next.has_value()) break;
        if (!batchable_op(**next)) {  // includes kStop
          held = std::move(*next);
          break;
        }
        group.push_back(std::move(*next));
      }
      if (group.size() == 1) {
        execute_one(ch, ctx, *group.front());
      } else {
        execute_batch(ch, ctx, group);
      }
      continue;
    }
    execute_one(ch, ctx, *op);
  }
}

void Accelerator::execute_one(rpc::Channel& ch, sim::Context& ctx,
                              ProxyOp& op) {
  const proto::ProtoParams& pp = session_->config().proto;
  sim::Engine& engine = session_->world_.engine();
  const SimTime op_begin = ctx.now();
  ctx.wait_for(pp.fe_marshal);  // request marshalling on the CN CPU
  sim::Tracer* const tracer = engine.tracer();
  const std::string label = tracer != nullptr ? op_label(op) : std::string{};
  // Causal trace context: one trace per front-end API call. The root span
  // id doubles as the trace id; it rides the request headers into the
  // daemon (and its NIC hops) so the whole chain stitches together.
  std::uint64_t trace_id = 0;
  if (tracer != nullptr) {
    trace_id = (std::uint64_t{1} << 56) |
               (static_cast<std::uint64_t>(session_->self_) << 40) |
               (static_cast<std::uint64_t>(lease_.daemon_rank) << 24) |
               ++trace_seq_;
    engine.set_current_trace({trace_id, trace_id});
  }
  exec_op(ch, ctx, op);
  if (tracer != nullptr) {
    engine.set_current_trace({});
    const std::string track = "fe-r" + std::to_string(session_->self_) +
                              "-ac" + std::to_string(lease_.daemon_rank);
    tracer->record(track, label, op_begin, ctx.now(), trace_id, trace_id,
                   /*parent_id=*/0);
  }
  if (obs::Registry* reg = engine.metrics()) {
    if (metrics_bound_ != reg) bind_metrics(reg);
    op_latency_[static_cast<std::size_t>(op.kind)].observe(
        static_cast<std::uint64_t>(ctx.now() - op_begin));
  }
}

rpc::BatchItem Accelerator::to_batch_item(const ProxyOp& op) const {
  rpc::BatchItem item;
  switch (op.kind) {
    case ProxyOp::Kind::kAlloc:
      item.op = Op::kMemAlloc;
      item.arg = op.bytes;
      break;
    case ProxyOp::Kind::kFree:
      item.op = Op::kMemFree;
      item.arg = to_device(op.dst);
      break;
    case ProxyOp::Kind::kKernelCheck:
      item.op = Op::kKernelCreate;
      item.kernel = op.kernel;
      break;
    case ProxyOp::Kind::kLaunch:
      item.op = Op::kKernelRun;
      item.kernel = op.kernel;
      item.launch = op.launch;
      item.args = op.args;
      for (gpu::KernelArg& a : item.args) {
        if (auto* p = std::get_if<gpu::DevPtr>(&a)) *p = to_device(*p);
      }
      break;
    default:
      throw std::logic_error("to_batch_item: op is not batchable");
  }
  return item;
}

bool Accelerator::attempt_batch(
    rpc::Channel& ch, const std::vector<std::unique_ptr<ProxyOp>>& group,
    std::vector<rpc::BatchResult>* out, SimTime deadline) {
  // Items are rebuilt per attempt: pointer translation must see the table
  // the *current* lease's replay produced.
  std::vector<rpc::BatchItem> items;
  items.reserve(group.size());
  for (const std::unique_ptr<ProxyOp>& op : group) {
    items.push_back(to_batch_item(*op));
  }
  const int reply_tag = ch.next_reply_tag();
  WireWriter w = ch.request(Op::kBatch, reply_tag);
  rpc::encode_batch(w, items);
  std::optional<util::Buffer> resp =
      ch.exchange(w.finish(), reply_tag, deadline);
  if (!resp.has_value()) return false;
  *out = rpc::decode_batch_reply(std::move(*resp), group.size());
  return true;
}

void Accelerator::execute_batch(rpc::Channel& ch, sim::Context& ctx,
                                std::vector<std::unique_ptr<ProxyOp>>& group) {
  const proto::ProtoParams& pp = session_->config().proto;
  sim::Engine& engine = session_->world_.engine();
  const RetryPolicy& rp = session_->config().retry;
  const SimTime begin = ctx.now();
  // Marshalling still costs the CN CPU once per sub-request; batching
  // amortises the messaging, not the encoding.
  ctx.wait_for(pp.fe_marshal * static_cast<SimDuration>(group.size()));
  sim::Tracer* const tracer = engine.tracer();
  std::uint64_t trace_id = 0;
  if (tracer != nullptr) {
    trace_id = (std::uint64_t{1} << 56) |
               (static_cast<std::uint64_t>(session_->self_) << 40) |
               (static_cast<std::uint64_t>(lease_.daemon_rank) << 24) |
               ++trace_seq_;
    engine.set_current_trace({trace_id, trace_id});
  }

  bool revoked_dead_end = false;
  std::uint32_t revoke_reason = arm::kRevokeFailure;
  if (rp.replace_on_failure && consume_revocation(ch, &revoke_reason) &&
      !try_replace(ch, ctx, revoke_reason != arm::kRevokePreempted)) {
    revoked_dead_end = true;
  }
  if (revoked_dead_end) {
    for (std::unique_ptr<ProxyOp>& op : group) {
      op->result->complete(Result::kUnavailable);
    }
  } else {
    std::vector<rpc::BatchResult> results;
    const bool answered = rpc::with_retry(ctx, rp, [&](SimTime deadline) {
      return attempt_batch(ch, group, &results, deadline);
    });
    if (!answered) {
      // The daemon went silent mid-stream. Replace it if policy allows and
      // push every sub-request through the single-op path (which replays
      // and retries on the fresh lease); otherwise the whole group fails.
      if (obs::FlightRecorder* fr = engine.flight()) {
        fr->note(ctx.now(), "fe",
                 "batch[" + std::to_string(group.size()) + "]: retry ladder " +
                     "exhausted on ac" + std::to_string(lease_.daemon_rank),
                 trace_id);
      }
      if (try_replace(ch, ctx, /*broken=*/true)) {
        for (std::unique_ptr<ProxyOp>& op : group) exec_op(ch, ctx, *op);
      } else {
        for (std::unique_ptr<ProxyOp>& op : group) {
          op->result->complete(Result::kUnavailable);
        }
      }
    } else {
      ch.note_flush(static_cast<std::uint32_t>(group.size()));
      bool device_dead = false;
      for (const rpc::BatchResult& r : results) {
        if (r.status == Result::kEccError) device_dead = true;
      }
      // Commit the successes first: they belong to the replay log, so a
      // replacement triggered by a failed sibling reconstructs them too.
      std::vector<std::size_t> failed;
      for (std::size_t i = 0; i < group.size(); ++i) {
        ProxyOp& op = *group[i];
        if (results[i].status == Result::kSuccess) {
          AttemptOut out;
          out.status = Result::kSuccess;
          out.ptr = results[i].ptr;
          commit(op, out);
          op.result->ptr = out.ptr;
          op.result->complete(Result::kSuccess);
        } else {
          failed.push_back(i);
        }
      }
      if (!failed.empty()) {
        if (device_dead) {
          if (obs::FlightRecorder* fr = engine.flight()) {
            fr->note(ctx.now(), "fe",
                     "batch: ecc failure on ac" +
                         std::to_string(lease_.daemon_rank) + ", " +
                         std::to_string(failed.size()) +
                         " sub-op(s) need a replacement",
                     trace_id);
          }
        }
        const bool replaced =
            device_dead && try_replace(ch, ctx, /*broken=*/true);
        for (const std::size_t i : failed) {
          if (replaced) {
            exec_op(ch, ctx, *group[i]);  // re-execute on the replacement
          } else {
            group[i]->result->complete(results[i].status);
          }
        }
      }
    }
  }

  if (tracer != nullptr) {
    engine.set_current_trace({});
    const std::string track = "fe-r" + std::to_string(session_->self_) +
                              "-ac" + std::to_string(lease_.daemon_rank);
    tracer->record(track, "batch[" + std::to_string(group.size()) + "]",
                   begin, ctx.now(), trace_id, trace_id, /*parent_id=*/0);
    // One child span per sub-op under the batch span. The id is derived the
    // same way on the daemon side (rpc::batch_sub_span), so its per-sub-op
    // spans parent on these and flow arrows stitch each small op through
    // the batch frame it rode in.
    for (std::size_t i = 0; i < group.size(); ++i) {
      tracer->record(track, op_label(*group[i]), begin, ctx.now(), trace_id,
                     rpc::batch_sub_span(trace_id,
                                         static_cast<std::uint32_t>(i)),
                     /*parent_id=*/trace_id);
    }
  }
  if (obs::Registry* reg = engine.metrics()) {
    if (metrics_bound_ != reg) bind_metrics(reg);
    const auto elapsed = static_cast<std::uint64_t>(ctx.now() - begin);
    for (const std::unique_ptr<ProxyOp>& op : group) {
      op_latency_[static_cast<std::size_t>(op->kind)].observe(elapsed);
    }
  }
}

gpu::DevPtr Accelerator::to_device(gpu::DevPtr app) const {
  if (allocs_.empty()) return app;  // policy off or nothing tracked: identity
  auto it = allocs_.upper_bound(app);
  if (it == allocs_.begin()) return app;
  --it;
  const gpu::DevPtr base = it->first;
  const AllocSpan& span = it->second;
  if (app >= base + span.bytes) return app;
  return span.device_ptr + (app - base);  // interior pointers translate too
}

bool Accelerator::attempt_op(rpc::Channel& ch, sim::Context& ctx,
                             const ProxyOp& op, AttemptOut* out,
                             SimTime deadline) {
  (void)ctx;
  // One request/response exchange on this attempt's private tag pair (bulk
  // data on reply_tag + 1). The reply receive is posted before the request
  // goes out; on deadline expiry it is cancelled, so a late response parks
  // harmlessly on an abandoned tag.
  const int reply_tag = ch.next_reply_tag();
  const int data_tag = reply_tag + 1;
  auto exchange = [&](util::Buffer request) {
    return ch.exchange(std::move(request), reply_tag, deadline);
  };
  auto header = [&](Op o) { return ch.request(o, reply_tag); };

  switch (op.kind) {
    case ProxyOp::Kind::kAlloc: {
      auto resp = exchange(header(Op::kMemAlloc).u64(op.bytes).finish());
      if (!resp) return false;
      WireReader r(std::move(*resp));
      out->status = r.result();
      out->ptr = r.u64();
      return true;
    }
    case ProxyOp::Kind::kFree: {
      auto resp =
          exchange(header(Op::kMemFree).u64(to_device(op.dst)).finish());
      if (!resp) return false;
      out->status = WireReader(std::move(*resp)).result();
      return true;
    }
    case ProxyOp::Kind::kH2D: {
      dmpi::Request reply = ch.post_reply(reply_tag);
      ch.send_request(header(Op::kMemcpyHtoD)
                          .u64(to_device(op.dst))
                          .u64(op.data.size())
                          .transfer_config(op.transfer)
                          .finish());
      try {
        // view(): the payload stays in the op so a retry (or a replacement
        // replay) can resend it.
        proto::send_blocks(ch.mpi(), ch.comm(), ch.server(), op.data.view(),
                           op.transfer, data_tag, deadline);
      } catch (const proto::TransferTimeout&) {
        ch.mpi().cancel(reply);
        return false;
      }
      if (!ch.finish(reply, deadline)) return false;
      out->status = WireReader(reply.take_payload()).result();
      return true;
    }
    case ProxyOp::Kind::kD2H: {
      auto resp = exchange(header(Op::kMemcpyDtoH)
                               .u64(to_device(op.src))
                               .u64(op.bytes)
                               .transfer_config(op.transfer)
                               .finish());
      if (!resp) return false;
      const Result pre = WireReader(std::move(*resp)).result();
      if (pre != Result::kSuccess) {
        out->status = pre;
        return true;
      }
      try {
        out->data = proto::recv_assemble(ch.mpi(), ch.comm(), ch.server(),
                                         op.bytes, op.transfer, data_tag,
                                         deadline);
      } catch (const proto::TransferTimeout&) {
        return false;
      }
      dmpi::Request fin = ch.post_reply(reply_tag);
      if (!ch.finish(fin, deadline)) return false;
      out->status = WireReader(fin.take_payload()).result();
      return true;
    }
    case ProxyOp::Kind::kLaunch: {
      gpu::KernelArgs args = op.args;
      for (gpu::KernelArg& a : args) {
        if (auto* p = std::get_if<gpu::DevPtr>(&a)) *p = to_device(*p);
      }
      auto resp = exchange(header(Op::kKernelRun)
                               .str(op.kernel)
                               .launch_config(op.launch)
                               .kernel_args(args)
                               .finish());
      if (!resp) return false;
      out->status = WireReader(std::move(*resp)).result();
      return true;
    }
    case ProxyOp::Kind::kKernelCheck: {
      auto resp = exchange(header(Op::kKernelCreate).str(op.kernel).finish());
      if (!resp) return false;
      out->status = WireReader(std::move(*resp)).result();
      return true;
    }
    case ProxyOp::Kind::kInfo: {
      auto resp = exchange(header(Op::kDeviceInfo).finish());
      if (!resp) return false;
      WireReader r(std::move(*resp));
      out->status = r.result();
      if (out->status == Result::kSuccess) {
        out->info.name = r.str();
        out->info.memory_bytes = r.u64();
        out->info.memory_free = r.u64();
      }
      return true;
    }
    case ProxyOp::Kind::kPeer: {
      auto resp = exchange(
          header(Op::kPeerSend)
              .u64(to_device(op.src))
              .u64(op.bytes)
              .u64(static_cast<std::uint64_t>(op.peer))
              .u64(session_->peer_device_ptr(op.peer, op.peer_dst))
              .transfer_config(op.transfer)
              .finish());
      if (!resp) return false;
      out->status = WireReader(std::move(*resp)).result();
      return true;
    }
    case ProxyOp::Kind::kStop:
      break;  // never reaches the wire
  }
  return true;
}

bool Accelerator::attempt_with_retry(rpc::Channel& ch, sim::Context& ctx,
                                     const ProxyOp& op, AttemptOut* out) {
  const bool answered =
      rpc::with_retry(ctx, session_->config().retry, [&](SimTime deadline) {
        return attempt_op(ch, ctx, op, out, deadline);
      });
  if (answered) ch.note_flush(1);  // a lone op is a command group of one
  return answered;
}

bool Accelerator::consume_revocation(rpc::Channel& ch, std::uint32_t* reason) {
  const dmpi::Rank arm_rank = session_->config().arm_rank;
  if (arm_rank < 0) return false;
  // Replicated ARM: the notice may come from whichever replica led when the
  // revocation committed, so probe any source on the revoke tag.
  const dmpi::Rank src =
      session_->config().arm_replicated() ? dmpi::kAnySource : arm_rank;
  const int tag = arm::kArmRevokeTagBase + lease_.daemon_rank;
  if (!ch.mpi().iprobe(session_->comm_, src, tag)) return false;
  util::Buffer frame = ch.mpi().recv(session_->comm_, src, tag);
  *reason = arm::kRevokeFailure;
  try {
    WireReader r(frame.view());
    *reason = arm::RevokeNotice::decode(r).reason;
  } catch (const proto::WireError&) {
    // A garbled notice still means the lease is gone; treat as failure.
  }
  return true;
}

bool Accelerator::replay(rpc::Channel& ch, sim::Context& ctx,
                         std::uint32_t* ops, std::uint64_t* bytes) {
  // Rebuild the virtual->physical table from scratch; entries re-insert in
  // original order, so interleaved alloc/free histories replay cleanly.
  allocs_.clear();
  for (const std::unique_ptr<ProxyOp>& e : replay_log_) {
    AttemptOut out;
    if (!attempt_with_retry(ch, ctx, *e, &out)) return false;
    if (out.status != Result::kSuccess) return false;
    switch (e->kind) {
      case ProxyOp::Kind::kAlloc:
        allocs_[e->dst] = AllocSpan{e->bytes, out.ptr};
        break;
      case ProxyOp::Kind::kFree:
        allocs_.erase(e->dst);
        break;
      default:
        break;
    }
    ++*ops;
    if (e->kind == ProxyOp::Kind::kH2D) *bytes += e->data.size();
  }
  return true;
}

bool Accelerator::try_replace(rpc::Channel& ch, sim::Context& ctx,
                              bool broken) {
  const RetryPolicy& rp = session_->config().retry;
  if (!rp.replace_on_failure || replacements_ >= rp.max_replacements) {
    return false;
  }
  const dmpi::Rank arm_rank = session_->config().arm_rank;
  if (arm_rank < 0) return false;

  const arm::Lease failed = lease_;
  const std::uint64_t job = session_->config().job_id;
  const SimTime begin = ctx.now();
  arm::ArmClient arm_client(ch.mpi(), session_->comm_,
                            session_->config().arm_endpoints());

  // Make sure the pool knows (idempotent if the liveness sweep beat us to
  // it), give the dead lease back, and take any healthy accelerator. A
  // preempted slot is NOT broken — it is free (or already re-assigned to
  // the preemptor), so reporting it would break a healthy accelerator.
  if (broken) (void)arm_client.report_broken(failed.daemon_rank);
  (void)arm_client.release(job, failed);  // kRevoked/kUnknownHandle: fine
  arm::ResourceRequest rq;
  rq.job = job;
  rq.count = 1;
  rq.wait = true;
  rq.priority = session_->config().priority;
  rq.locality = static_cast<std::int64_t>(session_->self_);
  const std::vector<arm::Lease> leases = arm_client.acquire(rq);
  if (leases.empty()) return false;  // pool can never satisfy us again
  lease_ = leases[0];
  ch.set_server(lease_.daemon_rank);
  ++replacements_;

  // Drop a revocation notice for the dead lease that raced with us.
  const dmpi::Rank stale_src =
      session_->config().arm_replicated() ? dmpi::kAnySource : arm_rank;
  const int stale_tag = arm::kArmRevokeTagBase + failed.daemon_rank;
  while (ch.mpi().iprobe(session_->comm_, stale_src, stale_tag)) {
    (void)ch.mpi().recv(session_->comm_, stale_src, stale_tag);
  }

  std::uint32_t replayed_ops = 0;
  std::uint64_t replayed_bytes = 0;
  if (!replay(ch, ctx, &replayed_ops, &replayed_bytes)) return false;

  arm::ReplayReport report;
  report.failed_rank = failed.daemon_rank;
  report.replacement_rank = lease_.daemon_rank;
  report.job = job;
  report.replayed_ops = replayed_ops;
  report.replayed_bytes = replayed_bytes;
  (void)arm_client.report_replaced(report);

  if (sim::Tracer* tracer = session_->world_.engine().tracer()) {
    tracer->record("fe-r" + std::to_string(session_->self_) + "-ac" +
                       std::to_string(failed.daemon_rank),
                   "replace-ac" + std::to_string(failed.daemon_rank) +
                       "->ac" + std::to_string(lease_.daemon_rank),
                   begin, ctx.now());
  }
  return true;
}

void Accelerator::commit(const ProxyOp& op, AttemptOut& out) {
  if (!session_->config().retry.replace_on_failure) return;
  using Kind = ProxyOp::Kind;
  auto clone = std::make_unique<ProxyOp>();
  clone->kind = op.kind;
  switch (op.kind) {
    case Kind::kAlloc: {
      // Hand the app a virtual pointer; the physical one goes in the table
      // so a replacement can rebind every later use. Alignment mirrors the
      // device allocator so interior arithmetic stays in range.
      const gpu::DevPtr app = next_virtual_;
      next_virtual_ += ((op.bytes + 255) / 256) * 256 + 256;
      allocs_[app] = AllocSpan{op.bytes, out.ptr};
      clone->bytes = op.bytes;
      clone->dst = app;
      replay_log_.push_back(std::move(clone));
      out.ptr = app;
      return;
    }
    case Kind::kFree:
      allocs_.erase(op.dst);
      clone->dst = op.dst;
      replay_log_.push_back(std::move(clone));
      return;
    case Kind::kH2D:
      clone->dst = op.dst;
      clone->data = op.data.view();  // shares the payload store, no copy
      clone->transfer = op.transfer;
      replay_log_.push_back(std::move(clone));
      return;
    case Kind::kLaunch:
      clone->kernel = op.kernel;
      clone->launch = op.launch;
      clone->args = op.args;  // app-level pointers; translated per attempt
      replay_log_.push_back(std::move(clone));
      return;
    default:
      // D2H / info / kernel-check are reads, peer copies are not replayable
      // (the peer's memory is not ours to restore — documented limitation).
      return;
  }
}

void Accelerator::exec_op(rpc::Channel& ch, sim::Context& ctx, ProxyOp& op) {
  Future::State& res = *op.result;
  const RetryPolicy& rp = session_->config().retry;
  for (;;) {
    std::uint32_t reason = arm::kRevokeFailure;
    if (rp.replace_on_failure && consume_revocation(ch, &reason)) {
      // Our lease was revoked — by the liveness sweep (slot dead) or by a
      // higher-priority preemption (slot healthy, not ours to break).
      // Replace before touching the wire either way.
      if (!try_replace(ch, ctx, reason != arm::kRevokePreempted)) {
        res.complete(Result::kUnavailable);
        return;
      }
    }
    AttemptOut out;
    const bool answered = attempt_with_retry(ch, ctx, op, &out);
    if (answered && out.status == Result::kSuccess) {
      commit(op, out);
      res.ptr = out.ptr;
      res.data = std::move(out.data);
      res.info = std::move(out.info);
      res.complete(Result::kSuccess);
      return;
    }
    const bool device_dead = answered && out.status == Result::kEccError;
    if ((device_dead || !answered) && try_replace(ch, ctx, /*broken=*/true)) {
      continue;  // state replayed; re-execute this op on the replacement
    }
    res.complete(answered ? out.status : Result::kUnavailable);
    return;
  }
}

std::string Accelerator::op_label(const ProxyOp& op) {
  using Kind = ProxyOp::Kind;
  auto size_suffix = [&] {
    const std::uint64_t bytes =
        op.kind == Kind::kH2D ? op.data.size() : op.bytes;
    if (bytes >= 1024 * 1024) {
      return " " + std::to_string(bytes / (1024 * 1024)) + "MiB";
    }
    return " " + std::to_string(bytes) + "B";
  };
  switch (op.kind) {
    case Kind::kAlloc:
      return "alloc" + size_suffix();
    case Kind::kFree:
      return "free";
    case Kind::kH2D:
      return "h2d" + size_suffix();
    case Kind::kD2H:
      return "d2h" + size_suffix();
    case Kind::kLaunch:
      return "launch " + op.kernel;
    case Kind::kKernelCheck:
      return "kernel_create " + op.kernel;
    case Kind::kInfo:
      return "device_info";
    case Kind::kPeer:
      return "peer_copy" + size_suffix();
    case Kind::kStop:
      return "stop";
  }
  return "?";
}

Future Accelerator::mem_alloc_async(std::uint64_t bytes) {
  ProxyOp op;
  op.kind = ProxyOp::Kind::kAlloc;
  op.bytes = bytes;
  return enqueue(std::move(op));
}

Future Accelerator::memcpy_h2d_async(gpu::DevPtr dst, util::Buffer src) {
  ProxyOp op;
  op.kind = ProxyOp::Kind::kH2D;
  op.dst = dst;
  op.data = std::move(src);
  op.transfer = transfer_;
  return enqueue(std::move(op));
}

Future Accelerator::memcpy_d2h_async(gpu::DevPtr src, std::uint64_t bytes) {
  ProxyOp op;
  op.kind = ProxyOp::Kind::kD2H;
  op.src = src;
  op.bytes = bytes;
  op.transfer = transfer_;
  return enqueue(std::move(op));
}

Future Accelerator::launch_async(const std::string& kernel,
                                 const gpu::LaunchConfig& config,
                                 gpu::KernelArgs args) {
  ProxyOp op;
  op.kind = ProxyOp::Kind::kLaunch;
  op.kernel = kernel;
  op.launch = config;
  op.args = std::move(args);
  return enqueue(std::move(op));
}

Future Accelerator::copy_to_peer_async(gpu::DevPtr src, Accelerator& peer,
                                       gpu::DevPtr peer_dst,
                                       std::uint64_t bytes) {
  ProxyOp op;
  op.kind = ProxyOp::Kind::kPeer;
  op.src = src;
  op.bytes = bytes;
  op.peer = peer.daemon_rank();
  op.peer_dst = peer_dst;
  op.transfer = transfer_;
  return enqueue(std::move(op));
}

gpu::DevPtr Accelerator::mem_alloc(std::uint64_t bytes) {
  Future f = mem_alloc_async(bytes);
  f.get(session_->ctx_);
  return f.ptr();
}

void Accelerator::mem_free(gpu::DevPtr ptr) {
  ProxyOp op;
  op.kind = ProxyOp::Kind::kFree;
  op.dst = ptr;
  enqueue(std::move(op)).get(session_->ctx_);
}

void Accelerator::memcpy_h2d(gpu::DevPtr dst, util::Buffer src) {
  memcpy_h2d_async(dst, std::move(src)).get(session_->ctx_);
}

util::Buffer Accelerator::memcpy_d2h(gpu::DevPtr src, std::uint64_t bytes) {
  Future f = memcpy_d2h_async(src, bytes);
  f.get(session_->ctx_);
  return f.take_data();
}

void Accelerator::launch(const std::string& kernel,
                         const gpu::LaunchConfig& config,
                         gpu::KernelArgs args) {
  launch_async(kernel, config, std::move(args)).get(session_->ctx_);
}

Kernel Accelerator::kernel_create(const std::string& name) {
  ProxyOp op;
  op.kind = ProxyOp::Kind::kKernelCheck;
  op.kernel = name;
  enqueue(std::move(op)).get(session_->ctx_);
  return Kernel(*this, name);
}

DeviceInfo Accelerator::info() {
  ProxyOp op;
  op.kind = ProxyOp::Kind::kInfo;
  Future f = enqueue(std::move(op));
  f.get(session_->ctx_);
  return f.state_->info;
}

void Accelerator::copy_to_peer(gpu::DevPtr src, Accelerator& peer,
                               gpu::DevPtr peer_dst, std::uint64_t bytes) {
  copy_to_peer_async(src, peer, peer_dst, bytes).get(session_->ctx_);
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

Session::Session(dmpi::World& world, sim::Context& ctx, dmpi::Rank self,
                 const dmpi::Comm& comm, Config config)
    : world_(world),
      ctx_(ctx),
      self_(self),
      comm_(comm),
      config_(config),
      mpi_(world, ctx, self),
      arm_client_(mpi_, comm, config.arm_endpoints()) {}

Session::~Session() {
  // Best effort: stop the proxies (no blocking in a destructor). Proper
  // shutdown — including returning leases to the ARM — is close().
  for (auto& acc : accelerators_) acc->stop_proxy();
}

std::vector<Accelerator*> Session::acquire(std::uint32_t count, bool wait,
                                           const std::string& kind) {
  arm::ResourceRequest rq;
  rq.count = count;
  rq.wait = wait;
  rq.kind = kind;
  return acquire(std::move(rq));
}

std::vector<Accelerator*> Session::acquire(arm::ResourceRequest req) {
  if (req.job == 0) req.job = config_.job_id;
  if (req.priority == arm::kPriorityNormal) req.priority = config_.priority;
  if (req.locality < 0) req.locality = static_cast<std::int64_t>(self_);
  const std::vector<arm::Lease> leases = arm_client_.acquire(req);
  std::vector<Accelerator*> out;
  out.reserve(leases.size());
  for (const arm::Lease& lease : leases) out.push_back(attach(lease));
  return out;
}

Accelerator* Session::attach(arm::Lease lease) {
  accelerators_.push_back(
      std::unique_ptr<Accelerator>(new Accelerator(*this, lease)));
  return accelerators_.back().get();
}

void Session::release(Accelerator* acc) {
  const auto it = std::find_if(
      accelerators_.begin(), accelerators_.end(),
      [&](const auto& p) { return p.get() == acc; });
  if (it == accelerators_.end()) {
    throw std::logic_error("release: accelerator not owned by this session");
  }
  // Drain in-flight operations, then return the lease.
  acc->stop_proxy(&ctx_);
  const arm::Lease lease = acc->lease();
  accelerators_.erase(it);
  (void)arm_client_.release(config_.job_id, lease);
}

void Session::close() {
  if (closed_) return;
  closed_ = true;
  for (auto& acc : accelerators_) {
    acc->stop_proxy(&ctx_);
  }
  accelerators_.clear();
  (void)arm_client_.release_job(config_.job_id);
}

gpu::DevPtr Session::peer_device_ptr(dmpi::Rank peer_daemon,
                                     gpu::DevPtr app) const {
  for (const auto& acc : accelerators_) {
    if (acc->lease_.daemon_rank == peer_daemon) return acc->to_device(app);
  }
  return app;  // peer unknown to this session: assume a physical pointer
}

void Session::wait_all(std::vector<Future>& futures) {
  for (Future& f : futures) f.wait(ctx_);
}

}  // namespace dacc::core
