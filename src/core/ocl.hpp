// OpenCL-flavoured front-end personality.
//
// The paper stresses that the software stack "is extensible to any
// accelerator programming interface and therefore not restricted to CUDA by
// design" (Section IV). This header proves it: a second, OpenCL-shaped API
// (platforms, devices, contexts, command queues, buffers, events) over the
// very same middleware — front-end proxies, wire protocol, daemons, and
// ARM-managed leases underneath. Nothing below the API layer changes.
//
// The subset follows OpenCL 1.2 semantics where they matter:
//  * command queues are in-order per device;
//  * buffers belong to a context and materialize lazily on the device of
//    the first queue that touches them;
//  * enqueue_* calls are asynchronous unless `blocking`, and return events;
//  * finish() drains the queue.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/api.hpp"

namespace dacc::ocl {

class Context;
class CommandQueue;

/// An event: completion handle for an enqueued command.
class Event {
 public:
  Event() = default;
  bool done() const { return !future_.valid() || future_.done(); }
  void wait(sim::Context& ctx) {
    if (future_.valid()) future_.get(ctx);
  }

 private:
  friend class CommandQueue;
  explicit Event(core::Future f) : future_(std::move(f)) {}
  core::Future future_;
};

/// A compute device: one ARM-leased accelerator.
class Device {
 public:
  explicit Device(core::Accelerator* acc) : acc_(acc) {}
  core::Accelerator& accelerator() const { return *acc_; }
  std::string name() const { return acc_->info().name; }

 private:
  core::Accelerator* acc_;
};

/// Platform: the entry point, bound to a middleware session. get_device_ids
/// performs the resource-management acquisition (a real OpenCL platform
/// enumerates; ours leases — the dynamic architecture at work).
class Platform {
 public:
  explicit Platform(core::Session& session) : session_(&session) {}

  /// Leases up to `count` accelerators (optionally of one kind) and exposes
  /// them as OpenCL devices.
  std::vector<Device> get_device_ids(std::uint32_t count,
                                     const std::string& kind = "");

 private:
  core::Session* session_;
};

/// A context-scoped memory object (cl_mem). Lazily allocated per device.
class Mem {
 public:
  std::uint64_t size() const { return size_; }

 private:
  friend class Context;
  friend class CommandQueue;
  Mem(Context* context, std::uint64_t size) : context_(context), size_(size) {}
  Context* context_;
  std::uint64_t size_;
  std::map<core::Accelerator*, gpu::DevPtr> per_device_;
};

/// A kernel object with indexed arguments (clSetKernelArg).
class Kernel {
 public:
  const std::string& name() const { return name_; }
  void set_arg(std::uint32_t index, gpu::KernelArg value);
  void set_arg(std::uint32_t index, Mem& mem);

 private:
  friend class Context;
  friend class CommandQueue;
  explicit Kernel(std::string name) : name_(std::move(name)) {}
  struct Arg {
    bool is_mem = false;
    gpu::KernelArg scalar{};
    Mem* mem = nullptr;
  };
  std::string name_;
  std::vector<Arg> args_;
};

class Context {
 public:
  explicit Context(std::vector<Device> devices);
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  const std::vector<Device>& devices() const { return devices_; }

  /// clCreateBuffer: context-scoped, device allocation is lazy.
  Mem& create_buffer(std::uint64_t size);

  /// clCreateKernel: validated against the first device's registry.
  Kernel& create_kernel(const std::string& name);

  CommandQueue create_queue(std::size_t device_index = 0);

 private:
  friend class CommandQueue;
  std::vector<Device> devices_;
  std::vector<std::unique_ptr<Mem>> buffers_;
  std::vector<std::unique_ptr<Kernel>> kernels_;
};

/// An in-order command queue bound to one device.
class CommandQueue {
 public:
  /// clEnqueueWriteBuffer.
  Event enqueue_write(Mem& mem, util::Buffer data, bool blocking = false);
  /// clEnqueueReadBuffer; always blocking (returns the data).
  util::Buffer enqueue_read(Mem& mem, std::uint64_t size);
  /// clEnqueueNDRangeKernel: global/local sizes map onto the launch config.
  Event enqueue_ndrange(Kernel& kernel, std::uint64_t global_size,
                        std::uint64_t local_size = 64);
  /// clFinish: drains everything enqueued here.
  void finish();

 private:
  friend class Context;
  CommandQueue(Context* context, Device device, sim::Context& sim_ctx)
      : context_(context), device_(device), sim_ctx_(&sim_ctx) {}

  gpu::DevPtr devptr(Mem& mem);

  Context* context_;
  Device device_;
  sim::Context* sim_ctx_;
  std::vector<core::Future> pending_;
};

}  // namespace dacc::ocl
