// The dacc public API — the paper's primary contribution.
//
// This is the computation API of Listing 2 (acMemAlloc / acMemCpy /
// acKernelCreate / acKernelSetArgs / acKernelRun / acMemFree) plus the
// resource-management API of Section III.C (acquire/release through the
// ARM), in idiomatic C++:
//
//   core::Session session(...);                 // one per CN process
//   auto accs = session.acquire(2);             // dynamic assignment
//   Accelerator& ac = *accs[0];
//   gpu::DevPtr d = ac.mem_alloc(bytes);        // acMemAlloc
//   ac.memcpy_h2d(d, host_data);                // acMemCpy (H2D)
//   core::Kernel k = ac.kernel_create("daxpy"); // acKernelCreate
//   k.set_args({n, 2.0, dx, dy});               // acKernelSetArgs
//   k.run({});                                  // acKernelRun
//   auto out = ac.memcpy_d2h(d, bytes);         // acMemCpy (D2H)
//   ac.mem_free(d);                             // acMemFree
//
// Each acquired accelerator is served by a front-end proxy process that
// executes its wire-protocol exchanges in order (CUDA-stream semantics per
// device); the *_async variants return Futures so one compute node can keep
// several network-attached accelerators busy simultaneously — the mechanism
// behind the multi-GPU speedups of Figures 9/10.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "arm/arm.hpp"
#include "dmpi/mpi.hpp"
#include "gpu/device.hpp"
#include "obs/metrics.hpp"
#include "proto/wire.hpp"
#include "rpc/batch.hpp"
#include "rpc/channel.hpp"
#include "sim/sync.hpp"

namespace dacc::core {

class Session;
class Accelerator;

/// Failure-handling policy for front-end requests; lives with the channel
/// layer now (rpc::RetryPolicy), re-exported under its historical name.
using RetryPolicy = rpc::RetryPolicy;

/// Raised by the synchronous API on any middleware or device failure.
class AcError : public std::runtime_error {
 public:
  AcError(gpu::Result code, const std::string& what)
      : std::runtime_error(what + ": " + gpu::to_string(code)), code_(code) {}
  gpu::Result code() const { return code_; }

 private:
  gpu::Result code_;
};

/// Completion handle for asynchronous operations.
class Future {
 public:
  Future() = default;

  bool valid() const { return state_ != nullptr; }
  bool done() const;
  gpu::Result status() const;      ///< once done
  gpu::DevPtr ptr() const;         ///< alloc results
  util::Buffer take_data();        ///< D2H results

  /// Blocks the calling simulated process until the operation completes.
  void wait(sim::Context& ctx);
  /// wait() + throw AcError unless the status is success.
  void get(sim::Context& ctx);

 private:
  friend class Accelerator;
  friend class Session;
  struct State;
  explicit Future(std::shared_ptr<State> state) : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

struct DeviceInfo {
  std::string name;
  std::uint64_t memory_bytes = 0;
  std::uint64_t memory_free = 0;
};

/// Paper-style three-step kernel interface (acKernelCreate / SetArgs / Run).
class Kernel {
 public:
  const std::string& name() const { return name_; }
  void set_args(gpu::KernelArgs args) { args_ = std::move(args); }
  void run(const gpu::LaunchConfig& config = {});
  Future run_async(const gpu::LaunchConfig& config = {});

 private:
  friend class Accelerator;
  Kernel(Accelerator& acc, std::string name) : acc_(&acc), name_(std::move(name)) {}
  Accelerator* acc_;
  std::string name_;
  gpu::KernelArgs args_;
};

/// One exclusively-assigned network-attached accelerator.
class Accelerator {
 public:
  Accelerator(const Accelerator&) = delete;
  Accelerator& operator=(const Accelerator&) = delete;
  ~Accelerator();

  const arm::Lease& lease() const { return lease_; }
  dmpi::Rank daemon_rank() const { return lease_.daemon_rank; }
  Session& session() { return *session_; }

  // --- synchronous computation API (throws AcError) ------------------------
  gpu::DevPtr mem_alloc(std::uint64_t bytes);
  void mem_free(gpu::DevPtr ptr);
  void memcpy_h2d(gpu::DevPtr dst, util::Buffer src);
  util::Buffer memcpy_d2h(gpu::DevPtr src, std::uint64_t bytes);
  void launch(const std::string& kernel, const gpu::LaunchConfig& config,
              gpu::KernelArgs args);
  Kernel kernel_create(const std::string& name);
  DeviceInfo info();

  /// Direct accelerator-to-accelerator copy over the network; the compute
  /// node is not involved in the data path (paper Section III.C).
  void copy_to_peer(gpu::DevPtr src, Accelerator& peer, gpu::DevPtr peer_dst,
                    std::uint64_t bytes);

  // --- asynchronous variants (per-accelerator in-order execution) ----------
  Future mem_alloc_async(std::uint64_t bytes);
  Future memcpy_h2d_async(gpu::DevPtr dst, util::Buffer src);
  Future memcpy_d2h_async(gpu::DevPtr src, std::uint64_t bytes);
  Future launch_async(const std::string& kernel,
                      const gpu::LaunchConfig& config, gpu::KernelArgs args);
  Future copy_to_peer_async(gpu::DevPtr src, Accelerator& peer,
                            gpu::DevPtr peer_dst, std::uint64_t bytes);

  /// Per-call override of the session transfer config (benchmarks sweep
  /// block sizes per copy).
  void set_transfer_config(const proto::TransferConfig& config) {
    transfer_ = config;
  }
  const proto::TransferConfig& transfer_config() const { return transfer_; }

 private:
  friend class Session;
  struct ProxyOp;
  struct AttemptOut;
  /// Replay-table entry: one live allocation, keyed by its app-visible
  /// (virtual) pointer; device_ptr is the current physical pointer on the
  /// leased accelerator and is rewritten wholesale by replay().
  struct AllocSpan {
    std::uint64_t bytes = 0;
    gpu::DevPtr device_ptr = 0;
  };

  Accelerator(Session& session, arm::Lease lease);
  Future enqueue(ProxyOp op);
  void proxy_main(sim::Context& ctx);
  static std::string op_label(const ProxyOp& op);
  /// Registers the per-op-kind latency histograms against `reg` (idempotent;
  /// re-binds if a different registry is attached between runs).
  void bind_metrics(obs::Registry* reg);
  /// Queues the stop op behind all in-flight work; waits for it when a
  /// context is given (release paths) and not from the destructor.
  void stop_proxy(sim::Context* ctx = nullptr);

  /// Full service of one queued op on its own legacy frame: marshalling
  /// cost, trace span, exec_op, latency metrics.
  void execute_one(rpc::Channel& ch, sim::Context& ctx, ProxyOp& op);
  /// Full service of a coalesced group (>= 2 batchable ops) as one kBatch
  /// exchange; per-op commit/completion, shared trace span "batch[N]".
  void execute_batch(rpc::Channel& ch, sim::Context& ctx,
                     std::vector<std::unique_ptr<ProxyOp>>& group);
  /// True for the small control ops the command stream may coalesce
  /// (alloc/free/kernel-create/launch); bulk transfers never batch.
  static bool batchable_op(const ProxyOp& op);
  /// ProxyOp -> wire batch item, translating device pointers per attempt
  /// (the virtual->physical table may change across replacements).
  rpc::BatchItem to_batch_item(const ProxyOp& op) const;

  // --- failure handling (RetryPolicy) --------------------------------------
  /// One wire exchange against the current lease. Returns false on deadline
  /// expiry (outstanding requests cancelled); otherwise fills `out`.
  bool attempt_op(rpc::Channel& ch, sim::Context& ctx, const ProxyOp& op,
                  AttemptOut* out, SimTime deadline);
  /// attempt_op + the policy's timeout/backoff retry loop.
  bool attempt_with_retry(rpc::Channel& ch, sim::Context& ctx,
                          const ProxyOp& op, AttemptOut* out);
  /// One kBatch exchange for the whole group; fills per-op results.
  bool attempt_batch(rpc::Channel& ch,
                     const std::vector<std::unique_ptr<ProxyOp>>& group,
                     std::vector<rpc::BatchResult>* out, SimTime deadline);
  /// Full execution of one queued op: retries, revocation handling,
  /// transparent replacement, result completion.
  void exec_op(rpc::Channel& ch, sim::Context& ctx, ProxyOp& op);
  /// Drains a pending revocation notice for the current lease, if any;
  /// fills `reason` (arm::kRevokeFailure / kRevokePreempted) when found.
  bool consume_revocation(rpc::Channel& ch, std::uint32_t* reason);
  /// release + re-acquire + replay + report_replaced; repoints `ch` at the
  /// replacement daemon. With `broken` the old accelerator is first
  /// reported broken; a preempted lease's slot is healthy (and may already
  /// serve the preemptor), so preemption replacements must not report it.
  bool try_replace(rpc::Channel& ch, sim::Context& ctx, bool broken);
  /// Re-executes the operation log against the (fresh) current lease,
  /// rebuilding the virtual->physical allocation table.
  bool replay(rpc::Channel& ch, sim::Context& ctx, std::uint32_t* ops,
              std::uint64_t* bytes);
  /// Successful-op bookkeeping: appends to the replay log, maintains the
  /// allocation table, and rewrites alloc results to virtual pointers.
  void commit(const ProxyOp& op, AttemptOut& out);
  /// Virtual -> physical pointer translation (identity off-policy or for
  /// pointers outside the table).
  gpu::DevPtr to_device(gpu::DevPtr app) const;

  Session* session_;
  arm::Lease lease_;
  proto::TransferConfig transfer_;
  std::unique_ptr<sim::Mailbox<std::unique_ptr<ProxyOp>>> ops_;
  sim::Process* proxy_ = nullptr;
  bool stopped_ = false;

  std::map<gpu::DevPtr, AllocSpan> allocs_;  // keyed by app (virtual) pointer
  std::vector<std::unique_ptr<ProxyOp>> replay_log_;
  gpu::DevPtr next_virtual_ = 0x5f00'0000'0000ull;
  int replacements_ = 0;
  std::uint64_t trace_seq_ = 0;  ///< per-API-call trace-id sequence

  // Metrics (lazy-bound, no-op handles when no registry is attached).
  obs::Registry* metrics_bound_ = nullptr;
  std::array<obs::Histogram, 9> op_latency_;  ///< indexed by ProxyOp::Kind
};

/// Per-compute-node-process middleware session.
class Session {
 public:
  struct Config {
    dmpi::Rank arm_rank = -1;
    /// Replicated ARM (DESIGN.md §11): every replica endpoint, in replica
    /// order. Empty means the single-ARM deployment ({arm_rank}). Clients
    /// walk the failover ladder across these ranks, so a leader kill is
    /// invisible to the job.
    std::vector<dmpi::Rank> arm_ranks;
    std::uint64_t job_id = 1;
    /// Scheduling priority for every ARM request this session makes
    /// (acquire and post-preemption re-acquire alike). Batch sessions run
    /// at kPriorityBatch and may be preempted by higher classes.
    std::uint32_t priority = arm::kPriorityNormal;
    proto::TransferConfig transfer = proto::TransferConfig::pipeline_adaptive();
    proto::ProtoParams proto;
    RetryPolicy retry;
    /// Command-stream batching (DESIGN.md §10). Defaults to the
    /// DACC_RPC_BATCH environment knob; off unless set.
    rpc::StreamConfig batch = rpc::default_stream_config();

    /// The ARM endpoint set: {arm_rank} unless `arm_ranks` says otherwise.
    std::vector<dmpi::Rank> arm_endpoints() const {
      if (!arm_ranks.empty()) return arm_ranks;
      return {arm_rank};
    }
    bool arm_replicated() const { return arm_ranks.size() > 1; }
  };

  /// `ctx` is the owning compute-node process; `self` its world rank; `comm`
  /// the middleware communicator (normally the world communicator, created
  /// with the help of the ARM — paper Section IV).
  Session(dmpi::World& world, sim::Context& ctx, dmpi::Rank self,
          const dmpi::Comm& comm, Config config);
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // --- resource-management API ---------------------------------------------
  /// Dynamic assignment (paper Figure 3(b)): asks the ARM for `count`
  /// accelerators. Returns fewer than requested only when wait == false and
  /// the pool is exhausted (then: empty). A non-empty `kind` restricts the
  /// grant to that device class ("gpu", "mic", ...).
  std::vector<Accelerator*> acquire(std::uint32_t count, bool wait = false,
                                    const std::string& kind = "");

  /// Typed dynamic assignment: full ResourceRequest control (device class,
  /// minimum memory, gang flag, priority, locality). Fields left at their
  /// defaults are filled from the session: job from config().job_id,
  /// priority from config().priority, locality from the calling rank.
  std::vector<Accelerator*> acquire(arm::ResourceRequest req);

  /// Static assignment (paper Figure 3(a)): wraps leases that the job
  /// launcher already acquired before the job started.
  Accelerator* attach(arm::Lease lease);

  /// Returns one accelerator to the pool.
  void release(Accelerator* acc);

  /// Releases every accelerator and stops the proxies. Called automatically
  /// by the runtime at job end ("accelerators are automatically released").
  void close();

  // --- views ----------------------------------------------------------------
  std::size_t size() const { return accelerators_.size(); }
  Accelerator& operator[](std::size_t i) { return *accelerators_.at(i); }
  arm::ArmClient& arm() { return arm_client_; }
  sim::Context& context() { return ctx_; }
  const Config& config() const { return config_; }

  /// Convenience: wait on many futures.
  void wait_all(std::vector<Future>& futures);

 private:
  friend class Accelerator;

  /// Translates a peer-side app pointer to that accelerator's current
  /// physical pointer (identity when the peer is unknown or untranslated).
  gpu::DevPtr peer_device_ptr(dmpi::Rank peer_daemon, gpu::DevPtr app) const;

  dmpi::World& world_;
  sim::Context& ctx_;
  dmpi::Rank self_;
  const dmpi::Comm& comm_;
  Config config_;
  dmpi::Mpi mpi_;  // the owner process's endpoint view (ARM + sync helpers)
  arm::ArmClient arm_client_;
  std::vector<std::unique_ptr<Accelerator>> accelerators_;
  bool closed_ = false;
};

}  // namespace dacc::core
