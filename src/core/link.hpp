// Uniform handle over a node-local GPU (driver, PCIe path) and a
// network-attached accelerator (dacc middleware path), so the hybrid
// factorizations are written once and run in both of the paper's settings
// ("CUDA local GPU" vs "N network-attached GPUs", Figures 9/10).
//
// Semantics mirror CUDA streams: launches are issued asynchronously and all
// operations on one GPU execute in issue order; d2h acts as a barrier for
// that GPU.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/api.hpp"
#include "gpu/driver.hpp"

namespace dacc::core {

class DeviceLink {
 public:
  virtual ~DeviceLink() = default;

  virtual gpu::DevPtr alloc(std::uint64_t bytes) = 0;
  virtual void free(gpu::DevPtr ptr) = 0;

  /// Blocking upload.
  virtual void h2d(gpu::DevPtr dst, util::Buffer src) = 0;
  /// Nonblocking upload; the returned waiter blocks until delivery. Uploads
  /// to several GPUs can be posted together so a broadcast overlaps.
  virtual std::function<void()> h2d_async(gpu::DevPtr dst,
                                          util::Buffer src) = 0;
  /// Blocking download; also a completion barrier for this GPU's stream.
  virtual util::Buffer d2h(gpu::DevPtr src, std::uint64_t bytes) = 0;

  /// Issues a kernel; execution is ordered after everything issued before.
  virtual void launch(const std::string& kernel, gpu::KernelArgs args) = 0;

  /// Propagates any deferred issue errors.
  virtual void drain() = 0;
};

/// Network-attached accelerator through the ac* API.
class RemoteDeviceLink : public DeviceLink {
 public:
  RemoteDeviceLink(Accelerator& acc, sim::Context& ctx)
      : acc_(&acc), ctx_(&ctx) {}

  gpu::DevPtr alloc(std::uint64_t bytes) override {
    return acc_->mem_alloc(bytes);
  }
  void free(gpu::DevPtr ptr) override { acc_->mem_free(ptr); }
  void h2d(gpu::DevPtr dst, util::Buffer src) override {
    acc_->memcpy_h2d(dst, std::move(src));
  }
  std::function<void()> h2d_async(gpu::DevPtr dst,
                                  util::Buffer src) override {
    Future f = acc_->memcpy_h2d_async(dst, std::move(src));
    sim::Context* ctx = ctx_;
    return [f, ctx]() mutable { f.get(*ctx); };
  }
  util::Buffer d2h(gpu::DevPtr src, std::uint64_t bytes) override {
    drain();
    return acc_->memcpy_d2h(src, bytes);
  }
  void launch(const std::string& kernel, gpu::KernelArgs args) override {
    pending_.push_back(acc_->launch_async(kernel, {}, std::move(args)));
  }
  void drain() override {
    for (Future& f : pending_) f.get(*ctx_);
    pending_.clear();
  }

 private:
  Accelerator* acc_;
  sim::Context* ctx_;
  std::vector<Future> pending_;
};

/// Node-attached GPU through the CUDA-driver facade (PCIe path).
class LocalDeviceLink : public DeviceLink {
 public:
  explicit LocalDeviceLink(gpu::Driver driver) : driver_(std::move(driver)) {}

  gpu::DevPtr alloc(std::uint64_t bytes) override {
    return driver_.mem_alloc(bytes);
  }
  void free(gpu::DevPtr ptr) override { driver_.mem_free(ptr); }
  void h2d(gpu::DevPtr dst, util::Buffer src) override {
    // Order behind issued kernels on the default stream, then copy.
    driver_.synchronize();
    driver_.memcpy_htod(dst, src);
  }
  std::function<void()> h2d_async(gpu::DevPtr dst,
                                  util::Buffer src) override {
    h2d(dst, std::move(src));
    return [] {};
  }
  util::Buffer d2h(gpu::DevPtr src, std::uint64_t bytes) override {
    driver_.synchronize();
    return driver_.memcpy_dtoh(src, bytes);
  }
  void launch(const std::string& kernel, gpu::KernelArgs args) override {
    const gpu::OpHandle op = driver_.launch_async(
        driver_.device().default_stream(), kernel, {}, args);
    if (!op.ok()) throw gpu::DeviceError(op.status, "launch " + kernel);
  }
  void drain() override {}

 private:
  gpu::Driver driver_;
};

}  // namespace dacc::core
