#include "arm/arm.hpp"

#include <algorithm>

#include "sim/trace.hpp"

namespace dacc::arm {

using proto::WireReader;
using proto::WireWriter;

const char* to_string(ArmResult r) {
  switch (r) {
    case ArmResult::kOk:
      return "ok";
    case ArmResult::kInsufficient:
      return "insufficient accelerators";
    case ArmResult::kUnknownHandle:
      return "unknown handle";
    case ArmResult::kNotOwner:
      return "not the owner";
    case ArmResult::kRevoked:
      return "lease revoked";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Liveness wire messages. Full frames (rpc header + payload) so the fuzz
// suite round-trips exactly what travels on kArmRequestTag; one-way
// messages carry reply tag 0.
// ---------------------------------------------------------------------------

util::Buffer Heartbeat::encode() const {
  return rpc::request_header(static_cast<std::uint32_t>(ArmOp::kHeartbeat), 0)
      .u64(static_cast<std::uint64_t>(daemon_rank))
      .u64(seq)
      .u32(device_ok ? 1 : 0)
      .u64(sent_at)
      .finish();
}

Heartbeat Heartbeat::decode(proto::WireReader& r) {
  Heartbeat hb;
  hb.daemon_rank = static_cast<dmpi::Rank>(r.u64());
  hb.seq = r.u64();
  hb.device_ok = r.u32() != 0;
  hb.sent_at = r.u64();
  return hb;
}

util::Buffer SweepRequest::encode() const {
  return rpc::request_header(static_cast<std::uint32_t>(ArmOp::kSweep), 0)
      .u64(period)
      .u32(miss_threshold)
      .u32(fresh ? 1 : 0)
      .finish();
}

SweepRequest SweepRequest::decode(proto::WireReader& r) {
  SweepRequest s;
  s.period = r.u64();
  s.miss_threshold = r.u32();
  s.fresh = r.u32() != 0;
  return s;
}

util::Buffer RevokeNotice::encode() const {
  return WireWriter{}
      .u64(static_cast<std::uint64_t>(daemon_rank))
      .u64(lease_id)
      .u64(job)
      .u64(revoked_at)
      .finish();
}

RevokeNotice RevokeNotice::decode(proto::WireReader& r) {
  RevokeNotice n;
  n.daemon_rank = static_cast<dmpi::Rank>(r.u64());
  n.lease_id = r.u64();
  n.job = r.u64();
  n.revoked_at = r.u64();
  return n;
}

util::Buffer ReplayReport::encode(int reply_tag) const {
  return rpc::request_header(static_cast<std::uint32_t>(ArmOp::kReplaced),
                             reply_tag)
      .u64(static_cast<std::uint64_t>(failed_rank))
      .u64(static_cast<std::uint64_t>(replacement_rank))
      .u64(job)
      .u32(replayed_ops)
      .u64(replayed_bytes)
      .finish();
}

ReplayReport ReplayReport::decode(proto::WireReader& r) {
  ReplayReport rep;
  rep.failed_rank = static_cast<dmpi::Rank>(r.u64());
  rep.replacement_rank = static_cast<dmpi::Rank>(r.u64());
  rep.job = r.u64();
  rep.replayed_ops = r.u32();
  rep.replayed_bytes = r.u64();
  return rep;
}

Arm::Arm(dmpi::World& world, dmpi::Rank self_world_rank,
         std::vector<AcceleratorInfo> pool, QueuePolicy policy)
    : world_(world), self_(self_world_rank), policy_(policy) {
  slots_.reserve(pool.size());
  for (AcceleratorInfo& info : pool) {
    Slot s;
    s.info = std::move(info);
    slots_.push_back(std::move(s));
  }
}

std::uint32_t Arm::free_count(const std::string& kind) const {
  std::uint32_t n = 0;
  for (const Slot& s : slots_) {
    if (s.state == State::kFree && (kind.empty() || s.info.kind == kind)) {
      ++n;
    }
  }
  return n;
}

Arm::Slot* Arm::find_slot(dmpi::Rank daemon_rank) {
  for (Slot& s : slots_) {
    if (s.info.daemon_rank == daemon_rank) return &s;
  }
  return nullptr;
}

void Arm::release_slot(Slot& slot, SimTime now) {
  slot.assigned_total += now - slot.assigned_since;
  slot.state = State::kFree;
  slot.job = 0;
  slot.lease_id = 0;
  slot.owner = -1;
}

bool Arm::was_revoked(std::uint64_t lease_id) const {
  return std::find(revoked_leases_.begin(), revoked_leases_.end(), lease_id) !=
         revoked_leases_.end();
}

void Arm::revoke_slot(rpc::ServerChannel& ch, Slot& slot, SimTime now,
                      const char* cause) {
  if (slot.state == State::kBroken) return;
  if (slot.state == State::kAssigned) {
    slot.assigned_total += now - slot.assigned_since;
    ++revocations_;
    if (metrics_bound_ != nullptr) m_revocations_.add(1);
    revoked_leases_.push_back(slot.lease_id);
    // Unsolicited push so the owner learns of the failure even between its
    // own requests; the tag encodes the daemon so a session holding several
    // leases can tell which one died.
    RevokeNotice notice{slot.info.daemon_rank, slot.lease_id, slot.job, now};
    ch.mpi().send(ch.comm(), slot.owner,
                  kArmRevokeTagBase + slot.info.daemon_rank, notice.encode());
  }
  if (sim::Tracer* tracer = world_.engine().tracer()) {
    tracer->record("arm", std::string(cause) + "-ac" +
                              std::to_string(slot.info.daemon_rank),
                   now, now);
  }
  slot.state = State::kBroken;
  slot.job = 0;
  slot.lease_id = 0;
  slot.owner = -1;
}

void Arm::fail_unsatisfiable(rpc::ServerChannel& ch) {
  for (auto it = queue_.begin(); it != queue_.end();) {
    std::uint32_t alive = 0;
    for (const Slot& s : slots_) {
      if (s.state != State::kBroken &&
          (it->kind.empty() || s.info.kind == it->kind)) {
        ++alive;
      }
    }
    if (it->count > alive) {
      ch.reply(it->client, it->reply_tag,
               WireWriter{}
                   .u32(static_cast<std::uint32_t>(ArmResult::kInsufficient))
                   .u32(0)
                   .finish());
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
}

void Arm::handle_heartbeat(rpc::ServerChannel& ch, const Heartbeat& hb,
                           SimTime now) {
  ++heartbeats_;
  if (metrics_bound_ != nullptr && hb.sent_at != 0 && now >= hb.sent_at) {
    m_heartbeat_latency_ns_.observe(
        static_cast<std::uint64_t>(now - hb.sent_at));
  }
  Slot* slot = find_slot(hb.daemon_rank);
  if (slot == nullptr || slot->state == State::kBroken) return;
  slot->last_beat = now;
  if (!hb.device_ok) {
    // The daemon is alive but its device is dead — no need to wait for the
    // miss threshold.
    revoke_slot(ch, *slot, now, "device-fault");
    fail_unsatisfiable(ch);
  }
}

void Arm::handle_sweep(rpc::ServerChannel& ch, const SweepRequest& sweep,
                       SimTime now) {
  if (sweep.fresh) {
    // First sweep after an idle phase: restart every beat clock instead of
    // comparing against timestamps from the previous activity burst.
    for (Slot& s : slots_) s.last_beat = now;
    return;
  }
  const SimDuration allowance = sweep.period * sweep.miss_threshold;
  bool revoked = false;
  for (Slot& s : slots_) {
    if (s.state == State::kBroken) continue;
    if (now - s.last_beat > allowance) {
      revoke_slot(ch, s, now, "hb-miss");
      revoked = true;
    }
  }
  if (revoked) fail_unsatisfiable(ch);
}

bool Arm::try_grant(rpc::ServerChannel& ch, dmpi::Rank client, int reply_tag,
                    std::uint64_t job, std::uint32_t count,
                    const std::string& kind, SimTime now) {
  if (free_count(kind) < count) return false;
  WireWriter resp;
  resp.u32(static_cast<std::uint32_t>(ArmResult::kOk)).u32(count);
  std::uint32_t granted = 0;
  for (Slot& s : slots_) {
    if (granted == count) break;
    if (s.state != State::kFree) continue;
    if (!kind.empty() && s.info.kind != kind) continue;
    s.state = State::kAssigned;
    s.job = job;
    s.lease_id = next_lease_++;
    s.owner = client;
    s.assigned_since = now;
    resp.u64(static_cast<std::uint64_t>(s.info.daemon_rank)).u64(s.lease_id);
    ++granted;
  }
  acquisitions_ += count;
  ch.reply(client, reply_tag, resp.finish());
  return true;
}

void Arm::handle_acquire(rpc::ServerChannel& ch, dmpi::Rank client,
                         int reply_tag, std::uint64_t job,
                         std::uint32_t count, const std::string& kind,
                         bool wait, SimTime now) {
  if (try_grant(ch, client, reply_tag, job, count, kind, now)) {
    if (metrics_bound_ != nullptr) m_assign_wait_ns_.observe(0);
    return;
  }
  if (wait) {
    queue_.push_back(PendingAcquire{client, reply_tag, job, count, kind, now});
    return;
  }
  ch.reply(client, reply_tag,
           WireWriter{}
               .u32(static_cast<std::uint32_t>(ArmResult::kInsufficient))
               .u32(0)
               .finish());
}

void Arm::drain_queue(rpc::ServerChannel& ch, SimTime now) {
  if (policy_ == QueuePolicy::kFcfs) {
    // Strict FCFS: the head request blocks everything behind it, like a
    // batch queue without backfill.
    while (!queue_.empty()) {
      const PendingAcquire& head = queue_.front();
      if (!try_grant(ch, head.client, head.reply_tag, head.job, head.count,
                     head.kind, now)) {
        return;
      }
      if (metrics_bound_ != nullptr) {
        m_assign_wait_ns_.observe(
            static_cast<std::uint64_t>(now - head.enqueued_at));
      }
      queue_.pop_front();
    }
    return;
  }
  // Backfill: serve any satisfiable request, preserving relative order
  // among the ones that fit (EASY-style, without reservations).
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (try_grant(ch, it->client, it->reply_tag, it->job, it->count,
                  it->kind, now)) {
      if (metrics_bound_ != nullptr) {
        m_assign_wait_ns_.observe(
            static_cast<std::uint64_t>(now - it->enqueued_at));
      }
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
}

void Arm::bind_metrics(obs::Registry* reg) {
  metrics_bound_ = reg;
  if (reg == nullptr) {
    m_assigned_ = obs::Gauge{};
    m_assign_wait_ns_ = obs::Histogram{};
    m_heartbeat_latency_ns_ = obs::Histogram{};
    m_revocations_ = obs::Counter{};
    return;
  }
  m_assigned_ = reg->gauge("dacc_arm_assigned");
  m_assign_wait_ns_ =
      reg->histogram("dacc_arm_assign_wait_ns", obs::latency_bounds_ns());
  m_heartbeat_latency_ns_ = reg->histogram("dacc_arm_heartbeat_latency_ns",
                                           obs::latency_bounds_ns());
  m_revocations_ = reg->counter("dacc_arm_revocations_total");
}

void Arm::run(sim::Context& ctx) {
  dmpi::Mpi mpi(world_, ctx, self_);
  rpc::ServerChannel channel(
      mpi, world_.world_comm(),
      rpc::ServerChannel::Options{kArmRequestTag, /*min_reply_tag=*/0});
  for (;;) {
    dmpi::Rank source = -1;
    util::Buffer msg = channel.raw(&source);
    // Bookkeeping cost of one management request.
    ctx.wait_for(1'000);
    obs::Registry* reg = world_.engine().metrics();
    if (reg != metrics_bound_) bind_metrics(reg);
    bool shutdown = false;
    try {
      rpc::Inbound in = channel.decode(source, std::move(msg));
      const ArmOp op = in.op<ArmOp>();
      const int reply_tag = in.reply_tag;
      WireReader& req = in.body;
      switch (op) {
        case ArmOp::kAcquire: {
          const std::uint64_t job = req.u64();
          const std::uint32_t count = req.u32();
          const bool wait = req.u32() != 0;
          const std::string kind = req.str();
          handle_acquire(channel, in.source, reply_tag, job, count, kind,
                         wait, ctx.now());
          break;
        }
        case ArmOp::kRelease: {
          const std::uint64_t job = req.u64();
          const auto rank = static_cast<dmpi::Rank>(req.u64());
          const std::uint64_t lease_id = req.u64();
          ArmResult r = ArmResult::kOk;
          Slot* slot = find_slot(rank);
          if (slot == nullptr || slot->state != State::kAssigned ||
              slot->lease_id != lease_id) {
            // Distinguish "that lease was revoked under you" from plain
            // misuse so recovering clients can treat it as already-released.
            r = was_revoked(lease_id) ? ArmResult::kRevoked
                                      : ArmResult::kUnknownHandle;
          } else if (slot->job != job) {
            r = ArmResult::kNotOwner;
          } else {
            release_slot(*slot, ctx.now());
          }
          channel.reply(in.source, reply_tag,
                        WireWriter{}.u32(static_cast<std::uint32_t>(r))
                            .finish());
          drain_queue(channel, ctx.now());
          break;
        }
        case ArmOp::kReleaseJob: {
          const std::uint64_t job = req.u64();
          for (Slot& s : slots_) {
            if (s.state == State::kAssigned && s.job == job) {
              release_slot(s, ctx.now());
            }
          }
          channel.reply(in.source, reply_tag,
                        WireWriter{}
                            .u32(static_cast<std::uint32_t>(ArmResult::kOk))
                            .finish());
          drain_queue(channel, ctx.now());
          break;
        }
        case ArmOp::kReportBroken: {
          const auto rank = static_cast<dmpi::Rank>(req.u64());
          Slot* slot = find_slot(rank);
          ArmResult r = ArmResult::kOk;
          if (slot == nullptr) {
            r = ArmResult::kUnknownHandle;
          } else {
            if (slot->state == State::kAssigned) {
              slot->assigned_total += ctx.now() - slot->assigned_since;
            }
            slot->state = State::kBroken;
            slot->job = 0;
            slot->lease_id = 0;
            slot->owner = -1;
            if (sim::Tracer* tracer = world_.engine().tracer()) {
              tracer->record("arm", "reported-ac" + std::to_string(rank),
                             ctx.now(), ctx.now());
            }
          }
          channel.reply(in.source, reply_tag,
                        WireWriter{}.u32(static_cast<std::uint32_t>(r))
                            .finish());
          fail_unsatisfiable(channel);
          break;
        }
        case ArmOp::kStats: {
          const PoolStats s = stats();
          channel.reply(in.source, reply_tag,
                        WireWriter{}
                            .u32(static_cast<std::uint32_t>(ArmResult::kOk))
                            .u32(s.total)
                            .u32(s.free)
                            .u32(s.assigned)
                            .u32(s.broken)
                            .u64(s.acquisitions)
                            .u32(s.queued_requests)
                            .u64(s.heartbeats)
                            .u32(s.revocations)
                            .u32(s.replacements)
                            .finish());
          break;
        }
        case ArmOp::kHeartbeat: {
          handle_heartbeat(channel, Heartbeat::decode(req), ctx.now());
          break;  // one-way, no reply
        }
        case ArmOp::kSweep: {
          handle_sweep(channel, SweepRequest::decode(req), ctx.now());
          break;  // one-way, no reply
        }
        case ArmOp::kReplaced: {
          const ReplayReport report = ReplayReport::decode(req);
          ++replacements_;
          if (sim::Tracer* tracer = world_.engine().tracer()) {
            tracer->record(
                "arm",
                "replaced-ac" + std::to_string(report.failed_rank) + "->ac" +
                    std::to_string(report.replacement_rank),
                ctx.now(), ctx.now());
          }
          channel.reply(in.source, reply_tag,
                        WireWriter{}
                            .u32(static_cast<std::uint32_t>(ArmResult::kOk))
                            .finish());
          break;
        }
        case ArmOp::kShutdown:
          channel.reply(in.source, reply_tag,
                        WireWriter{}
                            .u32(static_cast<std::uint32_t>(ArmResult::kOk))
                            .finish());
          shutdown = true;
          break;
      }
    } catch (const proto::WireError&) {
      // Malformed management frame (fuzzed or corrupted): drop it and keep
      // serving — the pool must outlive bad clients.
    }
    if (shutdown) return;
    if (metrics_bound_ != nullptr) {
      // Pool-utilization gauge: sample the assigned count after every
      // request (each mutation flows through this loop).
      std::int64_t assigned = 0;
      for (const Slot& s : slots_) {
        if (s.state == State::kAssigned) ++assigned;
      }
      m_assigned_.set(assigned);
    }
  }
}

PoolStats Arm::stats() const {
  PoolStats s;
  s.total = static_cast<std::uint32_t>(slots_.size());
  for (const Slot& slot : slots_) {
    switch (slot.state) {
      case State::kFree:
        ++s.free;
        break;
      case State::kAssigned:
        ++s.assigned;
        break;
      case State::kBroken:
        ++s.broken;
        break;
    }
  }
  s.acquisitions = acquisitions_;
  s.queued_requests = static_cast<std::uint32_t>(queue_.size());
  s.heartbeats = heartbeats_;
  s.revocations = revocations_;
  s.replacements = replacements_;
  return s;
}

std::vector<double> Arm::utilization(SimTime now) const {
  std::vector<double> out;
  out.reserve(slots_.size());
  for (const Slot& s : slots_) {
    SimDuration busy = s.assigned_total;
    if (s.state == State::kAssigned) busy += now - s.assigned_since;
    out.push_back(now == 0 ? 0.0
                           : static_cast<double>(busy) /
                                 static_cast<double>(now));
  }
  return out;
}

// ---------------------------------------------------------------------------
// ArmClient
// ---------------------------------------------------------------------------

namespace {
rpc::Channel::Options arm_client_options() {
  rpc::Channel::Options o;
  o.request_tag = kArmRequestTag;
  o.reply_tag_base = kArmReplyTagBase;
  o.reply_tag_span = 1'000'000;
  o.tag_stride = 1;
  o.endpoint_tags = true;
  return o;
}
}  // namespace

ArmClient::ArmClient(dmpi::Mpi& mpi, const dmpi::Comm& comm,
                     dmpi::Rank arm_rank)
    : channel_(mpi, comm, arm_rank, arm_client_options()) {}

WireReader ArmClient::call(util::Buffer frame, int reply_tag) {
  // ARM exchanges have no deadline: acquires may legitimately queue at the
  // pool until capacity frees up.
  return WireReader(*channel_.exchange(std::move(frame), reply_tag));
}

std::vector<Lease> ArmClient::acquire(std::uint64_t job, std::uint32_t count,
                                      bool wait, const std::string& kind) {
  const int reply_tag = channel_.next_reply_tag();
  WireReader resp = call(channel_.request(ArmOp::kAcquire, reply_tag)
                             .u64(job)
                             .u32(count)
                             .u32(wait ? 1 : 0)
                             .str(kind)
                             .finish(),
                         reply_tag);
  const auto result = static_cast<ArmResult>(resp.u32());
  const std::uint32_t granted = resp.u32();
  std::vector<Lease> leases;
  if (result != ArmResult::kOk) return leases;
  leases.reserve(granted);
  for (std::uint32_t i = 0; i < granted; ++i) {
    Lease l;
    l.daemon_rank = static_cast<dmpi::Rank>(resp.u64());
    l.lease_id = resp.u64();
    leases.push_back(l);
  }
  return leases;
}

ArmResult ArmClient::release(std::uint64_t job, const Lease& lease) {
  const int reply_tag = channel_.next_reply_tag();
  return static_cast<ArmResult>(
      call(channel_.request(ArmOp::kRelease, reply_tag)
               .u64(job)
               .u64(static_cast<std::uint64_t>(lease.daemon_rank))
               .u64(lease.lease_id)
               .finish(),
           reply_tag)
          .u32());
}

ArmResult ArmClient::release_job(std::uint64_t job) {
  const int reply_tag = channel_.next_reply_tag();
  return static_cast<ArmResult>(
      call(channel_.request(ArmOp::kReleaseJob, reply_tag).u64(job).finish(),
           reply_tag)
          .u32());
}

ArmResult ArmClient::report_broken(dmpi::Rank daemon_rank) {
  const int reply_tag = channel_.next_reply_tag();
  return static_cast<ArmResult>(
      call(channel_.request(ArmOp::kReportBroken, reply_tag)
               .u64(static_cast<std::uint64_t>(daemon_rank))
               .finish(),
           reply_tag)
          .u32());
}

PoolStats ArmClient::stats() {
  const int reply_tag = channel_.next_reply_tag();
  WireReader resp =
      call(channel_.request(ArmOp::kStats, reply_tag).finish(), reply_tag);
  (void)resp.u32();  // ArmResult::kOk
  PoolStats s;
  s.total = resp.u32();
  s.free = resp.u32();
  s.assigned = resp.u32();
  s.broken = resp.u32();
  s.acquisitions = resp.u64();
  s.queued_requests = resp.u32();
  s.heartbeats = resp.u64();
  s.revocations = resp.u32();
  s.replacements = resp.u32();
  return s;
}

ArmResult ArmClient::report_replaced(const ReplayReport& report) {
  const int reply_tag = channel_.next_reply_tag();
  return static_cast<ArmResult>(
      call(report.encode(reply_tag), reply_tag).u32());
}

void ArmClient::shutdown() {
  const int reply_tag = channel_.next_reply_tag();
  (void)call(channel_.request(ArmOp::kShutdown, reply_tag).finish(),
             reply_tag);
}

}  // namespace dacc::arm
