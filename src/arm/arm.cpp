#include "arm/arm.hpp"

#include <algorithm>

#include "obs/flight.hpp"
#include "sim/trace.hpp"

namespace dacc::arm {

using proto::WireReader;
using proto::WireWriter;

Arm::Arm(dmpi::World& world, dmpi::Rank self_world_rank,
         std::vector<AcceleratorInfo> pool, QueuePolicy policy,
         PlacementMap placement)
    : world_(world), self_(self_world_rank),
      machine_(std::move(pool), policy, "dacc_arm", std::move(placement)) {}

void Arm::run(sim::Context& ctx) {
  dmpi::Mpi mpi(world_, ctx, self_);
  rpc::ServerChannel channel(
      mpi, world_.world_comm(),
      rpc::ServerChannel::Options{kArmRequestTag, /*min_reply_tag=*/0});
  for (;;) {
    dmpi::Rank source = -1;
    util::Buffer msg = channel.raw(&source);
    // Bookkeeping cost of one management request.
    ctx.wait_for(1'000);
    machine_.bind_metrics(world_.engine().metrics());
    bool shutdown = false;
    try {
      rpc::Inbound in = channel.decode(source, std::move(msg));
      Command cmd;
      cmd.client = in.source;
      cmd.reply_tag = in.reply_tag;
      cmd.op = in.op_word;
      cmd.body = in.body.rest();
      ApplyResult result = machine_.apply(cmd, ctx.now());
      shutdown = result.shutdown;
      for (Effect& e : result.effects) {
        switch (e.kind) {
          case Effect::Kind::kReply:
            channel.reply(e.to, e.tag, std::move(e.frame));
            break;
          case Effect::Kind::kNotice:
            channel.mpi().send(channel.comm(), e.to, e.tag,
                               std::move(e.frame));
            break;
          case Effect::Kind::kTrace:
            // Revocations and replacements surface as trace effects; mirror
            // them into the flight recorder for post-mortems.
            if (obs::FlightRecorder* fr = world_.engine().flight()) {
              fr->note(ctx.now(), "arm", e.label,
                       world_.engine().current_trace().trace_id);
            }
            if (sim::Tracer* tracer = world_.engine().tracer()) {
              tracer->record("arm", e.label, ctx.now(), ctx.now());
            }
            break;
        }
      }
    } catch (const proto::WireError&) {
      // Malformed management frame (fuzzed or corrupted): drop it and keep
      // serving — the pool must outlive bad clients.
      if (obs::FlightRecorder* fr = world_.engine().flight()) {
        fr->note(ctx.now(), "arm",
                 "wire-error: dropped malformed frame from r" +
                     std::to_string(source));
      }
    }
    if (shutdown) return;
    machine_.sample_assigned();
  }
}

PoolStats Arm::stats() const { return machine_.stats(); }

std::vector<double> Arm::utilization(SimTime now) const {
  return machine_.utilization(now);
}

// ---------------------------------------------------------------------------
// ArmClient
// ---------------------------------------------------------------------------

namespace {
rpc::Channel::Options arm_client_options(bool replicated) {
  rpc::Channel::Options o;
  o.request_tag = kArmRequestTag;
  o.reply_tag_base = kArmReplyTagBase;
  o.reply_tag_span = 1'000'000;
  o.tag_stride = 1;
  o.endpoint_tags = true;
  // With several replicas the answer to a resent request may come from a
  // replica other than the one last addressed (the old leader's queued
  // grant, say); the reply tag alone identifies the request.
  o.any_source_replies = replicated;
  return o;
}
}  // namespace

ArmClient::ArmClient(dmpi::Mpi& mpi, const dmpi::Comm& comm,
                     dmpi::Rank arm_rank)
    : channel_(mpi, comm, arm_rank, arm_client_options(false)),
      endpoints_{arm_rank} {}

ArmClient::ArmClient(dmpi::Mpi& mpi, const dmpi::Comm& comm,
                     std::vector<dmpi::Rank> arm_ranks)
    : channel_(mpi, comm, arm_ranks.at(0),
               arm_client_options(arm_ranks.size() > 1)),
      endpoints_(std::move(arm_ranks)) {}

WireReader ArmClient::call(util::Buffer frame, int reply_tag) {
  if (endpoints_.size() == 1) {
    // Single ARM: exchanges have no deadline — acquires may legitimately
    // queue at the pool until capacity frees up.
    return WireReader(*channel_.exchange(frame.view(), reply_tag));
  }
  // Replicated ARM failover ladder (DESIGN.md §11): resend the identical
  // frame — same reply tag — until a real answer arrives. kNotLeader
  // redirects re-target the hinted leader immediately; silence for a
  // failover window rotates to the next replica (the addressed one may be
  // dead or partitioned). Resends are safe: the lease machine's reply
  // cache answers duplicates without re-applying them, and a late reply to
  // an earlier attempt matches the still-posted any-source receive.
  for (;;) {
    const SimTime deadline = channel_.mpi().context().now() + failover_timeout_;
    std::optional<util::Buffer> resp =
        channel_.exchange(frame.view(), reply_tag, deadline);
    if (!resp.has_value()) {
      std::size_t at = 0;  // server outside the set: restart at replica 0
      for (std::size_t i = 0; i < endpoints_.size(); ++i) {
        if (endpoints_[i] == channel_.server()) {
          at = (i + 1) % endpoints_.size();
          break;
        }
      }
      if (obs::FlightRecorder* fr =
              channel_.mpi().context().engine().flight()) {
        fr->note(channel_.mpi().context().engine(), "arm-client",
                 "failover: r" + std::to_string(channel_.server()) +
                     " silent, rotating to r" +
                     std::to_string(endpoints_[at]));
      }
      channel_.set_server(endpoints_[at]);
      continue;
    }
    WireReader peek(resp->view());
    if (static_cast<ArmResult>(peek.u32()) == ArmResult::kNotLeader) {
      const auto hint =
          static_cast<dmpi::Rank>(static_cast<std::int64_t>(peek.u64()));
      // Follow the hint only into the configured endpoint set: a stale or
      // corrupted replica must not be able to point the client at an
      // arbitrary rank that will never answer.
      if (hint >= 0 && std::find(endpoints_.begin(), endpoints_.end(),
                                 hint) != endpoints_.end()) {
        if (obs::FlightRecorder* fr =
                channel_.mpi().context().engine().flight()) {
          fr->note(channel_.mpi().context().engine(), "arm-client",
                   "failover: following leader hint to r" +
                       std::to_string(hint));
        }
        channel_.set_server(hint);
      } else {
        // The replica has no leader yet (election in progress): pause one
        // failover window before asking again rather than spinning.
        channel_.mpi().context().wait_for(failover_timeout_);
      }
      continue;
    }
    return WireReader(std::move(*resp));
  }
}

std::vector<Lease> ArmClient::acquire(const ResourceRequest& req) {
  const int reply_tag = channel_.next_reply_tag();
  proto::WireWriter w = channel_.request(ArmOp::kAcquire, reply_tag);
  req.encode_body(w);
  WireReader resp = call(w.finish(), reply_tag);
  const auto result = static_cast<ArmResult>(resp.u32());
  const std::uint32_t granted = resp.u32();
  std::vector<Lease> leases;
  if (result != ArmResult::kOk) return leases;
  leases.reserve(granted);
  for (std::uint32_t i = 0; i < granted; ++i) {
    Lease l;
    l.daemon_rank = static_cast<dmpi::Rank>(resp.u64());
    l.lease_id = resp.u64();
    leases.push_back(l);
  }
  return leases;
}

std::vector<Lease> ArmClient::acquire(std::uint64_t job, std::uint32_t count,
                                      bool wait, const std::string& kind) {
  ResourceRequest rq;
  rq.job = job;
  rq.count = count;
  rq.wait = wait;
  rq.kind = kind;
  return acquire(rq);
}

ArmResult ArmClient::release(std::uint64_t job, const Lease& lease) {
  const int reply_tag = channel_.next_reply_tag();
  return static_cast<ArmResult>(
      call(channel_.request(ArmOp::kRelease, reply_tag)
               .u64(job)
               .u64(static_cast<std::uint64_t>(lease.daemon_rank))
               .u64(lease.lease_id)
               .finish(),
           reply_tag)
          .u32());
}

ArmResult ArmClient::release_job(std::uint64_t job) {
  const int reply_tag = channel_.next_reply_tag();
  return static_cast<ArmResult>(
      call(channel_.request(ArmOp::kReleaseJob, reply_tag).u64(job).finish(),
           reply_tag)
          .u32());
}

ArmResult ArmClient::report_broken(dmpi::Rank daemon_rank) {
  const int reply_tag = channel_.next_reply_tag();
  return static_cast<ArmResult>(
      call(channel_.request(ArmOp::kReportBroken, reply_tag)
               .u64(static_cast<std::uint64_t>(daemon_rank))
               .finish(),
           reply_tag)
          .u32());
}

PoolStats ArmClient::stats() {
  const int reply_tag = channel_.next_reply_tag();
  WireReader resp =
      call(channel_.request(ArmOp::kStats, reply_tag).finish(), reply_tag);
  (void)resp.u32();  // ArmResult::kOk
  PoolStats s;
  s.total = resp.u32();
  s.free = resp.u32();
  s.assigned = resp.u32();
  s.broken = resp.u32();
  s.acquisitions = resp.u64();
  s.queued_requests = resp.u32();
  s.heartbeats = resp.u64();
  s.revocations = resp.u32();
  s.replacements = resp.u32();
  s.preemptions = resp.u32();
  return s;
}

ArmResult ArmClient::report_replaced(const ReplayReport& report) {
  const int reply_tag = channel_.next_reply_tag();
  return static_cast<ArmResult>(
      call(report.encode(reply_tag), reply_tag).u32());
}

void ArmClient::shutdown() {
  const int reply_tag = channel_.next_reply_tag();
  (void)call(channel_.request(ArmOp::kShutdown, reply_tag).finish(),
             reply_tag);
}

}  // namespace dacc::arm
