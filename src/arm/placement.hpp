// Topology view the scheduler places against (DESIGN.md §13.4).
//
// A zone is a group of fabric nodes that are mutually "close" (connected at
// the base wire latency); zone_latency_ns is the representative one-way
// latency between zone pairs. rt::Cluster derives the map from the same
// link-latency overrides that feed the PR 7 shard partitioner, so every ARM
// replica computes the identical map from config alone — and the map still
// travels inside the LeaseMachine snapshot, so a replica restored via
// InstallSnapshot can never disagree with its peers about placement.
//
// The default-constructed map is trivial (every node in zone 0), which makes
// placement a no-op: grants fall back to pure slot-id order, bit-identical
// to the pre-placement scheduler.
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

namespace dacc::arm {

struct PlacementMap {
  /// Zone of each fabric node, indexed by node id (== world rank). Nodes
  /// beyond the vector (and every node, when it is empty) are zone 0.
  std::vector<std::uint32_t> node_zone;
  /// Symmetric zone-pair one-way latency matrix, row-major zones() x
  /// zones(). Missing entries read as 0 (normalize() pads).
  std::vector<std::uint64_t> zone_latency_ns;

  bool trivial() const { return node_zone.empty(); }

  std::uint32_t zones() const {
    std::uint32_t z = 1;
    for (const std::uint32_t v : node_zone) z = std::max(z, v + 1);
    return z;
  }

  std::uint32_t zone_of(std::int64_t node) const {
    if (node < 0 || static_cast<std::size_t>(node) >= node_zone.size()) {
      return 0;
    }
    return node_zone[static_cast<std::size_t>(node)];
  }

  std::uint64_t latency(std::uint32_t a, std::uint32_t b) const {
    const std::size_t idx =
        static_cast<std::size_t>(a) * zones() + static_cast<std::size_t>(b);
    return idx < zone_latency_ns.size() ? zone_latency_ns[idx] : 0;
  }

  /// Pads the latency matrix to zones() x zones() so latency() lookups and
  /// the snapshot codec never index out of range.
  void normalize() {
    const std::size_t need =
        static_cast<std::size_t>(zones()) * static_cast<std::size_t>(zones());
    if (zone_latency_ns.size() < need) zone_latency_ns.resize(need, 0);
  }

  /// Zones sorted by (latency from `from`, zone id) — the deterministic
  /// preference order grants walk, nearest first.
  std::vector<std::uint32_t> order_from(std::uint32_t from) const {
    std::vector<std::uint32_t> order(zones());
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       const std::uint64_t la = latency(from, a);
                       const std::uint64_t lb = latency(from, b);
                       if (la != lb) return la < lb;
                       return a < b;
                     });
    return order;
  }

  bool operator==(const PlacementMap&) const = default;
};

}  // namespace dacc::arm
