// The ARM lease state machine, factored out of the server loop.
//
// The paper's pool manager (Section III.B.2) is a pure function of the
// requests it has processed: slots, the pending queue, revoked lease ids and
// the counters are all derived from the command stream. This file makes
// that explicit. A `Command` is one client request (op word + body, plus
// where the answer goes); `LeaseMachine::apply` consumes it and returns
// `Effect`s — messages to send and trace notes to record — instead of
// touching the network itself.
//
// The split is what makes the ARM replicable (DESIGN.md §11): a Raft
// replica appends Commands to its log and applies them only once committed,
// every replica's machine stays bit-identical, and only the leader executes
// the effects. The single-ARM server (arm.hpp) drives the same machine
// directly, so both deployments share one implementation of the lease
// semantics.
//
// Scheduling model (DESIGN.md §13): acquisitions are typed
// `ResourceRequest`s — device class, minimum memory, count, gang flag,
// priority, locality hint. Free slots are indexed per (kind, memory) class
// and per placement zone; pending requests sit in a (priority, arrival)
// ordered map; assigned slots carry a mirror (class, priority) index so
// arrival-triggered preemption finds its victims without a slot scan.
// Every scheduling decision is O(log n) in the pool/queue size; only
// liveness sweeps walk the slot table.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "arm/placement.hpp"
#include "dmpi/mpi.hpp"
#include "obs/metrics.hpp"
#include "proto/wire.hpp"
#include "util/buffer.hpp"
#include "util/units.hpp"

namespace dacc::arm {

/// Tags for ARM traffic on the middleware communicator. Requests carry a
/// per-request reply tag (>= kArmReplyTagBase) so that several clients
/// sharing one rank endpoint (a job launcher and a running session, say)
/// can never receive each other's responses. Revocation notices are pushed
/// (unsolicited) to the lease holder on kArmRevokeTagBase + daemon_rank.
inline constexpr int kArmRequestTag = 200;
inline constexpr int kArmReplyTagBase = 2'000'000;
inline constexpr int kArmRevokeTagBase = 3'000'000;

enum class ArmOp : std::uint32_t {
  kAcquire = 1,
  kRelease = 2,
  kReleaseJob = 3,
  kReportBroken = 4,
  kStats = 5,
  kShutdown = 6,
  kHeartbeat = 7,  ///< daemon liveness beat (one-way, no reply)
  kSweep = 8,      ///< monitor tick: revoke slots whose beats went missing
  kReplaced = 9,   ///< front-end reports a completed transparent replacement
};

enum class ArmResult : std::uint32_t {
  kOk = 0,
  kInsufficient = 1,   ///< not enough free accelerators (non-waiting mode)
  kUnknownHandle = 2,
  kNotOwner = 3,
  kRevoked = 4,  ///< the lease was already revoked by the liveness sweep
  kNotLeader = 5,  ///< replicated ARM: retry against the hinted leader
};

const char* to_string(ArmResult r);

// --- request model ---------------------------------------------------------

/// Priority classes. Any value up to kMaxPriority is legal on the wire
/// (strict ordering among all values); the named classes are what metrics
/// label and the runtime exposes.
inline constexpr std::uint32_t kPriorityBatch = 0;
inline constexpr std::uint32_t kPriorityNormal = 1;
inline constexpr std::uint32_t kPriorityHigh = 2;
inline constexpr std::uint32_t kPriorityUrgent = 3;
/// Wire bound: a decoded priority above this is a malformed frame.
inline constexpr std::uint32_t kMaxPriority = 7;
/// Number of labelled metric classes (priorities above clamp to the last).
inline constexpr std::uint32_t kPriorityClasses = 4;
const char* priority_class_name(std::uint32_t priority);

/// Version word of the kAcquire body extension (see encode_body).
inline constexpr std::uint32_t kAcquireExtVersion = 1;

/// One typed acquisition. The legacy flat acquire(job, count, wait, kind)
/// maps onto this with every extension field at its default.
struct ResourceRequest {
  std::uint64_t job = 0;
  std::uint32_t count = 1;
  bool wait = false;           ///< queue when not immediately satisfiable
  std::string kind;            ///< device class constraint; empty = any
  std::uint64_t memory_bytes = 0;  ///< minimum device memory; 0 = any
  bool gang = true;            ///< all-or-nothing; false = partial grant ok
  std::uint32_t priority = kPriorityNormal;
  std::int64_t locality = -1;  ///< fabric node to place near; -1 = requester

  // Builder-style setters so call sites read as one fluent request.
  ResourceRequest& with_job(std::uint64_t j) { job = j; return *this; }
  ResourceRequest& with_count(std::uint32_t c) { count = c; return *this; }
  ResourceRequest& with_wait(bool w = true) { wait = w; return *this; }
  ResourceRequest& with_kind(std::string k) { kind = std::move(k); return *this; }
  ResourceRequest& with_memory(std::uint64_t b) { memory_bytes = b; return *this; }
  ResourceRequest& with_gang(bool g) { gang = g; return *this; }
  ResourceRequest& with_priority(std::uint32_t p) { priority = p; return *this; }
  ResourceRequest& with_locality(std::int64_t node) { locality = node; return *this; }

  /// kAcquire body codec. The layout is the legacy prefix (job, count,
  /// wait, kind) followed by a versioned extension (version word, memory,
  /// priority, gang, locality). A frame that ends after the prefix is a
  /// legacy request and decodes to default extension fields; a frame with
  /// trailing bytes must carry a complete, version-1, in-range extension or
  /// the whole decode throws proto::WireError — no partial application.
  void encode_body(proto::WireWriter& w) const;
  static ResourceRequest decode_body(proto::WireReader& r);
};

/// Liveness protocol knobs (paper Section III.A: failed accelerators leave
/// the pool without taking the compute node down). Daemon-side pacers beat
/// every `period`; the monitor sweeps on the same period and revokes a slot
/// once its last beat is older than `miss_threshold` periods.
struct HeartbeatParams {
  bool enabled = false;
  SimDuration period = 1_ms;
  std::uint32_t miss_threshold = 3;
};

// --- liveness wire messages (flat frames on kArmRequestTag) ----------------

/// One daemon liveness beat. `device_ok == false` short-circuits the miss
/// threshold: the daemon itself reports its device dead (ECC error).
struct Heartbeat {
  dmpi::Rank daemon_rank = -1;
  std::uint64_t seq = 0;
  bool device_ok = true;
  /// Simulated send time stamped by the pacer; the ARM turns it into the
  /// heartbeat-delivery-latency metric. 0 = unstamped (legacy senders).
  SimTime sent_at = 0;

  util::Buffer encode() const;
  static Heartbeat decode(proto::WireReader& r);
};

/// Monitor tick. Carries the policy so the ARM itself stays stateless about
/// timing; `fresh` grants one round of amnesty after an idle phase (every
/// slot's beat clock restarts instead of tripping on stale timestamps).
struct SweepRequest {
  SimDuration period = 0;
  std::uint32_t miss_threshold = 0;
  bool fresh = false;

  util::Buffer encode() const;
  static SweepRequest decode(proto::WireReader& r);
};

/// Why a lease was revoked: the slot died, or a higher-priority request
/// preempted it (the slot itself is healthy and returns to the free pool).
inline constexpr std::uint32_t kRevokeFailure = 0;
inline constexpr std::uint32_t kRevokePreempted = 1;

/// Unsolicited push to a lease owner when its slot is revoked. The reason
/// word is a versioned suffix: legacy frames end at revoked_at and decode
/// as kRevokeFailure.
struct RevokeNotice {
  dmpi::Rank daemon_rank = -1;
  std::uint64_t lease_id = 0;
  std::uint64_t job = 0;
  SimTime revoked_at = 0;
  std::uint32_t reason = kRevokeFailure;

  util::Buffer encode() const;
  static RevokeNotice decode(proto::WireReader& r);
};

/// Front-end -> ARM report that a transparent replacement completed and what
/// the replay cost (surfaces in PoolStats::replacements and the trace).
struct ReplayReport {
  dmpi::Rank failed_rank = -1;
  dmpi::Rank replacement_rank = -1;
  std::uint64_t job = 0;
  std::uint32_t replayed_ops = 0;
  std::uint64_t replayed_bytes = 0;

  util::Buffer encode(int reply_tag) const;
  static ReplayReport decode(proto::WireReader& r);
};

/// One accelerator as the ARM sees it.
struct AcceleratorInfo {
  dmpi::Rank daemon_rank = -1;
  std::string device_name;
  std::string kind = "gpu";  ///< constraint key for heterogeneous pools
  std::uint64_t memory_bytes = 0;  ///< device memory (0 = unreported)
};

/// An exclusive lease on one accelerator, identified by the daemon's world
/// rank; the lease id guards against stale releases.
struct Lease {
  dmpi::Rank daemon_rank = -1;
  std::uint64_t lease_id = 0;
};

struct PoolStats {
  std::uint32_t total = 0;
  std::uint32_t free = 0;
  std::uint32_t assigned = 0;
  std::uint32_t broken = 0;
  std::uint64_t acquisitions = 0;
  std::uint32_t queued_requests = 0;
  std::uint64_t heartbeats = 0;     ///< liveness beats processed
  std::uint32_t revocations = 0;    ///< leases revoked by the sweep
  std::uint32_t replacements = 0;   ///< transparent replacements reported
  std::uint32_t preemptions = 0;    ///< leases revoked by priority preemption
};

/// How queued (waiting) acquisitions are served when accelerators free up.
/// Within a priority level; higher priorities always drain first.
enum class QueuePolicy {
  kFcfs,      ///< strict order: the head request blocks everything behind
  kBackfill,  ///< any satisfiable queued request may run (EASY-style)
};

/// One client request as the state machine consumes it: who asked, where
/// the answer goes, and the undecoded op body. This is also the payload of
/// one replicated-log entry — encode/decode round-trip it through the Raft
/// wire format.
struct Command {
  dmpi::Rank client = -1;  ///< origin rank; reply destination
  int reply_tag = 0;       ///< 0 = one-way (heartbeats, sweeps)
  std::uint32_t op = 0;    ///< ArmOp word
  util::Buffer body;       ///< op payload, without the rpc header

  util::Buffer encode() const;
  /// Throws proto::WireError on truncation.
  static Command decode(proto::WireReader& r);
};

/// One externally visible consequence of applying a command. The machine
/// never touches the network: the host (single ARM server, or the Raft
/// leader — followers discard effects) executes these in order.
struct Effect {
  enum class Kind : std::uint32_t {
    kReply,   ///< send `frame` to rank `to` on tag `tag`
    kNotice,  ///< unsolicited push (revocation) to rank `to` on tag `tag`
    kTrace,   ///< record `label` against the ARM trace component
  };
  Kind kind = Kind::kReply;
  dmpi::Rank to = -1;
  int tag = 0;
  util::Buffer frame;
  std::string label;
};

struct ApplyResult {
  std::vector<Effect> effects;
  bool shutdown = false;  ///< the command was kShutdown
};

/// Deterministic lease state machine. All methods are pure with respect to
/// simulated time: `now` comes in as an argument, never from a clock, so
/// replicas applying the same committed command stream at different engine
/// steps still converge on bit-identical state (fingerprint()).
class LeaseMachine {
 public:
  LeaseMachine(std::vector<AcceleratorInfo> pool, QueuePolicy policy,
               std::string metrics_prefix = "dacc_arm",
               PlacementMap placement = {});

  /// Applies one command, returning the messages to send. Commands carrying
  /// a reply tag are idempotent: a re-applied (client, reply_tag) pair
  /// re-emits the cached reply instead of mutating state again — the
  /// at-least-once resend path of the replicated deployment. Throws
  /// proto::WireError on a malformed body (state untouched).
  ApplyResult apply(const Command& cmd, SimTime now);

  /// Header-decodes `cmd`'s body without applying it. Throws
  /// proto::WireError on garbage, so a Raft leader can refuse to append a
  /// command that could never apply cleanly ("no partial application" —
  /// a log entry either applies fully on every replica or is never logged).
  static void validate(const Command& cmd);

  /// True when (client, reply_tag) is already queued at the pool or has a
  /// cached reply — the duplicate-resend test the replicated leader runs
  /// before appending a fresh log entry.
  bool seen(dmpi::Rank client, int reply_tag) const;

  PoolStats stats() const;
  /// Fraction of [0, now] each accelerator spent assigned; index = pool slot.
  std::vector<double> utilization(SimTime now) const;
  std::int64_t assigned_count() const;

  /// Whole-state snapshot: Raft log compaction, InstallSnapshot transfer,
  /// and the chaos tier's cross-backend state comparison all use this one
  /// byte format.
  util::Buffer snapshot() const;
  /// Rebuilds a machine from snapshot() bytes. Accepts the current format
  /// and the pre-scheduler v1 layout (extension fields default). Throws
  /// proto::WireError on truncated or out-of-range input. Metrics stay
  /// unbound.
  static LeaseMachine restore(proto::WireReader& r,
                              std::string metrics_prefix = "dacc_arm");
  /// FNV-1a over snapshot() — the value replicas compare in tests.
  std::uint64_t fingerprint() const;

  /// Registers the machine's metrics against `reg` (idempotent re-bind,
  /// plain pointer compare; nullptr unbinds). The prefix keeps replicas'
  /// series distinct ("dacc_arm" for the single ARM — wire-compatible with
  /// the pre-replication metric names).
  void bind_metrics(obs::Registry* reg);
  /// Samples the assigned-slot gauge (no-op when unbound). The host calls
  /// this after every applied request, mirroring the legacy server loop.
  void sample_assigned();

 private:
  enum class State : std::uint32_t { kFree = 0, kAssigned = 1, kBroken = 2 };
  struct Slot {
    AcceleratorInfo info;
    State state = State::kFree;
    std::uint64_t job = 0;
    std::uint64_t lease_id = 0;
    dmpi::Rank owner = -1;  ///< client world rank holding the lease
    std::uint32_t priority = kPriorityNormal;  ///< of the granting request
    SimTime assigned_since = 0;
    SimDuration assigned_total = 0;
    SimTime last_beat = 0;
  };
  /// (kind, memory) equivalence class of slots — the free-index bucket key.
  /// A pool has as many classes as distinct device models, so walking all
  /// classes is O(1) for any real pool.
  using ClassKey = std::pair<std::string, std::uint64_t>;
  /// Free slots of one class, bucketed per placement zone, ascending ids.
  struct FreeClass {
    std::vector<std::set<std::uint32_t>> zone;
    std::uint32_t total = 0;
  };
  /// Assigned slots of one class, bucketed per owner priority, ascending
  /// ids — the preemption victim index. preempt_for counts and picks
  /// victims (lowest priority, lowest slot) from here instead of scanning
  /// the slot table. Buckets cover the full wire range (strict ordering
  /// among raw values, not just the labelled metric classes).
  struct AssignedClass {
    std::array<std::set<std::uint32_t>, kMaxPriority + 1> by_prio;
  };
  /// Queue order: higher priority first, then arrival (ticket) order.
  struct PendingKey {
    std::uint32_t priority = 0;
    std::uint64_t ticket = 0;
    bool operator<(const PendingKey& o) const {
      if (priority != o.priority) return priority > o.priority;
      return ticket < o.ticket;
    }
  };
  struct PendingAcquire {
    dmpi::Rank client = -1;
    int reply_tag = 0;
    ResourceRequest req;
    SimTime enqueued_at = 0;  ///< for the assignment-wait metric
  };
  struct CachedReply {
    int reply_tag = 0;
    util::Buffer frame;
  };
  /// Bounded per-client reply cache (newest last). Insertion order, so
  /// snapshots are byte-identical across replicas.
  struct ClientReplies {
    dmpi::Rank client = -1;
    std::deque<CachedReply> replies;
  };

  LeaseMachine() = default;  // for restore()

  void emit_reply(std::vector<Effect>& out, dmpi::Rank client, int reply_tag,
                  util::Buffer frame);
  void handle_acquire(std::vector<Effect>& out, dmpi::Rank client,
                      int reply_tag, const ResourceRequest& req, SimTime now);
  bool try_grant(std::vector<Effect>& out, dmpi::Rank client, int reply_tag,
                 const ResourceRequest& req, SimTime now);
  void drain_queue(std::vector<Effect>& out, SimTime now);
  /// Revokes enough strictly-lower-priority leases (healthy slots return to
  /// the free pool) to make `req` grantable, or does nothing. Arrival-
  /// triggered only; returns whether anything was preempted.
  bool preempt_for(std::vector<Effect>& out, const ResourceRequest& req,
                   SimTime now);
  void enqueue_pending(dmpi::Rank client, int reply_tag,
                       const ResourceRequest& req, SimTime now);
  static bool class_matches(const ClassKey& key, const ResourceRequest& req);
  /// Free slots a request could be granted right now / could ever be
  /// granted (non-broken). Both walk the class map, not the slots.
  std::uint32_t free_matching(const ResourceRequest& req) const;
  std::uint32_t alive_matching(const ResourceRequest& req) const;
  std::uint32_t requester_zone(const ResourceRequest& req,
                               dmpi::Rank client) const;
  Slot* find_slot(dmpi::Rank daemon_rank);
  std::int64_t slot_index(dmpi::Rank daemon_rank) const;
  void release_slot(std::uint32_t idx, SimTime now);
  /// Slot leaves the pool for good (fault path): frees the index entry,
  /// decrements the class's alive count, marks kBroken.
  void break_slot(std::uint32_t idx, SimTime now);
  void handle_heartbeat(std::vector<Effect>& out, const Heartbeat& hb,
                        SimTime now);
  void handle_sweep(std::vector<Effect>& out, const SweepRequest& sweep,
                    SimTime now);
  /// Marks the slot broken; an assigned slot additionally has its lease
  /// revoked: the owner is notified and the lease id remembered so a late
  /// release gets kRevoked instead of kUnknownHandle.
  void revoke_slot(std::vector<Effect>& out, std::uint32_t idx, SimTime now,
                   const char* cause);
  /// Preemption flavour of revoke_slot: same notice + revoked-lease
  /// bookkeeping, but the slot is healthy and returns to kFree.
  void preempt_slot(std::vector<Effect>& out, std::uint32_t idx, SimTime now);
  /// After the pool shrinks, queued acquires that can never be satisfied any
  /// more (count > surviving slots of that class) are failed immediately.
  void fail_unsatisfiable(std::vector<Effect>& out);
  bool was_revoked(std::uint64_t lease_id) const;
  const CachedReply* cached(dmpi::Rank client, int reply_tag) const;
  void observe_wait(std::uint32_t priority, std::uint64_t ns);
  static ClassKey key_of(const Slot& s);
  void index_insert_free(std::uint32_t idx);
  void index_erase_free(std::uint32_t idx);
  /// Mirror maintenance for the assigned index. Insert runs after the
  /// slot's owner priority is set; erase runs before it is reset.
  void index_insert_assigned(std::uint32_t idx);
  void index_erase_assigned(std::uint32_t idx);
  /// Mirror maintenance for the per-class pending index: a queued request
  /// is listed under every device class that could satisfy it, so backfill
  /// asks "lowest pending this free class can serve" instead of scanning
  /// the queue.
  void pending_index_insert(const PendingKey& key, const ResourceRequest& rq);
  void pending_index_erase(const PendingKey& key, const ResourceRequest& rq);
  /// Derives every index (rank map, free classes, alive counts, zone
  /// orders, pending-by-client) from the authoritative state. Called from
  /// the constructor and restore(); the snapshot carries no index data.
  void rebuild_indexes();

  QueuePolicy policy_ = QueuePolicy::kFcfs;
  std::vector<Slot> slots_;
  std::map<PendingKey, PendingAcquire> queue_;
  std::vector<std::uint64_t> revoked_leases_;
  std::vector<ClientReplies> reply_cache_;
  PlacementMap placement_;
  std::uint64_t next_lease_ = 1;
  std::uint64_t next_ticket_ = 1;
  std::uint64_t acquisitions_ = 0;
  std::uint64_t heartbeats_ = 0;
  std::uint32_t revocations_ = 0;
  std::uint32_t replacements_ = 0;
  std::uint32_t preemptions_ = 0;

  // Derived indexes (never snapshotted; rebuild_indexes() restores them).
  std::map<dmpi::Rank, std::uint32_t> slot_by_rank_;
  std::map<ClassKey, FreeClass> free_;
  std::map<ClassKey, AssignedClass> assigned_idx_;
  std::map<ClassKey, std::uint32_t> alive_;
  std::map<ClassKey, std::set<PendingKey>> pending_by_class_;
  std::map<std::pair<dmpi::Rank, int>, PendingKey> pending_by_client_;
  std::vector<std::vector<std::uint32_t>> zone_order_;
  std::uint32_t free_total_ = 0;
  std::uint32_t broken_total_ = 0;

  // Metrics (lazy-bound, no-op handles when no registry is attached).
  std::string metrics_prefix_ = "dacc_arm";
  obs::Registry* metrics_bound_ = nullptr;
  obs::Gauge m_assigned_;
  obs::Histogram m_assign_wait_ns_;
  obs::Histogram m_wait_by_class_[kPriorityClasses];
  obs::Histogram m_heartbeat_latency_ns_;
  obs::Counter m_revocations_;
  obs::Counter m_preemptions_;
};

}  // namespace dacc::arm
