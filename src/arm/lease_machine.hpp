// The ARM lease state machine, factored out of the server loop.
//
// The paper's pool manager (Section III.B.2) is a pure function of the
// requests it has processed: slots, the FCFS queue, revoked lease ids and
// the counters are all derived from the command stream. This file makes
// that explicit. A `Command` is one client request (op word + body, plus
// where the answer goes); `LeaseMachine::apply` consumes it and returns
// `Effect`s — messages to send and trace notes to record — instead of
// touching the network itself.
//
// The split is what makes the ARM replicable (DESIGN.md §11): a Raft
// replica appends Commands to its log and applies them only once committed,
// every replica's machine stays bit-identical, and only the leader executes
// the effects. The single-ARM server (arm.hpp) drives the same machine
// directly, so both deployments share one implementation of the lease
// semantics.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "dmpi/mpi.hpp"
#include "obs/metrics.hpp"
#include "proto/wire.hpp"
#include "util/buffer.hpp"
#include "util/units.hpp"

namespace dacc::arm {

/// Tags for ARM traffic on the middleware communicator. Requests carry a
/// per-request reply tag (>= kArmReplyTagBase) so that several clients
/// sharing one rank endpoint (a job launcher and a running session, say)
/// can never receive each other's responses. Revocation notices are pushed
/// (unsolicited) to the lease holder on kArmRevokeTagBase + daemon_rank.
inline constexpr int kArmRequestTag = 200;
inline constexpr int kArmReplyTagBase = 2'000'000;
inline constexpr int kArmRevokeTagBase = 3'000'000;

enum class ArmOp : std::uint32_t {
  kAcquire = 1,
  kRelease = 2,
  kReleaseJob = 3,
  kReportBroken = 4,
  kStats = 5,
  kShutdown = 6,
  kHeartbeat = 7,  ///< daemon liveness beat (one-way, no reply)
  kSweep = 8,      ///< monitor tick: revoke slots whose beats went missing
  kReplaced = 9,   ///< front-end reports a completed transparent replacement
};

enum class ArmResult : std::uint32_t {
  kOk = 0,
  kInsufficient = 1,   ///< not enough free accelerators (non-waiting mode)
  kUnknownHandle = 2,
  kNotOwner = 3,
  kRevoked = 4,  ///< the lease was already revoked by the liveness sweep
  kNotLeader = 5,  ///< replicated ARM: retry against the hinted leader
};

const char* to_string(ArmResult r);

/// Liveness protocol knobs (paper Section III.A: failed accelerators leave
/// the pool without taking the compute node down). Daemon-side pacers beat
/// every `period`; the monitor sweeps on the same period and revokes a slot
/// once its last beat is older than `miss_threshold` periods.
struct HeartbeatParams {
  bool enabled = false;
  SimDuration period = 1_ms;
  std::uint32_t miss_threshold = 3;
};

// --- liveness wire messages (flat frames on kArmRequestTag) ----------------

/// One daemon liveness beat. `device_ok == false` short-circuits the miss
/// threshold: the daemon itself reports its device dead (ECC error).
struct Heartbeat {
  dmpi::Rank daemon_rank = -1;
  std::uint64_t seq = 0;
  bool device_ok = true;
  /// Simulated send time stamped by the pacer; the ARM turns it into the
  /// heartbeat-delivery-latency metric. 0 = unstamped (legacy senders).
  SimTime sent_at = 0;

  util::Buffer encode() const;
  static Heartbeat decode(proto::WireReader& r);
};

/// Monitor tick. Carries the policy so the ARM itself stays stateless about
/// timing; `fresh` grants one round of amnesty after an idle phase (every
/// slot's beat clock restarts instead of tripping on stale timestamps).
struct SweepRequest {
  SimDuration period = 0;
  std::uint32_t miss_threshold = 0;
  bool fresh = false;

  util::Buffer encode() const;
  static SweepRequest decode(proto::WireReader& r);
};

/// Unsolicited push to a lease owner when its slot is revoked.
struct RevokeNotice {
  dmpi::Rank daemon_rank = -1;
  std::uint64_t lease_id = 0;
  std::uint64_t job = 0;
  SimTime revoked_at = 0;

  util::Buffer encode() const;
  static RevokeNotice decode(proto::WireReader& r);
};

/// Front-end -> ARM report that a transparent replacement completed and what
/// the replay cost (surfaces in PoolStats::replacements and the trace).
struct ReplayReport {
  dmpi::Rank failed_rank = -1;
  dmpi::Rank replacement_rank = -1;
  std::uint64_t job = 0;
  std::uint32_t replayed_ops = 0;
  std::uint64_t replayed_bytes = 0;

  util::Buffer encode(int reply_tag) const;
  static ReplayReport decode(proto::WireReader& r);
};

/// One accelerator as the ARM sees it.
struct AcceleratorInfo {
  dmpi::Rank daemon_rank = -1;
  std::string device_name;
  std::string kind = "gpu";  ///< constraint key for heterogeneous pools
};

/// An exclusive lease on one accelerator, identified by the daemon's world
/// rank; the lease id guards against stale releases.
struct Lease {
  dmpi::Rank daemon_rank = -1;
  std::uint64_t lease_id = 0;
};

struct PoolStats {
  std::uint32_t total = 0;
  std::uint32_t free = 0;
  std::uint32_t assigned = 0;
  std::uint32_t broken = 0;
  std::uint64_t acquisitions = 0;
  std::uint32_t queued_requests = 0;
  std::uint64_t heartbeats = 0;     ///< liveness beats processed
  std::uint32_t revocations = 0;    ///< leases revoked by the sweep
  std::uint32_t replacements = 0;   ///< transparent replacements reported
};

/// How queued (waiting) acquisitions are served when accelerators free up.
enum class QueuePolicy {
  kFcfs,      ///< strict order: the head request blocks everything behind
  kBackfill,  ///< any satisfiable queued request may run (EASY-style)
};

/// One client request as the state machine consumes it: who asked, where
/// the answer goes, and the undecoded op body. This is also the payload of
/// one replicated-log entry — encode/decode round-trip it through the Raft
/// wire format.
struct Command {
  dmpi::Rank client = -1;  ///< origin rank; reply destination
  int reply_tag = 0;       ///< 0 = one-way (heartbeats, sweeps)
  std::uint32_t op = 0;    ///< ArmOp word
  util::Buffer body;       ///< op payload, without the rpc header

  util::Buffer encode() const;
  /// Throws proto::WireError on truncation.
  static Command decode(proto::WireReader& r);
};

/// One externally visible consequence of applying a command. The machine
/// never touches the network: the host (single ARM server, or the Raft
/// leader — followers discard effects) executes these in order.
struct Effect {
  enum class Kind : std::uint32_t {
    kReply,   ///< send `frame` to rank `to` on tag `tag`
    kNotice,  ///< unsolicited push (revocation) to rank `to` on tag `tag`
    kTrace,   ///< record `label` against the ARM trace component
  };
  Kind kind = Kind::kReply;
  dmpi::Rank to = -1;
  int tag = 0;
  util::Buffer frame;
  std::string label;
};

struct ApplyResult {
  std::vector<Effect> effects;
  bool shutdown = false;  ///< the command was kShutdown
};

/// Deterministic lease state machine. All methods are pure with respect to
/// simulated time: `now` comes in as an argument, never from a clock, so
/// replicas applying the same committed command stream at different engine
/// steps still converge on bit-identical state (fingerprint()).
class LeaseMachine {
 public:
  LeaseMachine(std::vector<AcceleratorInfo> pool, QueuePolicy policy,
               std::string metrics_prefix = "dacc_arm");

  /// Applies one command, returning the messages to send. Commands carrying
  /// a reply tag are idempotent: a re-applied (client, reply_tag) pair
  /// re-emits the cached reply instead of mutating state again — the
  /// at-least-once resend path of the replicated deployment. Throws
  /// proto::WireError on a malformed body (state untouched).
  ApplyResult apply(const Command& cmd, SimTime now);

  /// Header-decodes `cmd`'s body without applying it. Throws
  /// proto::WireError on garbage, so a Raft leader can refuse to append a
  /// command that could never apply cleanly ("no partial application" —
  /// a log entry either applies fully on every replica or is never logged).
  static void validate(const Command& cmd);

  /// True when (client, reply_tag) is already queued at the pool or has a
  /// cached reply — the duplicate-resend test the replicated leader runs
  /// before appending a fresh log entry.
  bool seen(dmpi::Rank client, int reply_tag) const;

  PoolStats stats() const;
  /// Fraction of [0, now] each accelerator spent assigned; index = pool slot.
  std::vector<double> utilization(SimTime now) const;
  std::int64_t assigned_count() const;

  /// Whole-state snapshot: Raft log compaction, InstallSnapshot transfer,
  /// and the chaos tier's cross-backend state comparison all use this one
  /// byte format.
  util::Buffer snapshot() const;
  /// Rebuilds a machine from snapshot() bytes. Throws proto::WireError on
  /// truncated or out-of-range input. Metrics stay unbound.
  static LeaseMachine restore(proto::WireReader& r,
                              std::string metrics_prefix = "dacc_arm");
  /// FNV-1a over snapshot() — the value replicas compare in tests.
  std::uint64_t fingerprint() const;

  /// Registers the machine's metrics against `reg` (idempotent re-bind,
  /// plain pointer compare; nullptr unbinds). The prefix keeps replicas'
  /// series distinct ("dacc_arm" for the single ARM — wire-compatible with
  /// the pre-replication metric names).
  void bind_metrics(obs::Registry* reg);
  /// Samples the assigned-slot gauge (no-op when unbound). The host calls
  /// this after every applied request, mirroring the legacy server loop.
  void sample_assigned();

 private:
  enum class State : std::uint32_t { kFree = 0, kAssigned = 1, kBroken = 2 };
  struct Slot {
    AcceleratorInfo info;
    State state = State::kFree;
    std::uint64_t job = 0;
    std::uint64_t lease_id = 0;
    dmpi::Rank owner = -1;  ///< client world rank holding the lease
    SimTime assigned_since = 0;
    SimDuration assigned_total = 0;
    SimTime last_beat = 0;
  };
  struct PendingAcquire {
    dmpi::Rank client = -1;
    int reply_tag = 0;
    std::uint64_t job = 0;
    std::uint32_t count = 0;
    std::string kind;         ///< empty = any
    SimTime enqueued_at = 0;  ///< for the assignment-wait metric
  };
  struct CachedReply {
    int reply_tag = 0;
    util::Buffer frame;
  };
  /// Bounded per-client reply cache (newest last). Insertion order, so
  /// snapshots are byte-identical across replicas.
  struct ClientReplies {
    dmpi::Rank client = -1;
    std::deque<CachedReply> replies;
  };

  LeaseMachine() = default;  // for restore()

  void emit_reply(std::vector<Effect>& out, dmpi::Rank client, int reply_tag,
                  util::Buffer frame);
  void handle_acquire(std::vector<Effect>& out, dmpi::Rank client,
                      int reply_tag, std::uint64_t job, std::uint32_t count,
                      const std::string& kind, bool wait, SimTime now);
  bool try_grant(std::vector<Effect>& out, dmpi::Rank client, int reply_tag,
                 std::uint64_t job, std::uint32_t count,
                 const std::string& kind, SimTime now);
  void drain_queue(std::vector<Effect>& out, SimTime now);
  std::uint32_t free_count(const std::string& kind) const;
  Slot* find_slot(dmpi::Rank daemon_rank);
  void release_slot(Slot& slot, SimTime now);
  void handle_heartbeat(std::vector<Effect>& out, const Heartbeat& hb,
                        SimTime now);
  void handle_sweep(std::vector<Effect>& out, const SweepRequest& sweep,
                    SimTime now);
  /// Marks the slot broken; an assigned slot additionally has its lease
  /// revoked: the owner is notified and the lease id remembered so a late
  /// release gets kRevoked instead of kUnknownHandle.
  void revoke_slot(std::vector<Effect>& out, Slot& slot, SimTime now,
                   const char* cause);
  /// After the pool shrinks, queued acquires that can never be satisfied any
  /// more (count > surviving slots of that kind) are failed immediately.
  void fail_unsatisfiable(std::vector<Effect>& out);
  bool was_revoked(std::uint64_t lease_id) const;
  const CachedReply* cached(dmpi::Rank client, int reply_tag) const;

  QueuePolicy policy_ = QueuePolicy::kFcfs;
  std::vector<Slot> slots_;
  std::deque<PendingAcquire> queue_;
  std::vector<std::uint64_t> revoked_leases_;
  std::vector<ClientReplies> reply_cache_;
  std::uint64_t next_lease_ = 1;
  std::uint64_t acquisitions_ = 0;
  std::uint64_t heartbeats_ = 0;
  std::uint32_t revocations_ = 0;
  std::uint32_t replacements_ = 0;

  // Metrics (lazy-bound, no-op handles when no registry is attached).
  std::string metrics_prefix_ = "dacc_arm";
  obs::Registry* metrics_bound_ = nullptr;
  obs::Gauge m_assigned_;
  obs::Histogram m_assign_wait_ns_;
  obs::Histogram m_heartbeat_latency_ns_;
  obs::Counter m_revocations_;
};

}  // namespace dacc::arm
