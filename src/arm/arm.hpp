// Accelerator Resource Manager (ARM).
//
// The ARM is the paper's pool manager (Section III.B.2): it "maintains
// information on which accelerators are available or in use and assigns them
// to compute nodes upon request", with exclusive handles so "different
// processes do not interfere with each other". It supports both assignment
// strategies of Figure 3: static (acquired at job start by the launcher) and
// dynamic (acquired and released at runtime through the resource-management
// API). Acquisitions that cannot be satisfied may either fail immediately or
// queue FCFS until accelerators are released — the batch-script behaviour
// Section V.B describes.
//
// Fault tolerance (Section III.A): an accelerator reported broken is removed
// from the pool; compute nodes are unaffected, and subsequent acquisitions
// simply never see it.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "dmpi/mpi.hpp"
#include "obs/metrics.hpp"
#include "proto/wire.hpp"
#include "rpc/channel.hpp"
#include "util/units.hpp"

namespace dacc::arm {

/// Tags for ARM traffic on the middleware communicator. Requests carry a
/// per-request reply tag (>= kArmReplyTagBase) so that several clients
/// sharing one rank endpoint (a job launcher and a running session, say)
/// can never receive each other's responses. Revocation notices are pushed
/// (unsolicited) to the lease holder on kArmRevokeTagBase + daemon_rank.
inline constexpr int kArmRequestTag = 200;
inline constexpr int kArmReplyTagBase = 2'000'000;
inline constexpr int kArmRevokeTagBase = 3'000'000;

enum class ArmOp : std::uint32_t {
  kAcquire = 1,
  kRelease = 2,
  kReleaseJob = 3,
  kReportBroken = 4,
  kStats = 5,
  kShutdown = 6,
  kHeartbeat = 7,  ///< daemon liveness beat (one-way, no reply)
  kSweep = 8,      ///< monitor tick: revoke slots whose beats went missing
  kReplaced = 9,   ///< front-end reports a completed transparent replacement
};

enum class ArmResult : std::uint32_t {
  kOk = 0,
  kInsufficient = 1,   ///< not enough free accelerators (non-waiting mode)
  kUnknownHandle = 2,
  kNotOwner = 3,
  kRevoked = 4,  ///< the lease was already revoked by the liveness sweep
};

const char* to_string(ArmResult r);

/// Liveness protocol knobs (paper Section III.A: failed accelerators leave
/// the pool without taking the compute node down). Daemon-side pacers beat
/// every `period`; the monitor sweeps on the same period and revokes a slot
/// once its last beat is older than `miss_threshold` periods.
struct HeartbeatParams {
  bool enabled = false;
  SimDuration period = 1_ms;
  std::uint32_t miss_threshold = 3;
};

// --- liveness wire messages (flat frames on kArmRequestTag) ----------------

/// One daemon liveness beat. `device_ok == false` short-circuits the miss
/// threshold: the daemon itself reports its device dead (ECC error).
struct Heartbeat {
  dmpi::Rank daemon_rank = -1;
  std::uint64_t seq = 0;
  bool device_ok = true;
  /// Simulated send time stamped by the pacer; the ARM turns it into the
  /// heartbeat-delivery-latency metric. 0 = unstamped (legacy senders).
  SimTime sent_at = 0;

  util::Buffer encode() const;
  static Heartbeat decode(proto::WireReader& r);
};

/// Monitor tick. Carries the policy so the ARM itself stays stateless about
/// timing; `fresh` grants one round of amnesty after an idle phase (every
/// slot's beat clock restarts instead of tripping on stale timestamps).
struct SweepRequest {
  SimDuration period = 0;
  std::uint32_t miss_threshold = 0;
  bool fresh = false;

  util::Buffer encode() const;
  static SweepRequest decode(proto::WireReader& r);
};

/// Unsolicited push to a lease owner when its slot is revoked.
struct RevokeNotice {
  dmpi::Rank daemon_rank = -1;
  std::uint64_t lease_id = 0;
  std::uint64_t job = 0;
  SimTime revoked_at = 0;

  util::Buffer encode() const;
  static RevokeNotice decode(proto::WireReader& r);
};

/// Front-end -> ARM report that a transparent replacement completed and what
/// the replay cost (surfaces in PoolStats::replacements and the trace).
struct ReplayReport {
  dmpi::Rank failed_rank = -1;
  dmpi::Rank replacement_rank = -1;
  std::uint64_t job = 0;
  std::uint32_t replayed_ops = 0;
  std::uint64_t replayed_bytes = 0;

  util::Buffer encode(int reply_tag) const;
  static ReplayReport decode(proto::WireReader& r);
};

/// One accelerator as the ARM sees it.
struct AcceleratorInfo {
  dmpi::Rank daemon_rank = -1;
  std::string device_name;
  std::string kind = "gpu";  ///< constraint key for heterogeneous pools
};

/// An exclusive lease on one accelerator, identified by the daemon's world
/// rank; the lease id guards against stale releases.
struct Lease {
  dmpi::Rank daemon_rank = -1;
  std::uint64_t lease_id = 0;
};

struct PoolStats {
  std::uint32_t total = 0;
  std::uint32_t free = 0;
  std::uint32_t assigned = 0;
  std::uint32_t broken = 0;
  std::uint64_t acquisitions = 0;
  std::uint32_t queued_requests = 0;
  std::uint64_t heartbeats = 0;     ///< liveness beats processed
  std::uint32_t revocations = 0;    ///< leases revoked by the sweep
  std::uint32_t replacements = 0;   ///< transparent replacements reported
};

class Arm {
 public:
  /// How queued (waiting) acquisitions are served when accelerators free up.
  enum class QueuePolicy {
    kFcfs,      ///< strict order: the head request blocks everything behind
    kBackfill,  ///< any satisfiable queued request may run (EASY-style)
  };

  Arm(dmpi::World& world, dmpi::Rank self_world_rank,
      std::vector<AcceleratorInfo> pool,
      QueuePolicy policy = QueuePolicy::kFcfs);

  /// Service loop; runs until a kShutdown request arrives (or forever as an
  /// engine daemon).
  void run(sim::Context& ctx);

  /// Direct (in-process) views for experiment harnesses.
  PoolStats stats() const;
  /// Fraction of [0, now] each accelerator spent assigned; index = pool slot.
  std::vector<double> utilization(SimTime now) const;

 private:
  enum class State { kFree, kAssigned, kBroken };
  struct Slot {
    AcceleratorInfo info;
    State state = State::kFree;
    std::uint64_t job = 0;
    std::uint64_t lease_id = 0;
    dmpi::Rank owner = -1;  ///< client world rank holding the lease
    SimTime assigned_since = 0;
    SimDuration assigned_total = 0;
    SimTime last_beat = 0;
  };
  struct PendingAcquire {
    dmpi::Rank client = -1;
    int reply_tag = 0;
    std::uint64_t job = 0;
    std::uint32_t count = 0;
    std::string kind;            ///< empty = any
    SimTime enqueued_at = 0;  ///< for the assignment-wait metric
  };

  void handle_acquire(rpc::ServerChannel& ch, dmpi::Rank client,
                      int reply_tag, std::uint64_t job, std::uint32_t count,
                      const std::string& kind, bool wait, SimTime now);
  bool try_grant(rpc::ServerChannel& ch, dmpi::Rank client, int reply_tag,
                 std::uint64_t job, std::uint32_t count,
                 const std::string& kind, SimTime now);
  void drain_queue(rpc::ServerChannel& ch, SimTime now);
  std::uint32_t free_count(const std::string& kind) const;
  Slot* find_slot(dmpi::Rank daemon_rank);
  void release_slot(Slot& slot, SimTime now);
  void handle_heartbeat(rpc::ServerChannel& ch, const Heartbeat& hb,
                        SimTime now);
  void handle_sweep(rpc::ServerChannel& ch, const SweepRequest& sweep,
                    SimTime now);
  /// Marks the slot broken; an assigned slot additionally has its lease
  /// revoked: the owner is notified and the lease id remembered so a late
  /// release gets kRevoked instead of kUnknownHandle.
  void revoke_slot(rpc::ServerChannel& ch, Slot& slot, SimTime now,
                   const char* cause);
  /// After the pool shrinks, queued acquires that can never be satisfied any
  /// more (count > surviving slots of that kind) are failed immediately.
  void fail_unsatisfiable(rpc::ServerChannel& ch);
  bool was_revoked(std::uint64_t lease_id) const;

  /// Registers the ARM's metrics against `reg` (idempotent re-bind). The
  /// ARM runs as a single sim process, so a plain pointer compare suffices.
  void bind_metrics(obs::Registry* reg);

  dmpi::World& world_;
  dmpi::Rank self_;
  QueuePolicy policy_;
  std::vector<Slot> slots_;
  std::deque<PendingAcquire> queue_;
  std::vector<std::uint64_t> revoked_leases_;
  std::uint64_t next_lease_ = 1;
  std::uint64_t acquisitions_ = 0;
  std::uint64_t heartbeats_ = 0;
  std::uint32_t revocations_ = 0;
  std::uint32_t replacements_ = 0;

  // Metrics (lazy-bound, no-op handles when no registry is attached).
  obs::Registry* metrics_bound_ = nullptr;
  obs::Gauge m_assigned_;
  obs::Histogram m_assign_wait_ns_;
  obs::Histogram m_heartbeat_latency_ns_;
  obs::Counter m_revocations_;
};

/// Front-end side of the ARM protocol: the paper's resource-management API.
class ArmClient {
 public:
  ArmClient(dmpi::Mpi& mpi, const dmpi::Comm& comm, dmpi::Rank arm_rank);

  /// Acquires `count` exclusive accelerators for `job`. With wait == false,
  /// returns an empty vector if the pool cannot satisfy the request; with
  /// wait == true, blocks until it can (order per the ARM's queue policy).
  /// A non-empty `kind` restricts the grant to that device class
  /// (heterogeneous pools: "gpu", "mic", ...).
  std::vector<Lease> acquire(std::uint64_t job, std::uint32_t count,
                             bool wait = false, const std::string& kind = "");

  /// Releases one lease. Returns kNotOwner / kUnknownHandle on misuse.
  ArmResult release(std::uint64_t job, const Lease& lease);

  /// Releases everything `job` still holds (automatic end-of-job release).
  ArmResult release_job(std::uint64_t job);

  /// Reports an accelerator broken; it leaves the pool permanently.
  ArmResult report_broken(dmpi::Rank daemon_rank);

  /// Reports a completed transparent replacement (replay statistics).
  ArmResult report_replaced(const ReplayReport& report);

  PoolStats stats();

  void shutdown();

 private:
  /// One request/response exchange against the ARM; blocks until answered.
  proto::WireReader call(util::Buffer frame, int reply_tag);

  /// Channel to the ARM. Reply tags come from the rank's endpoint counter
  /// (dmpi::Mpi::fresh_tag_seed, Options::endpoint_tags): unique across
  /// every client sharing this rank — several launchers can hold queued
  /// acquires on one endpoint at once — race-free under the parallel
  /// execution backend (all users of an endpoint run on the rank's home
  /// shard), and deterministic (the sequence does not depend on how other
  /// shards interleave).
  rpc::Channel channel_;
};

}  // namespace dacc::arm
