// Accelerator Resource Manager (ARM).
//
// The ARM is the paper's pool manager (Section III.B.2): it "maintains
// information on which accelerators are available or in use and assigns them
// to compute nodes upon request", with exclusive handles so "different
// processes do not interfere with each other". It supports both assignment
// strategies of Figure 3: static (acquired at job start by the launcher) and
// dynamic (acquired and released at runtime through the resource-management
// API). Acquisitions that cannot be satisfied may either fail immediately or
// queue FCFS until accelerators are released — the batch-script behaviour
// Section V.B describes.
//
// Fault tolerance (Section III.A): an accelerator reported broken is removed
// from the pool; compute nodes are unaffected, and subsequent acquisitions
// simply never see it.
//
// The lease semantics themselves live in lease_machine.hpp: this file hosts
// the single-ARM server loop (one rank, commands applied as they arrive) and
// the client. The replicated deployment (arm/raft/) hosts the same machine
// behind a Raft log instead.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arm/lease_machine.hpp"
#include "dmpi/mpi.hpp"
#include "obs/metrics.hpp"
#include "proto/wire.hpp"
#include "rpc/channel.hpp"
#include "util/units.hpp"

namespace dacc::arm {

class Arm {
 public:
  /// Historical alias: the policy moved to namespace scope when the state
  /// machine was factored out (lease_machine.hpp).
  using QueuePolicy = arm::QueuePolicy;

  Arm(dmpi::World& world, dmpi::Rank self_world_rank,
      std::vector<AcceleratorInfo> pool,
      QueuePolicy policy = QueuePolicy::kFcfs, PlacementMap placement = {});

  /// Service loop; runs until a kShutdown request arrives (or forever as an
  /// engine daemon).
  void run(sim::Context& ctx);

  /// Direct (in-process) views for experiment harnesses.
  PoolStats stats() const;
  /// Fraction of [0, now] each accelerator spent assigned; index = pool slot.
  std::vector<double> utilization(SimTime now) const;

 private:
  dmpi::World& world_;
  dmpi::Rank self_;
  LeaseMachine machine_;
};

/// Front-end side of the ARM protocol: the paper's resource-management API.
/// Speaks to one ARM rank (the single-ARM deployment) or to an endpoint set
/// of replicas (arm/raft): with several endpoints the client walks the
/// failover ladder — follow kNotLeader redirects, resend on timeout with the
/// same reply tag (the lease machine's reply cache makes resends safe), and
/// rotate to the next replica when the addressed one stays silent.
class ArmClient {
 public:
  ArmClient(dmpi::Mpi& mpi, const dmpi::Comm& comm, dmpi::Rank arm_rank);
  ArmClient(dmpi::Mpi& mpi, const dmpi::Comm& comm,
            std::vector<dmpi::Rank> arm_ranks);

  /// Acquires exclusive accelerators per the typed request (device class,
  /// minimum memory, count, gang flag, priority, locality hint — see
  /// ResourceRequest). With wait == false an unsatisfiable request returns
  /// an empty vector; with wait == true it blocks until granted (priority,
  /// then the ARM's queue policy). Non-gang requests may return fewer
  /// leases than asked.
  std::vector<Lease> acquire(const ResourceRequest& req);

  /// Legacy flat shim: acquire(job, count) with default extension fields —
  /// gang, normal priority, any memory, requester-local placement.
  std::vector<Lease> acquire(std::uint64_t job, std::uint32_t count,
                             bool wait = false, const std::string& kind = "");

  /// Releases one lease. Returns kNotOwner / kUnknownHandle on misuse.
  ArmResult release(std::uint64_t job, const Lease& lease);

  /// Releases everything `job` still holds (automatic end-of-job release).
  ArmResult release_job(std::uint64_t job);

  /// Reports an accelerator broken; it leaves the pool permanently.
  ArmResult report_broken(dmpi::Rank daemon_rank);

  /// Reports a completed transparent replacement (replay statistics).
  ArmResult report_replaced(const ReplayReport& report);

  PoolStats stats();

  void shutdown();

 private:
  /// One request/response exchange against the ARM; blocks until answered.
  /// Walks the failover ladder when configured with several endpoints.
  proto::WireReader call(util::Buffer frame, int reply_tag);

  /// Channel to the ARM. Reply tags come from the rank's endpoint counter
  /// (dmpi::Mpi::fresh_tag_seed, Options::endpoint_tags): unique across
  /// every client sharing this rank — several launchers can hold queued
  /// acquires on one endpoint at once — race-free under the parallel
  /// execution backend (all users of an endpoint run on the rank's home
  /// shard), and deterministic (the sequence does not depend on how other
  /// shards interleave).
  rpc::Channel channel_;

  /// Replica endpoint set; size 1 for the single-ARM deployment. The
  /// channel's current server is the presumed leader.
  std::vector<dmpi::Rank> endpoints_;
  /// Per-attempt patience before rotating to the next replica. Generous:
  /// rotation is for dead replicas, not slow ones — a queued acquire at a
  /// live leader never answers early, so the resend path relies on the
  /// reply cache for safety, not on this being tight.
  SimDuration failover_timeout_ = 20_ms;
};

}  // namespace dacc::arm
