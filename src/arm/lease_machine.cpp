#include "arm/lease_machine.hpp"

#include <algorithm>

#include "rpc/channel.hpp"

namespace dacc::arm {

using proto::WireReader;
using proto::WireWriter;

namespace {

/// Replies remembered per client for duplicate resends. Deep enough that a
/// client's whole failover window (a handful of in-flight requests) fits;
/// old entries age out FIFO.
constexpr std::size_t kReplyCacheDepth = 8;

/// Snapshot format version (bumped on any layout change). v1 is the
/// pre-scheduler layout (no placement, memory, priorities or tickets);
/// restore() still accepts it with extension fields at their defaults.
constexpr std::uint32_t kSnapshotVersion = 2;
constexpr std::uint32_t kSnapshotVersionV1 = 1;

/// Sanity bound on the zone count read from an untrusted snapshot (the
/// latency matrix is zones^2 — a garbage count must not allocate).
constexpr std::uint32_t kMaxZones = 4096;

util::Buffer result_frame(ArmResult r) {
  return WireWriter{}.u32(static_cast<std::uint32_t>(r)).finish();
}

util::Buffer insufficient_frame() {
  return WireWriter{}
      .u32(static_cast<std::uint32_t>(ArmResult::kInsufficient))
      .u32(0)
      .finish();
}

}  // namespace

const char* to_string(ArmResult r) {
  switch (r) {
    case ArmResult::kOk:
      return "ok";
    case ArmResult::kInsufficient:
      return "insufficient accelerators";
    case ArmResult::kUnknownHandle:
      return "unknown handle";
    case ArmResult::kNotOwner:
      return "not the owner";
    case ArmResult::kRevoked:
      return "lease revoked";
    case ArmResult::kNotLeader:
      return "not the leader";
  }
  return "unknown";
}

const char* priority_class_name(std::uint32_t priority) {
  switch (std::min(priority, kPriorityClasses - 1)) {
    case kPriorityBatch:
      return "batch";
    case kPriorityNormal:
      return "normal";
    case kPriorityHigh:
      return "high";
    default:
      return "urgent";
  }
}

// ---------------------------------------------------------------------------
// ResourceRequest
// ---------------------------------------------------------------------------

void ResourceRequest::encode_body(proto::WireWriter& w) const {
  w.u64(job)
      .u32(count)
      .u32(wait ? 1 : 0)
      .str(kind)
      // Versioned extension. Decoders that stop after the legacy prefix
      // (none remain in-tree, but the format allows them) would see exactly
      // the old layout; the current decoder requires the extension to be
      // complete once any of it is present.
      .u32(kAcquireExtVersion)
      .u64(memory_bytes)
      .u32(priority)
      .u32(gang ? 1 : 0)
      .u64(static_cast<std::uint64_t>(locality));
}

ResourceRequest ResourceRequest::decode_body(proto::WireReader& r) {
  ResourceRequest q;
  q.job = r.u64();
  q.count = r.u32();
  q.wait = r.u32() != 0;
  q.kind = r.str();
  if (r.exhausted()) return q;  // legacy frame: defaults
  if (r.u32() != kAcquireExtVersion) {
    throw proto::WireError("arm: unknown acquire extension version");
  }
  q.memory_bytes = r.u64();
  q.priority = r.u32();
  if (q.priority > kMaxPriority) {
    throw proto::WireError("arm: acquire priority out of range");
  }
  q.gang = r.u32() != 0;
  q.locality = static_cast<std::int64_t>(r.u64());
  if (!r.exhausted()) {
    throw proto::WireError("arm: trailing bytes after acquire extension");
  }
  return q;
}

// ---------------------------------------------------------------------------
// Liveness wire messages. Full frames (rpc header + payload) so the fuzz
// suite round-trips exactly what travels on kArmRequestTag; one-way
// messages carry reply tag 0.
// ---------------------------------------------------------------------------

util::Buffer Heartbeat::encode() const {
  return rpc::request_header(static_cast<std::uint32_t>(ArmOp::kHeartbeat), 0)
      .u64(static_cast<std::uint64_t>(daemon_rank))
      .u64(seq)
      .u32(device_ok ? 1 : 0)
      .u64(sent_at)
      .finish();
}

Heartbeat Heartbeat::decode(proto::WireReader& r) {
  Heartbeat hb;
  hb.daemon_rank = static_cast<dmpi::Rank>(r.u64());
  hb.seq = r.u64();
  hb.device_ok = r.u32() != 0;
  hb.sent_at = r.u64();
  return hb;
}

util::Buffer SweepRequest::encode() const {
  return rpc::request_header(static_cast<std::uint32_t>(ArmOp::kSweep), 0)
      .u64(period)
      .u32(miss_threshold)
      .u32(fresh ? 1 : 0)
      .finish();
}

SweepRequest SweepRequest::decode(proto::WireReader& r) {
  SweepRequest s;
  s.period = r.u64();
  s.miss_threshold = r.u32();
  s.fresh = r.u32() != 0;
  return s;
}

util::Buffer RevokeNotice::encode() const {
  return WireWriter{}
      .u64(static_cast<std::uint64_t>(daemon_rank))
      .u64(lease_id)
      .u64(job)
      .u64(revoked_at)
      .u32(reason)
      .finish();
}

RevokeNotice RevokeNotice::decode(proto::WireReader& r) {
  RevokeNotice n;
  n.daemon_rank = static_cast<dmpi::Rank>(r.u64());
  n.lease_id = r.u64();
  n.job = r.u64();
  n.revoked_at = r.u64();
  // Versioned suffix: legacy frames end here and mean a failure revocation.
  if (!r.exhausted()) n.reason = r.u32();
  return n;
}

util::Buffer ReplayReport::encode(int reply_tag) const {
  return rpc::request_header(static_cast<std::uint32_t>(ArmOp::kReplaced),
                             reply_tag)
      .u64(static_cast<std::uint64_t>(failed_rank))
      .u64(static_cast<std::uint64_t>(replacement_rank))
      .u64(job)
      .u32(replayed_ops)
      .u64(replayed_bytes)
      .finish();
}

ReplayReport ReplayReport::decode(proto::WireReader& r) {
  ReplayReport rep;
  rep.failed_rank = static_cast<dmpi::Rank>(r.u64());
  rep.replacement_rank = static_cast<dmpi::Rank>(r.u64());
  rep.job = r.u64();
  rep.replayed_ops = r.u32();
  rep.replayed_bytes = r.u64();
  return rep;
}

// ---------------------------------------------------------------------------
// Command
// ---------------------------------------------------------------------------

util::Buffer Command::encode() const {
  WireWriter w;
  w.u64(static_cast<std::uint64_t>(client))
      .u32(static_cast<std::uint32_t>(reply_tag))
      .u32(op)
      .blob(body.bytes());
  return w.finish();
}

Command Command::decode(proto::WireReader& r) {
  Command c;
  c.client = static_cast<dmpi::Rank>(r.u64());
  c.reply_tag = static_cast<int>(r.u32());
  c.op = r.u32();
  c.body = r.blob();
  return c;
}

// ---------------------------------------------------------------------------
// LeaseMachine
// ---------------------------------------------------------------------------

LeaseMachine::LeaseMachine(std::vector<AcceleratorInfo> pool,
                           QueuePolicy policy, std::string metrics_prefix,
                           PlacementMap placement)
    : policy_(policy),
      placement_(std::move(placement)),
      metrics_prefix_(std::move(metrics_prefix)) {
  slots_.reserve(pool.size());
  for (AcceleratorInfo& info : pool) {
    Slot s;
    s.info = std::move(info);
    slots_.push_back(std::move(s));
  }
  rebuild_indexes();
}

LeaseMachine::ClassKey LeaseMachine::key_of(const Slot& s) {
  return ClassKey{s.info.kind, s.info.memory_bytes};
}

bool LeaseMachine::class_matches(const ClassKey& key,
                                 const ResourceRequest& req) {
  return (req.kind.empty() || key.first == req.kind) &&
         key.second >= req.memory_bytes;
}

std::uint32_t LeaseMachine::free_matching(const ResourceRequest& req) const {
  std::uint32_t n = 0;
  for (const auto& [key, cls] : free_) {
    if (class_matches(key, req)) n += cls.total;
  }
  return n;
}

std::uint32_t LeaseMachine::alive_matching(const ResourceRequest& req) const {
  std::uint32_t n = 0;
  for (const auto& [key, alive] : alive_) {
    if (class_matches(key, req)) n += alive;
  }
  return n;
}

std::uint32_t LeaseMachine::requester_zone(const ResourceRequest& req,
                                           dmpi::Rank client) const {
  const std::int64_t node =
      req.locality >= 0 ? req.locality : static_cast<std::int64_t>(client);
  return placement_.zone_of(node);
}

void LeaseMachine::rebuild_indexes() {
  placement_.normalize();
  const std::uint32_t nz = placement_.zones();
  zone_order_.clear();
  zone_order_.reserve(nz);
  for (std::uint32_t z = 0; z < nz; ++z) {
    zone_order_.push_back(placement_.order_from(z));
  }
  slot_by_rank_.clear();
  free_.clear();
  assigned_idx_.clear();
  alive_.clear();
  pending_by_class_.clear();
  pending_by_client_.clear();
  free_total_ = 0;
  broken_total_ = 0;
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    const Slot& s = slots_[i];
    slot_by_rank_[s.info.daemon_rank] = i;
    const ClassKey key = key_of(s);
    FreeClass& fc = free_[key];
    if (fc.zone.empty()) fc.zone.resize(nz);
    std::uint32_t& alive = alive_[key];
    if (s.state != State::kBroken) ++alive;
    if (s.state == State::kFree) {
      fc.zone[placement_.zone_of(s.info.daemon_rank)].insert(i);
      ++fc.total;
      ++free_total_;
    } else if (s.state == State::kAssigned) {
      // s.priority <= kMaxPriority: enforced at wire decode and restore.
      assigned_idx_[key].by_prio[s.priority].insert(i);
    } else {
      ++broken_total_;
    }
  }
  for (const auto& [key, p] : queue_) {
    pending_by_client_[{p.client, p.reply_tag}] = key;
    pending_index_insert(key, p.req);
  }
}

void LeaseMachine::index_insert_free(std::uint32_t idx) {
  const Slot& s = slots_[idx];
  FreeClass& fc = free_.find(key_of(s))->second;
  fc.zone[placement_.zone_of(s.info.daemon_rank)].insert(idx);
  ++fc.total;
  ++free_total_;
}

void LeaseMachine::index_erase_free(std::uint32_t idx) {
  const Slot& s = slots_[idx];
  FreeClass& fc = free_.find(key_of(s))->second;
  fc.zone[placement_.zone_of(s.info.daemon_rank)].erase(idx);
  --fc.total;
  --free_total_;
}

void LeaseMachine::index_insert_assigned(std::uint32_t idx) {
  const Slot& s = slots_[idx];
  assigned_idx_[key_of(s)].by_prio[s.priority].insert(idx);
}

void LeaseMachine::index_erase_assigned(std::uint32_t idx) {
  const Slot& s = slots_[idx];
  assigned_idx_.find(key_of(s))->second.by_prio[s.priority].erase(idx);
}

void LeaseMachine::pending_index_insert(const PendingKey& key,
                                        const ResourceRequest& rq) {
  // free_ doubles as the class catalog: every class in the pool has an
  // entry, whatever its current free count.
  for (const auto& [ck, fc] : free_) {
    (void)fc;
    if (class_matches(ck, rq)) pending_by_class_[ck].insert(key);
  }
}

void LeaseMachine::pending_index_erase(const PendingKey& key,
                                       const ResourceRequest& rq) {
  for (const auto& [ck, fc] : free_) {
    (void)fc;
    if (class_matches(ck, rq)) pending_by_class_[ck].erase(key);
  }
}

LeaseMachine::Slot* LeaseMachine::find_slot(dmpi::Rank daemon_rank) {
  const auto it = slot_by_rank_.find(daemon_rank);
  return it == slot_by_rank_.end() ? nullptr : &slots_[it->second];
}

std::int64_t LeaseMachine::slot_index(dmpi::Rank daemon_rank) const {
  const auto it = slot_by_rank_.find(daemon_rank);
  return it == slot_by_rank_.end() ? -1 : static_cast<std::int64_t>(it->second);
}

void LeaseMachine::release_slot(std::uint32_t idx, SimTime now) {
  Slot& slot = slots_[idx];
  index_erase_assigned(idx);
  slot.assigned_total += now - slot.assigned_since;
  slot.state = State::kFree;
  slot.job = 0;
  slot.lease_id = 0;
  slot.owner = -1;
  slot.priority = kPriorityNormal;
  index_insert_free(idx);
}

void LeaseMachine::break_slot(std::uint32_t idx, SimTime now) {
  Slot& slot = slots_[idx];
  if (slot.state == State::kBroken) return;
  if (slot.state == State::kAssigned) {
    slot.assigned_total += now - slot.assigned_since;
    index_erase_assigned(idx);
  }
  if (slot.state == State::kFree) index_erase_free(idx);
  --alive_.find(key_of(slot))->second;
  ++broken_total_;
  slot.state = State::kBroken;
  slot.job = 0;
  slot.lease_id = 0;
  slot.owner = -1;
  slot.priority = kPriorityNormal;
}

bool LeaseMachine::was_revoked(std::uint64_t lease_id) const {
  return std::find(revoked_leases_.begin(), revoked_leases_.end(), lease_id) !=
         revoked_leases_.end();
}

const LeaseMachine::CachedReply* LeaseMachine::cached(dmpi::Rank client,
                                                      int reply_tag) const {
  for (const ClientReplies& c : reply_cache_) {
    if (c.client != client) continue;
    for (const CachedReply& r : c.replies) {
      if (r.reply_tag == reply_tag) return &r;
    }
    return nullptr;
  }
  return nullptr;
}

bool LeaseMachine::seen(dmpi::Rank client, int reply_tag) const {
  if (reply_tag == 0) return false;
  if (cached(client, reply_tag) != nullptr) return true;
  return pending_by_client_.count({client, reply_tag}) != 0;
}

void LeaseMachine::emit_reply(std::vector<Effect>& out, dmpi::Rank client,
                              int reply_tag, util::Buffer frame) {
  if (reply_tag != 0) {
    ClientReplies* entry = nullptr;
    for (ClientReplies& c : reply_cache_) {
      if (c.client == client) {
        entry = &c;
        break;
      }
    }
    if (entry == nullptr) {
      reply_cache_.push_back(ClientReplies{client, {}});
      entry = &reply_cache_.back();
    }
    entry->replies.push_back(CachedReply{reply_tag, frame.view()});
    while (entry->replies.size() > kReplyCacheDepth) {
      entry->replies.pop_front();
    }
  }
  Effect e;
  e.kind = Effect::Kind::kReply;
  e.to = client;
  e.tag = reply_tag;
  e.frame = std::move(frame);
  out.push_back(std::move(e));
}

void LeaseMachine::observe_wait(std::uint32_t priority, std::uint64_t ns) {
  if (metrics_bound_ == nullptr) return;
  m_assign_wait_ns_.observe(ns);
  m_wait_by_class_[std::min(priority, kPriorityClasses - 1)].observe(ns);
}

void LeaseMachine::revoke_slot(std::vector<Effect>& out, std::uint32_t idx,
                               SimTime now, const char* cause) {
  Slot& slot = slots_[idx];
  if (slot.state == State::kBroken) return;
  if (slot.state == State::kAssigned) {
    ++revocations_;
    if (metrics_bound_ != nullptr) m_revocations_.add(1);
    revoked_leases_.push_back(slot.lease_id);
    // Unsolicited push so the owner learns of the failure even between its
    // own requests; the tag encodes the daemon so a session holding several
    // leases can tell which one died.
    RevokeNotice notice{slot.info.daemon_rank, slot.lease_id, slot.job, now,
                        kRevokeFailure};
    Effect e;
    e.kind = Effect::Kind::kNotice;
    e.to = slot.owner;
    e.tag = kArmRevokeTagBase + slot.info.daemon_rank;
    e.frame = notice.encode();
    out.push_back(std::move(e));
  }
  Effect t;
  t.kind = Effect::Kind::kTrace;
  t.label =
      std::string(cause) + "-ac" + std::to_string(slot.info.daemon_rank);
  out.push_back(std::move(t));
  break_slot(idx, now);
}

void LeaseMachine::preempt_slot(std::vector<Effect>& out, std::uint32_t idx,
                                SimTime now) {
  Slot& slot = slots_[idx];
  index_erase_assigned(idx);
  slot.assigned_total += now - slot.assigned_since;
  ++preemptions_;
  if (metrics_bound_ != nullptr) m_preemptions_.add(1);
  revoked_leases_.push_back(slot.lease_id);
  RevokeNotice notice{slot.info.daemon_rank, slot.lease_id, slot.job, now,
                      kRevokePreempted};
  Effect e;
  e.kind = Effect::Kind::kNotice;
  e.to = slot.owner;
  e.tag = kArmRevokeTagBase + slot.info.daemon_rank;
  e.frame = notice.encode();
  out.push_back(std::move(e));
  Effect t;
  t.kind = Effect::Kind::kTrace;
  t.label = "preempt-ac" + std::to_string(slot.info.daemon_rank);
  out.push_back(std::move(t));
  slot.state = State::kFree;
  slot.job = 0;
  slot.lease_id = 0;
  slot.owner = -1;
  slot.priority = kPriorityNormal;
  index_insert_free(idx);
}

void LeaseMachine::fail_unsatisfiable(std::vector<Effect>& out) {
  for (auto it = queue_.begin(); it != queue_.end();) {
    const ResourceRequest& rq = it->second.req;
    const std::uint32_t alive = alive_matching(rq);
    if (alive == 0 || (rq.gang && rq.count > alive)) {
      const dmpi::Rank client = it->second.client;
      const int reply_tag = it->second.reply_tag;
      pending_by_client_.erase({client, reply_tag});
      pending_index_erase(it->first, rq);
      it = queue_.erase(it);
      emit_reply(out, client, reply_tag, insufficient_frame());
    } else {
      ++it;
    }
  }
}

void LeaseMachine::handle_heartbeat(std::vector<Effect>& out,
                                    const Heartbeat& hb, SimTime now) {
  ++heartbeats_;
  if (metrics_bound_ != nullptr && hb.sent_at != 0 && now >= hb.sent_at) {
    m_heartbeat_latency_ns_.observe(
        static_cast<std::uint64_t>(now - hb.sent_at));
  }
  const std::int64_t idx = slot_index(hb.daemon_rank);
  if (idx < 0 || slots_[static_cast<std::size_t>(idx)].state == State::kBroken) {
    return;
  }
  slots_[static_cast<std::size_t>(idx)].last_beat = now;
  if (!hb.device_ok) {
    // The daemon is alive but its device is dead — no need to wait for the
    // miss threshold.
    revoke_slot(out, static_cast<std::uint32_t>(idx), now, "device-fault");
    fail_unsatisfiable(out);
  }
}

void LeaseMachine::handle_sweep(std::vector<Effect>& out,
                                const SweepRequest& sweep, SimTime now) {
  if (sweep.fresh) {
    // First sweep after an idle phase: restart every beat clock instead of
    // comparing against timestamps from the previous activity burst.
    for (Slot& s : slots_) s.last_beat = now;
    return;
  }
  const SimDuration allowance = sweep.period * sweep.miss_threshold;
  bool revoked = false;
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].state == State::kBroken) continue;
    if (now - slots_[i].last_beat > allowance) {
      revoke_slot(out, i, now, "hb-miss");
      revoked = true;
    }
  }
  if (revoked) fail_unsatisfiable(out);
}

bool LeaseMachine::try_grant(std::vector<Effect>& out, dmpi::Rank client,
                             int reply_tag, const ResourceRequest& req,
                             SimTime now) {
  const std::uint32_t avail = free_matching(req);
  std::uint32_t grant = req.count;
  if (avail < req.count) {
    if (req.gang || avail == 0) return false;
    grant = avail;  // partial grant: non-gang requests take what exists
  }
  WireWriter resp;
  resp.u32(static_cast<std::uint32_t>(ArmResult::kOk)).u32(grant);
  // Placement walk: nearest zone first (from the locality hint, falling
  // back to the requesting rank), then smallest adequate class (best fit),
  // then lowest slot id. With trivial placement and a uniform pool this is
  // exactly ascending slot order — the pre-scheduler grant order.
  const std::uint32_t from = requester_zone(req, client);
  std::uint32_t granted = 0;
  for (const std::uint32_t z : zone_order_[from]) {
    for (auto& [key, cls] : free_) {
      if (granted == grant) break;
      if (!class_matches(key, req)) continue;
      std::set<std::uint32_t>& ids = cls.zone[z];
      while (granted < grant && !ids.empty()) {
        const std::uint32_t idx = *ids.begin();
        ids.erase(ids.begin());
        --cls.total;
        --free_total_;
        Slot& s = slots_[idx];
        s.state = State::kAssigned;
        s.job = req.job;
        s.lease_id = next_lease_++;
        s.owner = client;
        s.priority = req.priority;
        s.assigned_since = now;
        index_insert_assigned(idx);
        resp.u64(static_cast<std::uint64_t>(s.info.daemon_rank))
            .u64(s.lease_id);
        ++granted;
      }
    }
    if (granted == grant) break;
  }
  acquisitions_ += granted;
  emit_reply(out, client, reply_tag, resp.finish());
  return true;
}

bool LeaseMachine::preempt_for(std::vector<Effect>& out,
                               const ResourceRequest& req, SimTime now) {
  if (req.priority == kPriorityBatch || req.count == 0) return false;
  const std::uint32_t avail = free_matching(req);
  // Non-gang requests only get here with nothing free (a partial grant
  // would have succeeded otherwise) and need a single slot to make
  // progress; gangs need the exact shortfall.
  const std::uint32_t needed = req.gang ? req.count - avail : 1;
  // All-or-nothing: never evict anyone unless the shortfall is fully
  // coverable (a half-preempted gang would revoke work and still queue).
  // The assigned index makes the count O(classes x priority classes), so
  // the common no-victim arrival never touches the slot table.
  std::uint32_t have = 0;
  for (const auto& [key, ac] : assigned_idx_) {
    if (!class_matches(key, req)) continue;
    for (std::uint32_t p = 0; p < req.priority; ++p) {
      have += static_cast<std::uint32_t>(ac.by_prio[p].size());
    }
  }
  if (have < needed) return false;
  // Victim order: lowest priority first, then lowest slot id — merged
  // across the matching classes' per-priority buckets. Collect before
  // evicting; preempt_slot edits the buckets being walked.
  std::vector<std::uint32_t> victims;
  victims.reserve(needed);
  for (std::uint32_t p = 0; p < req.priority && victims.size() < needed;
       ++p) {
    std::vector<const std::set<std::uint32_t>*> buckets;
    for (const auto& [key, ac] : assigned_idx_) {
      if (class_matches(key, req) && !ac.by_prio[p].empty()) {
        buckets.push_back(&ac.by_prio[p]);
      }
    }
    std::vector<std::set<std::uint32_t>::const_iterator> heads;
    heads.reserve(buckets.size());
    for (const std::set<std::uint32_t>* b : buckets) {
      heads.push_back(b->begin());
    }
    while (victims.size() < needed) {
      std::size_t best = buckets.size();
      for (std::size_t k = 0; k < buckets.size(); ++k) {
        if (heads[k] == buckets[k]->end()) continue;
        if (best == buckets.size() || *heads[k] < *heads[best]) best = k;
      }
      if (best == buckets.size()) break;
      victims.push_back(*heads[best]++);
    }
  }
  for (const std::uint32_t idx : victims) preempt_slot(out, idx, now);
  return true;
}

void LeaseMachine::enqueue_pending(dmpi::Rank client, int reply_tag,
                                   const ResourceRequest& req, SimTime now) {
  const PendingKey key{req.priority, next_ticket_++};
  queue_.emplace(key, PendingAcquire{client, reply_tag, req, now});
  pending_by_client_[{client, reply_tag}] = key;
  pending_index_insert(key, req);
}

void LeaseMachine::handle_acquire(std::vector<Effect>& out, dmpi::Rank client,
                                  int reply_tag, const ResourceRequest& req,
                                  SimTime now) {
  if (req.count > 0) {
    // Unsatisfiable on arrival: the surviving pool could never grant it
    // even when fully drained. Fail now (wait or not) — the queue variant
    // of this check (fail_unsatisfiable) only runs when the pool shrinks.
    const std::uint32_t alive = alive_matching(req);
    if (alive == 0 || (req.gang && req.count > alive)) {
      emit_reply(out, client, reply_tag, insufficient_frame());
      return;
    }
  }
  if (try_grant(out, client, reply_tag, req, now)) {
    observe_wait(req.priority, 0);
    return;
  }
  if (preempt_for(out, req, now) &&
      try_grant(out, client, reply_tag, req, now)) {
    observe_wait(req.priority, 0);
    return;
  }
  if (req.wait) {
    enqueue_pending(client, reply_tag, req, now);
    return;
  }
  emit_reply(out, client, reply_tag, insufficient_frame());
}

void LeaseMachine::drain_queue(std::vector<Effect>& out, SimTime now) {
  if (policy_ == QueuePolicy::kFcfs) {
    // Strict order within the (priority, arrival) map: the head request
    // blocks everything behind it, like a batch queue without backfill.
    while (!queue_.empty()) {
      const auto it = queue_.begin();
      const PendingAcquire& head = it->second;
      if (!try_grant(out, head.client, head.reply_tag, head.req, now)) {
        return;
      }
      observe_wait(head.req.priority,
                   static_cast<std::uint64_t>(now - head.enqueued_at));
      pending_by_client_.erase({head.client, head.reply_tag});
      pending_index_erase(it->first, head.req);
      queue_.erase(it);
    }
    return;
  }
  // Backfill: serve any satisfiable request in priority order, preserving
  // relative order among the ones that fit (EASY-style, no reservations).
  // Driven off the per-class pending index: each step serves the lowest
  // (priority, arrival) key some free class lists, so a kind-blocked head
  // costs nothing — the old behaviour of one forward scan over the whole
  // queue, without the scan. The cursor is sound because the free set only
  // shrinks during a pass: a pending passed over had no free class then
  // and cannot gain one now. A gang whose shortfall exceeds the free pool
  // is stepped past (cursor advance), exactly like the scan's `++it`.
  // {kMaxPriority + 1, 0} sorts before every real key (priority is
  // descending in the order and bounded at decode; tickets start at 1).
  PendingKey cursor{kMaxPriority + 1, 0};
  while (free_total_ > 0) {
    const PendingKey* best = nullptr;
    for (const auto& [ck, fc] : free_) {
      if (fc.total == 0) continue;
      const auto pit = pending_by_class_.find(ck);
      if (pit == pending_by_class_.end()) continue;
      const auto cand = pit->second.upper_bound(cursor);
      if (cand == pit->second.end()) continue;
      if (best == nullptr || *cand < *best) best = &*cand;
    }
    if (best == nullptr) return;
    const PendingKey key = *best;
    const auto it = queue_.find(key);
    const PendingAcquire& p = it->second;
    if (try_grant(out, p.client, p.reply_tag, p.req, now)) {
      observe_wait(p.req.priority,
                   static_cast<std::uint64_t>(now - p.enqueued_at));
      pending_by_client_.erase({p.client, p.reply_tag});
      pending_index_erase(key, p.req);
      queue_.erase(it);
    }
    cursor = key;
  }
}

ApplyResult LeaseMachine::apply(const Command& cmd, SimTime now) {
  ApplyResult result;
  std::vector<Effect>& out = result.effects;
  // At-least-once resends: a command whose reply we already produced is
  // answered from the cache; one that is still queued at the pool keeps
  // waiting silently. Fresh commands fall through and mutate state exactly
  // once. (Single-ARM deployments mint unique tags, so this never fires
  // there.)
  if (cmd.reply_tag != 0) {
    if (const CachedReply* hit = cached(cmd.client, cmd.reply_tag)) {
      Effect e;
      e.kind = Effect::Kind::kReply;
      e.to = cmd.client;
      e.tag = cmd.reply_tag;
      e.frame = hit->frame.view();
      out.push_back(std::move(e));
      return result;
    }
    if (pending_by_client_.count({cmd.client, cmd.reply_tag}) != 0) {
      return result;
    }
  }
  WireReader req(cmd.body.view());
  switch (static_cast<ArmOp>(cmd.op)) {
    case ArmOp::kAcquire: {
      const ResourceRequest rq = ResourceRequest::decode_body(req);
      handle_acquire(out, cmd.client, cmd.reply_tag, rq, now);
      break;
    }
    case ArmOp::kRelease: {
      const std::uint64_t job = req.u64();
      const auto rank = static_cast<dmpi::Rank>(req.u64());
      const std::uint64_t lease_id = req.u64();
      ArmResult r = ArmResult::kOk;
      const std::int64_t idx = slot_index(rank);
      Slot* slot = idx < 0 ? nullptr : &slots_[static_cast<std::size_t>(idx)];
      if (slot == nullptr || slot->state != State::kAssigned ||
          slot->lease_id != lease_id) {
        // Distinguish "that lease was revoked under you" from plain
        // misuse so recovering clients can treat it as already-released.
        r = was_revoked(lease_id) ? ArmResult::kRevoked
                                  : ArmResult::kUnknownHandle;
      } else if (slot->job != job) {
        r = ArmResult::kNotOwner;
      } else {
        release_slot(static_cast<std::uint32_t>(idx), now);
      }
      emit_reply(out, cmd.client, cmd.reply_tag, result_frame(r));
      drain_queue(out, now);
      break;
    }
    case ArmOp::kReleaseJob: {
      const std::uint64_t job = req.u64();
      for (std::uint32_t i = 0; i < slots_.size(); ++i) {
        if (slots_[i].state == State::kAssigned && slots_[i].job == job) {
          release_slot(i, now);
        }
      }
      emit_reply(out, cmd.client, cmd.reply_tag, result_frame(ArmResult::kOk));
      drain_queue(out, now);
      break;
    }
    case ArmOp::kReportBroken: {
      const auto rank = static_cast<dmpi::Rank>(req.u64());
      const std::int64_t idx = slot_index(rank);
      ArmResult r = ArmResult::kOk;
      if (idx < 0) {
        r = ArmResult::kUnknownHandle;
      } else {
        break_slot(static_cast<std::uint32_t>(idx), now);
        Effect t;
        t.kind = Effect::Kind::kTrace;
        t.label = "reported-ac" + std::to_string(rank);
        out.push_back(std::move(t));
      }
      emit_reply(out, cmd.client, cmd.reply_tag, result_frame(r));
      fail_unsatisfiable(out);
      break;
    }
    case ArmOp::kStats: {
      const PoolStats s = stats();
      emit_reply(out, cmd.client, cmd.reply_tag,
                 WireWriter{}
                     .u32(static_cast<std::uint32_t>(ArmResult::kOk))
                     .u32(s.total)
                     .u32(s.free)
                     .u32(s.assigned)
                     .u32(s.broken)
                     .u64(s.acquisitions)
                     .u32(s.queued_requests)
                     .u64(s.heartbeats)
                     .u32(s.revocations)
                     .u32(s.replacements)
                     .u32(s.preemptions)
                     .finish());
      break;
    }
    case ArmOp::kHeartbeat: {
      handle_heartbeat(out, Heartbeat::decode(req), now);
      break;  // one-way, no reply
    }
    case ArmOp::kSweep: {
      handle_sweep(out, SweepRequest::decode(req), now);
      break;  // one-way, no reply
    }
    case ArmOp::kReplaced: {
      const ReplayReport report = ReplayReport::decode(req);
      ++replacements_;
      Effect t;
      t.kind = Effect::Kind::kTrace;
      t.label = "replaced-ac" + std::to_string(report.failed_rank) + "->ac" +
                std::to_string(report.replacement_rank);
      out.push_back(std::move(t));
      emit_reply(out, cmd.client, cmd.reply_tag, result_frame(ArmResult::kOk));
      break;
    }
    case ArmOp::kShutdown: {
      emit_reply(out, cmd.client, cmd.reply_tag, result_frame(ArmResult::kOk));
      result.shutdown = true;
      break;
    }
    default:
      throw proto::WireError("arm: unknown op " + std::to_string(cmd.op));
  }
  return result;
}

void LeaseMachine::validate(const Command& cmd) {
  WireReader req(cmd.body.view());
  switch (static_cast<ArmOp>(cmd.op)) {
    case ArmOp::kAcquire:
      (void)ResourceRequest::decode_body(req);
      break;
    case ArmOp::kRelease:
      req.u64();
      req.u64();
      req.u64();
      break;
    case ArmOp::kReleaseJob:
      req.u64();
      break;
    case ArmOp::kReportBroken:
      req.u64();
      break;
    case ArmOp::kStats:
    case ArmOp::kShutdown:
      break;
    case ArmOp::kHeartbeat:
      Heartbeat::decode(req);
      break;
    case ArmOp::kSweep:
      SweepRequest::decode(req);
      break;
    case ArmOp::kReplaced:
      ReplayReport::decode(req);
      break;
    default:
      throw proto::WireError("arm: unknown op " + std::to_string(cmd.op));
  }
}

PoolStats LeaseMachine::stats() const {
  // O(1): free/broken are tracked with the indexes (the single-ARM and
  // Raft server loops both sample stats after every applied command).
  PoolStats s;
  s.total = static_cast<std::uint32_t>(slots_.size());
  s.free = free_total_;
  s.broken = broken_total_;
  s.assigned = s.total - s.free - s.broken;
  s.acquisitions = acquisitions_;
  s.queued_requests = static_cast<std::uint32_t>(queue_.size());
  s.heartbeats = heartbeats_;
  s.revocations = revocations_;
  s.replacements = replacements_;
  s.preemptions = preemptions_;
  return s;
}

std::vector<double> LeaseMachine::utilization(SimTime now) const {
  std::vector<double> out;
  out.reserve(slots_.size());
  for (const Slot& s : slots_) {
    SimDuration busy = s.assigned_total;
    if (s.state == State::kAssigned) busy += now - s.assigned_since;
    out.push_back(now == 0 ? 0.0
                           : static_cast<double>(busy) /
                                 static_cast<double>(now));
  }
  return out;
}

std::int64_t LeaseMachine::assigned_count() const {
  return static_cast<std::int64_t>(slots_.size()) - free_total_ -
         broken_total_;
}

util::Buffer LeaseMachine::snapshot() const {
  WireWriter w;
  w.u32(kSnapshotVersion);
  w.u32(static_cast<std::uint32_t>(policy_));
  w.u64(next_lease_)
      .u64(acquisitions_)
      .u64(heartbeats_)
      .u32(revocations_)
      .u32(replacements_)
      .u32(preemptions_)
      .u64(next_ticket_);
  // Placement travels in the snapshot: a replica restored via
  // InstallSnapshot must place future grants exactly like its peers.
  const std::uint32_t nz = placement_.zones();
  w.u32(nz);
  w.u32(static_cast<std::uint32_t>(placement_.node_zone.size()));
  for (const std::uint32_t z : placement_.node_zone) w.u32(z);
  for (std::uint32_t a = 0; a < nz; ++a) {
    for (std::uint32_t b = 0; b < nz; ++b) {
      w.u64(placement_.latency(a, b));
    }
  }
  w.u32(static_cast<std::uint32_t>(slots_.size()));
  for (const Slot& s : slots_) {
    w.u64(static_cast<std::uint64_t>(s.info.daemon_rank))
        .str(s.info.device_name)
        .str(s.info.kind)
        .u64(s.info.memory_bytes)
        .u32(static_cast<std::uint32_t>(s.state))
        .u64(s.job)
        .u64(s.lease_id)
        .u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(s.owner)))
        .u32(s.priority)
        .u64(s.assigned_since)
        .u64(s.assigned_total)
        .u64(s.last_beat);
  }
  w.u32(static_cast<std::uint32_t>(queue_.size()));
  for (const auto& [key, p] : queue_) {
    w.u32(key.priority)
        .u64(key.ticket)
        .u64(static_cast<std::uint64_t>(p.client))
        .u32(static_cast<std::uint32_t>(p.reply_tag))
        .u64(p.req.job)
        .u32(p.req.count)
        .str(p.req.kind)
        .u64(p.req.memory_bytes)
        .u32(p.req.gang ? 1 : 0)
        .u64(static_cast<std::uint64_t>(p.req.locality))
        .u64(p.enqueued_at);
  }
  w.u32(static_cast<std::uint32_t>(revoked_leases_.size()));
  for (std::uint64_t id : revoked_leases_) w.u64(id);
  w.u32(static_cast<std::uint32_t>(reply_cache_.size()));
  for (const ClientReplies& c : reply_cache_) {
    w.u64(static_cast<std::uint64_t>(c.client));
    w.u32(static_cast<std::uint32_t>(c.replies.size()));
    for (const CachedReply& r : c.replies) {
      w.u32(static_cast<std::uint32_t>(r.reply_tag));
      w.blob(r.frame.bytes());
    }
  }
  return w.finish();
}

LeaseMachine LeaseMachine::restore(proto::WireReader& r,
                                   std::string metrics_prefix) {
  // Counts are untrusted (InstallSnapshot frames cross the fuzzer): nothing
  // is pre-reserved from them, and every element read is bounds-checked, so
  // a garbage count throws on the first missing byte instead of allocating.
  const std::uint32_t version = r.u32();
  if (version != kSnapshotVersion && version != kSnapshotVersionV1) {
    throw proto::WireError("arm: unknown lease snapshot version");
  }
  const bool v1 = version == kSnapshotVersionV1;
  LeaseMachine m;
  m.metrics_prefix_ = std::move(metrics_prefix);
  const std::uint32_t policy = r.u32();
  if (policy > static_cast<std::uint32_t>(QueuePolicy::kBackfill)) {
    throw proto::WireError("arm: bad queue policy in snapshot");
  }
  m.policy_ = static_cast<QueuePolicy>(policy);
  m.next_lease_ = r.u64();
  m.acquisitions_ = r.u64();
  m.heartbeats_ = r.u64();
  m.revocations_ = r.u32();
  m.replacements_ = r.u32();
  if (!v1) {
    m.preemptions_ = r.u32();
    m.next_ticket_ = r.u64();
    const std::uint32_t nz = r.u32();
    if (nz == 0 || nz > kMaxZones) {
      throw proto::WireError("arm: bad zone count in snapshot");
    }
    const std::uint32_t nnodes = r.u32();
    for (std::uint32_t i = 0; i < nnodes; ++i) {
      const std::uint32_t z = r.u32();
      if (z >= nz) throw proto::WireError("arm: bad node zone in snapshot");
      m.placement_.node_zone.push_back(z);
    }
    for (std::uint64_t i = 0;
         i < static_cast<std::uint64_t>(nz) * static_cast<std::uint64_t>(nz);
         ++i) {
      m.placement_.zone_latency_ns.push_back(r.u64());
    }
    // The zone count must be exactly what the node map implies (every zone
    // populated), or re-emitting the snapshot would change the matrix
    // stride and the fingerprint would diverge from non-restored peers.
    if (m.placement_.zones() != nz && !(nnodes == 0 && nz == 1)) {
      throw proto::WireError("arm: zone map disagrees with zone count");
    }
  }
  const std::uint32_t nslots = r.u32();
  for (std::uint32_t i = 0; i < nslots; ++i) {
    Slot s;
    s.info.daemon_rank = static_cast<dmpi::Rank>(r.u64());
    s.info.device_name = r.str();
    s.info.kind = r.str();
    if (!v1) s.info.memory_bytes = r.u64();
    const std::uint32_t state = r.u32();
    if (state > static_cast<std::uint32_t>(State::kBroken)) {
      throw proto::WireError("arm: bad slot state in snapshot");
    }
    s.state = static_cast<State>(state);
    s.job = r.u64();
    s.lease_id = r.u64();
    s.owner = static_cast<dmpi::Rank>(static_cast<std::int64_t>(r.u64()));
    if (!v1) {
      s.priority = r.u32();
      if (s.priority > kMaxPriority) {
        throw proto::WireError("arm: bad slot priority in snapshot");
      }
    }
    s.assigned_since = r.u64();
    s.assigned_total = r.u64();
    s.last_beat = r.u64();
    m.slots_.push_back(std::move(s));
  }
  const std::uint32_t nqueue = r.u32();
  for (std::uint32_t i = 0; i < nqueue; ++i) {
    PendingKey key;
    PendingAcquire p;
    if (!v1) {
      key.priority = r.u32();
      if (key.priority > kMaxPriority) {
        throw proto::WireError("arm: bad queue priority in snapshot");
      }
      key.ticket = r.u64();
    }
    p.client = static_cast<dmpi::Rank>(r.u64());
    p.reply_tag = static_cast<int>(r.u32());
    p.req.job = r.u64();
    p.req.count = r.u32();
    p.req.kind = r.str();
    if (!v1) {
      p.req.memory_bytes = r.u64();
      p.req.gang = r.u32() != 0;
      p.req.locality = static_cast<std::int64_t>(r.u64());
    } else {
      // v1 queue order was arrival order: synthesize tickets as read.
      key.priority = kPriorityNormal;
      key.ticket = m.next_ticket_++;
    }
    p.req.wait = true;
    p.req.priority = key.priority;
    p.enqueued_at = r.u64();
    m.queue_.emplace(key, std::move(p));
  }
  const std::uint32_t nrevoked = r.u32();
  for (std::uint32_t i = 0; i < nrevoked; ++i) {
    m.revoked_leases_.push_back(r.u64());
  }
  const std::uint32_t ncache = r.u32();
  for (std::uint32_t i = 0; i < ncache; ++i) {
    ClientReplies c;
    c.client = static_cast<dmpi::Rank>(r.u64());
    const std::uint32_t nreplies = r.u32();
    for (std::uint32_t j = 0; j < nreplies; ++j) {
      CachedReply reply;
      reply.reply_tag = static_cast<int>(r.u32());
      reply.frame = r.blob();
      c.replies.push_back(std::move(reply));
    }
    m.reply_cache_.push_back(std::move(c));
  }
  m.rebuild_indexes();
  return m;
}

std::uint64_t LeaseMachine::fingerprint() const {
  // Named buffer: ranging over `snapshot().bytes()` would iterate a span
  // into a Buffer already destroyed (C++20 range-for does not extend the
  // inner temporary's lifetime).
  const util::Buffer snap = snapshot();
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a 64 offset basis
  for (std::byte b : snap.bytes()) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 1099511628211ull;
  }
  return h;
}

void LeaseMachine::bind_metrics(obs::Registry* reg) {
  if (reg == metrics_bound_) return;
  metrics_bound_ = reg;
  if (reg == nullptr) {
    m_assigned_ = obs::Gauge{};
    m_assign_wait_ns_ = obs::Histogram{};
    for (auto& h : m_wait_by_class_) h = obs::Histogram{};
    m_heartbeat_latency_ns_ = obs::Histogram{};
    m_revocations_ = obs::Counter{};
    m_preemptions_ = obs::Counter{};
    return;
  }
  m_assigned_ = reg->gauge(metrics_prefix_ + "_assigned");
  m_assign_wait_ns_ = reg->histogram(metrics_prefix_ + "_assign_wait_ns",
                                     obs::latency_bounds_ns());
  for (std::uint32_t c = 0; c < kPriorityClasses; ++c) {
    m_wait_by_class_[c] = reg->histogram(
        obs::labeled(metrics_prefix_ + "_assign_wait_ns", "prio",
                     priority_class_name(c)),
        obs::latency_bounds_ns());
  }
  m_heartbeat_latency_ns_ = reg->histogram(
      metrics_prefix_ + "_heartbeat_latency_ns", obs::latency_bounds_ns());
  m_revocations_ = reg->counter(metrics_prefix_ + "_revocations_total");
  m_preemptions_ = reg->counter(metrics_prefix_ + "_preemptions_total");
}

void LeaseMachine::sample_assigned() {
  if (metrics_bound_ == nullptr) return;
  // Pool-utilization gauge: sampled after every request (each mutation
  // flows through apply()).
  m_assigned_.set(assigned_count());
}

}  // namespace dacc::arm
