#include "arm/lease_machine.hpp"

#include <algorithm>

#include "rpc/channel.hpp"

namespace dacc::arm {

using proto::WireReader;
using proto::WireWriter;

namespace {

/// Replies remembered per client for duplicate resends. Deep enough that a
/// client's whole failover window (a handful of in-flight requests) fits;
/// old entries age out FIFO.
constexpr std::size_t kReplyCacheDepth = 8;

/// Snapshot format version (bumped on any layout change).
constexpr std::uint32_t kSnapshotVersion = 1;

util::Buffer result_frame(ArmResult r) {
  return WireWriter{}.u32(static_cast<std::uint32_t>(r)).finish();
}

util::Buffer insufficient_frame() {
  return WireWriter{}
      .u32(static_cast<std::uint32_t>(ArmResult::kInsufficient))
      .u32(0)
      .finish();
}

}  // namespace

const char* to_string(ArmResult r) {
  switch (r) {
    case ArmResult::kOk:
      return "ok";
    case ArmResult::kInsufficient:
      return "insufficient accelerators";
    case ArmResult::kUnknownHandle:
      return "unknown handle";
    case ArmResult::kNotOwner:
      return "not the owner";
    case ArmResult::kRevoked:
      return "lease revoked";
    case ArmResult::kNotLeader:
      return "not the leader";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Liveness wire messages. Full frames (rpc header + payload) so the fuzz
// suite round-trips exactly what travels on kArmRequestTag; one-way
// messages carry reply tag 0.
// ---------------------------------------------------------------------------

util::Buffer Heartbeat::encode() const {
  return rpc::request_header(static_cast<std::uint32_t>(ArmOp::kHeartbeat), 0)
      .u64(static_cast<std::uint64_t>(daemon_rank))
      .u64(seq)
      .u32(device_ok ? 1 : 0)
      .u64(sent_at)
      .finish();
}

Heartbeat Heartbeat::decode(proto::WireReader& r) {
  Heartbeat hb;
  hb.daemon_rank = static_cast<dmpi::Rank>(r.u64());
  hb.seq = r.u64();
  hb.device_ok = r.u32() != 0;
  hb.sent_at = r.u64();
  return hb;
}

util::Buffer SweepRequest::encode() const {
  return rpc::request_header(static_cast<std::uint32_t>(ArmOp::kSweep), 0)
      .u64(period)
      .u32(miss_threshold)
      .u32(fresh ? 1 : 0)
      .finish();
}

SweepRequest SweepRequest::decode(proto::WireReader& r) {
  SweepRequest s;
  s.period = r.u64();
  s.miss_threshold = r.u32();
  s.fresh = r.u32() != 0;
  return s;
}

util::Buffer RevokeNotice::encode() const {
  return WireWriter{}
      .u64(static_cast<std::uint64_t>(daemon_rank))
      .u64(lease_id)
      .u64(job)
      .u64(revoked_at)
      .finish();
}

RevokeNotice RevokeNotice::decode(proto::WireReader& r) {
  RevokeNotice n;
  n.daemon_rank = static_cast<dmpi::Rank>(r.u64());
  n.lease_id = r.u64();
  n.job = r.u64();
  n.revoked_at = r.u64();
  return n;
}

util::Buffer ReplayReport::encode(int reply_tag) const {
  return rpc::request_header(static_cast<std::uint32_t>(ArmOp::kReplaced),
                             reply_tag)
      .u64(static_cast<std::uint64_t>(failed_rank))
      .u64(static_cast<std::uint64_t>(replacement_rank))
      .u64(job)
      .u32(replayed_ops)
      .u64(replayed_bytes)
      .finish();
}

ReplayReport ReplayReport::decode(proto::WireReader& r) {
  ReplayReport rep;
  rep.failed_rank = static_cast<dmpi::Rank>(r.u64());
  rep.replacement_rank = static_cast<dmpi::Rank>(r.u64());
  rep.job = r.u64();
  rep.replayed_ops = r.u32();
  rep.replayed_bytes = r.u64();
  return rep;
}

// ---------------------------------------------------------------------------
// Command
// ---------------------------------------------------------------------------

util::Buffer Command::encode() const {
  WireWriter w;
  w.u64(static_cast<std::uint64_t>(client))
      .u32(static_cast<std::uint32_t>(reply_tag))
      .u32(op)
      .blob(body.bytes());
  return w.finish();
}

Command Command::decode(proto::WireReader& r) {
  Command c;
  c.client = static_cast<dmpi::Rank>(r.u64());
  c.reply_tag = static_cast<int>(r.u32());
  c.op = r.u32();
  c.body = r.blob();
  return c;
}

// ---------------------------------------------------------------------------
// LeaseMachine
// ---------------------------------------------------------------------------

LeaseMachine::LeaseMachine(std::vector<AcceleratorInfo> pool,
                           QueuePolicy policy, std::string metrics_prefix)
    : policy_(policy), metrics_prefix_(std::move(metrics_prefix)) {
  slots_.reserve(pool.size());
  for (AcceleratorInfo& info : pool) {
    Slot s;
    s.info = std::move(info);
    slots_.push_back(std::move(s));
  }
}

std::uint32_t LeaseMachine::free_count(const std::string& kind) const {
  std::uint32_t n = 0;
  for (const Slot& s : slots_) {
    if (s.state == State::kFree && (kind.empty() || s.info.kind == kind)) {
      ++n;
    }
  }
  return n;
}

LeaseMachine::Slot* LeaseMachine::find_slot(dmpi::Rank daemon_rank) {
  for (Slot& s : slots_) {
    if (s.info.daemon_rank == daemon_rank) return &s;
  }
  return nullptr;
}

void LeaseMachine::release_slot(Slot& slot, SimTime now) {
  slot.assigned_total += now - slot.assigned_since;
  slot.state = State::kFree;
  slot.job = 0;
  slot.lease_id = 0;
  slot.owner = -1;
}

bool LeaseMachine::was_revoked(std::uint64_t lease_id) const {
  return std::find(revoked_leases_.begin(), revoked_leases_.end(), lease_id) !=
         revoked_leases_.end();
}

const LeaseMachine::CachedReply* LeaseMachine::cached(dmpi::Rank client,
                                                      int reply_tag) const {
  for (const ClientReplies& c : reply_cache_) {
    if (c.client != client) continue;
    for (const CachedReply& r : c.replies) {
      if (r.reply_tag == reply_tag) return &r;
    }
    return nullptr;
  }
  return nullptr;
}

bool LeaseMachine::seen(dmpi::Rank client, int reply_tag) const {
  if (reply_tag == 0) return false;
  if (cached(client, reply_tag) != nullptr) return true;
  for (const PendingAcquire& p : queue_) {
    if (p.client == client && p.reply_tag == reply_tag) return true;
  }
  return false;
}

void LeaseMachine::emit_reply(std::vector<Effect>& out, dmpi::Rank client,
                              int reply_tag, util::Buffer frame) {
  if (reply_tag != 0) {
    ClientReplies* entry = nullptr;
    for (ClientReplies& c : reply_cache_) {
      if (c.client == client) {
        entry = &c;
        break;
      }
    }
    if (entry == nullptr) {
      reply_cache_.push_back(ClientReplies{client, {}});
      entry = &reply_cache_.back();
    }
    entry->replies.push_back(CachedReply{reply_tag, frame.view()});
    while (entry->replies.size() > kReplyCacheDepth) {
      entry->replies.pop_front();
    }
  }
  Effect e;
  e.kind = Effect::Kind::kReply;
  e.to = client;
  e.tag = reply_tag;
  e.frame = std::move(frame);
  out.push_back(std::move(e));
}

void LeaseMachine::revoke_slot(std::vector<Effect>& out, Slot& slot,
                               SimTime now, const char* cause) {
  if (slot.state == State::kBroken) return;
  if (slot.state == State::kAssigned) {
    slot.assigned_total += now - slot.assigned_since;
    ++revocations_;
    if (metrics_bound_ != nullptr) m_revocations_.add(1);
    revoked_leases_.push_back(slot.lease_id);
    // Unsolicited push so the owner learns of the failure even between its
    // own requests; the tag encodes the daemon so a session holding several
    // leases can tell which one died.
    RevokeNotice notice{slot.info.daemon_rank, slot.lease_id, slot.job, now};
    Effect e;
    e.kind = Effect::Kind::kNotice;
    e.to = slot.owner;
    e.tag = kArmRevokeTagBase + slot.info.daemon_rank;
    e.frame = notice.encode();
    out.push_back(std::move(e));
  }
  Effect t;
  t.kind = Effect::Kind::kTrace;
  t.label =
      std::string(cause) + "-ac" + std::to_string(slot.info.daemon_rank);
  out.push_back(std::move(t));
  slot.state = State::kBroken;
  slot.job = 0;
  slot.lease_id = 0;
  slot.owner = -1;
}

void LeaseMachine::fail_unsatisfiable(std::vector<Effect>& out) {
  for (auto it = queue_.begin(); it != queue_.end();) {
    std::uint32_t alive = 0;
    for (const Slot& s : slots_) {
      if (s.state != State::kBroken &&
          (it->kind.empty() || s.info.kind == it->kind)) {
        ++alive;
      }
    }
    if (it->count > alive) {
      const dmpi::Rank client = it->client;
      const int reply_tag = it->reply_tag;
      it = queue_.erase(it);
      emit_reply(out, client, reply_tag, insufficient_frame());
    } else {
      ++it;
    }
  }
}

void LeaseMachine::handle_heartbeat(std::vector<Effect>& out,
                                    const Heartbeat& hb, SimTime now) {
  ++heartbeats_;
  if (metrics_bound_ != nullptr && hb.sent_at != 0 && now >= hb.sent_at) {
    m_heartbeat_latency_ns_.observe(
        static_cast<std::uint64_t>(now - hb.sent_at));
  }
  Slot* slot = find_slot(hb.daemon_rank);
  if (slot == nullptr || slot->state == State::kBroken) return;
  slot->last_beat = now;
  if (!hb.device_ok) {
    // The daemon is alive but its device is dead — no need to wait for the
    // miss threshold.
    revoke_slot(out, *slot, now, "device-fault");
    fail_unsatisfiable(out);
  }
}

void LeaseMachine::handle_sweep(std::vector<Effect>& out,
                                const SweepRequest& sweep, SimTime now) {
  if (sweep.fresh) {
    // First sweep after an idle phase: restart every beat clock instead of
    // comparing against timestamps from the previous activity burst.
    for (Slot& s : slots_) s.last_beat = now;
    return;
  }
  const SimDuration allowance = sweep.period * sweep.miss_threshold;
  bool revoked = false;
  for (Slot& s : slots_) {
    if (s.state == State::kBroken) continue;
    if (now - s.last_beat > allowance) {
      revoke_slot(out, s, now, "hb-miss");
      revoked = true;
    }
  }
  if (revoked) fail_unsatisfiable(out);
}

bool LeaseMachine::try_grant(std::vector<Effect>& out, dmpi::Rank client,
                             int reply_tag, std::uint64_t job,
                             std::uint32_t count, const std::string& kind,
                             SimTime now) {
  if (free_count(kind) < count) return false;
  WireWriter resp;
  resp.u32(static_cast<std::uint32_t>(ArmResult::kOk)).u32(count);
  std::uint32_t granted = 0;
  for (Slot& s : slots_) {
    if (granted == count) break;
    if (s.state != State::kFree) continue;
    if (!kind.empty() && s.info.kind != kind) continue;
    s.state = State::kAssigned;
    s.job = job;
    s.lease_id = next_lease_++;
    s.owner = client;
    s.assigned_since = now;
    resp.u64(static_cast<std::uint64_t>(s.info.daemon_rank)).u64(s.lease_id);
    ++granted;
  }
  acquisitions_ += count;
  emit_reply(out, client, reply_tag, resp.finish());
  return true;
}

void LeaseMachine::handle_acquire(std::vector<Effect>& out, dmpi::Rank client,
                                  int reply_tag, std::uint64_t job,
                                  std::uint32_t count, const std::string& kind,
                                  bool wait, SimTime now) {
  if (try_grant(out, client, reply_tag, job, count, kind, now)) {
    if (metrics_bound_ != nullptr) m_assign_wait_ns_.observe(0);
    return;
  }
  if (wait) {
    queue_.push_back(PendingAcquire{client, reply_tag, job, count, kind, now});
    return;
  }
  emit_reply(out, client, reply_tag, insufficient_frame());
}

void LeaseMachine::drain_queue(std::vector<Effect>& out, SimTime now) {
  if (policy_ == QueuePolicy::kFcfs) {
    // Strict FCFS: the head request blocks everything behind it, like a
    // batch queue without backfill.
    while (!queue_.empty()) {
      const PendingAcquire& head = queue_.front();
      if (!try_grant(out, head.client, head.reply_tag, head.job, head.count,
                     head.kind, now)) {
        return;
      }
      if (metrics_bound_ != nullptr) {
        m_assign_wait_ns_.observe(
            static_cast<std::uint64_t>(now - head.enqueued_at));
      }
      queue_.pop_front();
    }
    return;
  }
  // Backfill: serve any satisfiable request, preserving relative order
  // among the ones that fit (EASY-style, without reservations).
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (try_grant(out, it->client, it->reply_tag, it->job, it->count,
                  it->kind, now)) {
      if (metrics_bound_ != nullptr) {
        m_assign_wait_ns_.observe(
            static_cast<std::uint64_t>(now - it->enqueued_at));
      }
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
}

ApplyResult LeaseMachine::apply(const Command& cmd, SimTime now) {
  ApplyResult result;
  std::vector<Effect>& out = result.effects;
  // At-least-once resends: a command whose reply we already produced is
  // answered from the cache; one that is still queued at the pool keeps
  // waiting silently. Fresh commands fall through and mutate state exactly
  // once. (Single-ARM deployments mint unique tags, so this never fires
  // there.)
  if (cmd.reply_tag != 0) {
    if (const CachedReply* hit = cached(cmd.client, cmd.reply_tag)) {
      Effect e;
      e.kind = Effect::Kind::kReply;
      e.to = cmd.client;
      e.tag = cmd.reply_tag;
      e.frame = hit->frame.view();
      out.push_back(std::move(e));
      return result;
    }
    for (const PendingAcquire& p : queue_) {
      if (p.client == cmd.client && p.reply_tag == cmd.reply_tag) {
        return result;
      }
    }
  }
  WireReader req(cmd.body.view());
  switch (static_cast<ArmOp>(cmd.op)) {
    case ArmOp::kAcquire: {
      const std::uint64_t job = req.u64();
      const std::uint32_t count = req.u32();
      const bool wait = req.u32() != 0;
      const std::string kind = req.str();
      handle_acquire(out, cmd.client, cmd.reply_tag, job, count, kind, wait,
                     now);
      break;
    }
    case ArmOp::kRelease: {
      const std::uint64_t job = req.u64();
      const auto rank = static_cast<dmpi::Rank>(req.u64());
      const std::uint64_t lease_id = req.u64();
      ArmResult r = ArmResult::kOk;
      Slot* slot = find_slot(rank);
      if (slot == nullptr || slot->state != State::kAssigned ||
          slot->lease_id != lease_id) {
        // Distinguish "that lease was revoked under you" from plain
        // misuse so recovering clients can treat it as already-released.
        r = was_revoked(lease_id) ? ArmResult::kRevoked
                                  : ArmResult::kUnknownHandle;
      } else if (slot->job != job) {
        r = ArmResult::kNotOwner;
      } else {
        release_slot(*slot, now);
      }
      emit_reply(out, cmd.client, cmd.reply_tag, result_frame(r));
      drain_queue(out, now);
      break;
    }
    case ArmOp::kReleaseJob: {
      const std::uint64_t job = req.u64();
      for (Slot& s : slots_) {
        if (s.state == State::kAssigned && s.job == job) {
          release_slot(s, now);
        }
      }
      emit_reply(out, cmd.client, cmd.reply_tag, result_frame(ArmResult::kOk));
      drain_queue(out, now);
      break;
    }
    case ArmOp::kReportBroken: {
      const auto rank = static_cast<dmpi::Rank>(req.u64());
      Slot* slot = find_slot(rank);
      ArmResult r = ArmResult::kOk;
      if (slot == nullptr) {
        r = ArmResult::kUnknownHandle;
      } else {
        if (slot->state == State::kAssigned) {
          slot->assigned_total += now - slot->assigned_since;
        }
        slot->state = State::kBroken;
        slot->job = 0;
        slot->lease_id = 0;
        slot->owner = -1;
        Effect t;
        t.kind = Effect::Kind::kTrace;
        t.label = "reported-ac" + std::to_string(rank);
        out.push_back(std::move(t));
      }
      emit_reply(out, cmd.client, cmd.reply_tag, result_frame(r));
      fail_unsatisfiable(out);
      break;
    }
    case ArmOp::kStats: {
      const PoolStats s = stats();
      emit_reply(out, cmd.client, cmd.reply_tag,
                 WireWriter{}
                     .u32(static_cast<std::uint32_t>(ArmResult::kOk))
                     .u32(s.total)
                     .u32(s.free)
                     .u32(s.assigned)
                     .u32(s.broken)
                     .u64(s.acquisitions)
                     .u32(s.queued_requests)
                     .u64(s.heartbeats)
                     .u32(s.revocations)
                     .u32(s.replacements)
                     .finish());
      break;
    }
    case ArmOp::kHeartbeat: {
      handle_heartbeat(out, Heartbeat::decode(req), now);
      break;  // one-way, no reply
    }
    case ArmOp::kSweep: {
      handle_sweep(out, SweepRequest::decode(req), now);
      break;  // one-way, no reply
    }
    case ArmOp::kReplaced: {
      const ReplayReport report = ReplayReport::decode(req);
      ++replacements_;
      Effect t;
      t.kind = Effect::Kind::kTrace;
      t.label = "replaced-ac" + std::to_string(report.failed_rank) + "->ac" +
                std::to_string(report.replacement_rank);
      out.push_back(std::move(t));
      emit_reply(out, cmd.client, cmd.reply_tag, result_frame(ArmResult::kOk));
      break;
    }
    case ArmOp::kShutdown: {
      emit_reply(out, cmd.client, cmd.reply_tag, result_frame(ArmResult::kOk));
      result.shutdown = true;
      break;
    }
    default:
      throw proto::WireError("arm: unknown op " + std::to_string(cmd.op));
  }
  return result;
}

void LeaseMachine::validate(const Command& cmd) {
  WireReader req(cmd.body.view());
  switch (static_cast<ArmOp>(cmd.op)) {
    case ArmOp::kAcquire:
      req.u64();
      req.u32();
      req.u32();
      req.str();
      break;
    case ArmOp::kRelease:
      req.u64();
      req.u64();
      req.u64();
      break;
    case ArmOp::kReleaseJob:
      req.u64();
      break;
    case ArmOp::kReportBroken:
      req.u64();
      break;
    case ArmOp::kStats:
    case ArmOp::kShutdown:
      break;
    case ArmOp::kHeartbeat:
      Heartbeat::decode(req);
      break;
    case ArmOp::kSweep:
      SweepRequest::decode(req);
      break;
    case ArmOp::kReplaced:
      ReplayReport::decode(req);
      break;
    default:
      throw proto::WireError("arm: unknown op " + std::to_string(cmd.op));
  }
}

PoolStats LeaseMachine::stats() const {
  PoolStats s;
  s.total = static_cast<std::uint32_t>(slots_.size());
  for (const Slot& slot : slots_) {
    switch (slot.state) {
      case State::kFree:
        ++s.free;
        break;
      case State::kAssigned:
        ++s.assigned;
        break;
      case State::kBroken:
        ++s.broken;
        break;
    }
  }
  s.acquisitions = acquisitions_;
  s.queued_requests = static_cast<std::uint32_t>(queue_.size());
  s.heartbeats = heartbeats_;
  s.revocations = revocations_;
  s.replacements = replacements_;
  return s;
}

std::vector<double> LeaseMachine::utilization(SimTime now) const {
  std::vector<double> out;
  out.reserve(slots_.size());
  for (const Slot& s : slots_) {
    SimDuration busy = s.assigned_total;
    if (s.state == State::kAssigned) busy += now - s.assigned_since;
    out.push_back(now == 0 ? 0.0
                           : static_cast<double>(busy) /
                                 static_cast<double>(now));
  }
  return out;
}

std::int64_t LeaseMachine::assigned_count() const {
  std::int64_t assigned = 0;
  for (const Slot& s : slots_) {
    if (s.state == State::kAssigned) ++assigned;
  }
  return assigned;
}

util::Buffer LeaseMachine::snapshot() const {
  WireWriter w;
  w.u32(kSnapshotVersion);
  w.u32(static_cast<std::uint32_t>(policy_));
  w.u64(next_lease_)
      .u64(acquisitions_)
      .u64(heartbeats_)
      .u32(revocations_)
      .u32(replacements_);
  w.u32(static_cast<std::uint32_t>(slots_.size()));
  for (const Slot& s : slots_) {
    w.u64(static_cast<std::uint64_t>(s.info.daemon_rank))
        .str(s.info.device_name)
        .str(s.info.kind)
        .u32(static_cast<std::uint32_t>(s.state))
        .u64(s.job)
        .u64(s.lease_id)
        .u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(s.owner)))
        .u64(s.assigned_since)
        .u64(s.assigned_total)
        .u64(s.last_beat);
  }
  w.u32(static_cast<std::uint32_t>(queue_.size()));
  for (const PendingAcquire& p : queue_) {
    w.u64(static_cast<std::uint64_t>(p.client))
        .u32(static_cast<std::uint32_t>(p.reply_tag))
        .u64(p.job)
        .u32(p.count)
        .str(p.kind)
        .u64(p.enqueued_at);
  }
  w.u32(static_cast<std::uint32_t>(revoked_leases_.size()));
  for (std::uint64_t id : revoked_leases_) w.u64(id);
  w.u32(static_cast<std::uint32_t>(reply_cache_.size()));
  for (const ClientReplies& c : reply_cache_) {
    w.u64(static_cast<std::uint64_t>(c.client));
    w.u32(static_cast<std::uint32_t>(c.replies.size()));
    for (const CachedReply& r : c.replies) {
      w.u32(static_cast<std::uint32_t>(r.reply_tag));
      w.blob(r.frame.bytes());
    }
  }
  return w.finish();
}

LeaseMachine LeaseMachine::restore(proto::WireReader& r,
                                   std::string metrics_prefix) {
  // Counts are untrusted (InstallSnapshot frames cross the fuzzer): nothing
  // is pre-reserved from them, and every element read is bounds-checked, so
  // a garbage count throws on the first missing byte instead of allocating.
  if (r.u32() != kSnapshotVersion) {
    throw proto::WireError("arm: unknown lease snapshot version");
  }
  LeaseMachine m;
  m.metrics_prefix_ = std::move(metrics_prefix);
  const std::uint32_t policy = r.u32();
  if (policy > static_cast<std::uint32_t>(QueuePolicy::kBackfill)) {
    throw proto::WireError("arm: bad queue policy in snapshot");
  }
  m.policy_ = static_cast<QueuePolicy>(policy);
  m.next_lease_ = r.u64();
  m.acquisitions_ = r.u64();
  m.heartbeats_ = r.u64();
  m.revocations_ = r.u32();
  m.replacements_ = r.u32();
  const std::uint32_t nslots = r.u32();
  for (std::uint32_t i = 0; i < nslots; ++i) {
    Slot s;
    s.info.daemon_rank = static_cast<dmpi::Rank>(r.u64());
    s.info.device_name = r.str();
    s.info.kind = r.str();
    const std::uint32_t state = r.u32();
    if (state > static_cast<std::uint32_t>(State::kBroken)) {
      throw proto::WireError("arm: bad slot state in snapshot");
    }
    s.state = static_cast<State>(state);
    s.job = r.u64();
    s.lease_id = r.u64();
    s.owner = static_cast<dmpi::Rank>(static_cast<std::int64_t>(r.u64()));
    s.assigned_since = r.u64();
    s.assigned_total = r.u64();
    s.last_beat = r.u64();
    m.slots_.push_back(std::move(s));
  }
  const std::uint32_t nqueue = r.u32();
  for (std::uint32_t i = 0; i < nqueue; ++i) {
    PendingAcquire p;
    p.client = static_cast<dmpi::Rank>(r.u64());
    p.reply_tag = static_cast<int>(r.u32());
    p.job = r.u64();
    p.count = r.u32();
    p.kind = r.str();
    p.enqueued_at = r.u64();
    m.queue_.push_back(std::move(p));
  }
  const std::uint32_t nrevoked = r.u32();
  for (std::uint32_t i = 0; i < nrevoked; ++i) {
    m.revoked_leases_.push_back(r.u64());
  }
  const std::uint32_t ncache = r.u32();
  for (std::uint32_t i = 0; i < ncache; ++i) {
    ClientReplies c;
    c.client = static_cast<dmpi::Rank>(r.u64());
    const std::uint32_t nreplies = r.u32();
    for (std::uint32_t j = 0; j < nreplies; ++j) {
      CachedReply reply;
      reply.reply_tag = static_cast<int>(r.u32());
      reply.frame = r.blob();
      c.replies.push_back(std::move(reply));
    }
    m.reply_cache_.push_back(std::move(c));
  }
  return m;
}

std::uint64_t LeaseMachine::fingerprint() const {
  // Named buffer: ranging over `snapshot().bytes()` would iterate a span
  // into a Buffer already destroyed (C++20 range-for does not extend the
  // inner temporary's lifetime).
  const util::Buffer snap = snapshot();
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a 64 offset basis
  for (std::byte b : snap.bytes()) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 1099511628211ull;
  }
  return h;
}

void LeaseMachine::bind_metrics(obs::Registry* reg) {
  if (reg == metrics_bound_) return;
  metrics_bound_ = reg;
  if (reg == nullptr) {
    m_assigned_ = obs::Gauge{};
    m_assign_wait_ns_ = obs::Histogram{};
    m_heartbeat_latency_ns_ = obs::Histogram{};
    m_revocations_ = obs::Counter{};
    return;
  }
  m_assigned_ = reg->gauge(metrics_prefix_ + "_assigned");
  m_assign_wait_ns_ = reg->histogram(metrics_prefix_ + "_assign_wait_ns",
                                     obs::latency_bounds_ns());
  m_heartbeat_latency_ns_ = reg->histogram(
      metrics_prefix_ + "_heartbeat_latency_ns", obs::latency_bounds_ns());
  m_revocations_ = reg->counter(metrics_prefix_ + "_revocations_total");
}

void LeaseMachine::sample_assigned() {
  if (metrics_bound_ == nullptr) return;
  // Pool-utilization gauge: sampled after every request (each mutation
  // flows through apply()).
  m_assigned_.set(assigned_count());
}

}  // namespace dacc::arm
