// Wire format of the replicated-ARM consensus protocol (DESIGN.md §11).
//
// The replicas speak a Raft-shaped protocol over dmpi. All consensus
// traffic travels on the ordinary ARM request tag — one posted receive per
// replica serves clients and peers alike — and is distinguished from client
// commands by the op word: ArmOp stays in single digits, consensus ops
// start at 100. Every message is a flat frame behind the standard rpc
// header (op word + reply-tag word, reply tag 0: consensus messages are
// one-way; answers are their own frames).
//
// Decoders follow the middleware's hardening convention: bounded reads that
// throw proto::WireError on truncation or impossible counts, so a fuzzed or
// corrupted frame is dropped whole — never partially applied (the fuzz tier
// in tests/arm/raft_fuzz_test.cpp walks every truncation point).
#pragma once

#include <cstdint>
#include <vector>

#include "arm/lease_machine.hpp"
#include "dmpi/mpi.hpp"
#include "proto/wire.hpp"
#include "util/buffer.hpp"
#include "util/units.hpp"

namespace dacc::arm::raft {

/// Consensus op words on kArmRequestTag. Values >= kFirstRaftOp so they can
/// never collide with ArmOp client commands sharing the tag.
inline constexpr std::uint32_t kFirstRaftOp = 100;

enum class RaftOp : std::uint32_t {
  kRequestVote = 100,
  kVoteReply = 101,
  kAppendEntries = 102,
  kAppendReply = 103,
  kInstallSnapshot = 104,
  kSnapshotReply = 105,
  kPreVote = 106,
  kPreVoteReply = 107,
};

inline bool is_raft_op(std::uint32_t op_word) {
  return op_word >= kFirstRaftOp &&
         op_word <= static_cast<std::uint32_t>(RaftOp::kPreVoteReply);
}

/// One replicated-log entry: a client command plus the simulated time the
/// leader stamped at proposal. Replicas apply with the stamped time — never
/// their local apply time — so every machine's time-derived state
/// (assignment clocks, beat timestamps) is bit-identical regardless of when
/// the entry reached them.
struct LogEntry {
  std::uint64_t term = 0;
  SimTime at = 0;
  Command cmd;
};

struct RequestVote {
  std::uint64_t term = 0;
  dmpi::Rank candidate = -1;
  std::uint64_t last_log_index = 0;
  std::uint64_t last_log_term = 0;

  util::Buffer encode() const;
  static RequestVote decode(proto::WireReader& r);
};

struct VoteReply {
  std::uint64_t term = 0;
  dmpi::Rank voter = -1;
  bool granted = false;

  util::Buffer encode() const;
  static VoteReply decode(proto::WireReader& r);
};

/// Pre-vote probe (§9.6 of the Raft dissertation): a follower whose
/// election timer fired asks whether an election at `term` (its current
/// term + 1) could succeed, WITHOUT bumping its own term. Peers grant only
/// if the candidate's log is current and they themselves have not heard
/// from a live leader within the minimum election timeout — so a rejoining
/// replica that missed a few terms can no longer depose a healthy leader
/// just by timing out. Grants are advisory: they do not touch voted_for.
struct PreVote {
  std::uint64_t term = 0;  ///< the term the candidate would campaign at
  dmpi::Rank candidate = -1;
  std::uint64_t last_log_index = 0;
  std::uint64_t last_log_term = 0;

  util::Buffer encode() const;
  static PreVote decode(proto::WireReader& r);
};

struct PreVoteReply {
  std::uint64_t term = 0;  ///< echoes the probed term
  dmpi::Rank voter = -1;
  bool granted = false;

  util::Buffer encode() const;
  static PreVoteReply decode(proto::WireReader& r);
};

struct AppendEntries {
  std::uint64_t term = 0;
  dmpi::Rank leader = -1;
  std::uint64_t prev_index = 0;
  std::uint64_t prev_term = 0;
  std::uint64_t commit = 0;
  /// Leader is idle with everything committed: a follower that has applied
  /// up to `commit` may park until the cluster submits work again — the
  /// handshake that lets the whole replica group drain the event queue.
  bool quiesce = false;
  std::vector<LogEntry> entries;

  util::Buffer encode() const;
  static AppendEntries decode(proto::WireReader& r);
};

struct AppendReply {
  std::uint64_t term = 0;
  dmpi::Rank follower = -1;
  bool success = false;
  /// Highest log index known replicated at the follower (valid on success).
  std::uint64_t match_index = 0;
  /// Follower's commit index after processing — the leader's quiescence
  /// test ("has everyone caught up?") reads these acks, not timeouts.
  std::uint64_t acked_commit = 0;

  util::Buffer encode() const;
  static AppendReply decode(proto::WireReader& r);
};

struct InstallSnapshot {
  std::uint64_t term = 0;
  dmpi::Rank leader = -1;
  std::uint64_t last_index = 0;
  std::uint64_t last_term = 0;
  /// LeaseMachine::snapshot() bytes covering the log through last_index.
  util::Buffer snapshot;

  util::Buffer encode() const;
  static InstallSnapshot decode(proto::WireReader& r);
};

struct SnapshotReply {
  std::uint64_t term = 0;
  dmpi::Rank follower = -1;
  std::uint64_t match_index = 0;

  util::Buffer encode() const;
  static SnapshotReply decode(proto::WireReader& r);
};

}  // namespace dacc::arm::raft
