// Replicated ARM: one Raft replica hosting the lease state machine.
//
// The single ARM of the paper's Section III.B.2 is a single point of
// failure for the whole cluster's resource management. This deployment
// replaces it with a small replica group (3–5 fabric nodes) running the
// lease machine behind a Raft-style replicated log: clients still speak the
// unchanged ARM protocol to whichever replica they believe is the leader,
// followers redirect them (ArmResult::kNotLeader + a leader hint), and a
// leader kill loses neither the lease table nor queued acquisitions — the
// new leader's machine is rebuilt from the same committed log.
//
// Everything is deterministic (DESIGN.md §11): election timeouts come from
// a per-replica seeded RNG over simulated time, log entries carry the
// leader's proposal timestamp so replicas apply with identical `now`
// values, and only the leader-at-apply executes effects or feeds the lease
// machine's metrics. Two runs with the same seed elect the same leaders in
// the same terms at the same simulated times on every execution backend.
//
// The replica group also has to let the discrete-event engine drain: a run
// ends when no events remain, so the replicas cannot heartbeat forever.
// While the cluster has no active jobs and the log is fully committed and
// acked everywhere, the leader flags its (empty) AppendEntries with
// `quiesce`; followers that have applied everything park on the cluster's
// activity gate after acking, and the leader parks once every live peer
// acked the final commit. Submitting a job notifies the gates and the
// group resumes — the leader opens with a fresh (amnesty) liveness sweep
// so the idle gap never reads as missed heartbeats.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "arm/lease_machine.hpp"
#include "arm/raft/wire.hpp"
#include "dmpi/mpi.hpp"
#include "obs/metrics.hpp"
#include "rpc/channel.hpp"
#include "sim/sync.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace dacc::arm::raft {

/// Consensus timing/size knobs. Defaults are sized for the middleware's
/// sub-millisecond fabric: elections settle within a few milliseconds of a
/// leader death, and the AppendEntries cadence stays well under the
/// client-side failover window.
struct RaftParams {
  /// Leader AppendEntries cadence (also the liveness heartbeat of the
  /// consensus layer itself).
  SimDuration ae_interval = 400'000;  // 400 us
  /// Election timeout drawn uniformly from [election_min, election_max] —
  /// per-replica seeded RNG, so ties are deterministic, not metastable.
  SimDuration election_min = 1'500'000;  // 1.5 ms
  SimDuration election_max = 3'000'000;  // 3 ms
  /// Group-wide seed; each replica derives its own stream from it.
  std::uint64_t seed = 0xDACC'5EEDull;
  /// Applied entries retained before the log is compacted into a machine
  /// snapshot (per replica, independently).
  std::uint32_t snapshot_threshold = 128;
  /// Consecutive unanswered AppendEntries rounds before the leader stops
  /// waiting on a peer for quiescence purposes (the peer is presumed
  /// killed; a reply instantly revives it).
  std::uint32_t dead_rounds = 8;
  /// Pre-vote phase (Raft dissertation §9.6): before bumping its term, a
  /// timed-out follower probes whether an election could succeed. A replica
  /// rejoining after a partition can no longer depose a healthy leader just
  /// by having timed out and inflated its term while isolated.
  bool pre_vote = true;
};

/// One ARM replica. Construct one per replica rank, spawn run() as an
/// engine daemon on that rank's fabric node.
class RaftNode {
 public:
  enum class Role : std::uint32_t { kFollower = 0, kCandidate = 1, kLeader = 2 };

  RaftNode(dmpi::World& world, dmpi::Rank self_world_rank, int replica_index,
           std::vector<dmpi::Rank> replica_ranks,
           std::vector<AcceleratorInfo> pool, QueuePolicy policy,
           RaftParams params, HeartbeatParams heartbeat,
           PlacementMap placement = {});

  /// Wires the cluster's activity signal: `active()` says whether any job
  /// is running (read from the replica's own context — the cluster's
  /// counter is global-band serial state), `gate` is notified on job
  /// submission. Without a gate the node never parks (manual harnesses
  /// that drive the engine with run_until).
  void set_activity_gate(std::function<bool()> active, sim::WaitQueue* gate);

  /// Service loop (engine daemon). Returns after halt() or an applied
  /// kShutdown command.
  void run(sim::Context& ctx);

  /// Marks the replica killed: the loop exits at its next wakeup and never
  /// touches the network again. Call from the serial global band (chaos
  /// schedules), paired with failing the replica's fabric link.
  void halt() { halted_ = true; }
  bool halted() const { return halted_; }

  // --- introspection (tests/harnesses; read between engine steps) ---------
  Role role() const { return role_; }
  std::uint64_t term() const { return term_; }
  dmpi::Rank leader_hint() const { return leader_hint_; }
  std::uint64_t commit_index() const { return commit_; }
  std::uint64_t last_applied() const { return applied_; }
  std::uint64_t last_log_index() const { return snap_index_ + log_.size(); }
  std::uint64_t snapshot_index() const { return snap_index_; }
  std::uint64_t elections_started() const { return elections_; }
  const LeaseMachine& machine() const { return machine_; }

 private:
  /// Leader-side replication progress for one peer.
  struct Peer {
    std::uint64_t next = 1;          ///< next log index to send
    std::uint64_t match = 0;         ///< highest index known replicated
    std::uint64_t acked_commit = 0;  ///< follower's acked commit index
    std::uint32_t unacked = 0;       ///< AE rounds since the last reply
    bool dead = false;               ///< presumed killed (quiescence only)
  };

  // Log addressing: log_[i] holds absolute index snap_index_ + 1 + i.
  std::uint64_t term_at(std::uint64_t index) const;
  const LogEntry& entry(std::uint64_t index) const {
    return log_.at(static_cast<std::size_t>(index - snap_index_ - 1));
  }

  SimDuration draw_timeout();
  bool should_park() const;
  void wake(sim::Context& ctx);
  int index_of(dmpi::Rank replica) const;
  void trace(sim::Context& ctx, const std::string& label);
  void bind_metrics();
  void send_peer(dmpi::Mpi& mpi, dmpi::Rank to, util::Buffer frame);

  void become_follower(std::uint64_t term);
  /// Election-timeout entry point: pre-vote probe first when enabled (and
  /// the group has peers to probe), otherwise a real election.
  void maybe_start_election(sim::Context& ctx, dmpi::Mpi& mpi);
  void begin_prevote(sim::Context& ctx, dmpi::Mpi& mpi);
  void start_election(sim::Context& ctx, dmpi::Mpi& mpi);
  void become_leader(sim::Context& ctx);
  void propose_sweep(sim::Context& ctx, bool fresh);
  void append_entry(LogEntry entry);
  void leader_tick(sim::Context& ctx, dmpi::Mpi& mpi);
  void broadcast_append(dmpi::Mpi& mpi, bool count_round);
  void send_append_to(dmpi::Mpi& mpi, int peer);
  void advance_commit();
  void apply_committed(sim::Context& ctx, rpc::ServerChannel& channel);
  void maybe_compact();
  void execute_effects(sim::Context& ctx, rpc::ServerChannel& channel,
                       std::vector<Effect>& effects);

  void handle_raft(sim::Context& ctx, dmpi::Mpi& mpi, rpc::Inbound& in);
  void handle_client(sim::Context& ctx, rpc::ServerChannel& channel,
                     dmpi::Mpi& mpi, rpc::Inbound& in);
  void on_request_vote(sim::Context& ctx, dmpi::Mpi& mpi,
                       const RequestVote& m);
  void on_vote_reply(sim::Context& ctx, const VoteReply& m);
  void on_append_entries(sim::Context& ctx, dmpi::Mpi& mpi, AppendEntries m);
  void on_append_reply(dmpi::Mpi& mpi, const AppendReply& m);
  void on_install_snapshot(sim::Context& ctx, dmpi::Mpi& mpi,
                           InstallSnapshot m);
  void on_snapshot_reply(const SnapshotReply& m);
  void on_pre_vote(sim::Context& ctx, dmpi::Mpi& mpi, const PreVote& m);
  void on_pre_vote_reply(sim::Context& ctx, dmpi::Mpi& mpi,
                         const PreVoteReply& m);

  dmpi::World& world_;
  dmpi::Rank self_;
  int index_;
  std::vector<dmpi::Rank> replicas_;
  RaftParams params_;
  HeartbeatParams heartbeat_;
  util::Rng rng_;
  LeaseMachine machine_;

  // --- persistent Raft state (would be on disk in a real deployment) ------
  Role role_ = Role::kFollower;
  std::uint64_t term_ = 0;
  dmpi::Rank voted_for_ = -1;
  std::vector<LogEntry> log_;
  std::uint64_t snap_index_ = 0;  ///< log compacted through this index
  std::uint64_t snap_term_ = 0;
  util::Buffer snap_;  ///< machine snapshot at snap_index_

  // --- volatile state -----------------------------------------------------
  dmpi::Rank leader_hint_ = -1;
  std::uint64_t commit_ = 0;
  std::uint64_t applied_ = 0;
  std::vector<Peer> peers_;    ///< parallel to replicas_; self entry unused
  std::vector<bool> votes_;    ///< parallel to replicas_ (candidate state)
  SimTime election_deadline_ = 0;
  SimTime ae_deadline_ = 0;
  SimTime next_sweep_at_ = 0;
  std::uint64_t elections_ = 0;

  // --- pre-vote state (dissertation §9.6) ---------------------------------
  bool prevote_active_ = false;
  std::uint64_t prevote_term_ = 0;     ///< term the probe campaigns for
  std::vector<bool> prevotes_;         ///< parallel to replicas_
  /// Last time a live leader was heard (valid AppendEntries or
  /// InstallSnapshot, or a gate wakeup). Pre-vote grants require this to be
  /// at least election_min stale — NOT our own election deadline, which we
  /// reset on our own timeout and would livelock symmetric probes.
  SimTime last_leader_contact_ = 0;

  // --- parking / lifecycle ------------------------------------------------
  std::function<bool()> active_;
  sim::WaitQueue* gate_ = nullptr;
  bool activated_ = false;    ///< woken by the gate at least once
  bool quiesce_ok_ = false;   ///< follower: last AE carried the quiesce flag
  bool halted_ = false;
  bool shutdown_ = false;

  // Metrics (lazy-bound, no-op handles when no registry is attached).
  obs::Registry* metrics_bound_ = nullptr;
  obs::Counter m_elections_;
  obs::Gauge m_term_;
  obs::Histogram m_commit_lag_ns_;
  // Raft SLO observability: how long elections take, how often leadership
  // moves, and how far replication/apply trail the log head. All values are
  // simulated-time-derived, so they stay inside the deterministic snapshot.
  obs::Counter m_leader_changes_;
  obs::Histogram m_election_latency_ns_;
  obs::Gauge m_commit_index_;
  obs::Gauge m_replication_lag_;
  SimTime election_began_ = 0;  ///< candidacy start (election latency metric)
};

}  // namespace dacc::arm::raft
