#include "arm/raft/wire.hpp"

#include "rpc/channel.hpp"

namespace dacc::arm::raft {

using proto::WireReader;
using proto::WireWriter;

namespace {

/// Smallest possible encoded LogEntry: term + at + the fixed part of a
/// Command (client, reply tag, op, empty-body length). Entry counts are
/// validated against it so a corrupted count field can never drive a
/// multi-gigabyte reserve or a deep read loop over a short frame.
constexpr std::size_t kMinEntryBytes = 8 + 8 + (8 + 4 + 4 + 4);

std::uint64_t rank_word(dmpi::Rank r) {
  return static_cast<std::uint64_t>(static_cast<std::int64_t>(r));
}

dmpi::Rank read_rank(WireReader& r) {
  return static_cast<dmpi::Rank>(static_cast<std::int64_t>(r.u64()));
}

WireWriter header(RaftOp op) {
  // Consensus messages are one-way: reply tag 0, like the liveness frames.
  return rpc::request_header(static_cast<std::uint32_t>(op), 0);
}

}  // namespace

util::Buffer RequestVote::encode() const {
  return header(RaftOp::kRequestVote)
      .u64(term)
      .u64(rank_word(candidate))
      .u64(last_log_index)
      .u64(last_log_term)
      .finish();
}

RequestVote RequestVote::decode(WireReader& r) {
  RequestVote m;
  m.term = r.u64();
  m.candidate = read_rank(r);
  m.last_log_index = r.u64();
  m.last_log_term = r.u64();
  return m;
}

util::Buffer VoteReply::encode() const {
  return header(RaftOp::kVoteReply)
      .u64(term)
      .u64(rank_word(voter))
      .u32(granted ? 1 : 0)
      .finish();
}

VoteReply VoteReply::decode(WireReader& r) {
  VoteReply m;
  m.term = r.u64();
  m.voter = read_rank(r);
  m.granted = r.u32() != 0;
  return m;
}

util::Buffer PreVote::encode() const {
  return header(RaftOp::kPreVote)
      .u64(term)
      .u64(rank_word(candidate))
      .u64(last_log_index)
      .u64(last_log_term)
      .finish();
}

PreVote PreVote::decode(WireReader& r) {
  PreVote m;
  m.term = r.u64();
  m.candidate = read_rank(r);
  m.last_log_index = r.u64();
  m.last_log_term = r.u64();
  return m;
}

util::Buffer PreVoteReply::encode() const {
  return header(RaftOp::kPreVoteReply)
      .u64(term)
      .u64(rank_word(voter))
      .u32(granted ? 1 : 0)
      .finish();
}

PreVoteReply PreVoteReply::decode(WireReader& r) {
  PreVoteReply m;
  m.term = r.u64();
  m.voter = read_rank(r);
  m.granted = r.u32() != 0;
  return m;
}

util::Buffer AppendEntries::encode() const {
  WireWriter w = header(RaftOp::kAppendEntries);
  w.u64(term)
      .u64(rank_word(leader))
      .u64(prev_index)
      .u64(prev_term)
      .u64(commit)
      .u32(quiesce ? 1 : 0)
      .u32(static_cast<std::uint32_t>(entries.size()));
  for (const LogEntry& e : entries) {
    w.u64(e.term).u64(static_cast<std::uint64_t>(e.at));
    util::Buffer cmd = e.cmd.encode();
    w.bytes(cmd.bytes());
  }
  return w.finish();
}

AppendEntries AppendEntries::decode(WireReader& r) {
  AppendEntries m;
  m.term = r.u64();
  m.leader = read_rank(r);
  m.prev_index = r.u64();
  m.prev_term = r.u64();
  m.commit = r.u64();
  m.quiesce = r.u32() != 0;
  const std::uint32_t n = r.u32();
  if (n > r.remaining() / kMinEntryBytes) {
    throw proto::WireError("raft: AppendEntries count exceeds frame");
  }
  m.entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    LogEntry e;
    e.term = r.u64();
    e.at = static_cast<SimTime>(r.u64());
    e.cmd = Command::decode(r);
    m.entries.push_back(std::move(e));
  }
  return m;
}

util::Buffer AppendReply::encode() const {
  return header(RaftOp::kAppendReply)
      .u64(term)
      .u64(rank_word(follower))
      .u32(success ? 1 : 0)
      .u64(match_index)
      .u64(acked_commit)
      .finish();
}

AppendReply AppendReply::decode(WireReader& r) {
  AppendReply m;
  m.term = r.u64();
  m.follower = read_rank(r);
  m.success = r.u32() != 0;
  m.match_index = r.u64();
  m.acked_commit = r.u64();
  return m;
}

util::Buffer InstallSnapshot::encode() const {
  return header(RaftOp::kInstallSnapshot)
      .u64(term)
      .u64(rank_word(leader))
      .u64(last_index)
      .u64(last_term)
      .blob(snapshot.bytes())
      .finish();
}

InstallSnapshot InstallSnapshot::decode(WireReader& r) {
  InstallSnapshot m;
  m.term = r.u64();
  m.leader = read_rank(r);
  m.last_index = r.u64();
  m.last_term = r.u64();
  m.snapshot = r.blob();
  return m;
}

util::Buffer SnapshotReply::encode() const {
  return header(RaftOp::kSnapshotReply)
      .u64(term)
      .u64(rank_word(follower))
      .u64(match_index)
      .finish();
}

SnapshotReply SnapshotReply::decode(WireReader& r) {
  SnapshotReply m;
  m.term = r.u64();
  m.follower = read_rank(r);
  m.match_index = r.u64();
  return m;
}

}  // namespace dacc::arm::raft
