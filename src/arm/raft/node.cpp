#include "arm/raft/node.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "obs/flight.hpp"
#include "sim/trace.hpp"

namespace dacc::arm::raft {

using proto::WireReader;
using proto::WireWriter;

namespace {
/// Splitmix-style stream split: replicas share one group seed but must not
/// share a random stream, or every election timeout would tie.
std::uint64_t replica_seed(std::uint64_t group_seed, int replica_index) {
  return group_seed ^
         (0x9E37'79B9'7F4A'7C15ull * static_cast<std::uint64_t>(replica_index + 1));
}
}  // namespace

RaftNode::RaftNode(dmpi::World& world, dmpi::Rank self_world_rank,
                   int replica_index, std::vector<dmpi::Rank> replica_ranks,
                   std::vector<AcceleratorInfo> pool, QueuePolicy policy,
                   RaftParams params, HeartbeatParams heartbeat,
                   PlacementMap placement)
    : world_(world),
      self_(self_world_rank),
      index_(replica_index),
      replicas_(std::move(replica_ranks)),
      params_(params),
      heartbeat_(heartbeat),
      rng_(replica_seed(params.seed, replica_index)),
      machine_(std::move(pool), policy, "dacc_arm", std::move(placement)),
      peers_(replicas_.size()),
      votes_(replicas_.size(), false),
      prevotes_(replicas_.size(), false) {}

void RaftNode::set_activity_gate(std::function<bool()> active,
                                 sim::WaitQueue* gate) {
  active_ = std::move(active);
  gate_ = gate;
}

std::uint64_t RaftNode::term_at(std::uint64_t index) const {
  if (index == 0) return 0;
  if (index == snap_index_) return snap_term_;
  return entry(index).term;
}

SimDuration RaftNode::draw_timeout() {
  const std::uint64_t span = static_cast<std::uint64_t>(
      params_.election_max - params_.election_min + 1);
  return params_.election_min +
         static_cast<SimDuration>(rng_.next_below(span));
}

int RaftNode::index_of(dmpi::Rank replica) const {
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (replicas_[i] == replica) return static_cast<int>(i);
  }
  return -1;
}

void RaftNode::trace(sim::Context& ctx, const std::string& label) {
  // Role transitions are exactly the events a post-mortem wants: mirror
  // every raft trace label into the flight recorder (independent of whether
  // a Tracer is attached).
  if (obs::FlightRecorder* fr = world_.engine().flight()) {
    fr->note(ctx.now(), "raft", label,
             world_.engine().current_trace().trace_id);
  }
  if (sim::Tracer* tracer = world_.engine().tracer()) {
    tracer->record("raft", label, ctx.now(), ctx.now());
  }
}

void RaftNode::bind_metrics() {
  obs::Registry* const reg = world_.engine().metrics();
  // The lease machine's series ("dacc_arm_*") must count each event exactly
  // once across the group, so only the leader-at-apply keeps them bound.
  machine_.bind_metrics(role_ == Role::kLeader ? reg : nullptr);
  if (reg == metrics_bound_ || reg == nullptr) return;
  const std::string labels = obs::labeled("", "replica", std::to_string(index_));
  m_elections_ = reg->counter("dacc_raft_elections_total" + labels);
  m_term_ = reg->gauge("dacc_raft_term" + labels);
  m_commit_lag_ns_ =
      reg->histogram("dacc_raft_commit_lag_ns" + labels, obs::latency_bounds_ns());
  m_leader_changes_ = reg->counter("dacc_raft_leader_changes_total" + labels);
  m_election_latency_ns_ = reg->histogram(
      "dacc_raft_election_latency_ns" + labels, obs::latency_bounds_ns());
  m_commit_index_ = reg->gauge("dacc_raft_commit_index" + labels);
  m_replication_lag_ = reg->gauge("dacc_raft_replication_lag" + labels);
  metrics_bound_ = reg;
  m_term_.set(static_cast<std::int64_t>(term_));
}

void RaftNode::send_peer(dmpi::Mpi& mpi, dmpi::Rank to, util::Buffer frame) {
  mpi.send(world_.world_comm(), to, kArmRequestTag, std::move(frame));
}

bool RaftNode::should_park() const {
  if (gate_ == nullptr || halted_ || shutdown_) return false;
  if (active_ && active_()) return false;
  switch (role_) {
    case Role::kLeader: {
      if (commit_ != last_log_index() || applied_ != commit_) return false;
      for (std::size_t i = 0; i < replicas_.size(); ++i) {
        if (static_cast<int>(i) == index_) continue;
        const Peer& p = peers_[i];
        if (p.dead) continue;
        if (p.match < last_log_index() || p.acked_commit < commit_) {
          return false;
        }
      }
      return true;
    }
    case Role::kCandidate:
      // An election in flight never parks; with a quorum of live replicas
      // it resolves in bounded simulated time, and the winner quiesces the
      // group. (Chaos schedules must keep a quorum alive, like real Raft.)
      return false;
    case Role::kFollower:
      return !activated_ || (quiesce_ok_ && applied_ == commit_);
  }
  return false;
}

void RaftNode::wake(sim::Context& ctx) {
  activated_ = true;
  quiesce_ok_ = false;
  for (Peer& p : peers_) {
    p.unacked = 0;
    p.dead = false;
  }
  if (role_ == Role::kLeader) {
    // Re-open with an amnesty sweep: the idle gap must not read as missed
    // heartbeats (same rule as the single-ARM monitor's `fresh` flag).
    if (heartbeat_.enabled) propose_sweep(ctx, true);
    next_sweep_at_ = ctx.now() + heartbeat_.period;
    ae_deadline_ = ctx.now();
  } else {
    election_deadline_ = ctx.now() + draw_timeout();
    // The idle gap is leader silence by design, not failure: refresh the
    // contact clock so the first post-wake timeout doesn't instantly pass
    // every peer's pre-vote staleness check at once.
    last_leader_contact_ = ctx.now();
  }
}

// ---------------------------------------------------------------------------
// Role transitions
// ---------------------------------------------------------------------------

void RaftNode::become_follower(std::uint64_t term) {
  if (term > term_) {
    term_ = term;
    voted_for_ = -1;
    leader_hint_ = -1;
    m_term_.set(static_cast<std::int64_t>(term_));
  }
  if (role_ == Role::kLeader) machine_.bind_metrics(nullptr);
  role_ = Role::kFollower;
}

void RaftNode::maybe_start_election(sim::Context& ctx, dmpi::Mpi& mpi) {
  // Pre-vote only makes sense with peers to probe; a single-replica group
  // (and the legacy pre_vote=false mode) elects itself directly.
  if (!params_.pre_vote || replicas_.size() == 1) {
    start_election(ctx, mpi);
    return;
  }
  begin_prevote(ctx, mpi);
}

void RaftNode::begin_prevote(sim::Context& ctx, dmpi::Mpi& mpi) {
  if (role_ == Role::kLeader) return;
  // A candidate whose election timed out falls back to probing: its term is
  // already bumped, so the probe campaigns at term_+1 like any other.
  role_ = Role::kFollower;
  prevote_active_ = true;
  prevote_term_ = term_ + 1;
  prevotes_.assign(replicas_.size(), false);
  prevotes_[static_cast<std::size_t>(index_)] = true;
  election_deadline_ = ctx.now() + draw_timeout();
  trace(ctx, "prevote-r" + std::to_string(index_) + "-term" +
                 std::to_string(prevote_term_));
  PreVote pv;
  pv.term = prevote_term_;
  pv.candidate = self_;
  pv.last_log_index = last_log_index();
  pv.last_log_term = term_at(last_log_index());
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (static_cast<int>(i) == index_) continue;
    send_peer(mpi, replicas_[i], pv.encode());
  }
}

void RaftNode::start_election(sim::Context& ctx, dmpi::Mpi& mpi) {
  if (role_ == Role::kLeader) return;
  prevote_active_ = false;
  role_ = Role::kCandidate;
  ++term_;
  voted_for_ = self_;
  leader_hint_ = -1;
  votes_.assign(replicas_.size(), false);
  votes_[static_cast<std::size_t>(index_)] = true;
  ++elections_;
  m_elections_.add(1);
  m_term_.set(static_cast<std::int64_t>(term_));
  election_began_ = ctx.now();
  trace(ctx, "election-r" + std::to_string(index_) + "-term" +
                 std::to_string(term_));
  election_deadline_ = ctx.now() + draw_timeout();
  RequestVote rv;
  rv.term = term_;
  rv.candidate = self_;
  rv.last_log_index = last_log_index();
  rv.last_log_term = term_at(last_log_index());
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (static_cast<int>(i) == index_) continue;
    send_peer(mpi, replicas_[i], rv.encode());
  }
  if (replicas_.size() == 1) become_leader(ctx);
}

void RaftNode::become_leader(sim::Context& ctx) {
  role_ = Role::kLeader;
  prevote_active_ = false;
  leader_hint_ = self_;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    Peer& p = peers_[i];
    p.next = last_log_index() + 1;
    p.match = static_cast<int>(i) == index_ ? last_log_index() : 0;
    p.acked_commit = 0;
    p.unacked = 0;
    p.dead = false;
  }
  bind_metrics();
  m_leader_changes_.add(1);
  if (election_began_ != 0) {
    m_election_latency_ns_.observe(
        static_cast<std::uint64_t>(ctx.now() - election_began_));
    election_began_ = 0;
  }
  trace(ctx, "leader-r" + std::to_string(index_) + "-term" +
                 std::to_string(term_));
  // Term-start barrier entry (Raft §5.4.2: a leader only counts replicas
  // for entries of its own term, so it commits one immediately). Doubling
  // as a fresh liveness sweep grants beat amnesty across the disruption
  // that got us elected.
  propose_sweep(ctx, /*fresh=*/true);
  next_sweep_at_ = ctx.now() + heartbeat_.period;
  ae_deadline_ = ctx.now();  // heartbeat the group right away
}

// ---------------------------------------------------------------------------
// Log / replication
// ---------------------------------------------------------------------------

void RaftNode::propose_sweep(sim::Context& ctx, bool fresh) {
  Command cmd;
  cmd.client = self_;
  cmd.reply_tag = 0;
  cmd.op = static_cast<std::uint32_t>(ArmOp::kSweep);
  cmd.body = WireWriter{}
                 .u64(static_cast<std::uint64_t>(heartbeat_.period))
                 .u32(heartbeat_.miss_threshold)
                 .u32(fresh ? 1 : 0)
                 .finish();
  LogEntry e;
  e.term = term_;
  e.at = ctx.now();
  e.cmd = std::move(cmd);
  append_entry(std::move(e));
}

void RaftNode::append_entry(LogEntry entry) {
  log_.push_back(std::move(entry));
  peers_[static_cast<std::size_t>(index_)].match = last_log_index();
}

void RaftNode::leader_tick(sim::Context& ctx, dmpi::Mpi& mpi) {
  if (heartbeat_.enabled && active_ && active_() &&
      ctx.now() >= next_sweep_at_) {
    propose_sweep(ctx, /*fresh=*/false);
    next_sweep_at_ = ctx.now() + heartbeat_.period;
  }
  broadcast_append(mpi, /*count_round=*/true);
  ae_deadline_ = ctx.now() + params_.ae_interval;
}

void RaftNode::broadcast_append(dmpi::Mpi& mpi, bool count_round) {
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (static_cast<int>(i) == index_) continue;
    Peer& p = peers_[i];
    if (p.dead) continue;
    if (count_round && ++p.unacked > params_.dead_rounds) {
      p.dead = true;
      continue;
    }
    send_append_to(mpi, static_cast<int>(i));
  }
}

void RaftNode::send_append_to(dmpi::Mpi& mpi, int peer) {
  Peer& p = peers_[static_cast<std::size_t>(peer)];
  if (p.next <= snap_index_) {
    InstallSnapshot is;
    is.term = term_;
    is.leader = self_;
    is.last_index = snap_index_;
    is.last_term = snap_term_;
    is.snapshot = snap_.view();
    send_peer(mpi, replicas_[static_cast<std::size_t>(peer)], is.encode());
    return;
  }
  AppendEntries ae;
  ae.term = term_;
  ae.leader = self_;
  ae.prev_index = p.next - 1;
  ae.prev_term = term_at(ae.prev_index);
  ae.commit = commit_;
  ae.quiesce = !(active_ && active_()) && commit_ == last_log_index();
  for (std::uint64_t idx = p.next; idx <= last_log_index(); ++idx) {
    ae.entries.push_back(entry(idx));
  }
  send_peer(mpi, replicas_[static_cast<std::size_t>(peer)], ae.encode());
}

void RaftNode::advance_commit() {
  if (role_ != Role::kLeader) return;
  for (std::uint64_t n = last_log_index(); n > commit_; --n) {
    if (term_at(n) != term_) break;  // only own-term entries commit by count
    int count = 0;
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      if (peers_[i].match >= n) ++count;
    }
    if (count * 2 > static_cast<int>(replicas_.size())) {
      commit_ = n;
      break;
    }
  }
}

void RaftNode::apply_committed(sim::Context& ctx, rpc::ServerChannel& channel) {
  while (applied_ < commit_) {
    const LogEntry& e = entry(applied_ + 1);
    ApplyResult result;
    try {
      // Applied with the leader's proposal timestamp, never local time:
      // every replica's time-derived state stays bit-identical.
      result = machine_.apply(e.cmd, e.at);
    } catch (const proto::WireError&) {
      // Leaders validate before appending, so a committed entry can only
      // throw if every replica's copy does — skipping is deterministic.
    }
    ++applied_;
    m_commit_lag_ns_.observe(static_cast<std::uint64_t>(ctx.now() - e.at));
    if (result.shutdown) shutdown_ = true;
    if (role_ == Role::kLeader) {
      execute_effects(ctx, channel, result.effects);
    }
  }
  m_commit_index_.set(static_cast<std::int64_t>(commit_));
  m_replication_lag_.set(
      static_cast<std::int64_t>(last_log_index() - commit_));
  machine_.sample_assigned();
  maybe_compact();
}

void RaftNode::maybe_compact() {
  if (applied_ - snap_index_ < params_.snapshot_threshold) return;
  snap_ = machine_.snapshot();
  snap_term_ = term_at(applied_);
  log_.erase(log_.begin(),
             log_.begin() + static_cast<std::ptrdiff_t>(applied_ - snap_index_));
  snap_index_ = applied_;
}

void RaftNode::execute_effects(sim::Context& ctx, rpc::ServerChannel& channel,
                               std::vector<Effect>& effects) {
  for (Effect& e : effects) {
    switch (e.kind) {
      case Effect::Kind::kReply:
        channel.reply(e.to, e.tag, std::move(e.frame));
        break;
      case Effect::Kind::kNotice:
        channel.mpi().send(channel.comm(), e.to, e.tag, std::move(e.frame));
        break;
      case Effect::Kind::kTrace:
        // Lease-machine events surfaced as trace effects (revocations,
        // replacements) are flight-recorder material too.
        if (obs::FlightRecorder* fr = world_.engine().flight()) {
          fr->note(ctx.now(), "arm", e.label,
                   world_.engine().current_trace().trace_id);
        }
        if (sim::Tracer* tracer = world_.engine().tracer()) {
          tracer->record("arm", e.label, ctx.now(), ctx.now());
        }
        break;
    }
  }
}

// ---------------------------------------------------------------------------
// Message handlers
// ---------------------------------------------------------------------------

void RaftNode::on_request_vote(sim::Context& ctx, dmpi::Mpi& mpi,
                               const RequestVote& m) {
  if (m.term > term_) become_follower(m.term);
  bool grant = false;
  if (m.term == term_ && role_ != Role::kLeader &&
      (voted_for_ == -1 || voted_for_ == m.candidate)) {
    const std::uint64_t my_last_term = term_at(last_log_index());
    grant = m.last_log_term > my_last_term ||
            (m.last_log_term == my_last_term &&
             m.last_log_index >= last_log_index());
  }
  if (grant) {
    voted_for_ = m.candidate;
    election_deadline_ = ctx.now() + draw_timeout();
  }
  VoteReply rep;
  rep.term = term_;
  rep.voter = self_;
  rep.granted = grant;
  send_peer(mpi, m.candidate, rep.encode());
}

void RaftNode::on_vote_reply(sim::Context& ctx, const VoteReply& m) {
  if (m.term > term_) {
    become_follower(m.term);
    return;
  }
  if (role_ != Role::kCandidate || m.term != term_ || !m.granted) return;
  const int i = index_of(m.voter);
  if (i < 0) return;
  votes_[static_cast<std::size_t>(i)] = true;
  int count = 0;
  for (const bool v : votes_) count += v ? 1 : 0;
  if (count * 2 > static_cast<int>(replicas_.size())) become_leader(ctx);
}

void RaftNode::on_append_entries(sim::Context& ctx, dmpi::Mpi& mpi,
                                 AppendEntries m) {
  AppendReply rep;
  rep.follower = self_;
  if (m.term < term_) {
    rep.term = term_;
    rep.success = false;
    rep.acked_commit = commit_;
    send_peer(mpi, m.leader, rep.encode());
    return;
  }
  if (m.term > term_ || role_ != Role::kFollower) become_follower(m.term);
  leader_hint_ = m.leader;
  election_deadline_ = ctx.now() + draw_timeout();
  last_leader_contact_ = ctx.now();
  prevote_active_ = false;  // a live leader moots any probe in flight
  rep.term = term_;

  // Consistency check against the entry preceding the batch.
  const std::uint64_t prev = m.prev_index;
  bool ok = true;
  if (prev >= snap_index_) {  // anything older is committed state here
    ok = prev <= last_log_index() && term_at(prev) == m.prev_term;
  }
  if (!ok) {
    rep.success = false;
    rep.acked_commit = commit_;
    quiesce_ok_ = false;
    send_peer(mpi, m.leader, rep.encode());
    return;
  }

  std::uint64_t idx = prev;
  for (LogEntry& e : m.entries) {
    ++idx;
    if (idx <= snap_index_) continue;  // covered by our snapshot
    if (idx <= last_log_index()) {
      if (term_at(idx) == e.term) continue;  // already have it
      // Conflict: an uncommitted suffix from a deposed leader dies here.
      log_.resize(static_cast<std::size_t>(idx - snap_index_ - 1));
    }
    log_.push_back(std::move(e));
  }
  if (m.commit > commit_) {
    commit_ = m.commit < last_log_index() ? m.commit : last_log_index();
  }
  rep.success = true;
  rep.match_index =
      std::max<std::uint64_t>(prev + m.entries.size(), snap_index_);
  rep.acked_commit = commit_;
  quiesce_ok_ = m.quiesce;
  send_peer(mpi, m.leader, rep.encode());
}

void RaftNode::on_append_reply(dmpi::Mpi& mpi, const AppendReply& m) {
  if (m.term > term_) {
    become_follower(m.term);
    return;
  }
  if (role_ != Role::kLeader || m.term != term_) return;
  const int i = index_of(m.follower);
  if (i < 0) return;
  Peer& p = peers_[static_cast<std::size_t>(i)];
  p.unacked = 0;
  p.dead = false;
  if (m.acked_commit > p.acked_commit) p.acked_commit = m.acked_commit;
  if (m.success) {
    if (m.match_index > p.match) p.match = m.match_index;
    if (p.match + 1 > p.next) p.next = p.match + 1;
  } else {
    // Back up one entry and retry immediately; once next falls to the
    // snapshot boundary the retry becomes an InstallSnapshot.
    if (p.next > 1) --p.next;
    send_append_to(mpi, i);
  }
}

void RaftNode::on_install_snapshot(sim::Context& ctx, dmpi::Mpi& mpi,
                                   InstallSnapshot m) {
  SnapshotReply rep;
  rep.follower = self_;
  if (m.term < term_) {
    rep.term = term_;
    rep.match_index = 0;
    send_peer(mpi, m.leader, rep.encode());
    return;
  }
  if (m.term > term_ || role_ != Role::kFollower) become_follower(m.term);
  leader_hint_ = m.leader;
  election_deadline_ = ctx.now() + draw_timeout();
  last_leader_contact_ = ctx.now();
  prevote_active_ = false;
  rep.term = term_;
  if (m.last_index > applied_) {
    // restore() before touching any member: a corrupted snapshot frame must
    // throw out of the handler with this replica's state fully intact.
    util::Buffer bytes = std::move(m.snapshot);
    WireReader r(bytes.view());
    machine_ = LeaseMachine::restore(r);
    snap_ = std::move(bytes);
    log_.clear();
    snap_index_ = m.last_index;
    snap_term_ = m.last_term;
    applied_ = m.last_index;
    if (m.last_index > commit_) commit_ = m.last_index;
    rep.match_index = m.last_index;
  } else {
    // Already past it: the committed prefix is guaranteed to match.
    rep.match_index = commit_;
  }
  send_peer(mpi, m.leader, rep.encode());
}

void RaftNode::on_snapshot_reply(const SnapshotReply& m) {
  if (m.term > term_) {
    become_follower(m.term);
    return;
  }
  if (role_ != Role::kLeader || m.term != term_) return;
  const int i = index_of(m.follower);
  if (i < 0) return;
  Peer& p = peers_[static_cast<std::size_t>(i)];
  p.unacked = 0;
  p.dead = false;
  if (m.match_index > p.match) p.match = m.match_index;
  if (p.match + 1 > p.next) p.next = p.match + 1;
}

void RaftNode::on_pre_vote(sim::Context& ctx, dmpi::Mpi& mpi,
                           const PreVote& m) {
  // Advisory probe: grants never touch term_ or voted_for_, and never
  // reset our election deadline — a denied probe must not disturb us.
  PreVoteReply rep;
  rep.term = m.term;
  rep.voter = self_;
  bool grant = false;
  if (m.term > term_ && role_ != Role::kLeader) {
    const std::uint64_t my_last_term = term_at(last_log_index());
    const bool log_ok = m.last_log_term > my_last_term ||
                        (m.last_log_term == my_last_term &&
                         m.last_log_index >= last_log_index());
    // Deny while a live leader is heartbeating us. Measured against the
    // last real leader contact, not our own election deadline (which we
    // reset ourselves on timeout — symmetric probes would livelock).
    const bool leader_stale =
        ctx.now() - last_leader_contact_ >= params_.election_min;
    grant = log_ok && leader_stale;
  }
  rep.granted = grant;
  send_peer(mpi, m.candidate, rep.encode());
}

void RaftNode::on_pre_vote_reply(sim::Context& ctx, dmpi::Mpi& mpi,
                                 const PreVoteReply& m) {
  if (!prevote_active_ || role_ != Role::kFollower ||
      m.term != prevote_term_ || !m.granted) {
    return;
  }
  const int i = index_of(m.voter);
  if (i < 0) return;
  prevotes_[static_cast<std::size_t>(i)] = true;
  int count = 0;
  for (const bool v : prevotes_) count += v ? 1 : 0;
  if (count * 2 > static_cast<int>(replicas_.size())) {
    // A majority would vote for us at prevote_term_: campaign for real.
    start_election(ctx, mpi);
  }
}

void RaftNode::handle_raft(sim::Context& ctx, dmpi::Mpi& mpi,
                           rpc::Inbound& in) {
  switch (in.op<RaftOp>()) {
    case RaftOp::kRequestVote:
      on_request_vote(ctx, mpi, RequestVote::decode(in.body));
      break;
    case RaftOp::kVoteReply:
      on_vote_reply(ctx, VoteReply::decode(in.body));
      break;
    case RaftOp::kAppendEntries:
      on_append_entries(ctx, mpi, AppendEntries::decode(in.body));
      break;
    case RaftOp::kAppendReply:
      on_append_reply(mpi, AppendReply::decode(in.body));
      break;
    case RaftOp::kInstallSnapshot:
      on_install_snapshot(ctx, mpi, InstallSnapshot::decode(in.body));
      break;
    case RaftOp::kSnapshotReply:
      on_snapshot_reply(SnapshotReply::decode(in.body));
      break;
    case RaftOp::kPreVote:
      on_pre_vote(ctx, mpi, PreVote::decode(in.body));
      break;
    case RaftOp::kPreVoteReply:
      on_pre_vote_reply(ctx, mpi, PreVoteReply::decode(in.body));
      break;
  }
}

void RaftNode::handle_client(sim::Context& ctx, rpc::ServerChannel& channel,
                             dmpi::Mpi& mpi, rpc::Inbound& in) {
  Command cmd;
  cmd.client = in.source;
  cmd.reply_tag = in.reply_tag;
  cmd.op = in.op_word;
  cmd.body = in.body.rest();
  if (role_ != Role::kLeader) {
    // Redirect; one-way frames (heartbeats) are simply dropped — the
    // pacers broadcast to every replica, so the leader has its own copy.
    if (cmd.reply_tag != 0) {
      util::Buffer rep =
          WireWriter{}
              .u32(static_cast<std::uint32_t>(ArmResult::kNotLeader))
              .u64(static_cast<std::uint64_t>(
                  static_cast<std::int64_t>(leader_hint_)))
              .finish();
      channel.reply(cmd.client, cmd.reply_tag, std::move(rep));
    }
    return;
  }
  // Refuse garbage before it reaches the log: a committed entry must apply
  // cleanly on every replica or never be appended at all.
  try {
    LeaseMachine::validate(cmd);
  } catch (const proto::WireError&) {
    return;  // dropped whole, like the single ARM
  }
  if (cmd.reply_tag != 0) {
    if (machine_.seen(cmd.client, cmd.reply_tag)) {
      // At-least-once resend of an already-processed request: apply() only
      // re-emits the cached reply (or stays silent for a still-queued
      // acquire) without mutating state, so no new log entry is needed.
      ApplyResult result = machine_.apply(cmd, ctx.now());
      execute_effects(ctx, channel, result.effects);
      return;
    }
    for (std::uint64_t idx = applied_ + 1; idx <= last_log_index(); ++idx) {
      const Command& logged = entry(idx).cmd;
      if (logged.client == cmd.client && logged.reply_tag == cmd.reply_tag) {
        return;  // duplicate of an entry still in flight
      }
    }
  }
  LogEntry e;
  e.term = term_;
  e.at = ctx.now();
  e.cmd = std::move(cmd);
  append_entry(std::move(e));
  broadcast_append(mpi, /*count_round=*/false);
}

// ---------------------------------------------------------------------------
// Service loop
// ---------------------------------------------------------------------------

void RaftNode::run(sim::Context& ctx) {
  dmpi::Mpi mpi(world_, ctx, self_);
  rpc::ServerChannel channel(
      mpi, world_.world_comm(),
      rpc::ServerChannel::Options{kArmRequestTag, /*min_reply_tag=*/0});
  // One posted receive serves peers and clients alike; it stays posted
  // across parked phases, so messages arriving while the group is idle are
  // buffered losslessly and handled at the next wakeup.
  dmpi::Request inbox =
      mpi.irecv(world_.world_comm(), dmpi::kAnySource, kArmRequestTag);
  election_deadline_ = ctx.now() + draw_timeout();
  for (;;) {
    if (halted_) return;
    if (gate_ != nullptr && should_park()) {
      while (should_park()) gate_->wait(ctx);
      if (halted_) return;
      wake(ctx);
    }
    const SimTime deadline =
        role_ == Role::kLeader ? ae_deadline_ : election_deadline_;
    if (mpi.wait_until(inbox, deadline)) {
      const dmpi::Rank source = inbox.status().source;
      util::Buffer msg = inbox.take_payload();
      inbox = mpi.irecv(world_.world_comm(), dmpi::kAnySource, kArmRequestTag);
      // Bookkeeping cost of one management request (same as the single ARM).
      ctx.wait_for(1'000);
      if (halted_) return;
      bind_metrics();
      try {
        rpc::Inbound in = channel.decode(source, std::move(msg));
        if (is_raft_op(in.op_word)) {
          handle_raft(ctx, mpi, in);
        } else {
          handle_client(ctx, channel, mpi, in);
        }
      } catch (const proto::WireError&) {
        // Malformed or truncated frame (fuzzed, corrupted): drop it whole
        // and keep serving — never partially applied.
      }
    } else if (role_ == Role::kLeader) {
      leader_tick(ctx, mpi);
    } else {
      maybe_start_election(ctx, mpi);
    }
    advance_commit();
    apply_committed(ctx, channel);
    if (shutdown_) return;
  }
}

}  // namespace dacc::arm::raft
