// dmpi — the message-passing substrate of the dynamic accelerator cluster.
//
// The paper's middleware communicates exclusively over MPI (Section IV): the
// front-end on a compute node exchanges request/response message pairs with
// the daemon on each accelerator, and the application itself uses MPI for
// compute-node-to-compute-node parallelism. dmpi implements the MPI subset
// those components need, on top of the simulated fabric:
//
//   * communicators with rank translation (the paper notes that the compute
//     node process and the accelerator daemon "have to reside in the same
//     MPI communicator", created with the help of the ARM),
//   * blocking and nonblocking point-to-point with tag/source matching
//     (including wildcards) and the eager/rendezvous protocol switch that
//     shapes the bandwidth-vs-size curve,
//   * a few collectives (barrier, bcast, allreduce) used by the workloads.
//
// Timing calibration lives in MpiParams; the defaults reproduce the paper's
// testbed: ~2 us small-message latency and ~2660 MiB/s PingPong peak
// (Section V.A).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "net/fabric.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"
#include "util/buffer.hpp"
#include "util/units.hpp"

namespace dacc::dmpi {

using Rank = int;

inline constexpr Rank kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Tags at or above this value are reserved for internal use (collectives).
inline constexpr int kMaxUserTag = 0x0fffffff;

struct MpiParams {
  /// Messages up to this size go eager (sent immediately, buffered at the
  /// receiver); larger ones use the rendezvous handshake.
  std::uint64_t eager_threshold = 12_KiB;

  /// CPU cost of posting a send (charged to the sender process).
  SimDuration send_overhead = 400;  // ns

  /// Matching/completion cost at the receiver.
  SimDuration recv_overhead = 400;  // ns

  /// Size of RTS/CTS control messages and per-message envelope.
  std::uint64_t ctrl_bytes = 64;

  /// Copy-out rate from the eager receive buffer to the user buffer.
  double eager_copy_mib_s = 5000.0;
};

struct Status {
  Rank source = kAnySource;  ///< Comm rank of the sender.
  int tag = kAnyTag;
  std::uint64_t bytes = 0;
};

class World;
class Comm;
class Mpi;

/// Handle to an in-flight nonblocking operation. Copyable; all copies refer
/// to the same operation.
class Request {
 public:
  Request() = default;

  bool valid() const { return state_ != nullptr; }
  bool done() const;
  const Status& status() const;  ///< Valid once done().

  /// Removes and returns the received payload (recv requests, once done).
  util::Buffer take_payload();

 private:
  friend class World;
  friend class Mpi;
  struct State;
  explicit Request(std::shared_ptr<State> state) : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

/// A communicator: an ordered group of world ranks plus a context id that
/// isolates its traffic from other communicators'.
class Comm {
 public:
  int size() const { return static_cast<int>(members_.size()); }
  int context_id() const { return context_id_; }

  /// World rank of comm rank `r`.
  Rank world_rank(Rank r) const;
  /// Comm rank of world rank `w`, or kAnySource if not a member.
  Rank comm_rank(Rank w) const;
  bool contains_world_rank(Rank w) const;

 private:
  friend class World;
  Comm(int context_id, std::vector<Rank> members);
  int context_id_ = 0;
  std::vector<Rank> members_;  // comm rank -> world rank
};

/// The set of all communicating processes. Created once per simulated
/// cluster; each rank is pinned to a fabric node (several ranks may share a
/// node, e.g. the ARM co-located with a service node).
class World {
 public:
  World(sim::Engine& engine, net::Fabric& fabric,
        std::vector<net::NodeId> rank_nodes, MpiParams params = {});
  ~World();
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  int size() const { return static_cast<int>(rank_nodes_.size()); }
  const Comm& world_comm() const { return *world_comm_; }
  const MpiParams& params() const { return params_; }
  sim::Engine& engine() { return engine_; }

  /// Creates a communicator over the given world ranks (in that order).
  const Comm& create_comm(std::vector<Rank> world_ranks);

  net::NodeId node_of(Rank world_rank) const;

 private:
  friend class Mpi;
  struct Endpoint;
  struct PendingSend;

  // Internal message plumbing (world-rank addressed). Defined in mpi.cpp.
  std::shared_ptr<Request::State> post_send(sim::Context& ctx, Rank src_w,
                                            Rank dst_w, int context_id,
                                            int tag, util::Buffer data);
  std::shared_ptr<Request::State> post_recv(Rank me_w, int context_id,
                                            Rank src_w, int tag);
  bool probe_unexpected(Rank me_w, int context_id, Rank src_w, int tag,
                        Status* status) const;
  void arrive_eager(Rank dst_w, int context_id, Rank src_w, int tag,
                    util::Buffer payload);
  void arrive_rts(Rank dst_w, int context_id, Rank src_w, int tag,
                  std::uint64_t send_id, std::uint64_t bytes);
  void arrive_cts(Rank src_w, std::uint64_t send_id, int tag,
                  std::shared_ptr<Request::State> recv_state);
  void send_cts(Rank dst_w, Rank src_w, std::uint64_t send_id, int tag,
                std::shared_ptr<Request::State> recv_state);
  void complete_recv(std::shared_ptr<Request::State> state, Rank src_w,
                     int context_id, int tag, util::Buffer payload,
                     SimDuration extra_delay);
  void cancel_request(Rank me_w, const std::shared_ptr<Request::State>& state);

  /// Per-rank send accounting (msgs/bytes, eager vs rendezvous), on the
  /// sender. Bound lazily and thread-safely: the first post_send may run on
  /// any shard under the parallel backend.
  void count_send(Rank src_w, std::uint64_t bytes, bool eager);
  void bind_metrics(obs::Registry* reg);
  /// Mints a NIC span id on `rank`'s endpoint counter (shard-owned, so the
  /// sequence is deterministic under every backend).
  std::uint64_t next_nic_span(Rank rank);
  /// Records the receive-side NIC span of a traced message at the current
  /// (arrival) time on the destination's node.
  void record_nic_rx(Rank dst_w, std::uint64_t trace_id,
                     std::uint64_t parent_span);

  sim::Engine& engine_;
  net::Fabric& fabric_;
  MpiParams params_;
  std::vector<net::NodeId> rank_nodes_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  std::vector<std::unique_ptr<Comm>> comms_;
  const Comm* world_comm_ = nullptr;
  int next_context_id_ = 0;

  struct RankSendMetrics {
    obs::Counter msgs;
    obs::Counter bytes;
    obs::Counter eager;
    obs::Counter rendezvous;
  };
  std::mutex metrics_mutex_;  // guards the one-time registration only
  std::atomic<obs::Registry*> metrics_bound_{nullptr};
  std::vector<RankSendMetrics> send_metrics_;
};

/// Per-process MPI view: binds (world, my rank, my sim context). All calls
/// must be made from the owning process.
class Mpi {
 public:
  Mpi(World& world, sim::Context& ctx, Rank world_rank);

  Rank world_rank() const { return rank_; }
  World& world() { return world_; }
  sim::Context& context() { return ctx_; }

  /// Rank of this process within `comm` (kAnySource if not a member).
  Rank rank(const Comm& comm) const { return comm.comm_rank(rank_); }

  // --- point to point (ranks are comm ranks) -----------------------------
  void send(const Comm& comm, Rank dst, int tag, util::Buffer data);
  util::Buffer recv(const Comm& comm, Rank src, int tag,
                    Status* status = nullptr);
  Request isend(const Comm& comm, Rank dst, int tag, util::Buffer data);
  Request irecv(const Comm& comm, Rank src, int tag);
  /// Nonblocking completion check (MPI_Test).
  bool test(const Request& request) const { return request.done(); }
  /// Nonblocking probe of the unexpected queue (MPI_Iprobe): reports the
  /// oldest matching pending message without receiving it.
  bool iprobe(const Comm& comm, Rank src, int tag, Status* status = nullptr);
  void wait(Request& request);
  void wait_all(std::span<Request> requests);
  /// Waits for any one request to finish; returns its index.
  std::size_t wait_any(std::span<Request> requests);
  /// Waits until `request` completes or the simulated clock reaches
  /// `deadline`; returns whether it completed. On timeout the request is
  /// left pending — cancel() it before abandoning the handle, or the
  /// message can still match later. `kSimTimeNever` waits forever.
  bool wait_until(Request& request, SimTime deadline);
  bool wait_for(Request& request, SimDuration timeout) {
    return wait_until(request, ctx_.now() + timeout);
  }
  /// Cancels a pending nonblocking operation (MPI_Cancel): a not-yet-matched
  /// receive is removed from the posted queue; an unanswered rendezvous send
  /// is withdrawn. Completed or already-matched requests are left alone (the
  /// data is in flight and will land; the caller simply ignores it).
  void cancel(Request& request);

  /// Monotonic per-rank sequence for building unique user-level reply tags
  /// (the ARM request/reply pairing). Shared by every Mpi view of this
  /// rank — several processes may borrow one endpoint (e.g. job launchers
  /// queueing concurrent acquires) and must never mint the same tag. All
  /// of them execute on the rank's home shard, so the counter needs no
  /// lock and its values are deterministic under every backend.
  std::uint64_t fresh_tag_seed();

  /// Combined send + receive (halo-exchange staple); posts the receive
  /// first so opposing sendrecvs never deadlock.
  util::Buffer sendrecv(const Comm& comm, Rank dst, int send_tag,
                        util::Buffer data, Rank src, int recv_tag,
                        Status* status = nullptr);

  // --- collectives (every member must call) ------------------------------
  void barrier(const Comm& comm);
  /// Root's `data` is distributed; non-roots receive and return it.
  util::Buffer bcast(const Comm& comm, Rank root, util::Buffer data);
  double allreduce_sum(const Comm& comm, double value);
  std::uint64_t allreduce_max(const Comm& comm, std::uint64_t value);
  /// Root receives every member's contribution, ordered by comm rank
  /// (root's own included); non-roots get an empty vector.
  std::vector<util::Buffer> gather(const Comm& comm, Rank root,
                                   util::Buffer data);
  /// Root distributes chunks[i] to comm rank i; returns this rank's chunk.
  util::Buffer scatter(const Comm& comm, Rank root,
                       std::vector<util::Buffer> chunks);
  /// Every member sends chunks[i] to comm rank i and returns what it
  /// received, ordered by source rank.
  std::vector<util::Buffer> alltoall(const Comm& comm,
                                     std::vector<util::Buffer> chunks);

 private:
  Rank require_member(const Comm& comm) const;

  World& world_;
  sim::Context& ctx_;
  Rank rank_;
};

}  // namespace dacc::dmpi
