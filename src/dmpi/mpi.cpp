#include "dmpi/mpi.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "sim/trace.hpp"

namespace dacc::dmpi {

// ---------------------------------------------------------------------------
// Request
// ---------------------------------------------------------------------------

struct Request::State {
  explicit State(sim::Engine& eng) : engine(&eng) {}

  sim::Engine* engine;
  bool done = false;
  bool reserved = false;  // recv matched to a rendezvous sender, data inbound
  Status status{};        // source stored as WORLD rank until completion
  int context_id = 0;
  Rank match_src = kAnySource;  // world rank or wildcard (recv side)
  int match_tag = kAnyTag;
  util::Buffer payload;
  std::vector<sim::Process*> waiters;

  void complete(Status st, util::Buffer data) {
    done = true;
    status = st;
    payload = std::move(data);
    for (sim::Process* w : waiters) engine->wake(*w);
    waiters.clear();
  }
};

bool Request::done() const {
  return state_ != nullptr && state_->done;
}

const Status& Request::status() const {
  if (!done()) throw std::logic_error("Request::status before completion");
  return state_->status;
}

util::Buffer Request::take_payload() {
  if (!done()) throw std::logic_error("Request::take_payload before done");
  return std::move(state_->payload);
}

// ---------------------------------------------------------------------------
// Comm
// ---------------------------------------------------------------------------

Comm::Comm(int context_id, std::vector<Rank> members)
    : context_id_(context_id), members_(std::move(members)) {}

Rank Comm::world_rank(Rank r) const {
  if (r < 0 || r >= size()) throw std::out_of_range("Comm: bad comm rank");
  return members_[static_cast<std::size_t>(r)];
}

Rank Comm::comm_rank(Rank w) const {
  const auto it = std::find(members_.begin(), members_.end(), w);
  if (it == members_.end()) return kAnySource;
  return static_cast<Rank>(it - members_.begin());
}

bool Comm::contains_world_rank(Rank w) const {
  return comm_rank(w) != kAnySource;
}

// ---------------------------------------------------------------------------
// World internals
// ---------------------------------------------------------------------------

namespace {

bool matches(Rank want_src, int want_tag, Rank src, int tag) {
  return (want_src == kAnySource || want_src == src) &&
         (want_tag == kAnyTag || want_tag == tag);
}

}  // namespace

struct World::Endpoint {
  struct Posted {
    std::shared_ptr<Request::State> state;
  };
  struct Unexpected {
    int context_id;
    Rank src_w;
    int tag;
    std::uint64_t bytes;
    bool rendezvous;
    std::uint64_t send_id;  // rendezvous only
    util::Buffer payload;   // eager only
  };
  std::deque<Posted> posted;
  std::deque<Unexpected> unexpected;
  // Rendezvous bookkeeping lives on the *sender's* endpoint: post_send,
  // arrive_cts (the CTS is delivered to the sender's node) and
  // cancel_request all run in that rank's node context, so under the
  // parallel backend no two shards ever touch the same send list.
  std::uint64_t next_send_id = 1;
  std::vector<std::unique_ptr<PendingSend>> pending_sends;
  // User-level tag seed (Mpi::fresh_tag_seed); same shard-ownership
  // argument as above.
  std::uint64_t next_tag_seed = 0;
  // NIC trace-span ids minted by this rank (tx at post time, rx at arrival;
  // both run in the rank's node context, so the sequence is deterministic).
  std::uint64_t next_span_seed = 0;
};

struct World::PendingSend {
  std::uint64_t id;
  Rank src_w;
  Rank dst_w;
  util::Buffer data;
  std::shared_ptr<Request::State> send_state;
  // Causal trace of the send, carried across the rendezvous handshake so
  // the data delivery can record its receive-side NIC span.
  std::uint64_t trace_id = 0;
  std::uint64_t nic_span = 0;
};

World::World(sim::Engine& engine, net::Fabric& fabric,
             std::vector<net::NodeId> rank_nodes, MpiParams params)
    : engine_(engine),
      fabric_(fabric),
      params_(params),
      rank_nodes_(std::move(rank_nodes)) {
  if (rank_nodes_.empty()) {
    throw std::invalid_argument("World: need at least one rank");
  }
  for (net::NodeId n : rank_nodes_) {
    if (n < 0 || n >= fabric_.num_nodes()) {
      throw std::out_of_range("World: rank pinned to invalid node");
    }
  }
  endpoints_.reserve(rank_nodes_.size());
  for (std::size_t i = 0; i < rank_nodes_.size(); ++i) {
    endpoints_.push_back(std::make_unique<Endpoint>());
  }
  std::vector<Rank> all(rank_nodes_.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = static_cast<Rank>(i);
  world_comm_ = &create_comm(std::move(all));
}

World::~World() = default;

const Comm& World::create_comm(std::vector<Rank> world_ranks) {
  for (Rank w : world_ranks) {
    if (w < 0 || w >= size()) {
      throw std::out_of_range("create_comm: invalid world rank");
    }
  }
  comms_.push_back(std::unique_ptr<Comm>(
      new Comm(next_context_id_++, std::move(world_ranks))));
  return *comms_.back();
}

net::NodeId World::node_of(Rank world_rank) const {
  if (world_rank < 0 || world_rank >= size()) {
    throw std::out_of_range("node_of: invalid world rank");
  }
  return rank_nodes_[static_cast<std::size_t>(world_rank)];
}

void World::bind_metrics(obs::Registry* reg) {
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  if (metrics_bound_.load(std::memory_order_relaxed) == reg) return;
  send_metrics_.clear();
  send_metrics_.resize(rank_nodes_.size());
  for (std::size_t r = 0; r < rank_nodes_.size(); ++r) {
    const std::string label = "{rank=\"" + std::to_string(r) + "\"}";
    send_metrics_[r].msgs = reg->counter("dacc_dmpi_msgs_total" + label);
    send_metrics_[r].bytes = reg->counter("dacc_dmpi_bytes_total" + label);
    send_metrics_[r].eager = reg->counter("dacc_dmpi_eager_total" + label);
    send_metrics_[r].rendezvous =
        reg->counter("dacc_dmpi_rendezvous_total" + label);
  }
  metrics_bound_.store(reg, std::memory_order_release);
}

void World::count_send(Rank src_w, std::uint64_t bytes, bool eager) {
  obs::Registry* const reg = engine_.metrics();
  if (reg == nullptr) return;
  if (metrics_bound_.load(std::memory_order_acquire) != reg) {
    bind_metrics(reg);
  }
  RankSendMetrics& m = send_metrics_[static_cast<std::size_t>(src_w)];
  m.msgs.add();
  m.bytes.add(bytes);
  (eager ? m.eager : m.rendezvous).add();
}

std::uint64_t World::next_nic_span(Rank rank) {
  Endpoint& ep = *endpoints_[static_cast<std::size_t>(rank)];
  return (std::uint64_t{3} << 56) | (static_cast<std::uint64_t>(rank) << 40) |
         ++ep.next_span_seed;
}

void World::record_nic_rx(Rank dst_w, std::uint64_t trace_id,
                          std::uint64_t parent_span) {
  sim::Tracer* const tracer = engine_.tracer();
  if (tracer == nullptr) return;
  const SimTime now = engine_.now();
  tracer->record("nic-r" + std::to_string(dst_w), "rx", now,
                 now + params_.recv_overhead, trace_id, next_nic_span(dst_w),
                 parent_span);
}

std::shared_ptr<Request::State> World::post_send(sim::Context& ctx,
                                                 Rank src_w, Rank dst_w,
                                                 int context_id, int tag,
                                                 util::Buffer data) {
  // Posting a send costs CPU time on the sender.
  const SimTime post_begin = ctx.now();
  ctx.wait_for(params_.send_overhead);

  auto state = std::make_shared<Request::State>(engine_);
  const std::uint64_t bytes = data.size();
  const net::NodeId src_node = node_of(src_w);
  const net::NodeId dst_node = node_of(dst_w);
  const bool eager = bytes <= params_.eager_threshold;
  count_send(src_w, bytes, eager);

  // Inside an active causal trace, the send's NIC hop becomes a child span
  // of the caller (tx here on the sender's track, rx at arrival on the
  // receiver's); untraced traffic records nothing.
  sim::Tracer* const tracer = engine_.tracer();
  const sim::TraceCtx tc = engine_.current_trace();
  std::uint64_t nic_span = 0;
  if (tracer != nullptr && tc.active()) {
    nic_span = next_nic_span(src_w);
    tracer->record("nic-r" + std::to_string(src_w), eager ? "tx" : "tx rdv",
                   post_begin, engine_.now(), tc.trace_id, nic_span,
                   tc.span_id);
  }

  if (eager) {
    // Eager: inject immediately; the send is buffered and completes locally.
    // The payload moves through the event — no shared_ptr wrapper, no copy.
    fabric_.deliver(src_node, dst_node, bytes + params_.ctrl_bytes,
                    engine_.now(),
                    [this, dst_w, context_id, src_w, tag,
                     trace_id = tc.trace_id, nic_span,
                     payload = std::move(data)]() mutable {
                      if (nic_span != 0) {
                        record_nic_rx(dst_w, trace_id, nic_span);
                      }
                      arrive_eager(dst_w, context_id, src_w, tag,
                                   std::move(payload));
                    });
    state->complete(Status{src_w, tag, bytes}, util::Buffer{});
    return state;
  }

  // Rendezvous: RTS -> (match) -> CTS -> data.
  Endpoint& sender_ep = *endpoints_[static_cast<std::size_t>(src_w)];
  auto pending = std::make_unique<PendingSend>();
  pending->id = sender_ep.next_send_id++;
  pending->src_w = src_w;
  pending->dst_w = dst_w;
  pending->data = std::move(data);
  pending->send_state = state;
  pending->trace_id = tc.trace_id;
  pending->nic_span = nic_span;
  const std::uint64_t send_id = pending->id;
  sender_ep.pending_sends.push_back(std::move(pending));

  fabric_.deliver(src_node, dst_node, params_.ctrl_bytes, engine_.now(),
                  [this, dst_w, context_id, src_w, tag, send_id, bytes] {
                    arrive_rts(dst_w, context_id, src_w, tag, send_id, bytes);
                  });
  return state;
}

std::shared_ptr<Request::State> World::post_recv(Rank me_w, int context_id,
                                                 Rank src_w, int tag) {
  auto state = std::make_shared<Request::State>(engine_);
  state->context_id = context_id;
  state->match_src = src_w;
  state->match_tag = tag;

  Endpoint& ep = *endpoints_[static_cast<std::size_t>(me_w)];
  // Oldest matching unexpected message wins (MPI ordering).
  for (auto it = ep.unexpected.begin(); it != ep.unexpected.end(); ++it) {
    if (it->context_id != context_id ||
        !matches(src_w, tag, it->src_w, it->tag)) {
      continue;
    }
    if (it->rendezvous) {
      state->reserved = true;
      send_cts(/*dst_w=*/it->src_w, /*src_w=*/me_w, it->send_id, it->tag,
               state);
    } else {
      const SimDuration copy =
          transfer_time(it->bytes, params_.eager_copy_mib_s);
      complete_recv(state, it->src_w, context_id, it->tag,
                    std::move(it->payload), copy + params_.recv_overhead);
    }
    ep.unexpected.erase(it);
    return state;
  }
  ep.posted.push_back(Endpoint::Posted{state});
  return state;
}

bool World::probe_unexpected(Rank me_w, int context_id, Rank src_w, int tag,
                             Status* status) const {
  const Endpoint& ep = *endpoints_[static_cast<std::size_t>(me_w)];
  for (const auto& u : ep.unexpected) {
    if (u.context_id != context_id || !matches(src_w, tag, u.src_w, u.tag)) {
      continue;
    }
    if (status != nullptr) {
      status->source = u.src_w;  // world rank; Mpi::iprobe translates
      status->tag = u.tag;
      status->bytes = u.bytes;
    }
    return true;
  }
  return false;
}

void World::arrive_eager(Rank dst_w, int context_id, Rank src_w, int tag,
                         util::Buffer payload) {
  Endpoint& ep = *endpoints_[static_cast<std::size_t>(dst_w)];
  for (auto it = ep.posted.begin(); it != ep.posted.end(); ++it) {
    Request::State& st = *it->state;
    if (st.reserved || st.context_id != context_id ||
        !matches(st.match_src, st.match_tag, src_w, tag)) {
      continue;
    }
    auto state = it->state;
    ep.posted.erase(it);
    const SimDuration copy =
        transfer_time(payload.size(), params_.eager_copy_mib_s);
    complete_recv(state, src_w, context_id, tag, std::move(payload),
                  copy + params_.recv_overhead);
    return;
  }
  ep.unexpected.push_back(Endpoint::Unexpected{
      context_id, src_w, tag, payload.size(), /*rendezvous=*/false,
      /*send_id=*/0, std::move(payload)});
}

void World::arrive_rts(Rank dst_w, int context_id, Rank src_w, int tag,
                       std::uint64_t send_id, std::uint64_t bytes) {
  Endpoint& ep = *endpoints_[static_cast<std::size_t>(dst_w)];
  for (auto it = ep.posted.begin(); it != ep.posted.end(); ++it) {
    Request::State& st = *it->state;
    if (st.reserved || st.context_id != context_id ||
        !matches(st.match_src, st.match_tag, src_w, tag)) {
      continue;
    }
    auto state = it->state;
    state->reserved = true;
    ep.posted.erase(it);
    send_cts(/*dst_w=*/src_w, /*src_w=*/dst_w, send_id, tag, state);
    return;
  }
  ep.unexpected.push_back(Endpoint::Unexpected{context_id, src_w, tag, bytes,
                                               /*rendezvous=*/true, send_id,
                                               util::Buffer{}});
}

void World::send_cts(Rank dst_w, Rank src_w, std::uint64_t send_id, int tag,
                     std::shared_ptr<Request::State> recv_state) {
  fabric_.deliver(node_of(src_w), node_of(dst_w), params_.ctrl_bytes,
                  engine_.now(),
                  [this, dst_w, send_id, tag, recv_state]() mutable {
                    arrive_cts(dst_w, send_id, tag, std::move(recv_state));
                  });
}

void World::arrive_cts(Rank src_w, std::uint64_t send_id, int tag,
                       std::shared_ptr<Request::State> recv_state) {
  Endpoint& sender_ep = *endpoints_[static_cast<std::size_t>(src_w)];
  auto& sends = sender_ep.pending_sends;
  const auto it = std::find_if(
      sends.begin(), sends.end(),
      [&](const auto& p) { return p->id == send_id && p->src_w == src_w; });
  if (it == sends.end()) {
    // The sender cancelled (timeout/retry path) between RTS and CTS; the
    // receiver's reserved recv stays pending — its owner times out too.
    return;
  }
  auto pending = std::move(*it);
  sends.erase(it);

  const std::uint64_t bytes = pending->data.size();
  const Rank dst_w = pending->dst_w;
  auto send_state = pending->send_state;
  const Rank sender = pending->src_w;
  const std::uint64_t trace_id = pending->trace_id;
  const std::uint64_t nic_span = pending->nic_span;

  fabric_.deliver(
      node_of(src_w), node_of(dst_w), bytes + params_.ctrl_bytes,
      engine_.now(),
      [this, recv_state = std::move(recv_state), send_state, dst_w, trace_id,
       nic_span, payload = std::move(pending->data), sender, tag,
       bytes]() mutable {
        if (nic_span != 0) record_nic_rx(dst_w, trace_id, nic_span);
        // This runs at the receiver. The send request belongs to the sender,
        // so its completion (and the wake of anyone waiting on it) is posted
        // back to the sender's node — under the parallel backend the state is
        // only ever touched from its owner's shard.
        engine_.post(node_of(sender), engine_.now(),
                     [send_state, sender, tag, bytes] {
                       send_state->complete(Status{sender, tag, bytes},
                                            util::Buffer{});
                     });
        complete_recv(recv_state, sender, recv_state->context_id, tag,
                      std::move(payload), params_.recv_overhead);
      });
}

void World::cancel_request(Rank me_w,
                           const std::shared_ptr<Request::State>& state) {
  if (state->done) return;
  // Posted-but-unmatched receive?
  Endpoint& ep = *endpoints_[static_cast<std::size_t>(me_w)];
  for (auto it = ep.posted.begin(); it != ep.posted.end(); ++it) {
    if (it->state == state) {
      ep.posted.erase(it);
      return;
    }
  }
  // Unanswered rendezvous send? Withdraw it; a CTS arriving later finds no
  // pending send and is ignored.
  auto& sends = ep.pending_sends;
  for (auto it = sends.begin(); it != sends.end(); ++it) {
    if ((*it)->send_state == state) {
      sends.erase(it);
      return;
    }
  }
  // Reserved recv (data already inbound) or eager send: nothing to undo.
}

void World::complete_recv(std::shared_ptr<Request::State> state, Rank src_w,
                          int context_id, int tag, util::Buffer payload,
                          SimDuration extra_delay) {
  (void)context_id;
  const std::uint64_t bytes = payload.size();
  engine_.schedule_in(extra_delay,
                      [state = std::move(state), src_w, tag, bytes,
                       payload = std::move(payload)]() mutable {
    state->complete(Status{src_w, tag, bytes}, std::move(payload));
  });
}

// ---------------------------------------------------------------------------
// Mpi — per-process view
// ---------------------------------------------------------------------------

Mpi::Mpi(World& world, sim::Context& ctx, Rank world_rank)
    : world_(world), ctx_(ctx), rank_(world_rank) {
  if (world_rank < 0 || world_rank >= world.size()) {
    throw std::out_of_range("Mpi: invalid world rank");
  }
}

std::uint64_t Mpi::fresh_tag_seed() {
  return world_.endpoints_[static_cast<std::size_t>(rank_)]->next_tag_seed++;
}

Rank Mpi::require_member(const Comm& comm) const {
  const Rank r = comm.comm_rank(rank_);
  if (r == kAnySource) {
    throw std::logic_error("Mpi: calling rank is not a member of this comm");
  }
  return r;
}

Request Mpi::isend(const Comm& comm, Rank dst, int tag, util::Buffer data) {
  require_member(comm);
  if (tag < 0 || tag > kMaxUserTag * 2) {
    throw std::invalid_argument("isend: invalid tag");
  }
  const Rank dst_w = comm.world_rank(dst);
  return Request(world_.post_send(ctx_, rank_, dst_w, comm.context_id(), tag,
                                  std::move(data)));
}

Request Mpi::irecv(const Comm& comm, Rank src, int tag) {
  const Rank me_w = rank_;
  require_member(comm);
  const Rank src_w = src == kAnySource ? kAnySource : comm.world_rank(src);
  return Request(world_.post_recv(me_w, comm.context_id(), src_w, tag));
}

bool Mpi::iprobe(const Comm& comm, Rank src, int tag, Status* status) {
  require_member(comm);
  const Rank src_w = src == kAnySource ? kAnySource : comm.world_rank(src);
  Status raw;
  if (!world_.probe_unexpected(rank_, comm.context_id(), src_w, tag, &raw)) {
    return false;
  }
  if (status != nullptr) {
    *status = raw;
    status->source = comm.comm_rank(raw.source);
  }
  return true;
}

void Mpi::wait(Request& request) {
  if (!request.valid()) throw std::logic_error("wait on invalid request");
  sim::Process* self = &ctx_.self();
  while (!request.state_->done) {
    auto& w = request.state_->waiters;
    if (std::find(w.begin(), w.end(), self) == w.end()) w.push_back(self);
    ctx_.suspend();
  }
  // Drop any leftover registration (spurious wake before completion).
  auto& w = request.state_->waiters;
  w.erase(std::remove(w.begin(), w.end(), self), w.end());
}

void Mpi::wait_all(std::span<Request> requests) {
  for (Request& r : requests) wait(r);
}

std::size_t Mpi::wait_any(std::span<Request> requests) {
  if (requests.empty()) throw std::logic_error("wait_any on empty set");
  sim::Process* self = &ctx_.self();
  while (true) {
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (requests[i].done()) {
        // Deregister from the others before returning.
        for (Request& r : requests) {
          if (!r.valid() || r.state_->done) continue;
          auto& w = r.state_->waiters;
          w.erase(std::remove(w.begin(), w.end(), self), w.end());
        }
        return i;
      }
    }
    for (Request& r : requests) {
      auto& w = r.state_->waiters;
      if (std::find(w.begin(), w.end(), self) == w.end()) w.push_back(self);
    }
    ctx_.suspend();
  }
}

bool Mpi::wait_until(Request& request, SimTime deadline) {
  if (!request.valid()) {
    throw std::logic_error("wait_until on invalid request");
  }
  if (deadline == kSimTimeNever) {
    wait(request);
    return true;
  }
  sim::Process* self = &ctx_.self();
  bool timer_armed = false;
  while (!request.state_->done && ctx_.now() < deadline) {
    if (!timer_armed) {
      // One wake event at the deadline; if the request completes first the
      // event fires as a harmless spurious wake (banked permit).
      timer_armed = true;
      sim::Engine& eng = world_.engine();
      eng.schedule_at(deadline, [&eng, self] { eng.wake(*self); });
    }
    auto& w = request.state_->waiters;
    if (std::find(w.begin(), w.end(), self) == w.end()) w.push_back(self);
    ctx_.suspend();
  }
  auto& w = request.state_->waiters;
  w.erase(std::remove(w.begin(), w.end(), self), w.end());
  return request.state_->done;
}

void Mpi::cancel(Request& request) {
  if (!request.valid()) throw std::logic_error("cancel on invalid request");
  world_.cancel_request(rank_, request.state_);
}

void Mpi::send(const Comm& comm, Rank dst, int tag, util::Buffer data) {
  Request r = isend(comm, dst, tag, std::move(data));
  wait(r);
}

util::Buffer Mpi::recv(const Comm& comm, Rank src, int tag, Status* status) {
  Request r = irecv(comm, src, tag);
  wait(r);
  if (status != nullptr) {
    *status = r.status();
    // Translate the world source rank to a comm rank for the caller.
    status->source = comm.comm_rank(r.status().source);
  }
  return r.take_payload();
}

util::Buffer Mpi::sendrecv(const Comm& comm, Rank dst, int send_tag,
                           util::Buffer data, Rank src, int recv_tag,
                           Status* status) {
  Request r = irecv(comm, src, recv_tag);
  Request s = isend(comm, dst, send_tag, std::move(data));
  wait(r);
  wait(s);
  if (status != nullptr) {
    *status = r.status();
    status->source = comm.comm_rank(r.status().source);
  }
  return r.take_payload();
}

// --- collectives -----------------------------------------------------------

namespace {
constexpr int kBarrierTag = kMaxUserTag + 1;
constexpr int kBcastTag = kMaxUserTag + 2;
constexpr int kReduceTag = kMaxUserTag + 3;
constexpr int kGatherTag = kMaxUserTag + 4;
constexpr int kScatterTag = kMaxUserTag + 5;
constexpr int kAlltoallTag = kMaxUserTag + 6;
}  // namespace

void Mpi::barrier(const Comm& comm) {
  // Dissemination barrier: log2(n) rounds of sendrecv with hop 2^k.
  const Rank me = require_member(comm);
  const int n = comm.size();
  for (int hop = 1; hop < n; hop <<= 1) {
    const Rank to = (me + hop) % n;
    const Rank from = (me - hop % n + n) % n;
    Request s = isend(comm, to, kBarrierTag, util::Buffer{});
    Request r = irecv(comm, from, kBarrierTag);
    wait(s);
    wait(r);
  }
}

util::Buffer Mpi::bcast(const Comm& comm, Rank root, util::Buffer data) {
  // Binomial tree rooted at `root` (ranks relative to root).
  const Rank me = require_member(comm);
  const int n = comm.size();
  const int rel = (me - root + n) % n;
  for (int hop = 1; hop < n; hop <<= 1) {
    if (rel < hop) {
      const int child = rel + hop;
      if (child < n) {
        // Zero-copy alias: each child gets a view of the same store.
        send(comm, (child + root) % n, kBcastTag, data.view());
      }
    } else if (rel < 2 * hop) {
      // This is the round in which we receive from our parent; afterwards we
      // forward to our own children in later rounds.
      data = recv(comm, (rel - hop + root) % n, kBcastTag);
    }
  }
  return data;
}

namespace {

// Binomial-tree reduce-to-root-0-then-bcast pattern shared by the typed
// allreduce helpers.
template <typename T, typename Op>
T allreduce_impl(Mpi& mpi, const Comm& comm, T value, Op op, int tag) {
  const Rank me = mpi.rank(comm);
  const int n = comm.size();
  // Reduce to rank 0: at round k, ranks with bit k set send to rank - 2^k.
  for (int hop = 1; hop < n; hop <<= 1) {
    if ((me & hop) != 0) {
      std::vector<T> one{value};
      mpi.send(comm, me - hop, tag, util::Buffer::of<T>(std::span(one)));
      break;
    }
    if (me + hop < n) {
      util::Buffer b = mpi.recv(comm, me + hop, tag);
      value = op(value, b.template as<T>()[0]);
    }
  }
  std::vector<T> one{value};
  util::Buffer out =
      mpi.bcast(comm, 0, util::Buffer::of<T>(std::span(one)));
  return out.template as<T>()[0];
}

}  // namespace

double Mpi::allreduce_sum(const Comm& comm, double value) {
  return allreduce_impl<double>(
      *this, comm, value, [](double a, double b) { return a + b; },
      kReduceTag);
}

std::uint64_t Mpi::allreduce_max(const Comm& comm, std::uint64_t value) {
  return allreduce_impl<std::uint64_t>(
      *this, comm, value,
      [](std::uint64_t a, std::uint64_t b) { return a > b ? a : b; },
      kReduceTag);
}

std::vector<util::Buffer> Mpi::gather(const Comm& comm, Rank root,
                                      util::Buffer data) {
  const Rank me = require_member(comm);
  if (me != root) {
    send(comm, root, kGatherTag, std::move(data));
    return {};
  }
  std::vector<util::Buffer> out(static_cast<std::size_t>(comm.size()));
  std::vector<Request> recvs;
  for (Rank r = 0; r < comm.size(); ++r) {
    if (r == root) continue;
    recvs.push_back(irecv(comm, r, kGatherTag));
  }
  out[static_cast<std::size_t>(root)] = std::move(data);
  std::size_t next = 0;
  for (Rank r = 0; r < comm.size(); ++r) {
    if (r == root) continue;
    wait(recvs[next]);
    out[static_cast<std::size_t>(r)] = recvs[next].take_payload();
    ++next;
  }
  return out;
}

util::Buffer Mpi::scatter(const Comm& comm, Rank root,
                          std::vector<util::Buffer> chunks) {
  const Rank me = require_member(comm);
  if (me == root) {
    if (chunks.size() != static_cast<std::size_t>(comm.size())) {
      throw std::invalid_argument("scatter: need one chunk per rank");
    }
    std::vector<Request> sends;
    for (Rank r = 0; r < comm.size(); ++r) {
      if (r == root) continue;
      sends.push_back(isend(comm, r, kScatterTag,
                            std::move(chunks[static_cast<std::size_t>(r)])));
    }
    wait_all(sends);
    return std::move(chunks[static_cast<std::size_t>(root)]);
  }
  return recv(comm, root, kScatterTag);
}

std::vector<util::Buffer> Mpi::alltoall(const Comm& comm,
                                        std::vector<util::Buffer> chunks) {
  const Rank me = require_member(comm);
  const int n = comm.size();
  if (chunks.size() != static_cast<std::size_t>(n)) {
    throw std::invalid_argument("alltoall: need one chunk per rank");
  }
  std::vector<util::Buffer> out(static_cast<std::size_t>(n));
  out[static_cast<std::size_t>(me)] =
      std::move(chunks[static_cast<std::size_t>(me)]);
  std::vector<Request> recvs;
  std::vector<Request> sends;
  for (Rank r = 0; r < n; ++r) {
    if (r == me) continue;
    recvs.push_back(irecv(comm, r, kAlltoallTag));
  }
  for (Rank r = 0; r < n; ++r) {
    if (r == me) continue;
    sends.push_back(isend(comm, r, kAlltoallTag,
                          std::move(chunks[static_cast<std::size_t>(r)])));
  }
  std::size_t next = 0;
  for (Rank r = 0; r < n; ++r) {
    if (r == me) continue;
    wait(recvs[next]);
    out[static_cast<std::size_t>(r)] = recvs[next].take_payload();
    ++next;
  }
  wait_all(sends);
  return out;
}

}  // namespace dacc::dmpi
