#include "proto/transfer.hpp"

#include <stdexcept>
#include <vector>

namespace dacc::proto {

BlockPlan::BlockPlan(std::uint64_t total, const TransferConfig& config)
    : total_(total), block_(config.effective_block(total)) {
  if (total_ == 0) {
    block_ = 0;
    count_ = 0;
    return;
  }
  if (block_ == 0 || block_ > total_) block_ = total_;
  count_ = static_cast<std::size_t>((total_ + block_ - 1) / block_);
}

std::uint64_t BlockPlan::offset(std::size_t i) const {
  if (i >= count_) throw std::out_of_range("BlockPlan::offset");
  return static_cast<std::uint64_t>(i) * block_;
}

std::uint64_t BlockPlan::size(std::size_t i) const {
  if (i >= count_) throw std::out_of_range("BlockPlan::size");
  const std::uint64_t off = offset(i);
  return std::min(block_, total_ - off);
}

namespace {

// Cancels every not-yet-finished request (timeout unwind path).
void cancel_outstanding(dmpi::Mpi& mpi, std::vector<dmpi::Request>& reqs) {
  for (dmpi::Request& r : reqs) {
    if (r.valid() && !r.done()) mpi.cancel(r);
  }
}

}  // namespace

void send_blocks(dmpi::Mpi& mpi, const dmpi::Comm& comm, dmpi::Rank dst,
                 util::Buffer payload, const TransferConfig& config,
                 int data_tag, SimTime deadline) {
  const BlockPlan plan(payload.size(), config);
  if (plan.count() == 0) return;
  if (plan.count() == 1 && deadline == kSimTimeNever) {
    mpi.send(comm, dst, data_tag, std::move(payload));
    return;
  }
  std::vector<dmpi::Request> sends;
  sends.reserve(plan.count());
  for (std::size_t i = 0; i < plan.count(); ++i) {
    // Zero-copy carve: each block is a view over the payload's store. The
    // store is freed once the last in-flight block is consumed.
    sends.push_back(mpi.isend(comm, dst, data_tag,
                              payload.view(plan.offset(i), plan.size(i))));
  }
  for (dmpi::Request& s : sends) {
    if (!mpi.wait_until(s, deadline)) {
      cancel_outstanding(mpi, sends);
      throw TransferTimeout{};
    }
  }
}

void recv_blocks(dmpi::Mpi& mpi, const dmpi::Comm& comm, dmpi::Rank src,
                 std::uint64_t total, const TransferConfig& config,
                 const std::function<void(std::uint64_t, util::Buffer)>&
                     on_block,
                 int data_tag, SimTime deadline) {
  const BlockPlan plan(total, config);
  if (plan.count() == 0) return;
  // Pre-post every receive so rendezvous handshakes are never on the
  // critical path; consume in order so on_block sees a clean offset stream.
  std::vector<dmpi::Request> recvs;
  recvs.reserve(plan.count());
  for (std::size_t i = 0; i < plan.count(); ++i) {
    recvs.push_back(mpi.irecv(comm, src, data_tag));
  }
  for (std::size_t i = 0; i < plan.count(); ++i) {
    if (!mpi.wait_until(recvs[i], deadline)) {
      cancel_outstanding(mpi, recvs);
      throw TransferTimeout{};
    }
    util::Buffer block = recvs[i].take_payload();
    if (block.size() != plan.size(i)) {
      throw std::runtime_error("recv_blocks: block size mismatch");
    }
    on_block(plan.offset(i), std::move(block));
  }
}

util::Buffer recv_assemble(dmpi::Mpi& mpi, const dmpi::Comm& comm,
                           dmpi::Rank src, std::uint64_t total,
                           const TransferConfig& config, int data_tag,
                           SimTime deadline) {
  util::Buffer out;
  bool initialized = false;
  recv_blocks(
      mpi, comm, src, total, config,
      [&](std::uint64_t offset, util::Buffer block) {
        if (!initialized) {
          out = block.is_backed() ? util::Buffer::backed_zero(total)
                                  : util::Buffer::phantom(total);
          initialized = true;
        }
        out.write_at(offset, block);
      },
      data_tag, deadline);
  return out;
}

}  // namespace dacc::proto
