// Bulk payload movement for the middleware: the naive protocol (one message,
// then one DMA) and the pipeline protocol (payload split into blocks so that
// network receive and host-to-GPU DMA overlap — Section IV of the paper).
//
// These helpers are shared by the front-end, the back-end daemon, and the
// daemon-to-daemon peer transfer path.
#pragma once

#include <cstdint>
#include <functional>

#include "dmpi/mpi.hpp"
#include "proto/wire.hpp"

namespace dacc::proto {

/// How a payload of `total` bytes is split under a transfer config.
class BlockPlan {
 public:
  BlockPlan(std::uint64_t total, const TransferConfig& config);

  std::uint64_t total() const { return total_; }
  std::uint64_t block_bytes() const { return block_; }
  std::size_t count() const { return count_; }
  std::uint64_t offset(std::size_t i) const;
  std::uint64_t size(std::size_t i) const;

 private:
  std::uint64_t total_;
  std::uint64_t block_;
  std::size_t count_;
};

/// A bulk transfer did not drain before its deadline (typically because the
/// peer's link failed mid-stream). Outstanding requests are cancelled before
/// this is thrown, so the caller can retry on fresh tags.
class TransferTimeout : public std::runtime_error {
 public:
  TransferTimeout() : std::runtime_error("transfer: deadline exceeded") {}
};

/// Sends `payload` to `dst` as the plan's sequence of `data_tag` messages.
/// All sends are posted nonblocking and then awaited, so consecutive blocks
/// stream back to back on the link. With a finite `deadline`, blocks not
/// completed in time are cancelled and TransferTimeout is thrown.
void send_blocks(dmpi::Mpi& mpi, const dmpi::Comm& comm, dmpi::Rank dst,
                 util::Buffer payload, const TransferConfig& config,
                 int data_tag = kDataTag, SimTime deadline = kSimTimeNever);

/// Receives `total` bytes from `src` under the same plan. All receives are
/// pre-posted; `on_block(offset, data)` runs in block order, at the
/// simulated time each block's receive completes — the daemon's callback
/// issues the next DMA there, which is what creates the overlap.
void recv_blocks(dmpi::Mpi& mpi, const dmpi::Comm& comm, dmpi::Rank src,
                 std::uint64_t total, const TransferConfig& config,
                 const std::function<void(std::uint64_t, util::Buffer)>&
                     on_block,
                 int data_tag = kDataTag, SimTime deadline = kSimTimeNever);

/// recv_blocks() assembling everything into one buffer (front-end side of a
/// device-to-host copy). Phantom blocks yield a phantom result.
util::Buffer recv_assemble(dmpi::Mpi& mpi, const dmpi::Comm& comm,
                           dmpi::Rank src, std::uint64_t total,
                           const TransferConfig& config,
                           int data_tag = kDataTag,
                           SimTime deadline = kSimTimeNever);

}  // namespace dacc::proto
