// Wire protocol between the front-end (compute node) and the back-end
// daemon (accelerator node).
//
// The paper's protocol is two MPI messages per request: a request from the
// front-end and a response (error code or data) from the back-end
// (Section IV). Requests are serialized into flat byte buffers here, exactly
// as they would be on a real deployment, so tests exercise the encode/decode
// path rather than passing C++ objects through a side door.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "gpu/device.hpp"
#include "util/buffer.hpp"
#include "util/units.hpp"

namespace dacc::proto {

/// Message tags on the middleware communicator. Requests carry a per-request
/// reply tag right after the op code; the daemon answers on that tag and
/// streams bulk data on reply_tag + 1. The legacy constants follow the same
/// pairing (kDataTag == kResponseTag + 1), so hand-rolled clients that pass
/// kResponseTag as their reply tag get data exactly where they always did.
inline constexpr int kRequestTag = 100;   ///< FE -> daemon request headers
inline constexpr int kResponseTag = 101;  ///< daemon -> FE responses
inline constexpr int kDataTag = 102;      ///< bulk payload blocks

/// Bit 31 of a request header's reply-tag word marks an appended causal
/// trace context (two u64s right after the tag: trace id, parent span id).
/// Real reply tags stay far below 2^31, so the bit is never ambiguous, and
/// daemons that see the flag strip it before using the tag. Requests from
/// untraced clients never set it — the header format is unchanged for them.
inline constexpr std::uint32_t kTraceContextFlag = 0x8000'0000u;

/// Malformed frame: truncated message or out-of-range field. Decoders throw
/// this instead of crashing; servers treat it as a rejectable request.
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class Op : std::uint32_t {
  kMemAlloc = 1,
  kMemFree = 2,
  kMemcpyHtoD = 3,
  kMemcpyDtoH = 4,
  kKernelCreate = 5,
  kKernelRun = 6,
  kDeviceInfo = 7,
  kPeerSend = 8,  ///< FE asks the source daemon to push to a peer daemon
  kPeerPut = 9,   ///< daemon -> daemon leg of a peer transfer
  kShutdown = 10,
  kBatch = 11,  ///< N batched small-op sub-requests in one frame (rpc/batch)
};

const char* to_string(Op op);

/// to_string for raw op words (decoders reporting unknown codes): the op
/// name for known values, "Op(<n>)" otherwise.
std::string op_name(std::uint32_t op_word);

/// How bulk payloads move between compute node and accelerator.
struct TransferConfig {
  enum class Mode : std::uint32_t {
    kNaive = 0,     ///< whole payload in one message, then one DMA
    kPipeline = 1,  ///< split into blocks; network overlaps DMA
  };

  Mode mode = Mode::kPipeline;

  /// Fixed pipeline block size (used when adaptive == false).
  std::uint64_t block_bytes = 512 * 1024;

  /// The paper's tuned policy: 128 KiB blocks below the cutoff, 512 KiB
  /// above ("pipeline-128-512K", Section V.A).
  bool adaptive = false;
  std::uint64_t adaptive_small_bytes = 128 * 1024;
  std::uint64_t adaptive_large_bytes = 512 * 1024;
  std::uint64_t adaptive_cutoff_bytes = 9 * 1024 * 1024;

  /// GPUDirect v1: the NIC and the GPU share pinned pages, so a received
  /// block is DMA-able in place. When false, every block pays an extra
  /// host-to-host staging copy on the accelerator CPU.
  bool gpudirect = true;

  /// Effective block size for a payload of `total` bytes.
  std::uint64_t effective_block(std::uint64_t total) const {
    if (mode == Mode::kNaive) return total;
    if (!adaptive) return block_bytes;
    return total < adaptive_cutoff_bytes ? adaptive_small_bytes
                                         : adaptive_large_bytes;
  }

  static TransferConfig naive() {
    TransferConfig c;
    c.mode = Mode::kNaive;
    return c;
  }
  static TransferConfig pipeline(std::uint64_t block) {
    TransferConfig c;
    c.mode = Mode::kPipeline;
    c.block_bytes = block;
    return c;
  }
  static TransferConfig pipeline_adaptive() {
    TransferConfig c;
    c.mode = Mode::kPipeline;
    c.adaptive = true;
    return c;
  }
};

/// CPU-side middleware costs (marshalling, dispatch, staging).
struct ProtoParams {
  SimDuration fe_marshal = 700;    ///< ns, front-end per request
  SimDuration be_dispatch = 1500;  ///< ns, daemon decode + driver call
  /// Host-to-host staging copy rate used when GPUDirect is off.
  double staging_copy_mib_s = 4800.0;
  /// DMA rate through GPUDirect v1's NIC/GPU shared pinned pages. v1 page
  /// sharing was markedly slower than ordinary pinned transfers (the
  /// cuMemHostRegister path); this rate shapes the pipeline drain and is
  /// what pins the paper's 128K-vs-512K crossover near 9 MiB.
  double gpudirect_dma_mib_s = 4200.0;
};

// ---------------------------------------------------------------------------
// Flat binary serialization
// ---------------------------------------------------------------------------

class WireWriter {
 public:
  /// Every request header fits in ~100 bytes; reserving up front means a
  /// typical message is built with exactly one allocation and no
  /// grow-and-copy cycles.
  WireWriter() { bytes_.reserve(kInitialCapacity); }

  WireWriter& u32(std::uint32_t v);
  WireWriter& u64(std::uint64_t v);
  WireWriter& f64(double v);
  WireWriter& str(const std::string& s);  ///< length-prefixed
  /// Length-prefixed opaque byte block (nested frames: replicated-log
  /// commands, state-machine snapshots).
  WireWriter& blob(std::span<const std::byte> src);

  /// Bulk append of raw bytes (single insert, no per-byte growth).
  WireWriter& bytes(std::span<const std::byte> src);

  /// Pre-grow for `n` more bytes (callers that know their message size).
  WireWriter& reserve(std::size_t n) {
    bytes_.reserve(bytes_.size() + n);
    return *this;
  }
  WireWriter& op(Op o) { return u32(static_cast<std::uint32_t>(o)); }
  WireWriter& result(gpu::Result r) {
    return u32(static_cast<std::uint32_t>(r));
  }
  WireWriter& transfer_config(const TransferConfig& c);
  WireWriter& launch_config(const gpu::LaunchConfig& c);
  WireWriter& kernel_args(const gpu::KernelArgs& args);

  util::Buffer finish();

 private:
  static constexpr std::size_t kInitialCapacity = 112;

  std::vector<std::byte> bytes_;
};

class WireReader {
 public:
  /// Takes ownership of the message buffer (so reading from a temporary —
  /// e.g. `WireReader r(mpi.recv(...))` — is safe).
  explicit WireReader(util::Buffer buffer);

  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::string str();
  /// Length-prefixed opaque byte block written by WireWriter::blob.
  util::Buffer blob();
  /// Everything left in the message, as an owning buffer (lifting a request
  /// body out of a decoded frame into a replicated-log command).
  util::Buffer rest();
  Op op() { return static_cast<Op>(u32()); }
  gpu::Result result() { return static_cast<gpu::Result>(u32()); }
  TransferConfig transfer_config();
  gpu::LaunchConfig launch_config();
  gpu::KernelArgs kernel_args();

  bool exhausted() const { return offset_ == bytes_.size(); }
  /// Bytes left to read (batch decoders bound sub-request counts with it).
  std::size_t remaining() const { return bytes_.size() - offset_; }

 private:
  void need(std::size_t n) const;

  util::Buffer buffer_;
  std::span<const std::byte> bytes_;
  std::size_t offset_ = 0;
};

}  // namespace dacc::proto
