#include "proto/wire.hpp"

#include <cstring>
#include <stdexcept>

namespace dacc::proto {

const char* to_string(Op op) {
  switch (op) {
    case Op::kMemAlloc:
      return "MemAlloc";
    case Op::kMemFree:
      return "MemFree";
    case Op::kMemcpyHtoD:
      return "MemcpyHtoD";
    case Op::kMemcpyDtoH:
      return "MemcpyDtoH";
    case Op::kKernelCreate:
      return "KernelCreate";
    case Op::kKernelRun:
      return "KernelRun";
    case Op::kDeviceInfo:
      return "DeviceInfo";
    case Op::kPeerSend:
      return "PeerSend";
    case Op::kPeerPut:
      return "PeerPut";
    case Op::kShutdown:
      return "Shutdown";
    case Op::kBatch:
      return "Batch";
  }
  return "Unknown";
}

std::string op_name(std::uint32_t op_word) {
  const auto op = static_cast<Op>(op_word);
  if (op >= Op::kMemAlloc && op <= Op::kBatch) return to_string(op);
  return "Op(" + std::to_string(op_word) + ")";
}

namespace {

template <typename T>
void append_pod(std::vector<std::byte>& out, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  out.insert(out.end(), p, p + sizeof(T));
}

}  // namespace

WireWriter& WireWriter::u32(std::uint32_t v) {
  append_pod(bytes_, v);
  return *this;
}

WireWriter& WireWriter::u64(std::uint64_t v) {
  append_pod(bytes_, v);
  return *this;
}

WireWriter& WireWriter::f64(double v) {
  append_pod(bytes_, v);
  return *this;
}

WireWriter& WireWriter::str(const std::string& s) {
  reserve(4 + s.size());
  u32(static_cast<std::uint32_t>(s.size()));
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  return bytes(std::span(p, s.size()));
}

WireWriter& WireWriter::bytes(std::span<const std::byte> src) {
  bytes_.insert(bytes_.end(), src.begin(), src.end());
  return *this;
}

WireWriter& WireWriter::blob(std::span<const std::byte> src) {
  reserve(4 + src.size());
  u32(static_cast<std::uint32_t>(src.size()));
  return bytes(src);
}

WireWriter& WireWriter::transfer_config(const TransferConfig& c) {
  u32(static_cast<std::uint32_t>(c.mode));
  u64(c.block_bytes);
  u32(c.adaptive ? 1 : 0);
  u64(c.adaptive_small_bytes);
  u64(c.adaptive_large_bytes);
  u64(c.adaptive_cutoff_bytes);
  u32(c.gpudirect ? 1 : 0);
  return *this;
}

WireWriter& WireWriter::launch_config(const gpu::LaunchConfig& c) {
  u32(c.grid.x).u32(c.grid.y).u32(c.grid.z);
  u32(c.block.x).u32(c.block.y).u32(c.block.z);
  return *this;
}

WireWriter& WireWriter::kernel_args(const gpu::KernelArgs& args) {
  reserve(4 + args.size() * 12);  // tag + payload per argument
  u32(static_cast<std::uint32_t>(args.size()));
  for (const gpu::KernelArg& a : args) {
    if (std::holds_alternative<gpu::DevPtr>(a)) {
      u32(0).u64(std::get<gpu::DevPtr>(a));
    } else if (std::holds_alternative<std::int64_t>(a)) {
      u32(1).u64(static_cast<std::uint64_t>(std::get<std::int64_t>(a)));
    } else {
      u32(2).f64(std::get<double>(a));
    }
  }
  return *this;
}

util::Buffer WireWriter::finish() {
  return util::Buffer::backed(std::move(bytes_));
}

WireReader::WireReader(util::Buffer buffer)
    : buffer_(std::move(buffer)), bytes_(buffer_.bytes()) {}

void WireReader::need(std::size_t n) const {
  if (offset_ + n > bytes_.size()) {
    throw WireError("wire: truncated message");
  }
}

std::uint32_t WireReader::u32() {
  need(4);
  std::uint32_t v;
  std::memcpy(&v, bytes_.data() + offset_, 4);
  offset_ += 4;
  return v;
}

std::uint64_t WireReader::u64() {
  need(8);
  std::uint64_t v;
  std::memcpy(&v, bytes_.data() + offset_, 8);
  offset_ += 8;
  return v;
}

double WireReader::f64() {
  need(8);
  double v;
  std::memcpy(&v, bytes_.data() + offset_, 8);
  offset_ += 8;
  return v;
}

std::string WireReader::str() {
  const std::uint32_t len = u32();
  need(len);
  std::string s(reinterpret_cast<const char*>(bytes_.data() + offset_), len);
  offset_ += len;
  return s;
}

util::Buffer WireReader::blob() {
  const std::uint32_t len = u32();
  need(len);
  util::Buffer b = util::Buffer::backed_copy(bytes_.subspan(offset_, len));
  offset_ += len;
  return b;
}

util::Buffer WireReader::rest() {
  util::Buffer b = util::Buffer::backed_copy(bytes_.subspan(offset_));
  offset_ = bytes_.size();
  return b;
}

TransferConfig WireReader::transfer_config() {
  TransferConfig c;
  c.mode = static_cast<TransferConfig::Mode>(u32());
  c.block_bytes = u64();
  c.adaptive = u32() != 0;
  c.adaptive_small_bytes = u64();
  c.adaptive_large_bytes = u64();
  c.adaptive_cutoff_bytes = u64();
  c.gpudirect = u32() != 0;
  return c;
}

gpu::LaunchConfig WireReader::launch_config() {
  gpu::LaunchConfig c;
  c.grid.x = u32();
  c.grid.y = u32();
  c.grid.z = u32();
  c.block.x = u32();
  c.block.y = u32();
  c.block.z = u32();
  return c;
}

gpu::KernelArgs WireReader::kernel_args() {
  const std::uint32_t n = u32();
  gpu::KernelArgs args;
  args.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t kind = u32();
    switch (kind) {
      case 0:
        args.emplace_back(static_cast<gpu::DevPtr>(u64()));
        break;
      case 1:
        args.emplace_back(static_cast<std::int64_t>(u64()));
        break;
      case 2:
        args.emplace_back(f64());
        break;
      default:
        throw WireError("wire: bad kernel arg kind");
    }
  }
  return args;
}

}  // namespace dacc::proto
