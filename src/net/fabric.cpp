#include "net/fabric.hpp"

#include <stdexcept>

namespace dacc::net {

Fabric::Fabric(sim::Engine& engine, int num_nodes, FabricParams params)
    : engine_(engine), params_(params), nics_(num_nodes) {
  if (num_nodes <= 0) {
    throw std::invalid_argument("Fabric: need at least one node");
  }
}

void Fabric::check_node(NodeId node) const {
  if (node < 0 || node >= num_nodes()) {
    throw std::out_of_range("Fabric: invalid node id");
  }
}

SimTime Fabric::transfer(NodeId src, NodeId dst, std::uint64_t bytes,
                         SimTime earliest) {
  check_node(src);
  check_node(dst);
  if (src == dst) {
    // Loopback: memory-to-memory, no NIC involvement.
    const SimDuration busy =
        transfer_time(bytes, params_.loopback_bandwidth_mib_s);
    return earliest + params_.loopback_latency + busy;
  }
  Nic& s = nics_[static_cast<std::size_t>(src)];
  Nic& d = nics_[static_cast<std::size_t>(dst)];
  SimDuration busy = transfer_time(bytes, params_.link_bandwidth_mib_s);
  if (bytes >= params_.per_message_overhead_min_bytes) {
    busy += params_.per_message_overhead;
  }
  const auto tx = s.tx.occupy(earliest, busy);
  // Cut-through: the rx occupancy mirrors the tx occupancy shifted by the
  // wire latency; rx-port contention can delay it further.
  const auto rx = d.rx.occupy(tx.start + params_.wire_latency, busy);
  s.bytes_sent += bytes;
  d.bytes_received += bytes;
  return rx.end;
}

std::uint64_t Fabric::bytes_sent(NodeId node) const {
  check_node(node);
  return nics_[static_cast<std::size_t>(node)].bytes_sent;
}

std::uint64_t Fabric::bytes_received(NodeId node) const {
  check_node(node);
  return nics_[static_cast<std::size_t>(node)].bytes_received;
}

SimDuration Fabric::tx_busy(NodeId node) const {
  check_node(node);
  return nics_[static_cast<std::size_t>(node)].tx.busy_total();
}

SimDuration Fabric::rx_busy(NodeId node) const {
  check_node(node);
  return nics_[static_cast<std::size_t>(node)].rx.busy_total();
}

}  // namespace dacc::net
