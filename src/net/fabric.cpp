#include "net/fabric.hpp"

#include <stdexcept>
#include <string>

namespace dacc::net {

Fabric::Fabric(sim::Engine& engine, int num_nodes, FabricParams params)
    : engine_(engine), params_(params), nics_(num_nodes) {
  if (num_nodes <= 0) {
    throw std::invalid_argument("Fabric: need at least one node");
  }
  // Declare the node topology to the engine: this homes per-node events on
  // their shards under the parallel backend and sizes the per-node ordering
  // counters everywhere. Must precede any node-homed scheduling, which
  // constructing the fabric before any traffic guarantees.
  engine.set_node_count(num_nodes);
  if (!params_.link_latency_overrides.empty()) {
    std::vector<sim::Engine::LatencyOverride> links;
    links.reserve(params_.link_latency_overrides.size());
    for (const FabricParams::LinkLatency& l : params_.link_latency_overrides) {
      check_node(l.a);
      check_node(l.b);
      if (l.a == l.b || l.latency < 0) {
        throw std::invalid_argument(
            "Fabric: link latency override needs two distinct nodes and a "
            "non-negative latency");
      }
      link_latency_[link_key(l.a, l.b)] = l.latency;
      link_latency_[link_key(l.b, l.a)] = l.latency;
      links.push_back({l.a, l.b, l.latency});
    }
    // The overrides become the engine's per-pair cross-node clamp floors —
    // part of the simulation semantics in every backend — and calibrate the
    // parallel backend's per-shard-pair lookahead matrix + topology-aware
    // partitioner. Deliberately does NOT touch set_lookahead: whether a
    // window width exists at all stays the cluster harness's decision.
    engine.set_lookahead_overrides(params_.wire_latency, links);
  }
}

void Fabric::check_node(NodeId node) const {
  if (node < 0 || node >= num_nodes()) {
    throw std::out_of_range("Fabric: invalid node id");
  }
}

obs::Registry* Fabric::metrics() {
  obs::Registry* reg = engine_.metrics();
  if (reg == nullptr) return nullptr;
  if (metrics_bound_.load(std::memory_order_acquire) != reg) {
    bind_metrics(reg);
  }
  return reg;
}

void Fabric::bind_metrics(obs::Registry* reg) {
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  if (metrics_bound_.load(std::memory_order_relaxed) == reg) return;
  std::vector<NicMetrics> handles(nics_.size());
  for (std::size_t n = 0; n < nics_.size(); ++n) {
    const std::string l = "{node=\"" + std::to_string(n) + "\"}";
    handles[n].tx_bytes = reg->counter("dacc_net_tx_bytes_total" + l);
    handles[n].rx_bytes = reg->counter("dacc_net_rx_bytes_total" + l);
    handles[n].tx_busy_ns = reg->counter("dacc_net_tx_busy_ns_total" + l);
    handles[n].rx_busy_ns = reg->counter("dacc_net_rx_busy_ns_total" + l);
    handles[n].drops = reg->counter("dacc_net_drops_total" + l);
  }
  m_tx_queue_delay_ =
      reg->histogram("dacc_net_tx_queue_delay_ns", obs::latency_bounds_ns());
  nic_metrics_ = std::move(handles);
  metrics_bound_.store(reg, std::memory_order_release);
}

void Fabric::count_tx(NodeId src, std::uint64_t bytes, SimDuration busy,
                      SimDuration queue_delay) {
  if (metrics() == nullptr) return;
  NicMetrics& m = nic_metrics_[static_cast<std::size_t>(src)];
  m.tx_bytes.add(bytes);
  m.tx_busy_ns.add(static_cast<std::uint64_t>(busy));
  m_tx_queue_delay_.observe(static_cast<std::uint64_t>(queue_delay));
}

void Fabric::count_rx(NodeId dst, std::uint64_t bytes, SimDuration busy) {
  if (metrics() == nullptr) return;
  NicMetrics& m = nic_metrics_[static_cast<std::size_t>(dst)];
  m.rx_bytes.add(bytes);
  m.rx_busy_ns.add(static_cast<std::uint64_t>(busy));
}

void Fabric::count_drop(NodeId node) {
  if (metrics() == nullptr) return;
  nic_metrics_[static_cast<std::size_t>(node)].drops.add(1);
}

Fabric::Outcome Fabric::transfer_outcome(NodeId src, NodeId dst,
                                         std::uint64_t bytes,
                                         SimTime earliest) {
  check_node(src);
  check_node(dst);
  if (src == dst) {
    // Loopback: memory-to-memory, no NIC involvement — immune to NIC faults.
    const SimDuration busy =
        transfer_time(bytes, params_.loopback_bandwidth_mib_s);
    return {earliest + params_.loopback_latency + busy, true};
  }
  Nic& s = nics_[static_cast<std::size_t>(src)];
  Nic& d = nics_[static_cast<std::size_t>(dst)];
  if (earliest >= s.down_at) {
    // A dead source NIC injects nothing; no port time is consumed.
    ++s.drops;
    count_drop(src);
    return {earliest, false};
  }
  SimDuration busy = transfer_time(bytes, params_.link_bandwidth_mib_s);
  if (bytes >= params_.per_message_overhead_min_bytes) {
    busy += params_.per_message_overhead;
  }
  // A degraded NIC on either end stretches the serialization time; the
  // slower endpoint governs.
  double factor = 1.0;
  if (earliest >= s.degraded_at) factor = s.degrade_factor;
  if (earliest >= d.degraded_at && d.degrade_factor < factor) {
    factor = d.degrade_factor;
  }
  if (factor < 1.0) {
    busy = static_cast<SimDuration>(static_cast<double>(busy) / factor);
  }
  const SimDuration wire = latency_of(src, dst);
  if (earliest >= d.down_at) {
    // The sender transmits into a dead receiver: tx time is consumed, but
    // nothing lands on the rx side.
    const auto tx = s.tx.occupy(earliest, busy);
    s.bytes_sent += bytes;
    count_tx(src, bytes, busy, tx.start - earliest);
    ++d.drops;
    count_drop(dst);
    return {tx.end + wire, false};
  }
  const auto tx = s.tx.occupy(earliest, busy);
  // Cut-through: the rx occupancy mirrors the tx occupancy shifted by the
  // wire latency; rx-port contention can delay it further.
  const auto rx = d.rx.occupy(tx.start + wire, busy);
  s.bytes_sent += bytes;
  d.bytes_received += bytes;
  count_tx(src, bytes, busy, tx.start - earliest);
  count_rx(dst, bytes, busy);
  // Link failure mid-flight: the transfer was cut before it drained.
  if (tx.end > s.down_at) {
    ++s.drops;
    count_drop(src);
    return {rx.end, false};
  }
  if (rx.end > d.down_at) {
    ++d.drops;
    count_drop(dst);
    return {rx.end, false};
  }
  return {rx.end, true};
}

Fabric::TxPlan Fabric::plan_transfer(NodeId src, NodeId dst,
                                     std::uint64_t bytes, SimTime earliest) {
  check_node(src);
  check_node(dst);
  const SimTime now = engine_.now();
  if (earliest < now) earliest = now;
  if (src == dst) {
    // Loopback: memory-to-memory, no NIC involvement — immune to NIC faults.
    const SimDuration busy =
        transfer_time(bytes, params_.loopback_bandwidth_mib_s);
    return {TxPlan::Kind::kLoopback, earliest + params_.loopback_latency + busy,
            busy, false};
  }
  Nic& s = nics_[static_cast<std::size_t>(src)];
  const Nic& d = nics_[static_cast<std::size_t>(dst)];
  if (earliest >= s.down_at) {
    // A dead source NIC injects nothing; no port time is consumed.
    ++s.drops;
    count_drop(src);
    return {TxPlan::Kind::kSrcDead, earliest, 0, false};
  }
  SimDuration busy = transfer_time(bytes, params_.link_bandwidth_mib_s);
  if (bytes >= params_.per_message_overhead_min_bytes) {
    busy += params_.per_message_overhead;
  }
  // A degraded NIC on either end stretches the serialization time; the
  // slower endpoint governs (the destination's marks are only written from
  // the serial global band, so reading them here is backend-invariant).
  double factor = 1.0;
  if (earliest >= s.degraded_at) factor = s.degrade_factor;
  if (earliest >= d.degraded_at && d.degrade_factor < factor) {
    factor = d.degrade_factor;
  }
  if (factor < 1.0) {
    busy = static_cast<SimDuration>(static_cast<double>(busy) / factor);
  }
  const SimDuration wire = latency_of(src, dst);
  const auto tx = s.tx.occupy(earliest, busy);
  s.bytes_sent += bytes;
  count_tx(src, bytes, busy, tx.start - earliest);
  if (earliest >= d.down_at) {
    // Transmitting into a dead receiver: tx time is consumed, nothing lands.
    return {TxPlan::Kind::kDstDead, tx.end + wire, busy, false};
  }
  // Cut-through: the wire front reaches the receiver one latency after the
  // tx occupancy starts; the rx port is charged there, in arrival order.
  const bool src_dropped = tx.end > s.down_at;
  if (src_dropped) {
    ++s.drops;
    count_drop(src);
  }
  return {TxPlan::Kind::kSend, tx.start + wire, busy, src_dropped};
}

void Fabric::fail_link(NodeId node, SimTime at) {
  check_node(node);
  Nic& n = nics_[static_cast<std::size_t>(node)];
  if (at < n.down_at) n.down_at = at;
}

void Fabric::degrade_link(NodeId node, SimTime at, double bandwidth_factor) {
  check_node(node);
  if (bandwidth_factor <= 0.0 || bandwidth_factor > 1.0) {
    throw std::invalid_argument("degrade_link: factor must be in (0, 1]");
  }
  Nic& n = nics_[static_cast<std::size_t>(node)];
  n.degraded_at = at;
  n.degrade_factor = bandwidth_factor;
}

bool Fabric::link_failed(NodeId node, SimTime at) const {
  check_node(node);
  return at >= nics_[static_cast<std::size_t>(node)].down_at;
}

std::uint64_t Fabric::drops(NodeId node) const {
  check_node(node);
  return nics_[static_cast<std::size_t>(node)].drops;
}

std::uint64_t Fabric::bytes_sent(NodeId node) const {
  check_node(node);
  return nics_[static_cast<std::size_t>(node)].bytes_sent;
}

std::uint64_t Fabric::bytes_received(NodeId node) const {
  check_node(node);
  return nics_[static_cast<std::size_t>(node)].bytes_received;
}

SimDuration Fabric::tx_busy(NodeId node) const {
  check_node(node);
  return nics_[static_cast<std::size_t>(node)].tx.busy_total();
}

SimDuration Fabric::rx_busy(NodeId node) const {
  check_node(node);
  return nics_[static_cast<std::size_t>(node)].rx.busy_total();
}

}  // namespace dacc::net
