// Interconnect fabric model.
//
// The cluster network is a full-bisection switch: every node owns one NIC
// with independent transmit and receive directions, each modelled as a
// serialized resource at the link byte rate (sim::SerialResource). A
// transfer occupies the sender's tx port, propagates for the wire latency,
// and occupies the receiver's rx port cut-through style (the rx occupancy
// starts one latency after the tx occupancy starts, so a solo transfer costs
// latency + bytes/bandwidth, not 2x bytes/bandwidth). Port contention —
// e.g., compute-node-to-accelerator traffic competing with
// compute-node-to-compute-node traffic, the effect Section III warns about —
// falls out of the FIFO port schedules.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/model_params.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "util/units.hpp"

namespace dacc::net {

using NodeId = int;

class Fabric {
 public:
  /// Result of routing one transfer: when it ends on the wire, and whether
  /// the payload actually arrived (a transfer whose NIC fails before it
  /// drains is lost in flight).
  struct Outcome {
    SimTime at = 0;
    bool delivered = true;
  };

  Fabric(sim::Engine& engine, int num_nodes, FabricParams params = {});

  int num_nodes() const { return static_cast<int>(nics_.size()); }
  const FabricParams& params() const { return params_; }
  sim::Engine& engine() { return engine_; }

  /// Reserves fabric resources for moving `bytes` from `src` to `dst`,
  /// starting no earlier than `earliest`, and returns the delivery
  /// completion time and whether the payload survived the link. Does not
  /// schedule any event.
  Outcome transfer_outcome(NodeId src, NodeId dst, std::uint64_t bytes,
                           SimTime earliest);

  /// Outcome-blind convenience wrapper (legacy callers that model
  /// fault-free paths).
  SimTime transfer(NodeId src, NodeId dst, std::uint64_t bytes,
                   SimTime earliest) {
    return transfer_outcome(src, dst, bytes, earliest).at;
  }

  /// transfer() plus an engine callback at the delivery time; the callback
  /// is silently discarded when the transfer is dropped by a failed link
  /// (the wire model of message loss). Templated so move-only callbacks
  /// (carrying payload buffers by value) go straight into the engine's
  /// pooled event storage without a std::function box.
  template <typename F>
  void deliver(NodeId src, NodeId dst, std::uint64_t bytes, SimTime earliest,
               F&& on_delivered) {
    const Outcome out = transfer_outcome(src, dst, bytes, earliest);
    if (out.delivered) {
      engine_.schedule_at(out.at, std::forward<F>(on_delivered));
    }
  }

  // --- deterministic fault injection (mirrors rt break_accelerator) -------

  /// The node's NIC goes dark at simulated time `at`: transfers that would
  /// start or still be draining past `at` are dropped. Loopback traffic is
  /// unaffected (it never touches the NIC). Repeated calls keep the
  /// earliest failure time.
  void fail_link(NodeId node, SimTime at);

  /// From `at` on, the node's NIC runs at `bandwidth_factor` (0 < f <= 1)
  /// of the calibrated link rate (degraded link, e.g. a flapping cable
  /// renegotiating a lower speed).
  void degrade_link(NodeId node, SimTime at, double bandwidth_factor);

  bool link_failed(NodeId node, SimTime at) const;
  /// Transfers dropped because this node's NIC was down.
  std::uint64_t drops(NodeId node) const;
  std::uint64_t total_drops() const { return total_drops_; }

  /// Per-node traffic counters (diagnostics / utilization reporting).
  std::uint64_t bytes_sent(NodeId node) const;
  std::uint64_t bytes_received(NodeId node) const;
  SimDuration tx_busy(NodeId node) const;
  SimDuration rx_busy(NodeId node) const;

 private:
  struct Nic {
    sim::SerialResource tx;
    sim::SerialResource rx;
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t drops = 0;
    SimTime down_at = kSimTimeNever;
    SimTime degraded_at = kSimTimeNever;
    double degrade_factor = 1.0;
  };

  void check_node(NodeId node) const;

  sim::Engine& engine_;
  FabricParams params_;
  std::vector<Nic> nics_;
  std::uint64_t total_drops_ = 0;
};

}  // namespace dacc::net
