// Interconnect fabric model.
//
// The cluster network is a full-bisection switch: every node owns one NIC
// with independent transmit and receive directions, each modelled as a
// serialized resource at the link byte rate (sim::SerialResource). A
// transfer occupies the sender's tx port, propagates for the wire latency,
// and occupies the receiver's rx port cut-through style (the rx occupancy
// starts one latency after the tx occupancy starts, so a solo transfer costs
// latency + bytes/bandwidth, not 2x bytes/bandwidth). Port contention —
// e.g., compute-node-to-accelerator traffic competing with
// compute-node-to-compute-node traffic, the effect Section III warns about —
// falls out of the FIFO port schedules.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "net/model_params.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "util/units.hpp"

namespace dacc::net {

using NodeId = int;

class Fabric {
 public:
  /// Result of routing one transfer: when it ends on the wire, and whether
  /// the payload actually arrived (a transfer whose NIC fails before it
  /// drains is lost in flight).
  struct Outcome {
    SimTime at = 0;
    bool delivered = true;
  };

  Fabric(sim::Engine& engine, int num_nodes, FabricParams params = {});

  int num_nodes() const { return static_cast<int>(nics_.size()); }
  const FabricParams& params() const { return params_; }
  sim::Engine& engine() { return engine_; }

  /// One-way wire latency of the src -> dst link: the per-pair override
  /// when one exists, the uniform wire_latency otherwise. Symmetric.
  SimDuration latency_of(NodeId src, NodeId dst) const {
    if (!link_latency_.empty()) {
      const auto it = link_latency_.find(link_key(src, dst));
      if (it != link_latency_.end()) return it->second;
    }
    return params_.wire_latency;
  }

  /// Reserves fabric resources for moving `bytes` from `src` to `dst`,
  /// starting no earlier than `earliest`, and returns the delivery
  /// completion time and whether the payload survived the link. Does not
  /// schedule any event.
  Outcome transfer_outcome(NodeId src, NodeId dst, std::uint64_t bytes,
                           SimTime earliest);

  /// Outcome-blind convenience wrapper (legacy callers that model
  /// fault-free paths).
  SimTime transfer(NodeId src, NodeId dst, std::uint64_t bytes,
                   SimTime earliest) {
    return transfer_outcome(src, dst, bytes, earliest).at;
  }

  /// Asynchronous transfer with an engine callback at the delivery time; the
  /// callback is silently discarded when the transfer is dropped by a failed
  /// link (the wire model of message loss). Templated so move-only callbacks
  /// (carrying payload buffers by value) go straight into the engine's
  /// pooled event storage without a std::function box.
  ///
  /// Runs in two phases so each NIC is only ever touched from its own node's
  /// context (the parallel backend's isolation invariant): the send phase
  /// executes here — in the caller's (src) context — consuming tx-port time
  /// and source-side accounting; the receive phase rides the payload to the
  /// destination node one wire latency later and consumes rx-port time
  /// there. Receive-port contention therefore resolves in arrival order,
  /// which is identical under every backend. The sync transfer_outcome()
  /// API keeps the original one-shot semantics for fault-free modelling and
  /// tests.
  template <typename F>
  void deliver(NodeId src, NodeId dst, std::uint64_t bytes, SimTime earliest,
               F&& on_delivered) {
    const TxPlan plan = plan_transfer(src, dst, bytes, earliest);
    switch (plan.kind) {
      case TxPlan::Kind::kLoopback:
        engine_.schedule_at(plan.at, std::forward<F>(on_delivered));
        break;
      case TxPlan::Kind::kSrcDead:
        break;  // nothing was injected; drop already accounted at src
      case TxPlan::Kind::kDstDead:
        // tx time was consumed; the wire front reaches a dark NIC. The
        // drop is accounted on the destination's shard.
        engine_.post(dst, plan.at, [this, dst] {
          ++nics_[static_cast<std::size_t>(dst)].drops;
          count_drop(dst);
        });
        break;
      case TxPlan::Kind::kSend:
        engine_.post(dst, plan.at,
                     [this, dst, bytes, busy = plan.busy,
                      src_dropped = plan.src_dropped,
                      cb = std::forward<F>(on_delivered)]() mutable {
                       finish_receive(dst, bytes, busy, src_dropped,
                                      std::move(cb));
                     });
        break;
    }
  }

  // --- deterministic fault injection (mirrors rt break_accelerator) -------

  /// The node's NIC goes dark at simulated time `at`: transfers that would
  /// start or still be draining past `at` are dropped. Loopback traffic is
  /// unaffected (it never touches the NIC). Repeated calls keep the
  /// earliest failure time.
  void fail_link(NodeId node, SimTime at);

  /// From `at` on, the node's NIC runs at `bandwidth_factor` (0 < f <= 1)
  /// of the calibrated link rate (degraded link, e.g. a flapping cable
  /// renegotiating a lower speed).
  void degrade_link(NodeId node, SimTime at, double bandwidth_factor);

  bool link_failed(NodeId node, SimTime at) const;
  /// Transfers dropped because this node's NIC was down.
  std::uint64_t drops(NodeId node) const;
  std::uint64_t total_drops() const {
    std::uint64_t total = 0;
    for (const Nic& n : nics_) total += n.drops;
    return total;
  }

  /// Per-node traffic counters (diagnostics / utilization reporting).
  std::uint64_t bytes_sent(NodeId node) const;
  std::uint64_t bytes_received(NodeId node) const;
  SimDuration tx_busy(NodeId node) const;
  SimDuration rx_busy(NodeId node) const;

 private:
  struct Nic {
    sim::SerialResource tx;
    sim::SerialResource rx;
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t drops = 0;
    SimTime down_at = kSimTimeNever;
    SimTime degraded_at = kSimTimeNever;
    double degrade_factor = 1.0;
  };

  /// Send-phase result for the two-phase deliver() path.
  struct TxPlan {
    enum class Kind { kLoopback, kSrcDead, kDstDead, kSend } kind;
    SimTime at = 0;            ///< delivery (loopback) or wire-arrival time
    SimDuration busy = 0;      ///< serialization time to charge the rx port
    bool src_dropped = false;  ///< src NIC died while the tx port drained
  };

  /// Source-side half of deliver(): consumes tx-port time and src-side
  /// accounting in the caller's context. Reads the destination NIC's fault
  /// and degrade marks, which is safe under every backend because those are
  /// only written from the serial global band (or before the run).
  TxPlan plan_transfer(NodeId src, NodeId dst, std::uint64_t bytes,
                       SimTime earliest);

  /// Destination-side half: runs in the destination node's context at the
  /// wire-arrival time.
  template <typename F>
  void finish_receive(NodeId dst, std::uint64_t bytes, SimDuration busy,
                      bool src_dropped, F&& cb) {
    Nic& d = nics_[static_cast<std::size_t>(dst)];
    const auto rx = d.rx.occupy(engine_.now(), busy);
    d.bytes_received += bytes;
    count_rx(dst, bytes, busy);
    if (src_dropped) return;  // cut before it drained; src already accounted
    if (rx.end > d.down_at) {
      ++d.drops;
      count_drop(dst);
      return;
    }
    engine_.schedule_at(rx.end, std::forward<F>(cb));
  }

  void check_node(NodeId node) const;

  static std::uint64_t link_key(NodeId a, NodeId b) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
           static_cast<std::uint32_t>(b);
  }

  // --- metrics (lazy-bound; no-ops until a registry is attached) ----------
  // The fabric is constructed before Engine::set_metrics can run, and the
  // hot paths execute on arbitrary shards under the parallel backend, so the
  // handles are bound on first use with the same double-checked
  // atomic+mutex pattern as dmpi::World.
  struct NicMetrics {
    obs::Counter tx_bytes;
    obs::Counter rx_bytes;
    obs::Counter tx_busy_ns;
    obs::Counter rx_busy_ns;
    obs::Counter drops;
  };
  obs::Registry* metrics();
  void bind_metrics(obs::Registry* reg);
  void count_tx(NodeId src, std::uint64_t bytes, SimDuration busy,
                SimDuration queue_delay);
  void count_rx(NodeId dst, std::uint64_t bytes, SimDuration busy);
  void count_drop(NodeId node);

  sim::Engine& engine_;
  FabricParams params_;
  std::vector<Nic> nics_;
  // Sparse per-link latency overrides, keyed both directions.
  std::unordered_map<std::uint64_t, SimDuration> link_latency_;

  std::mutex metrics_mutex_;  // guards the one-time registration only
  std::atomic<obs::Registry*> metrics_bound_{nullptr};
  std::vector<NicMetrics> nic_metrics_;
  obs::Histogram m_tx_queue_delay_;
};

}  // namespace dacc::net
