// Interconnect fabric model.
//
// The cluster network is a full-bisection switch: every node owns one NIC
// with independent transmit and receive directions, each modelled as a
// serialized resource at the link byte rate (sim::SerialResource). A
// transfer occupies the sender's tx port, propagates for the wire latency,
// and occupies the receiver's rx port cut-through style (the rx occupancy
// starts one latency after the tx occupancy starts, so a solo transfer costs
// latency + bytes/bandwidth, not 2x bytes/bandwidth). Port contention —
// e.g., compute-node-to-accelerator traffic competing with
// compute-node-to-compute-node traffic, the effect Section III warns about —
// falls out of the FIFO port schedules.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/model_params.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"

namespace dacc::net {

using NodeId = int;

class Fabric {
 public:
  Fabric(sim::Engine& engine, int num_nodes, FabricParams params = {});

  int num_nodes() const { return static_cast<int>(nics_.size()); }
  const FabricParams& params() const { return params_; }
  sim::Engine& engine() { return engine_; }

  /// Reserves fabric resources for moving `bytes` from `src` to `dst`,
  /// starting no earlier than `earliest`, and returns the delivery
  /// completion time. Does not schedule any event.
  SimTime transfer(NodeId src, NodeId dst, std::uint64_t bytes,
                   SimTime earliest);

  /// transfer() plus an engine callback at the delivery time. Templated so
  /// move-only callbacks (carrying payload buffers by value) go straight
  /// into the engine's pooled event storage without a std::function box.
  template <typename F>
  void deliver(NodeId src, NodeId dst, std::uint64_t bytes, SimTime earliest,
               F&& on_delivered) {
    const SimTime done = transfer(src, dst, bytes, earliest);
    engine_.schedule_at(done, std::forward<F>(on_delivered));
  }

  /// Per-node traffic counters (diagnostics / utilization reporting).
  std::uint64_t bytes_sent(NodeId node) const;
  std::uint64_t bytes_received(NodeId node) const;
  SimDuration tx_busy(NodeId node) const;
  SimDuration rx_busy(NodeId node) const;

 private:
  struct Nic {
    sim::SerialResource tx;
    sim::SerialResource rx;
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
  };

  void check_node(NodeId node) const;

  sim::Engine& engine_;
  FabricParams params_;
  std::vector<Nic> nics_;
};

}  // namespace dacc::net
