// Calibrated timing parameters for the interconnect model.
//
// The reference system is the paper's testbed: QDR InfiniBand between 4
// nodes, Open MPI 1.4.3 (Section V). The paper reports ~2 us MPI latency and
// ~2660 MiB/s IMB PingPong peak bandwidth at 64 MiB. The constants below are
// the single source of truth; every benchmark prints the parameter set it
// ran with so results are traceable.
#pragma once

#include <cstdint>
#include <vector>

#include "util/units.hpp"

namespace dacc::net {

struct FabricParams {
  /// Raw link byte rate of one NIC port direction. Slightly above the
  /// observed MPI peak because per-message software overhead eats the rest.
  double link_bandwidth_mib_s = 2700.0;

  /// One-way wire + switch propagation for any payload.
  SimDuration wire_latency = 1200;  // ns

  /// Loopback (same node) transfers bypass the NIC and run at memory speed.
  double loopback_bandwidth_mib_s = 12000.0;
  SimDuration loopback_latency = 200;  // ns

  /// Fixed NIC/driver processing cost charged per message on the tx port
  /// (mirrored on rx), but only for messages of at least
  /// `per_message_overhead_min_bytes`. This models the per-work-request cost
  /// of large DMA-gather sends; it is what makes many small pipeline blocks
  /// more expensive than few large ones (the effect behind the paper's
  /// 128K-vs-512K block-size crossover at ~9 MiB, Section V.A) without
  /// affecting the 2 us small-message latency.
  SimDuration per_message_overhead = 2200;              // ns
  std::uint64_t per_message_overhead_min_bytes = 4096;  // bytes

  /// Sparse symmetric per-link latency overrides for heterogeneous
  /// topologies (e.g. a 3D-torus neighbor link shorter than the default
  /// switch hop). Node pairs not listed use `wire_latency`. The fabric
  /// registers these with the engine as per-pair lookahead floors, which
  /// both calibrates the parallel backend's per-shard-pair horizon matrix
  /// and feeds the topology-aware shard partitioner.
  struct LinkLatency {
    int a = 0;
    int b = 0;
    SimDuration latency = 0;  // ns, one-way
  };
  std::vector<LinkLatency> link_latency_overrides;
};

}  // namespace dacc::net
