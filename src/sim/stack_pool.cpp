#include "sim/stack_pool.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <new>

namespace dacc::sim {

namespace {

std::size_t page_size() {
  static const std::size_t size =
      static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return size;
}

std::size_t round_up(std::size_t n, std::size_t page) {
  return (n + page - 1) / page * page;
}

}  // namespace

StackPool::StackPool(std::size_t stack_bytes)
    : stack_bytes_(round_up(stack_bytes, page_size())) {}

StackPool::~StackPool() {
  for (const Stack& s : free_) {
    ::munmap(s.map_base, s.map_size);
  }
}

StackPool::Stack StackPool::acquire() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!free_.empty()) {
      Stack s = free_.back();
      free_.pop_back();
      return s;
    }
    ++created_;
  }
  const std::size_t page = page_size();
  const std::size_t map_size = stack_bytes_ + page;  // +1 guard page
  void* map = ::mmap(nullptr, map_size, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (map == MAP_FAILED) throw std::bad_alloc();
  // Guard at the low end: stacks grow downward on every platform we target.
  ::mprotect(map, page, PROT_NONE);
  Stack s;
  s.map_base = map;
  s.map_size = map_size;
  s.base = static_cast<std::byte*>(map) + page;
  s.size = stack_bytes_;
  return s;
}

void StackPool::release(Stack stack) {
  if (stack.map_base == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  free_.push_back(stack);
}

}  // namespace dacc::sim
