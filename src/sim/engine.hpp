// Deterministic discrete-event simulation engine.
//
// The engine advances a virtual clock by executing events in a canonical
// (time, source-node, sequence) order. Simulated "processes" (compute-node
// application processes, the back-end daemons, the accelerator resource
// manager) are written as ordinary synchronous C++ functions; execution of
// any one event is always single-threaded, and the canonical order makes the
// simulation bit-for-bit reproducible.
//
// Three execution backends implement process suspension and event dispatch
// (see sim/exec.hpp): stackful coroutines on pooled stacks (default — a
// process switch is two user-space context swaps), one OS thread per process
// with mutex/condvar baton passing (sanitizer-friendly fallback), and a
// conservative parallel backend that partitions node-homed work into
// per-shard event queues driven by a worker pool. Within an era the shards
// advance asynchronously: each shard repeatedly drains up to the minimum of
// its neighbors' published horizon clocks plus the per-shard-pair lookahead
// (DESIGN.md §5.2). All three produce identical event sequences;
// tests/sim/determinism_test.cpp enforces that contract three ways.
//
// Threading contract: every callback and every process body executes while
// holding the (conceptual) simulation baton for its node. Under the
// sequential backends there is one global baton, so it is always safe to
// touch engine state, schedule events, and wake processes from engine
// callbacks or process bodies — but never from threads outside the engine.
// Under the parallel backend the baton is per node: callbacks and processes
// may freely touch state homed on their own node; effects that target
// another node (fabric delivery, cross-node wakes, posts) are routed through
// staged inboxes and take effect no earlier than the node pair's latency
// floor later — which is exactly the calibrated cross-node link latency, so
// the sequential backends observe the same times.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/exec.hpp"
#include "sim/stack_pool.hpp"
#include "util/units.hpp"

namespace dacc::obs {
class Registry;
class FlightRecorder;
}

namespace dacc::sim {

class Engine;
class Process;

/// Wallclock profiler sink — the engine's window into the non-deterministic
/// observability tier (obs::Profiler implements it; dacc_sim never depends
/// on dacc_obs). Everything reported here is host wallclock, explicitly
/// outside the byte-identical snapshot contract. When no sink is attached
/// the engine's only cost is a null-pointer check per instrumentation site;
/// the sequential hot loop is never touched per event (whole drains are
/// reported as one serial interval).
///
/// Threading: shard_phase is called by the worker that owns the shard (the
/// stride assignment worker = shard % workers is stable for a run), and
/// worker_wait by that worker for itself, so per-slot state needs no locks;
/// begin_run/run_complete/serial arrive from the serial coordinator context.
class WallSink {
 public:
  virtual ~WallSink() = default;

  /// Per-shard wallclock phases inside a parallel era.
  enum Phase : int {
    kBusy = 0,   ///< draining events below the horizon bound
    kStall = 1,  ///< horizon scan found no new safe bound (neighbor-bound)
    kInbox = 2,  ///< absorbing staged cross-shard inbox events
    kSync = 3,   ///< shard done, spinning until era barrier
    kPhases = 4,
  };

  /// A new run is starting; sizes per-shard/per-worker state. Serial context.
  virtual void begin_run(int shards, int workers) = 0;
  /// `ns` of wallclock attributed to `phase` on `shard` (one sample).
  virtual void shard_phase(int shard, Phase phase, std::uint64_t ns) = 0;
  /// Worker idle time between eras (barrier + coordinator serial work).
  virtual void worker_wait(int worker, std::uint64_t ns) = 0;
  /// Serial-context execution: sequential-backend drains, the parallel
  /// coordinator's global-band events and queue scans. `events` may be 0.
  virtual void serial(std::uint64_t ns, std::uint64_t events) = 0;
  /// A run() / run_until() call finished after `wall_ns`, having driven
  /// `effective_workers` (1 for sequential backends and inline mode).
  virtual void run_complete(std::uint64_t wall_ns, int effective_workers) = 0;
};

/// Causal trace context of a running process: the trace id minted by the
/// front-end API call currently executing and the span id under which any
/// instrumented work it triggers (NIC transfers, daemon handlers) parents
/// itself. Zero ids mean "no active trace".
struct TraceCtx {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  bool active() const { return trace_id != 0; }
};

/// Execution affinity of contexts that belong to no cluster node: the main
/// thread between runs, plain engine callbacks, and processes spawned before
/// any node topology exists. Under the parallel backend the global context
/// runs serially between eras and its events sort ahead of same-time node
/// events, which is what makes it safe to keep shared control state there.
inline constexpr std::int32_t kGlobalNode = -1;

/// Thrown inside process bodies when the engine shuts down while they are
/// blocked; the process trampoline catches it. User code must not swallow it.
struct Shutdown {};

/// Raised on simulation-model violations (e.g., calling a process-context
/// primitive from outside process context).
class SimError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {

/// Per-worker execution state for the parallel backend. Lives on the worker
/// thread's stack during a shard drain; the thread-local pointer to it is
/// re-read through a non-inlined accessor so coroutine stacks that migrate
/// between workers never see a stale thread-local address.
struct ExecCursor {
  Engine* engine = nullptr;
  SimTime now = 0;
  std::int32_t node = kGlobalNode;
  int shard = -1;
  Process* current = nullptr;
  std::uint64_t ord = 0;        ///< canonical key of the running event
  std::uint32_t trace_seq = 0;  ///< intra-event tracer record index
  std::uint64_t switches = 0;   ///< slice hand-offs during this drain
  std::uint64_t wall_tick = 0;  ///< chained wallclock timestamp (profiler)
};

ExecCursor* exec_cursor() noexcept;  ///< null outside parallel drains
void set_exec_cursor(ExecCursor* c) noexcept;

}  // namespace detail

/// The blocking interface available to process bodies. A Context is only
/// valid inside the process it was created for.
class Context {
 public:
  Context(Engine& engine, Process& self) : engine_(engine), self_(self) {}

  SimTime now() const;
  Engine& engine() const { return engine_; }
  Process& self() const { return self_; }
  const std::string& name() const;

  /// Blocks this process for `d` simulated nanoseconds.
  void wait_for(SimDuration d);

  /// Blocks this process until absolute simulated time `t` (no-op if past).
  void wait_until(SimTime t);

  /// Blocks until another party calls Engine::wake() on this process. Each
  /// wake() delivers one permit; suspend() consumes one permit, blocking only
  /// when none are banked. This is the primitive on which all higher-level
  /// synchronization (mailboxes, wait queues) is built.
  void suspend();

  /// Yields the baton and resumes at the same simulated time, after all
  /// events already scheduled for this time have run.
  void yield();

 private:
  Engine& engine_;
  Process& self_;
};

using ProcessFn = std::function<void(Context&)>;

/// A simulated process. Owned by the engine; user code holds references.
class Process {
 public:
  /// Constructed by Engine::spawn() only; public for std::make_unique.
  Process(Engine& engine, std::uint64_t id, std::string name, ProcessFn fn);
  ~Process();
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  const std::string& name() const { return name_; }
  std::uint64_t id() const { return id_; }
  bool finished() const { return finished_; }

  /// Cluster node this process executes on (kGlobalNode if spawned outside
  /// any node context). All of the process's events run on its home node's
  /// shard under the parallel backend.
  std::int32_t home_node() const { return home_node_; }

  /// Set if the process body exited via an uncaught exception (other than
  /// engine shutdown); Engine::run rethrows the stored message.
  const std::string& failure() const { return failure_; }

  /// Backend-specific suspension state (coroutine or thread); implemented in
  /// engine.cpp. Public so the concrete strands can derive from it.
  class Strand;

 private:
  friend class Engine;
  friend class Context;

  void body_main();        // runs fn_ under the backend's trampoline
  void yield_to_engine();  // process side: give the baton back
  void run_slice();        // engine side: hand baton to process, wait for it

  Engine& engine_;
  std::uint64_t id_;
  std::string name_;
  ProcessFn fn_;

  std::unique_ptr<Strand> strand_;

  std::int32_t home_node_ = kGlobalNode;
  bool started_ = false;
  bool finished_ = false;
  bool shutdown_requested_ = false;
  std::string failure_;

  // Blocking bookkeeping (only touched under the home node's baton).
  std::uint64_t wait_seq_ = 0;       // increments on every block
  std::uint64_t current_wait_ = 0;   // nonzero while blocked
  std::uint64_t wake_permits_ = 0;   // banked wake() calls
  bool waiting_for_wake_ = false;    // blocked specifically in suspend()

  // Causal trace context (only touched from the process's own slices, so no
  // synchronization is needed under any backend).
  TraceCtx trace_ctx_;
};

class Engine {
 public:
  /// `shards` is the parallel backend's shard count (0 = auto: one shard
  /// per cluster node, capped at a host-sized limit); ignored by the
  /// sequential backends.
  explicit Engine(ExecBackend backend = default_exec_backend(),
                  int shards = default_parallel_shards());
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Simulated time of the calling context: the running event's time during
  /// a parallel era, the engine clock otherwise.
  SimTime now() const {
    if (par_active_) [[unlikely]] {
      const detail::ExecCursor* c = detail::exec_cursor();
      if (c != nullptr && c->engine == this) return c->now;
    }
    return now_;
  }

  ExecBackend backend() const { return backend_; }

  // --- cluster topology (parallel backend) --------------------------------

  /// Declares the number of cluster nodes (net::Fabric calls this from its
  /// constructor). Under the parallel backend this also sizes the shard set;
  /// it must happen before any node-homed event is scheduled.
  void set_node_count(int nodes);
  int node_count() const { return node_count_; }

  /// Minimum simulated latency of any cross-node interaction — the
  /// conservative lookahead. Cross-node effects scheduled sooner are clamped
  /// up to now + lookahead in EVERY backend, so the parallel horizons and
  /// the sequential replay agree bit for bit. Defaults to 0 (purely
  /// sequential semantics); rt::Cluster sets it to the fabric wire latency.
  void set_lookahead(SimDuration l) {
    lookahead_ = l;
    plan_dirty_ = true;
  }
  SimDuration lookahead() const { return lookahead_; }

  /// Sparse symmetric per-node-pair latency overrides for heterogeneous
  /// topologies (net::Fabric registers its link overrides here).
  /// `default_latency` is the latency of every non-overridden link — the
  /// reference the topology partitioner uses to tell short links from long
  /// ones. The override becomes that node pair's cross-node clamp floor in
  /// EVERY backend (it is part of the simulation semantics, exactly like
  /// set_lookahead), and the per-shard-pair lookahead matrix is derived
  /// from it. Must be called before any node-homed event is scheduled.
  struct LatencyOverride {
    std::int32_t a = 0;
    std::int32_t b = 0;
    SimDuration latency = 0;
  };
  void set_lookahead_overrides(SimDuration default_latency,
                               const std::vector<LatencyOverride>& links);

  /// Conservative clamp floor for an effect traveling src -> dst
  /// (dst == kGlobalNode returns the band gap).
  SimDuration cross_floor(std::int32_t src, std::int32_t dst) const {
    if (dst == kGlobalNode) return effective_band_gap();
    if (!la_override_.empty()) [[unlikely]] {
      const auto it = la_override_.find(pair_key(src, dst));
      if (it != la_override_.end()) return it->second;
    }
    return lookahead_;
  }

  /// Width of the serial-control "era": node->global effects are clamped up
  /// by this much (instead of one lookahead), which lets the shards run
  /// many lookaheads ahead between global-band synchronizations. 0 (the
  /// default) falls back to the plain lookahead — the pre-async behavior.
  /// Like the lookahead it is part of the simulation semantics and applies
  /// identically under every backend. rt::Cluster raises it to a multiple
  /// of the wire latency.
  void set_band_gap(SimDuration g) {
    band_gap_ = g;
    plan_dirty_ = true;
  }
  SimDuration band_gap() const { return band_gap_; }
  SimDuration effective_band_gap() const {
    return band_gap_ > 0 ? band_gap_ : lookahead_;
  }

  /// Explicit node -> shard placement (size must equal node_count(), every
  /// entry in [0, shard_count())). Overrides the topology partitioner and
  /// the DACC_SIM_SHARD_MAP environment variable. Placement never changes
  /// simulated results (shard-count invariance), only parallelism.
  void set_shard_map(std::vector<int> map);

  /// Shard that node's events execute on (0 when not parallel).
  int shard_of(std::int32_t node) const {
    if (num_shards_ == 0 || node < 0) return 0;
    return shard_target(node);
  }

  /// Execution affinity of the calling context.
  std::int32_t current_node() const { return context_node(); }

  int shard_count() const { return num_shards_; }
  int worker_count() const { return workers_started_ > 0 ? workers_started_ : 1; }

  // --- scheduling ---------------------------------------------------------

  /// Creates a process that starts at the current simulated time (its first
  /// slice runs when the start event is dequeued). The process is homed on
  /// the calling context's node.
  Process& spawn(std::string name, ProcessFn fn);

  /// Creates a process homed on `node` (kGlobalNode for node-less service
  /// processes). Its events execute on that node's shard under the parallel
  /// backend.
  Process& spawn_on(std::int32_t node, std::string name, ProcessFn fn);

  /// Schedules `fn` to run in engine context at absolute time `t` (>= now)
  /// on the calling context's node. Accepts any callable, including
  /// move-only ones (payload buffers move through events without shared_ptr
  /// wrapping).
  template <typename F>
  void schedule_at(SimTime t, F&& fn) {
    route(context_node(), t, std::forward<F>(fn));
  }

  template <typename F>
  void schedule_in(SimDuration d, F&& fn) {
    route(context_node(), now() + d, std::forward<F>(fn));
  }

  /// Schedules `fn` to run at time `t` with execution affinity `node`.
  /// When the target differs from the calling context's node, `t` is
  /// clamped up to now + the pair's latency floor — in every backend —
  /// because no cross-node interaction can be faster than the wire.
  template <typename F>
  void post(std::int32_t node, SimTime t, F&& fn) {
    route(node, t, std::forward<F>(fn));
  }

  /// Grants one wake permit to `p` and, if `p` is blocked in suspend(),
  /// schedules its resumption (at the current time when the caller shares
  /// `p`'s node; one pair-latency floor later across nodes).
  void wake(Process& p);

  /// Runs until the event queue is empty. Throws SimError if any process
  /// body failed, or if processes remain blocked with no pending events
  /// (deadlock) — unless they are marked as daemons.
  void run();

  /// Runs until the queue is empty or the clock would pass `t`; returns true
  /// if events remain.
  bool run_until(SimTime t);

  /// Marks `p` as a daemon: it is allowed to still be blocked when the
  /// simulation ends (service loops waiting for requests).
  void set_daemon(Process& p);

  // --- diagnostics --------------------------------------------------------

  /// Number of events executed so far (diagnostics).
  std::uint64_t events_executed() const { return events_executed_; }

  /// Number of process slices resumed so far (one per baton hand-off to a
  /// process; the unit of the wall-clock switch benchmarks).
  std::uint64_t process_switches() const { return process_switches_; }

  /// Event-pool occupancy (live, high-water, pool capacity, heap
  /// fallbacks) — the stress tests assert these stay flat in steady state.
  const EventQueue::Stats& event_stats() const { return queue_.stats(); }
  void reset_event_high_water() { queue_.reset_high_water(); }

  /// Coroutine stacks ever created (stable once the pool is warm; always 0
  /// under the thread backend).
  std::uint64_t stacks_created() const { return stack_pool_.created(); }

  /// Era accounting for the parallel backend. `windows` counts the serial
  /// synchronization points (eras) the run needed — the quantity the
  /// per-shard-pair asynchronous advancement shrinks. critical_path_events
  /// is the sum over eras of the busiest shard's event count: the events
  /// that cannot overlap anything. parallel_events / critical_path_events
  /// is the exposed parallelism — the speedup an unloaded multi-core host
  /// can realize on this scenario. merged_fallbacks counts runs that
  /// surrendered concurrency to run_merged because no safe horizon width
  /// exists (zero lookahead, or a zero-latency link crossing shards). All
  /// fields are deterministic for a given scenario and shard map.
  struct ParallelStats {
    std::uint64_t windows = 0;
    std::uint64_t parallel_events = 0;
    std::uint64_t critical_path_events = 0;
    std::uint64_t merged_fallbacks = 0;
  };
  const ParallelStats& parallel_stats() const { return pstats_; }

  /// Currently running process, or nullptr in engine/callback context.
  Process* current() const { return executing(); }

  /// Currently running process; throws SimError outside process context.
  Process& current_process();

  /// Optional tracer: instrumented components record spans when non-null.
  /// The engine does not own it.
  class Tracer* tracer() const { return tracer_; }
  void set_tracer(class Tracer* tracer);

  /// Optional metrics registry: instrumented components update counters,
  /// gauges and histograms when non-null. Not owned. Defined in
  /// obs/metrics.cpp so dacc_sim does not depend on dacc_obs.
  obs::Registry* metrics() const { return metrics_; }
  void set_metrics(obs::Registry* registry);

  /// Optional wallclock profiler sink (the non-deterministic tier; see
  /// obs/profiler.hpp). Not owned. Null = zero instrumentation cost beyond
  /// a pointer check.
  WallSink* wall_profiler() const { return wall_; }
  void set_wall_profiler(WallSink* sink) { wall_ = sink; }

  /// Optional flight recorder for rare control-plane events (elections,
  /// revocations, merged fallbacks, wire errors). Instrumented components
  /// note events through the returned pointer; the engine itself notes its
  /// merged fallbacks. Not owned. Defined in obs/flight.cpp so dacc_sim
  /// does not depend on dacc_obs.
  obs::FlightRecorder* flight() const { return flight_; }
  void set_flight_recorder(obs::FlightRecorder* recorder);

  /// Causal trace context of the currently executing process ({0,0} in
  /// engine/callback context or when no trace is active).
  TraceCtx current_trace() const {
    const Process* p = executing();
    return p != nullptr ? p->trace_ctx_ : TraceCtx{};
  }

  /// Sets the executing process's trace context; no-op outside process
  /// context. Callers restore the previous context when their span closes.
  void set_current_trace(TraceCtx ctx) {
    Process* p = executing();
    if (p != nullptr) p->trace_ctx_ = ctx;
  }

  /// Tracer hook: canonical ordering key for a record emitted by the
  /// calling context when a parallel run is in flight (records are buffered
  /// per shard and merged deterministically at the end of the run).
  /// Returns false when the record can be appended directly.
  bool parallel_trace_key(SimTime* t, std::uint64_t* ord, std::uint32_t* seq,
                          int* buffer);

 private:
  friend class Context;
  friend class Process;

  struct Shard {
    EventQueue q;
    SimTime last_time = 0;
    std::uint64_t events = 0;        ///< events executed this era
    std::uint64_t switches = 0;
    std::uint64_t inbox_events = 0;  ///< cross-shard events absorbed this era

    /// Published horizon clock: this shard promises never to execute an
    /// event earlier than `horizon`. Written with release by the owning
    /// worker after each drain — including drains that executed nothing,
    /// which is the null-message push that keeps idle shards from stalling
    /// their neighbors. Read with acquire by every other shard.
    std::atomic<SimTime> horizon{0};

    // Owner-worker-local era state (reset by the coordinator between eras).
    SimTime last_bound = 0;  ///< highest drain bound already executed to
    bool done = false;       ///< horizon reached the era end
  };
  struct ParallelRt;  // worker pool (engine.cpp)

  /// Execution affinity of the calling context.
  std::int32_t context_node() const {
    if (par_active_) [[unlikely]] {
      const detail::ExecCursor* c = detail::exec_cursor();
      if (c != nullptr && c->engine == this) return c->node;
    }
    return cur_node_;
  }

  Process* executing() const {
    if (par_active_) [[unlikely]] {
      const detail::ExecCursor* c = detail::exec_cursor();
      if (c != nullptr && c->engine == this) return c->current;
    }
    return current_;
  }

  /// Canonical ordering key: (src_node + 1) << 48 | per-node sequence. The
  /// per-node counters advance identically under every backend and shard
  /// count (each node's events execute in the same order everywhere), so
  /// the key — and with it the merged event order — is backend-invariant.
  std::uint64_t next_ord(std::int32_t src) {
    std::uint64_t& ctr = node_seq_[static_cast<std::size_t>(src + 1)];
    return (static_cast<std::uint64_t>(src + 1) << 48) | ctr++;
  }

  static std::uint64_t pair_key(std::int32_t a, std::int32_t b) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
           static_cast<std::uint32_t>(b);
  }

  /// Target shard of a node's events: the shard map when one was computed
  /// (topology partitioner / DACC_SIM_SHARD_MAP / set_shard_map), round
  /// robin otherwise.
  int shard_target(std::int32_t node) const {
    if (!shard_of_.empty()) [[unlikely]] {
      return shard_of_[static_cast<std::size_t>(node)];
    }
    return static_cast<int>(node % num_shards_);
  }

  /// Single funnel for every schedule/post/spawn/resume: applies the
  /// cross-node latency-floor clamp (per pair when overrides exist, the
  /// band gap towards the global band), assigns the canonical key, and
  /// places the event in the right queue (directly when the caller owns
  /// it, staged when another worker does).
  template <typename F>
  void route(std::int32_t node, SimTime t, F&& fn) {
    std::int32_t src = cur_node_;
    SimTime ref = now_;
    detail::ExecCursor* c = nullptr;
    if (par_active_) [[unlikely]] {
      c = detail::exec_cursor();
      if (c != nullptr && c->engine == this) {
        src = c->node;
        ref = c->now;
      } else {
        c = nullptr;
      }
    }
    if (src != kGlobalNode && node != src) {
      const SimTime floor = ref + cross_floor(src, node);
      if (t < floor) t = floor;
    }
    if (t < ref) {
      throw SimError("schedule_at: time in the past");
    }
    const std::uint64_t ord = next_ord(src);
    const int target = (node == kGlobalNode || num_shards_ == 0)
                           ? -1
                           : shard_target(node);
    if (c == nullptr) {
      // Serial context: sequential backends, the global band, between runs.
      if (target < 0) {
        queue_.push(t, ord, node, std::forward<F>(fn));
      } else {
        shards_[static_cast<std::size_t>(target)]->q.push(
            t, ord, node, std::forward<F>(fn));
      }
    } else if (target == c->shard) {
      shards_[static_cast<std::size_t>(target)]->q.push(
          t, ord, node, std::forward<F>(fn));
    } else if (target < 0) {
      queue_.stage(t, ord, node, std::forward<F>(fn));
    } else {
      shards_[static_cast<std::size_t>(target)]->q.stage(
          t, ord, node, std::forward<F>(fn));
    }
  }

  // Process-context blocking helpers (called via Context).
  std::uint64_t prepare_block(Process& p);
  void block(Process& p);  // yields the baton; returns when resumed
  void schedule_resume(Process& p, std::uint64_t wait_id, SimTime t);
  void local_wake(Process& p);

  // Hands the baton to `p` for one slice (tracks the executing process and
  // the switch counter).
  void resume_slice(Process& p);

  // Parallel driver (engine.cpp).
  bool run_parallel(SimTime limit);
  /// Sequential drain of the sharded queues in canonical merged order —
  /// used when the parallel layout exists but no safe horizon width does
  /// (zero lookahead, or a zero-latency link crossing shards): concurrency
  /// is surrendered, not correctness.
  bool run_merged(SimTime limit);
  void run_era(SimTime floor, SimTime era_end);
  bool advance_shard(int shard, detail::ExecCursor& cursor);
  void drain_shard(int shard, SimTime bound, detail::ExecCursor& cursor);
  void worker_main(int index);
  void ensure_workers();
  void stop_workers();

  /// Rebuilds the derived parallel plan (per-shard-pair lookahead matrix,
  /// minimum cross-shard lookahead) when topology inputs changed.
  void ensure_parallel_plan();
  /// Recomputes the node->shard map from the current source (explicit map,
  /// DACC_SIM_SHARD_MAP, topology partitioner, round robin).
  void recompute_shard_map();
  /// Groups nodes connected by short links (latency < the default) onto
  /// the same shard: union-find over short links, split oversized groups
  /// into contiguous chunks, then greedy least-loaded assignment (the load
  /// rebalancing for skewed topologies). Deterministic.
  std::vector<int> topology_partition() const;

  void shutdown_processes();
  void check_quiescence();
  [[noreturn]] void rethrow_failure();

  ExecBackend backend_;
  int shards_hint_;  // requested shard count (0 = auto)
  SimTime now_ = 0;
  std::int32_t cur_node_ = kGlobalNode;  // affinity of the running event
  int node_count_ = 0;
  SimDuration lookahead_ = 0;
  SimDuration band_gap_ = 0;  // 0 = fall back to lookahead_
  std::vector<std::uint64_t> node_seq_{0};  // per-node ord counters; [0] is
                                            // the global context
  std::uint64_t next_process_id_ = 1;
  std::uint64_t events_executed_ = 0;
  std::uint64_t process_switches_ = 0;
  EventQueue queue_;  // global-context events; the only queue when sequential
  StackPool stack_pool_;  // declared before processes_: strands release into
                          // it during ~Process
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<Process*> daemons_;
  std::mutex spawn_mutex_;  // guards processes_/daemons_/next_process_id_
  Process* current_ = nullptr;
  bool running_ = false;
  bool shutting_down_ = false;
  std::atomic<bool> any_failure_{false};  // set by process trampolines
  class Tracer* tracer_ = nullptr;
  obs::Registry* metrics_ = nullptr;
  // Type-erased parallel-merge hooks installed by set_metrics (obs is not
  // visible from dacc_sim; these mirror the tracer's begin/merge calls).
  std::function<void(int)> metrics_begin_parallel_;
  std::function<void()> metrics_merge_parallel_;
  // Per-shard era stats sink, also installed by set_metrics: called from
  // the serial era barrier with (shard, events, inbox batch, stalled) —
  // deterministic inputs, so the snapshot byte-identity contract holds.
  std::function<void(int, std::uint64_t, std::uint64_t, bool)>
      metrics_shard_era_;

  // Wallclock tier (non-deterministic; never feeds the snapshot).
  WallSink* wall_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  // Type-erased note hook installed by set_flight_recorder (obs is not
  // visible from dacc_sim) — used for the engine's own events.
  std::function<void(const char*, std::string)> flight_note_;

  // Heterogeneous-latency topology (sparse). Keyed by pair_key(src, dst);
  // symmetric entries are stored in both directions.
  std::unordered_map<std::uint64_t, SimDuration> la_override_;
  SimDuration override_default_ = 0;  // reference latency for "short" links

  // Node -> shard map; empty = round robin (node % num_shards_).
  enum class ShardMapSource { kAuto, kEnv, kExplicit };
  std::vector<int> shard_of_;
  ShardMapSource shard_map_source_ = ShardMapSource::kAuto;

  // Derived parallel plan (rebuilt lazily at run start when dirty).
  bool plan_dirty_ = true;
  std::vector<SimTime> pair_la_;   // shard-pair lookahead matrix [S*S]
  SimDuration min_cross_la_ = 0;   // min off-diagonal entry (gate to merged)
  bool windowed_ = false;          // current run uses the era/horizon driver

  // Parallel backend state.
  std::vector<std::unique_ptr<Shard>> shards_;
  int num_shards_ = 0;
  int workers_started_ = 0;  // 0 = inline single-worker mode
  bool par_active_ = false;  // an era is draining on the workers
  SimTime era_end_ = 0;      // exclusive bound of the running era
  std::unique_ptr<ParallelRt> rt_;
  ParallelStats pstats_;
  std::uint64_t band_ord_ = 0;        // key of the running global-band event
  std::uint32_t band_trace_seq_ = 0;  // tracer records within that event
};

}  // namespace dacc::sim
