// Deterministic discrete-event simulation engine.
//
// The engine advances a virtual clock by executing events in (time, sequence)
// order. Simulated "processes" (compute-node application processes, the
// back-end daemons, the accelerator resource manager) are written as ordinary
// synchronous C++ functions; the engine hands execution to exactly one of
// them at a time, so the simulation is single-threaded in effect and
// bit-for-bit reproducible.
//
// Two execution backends implement the hand-off (see sim/exec.hpp): stackful
// coroutines on pooled stacks (default — a process switch is two user-space
// context swaps), or one OS thread per process with mutex/condvar baton
// passing (sanitizer-friendly fallback). Both produce identical event
// sequences; tests/sim/determinism_test.cpp enforces that contract.
//
// Threading contract: every callback and every process body executes while
// holding the (conceptual) simulation baton. It is therefore always safe to
// touch engine state, schedule events, and wake processes from either engine
// callbacks or process bodies — but never from threads outside the engine.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/exec.hpp"
#include "sim/stack_pool.hpp"
#include "util/units.hpp"

namespace dacc::sim {

class Engine;
class Process;

/// Thrown inside process bodies when the engine shuts down while they are
/// blocked; the process trampoline catches it. User code must not swallow it.
struct Shutdown {};

/// Raised on simulation-model violations (e.g., calling a process-context
/// primitive from outside process context).
class SimError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The blocking interface available to process bodies. A Context is only
/// valid inside the process it was created for.
class Context {
 public:
  Context(Engine& engine, Process& self) : engine_(engine), self_(self) {}

  SimTime now() const;
  Engine& engine() const { return engine_; }
  Process& self() const { return self_; }
  const std::string& name() const;

  /// Blocks this process for `d` simulated nanoseconds.
  void wait_for(SimDuration d);

  /// Blocks this process until absolute simulated time `t` (no-op if past).
  void wait_until(SimTime t);

  /// Blocks until another party calls Engine::wake() on this process. Each
  /// wake() delivers one permit; suspend() consumes one permit, blocking only
  /// when none are banked. This is the primitive on which all higher-level
  /// synchronization (mailboxes, wait queues) is built.
  void suspend();

  /// Yields the baton and resumes at the same simulated time, after all
  /// events already scheduled for this time have run.
  void yield();

 private:
  Engine& engine_;
  Process& self_;
};

using ProcessFn = std::function<void(Context&)>;

/// A simulated process. Owned by the engine; user code holds references.
class Process {
 public:
  /// Constructed by Engine::spawn() only; public for std::make_unique.
  Process(Engine& engine, std::uint64_t id, std::string name, ProcessFn fn);
  ~Process();
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  const std::string& name() const { return name_; }
  std::uint64_t id() const { return id_; }
  bool finished() const { return finished_; }

  /// Set if the process body exited via an uncaught exception (other than
  /// engine shutdown); Engine::run rethrows the stored message.
  const std::string& failure() const { return failure_; }

  /// Backend-specific suspension state (coroutine or thread); implemented in
  /// engine.cpp. Public so the concrete strands can derive from it.
  class Strand;

 private:
  friend class Engine;
  friend class Context;

  void body_main();        // runs fn_ under the backend's trampoline
  void yield_to_engine();  // process side: give the baton back
  void run_slice();        // engine side: hand baton to process, wait for it

  Engine& engine_;
  std::uint64_t id_;
  std::string name_;
  ProcessFn fn_;

  std::unique_ptr<Strand> strand_;

  bool started_ = false;
  bool finished_ = false;
  bool shutdown_requested_ = false;
  std::string failure_;

  // Blocking bookkeeping (only touched under the simulation baton).
  std::uint64_t wait_seq_ = 0;       // increments on every block
  std::uint64_t current_wait_ = 0;   // nonzero while blocked
  std::uint64_t wake_permits_ = 0;   // banked wake() calls
  bool waiting_for_wake_ = false;    // blocked specifically in suspend()
};

class Engine {
 public:
  explicit Engine(ExecBackend backend = default_exec_backend());
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  SimTime now() const { return now_; }
  ExecBackend backend() const { return backend_; }

  /// Creates a process that starts at the current simulated time (its first
  /// slice runs when the start event is dequeued).
  Process& spawn(std::string name, ProcessFn fn);

  /// Schedules `fn` to run in engine context at absolute time `t` (>= now).
  /// Accepts any callable, including move-only ones (payload buffers move
  /// through events without shared_ptr wrapping).
  template <typename F>
  void schedule_at(SimTime t, F&& fn) {
    if (t < now_) {
      throw SimError("schedule_at: time in the past");
    }
    queue_.push(t, next_seq_++, std::forward<F>(fn));
  }

  template <typename F>
  void schedule_in(SimDuration d, F&& fn) {
    schedule_at(now_ + d, std::forward<F>(fn));
  }

  /// Grants one wake permit to `p` and, if `p` is blocked in suspend(),
  /// schedules its resumption at the current time.
  void wake(Process& p);

  /// Runs until the event queue is empty. Throws SimError if any process
  /// body failed, or if processes remain blocked with no pending events
  /// (deadlock) — unless they are marked as daemons.
  void run();

  /// Runs until the queue is empty or the clock would pass `t`; returns true
  /// if events remain.
  bool run_until(SimTime t);

  /// Marks `p` as a daemon: it is allowed to still be blocked when the
  /// simulation ends (service loops waiting for requests).
  void set_daemon(Process& p);

  /// Number of events executed so far (diagnostics).
  std::uint64_t events_executed() const { return events_executed_; }

  /// Number of process slices resumed so far (one per baton hand-off to a
  /// process; the unit of the wall-clock switch benchmarks).
  std::uint64_t process_switches() const { return process_switches_; }

  /// Event-pool occupancy (live, high-water, pool capacity, heap
  /// fallbacks) — the stress tests assert these stay flat in steady state.
  const EventQueue::Stats& event_stats() const { return queue_.stats(); }
  void reset_event_high_water() { queue_.reset_high_water(); }

  /// Coroutine stacks ever created (stable once the pool is warm; always 0
  /// under the thread backend).
  std::uint64_t stacks_created() const { return stack_pool_.created(); }

  /// Currently running process, or nullptr in engine/callback context.
  Process* current() const { return current_; }

  /// Currently running process; throws SimError outside process context.
  Process& current_process();

  /// Optional tracer: instrumented components record spans when non-null.
  /// The engine does not own it.
  class Tracer* tracer() const { return tracer_; }
  void set_tracer(class Tracer* tracer) { tracer_ = tracer; }

 private:
  friend class Context;
  friend class Process;

  // Process-context blocking helpers (called via Context).
  std::uint64_t prepare_block(Process& p);
  void block(Process& p);  // yields the baton; returns when resumed
  void schedule_resume(Process& p, std::uint64_t wait_id, SimTime t);

  // Hands the baton to `p` for one slice (tracks current_ and the switch
  // counter).
  void resume_slice(Process& p);

  void shutdown_processes();
  void check_quiescence();
  [[noreturn]] void rethrow_failure();

  ExecBackend backend_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_process_id_ = 1;
  std::uint64_t events_executed_ = 0;
  std::uint64_t process_switches_ = 0;
  EventQueue queue_;
  StackPool stack_pool_;  // declared before processes_: strands release into
                          // it during ~Process
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<Process*> daemons_;
  Process* current_ = nullptr;
  bool running_ = false;
  bool shutting_down_ = false;
  bool any_failure_ = false;  // set by process trampolines; checked O(1)
  class Tracer* tracer_ = nullptr;
};

}  // namespace dacc::sim
