// Deterministic discrete-event simulation engine.
//
// The engine advances a virtual clock by executing events in (time, sequence)
// order. Simulated "processes" (compute-node application processes, the
// back-end daemons, the accelerator resource manager) are written as ordinary
// synchronous C++ functions; each runs on its own OS thread, but the engine
// hands execution to exactly one thread at a time (SystemC-style baton
// passing), so the simulation is single-threaded in effect and bit-for-bit
// reproducible.
//
// Threading contract: every callback and every process body executes while
// holding the (conceptual) simulation baton. It is therefore always safe to
// touch engine state, schedule events, and wake processes from either engine
// callbacks or process bodies — but never from threads outside the engine.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace dacc::sim {

class Engine;
class Process;

/// Thrown inside process bodies when the engine shuts down while they are
/// blocked; the process trampoline catches it. User code must not swallow it.
struct Shutdown {};

/// Raised on simulation-model violations (e.g., calling a process-context
/// primitive from outside process context).
class SimError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The blocking interface available to process bodies. A Context is only
/// valid inside the process it was created for.
class Context {
 public:
  Context(Engine& engine, Process& self) : engine_(engine), self_(self) {}

  SimTime now() const;
  Engine& engine() const { return engine_; }
  Process& self() const { return self_; }
  const std::string& name() const;

  /// Blocks this process for `d` simulated nanoseconds.
  void wait_for(SimDuration d);

  /// Blocks this process until absolute simulated time `t` (no-op if past).
  void wait_until(SimTime t);

  /// Blocks until another party calls Engine::wake() on this process. Each
  /// wake() delivers one permit; suspend() consumes one permit, blocking only
  /// when none are banked. This is the primitive on which all higher-level
  /// synchronization (mailboxes, wait queues) is built.
  void suspend();

  /// Yields the baton and resumes at the same simulated time, after all
  /// events already scheduled for this time have run.
  void yield();

 private:
  Engine& engine_;
  Process& self_;
};

using ProcessFn = std::function<void(Context&)>;

/// A simulated process. Owned by the engine; user code holds references.
class Process {
 public:
  /// Constructed by Engine::spawn() only; public for std::make_unique.
  Process(Engine& engine, std::uint64_t id, std::string name, ProcessFn fn);
  ~Process();
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  const std::string& name() const { return name_; }
  std::uint64_t id() const { return id_; }
  bool finished() const { return finished_; }

  /// Set if the process body exited via an uncaught exception (other than
  /// engine shutdown); Engine::run rethrows the stored message.
  const std::string& failure() const { return failure_; }

 private:
  friend class Engine;
  friend class Context;

  void thread_main();
  void yield_to_engine();
  void run_slice();  // engine side: hand baton to process, wait for it back

  Engine& engine_;
  std::uint64_t id_;
  std::string name_;
  ProcessFn fn_;

  // Baton state, guarded by mutex_ in engine.cpp.
  struct Baton;
  std::unique_ptr<Baton> baton_;

  bool started_ = false;
  bool finished_ = false;
  bool shutdown_requested_ = false;
  std::string failure_;

  // Blocking bookkeeping (only touched under the simulation baton).
  std::uint64_t wait_seq_ = 0;       // increments on every block
  std::uint64_t current_wait_ = 0;   // nonzero while blocked
  std::uint64_t wake_permits_ = 0;   // banked wake() calls
  bool waiting_for_wake_ = false;    // blocked specifically in suspend()
};

class Engine {
 public:
  Engine();
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  SimTime now() const { return now_; }

  /// Creates a process that starts at the current simulated time (its first
  /// slice runs when the start event is dequeued).
  Process& spawn(std::string name, ProcessFn fn);

  /// Schedules `fn` to run in engine context at absolute time `t` (>= now).
  void schedule_at(SimTime t, std::function<void()> fn);
  void schedule_in(SimDuration d, std::function<void()> fn);

  /// Grants one wake permit to `p` and, if `p` is blocked in suspend(),
  /// schedules its resumption at the current time.
  void wake(Process& p);

  /// Runs until the event queue is empty. Throws SimError if any process
  /// body failed, or if processes remain blocked with no pending events
  /// (deadlock) — unless they are marked as daemons.
  void run();

  /// Runs until the queue is empty or the clock would pass `t`; returns true
  /// if events remain.
  bool run_until(SimTime t);

  /// Marks `p` as a daemon: it is allowed to still be blocked when the
  /// simulation ends (service loops waiting for requests).
  void set_daemon(Process& p);

  /// Number of events executed so far (diagnostics).
  std::uint64_t events_executed() const { return events_executed_; }

  /// Currently running process, or nullptr in engine/callback context.
  Process* current() const { return current_; }

  /// Currently running process; throws SimError outside process context.
  Process& current_process();

  /// Optional tracer: instrumented components record spans when non-null.
  /// The engine does not own it.
  class Tracer* tracer() const { return tracer_; }
  void set_tracer(class Tracer* tracer) { tracer_ = tracer; }

 private:
  friend class Context;
  friend class Process;

  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  // Process-context blocking helpers (called via Context).
  std::uint64_t prepare_block(Process& p);
  void block(Process& p);  // yields the baton; returns when resumed
  void schedule_resume(Process& p, std::uint64_t wait_id, SimTime t);

  void shutdown_processes();
  void check_quiescence();

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_process_id_ = 1;
  std::uint64_t events_executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<Process*> daemons_;
  Process* current_ = nullptr;
  bool running_ = false;
  bool shutting_down_ = false;
  class Tracer* tracer_ = nullptr;
};

}  // namespace dacc::sim
