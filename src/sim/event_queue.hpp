// Pooled discrete-event priority queue.
//
// The engine executes hundreds of thousands of events per simulated second
// of a paper-scale sweep, and the original std::priority_queue<Event> paid
// one heap allocation per event for its std::function callback. This queue
// removes that cost from the steady-state path:
//
//  * event nodes come from a chunked free list that is recycled after each
//    event fires — once warm, pushing an event allocates nothing;
//  * callbacks are constructed in place in a fixed inline buffer (move-only
//    callables welcome — this is what lets the message layer move payload
//    buffers through events instead of wrapping them in shared_ptrs);
//    oversized callables fall back to the heap and are counted, so tests can
//    assert the hot path stays allocation-free;
//  * ordering is a binary heap over (time, ord) — ord packs the scheduling
//    node and a per-node sequence number (see Engine), so it is unique, the
//    order is total and independent of node addresses, and — because the
//    per-node counters advance identically under every execution backend —
//    the order is also independent of backend and shard count (determinism);
//  * the heap stores (time, ord, node*) slots, not node pointers: sift
//    operations compare keys held in the heap array itself, so re-ordering
//    never dereferences event nodes (one cache line of slots covers two
//    full heap levels). Nodes themselves are cache-line aligned with the
//    hot header fields packed into the first line;
//  * for the parallel backend, stage() enqueues an event from a foreign
//    worker thread into a mutex-protected side list with its own node pool
//    (the owner's free list stays uncontended); the owner folds staged
//    events into a sorted inbox lane with absorb_staged() — one sort of the
//    batch plus a linear merge with the unconsumed remainder, cheaper than
//    per-event heap pushes, and the canonical (time, ord) key makes the
//    lane's order identical under every backend. top()/pop() read the min
//    of the heap front and the inbox cursor.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/units.hpp"

namespace dacc::sim {

class EventQueue {
 public:
  /// Inline callback storage. Sized for the largest steady-state callback in
  /// the message layer (a moved-in payload buffer plus two shared_ptrs and
  /// addressing scalars).
  static constexpr std::size_t kInlineBytes = 128;

  /// Cache-line aligned: the scheduling header (time, ord, vtable, free
  /// link, node) fills the first line; the callback storage starts on its
  /// own line so constructing the callable never dirties the header line of
  /// a neighboring node.
  struct alignas(64) Node {
    SimTime time = 0;
    std::uint64_t ord = 0;      ///< canonical tie-break: (node+1)<<48 | seq
    void (*invoke)(Node&) = nullptr;
    void (*destroy)(Node&) = nullptr;
    Node* next_free = nullptr;
    std::int32_t node = -1;     ///< execution affinity (-1 = global context)
    alignas(64) std::byte storage[kInlineBytes];
  };

  struct Stats {
    std::uint64_t live = 0;            ///< events currently queued
    std::uint64_t high_water = 0;      ///< max live since last reset
    std::uint64_t pool_nodes = 0;      ///< nodes ever allocated (capacity)
    std::uint64_t heap_fallbacks = 0;  ///< callbacks too big for inline
  };

  EventQueue() = default;
  ~EventQueue() {
    for (const Slot& s : heap_) s.n->destroy(*s.n);
    for (std::size_t i = inbox_pos_; i < inbox_.size(); ++i) {
      inbox_[i].n->destroy(*inbox_[i].n);
    }
    for (Node* n = staged_; n != nullptr; n = n->next_free) n->destroy(*n);
  }
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  bool empty() const { return heap_.empty() && inbox_pos_ == inbox_.size(); }

  SimTime top_time() const { return top_slot().time; }
  std::uint64_t top_ord() const { return top_slot().ord; }

  template <typename F>
  void push(SimTime time, std::uint64_t ord, std::int32_t node, F&& fn) {
    Node* n = allocate();
    n->time = time;
    n->ord = ord;
    n->node = node;
    if (bind(*n, std::forward<F>(fn))) ++stats_.heap_fallbacks;
    heap_.push_back(Slot{time, ord, n});
    sift_up(heap_.size() - 1);
    ++stats_.live;
    if (stats_.live > stats_.high_water) stats_.high_water = stats_.live;
  }

  /// Thread-safe enqueue from a foreign worker: the event lands in a staged
  /// side list (LIFO; order is irrelevant because absorb_staged() sorts by
  /// the canonical key) built from a separate node pool so the owner's
  /// hot-path free list is never contended.
  template <typename F>
  void stage(SimTime time, std::uint64_t ord, std::int32_t node, F&& fn) {
    std::lock_guard<std::mutex> lock(stage_mutex_);
    Node* n = staged_allocate();
    n->time = time;
    n->ord = ord;
    n->node = node;
    if (bind(*n, std::forward<F>(fn))) ++staged_fallbacks_;
    n->next_free = staged_;
    staged_ = n;
  }

  /// Owner-side: folds every staged event into the sorted inbox lane — one
  /// batch sort plus a linear merge with the unconsumed remainder, instead
  /// of a heap push per event. Safe to run concurrently with stage()
  /// callers (the conservative horizon protocol guarantees anything staged
  /// after this call executes in a later drain). Returns the batch size.
  std::size_t absorb_staged() {
    Node* head = nullptr;
    {
      std::lock_guard<std::mutex> lock(stage_mutex_);
      head = staged_;
      staged_ = nullptr;
      stats_.heap_fallbacks += staged_fallbacks_;
      staged_fallbacks_ = 0;
      stats_.pool_nodes += staged_pool_nodes_;
      staged_pool_nodes_ = 0;
    }
    if (head == nullptr) return 0;
    // Drop the consumed prefix so the merge below touches live slots only.
    if (inbox_pos_ > 0) {
      inbox_.erase(inbox_.begin(),
                   inbox_.begin() + static_cast<std::ptrdiff_t>(inbox_pos_));
      inbox_pos_ = 0;
    }
    const std::size_t old_size = inbox_.size();
    std::size_t count = 0;
    while (head != nullptr) {
      Node* n = head;
      head = head->next_free;
      inbox_.push_back(Slot{n->time, n->ord, n});
      ++count;
    }
    std::sort(inbox_.begin() + static_cast<std::ptrdiff_t>(old_size),
              inbox_.end(), slot_before);
    std::inplace_merge(inbox_.begin(),
                       inbox_.begin() + static_cast<std::ptrdiff_t>(old_size),
                       inbox_.end(), slot_before);
    stats_.live += count;
    if (stats_.live > stats_.high_water) stats_.high_water = stats_.live;
    return count;
  }

  /// Removes the earliest event. Invoke it with run_and_recycle().
  Node* pop() {
    --stats_.live;
    if (inbox_pos_ != inbox_.size() &&
        (heap_.empty() || slot_before(inbox_[inbox_pos_], heap_.front()))) {
      return inbox_[inbox_pos_++].n;
    }
    Node* top = heap_.front().n;
    const Slot last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      heap_.front() = last;
      sift_down(0);
    }
    return top;
  }

  /// Calls the node's callback, then returns the node to the free list —
  /// also on exception. The callback may push further events.
  void run_and_recycle(Node* n) {
    struct Recycle {
      EventQueue* q;
      Node* n;
      ~Recycle() {
        n->destroy(*n);
        q->free(n);
      }
    } recycle{this, n};
    n->invoke(*n);
  }

  const Stats& stats() const { return stats_; }
  void reset_high_water() { stats_.high_water = stats_.live; }

 private:
  static constexpr std::size_t kChunkNodes = 256;

  /// Heap/inbox entry: the ordering key lives next to the pointer so heap
  /// maintenance never touches the nodes themselves.
  struct Slot {
    SimTime time;
    std::uint64_t ord;
    Node* n;
  };

  static bool slot_before(const Slot& a, const Slot& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.ord < b.ord;
  }

  const Slot& top_slot() const {
    if (inbox_pos_ != inbox_.size() &&
        (heap_.empty() || slot_before(inbox_[inbox_pos_], heap_.front()))) {
      return inbox_[inbox_pos_];
    }
    return heap_.front();
  }

  /// Returns true when the callable spilled to the heap (too big for the
  /// inline buffer) so callers can account the fallback against the right
  /// counter — push() owns stats_, stage() must not touch it.
  template <typename F>
  bool bind(Node& n, F&& fn) {
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= 64) {
      ::new (static_cast<void*>(n.storage)) Fn(std::forward<F>(fn));
      n.invoke = [](Node& m) {
        (*std::launder(reinterpret_cast<Fn*>(m.storage)))();
      };
      n.destroy = [](Node& m) {
        std::launder(reinterpret_cast<Fn*>(m.storage))->~Fn();
      };
      return false;
    } else {
      auto* boxed = new Fn(std::forward<F>(fn));
      std::memcpy(n.storage, &boxed, sizeof(boxed));
      n.invoke = [](Node& m) { (*unbox<Fn>(m))(); };
      n.destroy = [](Node& m) { delete unbox<Fn>(m); };
      return true;
    }
  }

  template <typename Fn>
  static Fn* unbox(Node& n) {
    Fn* p;
    std::memcpy(&p, n.storage, sizeof(p));
    return p;
  }

  Node* allocate() {
    if (free_list_ == nullptr) grow();
    Node* n = free_list_;
    free_list_ = n->next_free;
    return n;
  }

  void free(Node* n) {
    n->next_free = free_list_;
    free_list_ = n;
  }

  /// Called with stage_mutex_ held. Staged nodes migrate to the owner's
  /// free list after they fire, so this pool only grows while staging
  /// outpaces the churn of previously absorbed nodes.
  Node* staged_allocate() {
    if (staged_free_ == nullptr) {
      staged_chunks_.push_back(std::make_unique<Node[]>(kChunkNodes));
      Node* chunk = staged_chunks_.back().get();
      for (std::size_t i = 0; i < kChunkNodes; ++i) {
        chunk[i].next_free = staged_free_;
        staged_free_ = &chunk[i];
      }
      staged_pool_nodes_ += kChunkNodes;
    }
    Node* n = staged_free_;
    staged_free_ = n->next_free;
    return n;
  }

  void grow() {
    chunks_.push_back(std::make_unique<Node[]>(kChunkNodes));
    Node* chunk = chunks_.back().get();
    for (std::size_t i = 0; i < kChunkNodes; ++i) {
      chunk[i].next_free = free_list_;
      free_list_ = &chunk[i];
    }
    stats_.pool_nodes += kChunkNodes;
  }

  void sift_up(std::size_t i) {
    const Slot s = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!slot_before(s, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = s;
  }

  void sift_down(std::size_t i) {
    const Slot s = heap_[i];
    const std::size_t size = heap_.size();
    for (;;) {
      std::size_t child = 2 * i + 1;
      if (child >= size) break;
      if (child + 1 < size && slot_before(heap_[child + 1], heap_[child])) {
        ++child;
      }
      if (!slot_before(heap_[child], s)) break;
      heap_[i] = heap_[child];
      i = child;
    }
    heap_[i] = s;
  }

  std::vector<Slot> heap_;  // binary min-heap; capacity is retained
  std::vector<std::unique_ptr<Node[]>> chunks_;
  Node* free_list_ = nullptr;
  Stats stats_;

  // Sorted inbox lane: absorbed cross-shard events, ascending (time, ord);
  // entries before inbox_pos_ are consumed.
  std::vector<Slot> inbox_;
  std::size_t inbox_pos_ = 0;

  // Staged inbox (parallel backend). Guarded by stage_mutex_; the owner
  // only takes the mutex briefly in absorb_staged().
  std::mutex stage_mutex_;
  Node* staged_ = nullptr;
  Node* staged_free_ = nullptr;
  std::vector<std::unique_ptr<Node[]>> staged_chunks_;
  std::uint64_t staged_fallbacks_ = 0;
  std::uint64_t staged_pool_nodes_ = 0;
};

}  // namespace dacc::sim
