// Coroutine stack allocator with free-list recycling.
//
// Stacks are mmap'd with a PROT_NONE guard page below the usable range, so a
// runaway process body faults instead of silently corrupting a neighbouring
// stack. Anonymous mappings are committed lazily by the kernel, so a large
// default stack costs only the pages a process actually touches — which is
// what lets a single engine host tens of thousands of simulated processes.
// Finished processes return their stack to the pool; steady-state spawning
// performs no new mappings.
// Under the parallel execution backend, coroutines start and finish on
// whichever worker thread drives their shard, so acquire/release take a
// mutex; both are off the steady-state switch path (a stack is acquired
// once per process lifetime).
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace dacc::sim {

class StackPool {
 public:
  /// Usable bytes per stack (excluding the guard page).
  static constexpr std::size_t kDefaultStackBytes = 512 * 1024;

  struct Stack {
    void* base = nullptr;       ///< lowest usable address
    std::size_t size = 0;       ///< usable bytes
    void* map_base = nullptr;   ///< mmap base (guard page included)
    std::size_t map_size = 0;
  };

  explicit StackPool(std::size_t stack_bytes = kDefaultStackBytes);
  ~StackPool();
  StackPool(const StackPool&) = delete;
  StackPool& operator=(const StackPool&) = delete;

  Stack acquire();
  void release(Stack stack);

  /// Stacks ever mmap'd (monotonic; stable once the pool is warm).
  std::uint64_t created() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return created_;
  }
  std::size_t free_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return free_.size();
  }

 private:
  std::size_t stack_bytes_;
  mutable std::mutex mutex_;
  std::vector<Stack> free_;
  std::uint64_t created_ = 0;
};

}  // namespace dacc::sim
