#include "sim/engine.hpp"

#include <condition_variable>
#include <mutex>
#include <sstream>
#include <thread>

namespace dacc::sim {

// ---------------------------------------------------------------------------
// Baton: hands execution back and forth between the engine thread and one
// process thread. Exactly one side runs at a time.
// ---------------------------------------------------------------------------

struct Process::Baton {
  std::mutex mutex;
  std::condition_variable cv;
  enum class Turn { Engine, Process } turn = Turn::Engine;
  std::thread thread;
};

Process::Process(Engine& engine, std::uint64_t id, std::string name,
                 ProcessFn fn)
    : engine_(engine),
      id_(id),
      name_(std::move(name)),
      fn_(std::move(fn)),
      baton_(std::make_unique<Baton>()) {
  baton_->thread = std::thread([this] { thread_main(); });
}

Process::~Process() {
  if (baton_->thread.joinable()) baton_->thread.join();
}

void Process::thread_main() {
  // Wait for the engine to hand us the baton for the first time.
  {
    std::unique_lock lock(baton_->mutex);
    baton_->cv.wait(lock, [&] { return baton_->turn == Baton::Turn::Process; });
  }
  if (!shutdown_requested_) {
    started_ = true;
    try {
      Context ctx(engine_, *this);
      fn_(ctx);
    } catch (const Shutdown&) {
      // Normal teardown path for blocked service loops.
    } catch (const std::exception& e) {
      failure_ = e.what();
    } catch (...) {
      failure_ = "unknown exception";
    }
  }
  finished_ = true;
  std::unique_lock lock(baton_->mutex);
  baton_->turn = Baton::Turn::Engine;
  baton_->cv.notify_all();
}

void Process::yield_to_engine() {
  std::unique_lock lock(baton_->mutex);
  baton_->turn = Baton::Turn::Engine;
  baton_->cv.notify_all();
  baton_->cv.wait(lock, [&] { return baton_->turn == Baton::Turn::Process; });
  if (shutdown_requested_) throw Shutdown{};
}

void Process::run_slice() {
  std::unique_lock lock(baton_->mutex);
  baton_->turn = Baton::Turn::Process;
  baton_->cv.notify_all();
  baton_->cv.wait(lock, [&] { return baton_->turn == Baton::Turn::Engine; });
}

// ---------------------------------------------------------------------------
// Context
// ---------------------------------------------------------------------------

SimTime Context::now() const { return engine_.now(); }

const std::string& Context::name() const { return self_.name(); }

void Context::wait_for(SimDuration d) { wait_until(engine_.now() + d); }

void Context::wait_until(SimTime t) {
  if (t <= engine_.now()) return;
  const std::uint64_t id = engine_.prepare_block(self_);
  engine_.schedule_resume(self_, id, t);
  engine_.block(self_);
}

void Context::suspend() {
  Process& p = self_;
  if (p.wake_permits_ > 0) {
    --p.wake_permits_;
    return;
  }
  engine_.prepare_block(p);
  p.waiting_for_wake_ = true;
  engine_.block(p);
  // Woken by Engine::wake(): the permit granted there is consumed here.
  --p.wake_permits_;
}

void Context::yield() {
  const std::uint64_t id = engine_.prepare_block(self_);
  engine_.schedule_resume(self_, id, engine_.now());
  engine_.block(self_);
}

Process& Engine::current_process() {
  if (current_ == nullptr) {
    throw SimError("operation requires process context");
  }
  return *current_;
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

Engine::Engine() = default;

Engine::~Engine() { shutdown_processes(); }

Process& Engine::spawn(std::string name, ProcessFn fn) {
  auto proc = std::make_unique<Process>(*this, next_process_id_++,
                                        std::move(name), std::move(fn));
  Process& ref = *proc;
  processes_.push_back(std::move(proc));
  // First slice runs as a regular event at the current time.
  schedule_at(now_, [this, &ref] {
    Process* prev = current_;
    current_ = &ref;
    ref.run_slice();
    current_ = prev;
  });
  return ref;
}

void Engine::schedule_at(SimTime t, std::function<void()> fn) {
  if (t < now_) {
    throw SimError("schedule_at: time in the past");
  }
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void Engine::schedule_in(SimDuration d, std::function<void()> fn) {
  schedule_at(now_ + d, std::move(fn));
}

std::uint64_t Engine::prepare_block(Process& p) {
  if (current_ != &p) {
    throw SimError("blocking primitive called outside process context");
  }
  p.current_wait_ = ++p.wait_seq_;
  return p.current_wait_;
}

void Engine::block(Process& p) {
  Process* prev = current_;
  p.yield_to_engine();  // returns when a matching resume hands the baton back
  current_ = prev;
  p.current_wait_ = 0;
}

void Engine::schedule_resume(Process& p, std::uint64_t wait_id, SimTime t) {
  schedule_at(t, [this, &p, wait_id] {
    // Stale resumes (process already moved on, or finished) are dropped.
    if (p.finished_ || p.current_wait_ != wait_id) return;
    Process* prev = current_;
    current_ = &p;
    p.run_slice();
    current_ = prev;
  });
}

void Engine::wake(Process& p) {
  ++p.wake_permits_;
  if (p.waiting_for_wake_) {
    p.waiting_for_wake_ = false;
    schedule_resume(p, p.current_wait_, now_);
  }
}

void Engine::set_daemon(Process& p) { daemons_.push_back(&p); }

void Engine::run() {
  running_ = true;
  while (!queue_.empty()) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ++events_executed_;
    ev.fn();
    for (const auto& proc : processes_) {
      if (!proc->failure_.empty()) {
        std::ostringstream os;
        os << "process '" << proc->name_ << "' failed: " << proc->failure_;
        proc->failure_.clear();
        running_ = false;
        throw SimError(os.str());
      }
    }
  }
  running_ = false;
  check_quiescence();
}

bool Engine::run_until(SimTime t) {
  running_ = true;
  while (!queue_.empty() && queue_.top().time <= t) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ++events_executed_;
    ev.fn();
  }
  running_ = false;
  if (queue_.empty() && now_ < t) now_ = t;
  return !queue_.empty();
}

void Engine::check_quiescence() {
  for (const auto& proc : processes_) {
    if (proc->finished_) continue;
    bool is_daemon = false;
    for (Process* d : daemons_) {
      if (d == proc.get()) {
        is_daemon = true;
        break;
      }
    }
    if (!is_daemon) {
      throw SimError("deadlock: process '" + proc->name_ +
                     "' is blocked with no pending events");
    }
  }
}

void Engine::shutdown_processes() {
  shutting_down_ = true;
  for (const auto& proc : processes_) {
    if (proc->finished_) continue;
    proc->shutdown_requested_ = true;
    // Hand the baton once; the process throws Shutdown and unwinds.
    proc->run_slice();
  }
}

}  // namespace dacc::sim
