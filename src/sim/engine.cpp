#include "sim/engine.hpp"

#include <ucontext.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <sstream>
#include <thread>

#include "sim/trace.hpp"

namespace dacc::sim {

namespace {

/// Host wallclock for the profiler tier only — never feeds simulated state.
inline std::uint64_t wall_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Chained attribution: the interval since the cursor's previous clock read
/// belongs to `phase` on `shard`. Chaining (instead of bracketing each
/// phase) means consecutive intervals tile the worker's wallclock with no
/// gaps, which is what lets the per-shard phases sum to ~100% of measured
/// worker time.
inline void wall_chain(WallSink* w, detail::ExecCursor& cursor, int shard,
                       WallSink::Phase phase) {
  const std::uint64_t t = wall_now_ns();
  if (cursor.wall_tick != 0) w->shard_phase(shard, phase, t - cursor.wall_tick);
  cursor.wall_tick = t;
}

}  // namespace

namespace detail {
namespace {
thread_local ExecCursor* t_cursor = nullptr;
}  // namespace

// Deliberately not inlined: a coroutine that suspends on one worker thread
// and resumes on another must re-derive the thread-local address after the
// stack switch; an out-of-line call is the portable way to defeat cached
// TLS address computations.
__attribute__((noinline)) ExecCursor* exec_cursor() noexcept {
  return t_cursor;
}

__attribute__((noinline)) void set_exec_cursor(ExecCursor* c) noexcept {
  t_cursor = c;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Strands: hand execution back and forth between the engine and one process.
// Exactly one side runs at a time; the two implementations differ only in
// the mechanics of the hand-off. Under the parallel backend consecutive
// slices of one process may be driven by different worker threads; the
// shard's horizon publishes (release) and reads (acquire) order those
// drives, so each strand still sees a strictly alternating engine/process
// hand-off.
// ---------------------------------------------------------------------------

class Process::Strand {
 public:
  virtual ~Strand() = default;
  virtual void run_slice(Process& p) = 0;        // engine side
  virtual void yield_to_engine(Process& p) = 0;  // process side

 protected:
  // Nested-class access to Process internals, forwarded for the concrete
  // strands in the anonymous namespace below.
  static void run_body(Process& p) { p.body_main(); }
  static bool is_shutdown_requested(const Process& p) {
    return p.shutdown_requested_;
  }
};

namespace {

// Stackful coroutine strand: the process body runs on a pooled stack; a
// switch is swapcontext() in user space, no OS scheduler involvement. The
// stack returns to the pool the moment the body finishes, so long-running
// engines reuse a small working set of stacks.
class CoroStrand final : public Process::Strand {
 public:
  CoroStrand(StackPool& pool, Process& p) : pool_(pool), process_(&p) {}

  ~CoroStrand() override {
    if (stack_.map_base != nullptr) pool_.release(stack_);
  }

  void run_slice(Process& p) override {
    if (!entered_) {
      entered_ = true;
      stack_ = pool_.acquire();
      ::getcontext(&coro_);
      coro_.uc_stack.ss_sp = stack_.base;
      coro_.uc_stack.ss_size = stack_.size;
      coro_.uc_link = &engine_;  // body return resumes the engine side
      const auto self = reinterpret_cast<std::uintptr_t>(this);
      ::makecontext(&coro_, reinterpret_cast<void (*)()>(&CoroStrand::entry),
                    2, static_cast<unsigned>(self >> 32),
                    static_cast<unsigned>(self & 0xffffffffu));
    }
    // engine_ is overwritten on every slice, so it always names the worker
    // that drove this slice — the coroutine returns to whoever resumed it.
    ::swapcontext(&engine_, &coro_);
    if (p.finished() && stack_.map_base != nullptr) {
      pool_.release(stack_);
      stack_ = StackPool::Stack{};
    }
  }

  void yield_to_engine(Process& p) override {
    ::swapcontext(&coro_, &engine_);
    if (is_shutdown_requested(p)) throw Shutdown{};
  }

 private:
  // makecontext passes int arguments only; the strand pointer travels as two
  // 32-bit halves (the standard 64-bit ucontext idiom).
  static void entry(unsigned hi, unsigned lo) {
    auto* self = reinterpret_cast<CoroStrand*>(
        (static_cast<std::uintptr_t>(hi) << 32) | lo);
    run_body(*self->process_);
    // Falling off the end switches to uc_link == the engine context.
  }

  StackPool& pool_;
  Process* process_;
  StackPool::Stack stack_{};
  ucontext_t engine_{};
  ucontext_t coro_{};
  bool entered_ = false;
};

// OS-thread strand: the original SystemC-style baton (mutex/condvar). Kept
// as the sanitizer- and debugger-friendly fallback; selected per engine or
// globally via -DDACC_SANITIZE / DACC_SIM_BACKEND=thread.
//
// Because the process body runs on its own OS thread, the worker's
// execution cursor must follow the baton: run_slice() publishes the
// driving thread's cursor and the process side installs it after every
// baton receipt, so Engine::now() etc. resolve against the running drain.
class ThreadStrand final : public Process::Strand {
 public:
  explicit ThreadStrand(Process& p) {
    thread_ = std::thread([this, &p] { main(p); });
  }

  ~ThreadStrand() override {
    if (thread_.joinable()) thread_.join();
  }

  void run_slice(Process&) override {
    cursor_ = detail::exec_cursor();
    std::unique_lock lock(mutex_);
    turn_ = Turn::kProcess;
    cv_.notify_all();
    cv_.wait(lock, [&] { return turn_ == Turn::kEngine; });
  }

  void yield_to_engine(Process& p) override {
    std::unique_lock lock(mutex_);
    turn_ = Turn::kEngine;
    cv_.notify_all();
    cv_.wait(lock, [&] { return turn_ == Turn::kProcess; });
    lock.unlock();
    detail::set_exec_cursor(cursor_);
    if (is_shutdown_requested(p)) throw Shutdown{};
  }

 private:
  void main(Process& p) {
    // Wait for the engine to hand us the baton for the first time.
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [&] { return turn_ == Turn::kProcess; });
    }
    detail::set_exec_cursor(cursor_);
    run_body(p);
    std::unique_lock lock(mutex_);
    turn_ = Turn::kEngine;
    cv_.notify_all();
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  enum class Turn { kEngine, kProcess } turn_ = Turn::kEngine;
  std::thread thread_;
  detail::ExecCursor* cursor_ = nullptr;  // driving worker's cursor
};

}  // namespace

// ---------------------------------------------------------------------------
// Process
// ---------------------------------------------------------------------------

Process::Process(Engine& engine, std::uint64_t id, std::string name,
                 ProcessFn fn)
    : engine_(engine), id_(id), name_(std::move(name)), fn_(std::move(fn)) {
#if defined(DACC_SIM_FORCE_THREAD_BACKEND)
  // Sanitizer builds cannot track hand-switched stacks regardless of the
  // engine's nominal backend.
  strand_ = std::make_unique<ThreadStrand>(*this);
#else
  if (engine.backend() == ExecBackend::kThread) {
    strand_ = std::make_unique<ThreadStrand>(*this);
  } else {
    strand_ = std::make_unique<CoroStrand>(engine.stack_pool_, *this);
  }
#endif
}

Process::~Process() = default;

void Process::body_main() {
  if (!shutdown_requested_) {
    started_ = true;
    try {
      Context ctx(engine_, *this);
      fn_(ctx);
    } catch (const Shutdown&) {
      // Normal teardown path for blocked service loops.
    } catch (const std::exception& e) {
      failure_ = e.what();
      engine_.any_failure_.store(true, std::memory_order_release);
    } catch (...) {
      failure_ = "unknown exception";
      engine_.any_failure_.store(true, std::memory_order_release);
    }
  }
  finished_ = true;
}

void Process::yield_to_engine() { strand_->yield_to_engine(*this); }

void Process::run_slice() { strand_->run_slice(*this); }

// ---------------------------------------------------------------------------
// Context
// ---------------------------------------------------------------------------

SimTime Context::now() const { return engine_.now(); }

const std::string& Context::name() const { return self_.name(); }

void Context::wait_for(SimDuration d) { wait_until(engine_.now() + d); }

void Context::wait_until(SimTime t) {
  if (t <= engine_.now()) return;
  const std::uint64_t id = engine_.prepare_block(self_);
  engine_.schedule_resume(self_, id, t);
  engine_.block(self_);
}

void Context::suspend() {
  Process& p = self_;
  if (p.wake_permits_ > 0) {
    --p.wake_permits_;
    return;
  }
  engine_.prepare_block(p);
  p.waiting_for_wake_ = true;
  engine_.block(p);
  // Woken by Engine::wake(): the permit granted there is consumed here.
  --p.wake_permits_;
}

void Context::yield() {
  const std::uint64_t id = engine_.prepare_block(self_);
  engine_.schedule_resume(self_, id, engine_.now());
  engine_.block(self_);
}

Process& Engine::current_process() {
  Process* p = executing();
  if (p == nullptr) {
    throw SimError("operation requires process context");
  }
  return *p;
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/// Worker pool for the parallel backend. Workers sleep between eras; the
/// coordinator publishes an epoch and waits for every worker to check back
/// in. The mutex hand-offs double as the happens-before edges that make
/// shard state written in era N visible to whichever worker drives the
/// shard in era N+1; within an era the per-shard horizon atomics provide
/// the ordering.
struct Engine::ParallelRt {
  std::mutex m;
  std::condition_variable cv_work;
  std::condition_variable cv_done;
  std::uint64_t epoch = 0;
  int pending = 0;
  bool quit = false;
  std::exception_ptr failure;
  std::vector<std::thread> threads;
};

Engine::Engine(ExecBackend backend, int shards)
    : backend_(backend), shards_hint_(shards) {}

Engine::~Engine() {
  stop_workers();
  shutdown_processes();
}

void Engine::set_node_count(int nodes) {
  if (nodes > node_count_) {
    node_count_ = nodes;
    node_seq_.resize(static_cast<std::size_t>(node_count_) + 1, 0);
    plan_dirty_ = true;
  }
  if (backend_ != ExecBackend::kParallel || node_count_ == 0) return;
  // Auto sharding caps at a host-sized shard count: more shards than a
  // small multiple of the worker pool adds horizon-scan and queue overhead
  // without exposing any extra parallelism, and placement never affects
  // simulated results.
  const int want = shards_hint_ > 0
                       ? shards_hint_
                       : std::min(node_count_, default_auto_shard_cap());
  if (want != num_shards_) {
    for (const auto& sh : shards_) {
      if (!sh->q.empty()) {
        throw SimError(
            "set_node_count: cannot re-shard with node events pending");
      }
    }
    stop_workers();
    shards_.clear();
    shards_.reserve(static_cast<std::size_t>(want));
    for (int i = 0; i < want; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
    num_shards_ = want;
    plan_dirty_ = true;
  }
  recompute_shard_map();
}

void Engine::set_lookahead_overrides(
    SimDuration default_latency, const std::vector<LatencyOverride>& links) {
  la_override_.clear();
  for (const LatencyOverride& l : links) {
    if (l.a < 0 || l.b < 0 || l.a == l.b || l.latency < 0) {
      throw SimError("set_lookahead_overrides: invalid link override");
    }
    for (const std::uint64_t key : {pair_key(l.a, l.b), pair_key(l.b, l.a)}) {
      auto [it, fresh] = la_override_.try_emplace(key, l.latency);
      if (!fresh && l.latency < it->second) it->second = l.latency;
    }
  }
  override_default_ = default_latency;
  plan_dirty_ = true;
  if (backend_ == ExecBackend::kParallel && num_shards_ > 0) {
    recompute_shard_map();
  }
}

void Engine::set_shard_map(std::vector<int> map) {
  if (backend_ != ExecBackend::kParallel || num_shards_ == 0) {
    throw SimError("set_shard_map: requires the parallel backend with a "
                   "declared node topology");
  }
  if (static_cast<int>(map.size()) != node_count_) {
    throw SimError("set_shard_map: map size must equal node_count()");
  }
  for (const int s : map) {
    if (s < 0 || s >= num_shards_) {
      throw SimError("set_shard_map: shard id out of range");
    }
  }
  for (const auto& sh : shards_) {
    if (!sh->q.empty()) {
      throw SimError("set_shard_map: cannot move nodes with events pending");
    }
  }
  shard_of_ = std::move(map);
  shard_map_source_ = ShardMapSource::kExplicit;
  plan_dirty_ = true;
}

void Engine::recompute_shard_map() {
  if (num_shards_ <= 0 || node_count_ <= 0) return;
  std::vector<int> map;
  if (shard_map_source_ == ShardMapSource::kExplicit) {
    // Keep the user's placement; new nodes (topology growth) fall back to
    // round robin, shrunk shard counts wrap.
    map = shard_of_;
    while (static_cast<int>(map.size()) < node_count_) {
      map.push_back(static_cast<int>(map.size()) % num_shards_);
    }
    for (int& s : map) {
      if (s >= num_shards_) s %= num_shards_;
    }
  } else {
    std::vector<int> env = parse_shard_map_env(node_count_, num_shards_);
    if (!env.empty()) {
      map = std::move(env);
      shard_map_source_ = ShardMapSource::kEnv;
    } else if (!la_override_.empty()) {
      map = topology_partition();
    }
    // else: empty map == round robin.
  }
  if (map == shard_of_) return;
  for (const auto& sh : shards_) {
    if (!sh->q.empty()) {
      throw SimError(
          "cannot change the node->shard map with node events pending");
    }
  }
  shard_of_ = std::move(map);
  plan_dirty_ = true;
}

std::vector<int> Engine::topology_partition() const {
  const int n = node_count_;
  const int s = num_shards_;
  // Union-find over short links (latency below the topology default): nodes
  // coupled by a short link want to share a shard so the link never bounds
  // a cross-shard horizon.
  std::vector<int> parent(static_cast<std::size_t>(n));
  std::iota(parent.begin(), parent.end(), 0);
  const auto find = [&parent](int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };
  for (const auto& [key, lat] : la_override_) {
    if (lat >= override_default_) continue;
    const int a = static_cast<int>(key >> 32);
    const int b = static_cast<int>(key & 0xffffffffu);
    if (a >= n || b >= n) continue;
    const int ra = find(a);
    const int rb = find(b);
    if (ra != rb) parent[static_cast<std::size_t>(std::max(ra, rb))] =
        std::min(ra, rb);
  }
  // Groups in first-member order (deterministic regardless of hash order).
  std::vector<std::vector<int>> groups;
  std::unordered_map<int, std::size_t> group_of_root;
  for (int i = 0; i < n; ++i) {
    const int r = find(i);
    const auto [it, fresh] = group_of_root.try_emplace(r, groups.size());
    if (fresh) groups.emplace_back();
    groups[it->second].push_back(i);
  }
  // A group larger than one shard's fair share is sliced into contiguous
  // chunks (a ring of short links would otherwise collapse onto one shard):
  // within a chunk every short link stays intra-shard; only the slice
  // boundaries become cross-shard short links.
  const std::size_t cap =
      (static_cast<std::size_t>(n) + static_cast<std::size_t>(s) - 1) /
      static_cast<std::size_t>(s);
  std::vector<std::vector<int>> chunks;
  for (const auto& g : groups) {
    for (std::size_t off = 0; off < g.size(); off += cap) {
      const std::size_t end = std::min(off + cap, g.size());
      chunks.emplace_back(g.begin() + static_cast<std::ptrdiff_t>(off),
                          g.begin() + static_cast<std::ptrdiff_t>(end));
    }
  }
  // Load rebalancing: biggest chunk first onto the least-loaded shard
  // (ties: lowest shard id). Deterministic.
  std::vector<std::size_t> order(chunks.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&chunks](std::size_t a, std::size_t b) {
                     if (chunks[a].size() != chunks[b].size()) {
                       return chunks[a].size() > chunks[b].size();
                     }
                     return chunks[a].front() < chunks[b].front();
                   });
  std::vector<std::size_t> load(static_cast<std::size_t>(s), 0);
  std::vector<int> map(static_cast<std::size_t>(n), 0);
  for (const std::size_t idx : order) {
    int best = 0;
    for (int k = 1; k < s; ++k) {
      if (load[static_cast<std::size_t>(k)] <
          load[static_cast<std::size_t>(best)]) {
        best = k;
      }
    }
    for (const int node : chunks[idx]) {
      map[static_cast<std::size_t>(node)] = best;
    }
    load[static_cast<std::size_t>(best)] += chunks[idx].size();
  }
  return map;
}

void Engine::ensure_parallel_plan() {
  if (!plan_dirty_) return;
  plan_dirty_ = false;
  const int s = num_shards_;
  pair_la_.assign(static_cast<std::size_t>(s) * static_cast<std::size_t>(s),
                  lookahead_);
  min_cross_la_ = lookahead_;
  if (s <= 1 || la_override_.empty()) return;
  // A shard pair's lookahead is the minimum latency floor over node pairs
  // crossing it. Non-overridden node pairs exist across essentially every
  // shard pair, so each cell starts at the default lookahead and only
  // shorter overrides pull it down — longer overrides can never raise it,
  // which is conservative (correct, merely less parallel).
  for (const auto& [key, lat] : la_override_) {
    const int a = static_cast<int>(key >> 32);
    const int b = static_cast<int>(key & 0xffffffffu);
    if (a >= node_count_ || b >= node_count_) continue;
    const int sa = shard_target(a);
    const int sb = shard_target(b);
    if (sa == sb) continue;
    SimTime& cell =
        pair_la_[static_cast<std::size_t>(sa) * static_cast<std::size_t>(s) +
                 static_cast<std::size_t>(sb)];
    if (lat < cell) cell = lat;
    if (lat < min_cross_la_) min_cross_la_ = lat;
  }
}

void Engine::set_tracer(Tracer* tracer) {
  tracer_ = tracer;
  if (tracer != nullptr) tracer->attach(this);
}

bool Engine::parallel_trace_key(SimTime* t, std::uint64_t* ord,
                                std::uint32_t* seq, int* buffer) {
  if (num_shards_ == 0) return false;
  detail::ExecCursor* c = detail::exec_cursor();
  if (c != nullptr && c->engine == this) {
    *t = c->now;
    *ord = c->ord;
    *seq = c->trace_seq++;
    *buffer = c->shard;
    return true;
  }
  // Serial global band between eras.
  *t = now_;
  *ord = band_ord_;
  *seq = band_trace_seq_++;
  *buffer = num_shards_;
  return true;
}

Process& Engine::spawn(std::string name, ProcessFn fn) {
  return spawn_on(context_node(), std::move(name), std::move(fn));
}

Process& Engine::spawn_on(std::int32_t node, std::string name, ProcessFn fn) {
  if (node != kGlobalNode && (node < 0 || node >= node_count_)) {
    throw SimError("spawn_on: node out of range (declare the topology with "
                   "set_node_count first)");
  }
  Process* ref = nullptr;
  {
    std::lock_guard<std::mutex> lock(spawn_mutex_);
    auto proc = std::make_unique<Process>(*this, next_process_id_++,
                                          std::move(name), std::move(fn));
    ref = proc.get();
    ref->home_node_ = node;
    processes_.push_back(std::move(proc));
  }
  // First slice runs as a regular event at the current time on the home
  // node (one latency floor later when spawning across nodes).
  post(node, now(), [this, ref] { resume_slice(*ref); });
  return *ref;
}

void Engine::resume_slice(Process& p) {
  detail::ExecCursor* c = nullptr;
  if (par_active_) [[unlikely]] {
    c = detail::exec_cursor();
    if (c != nullptr && c->engine != this) c = nullptr;
  }
  if (c != nullptr) {
    Process* prev = c->current;
    c->current = &p;
    ++c->switches;
    p.run_slice();
    c->current = prev;
  } else {
    Process* prev = current_;
    current_ = &p;
    ++process_switches_;
    p.run_slice();
    current_ = prev;
  }
}

std::uint64_t Engine::prepare_block(Process& p) {
  if (executing() != &p) {
    throw SimError("blocking primitive called outside process context");
  }
  p.current_wait_ = ++p.wait_seq_;
  return p.current_wait_;
}

void Engine::block(Process& p) {
  p.yield_to_engine();  // returns when a matching resume hands the baton back
  p.current_wait_ = 0;
}

void Engine::schedule_resume(Process& p, std::uint64_t wait_id, SimTime t) {
  post(p.home_node_, t, [this, &p, wait_id] {
    // Stale resumes (process already moved on, or finished) are dropped.
    if (p.finished_ || p.current_wait_ != wait_id) return;
    resume_slice(p);
  });
}

void Engine::local_wake(Process& p) {
  ++p.wake_permits_;
  if (p.waiting_for_wake_) {
    p.waiting_for_wake_ = false;
    schedule_resume(p, p.current_wait_, now());
  }
}

void Engine::wake(Process& p) {
  const std::int32_t src = context_node();
  if (src == kGlobalNode || p.home_node_ == src) {
    // Same baton as the target: deliver immediately.
    local_wake(p);
    return;
  }
  if (p.home_node_ == kGlobalNode) {
    // A node context waking a node-less process. The sequential backends
    // (including the merged no-lookahead drain) share one baton so
    // immediate delivery is safe and keeps historical timings; the era
    // driver cannot reach the global band from inside an era without
    // breaking the canonical order.
    if (backend_ != ExecBackend::kParallel || num_shards_ == 0 ||
        !windowed_) {
      local_wake(p);
      return;
    }
    throw SimError("cross-node wake of a node-less process '" + p.name_ +
                   "' is not supported under the parallel backend; home the "
                   "process on a node with spawn_on()");
  }
  // Cross-node wake: no interaction crosses nodes faster than the pair's
  // latency floor.
  post(p.home_node_, now() + cross_floor(src, p.home_node_),
       [this, &p] { local_wake(p); });
}

void Engine::set_daemon(Process& p) {
  std::lock_guard<std::mutex> lock(spawn_mutex_);
  daemons_.push_back(&p);
}

void Engine::run() {
  if (backend_ == ExecBackend::kParallel && num_shards_ > 0) {
    ensure_parallel_plan();
    windowed_ = lookahead_ > 0 && min_cross_la_ > 0;
    if (windowed_) {
      run_parallel(kSimTimeNever);
    } else {
      ++pstats_.merged_fallbacks;
      if (flight_note_) {
        flight_note_("engine", "merged fallback: no safe horizon width");
      }
      run_merged(kSimTimeNever);
    }
    check_quiescence();
    return;
  }
  WallSink* const w = wall_;
  const std::uint64_t wt0 = w != nullptr ? wall_now_ns() : 0;
  const std::uint64_t we0 = events_executed_;
  running_ = true;
  while (!queue_.empty()) {
    EventQueue::Node* ev = queue_.pop();
    now_ = ev->time;
    cur_node_ = ev->node;
    ++events_executed_;
    queue_.run_and_recycle(ev);
    if (any_failure_.load(std::memory_order_acquire)) [[unlikely]] {
      cur_node_ = kGlobalNode;
      rethrow_failure();
    }
  }
  cur_node_ = kGlobalNode;
  running_ = false;
  if (w != nullptr) {
    const std::uint64_t wt1 = wall_now_ns();
    w->serial(wt1 - wt0, events_executed_ - we0);
    w->run_complete(wt1 - wt0, 1);
  }
  check_quiescence();
}

bool Engine::run_until(SimTime t) {
  if (backend_ == ExecBackend::kParallel && num_shards_ > 0) {
    ensure_parallel_plan();
    windowed_ = lookahead_ > 0 && min_cross_la_ > 0;
    if (windowed_) return run_parallel(t);
    ++pstats_.merged_fallbacks;
    if (flight_note_) {
      flight_note_("engine", "merged fallback: no safe horizon width");
    }
    return run_merged(t);
  }
  WallSink* const w = wall_;
  const std::uint64_t wt0 = w != nullptr ? wall_now_ns() : 0;
  const std::uint64_t we0 = events_executed_;
  running_ = true;
  while (!queue_.empty() && queue_.top_time() <= t) {
    EventQueue::Node* ev = queue_.pop();
    now_ = ev->time;
    cur_node_ = ev->node;
    ++events_executed_;
    queue_.run_and_recycle(ev);
    if (any_failure_.load(std::memory_order_acquire)) [[unlikely]] {
      cur_node_ = kGlobalNode;
      rethrow_failure();
    }
  }
  cur_node_ = kGlobalNode;
  running_ = false;
  if (w != nullptr) {
    const std::uint64_t wt1 = wall_now_ns();
    w->serial(wt1 - wt0, events_executed_ - we0);
    w->run_complete(wt1 - wt0, 1);
  }
  if (queue_.empty() && now_ < t) now_ = t;
  return !queue_.empty();
}

// ---------------------------------------------------------------------------
// Parallel driver
// ---------------------------------------------------------------------------

bool Engine::run_merged(SimTime limit) {
  // The canonical (time, ord) key totally orders events regardless of which
  // queue holds them, so a least-key scan over the band queue plus every
  // shard replays exactly the sequence the era driver executes — and the
  // one the sequential backends produce.
  WallSink* const w = wall_;
  const std::uint64_t wt0 = w != nullptr ? wall_now_ns() : 0;
  const std::uint64_t we0 = events_executed_;
  running_ = true;
  bool more = false;
  for (;;) {
    EventQueue* best = queue_.empty() ? nullptr : &queue_;
    for (const auto& sh : shards_) {
      EventQueue& q = sh->q;
      if (q.empty()) continue;
      if (best == nullptr || q.top_time() < best->top_time() ||
          (q.top_time() == best->top_time() &&
           q.top_ord() < best->top_ord())) {
        best = &q;
      }
    }
    if (best == nullptr) break;
    if (best->top_time() > limit) {
      more = true;
      break;
    }
    EventQueue::Node* ev = best->pop();
    now_ = ev->time;
    cur_node_ = ev->node;
    ++events_executed_;
    best->run_and_recycle(ev);
    if (any_failure_.load(std::memory_order_acquire)) [[unlikely]] {
      cur_node_ = kGlobalNode;
      rethrow_failure();
    }
  }
  cur_node_ = kGlobalNode;
  running_ = false;
  if (w != nullptr) {
    const std::uint64_t wt1 = wall_now_ns();
    w->serial(wt1 - wt0, events_executed_ - we0);
    w->run_complete(wt1 - wt0, 1);
  }
  if (!more && limit != kSimTimeNever && now_ < limit) now_ = limit;
  return more;
}

void Engine::ensure_workers() {
  if (rt_ != nullptr) return;
  int w = std::min(default_parallel_workers(), num_shards_);
  if (w <= 1) return;  // inline single-worker mode
  rt_ = std::make_unique<ParallelRt>();
  workers_started_ = w;
  rt_->threads.reserve(static_cast<std::size_t>(w));
  for (int i = 0; i < w; ++i) {
    rt_->threads.emplace_back([this, i] { worker_main(i); });
  }
}

void Engine::stop_workers() {
  if (rt_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(rt_->m);
    rt_->quit = true;
  }
  rt_->cv_work.notify_all();
  for (auto& t : rt_->threads) t.join();
  rt_.reset();
  workers_started_ = 0;
}

void Engine::drain_shard(int shard, SimTime bound,
                         detail::ExecCursor& cursor) {
  Shard& sh = *shards_[static_cast<std::size_t>(shard)];
  cursor.engine = this;
  cursor.shard = shard;
  EventQueue& q = sh.q;
  while (!q.empty() && q.top_time() < bound) {
    EventQueue::Node* ev = q.pop();
    cursor.now = ev->time;
    cursor.node = ev->node;
    cursor.ord = ev->ord;
    cursor.trace_seq = 0;
    sh.last_time = ev->time;
    ++sh.events;
    q.run_and_recycle(ev);
  }
  cursor.engine = nullptr;
}

/// One conservative-PDES advancement step for `shard`: compute the safe
/// drain bound from every neighbor's published horizon plus the shard-pair
/// lookahead, absorb the staged inbox, drain events strictly below the
/// bound, and publish the bound as this shard's new horizon — also when
/// nothing was drained (the null-message push that keeps an idle shard from
/// stalling its neighbors). Returns false when the bound cannot move yet.
///
/// Safety: a neighbor j whose horizon reads h has executed every event
/// before h and will only execute events at u >= h from now on; anything it
/// stages towards this shard is clamped to u + L(j, s) >= h + L(j, s) >=
/// bound. Events staged before j published h are visible to our
/// absorb_staged() (release store on j's horizon, acquire load here). So
/// draining strictly below `bound` can never miss an earlier event — the
/// canonical (time, ord) execution order is exactly the sequential one.
bool Engine::advance_shard(int shard, detail::ExecCursor& cursor) {
  Shard& sh = *shards_[static_cast<std::size_t>(shard)];
  WallSink* const w = wall_;
  if (sh.done) {
    if (w != nullptr) [[unlikely]] {
      wall_chain(w, cursor, shard, WallSink::kSync);
    }
    return false;
  }
  SimTime bound = era_end_;
  const SimTime* row =
      &pair_la_[static_cast<std::size_t>(shard) *
                static_cast<std::size_t>(num_shards_)];
  for (int j = 0; j < num_shards_; ++j) {
    if (j == shard) continue;
    const SimTime h =
        shards_[static_cast<std::size_t>(j)]->horizon.load(
            std::memory_order_acquire);
    if (h >= bound) continue;
    const SimDuration l = row[j];
    const SimTime b = h > kSimTimeNever - l ? kSimTimeNever : h + l;
    if (b < bound) bound = b;
  }
  if (bound <= sh.last_bound) {
    if (w != nullptr) [[unlikely]] {
      wall_chain(w, cursor, shard, WallSink::kStall);
    }
    return false;
  }
  sh.last_bound = bound;
  if (w != nullptr) [[unlikely]] {
    // The horizon scan that found the bound counts as stall time: it is
    // the cost of the conservative synchronization protocol, not of work.
    wall_chain(w, cursor, shard, WallSink::kStall);
    sh.inbox_events += sh.q.absorb_staged();
    wall_chain(w, cursor, shard, WallSink::kInbox);
  } else {
    sh.inbox_events += sh.q.absorb_staged();
  }
  cursor.switches = 0;
  drain_shard(shard, bound, cursor);
  if (w != nullptr) [[unlikely]] {
    wall_chain(w, cursor, shard, WallSink::kBusy);
  }
  sh.switches += cursor.switches;
  sh.horizon.store(bound, std::memory_order_release);
  if (bound >= era_end_) sh.done = true;
  return true;
}

void Engine::worker_main(int index) {
  detail::ExecCursor cursor;
  detail::set_exec_cursor(&cursor);
  std::uint64_t seen = 0;
  std::uint64_t idle_since = 0;  // wallclock when the previous era ended
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(rt_->m);
      rt_->cv_work.wait(lock,
                        [&] { return rt_->quit || rt_->epoch != seen; });
      if (rt_->quit) break;
      seen = rt_->epoch;
    }
    WallSink* const w = wall_;
    if (w != nullptr) {
      const std::uint64_t t = wall_now_ns();
      // Idle between eras = barrier + coordinator serial work; charged to
      // the worker's wait bucket so the attribution identity closes.
      if (idle_since != 0) w->worker_wait(index, t - idle_since);
      cursor.wall_tick = t;
    } else {
      cursor.wall_tick = 0;
      idle_since = 0;
    }
    try {
      // Drive owned shards until each has reached the era end. Progress is
      // guaranteed: the globally least-advanced live shard always finds a
      // bound strictly above its horizon (every cross-shard lookahead is
      // positive in era mode), so horizons rise monotonically to era_end_.
      for (;;) {
        bool progress = false;
        bool all_done = true;
        for (int s = index; s < num_shards_; s += workers_started_) {
          progress = advance_shard(s, cursor) || progress;
          all_done = all_done && shards_[static_cast<std::size_t>(s)]->done;
        }
        if (all_done) break;
        if (!progress) std::this_thread::yield();
      }
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(rt_->m);
        if (!rt_->failure) rt_->failure = std::current_exception();
      }
      // Release the neighbors: publish final horizons so the other workers
      // converge to the barrier instead of spinning on our stale clocks.
      for (int s = index; s < num_shards_; s += workers_started_) {
        Shard& sh = *shards_[static_cast<std::size_t>(s)];
        sh.done = true;
        sh.horizon.store(era_end_, std::memory_order_release);
      }
    }
    if (w != nullptr) idle_since = cursor.wall_tick;
    {
      std::lock_guard<std::mutex> lock(rt_->m);
      if (--rt_->pending == 0) rt_->cv_done.notify_all();
    }
  }
  detail::set_exec_cursor(nullptr);
}

void Engine::run_era(SimTime floor, SimTime era_end) {
  era_end_ = era_end;
  for (const auto& sh : shards_) {
    sh->horizon.store(floor, std::memory_order_relaxed);
    sh->last_bound = floor;
    sh->done = false;
  }
  par_active_ = true;
  if (workers_started_ == 0) {
    // Single-worker mode: drive every shard on this thread with the same
    // horizon protocol, so shard placement and the asynchronous bounds are
    // exercised (and the output provably shard-count-invariant) even on
    // one core.
    struct Scoped {
      Engine* e;
      detail::ExecCursor* prev;
      ~Scoped() {
        detail::set_exec_cursor(prev);
        e->par_active_ = false;
      }
    } scoped{this, detail::exec_cursor()};
    detail::ExecCursor cursor;
    detail::set_exec_cursor(&cursor);
    if (wall_ != nullptr) cursor.wall_tick = wall_now_ns();
    for (;;) {
      bool all_done = true;
      for (int s = 0; s < num_shards_; ++s) {
        advance_shard(s, cursor);
        all_done = all_done && shards_[static_cast<std::size_t>(s)]->done;
      }
      if (all_done) break;
    }
  } else {
    {
      std::lock_guard<std::mutex> lock(rt_->m);
      rt_->pending = workers_started_;
      ++rt_->epoch;
    }
    rt_->cv_work.notify_all();
    {
      std::unique_lock<std::mutex> lock(rt_->m);
      rt_->cv_done.wait(lock, [this] { return rt_->pending == 0; });
    }
    par_active_ = false;
    if (rt_->failure) {
      std::exception_ptr f = rt_->failure;
      rt_->failure = nullptr;
      std::rethrow_exception(f);
    }
  }
  // Era barrier passed: absorb every inbox (events staged near the era end
  // land in the next era; the coordinator's floor scan must see them) and
  // fold the per-shard counters into the engine totals.
  queue_.absorb_staged();
  std::uint64_t total = 0;
  std::uint64_t busiest = 0;
  for (const auto& sh : shards_) {
    sh->inbox_events += sh->q.absorb_staged();
    events_executed_ += sh->events;
    process_switches_ += sh->switches;
    if (sh->last_time > now_) now_ = sh->last_time;
    total += sh->events;
    busiest = std::max(busiest, sh->events);
  }
  if (total > 0) {
    ++pstats_.windows;
    pstats_.parallel_events += total;
    pstats_.critical_path_events += busiest;
    if (metrics_shard_era_) {
      // Serial context; inputs (events per shard per era, inbox batch
      // sizes) are schedule-independent, so the metrics snapshot stays
      // byte-identical across replays and worker counts.
      for (int s = 0; s < num_shards_; ++s) {
        const Shard& sh = *shards_[static_cast<std::size_t>(s)];
        metrics_shard_era_(s, sh.events, sh.inbox_events, sh.events == 0);
      }
    }
  }
  for (const auto& sh : shards_) {
    sh->events = 0;
    sh->switches = 0;
    sh->inbox_events = 0;
  }
}

bool Engine::run_parallel(SimTime limit) {
  running_ = true;
  if (tracer_ != nullptr) tracer_->begin_parallel(num_shards_ + 1);
  if (metrics_begin_parallel_) metrics_begin_parallel_(num_shards_ + 1);
  ensure_workers();
  WallSink* const w = wall_;
  std::uint64_t run_t0 = 0;
  std::uint64_t ctick = 0;  // coordinator's chained serial-phase timestamp
  if (w != nullptr) {
    w->begin_run(num_shards_, workers_started_ > 0 ? workers_started_ : 1);
    run_t0 = ctick = wall_now_ns();
  }
  const SimDuration gap = effective_band_gap();
  bool more = false;
  try {
    for (;;) {
      if (any_failure_.load(std::memory_order_acquire)) [[unlikely]] {
        rethrow_failure();
      }
      const SimTime global_top =
          queue_.empty() ? kSimTimeNever : queue_.top_time();
      SimTime shard_top = kSimTimeNever;
      for (const auto& sh : shards_) {
        if (!sh->q.empty() && sh->q.top_time() < shard_top) {
          shard_top = sh->q.top_time();
        }
      }
      const SimTime t = std::min(global_top, shard_top);
      if (t == kSimTimeNever || t > limit) {
        more = (t != kSimTimeNever);
        break;
      }
      if (global_top <= shard_top) {
        // Global band: runs serially between eras. The canonical order
        // puts global-context events ahead of node events at equal times
        // ((node + 1) packs to 0 in the key), so shared control state
        // written here is safe for every shard to read in the next era.
        EventQueue::Node* ev = queue_.pop();
        now_ = ev->time;
        cur_node_ = ev->node;
        band_ord_ = ev->ord;
        band_trace_seq_ = 0;
        ++events_executed_;
        queue_.run_and_recycle(ev);
        cur_node_ = kGlobalNode;
        if (w != nullptr) {
          const std::uint64_t t = wall_now_ns();
          w->serial(t - ctick, 1);
          ctick = t;
        }
        continue;
      }
      // Conservative era: no event dated before shard_top exists anywhere,
      // and nothing a shard does before shard_top + band_gap can reach the
      // global band inside the era — so the shards may advance
      // asynchronously (bounded pairwise by the lookahead matrix) up to
      // (exclusive) the era end.
      SimTime era_end =
          shard_top > kSimTimeNever - gap ? kSimTimeNever : shard_top + gap;
      era_end = std::min(era_end, global_top);
      if (limit != kSimTimeNever && era_end > limit) {
        era_end = limit + 1;  // run_until is inclusive of `limit`
      }
      if (w != nullptr) {
        const std::uint64_t t = wall_now_ns();
        w->serial(t - ctick, 0);  // queue scans between eras
        ctick = t;
      }
      run_era(shard_top, era_end);
      if (w != nullptr) ctick = wall_now_ns();
    }
  } catch (...) {
    running_ = false;
    cur_node_ = kGlobalNode;
    if (tracer_ != nullptr) tracer_->merge_parallel();
    if (metrics_merge_parallel_) metrics_merge_parallel_();
    throw;
  }
  running_ = false;
  cur_node_ = kGlobalNode;
  if (tracer_ != nullptr) tracer_->merge_parallel();
  if (metrics_merge_parallel_) metrics_merge_parallel_();
  if (w != nullptr) {
    const std::uint64_t t = wall_now_ns();
    w->serial(t - ctick, 0);
    w->run_complete(t - run_t0,
                    workers_started_ > 0 ? workers_started_ : 1);
  }
  if (!more && limit != kSimTimeNever && now_ < limit) now_ = limit;
  return more;
}

// ---------------------------------------------------------------------------
// Teardown and failure paths
// ---------------------------------------------------------------------------

void Engine::rethrow_failure() {
  any_failure_.store(false, std::memory_order_relaxed);
  for (const auto& proc : processes_) {
    if (proc->failure_.empty()) continue;
    std::ostringstream os;
    os << "process '" << proc->name_ << "' failed: " << proc->failure_;
    proc->failure_.clear();
    running_ = false;
    throw SimError(os.str());
  }
  throw SimError("process failure flag set without a stored failure");
}

void Engine::check_quiescence() {
  for (const auto& proc : processes_) {
    if (proc->finished_) continue;
    bool is_daemon = false;
    for (Process* d : daemons_) {
      if (d == proc.get()) {
        is_daemon = true;
        break;
      }
    }
    if (!is_daemon) {
      throw SimError("deadlock: process '" + proc->name_ +
                     "' is blocked with no pending events");
    }
  }
}

void Engine::shutdown_processes() {
  shutting_down_ = true;
  for (const auto& proc : processes_) {
    if (proc->finished_) continue;
    proc->shutdown_requested_ = true;
    // Hand the baton once; the process throws Shutdown and unwinds.
    proc->run_slice();
  }
}

}  // namespace dacc::sim
