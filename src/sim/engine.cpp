#include "sim/engine.hpp"

#include <ucontext.h>

#include <condition_variable>
#include <mutex>
#include <sstream>
#include <thread>

namespace dacc::sim {

// ---------------------------------------------------------------------------
// Strands: hand execution back and forth between the engine and one process.
// Exactly one side runs at a time; the two implementations differ only in
// the mechanics of the hand-off.
// ---------------------------------------------------------------------------

class Process::Strand {
 public:
  virtual ~Strand() = default;
  virtual void run_slice(Process& p) = 0;        // engine side
  virtual void yield_to_engine(Process& p) = 0;  // process side

 protected:
  // Nested-class access to Process internals, forwarded for the concrete
  // strands in the anonymous namespace below.
  static void run_body(Process& p) { p.body_main(); }
  static bool is_shutdown_requested(const Process& p) {
    return p.shutdown_requested_;
  }
};

namespace {

// Stackful coroutine strand: the process body runs on a pooled stack; a
// switch is swapcontext() in user space, no OS scheduler involvement. The
// stack returns to the pool the moment the body finishes, so long-running
// engines reuse a small working set of stacks.
class CoroStrand final : public Process::Strand {
 public:
  CoroStrand(StackPool& pool, Process& p) : pool_(pool), process_(&p) {}

  ~CoroStrand() override {
    if (stack_.map_base != nullptr) pool_.release(stack_);
  }

  void run_slice(Process& p) override {
    if (!entered_) {
      entered_ = true;
      stack_ = pool_.acquire();
      ::getcontext(&coro_);
      coro_.uc_stack.ss_sp = stack_.base;
      coro_.uc_stack.ss_size = stack_.size;
      coro_.uc_link = &engine_;  // body return resumes the engine side
      const auto self = reinterpret_cast<std::uintptr_t>(this);
      ::makecontext(&coro_, reinterpret_cast<void (*)()>(&CoroStrand::entry),
                    2, static_cast<unsigned>(self >> 32),
                    static_cast<unsigned>(self & 0xffffffffu));
    }
    ::swapcontext(&engine_, &coro_);
    if (p.finished() && stack_.map_base != nullptr) {
      pool_.release(stack_);
      stack_ = StackPool::Stack{};
    }
  }

  void yield_to_engine(Process& p) override {
    ::swapcontext(&coro_, &engine_);
    if (is_shutdown_requested(p)) throw Shutdown{};
  }

 private:
  // makecontext passes int arguments only; the strand pointer travels as two
  // 32-bit halves (the standard 64-bit ucontext idiom).
  static void entry(unsigned hi, unsigned lo) {
    auto* self = reinterpret_cast<CoroStrand*>(
        (static_cast<std::uintptr_t>(hi) << 32) | lo);
    run_body(*self->process_);
    // Falling off the end switches to uc_link == the engine context.
  }

  StackPool& pool_;
  Process* process_;
  StackPool::Stack stack_{};
  ucontext_t engine_{};
  ucontext_t coro_{};
  bool entered_ = false;
};

// OS-thread strand: the original SystemC-style baton (mutex/condvar). Kept
// as the sanitizer- and debugger-friendly fallback; selected per engine or
// globally via -DDACC_SANITIZE / DACC_SIM_BACKEND=thread.
class ThreadStrand final : public Process::Strand {
 public:
  explicit ThreadStrand(Process& p) {
    thread_ = std::thread([this, &p] { main(p); });
  }

  ~ThreadStrand() override {
    if (thread_.joinable()) thread_.join();
  }

  void run_slice(Process&) override {
    std::unique_lock lock(mutex_);
    turn_ = Turn::kProcess;
    cv_.notify_all();
    cv_.wait(lock, [&] { return turn_ == Turn::kEngine; });
  }

  void yield_to_engine(Process& p) override {
    std::unique_lock lock(mutex_);
    turn_ = Turn::kEngine;
    cv_.notify_all();
    cv_.wait(lock, [&] { return turn_ == Turn::kProcess; });
    if (is_shutdown_requested(p)) throw Shutdown{};
  }

 private:
  void main(Process& p) {
    // Wait for the engine to hand us the baton for the first time.
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [&] { return turn_ == Turn::kProcess; });
    }
    run_body(p);
    std::unique_lock lock(mutex_);
    turn_ = Turn::kEngine;
    cv_.notify_all();
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  enum class Turn { kEngine, kProcess } turn_ = Turn::kEngine;
  std::thread thread_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Process
// ---------------------------------------------------------------------------

Process::Process(Engine& engine, std::uint64_t id, std::string name,
                 ProcessFn fn)
    : engine_(engine), id_(id), name_(std::move(name)), fn_(std::move(fn)) {
  if (engine.backend() == ExecBackend::kThread) {
    strand_ = std::make_unique<ThreadStrand>(*this);
  } else {
    strand_ = std::make_unique<CoroStrand>(engine.stack_pool_, *this);
  }
}

Process::~Process() = default;

void Process::body_main() {
  if (!shutdown_requested_) {
    started_ = true;
    try {
      Context ctx(engine_, *this);
      fn_(ctx);
    } catch (const Shutdown&) {
      // Normal teardown path for blocked service loops.
    } catch (const std::exception& e) {
      failure_ = e.what();
      engine_.any_failure_ = true;
    } catch (...) {
      failure_ = "unknown exception";
      engine_.any_failure_ = true;
    }
  }
  finished_ = true;
}

void Process::yield_to_engine() { strand_->yield_to_engine(*this); }

void Process::run_slice() { strand_->run_slice(*this); }

// ---------------------------------------------------------------------------
// Context
// ---------------------------------------------------------------------------

SimTime Context::now() const { return engine_.now(); }

const std::string& Context::name() const { return self_.name(); }

void Context::wait_for(SimDuration d) { wait_until(engine_.now() + d); }

void Context::wait_until(SimTime t) {
  if (t <= engine_.now()) return;
  const std::uint64_t id = engine_.prepare_block(self_);
  engine_.schedule_resume(self_, id, t);
  engine_.block(self_);
}

void Context::suspend() {
  Process& p = self_;
  if (p.wake_permits_ > 0) {
    --p.wake_permits_;
    return;
  }
  engine_.prepare_block(p);
  p.waiting_for_wake_ = true;
  engine_.block(p);
  // Woken by Engine::wake(): the permit granted there is consumed here.
  --p.wake_permits_;
}

void Context::yield() {
  const std::uint64_t id = engine_.prepare_block(self_);
  engine_.schedule_resume(self_, id, engine_.now());
  engine_.block(self_);
}

Process& Engine::current_process() {
  if (current_ == nullptr) {
    throw SimError("operation requires process context");
  }
  return *current_;
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

Engine::Engine(ExecBackend backend) : backend_(backend) {}

Engine::~Engine() { shutdown_processes(); }

Process& Engine::spawn(std::string name, ProcessFn fn) {
  auto proc = std::make_unique<Process>(*this, next_process_id_++,
                                        std::move(name), std::move(fn));
  Process& ref = *proc;
  processes_.push_back(std::move(proc));
  // First slice runs as a regular event at the current time.
  schedule_at(now_, [this, &ref] { resume_slice(ref); });
  return ref;
}

void Engine::resume_slice(Process& p) {
  Process* prev = current_;
  current_ = &p;
  ++process_switches_;
  p.run_slice();
  current_ = prev;
}

std::uint64_t Engine::prepare_block(Process& p) {
  if (current_ != &p) {
    throw SimError("blocking primitive called outside process context");
  }
  p.current_wait_ = ++p.wait_seq_;
  return p.current_wait_;
}

void Engine::block(Process& p) {
  Process* prev = current_;
  p.yield_to_engine();  // returns when a matching resume hands the baton back
  current_ = prev;
  p.current_wait_ = 0;
}

void Engine::schedule_resume(Process& p, std::uint64_t wait_id, SimTime t) {
  schedule_at(t, [this, &p, wait_id] {
    // Stale resumes (process already moved on, or finished) are dropped.
    if (p.finished_ || p.current_wait_ != wait_id) return;
    resume_slice(p);
  });
}

void Engine::wake(Process& p) {
  ++p.wake_permits_;
  if (p.waiting_for_wake_) {
    p.waiting_for_wake_ = false;
    schedule_resume(p, p.current_wait_, now_);
  }
}

void Engine::set_daemon(Process& p) { daemons_.push_back(&p); }

void Engine::run() {
  running_ = true;
  while (!queue_.empty()) {
    EventQueue::Node* ev = queue_.pop();
    now_ = ev->time;
    ++events_executed_;
    queue_.run_and_recycle(ev);
    if (any_failure_) [[unlikely]] {
      rethrow_failure();
    }
  }
  running_ = false;
  check_quiescence();
}

bool Engine::run_until(SimTime t) {
  running_ = true;
  while (!queue_.empty() && queue_.top_time() <= t) {
    EventQueue::Node* ev = queue_.pop();
    now_ = ev->time;
    ++events_executed_;
    queue_.run_and_recycle(ev);
  }
  running_ = false;
  if (queue_.empty() && now_ < t) now_ = t;
  return !queue_.empty();
}

void Engine::rethrow_failure() {
  any_failure_ = false;
  for (const auto& proc : processes_) {
    if (proc->failure_.empty()) continue;
    std::ostringstream os;
    os << "process '" << proc->name_ << "' failed: " << proc->failure_;
    proc->failure_.clear();
    running_ = false;
    throw SimError(os.str());
  }
  throw SimError("process failure flag set without a stored failure");
}

void Engine::check_quiescence() {
  for (const auto& proc : processes_) {
    if (proc->finished_) continue;
    bool is_daemon = false;
    for (Process* d : daemons_) {
      if (d == proc.get()) {
        is_daemon = true;
        break;
      }
    }
    if (!is_daemon) {
      throw SimError("deadlock: process '" + proc->name_ +
                     "' is blocked with no pending events");
    }
  }
}

void Engine::shutdown_processes() {
  shutting_down_ = true;
  for (const auto& proc : processes_) {
    if (proc->finished_) continue;
    proc->shutdown_requested_ = true;
    // Hand the baton once; the process throws Shutdown and unwinds.
    proc->run_slice();
  }
}

}  // namespace dacc::sim
