// Execution tracing.
//
// When a Tracer is attached to the engine, instrumented components (the
// back-end daemons, the front-end proxies) record spans of simulated time.
// The result can be dumped in the Chrome trace-event format
// (chrome://tracing, Perfetto) to see request pipelines, transfer overlap,
// and device occupancy on a timeline — the kind of observability a
// production middleware ships with.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace dacc::sim {

class Tracer {
 public:
  struct Span {
    std::string track;  ///< timeline row, e.g. "daemon-ac0"
    std::string name;   ///< event label, e.g. "MemcpyHtoD 64MiB"
    SimTime begin = 0;
    SimTime end = 0;
  };

  /// Records one completed span (begin <= end, simulated nanoseconds).
  void record(std::string track, std::string name, SimTime begin,
              SimTime end);

  std::size_t size() const { return spans_.size(); }
  bool empty() const { return spans_.empty(); }
  const std::vector<Span>& spans() const { return spans_; }
  void clear() { spans_.clear(); }

  /// Spans recorded on one track, in recording order.
  std::vector<Span> track(const std::string& name) const;

  /// Chrome trace-event JSON ("traceEvents" with X phases; ts/dur in
  /// microseconds of simulated time, one tid per track).
  void write_chrome_json(std::ostream& os) const;

 private:
  std::vector<Span> spans_;
};

}  // namespace dacc::sim
