// Execution tracing.
//
// When a Tracer is attached to the engine, instrumented components (the
// back-end daemons, the front-end proxies) record spans of simulated time.
// The result can be dumped in the Chrome trace-event format
// (chrome://tracing, Perfetto) to see request pipelines, transfer overlap,
// and device occupancy on a timeline — the kind of observability a
// production middleware ships with.
//
// Under the parallel execution backend, spans are recorded concurrently by
// the shard workers. Each record is tagged with the canonical key of the
// event that emitted it (time, source-node ord, intra-event index) and
// buffered per shard; the engine merges the buffers in canonical order at
// the end of each run, so the final span list is byte-identical to what the
// sequential backends append directly.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace dacc::sim {

class Engine;

class Tracer {
 public:
  struct Span {
    std::string track;  ///< timeline row, e.g. "daemon-ac0"
    std::string name;   ///< event label, e.g. "MemcpyHtoD 64MiB"
    SimTime begin = 0;
    SimTime end = 0;
    // Causal identity (0 = not part of a trace). A front-end API call mints
    // a trace id and a root span id; spans recorded further down the request
    // path (NIC transfers, daemon execution) carry the same trace id and
    // name their parent, which the Chrome export turns into flow arrows.
    std::uint64_t trace_id = 0;
    std::uint64_t span_id = 0;
    std::uint64_t parent_id = 0;
  };

  /// Records one completed span (begin <= end, simulated nanoseconds).
  void record(std::string track, std::string name, SimTime begin,
              SimTime end);

  /// Records a span with causal identity; the Chrome export draws a flow
  /// arrow from the parent span to this one.
  void record(std::string track, std::string name, SimTime begin, SimTime end,
              std::uint64_t trace_id, std::uint64_t span_id,
              std::uint64_t parent_id);

  std::size_t size() const { return spans_.size(); }
  bool empty() const { return spans_.empty(); }
  const std::vector<Span>& spans() const { return spans_; }
  void clear() {
    spans_.clear();
    pending_.clear();
  }

  /// Spans recorded on one track, in recording order.
  std::vector<Span> track(const std::string& name) const;

  /// Chrome trace-event JSON ("traceEvents" with X phases; ts/dur in
  /// microseconds of simulated time, one tid per track). Spans with causal
  /// identity additionally carry their ids in args and are stitched to
  /// their parents with flow events (ph "s"/"f"), which Perfetto renders as
  /// clickable arrows across tracks.
  void write_chrome_json(std::ostream& os) const;

 private:
  friend class Engine;

  struct Tagged {
    Span span;
    SimTime time = 0;        ///< emitting event's time
    std::uint64_t ord = 0;   ///< emitting event's canonical key
    std::uint32_t seq = 0;   ///< record index within that event
  };

  /// Engine hooks (see Engine::set_tracer / parallel_trace_key).
  void attach(Engine* engine) { engine_ = engine; }
  void begin_parallel(int buffers);
  void merge_parallel();

  Engine* engine_ = nullptr;
  std::vector<Span> spans_;
  std::vector<std::vector<Tagged>> pending_;  // one per shard + global band
};

}  // namespace dacc::sim
