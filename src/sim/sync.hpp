// Synchronization primitives for simulated processes, built on the engine's
// suspend()/wake() permits. All of these may only be used from process
// context (they block the calling process, never the engine).
#pragma once

#include <cstddef>
#include <deque>
#include <optional>

#include "sim/engine.hpp"

namespace dacc::sim {

/// FIFO queue of processes waiting for a notification.
class WaitQueue {
 public:
  explicit WaitQueue(Engine& engine) : engine_(engine) {}

  /// Blocks the calling process until notified. May return spuriously (if a
  /// wake permit was banked elsewhere), so callers must re-check their
  /// condition in a loop; a spurious return never leaves a stale entry here.
  void wait(Context& ctx) {
    Process* self = &ctx.self();
    waiters_.push_back(self);
    ctx.suspend();
    // If we were woken by an unrelated permit, our entry is still queued;
    // remove it so notify_one never wakes a process that has moved on.
    for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
      if (*it == self) {
        waiters_.erase(it);
        break;
      }
    }
  }

  /// Wakes the longest-waiting process, if any. Safe from any sim context.
  void notify_one() {
    if (waiters_.empty()) return;
    Process* p = waiters_.front();
    waiters_.pop_front();
    engine_.wake(*p);
  }

  void notify_all() {
    while (!waiters_.empty()) notify_one();
  }

  std::size_t waiting() const { return waiters_.size(); }

 private:
  Engine& engine_;
  std::deque<Process*> waiters_;
};

/// Counting semaphore for simulated processes.
class Semaphore {
 public:
  Semaphore(Engine& engine, std::size_t initial)
      : count_(initial), waiters_(engine) {}

  void acquire(Context& ctx) {
    while (count_ == 0) waiters_.wait(ctx);
    --count_;
  }

  bool try_acquire() {
    if (count_ == 0) return false;
    --count_;
    return true;
  }

  void release() {
    ++count_;
    waiters_.notify_one();
  }

  std::size_t available() const { return count_; }

 private:
  std::size_t count_;
  WaitQueue waiters_;
};

/// Unbounded typed mailbox: the basic inter-process communication channel.
/// Delivery is instantaneous (timing is modelled by the network layer, not
/// here); receive order is FIFO.
template <typename T>
class Mailbox {
 public:
  explicit Mailbox(Engine& engine) : waiters_(engine) {}

  /// Deposits a message; wakes one waiting receiver. Any sim context.
  void put(T msg) {
    queue_.push_back(std::move(msg));
    waiters_.notify_one();
  }

  /// Blocks until a message is available, then removes and returns it.
  T get(Context& ctx) {
    while (queue_.empty()) waiters_.wait(ctx);
    T msg = std::move(queue_.front());
    queue_.pop_front();
    return msg;
  }

  /// Non-blocking receive.
  std::optional<T> try_get() {
    if (queue_.empty()) return std::nullopt;
    T msg = std::move(queue_.front());
    queue_.pop_front();
    return msg;
  }

  bool empty() const { return queue_.empty(); }
  std::size_t size() const { return queue_.size(); }

 private:
  std::deque<T> queue_;
  WaitQueue waiters_;
};

/// One-shot completion flag: a producer completes it once; any number of
/// consumers may wait for it.
class Completion {
 public:
  explicit Completion(Engine& engine) : waiters_(engine) {}

  void complete() {
    done_ = true;
    waiters_.notify_all();
  }

  void wait(Context& ctx) {
    while (!done_) waiters_.wait(ctx);
  }

  bool done() const { return done_; }

 private:
  bool done_ = false;
  WaitQueue waiters_;
};

}  // namespace dacc::sim
