#include "sim/trace.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "sim/engine.hpp"

namespace dacc::sim {

void Tracer::record(std::string track, std::string name, SimTime begin,
                    SimTime end) {
  record(std::move(track), std::move(name), begin, end, 0, 0, 0);
}

void Tracer::record(std::string track, std::string name, SimTime begin,
                    SimTime end, std::uint64_t trace_id, std::uint64_t span_id,
                    std::uint64_t parent_id) {
  if (end < begin) throw std::invalid_argument("Tracer: span ends early");
  if (engine_ != nullptr && !pending_.empty()) {
    SimTime t = 0;
    std::uint64_t ord = 0;
    std::uint32_t seq = 0;
    int buffer = 0;
    if (engine_->parallel_trace_key(&t, &ord, &seq, &buffer)) {
      pending_[static_cast<std::size_t>(buffer)].push_back(
          Tagged{Span{std::move(track), std::move(name), begin, end, trace_id,
                      span_id, parent_id},
                 t, ord, seq});
      return;
    }
  }
  spans_.push_back(Span{std::move(track), std::move(name), begin, end,
                        trace_id, span_id, parent_id});
}

void Tracer::begin_parallel(int buffers) {
  pending_.resize(static_cast<std::size_t>(buffers));
}

void Tracer::merge_parallel() {
  std::size_t n = 0;
  for (const auto& buf : pending_) n += buf.size();
  if (n == 0) {
    pending_.clear();
    return;
  }
  std::vector<Tagged> all;
  all.reserve(n);
  for (auto& buf : pending_) {
    for (auto& t : buf) all.push_back(std::move(t));
    buf.clear();
  }
  pending_.clear();
  // Canonical order: the emitting event's (time, ord), then emission order
  // within the event — exactly the order a sequential run appends in.
  std::sort(all.begin(), all.end(), [](const Tagged& a, const Tagged& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.ord != b.ord) return a.ord < b.ord;
    return a.seq < b.seq;
  });
  spans_.reserve(spans_.size() + all.size());
  for (auto& t : all) spans_.push_back(std::move(t.span));
}

std::vector<Tracer::Span> Tracer::track(const std::string& name) const {
  std::vector<Span> out;
  for (const Span& s : spans_) {
    if (s.track == name) out.push_back(s);
  }
  return out;
}

namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        // Remaining control bytes are only legal in JSON as \u escapes.
        if (u < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          os << "\\u00" << kHex[u >> 4] << kHex[u & 0xf];
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

void Tracer::write_chrome_json(std::ostream& os) const {
  // Stable tid per track, in order of first appearance.
  std::map<std::string, int> tids;
  for (const Span& s : spans_) {
    tids.emplace(s.track, static_cast<int>(tids.size()));
  }
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& [track, tid] : tids) {
    if (!first) os << ",";
    first = false;
    os << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    write_escaped(os, track);
    os << "\"}}";
  }
  for (const Span& s : spans_) {
    os << ",{\"ph\":\"X\",\"pid\":0,\"tid\":" << tids[s.track]
       << ",\"ts\":" << static_cast<double>(s.begin) / 1000.0
       << ",\"dur\":" << static_cast<double>(s.end - s.begin) / 1000.0
       << ",\"name\":\"";
    write_escaped(os, s.name);
    os << "\"";
    if (s.trace_id != 0) {
      os << ",\"args\":{\"trace\":" << s.trace_id << ",\"span\":" << s.span_id
         << ",\"parent\":" << s.parent_id << "}";
    }
    os << "}";
  }
  // Flow arrows: one s/f pair per child span whose parent was recorded. The
  // "s" binds to the parent slice (same tid, ts inside it); the "f" with
  // bp:"e" binds to the start of the child slice.
  std::map<std::uint64_t, const Span*> by_id;
  for (const Span& s : spans_) {
    if (s.span_id != 0) by_id.emplace(s.span_id, &s);
  }
  for (const Span& s : spans_) {
    if (s.parent_id == 0) continue;
    const auto parent = by_id.find(s.parent_id);
    if (parent == by_id.end()) continue;
    const Span& p = *parent->second;
    os << ",{\"ph\":\"s\",\"cat\":\"flow\",\"name\":\"req\",\"id\":"
       << s.span_id << ",\"pid\":0,\"tid\":" << tids[p.track]
       << ",\"ts\":" << static_cast<double>(p.begin) / 1000.0 << "}";
    os << ",{\"ph\":\"f\",\"bp\":\"e\",\"cat\":\"flow\",\"name\":\"req\","
          "\"id\":"
       << s.span_id << ",\"pid\":0,\"tid\":" << tids[s.track]
       << ",\"ts\":" << static_cast<double>(s.begin) / 1000.0 << "}";
  }
  os << "]}\n";
}

}  // namespace dacc::sim
