#include "sim/trace.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "sim/engine.hpp"

namespace dacc::sim {

void Tracer::record(std::string track, std::string name, SimTime begin,
                    SimTime end) {
  if (end < begin) throw std::invalid_argument("Tracer: span ends early");
  if (engine_ != nullptr && !pending_.empty()) {
    SimTime t = 0;
    std::uint64_t ord = 0;
    std::uint32_t seq = 0;
    int buffer = 0;
    if (engine_->parallel_trace_key(&t, &ord, &seq, &buffer)) {
      pending_[static_cast<std::size_t>(buffer)].push_back(
          Tagged{Span{std::move(track), std::move(name), begin, end}, t, ord,
                 seq});
      return;
    }
  }
  spans_.push_back(Span{std::move(track), std::move(name), begin, end});
}

void Tracer::begin_parallel(int buffers) {
  pending_.resize(static_cast<std::size_t>(buffers));
}

void Tracer::merge_parallel() {
  std::size_t n = 0;
  for (const auto& buf : pending_) n += buf.size();
  if (n == 0) {
    pending_.clear();
    return;
  }
  std::vector<Tagged> all;
  all.reserve(n);
  for (auto& buf : pending_) {
    for (auto& t : buf) all.push_back(std::move(t));
    buf.clear();
  }
  pending_.clear();
  // Canonical order: the emitting event's (time, ord), then emission order
  // within the event — exactly the order a sequential run appends in.
  std::sort(all.begin(), all.end(), [](const Tagged& a, const Tagged& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.ord != b.ord) return a.ord < b.ord;
    return a.seq < b.seq;
  });
  spans_.reserve(spans_.size() + all.size());
  for (auto& t : all) spans_.push_back(std::move(t.span));
}

std::vector<Tracer::Span> Tracer::track(const std::string& name) const {
  std::vector<Span> out;
  for (const Span& s : spans_) {
    if (s.track == name) out.push_back(s);
  }
  return out;
}

namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

}  // namespace

void Tracer::write_chrome_json(std::ostream& os) const {
  // Stable tid per track, in order of first appearance.
  std::map<std::string, int> tids;
  for (const Span& s : spans_) {
    tids.emplace(s.track, static_cast<int>(tids.size()));
  }
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& [track, tid] : tids) {
    if (!first) os << ",";
    first = false;
    os << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    write_escaped(os, track);
    os << "\"}}";
  }
  for (const Span& s : spans_) {
    os << ",{\"ph\":\"X\",\"pid\":0,\"tid\":" << tids[s.track]
       << ",\"ts\":" << static_cast<double>(s.begin) / 1000.0
       << ",\"dur\":" << static_cast<double>(s.end - s.begin) / 1000.0
       << ",\"name\":\"";
    write_escaped(os, s.name);
    os << "\"}";
  }
  os << "]}\n";
}

}  // namespace dacc::sim
