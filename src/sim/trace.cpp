#include "sim/trace.hpp"

#include <ostream>
#include <stdexcept>

namespace dacc::sim {

void Tracer::record(std::string track, std::string name, SimTime begin,
                    SimTime end) {
  if (end < begin) throw std::invalid_argument("Tracer: span ends early");
  spans_.push_back(Span{std::move(track), std::move(name), begin, end});
}

std::vector<Tracer::Span> Tracer::track(const std::string& name) const {
  std::vector<Span> out;
  for (const Span& s : spans_) {
    if (s.track == name) out.push_back(s);
  }
  return out;
}

namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

}  // namespace

void Tracer::write_chrome_json(std::ostream& os) const {
  // Stable tid per track, in order of first appearance.
  std::map<std::string, int> tids;
  for (const Span& s : spans_) {
    tids.emplace(s.track, static_cast<int>(tids.size()));
  }
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& [track, tid] : tids) {
    if (!first) os << ",";
    first = false;
    os << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    write_escaped(os, track);
    os << "\"}}";
  }
  for (const Span& s : spans_) {
    os << ",{\"ph\":\"X\",\"pid\":0,\"tid\":" << tids[s.track]
       << ",\"ts\":" << static_cast<double>(s.begin) / 1000.0
       << ",\"dur\":" << static_cast<double>(s.end - s.begin) / 1000.0
       << ",\"name\":\"";
    write_escaped(os, s.name);
    os << "\"}";
  }
  os << "]}\n";
}

}  // namespace dacc::sim
