// Analytic serialized resources.
//
// Timing-relevant hardware that serves one operation at a time — a NIC port,
// a DMA engine, a GPU's compute pipeline — is modelled as a SerialResource:
// each operation occupies the resource for a computed busy time, operations
// queue in FIFO order, and the completion time is derived analytically
// (start = max(now, next_free)) without extra simulation events. Contention
// between flows sharing a port falls out of this model naturally.
#pragma once

#include <cstdint>

#include "util/units.hpp"

namespace dacc::sim {

class SerialResource {
 public:
  struct Interval {
    SimTime start;
    SimTime end;
  };

  /// Reserves the resource for `busy` ns, starting no earlier than
  /// `earliest`. Returns the actual [start, end) interval and advances the
  /// resource's schedule.
  Interval occupy(SimTime earliest, SimDuration busy) {
    const SimTime start = earliest > next_free_ ? earliest : next_free_;
    next_free_ = start + busy;
    busy_total_ += busy;
    ++operations_;
    return {start, next_free_};
  }

  /// Time at which the resource next becomes idle.
  SimTime next_free() const { return next_free_; }

  /// Total busy time accumulated (for utilization reporting).
  SimDuration busy_total() const { return busy_total_; }
  std::uint64_t operations() const { return operations_; }

  void reset() {
    next_free_ = 0;
    busy_total_ = 0;
    operations_ = 0;
  }

 private:
  SimTime next_free_ = 0;
  SimDuration busy_total_ = 0;
  std::uint64_t operations_ = 0;
};

}  // namespace dacc::sim
