#include "sim/exec.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace dacc::sim {
namespace {

int hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// True if DACC_SIM_BACKEND requests the parallel backend; *shards receives
/// the explicit :N suffix (0 when absent or malformed).
bool parse_parallel_env(const char* env, int* shards) {
  if (std::strncmp(env, "parallel", 8) != 0 ||
      (env[8] != '\0' && env[8] != ':')) {
    return false;
  }
  *shards = 0;
  if (env[8] == ':') {
    char* end = nullptr;
    const long n = std::strtol(env + 9, &end, 10);
    if (end != nullptr && *end == '\0' && n > 0 && n <= 4096) {
      *shards = static_cast<int>(n);
    } else {
      std::fprintf(stderr,
                   "dacc: ignoring shard count in DACC_SIM_BACKEND='%s' "
                   "(expected parallel:<1..4096>)\n",
                   env);
    }
  }
  if (*shards == 0) *shards = hardware_threads();
  return true;
}

}  // namespace

const char* to_string(ExecBackend backend) {
  switch (backend) {
    case ExecBackend::kCoroutine:
      return "coroutine";
    case ExecBackend::kThread:
      return "thread";
    case ExecBackend::kParallel:
      return "parallel";
  }
  return "unknown";
}

ExecBackend default_exec_backend() {
  if (const char* env = std::getenv("DACC_SIM_BACKEND")) {
    if (std::strcmp(env, "thread") == 0) return ExecBackend::kThread;
    if (std::strcmp(env, "coroutine") == 0) {
#if defined(DACC_SIM_FORCE_THREAD_BACKEND)
      // Sanitizer builds cannot track hand-switched stacks; honour the
      // build-time pin rather than crash under the instrumented runtime.
      return ExecBackend::kThread;
#else
      return ExecBackend::kCoroutine;
#endif
    }
    int shards = 0;
    if (parse_parallel_env(env, &shards)) return ExecBackend::kParallel;
    std::fprintf(stderr,
                 "dacc: ignoring DACC_SIM_BACKEND='%s' "
                 "(expected 'coroutine', 'thread', or 'parallel[:N]')\n",
                 env);
  }
#if defined(DACC_SIM_FORCE_THREAD_BACKEND)
  return ExecBackend::kThread;
#else
  return ExecBackend::kCoroutine;
#endif
}

int default_parallel_shards() {
  if (const char* env = std::getenv("DACC_SIM_BACKEND")) {
    int shards = 0;
    if (parse_parallel_env(env, &shards)) return shards;
  }
  return 0;
}

int default_auto_shard_cap() {
  return std::max(16, 2 * hardware_threads());
}

std::vector<int> parse_shard_map_env(int nodes, int shards) {
  const char* env = std::getenv("DACC_SIM_SHARD_MAP");
  if (env == nullptr || *env == '\0') return {};
  std::vector<int> map;
  map.reserve(static_cast<std::size_t>(nodes));
  const char* p = env;
  for (;;) {
    char* end = nullptr;
    const long s = std::strtol(p, &end, 10);
    if (end == p || s < 0 || s >= shards) break;
    map.push_back(static_cast<int>(s));
    if (*end == '\0') {
      if (static_cast<int>(map.size()) == nodes) return map;
      break;
    }
    if (*end != ',') break;
    p = end + 1;
  }
  std::fprintf(stderr,
               "dacc: ignoring DACC_SIM_SHARD_MAP (expected %d "
               "comma-separated shard ids in 0..%d)\n",
               nodes, shards - 1);
  return {};
}

int default_parallel_workers() {
  if (const char* env = std::getenv("DACC_SIM_PARALLEL_WORKERS")) {
    char* end = nullptr;
    const long n = std::strtol(env, &end, 10);
    if (end != nullptr && *end == '\0' && n > 0 && n <= 4096) {
      return static_cast<int>(n);
    }
    std::fprintf(stderr,
                 "dacc: ignoring DACC_SIM_PARALLEL_WORKERS='%s' "
                 "(expected 1..4096)\n",
                 env);
  }
  return hardware_threads();
}

}  // namespace dacc::sim
