#include "sim/exec.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dacc::sim {

const char* to_string(ExecBackend backend) {
  switch (backend) {
    case ExecBackend::kCoroutine:
      return "coroutine";
    case ExecBackend::kThread:
      return "thread";
  }
  return "unknown";
}

ExecBackend default_exec_backend() {
  if (const char* env = std::getenv("DACC_SIM_BACKEND")) {
    if (std::strcmp(env, "thread") == 0) return ExecBackend::kThread;
    if (std::strcmp(env, "coroutine") == 0) return ExecBackend::kCoroutine;
    std::fprintf(stderr,
                 "dacc: ignoring DACC_SIM_BACKEND='%s' "
                 "(expected 'coroutine' or 'thread')\n",
                 env);
  }
#if defined(DACC_SIM_FORCE_THREAD_BACKEND)
  return ExecBackend::kThread;
#else
  return ExecBackend::kCoroutine;
#endif
}

}  // namespace dacc::sim
