// Execution backend selection for the simulation engine.
//
// Simulated processes are synchronous C++ functions that must be suspended
// and resumed at blocking points. Three interchangeable backends implement
// that suspension; all execute the exact same canonical event order, so
// simulated results are bit-for-bit identical either way:
//
//  * kCoroutine — stackful coroutines (ucontext swapcontext on a pooled,
//                 guard-paged stack). No OS scheduler involvement: a process
//                 switch is two user-space context swaps, which is what makes
//                 paper-scale sweeps wall-clock fast. The default.
//  * kThread    — one OS thread per process with mutex/condvar baton passing
//                 (the original engine). ~an order of magnitude slower per
//                 switch, but friendly to sanitizers and debuggers that do
//                 not understand stack switching. Forced as the default by
//                 building with -DDACC_SANITIZE=....
//  * kParallel  — conservative parallel discrete-event execution: simulated
//                 processes and resources are partitioned by cluster node
//                 into per-shard event queues, shards run on a worker pool
//                 in barrier-synchronized windows whose width is the minimum
//                 cross-node link latency (the lookahead), and cross-shard
//                 effects travel through staged inboxes merged in canonical
//                 (time, src-node, seq) order. Requires node-homed processes
//                 (rt::Cluster homes everything); see DESIGN.md §5.2.
#pragma once

#include <vector>

namespace dacc::sim {

enum class ExecBackend {
  kCoroutine,
  kThread,
  kParallel,
};

const char* to_string(ExecBackend backend);

/// The backend new Engines use unless one is passed explicitly: kCoroutine,
/// unless the build forces the thread backend (sanitizer builds define
/// DACC_SIM_FORCE_THREAD_BACKEND) or the environment variable
/// DACC_SIM_BACKEND is set to "thread", "coroutine", or "parallel[:N]"
/// (N = shard count, defaulting to the host's hardware concurrency).
ExecBackend default_exec_backend();

/// Shard count requested via DACC_SIM_BACKEND: N for "parallel:N", the
/// host's hardware concurrency for plain "parallel", 0 otherwise (0 lets
/// the engine pick one shard per cluster node). Meaningful only with
/// kParallel.
int default_parallel_shards();

/// Worker threads the parallel backend drives shards with: the
/// DACC_SIM_PARALLEL_WORKERS environment variable when set, otherwise the
/// host's hardware concurrency. Always at least 1; capped by the shard
/// count at run time.
int default_parallel_workers();

/// Upper bound on the auto-selected shard count (shard hint 0): a small
/// multiple of the host's worker pool, never below 16. More shards than
/// this only add horizon-scan and queue overhead — a 10k-node topology
/// does not want 10k shards. Placement never affects simulated results.
int default_auto_shard_cap();

/// Parses the DACC_SIM_SHARD_MAP environment variable: a comma-separated
/// node -> shard assignment ("0,0,1,1,..."), which must list exactly
/// `nodes` entries each in [0, shards). Returns the map, or an empty
/// vector (with a stderr warning) when the variable is unset or invalid.
std::vector<int> parse_shard_map_env(int nodes, int shards);

}  // namespace dacc::sim
