// Execution backend selection for the simulation engine.
//
// Simulated processes are synchronous C++ functions that must be suspended
// and resumed at blocking points. Two interchangeable backends implement
// that suspension; both execute the exact same event sequence, so simulated
// results are bit-for-bit identical either way:
//
//  * kCoroutine — stackful coroutines (ucontext swapcontext on a pooled,
//                 guard-paged stack). No OS scheduler involvement: a process
//                 switch is two user-space context swaps, which is what makes
//                 paper-scale sweeps wall-clock fast. The default.
//  * kThread    — one OS thread per process with mutex/condvar baton passing
//                 (the original engine). ~an order of magnitude slower per
//                 switch, but friendly to sanitizers and debuggers that do
//                 not understand stack switching. Forced as the default by
//                 building with -DDACC_SANITIZE=....
#pragma once

namespace dacc::sim {

enum class ExecBackend {
  kCoroutine,
  kThread,
};

const char* to_string(ExecBackend backend);

/// The backend new Engines use unless one is passed explicitly: kCoroutine,
/// unless the build forces the thread backend (sanitizer builds define
/// DACC_SIM_FORCE_THREAD_BACKEND) or the environment variable
/// DACC_SIM_BACKEND is set to "thread" or "coroutine".
ExecBackend default_exec_backend();

}  // namespace dacc::sim
