// Host BLAS-lite: the handful of double-precision routines the hybrid
// factorizations and the GPU kernel executors need, in LAPACK's column-major
// convention with raw pointers and leading dimensions. Reference-quality
// (clear rather than fast); the simulated time of GPU work comes from cost
// models, not from how long these take on the host.
#pragma once

namespace dacc::la {

enum class Trans { kNo, kYes };
enum class Side { kLeft, kRight };
enum class UpLo { kLower, kUpper };
enum class Diag { kNonUnit, kUnit };

/// C := alpha * op(A) * op(B) + beta * C, with op per `ta`/`tb`.
/// C is m x n; op(A) is m x k; op(B) is k x n.
void dgemm(Trans ta, Trans tb, int m, int n, int k, double alpha,
           const double* a, int lda, const double* b, int ldb, double beta,
           double* c, int ldc);

/// B := alpha * B * op(A)^-1 (side=right) or alpha * op(A)^-1 * B (left),
/// A triangular per uplo/diag. B is m x n.
void dtrsm(Side side, UpLo uplo, Trans ta, Diag diag, int m, int n,
           double alpha, const double* a, int lda, double* b, int ldb);

/// C := alpha * A * A^T + beta * C (trans=no) over the `uplo` triangle of
/// the n x n matrix C; A is n x k.
void dsyrk(UpLo uplo, Trans trans, int n, int k, double alpha,
           const double* a, int lda, double beta, double* c, int ldc);

/// y := alpha * op(A) * x + beta * y.
void dgemv(Trans ta, int m, int n, double alpha, const double* a, int lda,
           const double* x, double beta, double* y);

/// A := A + alpha * x * y^T (A m x n).
void dger(int m, int n, double alpha, const double* x, const double* y,
          double* a, int lda);

double ddot(int n, const double* x, const double* y);
void dscal(int n, double alpha, double* x);
void daxpy(int n, double alpha, const double* x, double* y);
double dnrm2(int n, const double* x);

}  // namespace dacc::la
