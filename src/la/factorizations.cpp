#include "la/factorizations.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "la/dist.hpp"
#include "la/lapack.hpp"

namespace dacc::la {

namespace {

constexpr std::uint64_t kDouble = sizeof(double);

/// Uploads the host matrix block-cyclically; returns one device matrix
/// (ld = a.m(), owned columns contiguous) per GPU.
std::vector<gpu::DevPtr> distribute(std::span<Gpu* const> gpus,
                                    const HostMatrix& a,
                                    const BlockCyclic& dist) {
  const int m = a.m();
  std::vector<gpu::DevPtr> d_a(gpus.size());
  for (std::size_t me = 0; me < gpus.size(); ++me) {
    const int cols = dist.local_cols(static_cast<int>(me));
    d_a[me] = gpus[me]->alloc(
        std::max<std::uint64_t>(1, static_cast<std::uint64_t>(m) * cols) *
        kDouble);
  }
  for (int b = 0; b < dist.nblocks(); ++b) {
    const int me = dist.owner(b);
    const int cb = dist.block_width(b);
    gpus[static_cast<std::size_t>(me)]->h2d(
        d_a[static_cast<std::size_t>(me)] +
            static_cast<std::uint64_t>(dist.local_col(b)) * m * kDouble,
        a.pack(0, dist.block_col(b), m, cb));
  }
  return d_a;
}

/// Downloads every GPU's columns back into the host matrix.
void collect(std::span<Gpu* const> gpus, const std::vector<gpu::DevPtr>& d_a,
             HostMatrix& a, const BlockCyclic& dist) {
  const int m = a.m();
  for (std::size_t me = 0; me < gpus.size(); ++me) {
    const int cols = dist.local_cols(static_cast<int>(me));
    if (cols == 0) continue;
    util::Buffer local = gpus[me]->d2h(
        d_a[me], static_cast<std::uint64_t>(m) * cols * kDouble);
    for (int b = static_cast<int>(me); b < dist.nblocks();
         b += dist.g) {
      const int cb = dist.block_width(b);
      a.unpack(0, dist.block_col(b), m, cb,
               local.slice(static_cast<std::uint64_t>(dist.local_col(b)) * m *
                               kDouble,
                           static_cast<std::uint64_t>(m) * cb * kDouble));
    }
  }
}

/// Stream barrier on every GPU (a 1-element download).
void fence(std::span<Gpu* const> gpus, const std::vector<gpu::DevPtr>& d_a) {
  for (std::size_t me = 0; me < gpus.size(); ++me) {
    (void)gpus[me]->d2h(d_a[me], kDouble);
  }
}

}  // namespace

FactorResult dgeqrf_hybrid(sim::Context& ctx, std::span<Gpu* const> gpus,
                           HostMatrix& a, int nb, const LaParams& params,
                           std::vector<double>* tau_out) {
  if (gpus.empty()) throw std::invalid_argument("dgeqrf_hybrid: no GPUs");
  const int m = a.m();
  const int n = a.n();
  const int g = static_cast<int>(gpus.size());
  const int k = std::min(m, n);
  const BlockCyclic dist(n, nb, g);
  const bool functional = a.functional();

  std::vector<gpu::DevPtr> d_a = distribute(gpus, a, dist);
  // Per-GPU scratch: [V (m x nb) | T (nb x nb)] plus a panel-pack area.
  std::vector<gpu::DevPtr> d_vt(gpus.size());
  std::vector<gpu::DevPtr> d_panel(gpus.size());
  const std::uint64_t vt_bytes =
      (static_cast<std::uint64_t>(m) * nb + static_cast<std::uint64_t>(nb) * nb) *
      kDouble;
  for (std::size_t me = 0; me < gpus.size(); ++me) {
    d_vt[me] = gpus[me]->alloc(vt_bytes);
    d_panel[me] = gpus[me]->alloc(static_cast<std::uint64_t>(m) * nb * kDouble);
  }

  std::vector<double> tau(static_cast<std::size_t>(k), 0.0);
  std::vector<double> t_factor(static_cast<std::size_t>(nb) * nb, 0.0);
  std::vector<double> v_dense;

  // Look-ahead bookkeeping: per GPU, a deferred bulk-update launch that must
  // be issued after the next panel has been packed and downloaded.
  struct Deferred {
    bool pending = false;
    gpu::KernelArgs args;
  };
  std::vector<Deferred> deferred(gpus.size());
  auto flush_deferred = [&](std::size_t me) {
    if (!deferred[me].pending) return;
    gpus[me]->launch("la_dlarfb", deferred[me].args);
    deferred[me].pending = false;
  };

  const SimTime t0 = ctx.now();
  for (int j = 0; j < k; j += nb) {
    const int jb = std::min(nb, k - j);
    const int rows = m - j;
    const int b = j / nb;
    const auto o = static_cast<std::size_t>(dist.owner(b));
    Gpu& owner = *gpus[o];

    // 1. Pack + download the panel from its owner. With look-ahead the
    //    owner's stream holds only the (small) next-panel update at this
    //    point, so the download is not stuck behind the bulk update.
    owner.launch("la_pack",
                 {std::int64_t{rows}, std::int64_t{jb},
                  d_a[o] + (static_cast<std::uint64_t>(dist.local_col(b)) * m +
                            std::uint64_t(j)) *
                               kDouble,
                  std::int64_t{m}, d_panel[o]});
    util::Buffer panel =
        owner.d2h(d_panel[o],
                  static_cast<std::uint64_t>(rows) * jb * kDouble);
    // The previous iteration's deferred bulk update now runs while the CPU
    // factors this panel (it still reads the previous V|T, which is only
    // overwritten by an h2d queued after it).
    flush_deferred(o);

    // 2. Factor the panel on the CPU (dgeqr2 + dlarft); build [V | T].
    util::Buffer vt;
    if (functional) {
      double* p = panel.as_mutable<double>().data();
      dgeqr2(rows, jb, p, rows, tau.data() + j);
      dlarft(rows, jb, p, rows, tau.data() + j, t_factor.data(), nb);
      vt = util::Buffer::backed_zero(
          (static_cast<std::uint64_t>(rows) * jb +
           static_cast<std::uint64_t>(jb) * jb) *
          kDouble);
      auto vt_d = vt.as_mutable<double>();
      materialize_v(rows, jb, p, rows, vt_d.data());
      for (int c = 0; c < jb; ++c) {
        std::memcpy(vt_d.data() + static_cast<std::size_t>(rows) * jb +
                        static_cast<std::size_t>(c) * jb,
                    t_factor.data() + static_cast<std::size_t>(c) * nb,
                    static_cast<std::size_t>(jb) * kDouble);
      }
    } else {
      vt = util::Buffer::phantom((static_cast<std::uint64_t>(rows) * jb +
                                  static_cast<std::uint64_t>(jb) * jb) *
                                 kDouble);
    }
    // Panel factorization cost: dgeqr2 (2 m nb^2) + dlarft (~m nb^2).
    const double panel_flops = 3.0 * static_cast<double>(rows) * jb * jb;
    ctx.wait_for(flops_time(panel_flops, params.cpu_panel_gflops));

    // 3. Broadcast [V | T] to every GPU; write the factored panel (R and
    //    reflectors) back to the owner.
    std::vector<std::function<void()>> waiters;
    for (std::size_t me = 0; me < gpus.size(); ++me) {
      waiters.push_back(
          gpus[me]->h2d_async(d_vt[me], vt.view()));
    }
    waiters.push_back(owner.h2d_async(d_panel[o], std::move(panel)));
    owner.launch("la_unpack",
                 {std::int64_t{rows}, std::int64_t{jb}, d_panel[o],
                  d_a[o] + (static_cast<std::uint64_t>(dist.local_col(b)) * m +
                            static_cast<std::uint64_t>(j)) *
                               kDouble,
                  std::int64_t{m}});
    for (auto& wait : waiters) wait();

    // 4. Trailing update on every GPU that owns later columns. With
    //    look-ahead, the GPU owning panel b+1 updates that block eagerly
    //    and defers the rest until after the next panel download.
    const int next_b = b + 1;
    const int next_owner =
        next_b < dist.nblocks() ? dist.owner(next_b) : -1;
    for (std::size_t me = 0; me < gpus.size(); ++me) {
      flush_deferred(me);  // anything still pending must precede new work
      const int ntrail = dist.trailing_cols(static_cast<int>(me), b);
      if (ntrail == 0) continue;
      const int first = dist.next_owned_after(static_cast<int>(me), b);
      const gpu::DevPtr trail_ptr =
          d_a[me] + (static_cast<std::uint64_t>(dist.local_col(first)) * m +
                     static_cast<std::uint64_t>(j)) *
                        kDouble;
      const bool split =
          params.qr_lookahead && static_cast<int>(me) == next_owner &&
          first == next_b && ntrail > dist.block_width(next_b);
      if (!split) {
        gpus[me]->launch(
            "la_dlarfb",
            {std::int64_t{rows}, std::int64_t{ntrail}, std::int64_t{jb},
             d_vt[me],
             d_vt[me] + static_cast<std::uint64_t>(rows) * jb * kDouble,
             trail_ptr, std::int64_t{m}});
        continue;
      }
      const int head = dist.block_width(next_b);
      gpus[me]->launch(
          "la_dlarfb",
          {std::int64_t{rows}, std::int64_t{head}, std::int64_t{jb},
           d_vt[me],
           d_vt[me] + static_cast<std::uint64_t>(rows) * jb * kDouble,
           trail_ptr, std::int64_t{m}});
      deferred[me].pending = true;
      deferred[me].args = {
          std::int64_t{rows}, std::int64_t{ntrail - head}, std::int64_t{jb},
          d_vt[me],
          d_vt[me] + static_cast<std::uint64_t>(rows) * jb * kDouble,
          trail_ptr + static_cast<std::uint64_t>(head) * m * kDouble,
          std::int64_t{m}};
    }
  }
  for (std::size_t me = 0; me < gpus.size(); ++me) flush_deferred(me);
  fence(gpus, d_a);
  const SimDuration factor_time = ctx.now() - t0;

  collect(gpus, d_a, a, dist);
  for (std::size_t me = 0; me < gpus.size(); ++me) {
    gpus[me]->drain();
    gpus[me]->free(d_panel[me]);
    gpus[me]->free(d_vt[me]);
    gpus[me]->free(d_a[me]);
  }
  if (tau_out != nullptr) *tau_out = tau;

  FactorResult result;
  result.factor_time = factor_time;
  result.gflops = qr_flops(m, n) / static_cast<double>(factor_time);
  return result;
}

FactorResult dpotrf_hybrid(sim::Context& ctx, std::span<Gpu* const> gpus,
                           HostMatrix& a, int nb, const LaParams& params) {
  if (gpus.empty()) throw std::invalid_argument("dpotrf_hybrid: no GPUs");
  if (a.m() != a.n()) throw std::invalid_argument("dpotrf_hybrid: not square");
  const int n = a.n();
  const int g = static_cast<int>(gpus.size());
  const BlockCyclic dist(n, nb, g);
  const bool functional = a.functional();

  std::vector<gpu::DevPtr> d_a = distribute(gpus, a, dist);
  std::vector<gpu::DevPtr> d_diag(gpus.size());
  std::vector<gpu::DevPtr> d_l21(gpus.size());
  for (std::size_t me = 0; me < gpus.size(); ++me) {
    d_diag[me] = gpus[me]->alloc(static_cast<std::uint64_t>(nb) * nb * kDouble);
    d_l21[me] = gpus[me]->alloc(static_cast<std::uint64_t>(n) * nb * kDouble);
  }

  int info = 0;
  const SimTime t0 = ctx.now();
  for (int j = 0; j < n && info == 0; j += nb) {
    const int jb = std::min(nb, n - j);
    const int b = j / nb;
    const auto o = static_cast<std::size_t>(dist.owner(b));
    Gpu& owner = *gpus[o];
    const std::uint64_t panel_dev =
        d_a[o] + (static_cast<std::uint64_t>(dist.local_col(b)) * n +
                  static_cast<std::uint64_t>(j)) *
                     kDouble;

    // 1. Diagonal block to the CPU, dpotf2, back to the owner.
    owner.launch("la_pack", {std::int64_t{jb}, std::int64_t{jb}, panel_dev,
                             std::int64_t{n}, d_diag[o]});
    util::Buffer diag =
        owner.d2h(d_diag[o], static_cast<std::uint64_t>(jb) * jb * kDouble);
    if (functional) {
      info = dpotf2(jb, diag.as_mutable<double>().data(), jb);
      if (info != 0) {
        info += j;
        break;
      }
    }
    ctx.wait_for(flops_time(static_cast<double>(jb) * jb * jb / 3.0,
                            params.cpu_panel_gflops));
    owner.h2d(d_diag[o], std::move(diag));
    owner.launch("la_unpack", {std::int64_t{jb}, std::int64_t{jb}, d_diag[o],
                               panel_dev, std::int64_t{n}});

    const int rest = n - j - jb;
    if (rest == 0) break;

    // 2. Triangular solve of the sub-diagonal panel on the owner, then pack
    //    L21 and broadcast it.
    owner.launch("la_dtrsm_rlt",
                 {std::int64_t{rest}, std::int64_t{jb}, d_diag[o],
                  panel_dev + static_cast<std::uint64_t>(jb) * kDouble,
                  std::int64_t{n}});
    owner.launch("la_pack",
                 {std::int64_t{rest}, std::int64_t{jb},
                  panel_dev + static_cast<std::uint64_t>(jb) * kDouble,
                  std::int64_t{n}, d_l21[o]});
    util::Buffer l21 =
        owner.d2h(d_l21[o], static_cast<std::uint64_t>(rest) * jb * kDouble);
    std::vector<std::function<void()>> waiters;
    for (std::size_t me = 0; me < gpus.size(); ++me) {
      if (me == o) continue;  // the owner already has it on device
      waiters.push_back(
          gpus[me]->h2d_async(d_l21[me], l21.view()));
    }
    for (auto& wait : waiters) wait();

    // 3. Trailing updates, one launch per GPU over its owned blocks.
    for (std::size_t me = 0; me < gpus.size(); ++me) {
      if (dist.trailing_cols(static_cast<int>(me), b) == 0) continue;
      gpus[me]->launch("la_chol_update",
                       {std::int64_t{n}, std::int64_t{j}, std::int64_t{nb},
                        static_cast<std::int64_t>(me), std::int64_t{g},
                        d_a[me], std::int64_t{n}, d_l21[me]});
    }
  }
  fence(gpus, d_a);
  const SimDuration factor_time = ctx.now() - t0;

  collect(gpus, d_a, a, dist);
  for (std::size_t me = 0; me < gpus.size(); ++me) {
    gpus[me]->drain();
    gpus[me]->free(d_l21[me]);
    gpus[me]->free(d_diag[me]);
    gpus[me]->free(d_a[me]);
  }

  FactorResult result;
  result.factor_time = factor_time;
  result.info = info;
  result.gflops = info == 0 ? cholesky_flops(n) /
                                  static_cast<double>(factor_time)
                            : 0.0;
  return result;
}

FactorResult dgetrf_hybrid(sim::Context& ctx, std::span<Gpu* const> gpus,
                           HostMatrix& a, int nb, const LaParams& params,
                           std::vector<int>* ipiv_out) {
  if (gpus.empty()) throw std::invalid_argument("dgetrf_hybrid: no GPUs");
  const int m = a.m();
  const int n = a.n();
  const int g = static_cast<int>(gpus.size());
  const int k = std::min(m, n);
  const BlockCyclic dist(n, nb, g);
  const bool functional = a.functional();

  std::vector<gpu::DevPtr> d_a = distribute(gpus, a, dist);
  // Per GPU: packed factored panel (L11 unit lower + L21) and pivot list.
  std::vector<gpu::DevPtr> d_panel(gpus.size());
  std::vector<gpu::DevPtr> d_ipiv(gpus.size());
  for (std::size_t me = 0; me < gpus.size(); ++me) {
    d_panel[me] =
        gpus[me]->alloc(static_cast<std::uint64_t>(m) * nb * kDouble);
    d_ipiv[me] =
        gpus[me]->alloc(static_cast<std::uint64_t>(nb) * sizeof(std::int64_t));
  }

  std::vector<int> ipiv(static_cast<std::size_t>(k), 0);
  int info = 0;
  const SimTime t0 = ctx.now();
  for (int j = 0; j < k; j += nb) {
    const int jb = std::min(nb, k - j);
    const int rows = m - j;
    const int b = j / nb;
    const auto o = static_cast<std::size_t>(dist.owner(b));
    Gpu& owner = *gpus[o];
    const gpu::DevPtr panel_dev =
        d_a[o] + (static_cast<std::uint64_t>(dist.local_col(b)) * m +
                  static_cast<std::uint64_t>(j)) *
                     kDouble;

    // 1. Panel to the CPU.
    owner.launch("la_pack", {std::int64_t{rows}, std::int64_t{jb}, panel_dev,
                             std::int64_t{m}, d_panel[o]});
    util::Buffer panel =
        owner.d2h(d_panel[o],
                  static_cast<std::uint64_t>(rows) * jb * kDouble);

    // 2. dgetf2 with partial pivoting (absolute row indices).
    if (functional) {
      const int panel_info =
          dgetf2(rows, jb, panel.as_mutable<double>().data(), rows,
                 ipiv.data() + j, j);
      if (panel_info != 0 && info == 0) info = j + panel_info;
    }
    ctx.wait_for(flops_time(
        static_cast<double>(rows) * jb * jb, params.cpu_panel_gflops));

    util::Buffer piv_buf;
    if (functional) {
      std::vector<std::int64_t> piv64(static_cast<std::size_t>(jb));
      for (int i = 0; i < jb; ++i) {
        piv64[static_cast<std::size_t>(i)] =
            ipiv[static_cast<std::size_t>(j + i)];
      }
      piv_buf = util::Buffer::of<std::int64_t>(
          std::span<const std::int64_t>(piv64));
    } else {
      piv_buf = util::Buffer::phantom(static_cast<std::uint64_t>(jb) *
                                      sizeof(std::int64_t));
    }

    // 3. Broadcast the factored panel + pivots; write the panel back into
    //    the owner's matrix.
    std::vector<std::function<void()>> waiters;
    for (std::size_t me = 0; me < gpus.size(); ++me) {
      waiters.push_back(
          gpus[me]->h2d_async(d_panel[me], panel.view()));
      waiters.push_back(
          gpus[me]->h2d_async(d_ipiv[me], piv_buf.view()));
    }
    owner.launch("la_unpack", {std::int64_t{rows}, std::int64_t{jb},
                               d_panel[o], panel_dev, std::int64_t{m}});
    for (auto& wait : waiters) wait();

    // 4. Row interchanges on every GPU's columns outside the panel block.
    for (std::size_t me = 0; me < gpus.size(); ++me) {
      const int ncols = dist.local_cols(static_cast<int>(me));
      if (ncols == 0) continue;
      if (me == o) {
        const int before = dist.local_col(b);
        const int after = ncols - before - jb;
        if (before > 0) {
          gpus[me]->launch("la_laswp",
                           {std::int64_t{before}, d_a[me], std::int64_t{m},
                            std::int64_t{j}, std::int64_t{jb}, d_ipiv[me]});
        }
        if (after > 0) {
          gpus[me]->launch(
              "la_laswp",
              {std::int64_t{after},
               d_a[me] + static_cast<std::uint64_t>(before + jb) * m * kDouble,
               std::int64_t{m}, std::int64_t{j}, std::int64_t{jb},
               d_ipiv[me]});
        }
      } else {
        gpus[me]->launch("la_laswp",
                         {std::int64_t{ncols}, d_a[me], std::int64_t{m},
                          std::int64_t{j}, std::int64_t{jb}, d_ipiv[me]});
      }
    }

    // 5. U12 solve + trailing update on every GPU with later columns.
    for (std::size_t me = 0; me < gpus.size(); ++me) {
      const int ntrail = dist.trailing_cols(static_cast<int>(me), b);
      if (ntrail == 0) continue;
      const int first = dist.next_owned_after(static_cast<int>(me), b);
      const gpu::DevPtr u12 =
          d_a[me] + (static_cast<std::uint64_t>(dist.local_col(first)) * m +
                     static_cast<std::uint64_t>(j)) *
                        kDouble;
      gpus[me]->launch("la_dtrsm_llu",
                       {std::int64_t{jb}, std::int64_t{ntrail}, d_panel[me],
                        std::int64_t{rows}, u12, std::int64_t{m}});
      if (rows - jb > 0) {
        gpus[me]->launch(
            "la_dgemm",
            {std::int64_t{0}, std::int64_t{0}, std::int64_t{rows - jb},
             std::int64_t{ntrail}, std::int64_t{jb}, -1.0,
             d_panel[me] + static_cast<std::uint64_t>(jb) * kDouble,
             std::int64_t{rows}, u12, std::int64_t{m}, 1.0,
             u12 + static_cast<std::uint64_t>(jb) * kDouble,
             std::int64_t{m}});
      }
    }
  }
  fence(gpus, d_a);
  const SimDuration factor_time = ctx.now() - t0;

  collect(gpus, d_a, a, dist);
  for (std::size_t me = 0; me < gpus.size(); ++me) {
    gpus[me]->drain();
    gpus[me]->free(d_ipiv[me]);
    gpus[me]->free(d_panel[me]);
    gpus[me]->free(d_a[me]);
  }
  if (ipiv_out != nullptr) *ipiv_out = ipiv;

  FactorResult result;
  result.factor_time = factor_time;
  result.info = info;
  result.gflops =
      info == 0 ? lu_flops(m, n) / static_cast<double>(factor_time) : 0.0;
  return result;
}

}  // namespace dacc::la
