// Device kernels for the hybrid linear-algebra workloads. Functional
// executors run the host BLAS-lite on device memory; cost models charge the
// calibrated C1060 rates from LaParams.
#pragma once

#include <memory>

#include "gpu/device.hpp"
#include "la/params.hpp"

namespace dacc::la {

/// Registers the LA kernels into `registry`:
///   la_dgemm        (ta, tb, m, n, k, alpha, A, lda, B, ldb, beta, C, ldc)
///   la_pack         (rows, cols, src, lds, dst)       strided -> contiguous
///   la_unpack       (rows, cols, src, dst, ldd)       contiguous -> strided
///   la_dlarfb       (m, n, k, V, T, C, ldc)           QR trailing update
///   la_dtrsm_rlt    (m, n, L, B, ldb)                 B := B inv(L)^T
///   la_chol_update  (n, j, nb, me, g, A, ld, L21)     trailing syrk/gemm
///   la_laswp        (ncols, A, ld, row0, k, ipiv)     LU row interchanges
///   la_dtrsm_llu    (m, n, L, ldl, B, ldb)            B := inv(L, unit) B
void register_la_kernels(gpu::KernelRegistry& registry,
                         const LaParams& params = {});

/// Builtins + LA kernels, ready for a Cluster config.
std::shared_ptr<gpu::KernelRegistry> la_registry(const LaParams& params = {});

/// Standard flop counts (LAPACK conventions).
double qr_flops(int m, int n);
double cholesky_flops(int n);
double lu_flops(int m, int n);

}  // namespace dacc::la
