#include "la/blas.hpp"

#include <cmath>
#include <stdexcept>

namespace dacc::la {

namespace {

inline double elem(const double* a, int lda, int i, int j, Trans t) {
  return t == Trans::kNo ? a[static_cast<std::size_t>(j) * lda + i]
                         : a[static_cast<std::size_t>(i) * lda + j];
}

}  // namespace

void dgemm(Trans ta, Trans tb, int m, int n, int k, double alpha,
           const double* a, int lda, const double* b, int ldb, double beta,
           double* c, int ldc) {
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) {
      double sum = 0.0;
      for (int p = 0; p < k; ++p) {
        sum += elem(a, lda, i, p, ta) * elem(b, ldb, p, j, tb);
      }
      double& out = c[static_cast<std::size_t>(j) * ldc + i];
      out = alpha * sum + beta * out;
    }
  }
}

void dtrsm(Side side, UpLo uplo, Trans ta, Diag diag, int m, int n,
           double alpha, const double* a, int lda, double* b, int ldb) {
  auto bij = [&](int i, int j) -> double& {
    return b[static_cast<std::size_t>(j) * ldb + i];
  };
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) bij(i, j) *= alpha;
  }
  if (side == Side::kRight && uplo == UpLo::kLower && ta == Trans::kYes) {
    // B := B * inv(L)^T, L lower n x n: forward substitution across columns.
    for (int j = 0; j < n; ++j) {
      const double diag_v =
          diag == Diag::kUnit ? 1.0 : a[static_cast<std::size_t>(j) * lda + j];
      for (int i = 0; i < m; ++i) bij(i, j) /= diag_v;
      for (int jj = j + 1; jj < n; ++jj) {
        const double l = a[static_cast<std::size_t>(j) * lda + jj];  // L(jj,j)
        for (int i = 0; i < m; ++i) bij(i, jj) -= bij(i, j) * l;
      }
    }
    return;
  }
  if (side == Side::kLeft && uplo == UpLo::kLower && ta == Trans::kNo) {
    // B := inv(L) * B: forward substitution down rows.
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < m; ++i) {
        double sum = bij(i, j);
        for (int p = 0; p < i; ++p) {
          sum -= a[static_cast<std::size_t>(p) * lda + i] * bij(p, j);
        }
        const double diag_v =
            diag == Diag::kUnit ? 1.0
                                : a[static_cast<std::size_t>(i) * lda + i];
        bij(i, j) = sum / diag_v;
      }
    }
    return;
  }
  if (side == Side::kLeft && uplo == UpLo::kUpper && ta == Trans::kNo) {
    // B := inv(U) * B: back substitution up rows.
    for (int j = 0; j < n; ++j) {
      for (int i = m - 1; i >= 0; --i) {
        double sum = bij(i, j);
        for (int p = i + 1; p < m; ++p) {
          sum -= a[static_cast<std::size_t>(p) * lda + i] * bij(p, j);
        }
        const double diag_v =
            diag == Diag::kUnit ? 1.0
                                : a[static_cast<std::size_t>(i) * lda + i];
        bij(i, j) = sum / diag_v;
      }
    }
    return;
  }
  throw std::logic_error("dtrsm: unsupported variant");
}

void dsyrk(UpLo uplo, Trans trans, int n, int k, double alpha,
           const double* a, int lda, double beta, double* c, int ldc) {
  if (trans != Trans::kNo) throw std::logic_error("dsyrk: only trans=no");
  for (int j = 0; j < n; ++j) {
    const int i_begin = uplo == UpLo::kLower ? j : 0;
    const int i_end = uplo == UpLo::kLower ? n : j + 1;
    for (int i = i_begin; i < i_end; ++i) {
      double sum = 0.0;
      for (int p = 0; p < k; ++p) {
        sum += a[static_cast<std::size_t>(p) * lda + i] *
               a[static_cast<std::size_t>(p) * lda + j];
      }
      double& out = c[static_cast<std::size_t>(j) * ldc + i];
      out = alpha * sum + beta * out;
    }
  }
}

void dgemv(Trans ta, int m, int n, double alpha, const double* a, int lda,
           const double* x, double beta, double* y) {
  const int out_len = ta == Trans::kNo ? m : n;
  const int in_len = ta == Trans::kNo ? n : m;
  for (int i = 0; i < out_len; ++i) {
    double sum = 0.0;
    for (int p = 0; p < in_len; ++p) {
      sum += (ta == Trans::kNo ? a[static_cast<std::size_t>(p) * lda + i]
                               : a[static_cast<std::size_t>(i) * lda + p]) *
             x[p];
    }
    y[i] = alpha * sum + beta * y[i];
  }
}

void dger(int m, int n, double alpha, const double* x, const double* y,
          double* a, int lda) {
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) {
      a[static_cast<std::size_t>(j) * lda + i] += alpha * x[i] * y[j];
    }
  }
}

double ddot(int n, const double* x, const double* y) {
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += x[i] * y[i];
  return sum;
}

void dscal(int n, double alpha, double* x) {
  for (int i = 0; i < n; ++i) x[i] *= alpha;
}

void daxpy(int n, double alpha, const double* x, double* y) {
  for (int i = 0; i < n; ++i) y[i] += alpha * x[i];
}

double dnrm2(int n, const double* x) {
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += x[i] * x[i];
  return std::sqrt(sum);
}

}  // namespace dacc::la
