// Backwards-compatible names for the device-link adapters, which live in
// core/link.hpp (they are shared by every workload, not just linear
// algebra).
#pragma once

#include "core/link.hpp"

namespace dacc::la {

using Gpu = core::DeviceLink;
using RemoteGpu = core::RemoteDeviceLink;
using LocalGpu = core::LocalDeviceLink;

}  // namespace dacc::la
