// Column-major host matrices (LAPACK layout), with the backed/phantom split
// used throughout dacc: functional runs hold real doubles and are verified
// numerically; paper-scale benchmark runs hold only shape and sizes.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>

#include "util/buffer.hpp"
#include "util/rng.hpp"

namespace dacc::la {

class HostMatrix {
 public:
  /// An m x n matrix with leading dimension m. Backed (zero-initialized)
  /// when functional, phantom otherwise.
  HostMatrix(int m, int n, bool functional = true)
      : m_(m), n_(n) {
    if (m < 0 || n < 0) throw std::invalid_argument("HostMatrix: bad shape");
    const auto bytes = static_cast<std::uint64_t>(m) * n * sizeof(double);
    storage_ = functional ? util::Buffer::backed_zero(bytes)
                          : util::Buffer::phantom(bytes);
  }

  int m() const { return m_; }
  int n() const { return n_; }
  int ld() const { return m_; }
  bool functional() const { return storage_.is_backed(); }
  std::uint64_t bytes() const { return storage_.size(); }

  double* data() {
    return reinterpret_cast<double*>(storage_.mutable_bytes().data());
  }
  const double* data() const {
    return reinterpret_cast<const double*>(
        const_cast<util::Buffer&>(storage_).mutable_bytes().data());
  }

  double& at(int i, int j) {
    check(i, j);
    return data()[static_cast<std::size_t>(j) * m_ + i];
  }
  double at(int i, int j) const {
    check(i, j);
    return data()[static_cast<std::size_t>(j) * m_ + i];
  }

  /// Packs the submatrix [i0, i0+rows) x [j0, j0+cols) into a contiguous
  /// column-major buffer with leading dimension `rows`. Phantom-aware.
  util::Buffer pack(int i0, int j0, int rows, int cols) const;

  /// Scatters a packed buffer back into [i0, ...) x [j0, ...).
  void unpack(int i0, int j0, int rows, int cols, const util::Buffer& src);

  /// Fills with uniform random values in [-1, 1) (functional only; no-op on
  /// phantom matrices).
  void fill_random(util::Rng& rng);

  /// Makes the matrix symmetric positive definite: A := (A + A^T)/2 + n*I.
  void make_spd();

  /// max |A - B| over all entries.
  static double max_abs_diff(const HostMatrix& a, const HostMatrix& b);

  /// Frobenius norm.
  double norm_fro() const;

 private:
  void check(int i, int j) const {
    if (i < 0 || i >= m_ || j < 0 || j >= n_) {
      throw std::out_of_range("HostMatrix::at");
    }
    if (!storage_.is_backed()) {
      throw std::logic_error("HostMatrix: element access on phantom matrix");
    }
  }

  int m_;
  int n_;
  util::Buffer storage_;
};

}  // namespace dacc::la
