#include "la/kernels.hpp"

#include <algorithm>

#include "la/blas.hpp"
#include "la/lapack.hpp"

namespace dacc::la {

namespace {

using gpu::arg_f64;
using gpu::arg_i64;
using gpu::arg_ptr;
using gpu::Device;
using gpu::KernelArgs;
using gpu::KernelDef;
using gpu::LaunchConfig;

/// GEMM-class kernels run below peak when the inner dimension is skinny
/// (k < ~96 on the C1060): blocking cannot fill the SMs. Neutral at the
/// calibrated panel width (nb = 128).
double skinny_efficiency(double k) { return std::min(1.0, k / 96.0); }

/// Doubles needed to address a column-major rows x cols region with leading
/// dimension ld starting at a device pointer.
std::uint64_t extent(std::int64_t rows, std::int64_t cols, std::int64_t ld) {
  if (rows == 0 || cols == 0) return 0;
  return static_cast<std::uint64_t>(ld) * (cols - 1) +
         static_cast<std::uint64_t>(rows);
}

void register_dgemm(gpu::KernelRegistry& reg, const LaParams& p) {
  reg.register_kernel(
      "la_dgemm",
      KernelDef{
          [](Device& dev, const LaunchConfig&, const KernelArgs& args) {
            const Trans ta = arg_i64(args, 0) != 0 ? Trans::kYes : Trans::kNo;
            const Trans tb = arg_i64(args, 1) != 0 ? Trans::kYes : Trans::kNo;
            const auto m = arg_i64(args, 2);
            const auto n = arg_i64(args, 3);
            const auto k = arg_i64(args, 4);
            const double alpha = arg_f64(args, 5);
            const auto lda = arg_i64(args, 7);
            const auto ldb = arg_i64(args, 9);
            const double beta = arg_f64(args, 10);
            const auto ldc = arg_i64(args, 12);
            const auto a_rows = ta == Trans::kNo ? m : k;
            const auto a_cols = ta == Trans::kNo ? k : m;
            const auto b_rows = tb == Trans::kNo ? k : n;
            const auto b_cols = tb == Trans::kNo ? n : k;
            auto a = dev.span_as<double>(arg_ptr(args, 6),
                                         extent(a_rows, a_cols, lda));
            auto b = dev.span_as<double>(arg_ptr(args, 8),
                                         extent(b_rows, b_cols, ldb));
            auto c = dev.span_as<double>(arg_ptr(args, 11),
                                         extent(m, n, ldc));
            dgemm(ta, tb, static_cast<int>(m), static_cast<int>(n),
                  static_cast<int>(k), alpha, a.data(),
                  static_cast<int>(lda), b.data(), static_cast<int>(ldb),
                  beta, c.data(), static_cast<int>(ldc));
          },
          [p](const LaunchConfig&, const KernelArgs& args) {
            const double k = static_cast<double>(arg_i64(args, 4));
            const double flops = 2.0 *
                                 static_cast<double>(arg_i64(args, 2)) *
                                 static_cast<double>(arg_i64(args, 3)) * k;
            return p.gpu_kernel_setup +
                   flops_time(flops,
                              p.gpu_gemm_gflops * skinny_efficiency(k));
          }});
}

void register_pack(gpu::KernelRegistry& reg, const LaParams& p) {
  reg.register_kernel(
      "la_pack",
      KernelDef{
          [](Device& dev, const LaunchConfig&, const KernelArgs& args) {
            const auto rows = arg_i64(args, 0);
            const auto cols = arg_i64(args, 1);
            const auto lds = arg_i64(args, 3);
            auto src = dev.span_as<double>(arg_ptr(args, 2),
                                           extent(rows, cols, lds));
            auto dst = dev.span_as<double>(
                arg_ptr(args, 4), static_cast<std::uint64_t>(rows) * cols);
            for (std::int64_t c = 0; c < cols; ++c) {
              std::copy_n(src.data() + c * lds, rows, dst.data() + c * rows);
            }
          },
          [p](const LaunchConfig&, const KernelArgs& args) {
            const auto bytes = static_cast<std::uint64_t>(arg_i64(args, 0)) *
                               static_cast<std::uint64_t>(arg_i64(args, 1)) *
                               8;
            return transfer_time(2 * bytes, p.gpu_pack_mib_s);
          }});
  reg.register_kernel(
      "la_unpack",
      KernelDef{
          [](Device& dev, const LaunchConfig&, const KernelArgs& args) {
            const auto rows = arg_i64(args, 0);
            const auto cols = arg_i64(args, 1);
            const auto ldd = arg_i64(args, 4);
            auto src = dev.span_as<double>(
                arg_ptr(args, 2), static_cast<std::uint64_t>(rows) * cols);
            auto dst = dev.span_as<double>(arg_ptr(args, 3),
                                           extent(rows, cols, ldd));
            for (std::int64_t c = 0; c < cols; ++c) {
              std::copy_n(src.data() + c * rows, rows, dst.data() + c * ldd);
            }
          },
          [p](const LaunchConfig&, const KernelArgs& args) {
            const auto bytes = static_cast<std::uint64_t>(arg_i64(args, 0)) *
                               static_cast<std::uint64_t>(arg_i64(args, 1)) *
                               8;
            return transfer_time(2 * bytes, p.gpu_pack_mib_s);
          }});
}

void register_larfb(gpu::KernelRegistry& reg, const LaParams& p) {
  reg.register_kernel(
      "la_dlarfb",
      KernelDef{
          [](Device& dev, const LaunchConfig&, const KernelArgs& args) {
            const auto m = arg_i64(args, 0);
            const auto n = arg_i64(args, 1);
            const auto k = arg_i64(args, 2);
            const auto ldc = arg_i64(args, 6);
            auto v = dev.span_as<double>(arg_ptr(args, 3),
                                         static_cast<std::uint64_t>(m) * k);
            auto t = dev.span_as<double>(arg_ptr(args, 4),
                                         static_cast<std::uint64_t>(k) * k);
            auto c = dev.span_as<double>(arg_ptr(args, 5),
                                         extent(m, n, ldc));
            dlarfb(Trans::kYes, static_cast<int>(m), static_cast<int>(n),
                   static_cast<int>(k), v.data(), static_cast<int>(m),
                   t.data(), static_cast<int>(k), c.data(),
                   static_cast<int>(ldc));
          },
          [p](const LaunchConfig&, const KernelArgs& args) {
            const double m = static_cast<double>(arg_i64(args, 0));
            const double n = static_cast<double>(arg_i64(args, 1));
            const double k = static_cast<double>(arg_i64(args, 2));
            return p.gpu_kernel_setup +
                   flops_time(4.0 * m * n * k,
                              p.gpu_larfb_gflops * skinny_efficiency(k));
          }});
}

void register_trsm(gpu::KernelRegistry& reg, const LaParams& p) {
  reg.register_kernel(
      "la_dtrsm_rlt",
      KernelDef{
          [](Device& dev, const LaunchConfig&, const KernelArgs& args) {
            const auto m = arg_i64(args, 0);
            const auto n = arg_i64(args, 1);
            const auto ldb = arg_i64(args, 4);
            auto l = dev.span_as<double>(arg_ptr(args, 2),
                                         static_cast<std::uint64_t>(n) * n);
            auto b = dev.span_as<double>(arg_ptr(args, 3),
                                         extent(m, n, ldb));
            dtrsm(Side::kRight, UpLo::kLower, Trans::kYes, Diag::kNonUnit,
                  static_cast<int>(m), static_cast<int>(n), 1.0, l.data(),
                  static_cast<int>(n), b.data(), static_cast<int>(ldb));
          },
          [p](const LaunchConfig&, const KernelArgs& args) {
            const double m = static_cast<double>(arg_i64(args, 0));
            const double n = static_cast<double>(arg_i64(args, 1));
            return p.gpu_kernel_setup +
                   flops_time(m * n * n, p.gpu_trsm_gflops);
          }});
}

void register_chol_update(gpu::KernelRegistry& reg, const LaParams& p) {
  // Trailing update of the calling GPU's owned column blocks after panel j:
  // for every owned block b with c = b*nb > j:
  //   A(c:n, cols of b) -= L21(c-j-nb : n-j-nb, :) * L21(c-j-nb : +cb, :)^T
  auto owned_flops = [](const KernelArgs& args) {
    const auto n = arg_i64(args, 0);
    const auto j = arg_i64(args, 1);
    const auto nb = arg_i64(args, 2);
    const auto me = arg_i64(args, 3);
    const auto g = arg_i64(args, 4);
    double flops = 0.0;
    for (std::int64_t b = me; b * nb < n; b += g) {
      const std::int64_t c = b * nb;
      if (c <= j) continue;
      const std::int64_t cb = std::min(nb, n - c);
      flops += 2.0 * static_cast<double>(n - c) * cb * nb;
    }
    return flops;
  };
  reg.register_kernel(
      "la_chol_update",
      KernelDef{
          [](Device& dev, const LaunchConfig&, const KernelArgs& args) {
            const auto n = arg_i64(args, 0);
            const auto j = arg_i64(args, 1);
            const auto nb = arg_i64(args, 2);
            const auto me = arg_i64(args, 3);
            const auto g = arg_i64(args, 4);
            const auto ld = arg_i64(args, 6);
            const std::int64_t l21_rows = n - j - nb;
            auto l21 = dev.span_as<double>(
                arg_ptr(args, 7),
                static_cast<std::uint64_t>(l21_rows) * nb);
            for (std::int64_t b = me; b * nb < n; b += g) {
              const std::int64_t c = b * nb;
              if (c <= j) continue;
              const std::int64_t cb = std::min(nb, n - c);
              const std::int64_t loc = (b / g) * nb;
              auto cspan = dev.span_as<double>(
                  arg_ptr(args, 5) + static_cast<std::uint64_t>(
                                         loc * ld + c) * 8,
                  extent(n - c, cb, ld));
              dgemm(Trans::kNo, Trans::kYes, static_cast<int>(n - c),
                    static_cast<int>(cb), static_cast<int>(nb), -1.0,
                    l21.data() + (c - j - nb), static_cast<int>(l21_rows),
                    l21.data() + (c - j - nb), static_cast<int>(l21_rows),
                    1.0, cspan.data(), static_cast<int>(ld));
            }
          },
          [p, owned_flops](const LaunchConfig&, const KernelArgs& args) {
            const double nb = static_cast<double>(arg_i64(args, 2));
            return p.gpu_kernel_setup +
                   flops_time(owned_flops(args),
                              p.gpu_syrk_gflops * skinny_efficiency(nb));
          }});
}

void register_lu_kernels(gpu::KernelRegistry& reg, const LaParams& p) {
  // la_laswp(i64 ncols, ptr A, i64 ld, i64 row0, i64 k, ptr ipiv):
  // row interchanges across all ncols columns; ipiv is a device buffer of
  // k int64 absolute row indices.
  reg.register_kernel(
      "la_laswp",
      KernelDef{
          [](Device& dev, const LaunchConfig&, const KernelArgs& args) {
            const auto ncols = arg_i64(args, 0);
            const auto ld = arg_i64(args, 2);
            const auto row0 = arg_i64(args, 3);
            const auto k = arg_i64(args, 4);
            if (ncols == 0 || k == 0) return;
            auto piv = dev.span_as<std::int64_t>(
                arg_ptr(args, 5), static_cast<std::uint64_t>(k));
            // Rows can reach up to max(ipiv)+1; the full column height is
            // bounded by ld.
            auto a = dev.span_as<double>(arg_ptr(args, 1),
                                         extent(ld, ncols, ld));
            for (std::int64_t i = 0; i < k; ++i) {
              const std::int64_t r1 = row0 + i;
              const std::int64_t r2 = piv[static_cast<std::size_t>(i)];
              if (r1 == r2) continue;
              for (std::int64_t c = 0; c < ncols; ++c) {
                std::swap(a[static_cast<std::size_t>(c * ld + r1)],
                          a[static_cast<std::size_t>(c * ld + r2)]);
              }
            }
          },
          [p](const LaunchConfig&, const KernelArgs& args) {
            const auto bytes = static_cast<std::uint64_t>(arg_i64(args, 0)) *
                               static_cast<std::uint64_t>(arg_i64(args, 4)) *
                               16;  // read + write both rows
            return transfer_time(2 * bytes, p.gpu_pack_mib_s);
          }});

  // la_dtrsm_llu(i64 m, i64 n, ptr L (packed, >= m x m, unit lower),
  //              i64 ldl, ptr B, i64 ldb): B := inv(L, unit) * B.
  reg.register_kernel(
      "la_dtrsm_llu",
      KernelDef{
          [](Device& dev, const LaunchConfig&, const KernelArgs& args) {
            const auto m = arg_i64(args, 0);
            const auto n = arg_i64(args, 1);
            const auto ldl = arg_i64(args, 3);
            const auto ldb = arg_i64(args, 5);
            auto l = dev.span_as<double>(arg_ptr(args, 2),
                                         extent(m, m, ldl));
            auto b = dev.span_as<double>(arg_ptr(args, 4),
                                         extent(m, n, ldb));
            dtrsm(Side::kLeft, UpLo::kLower, Trans::kNo, Diag::kUnit,
                  static_cast<int>(m), static_cast<int>(n), 1.0, l.data(),
                  static_cast<int>(ldl), b.data(), static_cast<int>(ldb));
          },
          [p](const LaunchConfig&, const KernelArgs& args) {
            const double m = static_cast<double>(arg_i64(args, 0));
            const double n = static_cast<double>(arg_i64(args, 1));
            return p.gpu_kernel_setup +
                   flops_time(m * m * n, p.gpu_trsm_gflops);
          }});
}

}  // namespace

void register_la_kernels(gpu::KernelRegistry& registry,
                         const LaParams& params) {
  register_dgemm(registry, params);
  register_pack(registry, params);
  register_larfb(registry, params);
  register_trsm(registry, params);
  register_chol_update(registry, params);
  register_lu_kernels(registry, params);
}

std::shared_ptr<gpu::KernelRegistry> la_registry(const LaParams& params) {
  auto reg = gpu::KernelRegistry::with_builtins();
  register_la_kernels(*reg, params);
  return reg;
}

double qr_flops(int m, int n) {
  // LAPACK working note flop count for DGEQRF.
  const double dm = m;
  const double dn = n;
  if (m >= n) {
    return 2.0 * dm * dn * dn - 2.0 / 3.0 * dn * dn * dn + dm * dn +
           dn * dn + 14.0 / 3.0 * dn;
  }
  return 2.0 * dn * dm * dm - 2.0 / 3.0 * dm * dm * dm + 3.0 * dn * dm -
         dm * dm + 14.0 / 3.0 * dm;
}

double cholesky_flops(int n) {
  const double dn = n;
  return dn * dn * dn / 3.0 + dn * dn / 2.0 + dn / 6.0;
}

double lu_flops(int m, int n) {
  const double dm = m;
  const double dn = n;
  if (m >= n) {
    return dm * dn * dn - dn * dn * dn / 3.0 - dn * dn / 2.0 +
           5.0 * dn / 6.0;
  }
  return dn * dm * dm - dm * dm * dm / 3.0 - dm * dm / 2.0 + 5.0 * dm / 6.0;
}

}  // namespace dacc::la
