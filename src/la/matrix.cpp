#include "la/matrix.hpp"

#include <cmath>
#include <cstring>

namespace dacc::la {

util::Buffer HostMatrix::pack(int i0, int j0, int rows, int cols) const {
  if (i0 < 0 || j0 < 0 || i0 + rows > m_ || j0 + cols > n_) {
    throw std::out_of_range("HostMatrix::pack");
  }
  const auto bytes =
      static_cast<std::uint64_t>(rows) * cols * sizeof(double);
  if (!storage_.is_backed()) return util::Buffer::phantom(bytes);
  util::Buffer out = util::Buffer::backed_zero(bytes);
  auto dst = out.as_mutable<double>();
  const double* src = data();
  for (int c = 0; c < cols; ++c) {
    std::memcpy(dst.data() + static_cast<std::size_t>(c) * rows,
                src + static_cast<std::size_t>(j0 + c) * m_ + i0,
                static_cast<std::size_t>(rows) * sizeof(double));
  }
  return out;
}

void HostMatrix::unpack(int i0, int j0, int rows, int cols,
                        const util::Buffer& src) {
  if (i0 < 0 || j0 < 0 || i0 + rows > m_ || j0 + cols > n_) {
    throw std::out_of_range("HostMatrix::unpack");
  }
  if (src.size() != static_cast<std::uint64_t>(rows) * cols * sizeof(double)) {
    throw std::invalid_argument("HostMatrix::unpack: size mismatch");
  }
  if (!storage_.is_backed() || !src.is_backed()) return;
  auto s = src.as<double>();
  double* dst = data();
  for (int c = 0; c < cols; ++c) {
    std::memcpy(dst + static_cast<std::size_t>(j0 + c) * m_ + i0,
                s.data() + static_cast<std::size_t>(c) * rows,
                static_cast<std::size_t>(rows) * sizeof(double));
  }
}

void HostMatrix::fill_random(util::Rng& rng) {
  if (!storage_.is_backed()) return;
  double* p = data();
  const std::size_t count = static_cast<std::size_t>(m_) * n_;
  for (std::size_t i = 0; i < count; ++i) p[i] = rng.uniform(-1.0, 1.0);
}

void HostMatrix::make_spd() {
  if (!storage_.is_backed()) return;
  if (m_ != n_) throw std::logic_error("make_spd: matrix not square");
  for (int j = 0; j < n_; ++j) {
    for (int i = 0; i <= j; ++i) {
      const double v = 0.5 * (at(i, j) + at(j, i));
      at(i, j) = v;
      at(j, i) = v;
    }
    at(j, j) += static_cast<double>(n_);
  }
}

double HostMatrix::max_abs_diff(const HostMatrix& a, const HostMatrix& b) {
  if (a.m() != b.m() || a.n() != b.n()) {
    throw std::invalid_argument("max_abs_diff: shape mismatch");
  }
  double worst = 0.0;
  const std::size_t count = static_cast<std::size_t>(a.m()) * a.n();
  for (std::size_t i = 0; i < count; ++i) {
    worst = std::max(worst, std::fabs(a.data()[i] - b.data()[i]));
  }
  return worst;
}

double HostMatrix::norm_fro() const {
  double sum = 0.0;
  const std::size_t count = static_cast<std::size_t>(m_) * n_;
  for (std::size_t i = 0; i < count; ++i) {
    sum += data()[i] * data()[i];
  }
  return std::sqrt(sum);
}

}  // namespace dacc::la
