// Hybrid CPU+multi-GPU factorizations in the style of MAGMA 1.1's
// magma_dgeqrf2_mgpu / magma_dpotrf_mgpu (the two routines of the paper's
// Section V.B): panels are factored on the compute node's CPU, trailing
// updates run on 1..g GPUs over a 1-D block-cyclic column layout. The same
// code drives a node-local GPU (LocalGpu) or network-attached accelerators
// (RemoteGpu), which is exactly the comparison of Figures 9 and 10.
#pragma once

#include <span>
#include <vector>

#include "la/hybrid.hpp"
#include "la/kernels.hpp"
#include "la/matrix.hpp"
#include "la/params.hpp"

namespace dacc::la {

struct FactorResult {
  SimDuration factor_time = 0;  ///< simulated time of the factorization
  double gflops = 0.0;          ///< standard flop count / factor_time
  int info = 0;                 ///< 0, or failing pivot (Cholesky)
};

/// Blocked Householder QR of `a` (overwritten with R + reflectors) on the
/// given GPUs. `tau_out`, when non-null, receives the scalar factors
/// (functional runs only).
FactorResult dgeqrf_hybrid(sim::Context& ctx, std::span<Gpu* const> gpus,
                           HostMatrix& a, int nb, const LaParams& params = {},
                           std::vector<double>* tau_out = nullptr);

/// Blocked lower Cholesky of the SPD matrix `a` (lower triangle
/// overwritten with L) on the given GPUs.
FactorResult dpotrf_hybrid(sim::Context& ctx, std::span<Gpu* const> gpus,
                           HostMatrix& a, int nb, const LaParams& params = {});

/// Blocked LU with partial pivoting (overwrites `a` with L\U) on the given
/// GPUs. `ipiv_out`, when non-null, receives the absolute pivot rows
/// (functional runs only). Goes beyond the paper's two routines — the
/// third MAGMA-class factorization on the same middleware.
FactorResult dgetrf_hybrid(sim::Context& ctx, std::span<Gpu* const> gpus,
                           HostMatrix& a, int nb, const LaParams& params = {},
                           std::vector<int>* ipiv_out = nullptr);

}  // namespace dacc::la
