// LAPACK-lite: unblocked panel factorizations (dpotf2, dgeqr2), the
// block-reflector helpers (dlarft, dlarfb), and blocked host references
// (dpotrf_host, dgeqrf_host). These are the routines the hybrid CPU+GPU
// algorithms run on the compute node for each panel, and the references the
// tests verify the full remote pipeline against.
#pragma once

#include <vector>

#include "la/blas.hpp"
#include "la/matrix.hpp"

namespace dacc::la {

/// Unblocked lower Cholesky of the leading n x n of A (in place).
/// Returns 0 on success or the 1-based index of the first non-positive
/// pivot (LAPACK convention).
int dpotf2(int n, double* a, int lda);

/// Blocked lower Cholesky on the host (reference). Returns like dpotf2.
int dpotrf_host(HostMatrix& a, int nb);

/// Unblocked Householder QR of the m x n panel (in place, LAPACK dgeqr2):
/// R in the upper triangle, the Householder vectors below the diagonal,
/// scalar factors in tau (length min(m, n)).
void dgeqr2(int m, int n, double* a, int lda, double* tau);

/// Forms the upper-triangular block-reflector factor T (k x k) for the
/// panel's reflectors (LAPACK dlarft, forward/columnwise). `v` is the
/// factored panel (unit lower trapezoidal implicit).
void dlarft(int m, int k, const double* v, int ldv, const double* tau,
            double* t, int ldt);

/// Copies the k reflectors out of a factored panel into a dense m x k V
/// with the implicit structure materialized (unit diagonal, zeros above).
void materialize_v(int m, int k, const double* panel, int ldp, double* v);

/// C := (I - V T V^T)^(T?) C with dense V (m x k), T (k x k upper),
/// C (m x n). trans == kYes applies Q^T (the factorization update),
/// kNo applies Q (used to build Q explicitly).
void dlarfb(Trans trans, int m, int n, int k, const double* v, int ldv,
            const double* t, int ldt, double* c, int ldc);

/// Blocked Householder QR on the host (reference). tau is resized.
void dgeqrf_host(HostMatrix& a, int nb, std::vector<double>& tau);

/// Unblocked LU with partial pivoting of the m x n panel (LAPACK dgetf2).
/// ipiv[i] (0-based, absolute row index) records the row swapped with row
/// `row0 + i`. Returns 0 or the 1-based index of the first zero pivot.
int dgetf2(int m, int n, double* a, int lda, int* ipiv, int row0);

/// Row interchanges (LAPACK dlaswp): for i in [0, k), swap rows `row0 + i`
/// and `ipiv[i]` across columns [0, ncols) of `a`.
void dlaswp(int ncols, double* a, int lda, int row0, int k, const int* ipiv);

/// Blocked LU with partial pivoting on the host (reference). ipiv is
/// resized to min(m, n). Returns like dgetf2.
int dgetrf_host(HostMatrix& a, int nb, std::vector<int>& ipiv);

// --- verification helpers ---------------------------------------------------

/// ||A - L L^T||_max for a factored lower Cholesky against the original.
double cholesky_residual(const HostMatrix& original,
                         const HostMatrix& factored);

/// ||A - Q R||_max for a factored QR (vectors + tau) against the original.
double qr_residual(const HostMatrix& original, const HostMatrix& factored,
                   const std::vector<double>& tau);

/// ||Q^T Q - I||_max for the factored QR's orthogonal factor.
double qr_orthogonality(const HostMatrix& factored,
                        const std::vector<double>& tau);

/// ||P A - L U||_max for a factored LU against the original.
double lu_residual(const HostMatrix& original, const HostMatrix& factored,
                   const std::vector<int>& ipiv);

}  // namespace dacc::la
