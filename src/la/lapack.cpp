#include "la/lapack.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace dacc::la {

int dpotf2(int n, double* a, int lda) {
  auto at = [&](int i, int j) -> double& {
    return a[static_cast<std::size_t>(j) * lda + i];
  };
  for (int j = 0; j < n; ++j) {
    double d = at(j, j);
    for (int p = 0; p < j; ++p) d -= at(j, p) * at(j, p);
    if (d <= 0.0) return j + 1;
    d = std::sqrt(d);
    at(j, j) = d;
    for (int i = j + 1; i < n; ++i) {
      double v = at(i, j);
      for (int p = 0; p < j; ++p) v -= at(i, p) * at(j, p);
      at(i, j) = v / d;
    }
  }
  return 0;
}

int dpotrf_host(HostMatrix& a, int nb) {
  if (a.m() != a.n()) throw std::invalid_argument("dpotrf_host: not square");
  const int n = a.n();
  const int ld = a.ld();
  double* p = a.data();
  for (int j = 0; j < n; j += nb) {
    const int jb = std::min(nb, n - j);
    double* diag = p + static_cast<std::size_t>(j) * ld + j;
    const int info = dpotf2(jb, diag, ld);
    if (info != 0) return j + info;
    const int rest = n - j - jb;
    if (rest > 0) {
      double* below = p + static_cast<std::size_t>(j) * ld + j + jb;
      dtrsm(Side::kRight, UpLo::kLower, Trans::kYes, Diag::kNonUnit, rest, jb,
            1.0, diag, ld, below, ld);
      double* trail = p + static_cast<std::size_t>(j + jb) * ld + j + jb;
      dsyrk(UpLo::kLower, Trans::kNo, rest, jb, -1.0, below, ld, 1.0, trail,
            ld);
    }
  }
  return 0;
}

void dgeqr2(int m, int n, double* a, int lda, double* tau) {
  auto at = [&](int i, int j) -> double& {
    return a[static_cast<std::size_t>(j) * lda + i];
  };
  const int k = std::min(m, n);
  std::vector<double> w(static_cast<std::size_t>(n));
  for (int i = 0; i < k; ++i) {
    // Generate the reflector zeroing A[i+1:m, i] (LAPACK dlarfg).
    const double alpha = at(i, i);
    const double xnorm = dnrm2(m - i - 1, &at(i + 1, i));
    if (xnorm == 0.0) {
      tau[i] = 0.0;
      continue;
    }
    double beta = -std::copysign(std::hypot(alpha, xnorm), alpha);
    tau[i] = (beta - alpha) / beta;
    dscal(m - i - 1, 1.0 / (alpha - beta), &at(i + 1, i));
    at(i, i) = beta;
    // Apply H = I - tau v v^T to A[i:m, i+1:n] (v0 = 1 implicit).
    if (i + 1 < n) {
      for (int j = i + 1; j < n; ++j) {
        double sum = at(i, j);
        for (int r = i + 1; r < m; ++r) sum += at(r, i) * at(r, j);
        w[static_cast<std::size_t>(j)] = sum;
      }
      for (int j = i + 1; j < n; ++j) {
        const double tw = tau[i] * w[static_cast<std::size_t>(j)];
        at(i, j) -= tw;
        for (int r = i + 1; r < m; ++r) at(r, j) -= at(r, i) * tw;
      }
    }
  }
}

void materialize_v(int m, int k, const double* panel, int ldp, double* v) {
  for (int c = 0; c < k; ++c) {
    for (int r = 0; r < m; ++r) {
      double value;
      if (r < c) {
        value = 0.0;
      } else if (r == c) {
        value = 1.0;
      } else {
        value = panel[static_cast<std::size_t>(c) * ldp + r];
      }
      v[static_cast<std::size_t>(c) * m + r] = value;
    }
  }
}

void dlarft(int m, int k, const double* v, int ldv, const double* tau,
            double* t, int ldt) {
  // v is the factored panel (implicit unit lower trapezoidal).
  auto vat = [&](int i, int j) -> double {
    if (i < j) return 0.0;
    if (i == j) return 1.0;
    return v[static_cast<std::size_t>(j) * ldv + i];
  };
  auto tat = [&](int i, int j) -> double& {
    return t[static_cast<std::size_t>(j) * ldt + i];
  };
  for (int i = 0; i < k; ++i) {
    for (int r = 0; r < i; ++r) tat(r, i) = 0.0;
    tat(i, i) = tau[i];
    if (tau[i] == 0.0 || i == 0) continue;
    // w = V(:, 0:i)^T * v_i
    std::vector<double> w(static_cast<std::size_t>(i), 0.0);
    for (int c = 0; c < i; ++c) {
      double sum = 0.0;
      for (int r = i; r < m; ++r) sum += vat(r, c) * vat(r, i);
      w[static_cast<std::size_t>(c)] = sum;
    }
    // T(0:i, i) = -tau_i * T(0:i, 0:i) * w
    for (int r = 0; r < i; ++r) {
      double sum = 0.0;
      for (int c = r; c < i; ++c) {
        sum += tat(r, c) * w[static_cast<std::size_t>(c)];
      }
      tat(r, i) = -tau[i] * sum;
    }
  }
}

void dlarfb(Trans trans, int m, int n, int k, const double* v, int ldv,
            const double* t, int ldt, double* c, int ldc) {
  if (n == 0 || k == 0) return;
  // W = V^T C  (k x n)
  std::vector<double> w(static_cast<std::size_t>(k) * n);
  dgemm(Trans::kYes, Trans::kNo, k, n, m, 1.0, v, ldv, c, ldc, 0.0, w.data(),
        k);
  // W := op(T) W, T upper triangular: apply as small dense gemm with the
  // transposed-or-not triangle materialized.
  std::vector<double> tw(static_cast<std::size_t>(k) * n, 0.0);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < k; ++i) {
      double sum = 0.0;
      for (int p = 0; p < k; ++p) {
        const double tv = trans == Trans::kYes
                              ? (p <= i ? t[static_cast<std::size_t>(i) * ldt +
                                            p]
                                        : 0.0)   // T^T is lower
                              : (p >= i ? t[static_cast<std::size_t>(p) * ldt +
                                            i]
                                        : 0.0);  // T is upper
        sum += tv * w[static_cast<std::size_t>(j) * k + p];
      }
      tw[static_cast<std::size_t>(j) * k + i] = sum;
    }
  }
  // C := C - V (op(T) W)
  dgemm(Trans::kNo, Trans::kNo, m, n, k, -1.0, v, ldv, tw.data(), k, 1.0, c,
        ldc);
}

void dgeqrf_host(HostMatrix& a, int nb, std::vector<double>& tau) {
  const int m = a.m();
  const int n = a.n();
  const int ld = a.ld();
  const int k = std::min(m, n);
  tau.assign(static_cast<std::size_t>(k), 0.0);
  double* p = a.data();
  std::vector<double> v;
  std::vector<double> t(static_cast<std::size_t>(nb) * nb);
  for (int j = 0; j < k; j += nb) {
    const int jb = std::min(nb, k - j);
    const int rows = m - j;
    double* panel = p + static_cast<std::size_t>(j) * ld + j;
    dgeqr2(rows, jb, panel, ld, tau.data() + j);
    if (j + jb < n) {
      v.assign(static_cast<std::size_t>(rows) * jb, 0.0);
      materialize_v(rows, jb, panel, ld, v.data());
      dlarft(rows, jb, panel, ld, tau.data() + j, t.data(), nb);
      double* trail = p + static_cast<std::size_t>(j + jb) * ld + j;
      dlarfb(Trans::kYes, rows, n - j - jb, jb, v.data(), rows, t.data(), nb,
             trail, ld);
    }
  }
}

int dgetf2(int m, int n, double* a, int lda, int* ipiv, int row0) {
  auto at = [&](int i, int j) -> double& {
    return a[static_cast<std::size_t>(j) * lda + i];
  };
  const int k = std::min(m, n);
  int info = 0;
  for (int i = 0; i < k; ++i) {
    // Partial pivoting: largest magnitude in column i at or below row i.
    int piv = i;
    double best = std::fabs(at(i, i));
    for (int r = i + 1; r < m; ++r) {
      const double v = std::fabs(at(r, i));
      if (v > best) {
        best = v;
        piv = r;
      }
    }
    ipiv[i] = row0 + piv;
    if (best == 0.0) {
      if (info == 0) info = i + 1;
      continue;
    }
    if (piv != i) {
      for (int c = 0; c < n; ++c) std::swap(at(i, c), at(piv, c));
    }
    const double inv_pivot = 1.0 / at(i, i);
    for (int r = i + 1; r < m; ++r) at(r, i) *= inv_pivot;
    for (int c = i + 1; c < n; ++c) {
      const double u = at(i, c);
      if (u == 0.0) continue;
      for (int r = i + 1; r < m; ++r) at(r, c) -= at(r, i) * u;
    }
  }
  return info;
}

void dlaswp(int ncols, double* a, int lda, int row0, int k, const int* ipiv) {
  for (int i = 0; i < k; ++i) {
    const int r1 = row0 + i;
    const int r2 = ipiv[i];
    if (r1 == r2) continue;
    for (int c = 0; c < ncols; ++c) {
      std::swap(a[static_cast<std::size_t>(c) * lda + r1],
                a[static_cast<std::size_t>(c) * lda + r2]);
    }
  }
}

int dgetrf_host(HostMatrix& a, int nb, std::vector<int>& ipiv) {
  const int m = a.m();
  const int n = a.n();
  const int ld = a.ld();
  const int k = std::min(m, n);
  ipiv.assign(static_cast<std::size_t>(k), 0);
  double* p = a.data();
  int info = 0;
  for (int j = 0; j < k; j += nb) {
    const int jb = std::min(nb, k - j);
    // Factor the panel (rows j..m) with pivoting local to it.
    const int panel_info = dgetf2(m - j, jb,
                                  p + static_cast<std::size_t>(j) * ld + j,
                                  ld, ipiv.data() + j, j);
    if (panel_info != 0 && info == 0) info = j + panel_info;
    // Apply the interchanges to the columns outside the panel.
    dlaswp(j, p, ld, j, jb, ipiv.data() + j);
    if (j + jb < n) {
      dlaswp(n - j - jb, p + static_cast<std::size_t>(j + jb) * ld, ld, j,
             jb, ipiv.data() + j);
      // U12 := inv(L11, unit) * A12.
      dtrsm(Side::kLeft, UpLo::kLower, Trans::kNo, Diag::kUnit, jb,
            n - j - jb, 1.0, p + static_cast<std::size_t>(j) * ld + j, ld,
            p + static_cast<std::size_t>(j + jb) * ld + j, ld);
      // Trailing update: A22 -= L21 * U12.
      if (j + jb < m) {
        dgemm(Trans::kNo, Trans::kNo, m - j - jb, n - j - jb, jb, -1.0,
              p + static_cast<std::size_t>(j) * ld + j + jb, ld,
              p + static_cast<std::size_t>(j + jb) * ld + j, ld, 1.0,
              p + static_cast<std::size_t>(j + jb) * ld + j + jb, ld);
      }
    }
  }
  return info;
}

double lu_residual(const HostMatrix& original, const HostMatrix& factored,
                   const std::vector<int>& ipiv) {
  const int m = original.m();
  const int n = original.n();
  const int k = std::min(m, n);
  // P A: apply the interchanges to a copy of the original.
  HostMatrix pa = original;
  dlaswp(n, pa.data(), pa.ld(), 0, static_cast<int>(ipiv.size()),
         ipiv.data());
  // L U from the factored matrix.
  HostMatrix rebuilt(m, n);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) {
      double sum = 0.0;
      const int limit = std::min({i, j + 1, k});
      for (int p = 0; p < limit; ++p) {
        sum += factored.at(i, p) * factored.at(p, j);  // L(i,p) U(p,j)
      }
      if (i <= j && i < k) sum += factored.at(i, j);  // L(i,i) = 1
      rebuilt.at(i, j) = sum;
    }
  }
  return HostMatrix::max_abs_diff(pa, rebuilt);
}

double cholesky_residual(const HostMatrix& original,
                         const HostMatrix& factored) {
  const int n = original.n();
  HostMatrix rebuilt(n, n);
  // rebuilt = L * L^T from the lower triangle of `factored`.
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      double sum = 0.0;
      const int kmax = std::min(i, j);
      for (int p = 0; p <= kmax; ++p) {
        sum += factored.at(i, p) * factored.at(j, p);
      }
      rebuilt.at(i, j) = sum;
    }
  }
  return HostMatrix::max_abs_diff(original, rebuilt);
}

namespace {

/// Materializes Q (m x m) from the factored panel + tau by applying the
/// reflectors to the identity: Q = H_0 H_1 ... H_{k-1}.
HostMatrix build_q(const HostMatrix& factored,
                   const std::vector<double>& tau) {
  const int m = factored.m();
  const int k = static_cast<int>(tau.size());
  HostMatrix q(m, m);
  for (int i = 0; i < m; ++i) q.at(i, i) = 1.0;
  for (int i = k - 1; i >= 0; --i) {
    if (tau[static_cast<std::size_t>(i)] == 0.0) continue;
    // v = [zeros(i); 1; A[i+1:m, i]]
    std::vector<double> v(static_cast<std::size_t>(m), 0.0);
    v[static_cast<std::size_t>(i)] = 1.0;
    for (int r = i + 1; r < m; ++r) {
      v[static_cast<std::size_t>(r)] = factored.at(r, i);
    }
    // Q := (I - tau v v^T) Q
    std::vector<double> w(static_cast<std::size_t>(m), 0.0);
    dgemv(Trans::kYes, m, m, 1.0, q.data(), m, v.data(), 0.0, w.data());
    dger(m, m, -tau[static_cast<std::size_t>(i)], v.data(), w.data(),
         q.data(), m);
  }
  return q;
}

}  // namespace

double qr_residual(const HostMatrix& original, const HostMatrix& factored,
                   const std::vector<double>& tau) {
  const int m = original.m();
  const int n = original.n();
  const HostMatrix q = build_q(factored, tau);
  // R = upper trapezoid of factored.
  HostMatrix rebuilt(m, n);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) {
      double sum = 0.0;
      for (int p = 0; p <= std::min(j, m - 1); ++p) {
        sum += q.at(i, p) * factored.at(p, j);
      }
      rebuilt.at(i, j) = sum;
    }
  }
  return HostMatrix::max_abs_diff(original, rebuilt);
}

double qr_orthogonality(const HostMatrix& factored,
                        const std::vector<double>& tau) {
  const HostMatrix q = build_q(factored, tau);
  const int m = q.m();
  double worst = 0.0;
  for (int j = 0; j < m; ++j) {
    for (int i = 0; i < m; ++i) {
      double sum = 0.0;
      for (int p = 0; p < m; ++p) sum += q.at(p, i) * q.at(p, j);
      worst = std::max(worst, std::fabs(sum - (i == j ? 1.0 : 0.0)));
    }
  }
  return worst;
}

}  // namespace dacc::la
