// Cost-model parameters for the hybrid linear-algebra workloads, calibrated
// to the paper's testbed: Tesla C1060 GPUs (double-precision peak
// 78 GFlop/s) driven by MAGMA 1.1-style hybrid algorithms with the panel
// factorizations on the host Xeon X5670 (Section V.B).
#pragma once

#include "util/units.hpp"

namespace dacc::la {

struct LaParams {
  /// Sustained DP GEMM-class throughput of one GPU.
  double gpu_gemm_gflops = 73.0;

  /// Block-reflector (dlarfb) updates run slightly below square GEMM on the
  /// skinny shapes QR produces.
  double gpu_larfb_gflops = 62.0;

  /// Triangular solve on the GPU.
  double gpu_trsm_gflops = 45.0;

  /// Symmetric rank-k trailing updates (Cholesky).
  double gpu_syrk_gflops = 66.0;

  /// Fixed start-up per LA kernel beyond the device launch overhead
  /// (geometry setup, skinny-shape inefficiency floor).
  SimDuration gpu_kernel_setup = 12'000;  // ns

  /// Device-memory copy rate for pack/unpack kernels (cudaMemcpy2D-class).
  double gpu_pack_mib_s = 60.0 * 1024.0;

  /// Host panel factorization throughput (dgeqr2 + dlarft, dpotf2): panel
  /// ops are memory-bound level-2 BLAS on the host.
  double cpu_panel_gflops = 9.5;

  /// Look-ahead in the hybrid QR: the owner of the *next* panel updates
  /// that panel's block first and defers the rest of its trailing update,
  /// so the next panel download and CPU factorization overlap with the bulk
  /// of the update. Off by default to match the paper-era MAGMA 1.1
  /// behaviour our Figure 9 calibration targets; bench/abl_lookahead
  /// quantifies what it buys.
  bool qr_lookahead = false;
};

/// Simulated duration of `flops` at `gflops` (nanoseconds).
inline SimDuration flops_time(double flops, double gflops) {
  if (gflops <= 0.0) return 0;
  return static_cast<SimDuration>(flops / gflops + 0.5);
}

}  // namespace dacc::la
