// 1-D block-cyclic column distribution, as used by MAGMA 1.1's multi-GPU
// factorizations: column block b lives on GPU b % g, at local block index
// b / g. Only the last block may be partial, so local column offsets are
// uniform multiples of nb.
#pragma once

#include <algorithm>
#include <stdexcept>

namespace dacc::la {

struct BlockCyclic {
  int n = 0;   ///< global number of columns
  int nb = 0;  ///< block width
  int g = 1;   ///< number of GPUs

  BlockCyclic(int n_, int nb_, int g_) : n(n_), nb(nb_), g(g_) {
    if (n < 0 || nb <= 0 || g <= 0) {
      throw std::invalid_argument("BlockCyclic: bad parameters");
    }
  }

  int nblocks() const { return (n + nb - 1) / nb; }
  int owner(int b) const { return b % g; }
  int local_block(int b) const { return b / g; }
  int local_col(int b) const { return (b / g) * nb; }
  int block_col(int b) const { return b * nb; }
  int block_width(int b) const { return std::min(nb, n - b * nb); }

  /// Total columns owned by GPU `me`.
  int local_cols(int me) const {
    int cols = 0;
    for (int b = me; b < nblocks(); b += g) cols += block_width(b);
    return cols;
  }

  /// First block index > `b0` owned by `me`, or nblocks() if none.
  int next_owned_after(int me, int b0) const {
    for (int b = b0 + 1; b < nblocks(); ++b) {
      if (owner(b) == me) return b;
    }
    return nblocks();
  }

  /// Number of columns owned by `me` in blocks strictly after `b0`.
  int trailing_cols(int me, int b0) const {
    int cols = 0;
    for (int b = b0 + 1; b < nblocks(); ++b) {
      if (owner(b) == me) cols += block_width(b);
    }
    return cols;
  }
};

}  // namespace dacc::la
