// Middleware observability: run a small remote-GPU workload with the
// metrics registry attached and dump the snapshot in both exporter formats.
// The snapshot is deterministic — byte-identical under every execution
// backend — so the files double as a cross-backend equality probe
// (scripts/check_determinism.sh runs this binary under
// DACC_SIM_BACKEND=coroutine|thread|parallel:4 and compares the outputs).
//
//   $ ./examples/metrics_dump [out_prefix]
//   wrote dacc_metrics.json and dacc_metrics.prom
#include <cstdio>
#include <fstream>
#include <string>

#include "core/api.hpp"
#include "rt/cluster.hpp"
#include "util/units.hpp"

using namespace dacc;

int main(int argc, char** argv) {
  const std::string prefix = argc > 1 ? argv[1] : "dacc_metrics";

  rt::ClusterConfig config;
  config.compute_nodes = 2;
  config.accelerators = 2;
  config.metrics = true;
  rt::Cluster cluster(config);

  rt::JobSpec job;
  job.name = "metered";
  job.ranks = 2;
  job.accelerators_per_rank = 1;
  job.body = [](rt::JobContext& ctx) {
    core::Accelerator& ac = ctx.session()[0];
    const gpu::DevPtr p = ac.mem_alloc(8_MiB);
    ac.memcpy_h2d(p, util::Buffer::backed_zero(8_MiB));
    ac.launch("dscal", {}, {std::int64_t{1 << 20}, 1.5, p});
    (void)ac.memcpy_d2h(p, 8_MiB);
    // A little app-level MPI so the per-rank dmpi counters have something
    // to say beyond middleware traffic.
    const int peer = 1 - ctx.rank();
    if (ctx.rank() == 0) {
      ctx.mpi().send(ctx.job_comm(), peer, 7, util::Buffer::phantom(1_MiB));
    } else {
      (void)ctx.mpi().recv(ctx.job_comm(), peer, 7);
    }
  };
  cluster.submit(job);
  cluster.run();

  const obs::Registry& metrics = cluster.metrics();
  const std::string json_path = prefix + ".json";
  const std::string prom_path = prefix + ".prom";
  {
    // Backend-invariant snapshot: the parallel backend's per-shard era
    // series (dacc_sim_shard_*) describe scheduling — they depend on the
    // shard map by design — so they go to a separate file that the
    // determinism gate compares parallel-run against parallel-replay.
    std::ofstream out(json_path);
    metrics.write_json(out, obs::Registry::kShardSeriesPrefix,
                       /*include=*/false);
  }
  {
    std::ofstream out(prom_path);
    metrics.write_prometheus(out, obs::Registry::kShardSeriesPrefix,
                             /*include=*/false);
  }
  {
    std::ofstream out(prefix + ".shard.prom");
    metrics.write_prometheus(out, obs::Registry::kShardSeriesPrefix,
                             /*include=*/true);
  }
  if (config.profile) {
    // The wallclock tier (DACC_PROF=1): dacc_prof_* series go to their own
    // file, never into the deterministic snapshot above — the determinism
    // gate byte-compares the .json/.prom files while this one varies run
    // to run by nature.
    std::ofstream out(prefix + ".prof.prom");
    cluster.profiler().write_prometheus(out);
    std::printf("wrote %s (wallclock tier, non-deterministic)\n",
                (prefix + ".prof.prom").c_str());
  }
  std::printf("collected %zu metrics over %.2f ms of simulated time\n",
              metrics.size(), to_ms(cluster.engine().now()));
  std::printf("wrote %s and %s\n", json_path.c_str(), prom_path.c_str());

  // A few headline numbers, straight from the snapshot API:
  std::printf("\n  daemon requests (ac0):  %llu\n",
              static_cast<unsigned long long>(metrics.counter_value(
                  "dacc_daemon_requests_total{rank=\"" +
                  std::to_string(cluster.daemon_rank(0)) + "\"}")));
  std::printf("  fe h2d ops:             %llu\n",
              static_cast<unsigned long long>(metrics.histogram_count(
                  "dacc_fe_op_latency_ns{op=\"h2d\"}")));
  std::printf("  net bytes sent (cn0):   %llu\n",
              static_cast<unsigned long long>(
                  metrics.counter_value("dacc_net_tx_bytes_total{node=\"0\"}")));
  return 0;
}
