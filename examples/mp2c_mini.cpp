// A miniature MP2C run (paper Section V.C): SRD fluid over 2 MPI ranks,
// collision step offloaded to one network-attached accelerator per rank.
// Prints the conservation checks and the simulated runtime.
//
//   $ ./examples/mp2c_mini
#include <cstdio>

#include "mdsim/mp2c.hpp"
#include "util/units.hpp"

using namespace dacc;

int main() {
  auto registry = gpu::KernelRegistry::with_builtins();
  mdsim::register_mdsim_kernels(*registry);

  rt::ClusterConfig config;
  config.compute_nodes = 2;
  config.accelerators = 2;
  config.registry = registry;
  rt::Cluster cluster(config);

  const std::uint64_t particles = 20'000;
  mdsim::SrdParams srd;
  srd.steps = 50;

  std::array<mdsim::Mp2cResult, 2> results;
  rt::JobSpec job;
  job.name = "mp2c";
  job.ranks = 2;
  job.accelerators_per_rank = 1;
  job.body = [&](rt::JobContext& ctx) {
    core::RemoteDeviceLink gpu(ctx.session()[0], ctx.ctx());
    results[static_cast<std::size_t>(ctx.rank())] =
        mdsim::run_mp2c(ctx, &gpu, particles, srd);
  };
  cluster.submit(job);
  cluster.run();

  const auto& r = results[0];
  const double expected_ke = 1.5 * static_cast<double>(particles);
  std::printf("MP2C mini: %llu particles, %d steps, SRD every %d-th\n",
              static_cast<unsigned long long>(particles), srd.steps,
              srd.srd_every);
  std::printf("  ranks hold %llu + %llu particles (migrated %llu | %llu)\n",
              static_cast<unsigned long long>(results[0].local_particles),
              static_cast<unsigned long long>(results[1].local_particles),
              static_cast<unsigned long long>(results[0].migrated_out),
              static_cast<unsigned long long>(results[1].migrated_out));
  std::printf("  kinetic energy: %.1f (thermal expectation %.1f) %s\n",
              r.kinetic_energy, expected_ke,
              std::abs(r.kinetic_energy - expected_ke) < 0.05 * expected_ke
                  ? "OK"
                  : "suspicious");
  std::printf("  net momentum: (%.3g, %.3g, %.3g) — conserved near 0\n",
              r.momentum[0], r.momentum[1], r.momentum[2]);
  std::printf("  simulated wall time: %.1f ms\n", to_ms(r.elapsed));
  return 0;
}
