// A miniature MP2C run (paper Section V.C): SRD fluid over 2 MPI ranks,
// collision step offloaded to one network-attached accelerator per rank.
// Prints the conservation checks and the simulated runtime, then drives an
// explicit command-stream burst to show kBatch flushing (DESIGN.md §10).
//
//   $ ./examples/mp2c_mini                  # unbatched: 2 msgs per op
//   $ DACC_RPC_BATCH=16 ./examples/mp2c_mini  # async burst flushes as batches
#include <cstdio>
#include <vector>

#include "mdsim/mp2c.hpp"
#include "obs/metrics.hpp"
#include "util/units.hpp"

using namespace dacc;

int main() {
  auto registry = gpu::KernelRegistry::with_builtins();
  mdsim::register_mdsim_kernels(*registry);

  rt::ClusterConfig config;
  config.compute_nodes = 2;
  config.accelerators = 2;
  config.registry = registry;
  config.metrics = true;
  // config.batch defaults to rpc::default_stream_config(), which reads
  // DACC_RPC_BATCH: unset/0/off = legacy wire, 1/on = watermark 16,
  // N > 1 = watermark N.
  rt::Cluster cluster(config);

  const std::uint64_t particles = 20'000;
  mdsim::SrdParams srd;
  srd.steps = 50;

  std::array<mdsim::Mp2cResult, 2> results;
  rt::JobSpec job;
  job.name = "mp2c";
  job.ranks = 2;
  job.accelerators_per_rank = 1;
  job.body = [&](rt::JobContext& ctx) {
    core::RemoteDeviceLink gpu(ctx.session()[0], ctx.ctx());
    results[static_cast<std::size_t>(ctx.rank())] =
        mdsim::run_mp2c(ctx, &gpu, particles, srd);
  };
  cluster.submit(job);
  cluster.run();

  const auto& r = results[0];
  const double expected_ke = 1.5 * static_cast<double>(particles);
  std::printf("MP2C mini: %llu particles, %d steps, SRD every %d-th\n",
              static_cast<unsigned long long>(particles), srd.steps,
              srd.srd_every);
  std::printf("  ranks hold %llu + %llu particles (migrated %llu | %llu)\n",
              static_cast<unsigned long long>(results[0].local_particles),
              static_cast<unsigned long long>(results[1].local_particles),
              static_cast<unsigned long long>(results[0].migrated_out),
              static_cast<unsigned long long>(results[1].migrated_out));
  std::printf("  kinetic energy: %.1f (thermal expectation %.1f) %s\n",
              r.kinetic_energy, expected_ke,
              std::abs(r.kinetic_energy - expected_ke) < 0.05 * expected_ke
                  ? "OK"
                  : "suspicious");
  std::printf("  net momentum: (%.3g, %.3g, %.3g) — conserved near 0\n",
              r.momentum[0], r.momentum[1], r.momentum[2]);
  std::printf("  simulated wall time: %.1f ms\n", to_ms(r.elapsed));

  // Command-stream flushing, made explicit: a burst of *_async launches
  // queues ops faster than the proxy drains them, so with batching enabled
  // the run coalesces into kBatch frames (one request + one completion per
  // flush) instead of two messages per op. Synchronous calls — everything
  // MP2C above did through RemoteDeviceLink barriers — always flush
  // immediately, one op per frame.
  const std::string chan =
      "{chan=\"fe-r" + std::to_string(cluster.cn_rank(0)) + "\"}";
  const obs::Registry& m = cluster.metrics();
  const std::uint64_t msgs0 = m.counter_value("dacc_rpc_msgs_total" + chan);
  const std::uint64_t ops0 = m.counter_value("dacc_rpc_ops_total" + chan);

  rt::JobSpec burst;
  burst.name = "burst";
  burst.accelerators_per_rank = 1;
  burst.body = [](rt::JobContext& ctx) {
    core::Accelerator& ac = ctx.session()[0];
    const std::int64_t n = 4096;
    const gpu::DevPtr p = ac.mem_alloc(static_cast<std::uint64_t>(n) * 8);
    std::vector<core::Future> stream;
    for (int i = 0; i < 24; ++i) {
      // Each call enqueues one kKernelRun on the accelerator's command
      // stream and returns a future; nothing forces a flush yet.
      stream.push_back(ac.launch_async("dscal", {}, {n, 1.01, p}));
    }
    // Waiting is the flush point: the proxy drains the queued run, sends
    // it (batched: watermark-sized kBatch frames; unbatched: one frame
    // per op) and completes the futures.
    ctx.session().wait_all(stream);
    ac.mem_free(p);
  };
  cluster.submit(burst, /*first_cn=*/0);
  cluster.run();

  const std::uint64_t msgs = m.counter_value("dacc_rpc_msgs_total" + chan);
  const std::uint64_t ops = m.counter_value("dacc_rpc_ops_total" + chan);
  std::printf("command-stream burst: 26 ops (alloc + 24 async dscal + free)\n");
  std::printf("  batching %s (watermark %u)\n",
              config.batch.enabled ? "ON" : "OFF — set DACC_RPC_BATCH=16",
              config.batch.watermark);
  std::printf("  front-end wire: %llu messages for %llu ops = %.2f msgs/op\n",
              static_cast<unsigned long long>(msgs - msgs0),
              static_cast<unsigned long long>(ops - ops0),
              static_cast<double>(msgs - msgs0) /
                  static_cast<double>(ops - ops0));
  return 0;
}
