// Dynamic accelerator assignment (paper Figure 3(b)): a job with phases of
// different computational demand acquires and releases accelerators at
// runtime through the resource-management API, so the pool serves other
// jobs in between. Two jobs share three accelerators.
//
//   $ ./examples/dynamic_allocation
#include <cstdio>

#include "core/api.hpp"
#include "rt/cluster.hpp"
#include "util/units.hpp"

using namespace dacc;

namespace {

void burn_on(rt::JobContext& ctx, core::Accelerator& ac, int launches) {
  const gpu::DevPtr p = ac.mem_alloc(8_MiB);
  ac.memcpy_h2d(p, util::Buffer::backed_zero(8_MiB));
  for (int i = 0; i < launches; ++i) {
    ac.launch("dscal", {}, {std::int64_t{1024 * 1024}, 1.001, p});
  }
  (void)ac.memcpy_d2h(p, 8_MiB);
  ac.mem_free(p);
  (void)ctx;
}

}  // namespace

int main() {
  rt::ClusterConfig config;
  config.compute_nodes = 2;
  config.accelerators = 3;
  rt::Cluster cluster(config);

  auto phase_report = [&](rt::JobContext& ctx, const char* who,
                          const char* phase) {
    const arm::PoolStats s = ctx.session().arm().stats();
    std::printf("[%-6s t=%7.2f ms] %s: pool %u free / %u assigned\n", who,
                to_ms(ctx.ctx().now()), phase, s.free, s.assigned);
  };

  // Job A: light phase on 1 accelerator, then a burst needing 3.
  rt::JobSpec burst;
  burst.name = "burst";
  burst.body = [&](rt::JobContext& ctx) {
    auto first = ctx.session().acquire(1, /*wait=*/true);
    phase_report(ctx, "burst", "phase 1 acquired 1 accelerator");
    burn_on(ctx, *first[0], 20);

    // Burst phase: grab two more — dynamically, mid-job.
    auto extra = ctx.session().acquire(2, /*wait=*/true);
    phase_report(ctx, "burst", "phase 2 acquired 2 more      ");
    for (core::Accelerator* ac : extra) burn_on(ctx, *ac, 50);
    burn_on(ctx, *first[0], 50);

    // Release the burst capacity but keep working on one.
    for (core::Accelerator* ac : extra) ctx.session().release(ac);
    phase_report(ctx, "burst", "phase 3 released the burst   ");
    burn_on(ctx, *first[0], 20);
  };

  // Job B: a steady single-accelerator consumer that has to wait while the
  // burst holds the whole pool.
  rt::JobSpec steady;
  steady.name = "steady";
  steady.body = [&](rt::JobContext& ctx) {
    ctx.ctx().wait_for(2_ms);  // arrive mid-burst
    auto acs = ctx.session().acquire(1, /*wait=*/true);
    phase_report(ctx, "steady", "acquired after waiting       ");
    burn_on(ctx, *acs[0], 100);
  };

  cluster.submit(burst, 0);
  cluster.submit(steady, 1);
  cluster.run();

  const auto util = cluster.arm_utilization(cluster.engine().now());
  std::printf("\naccelerator busy fractions over the run:");
  for (double u : util) std::printf("  %.0f%%", 100.0 * u);
  std::printf("\n(acquisitions served: %llu)\n",
              static_cast<unsigned long long>(
                  cluster.arm_stats().acquisitions));
  return 0;
}
