// Accelerator-to-accelerator transfers (paper Section III.C): "in our
// scheme accelerators can efficiently exchange data without involving their
// associated compute nodes" — something plain CUDA 4.2 / OpenCL 1.2 could
// not do across a network. This example compares the direct peer path with
// the naive route through the compute node.
//
//   $ ./examples/peer_transfer
#include <cstdio>

#include "core/api.hpp"
#include "rt/cluster.hpp"
#include "util/units.hpp"

using namespace dacc;

int main() {
  rt::ClusterConfig config;
  config.compute_nodes = 1;
  config.accelerators = 2;
  config.functional_gpus = true;
  rt::Cluster cluster(config);

  rt::JobSpec job;
  job.name = "peer";
  job.accelerators_per_rank = 2;
  job.body = [](rt::JobContext& ctx) {
    core::Accelerator& a = ctx.session()[0];
    core::Accelerator& b = ctx.session()[1];
    const std::uint64_t bytes = 32_MiB;
    const std::int64_t n = static_cast<std::int64_t>(bytes / 8);
    const gpu::DevPtr da = a.mem_alloc(bytes);
    const gpu::DevPtr db = b.mem_alloc(bytes);
    a.launch("fill_f64", {}, {da, n, 7.5});

    // Route 1: D2H to the compute node, then H2D to the other accelerator.
    SimTime t0 = ctx.ctx().now();
    util::Buffer staged = a.memcpy_d2h(da, bytes);
    b.memcpy_h2d(db, std::move(staged));
    const SimDuration via_host = ctx.ctx().now() - t0;

    // Route 2: direct accelerator-to-accelerator.
    t0 = ctx.ctx().now();
    a.copy_to_peer(da, b, db, bytes);
    const SimDuration direct = ctx.ctx().now() - t0;

    auto out = b.memcpy_d2h(db, bytes);
    const bool ok = out.as<double>()[12345] == 7.5;

    std::printf("moving %llu MiB between two accelerators:\n",
                static_cast<unsigned long long>(bytes / 1_MiB));
    std::printf("  via compute node : %7.2f ms (%.0f MiB/s)\n",
                to_ms(via_host), mib_per_s(bytes, via_host));
    std::printf("  direct peer copy : %7.2f ms (%.0f MiB/s)\n",
                to_ms(direct), mib_per_s(bytes, direct));
    std::printf("  speedup %.2fx, data %s\n",
                static_cast<double>(via_host) / static_cast<double>(direct),
                ok ? "verified" : "CORRUPT");
  };
  cluster.submit(job);
  cluster.run();
  return 0;
}
