// Replicated ARM under chaos, exported: run a 3-replica ARM group
// (DESIGN.md §11) with a seeded leader kill mid-run, then dump the metrics
// snapshot in both exporter formats plus a text digest of the consensus
// events (elections, leader terms, the kill itself) and the final lease
// table fingerprint. Everything written is deterministic — byte-identical
// under every execution backend and shard count — so the files double as
// the replicated-ARM probe in scripts/check_determinism.sh.
//
//   $ ./examples/raft_dump [out_prefix] [chaos_seed]
//   wrote dacc_raft.json, dacc_raft.prom and dacc_raft.raft
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "arm/raft/node.hpp"
#include "core/api.hpp"
#include "rt/cluster.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

using namespace dacc;

int main(int argc, char** argv) {
  const std::string prefix = argc > 1 ? argv[1] : "dacc_raft";
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42ull;

  rt::ClusterConfig config;
  config.compute_nodes = 2;
  config.accelerators = 3;
  config.arm_replicas = 3;
  config.trace = true;
  config.metrics = true;
  rt::Cluster cluster(config);

  // One seeded leader kill after the first election has settled but while
  // both jobs still hold leases (same window discipline as the chaos tier
  // in tests/common/chaos.hpp).
  util::Rng rng(seed);
  const SimTime kill_at = 4_ms + rng.next_below(6'000'000);
  cluster.kill_arm_leader(kill_at);

  std::size_t granted0 = 0;
  std::size_t granted1 = 0;
  rt::JobSpec a;
  a.name = "hold2";
  a.body = [&granted0](rt::JobContext& job) {
    granted0 = job.session().acquire(2, /*wait=*/true).size();
    job.ctx().wait_for(10_ms);
  };
  rt::JobSpec b;
  b.name = "hold1";
  b.body = [&granted1](rt::JobContext& job) {
    granted1 = job.session().acquire(1, /*wait=*/true).size();
    job.ctx().wait_for(6_ms);
  };
  cluster.submit(a, /*first_cn=*/0);
  cluster.submit(b, /*first_cn=*/1);
  cluster.run();

  if (granted0 != 2 || granted1 != 1) {
    std::fprintf(stderr, "raft_dump: leases not granted (%zu, %zu)\n",
                 granted0, granted1);
    return 1;
  }
  int kills = 0;
  for (const auto& span : cluster.tracer().track("chaos")) {
    if (span.name.rfind("kill-leader-", 0) == 0) ++kills;
  }
  if (kills != 1) {
    std::fprintf(stderr, "raft_dump: expected 1 leader kill, saw %d\n",
                 kills);
    return 1;
  }

  const obs::Registry& metrics = cluster.metrics();
  {
    // Backend-invariant snapshot: the parallel backend's per-shard era
    // series (dacc_sim_shard_*) describe scheduling, not simulated
    // behavior, so they are split into their own file below.
    std::ofstream out(prefix + ".json");
    metrics.write_json(out, obs::Registry::kShardSeriesPrefix,
                       /*include=*/false);
  }
  {
    std::ofstream out(prefix + ".prom");
    metrics.write_prometheus(out, obs::Registry::kShardSeriesPrefix,
                             /*include=*/false);
  }
  {
    std::ofstream out(prefix + ".shard.prom");
    metrics.write_prometheus(out, obs::Registry::kShardSeriesPrefix,
                             /*include=*/true);
  }
  {
    // Consensus digest: every raft/chaos trace event in order, then the
    // surviving group's agreed state. A byte-diff of this file across
    // backends pins the whole election history, not just the end state.
    std::ofstream out(prefix + ".raft");
    for (const char* track : {"raft", "chaos"}) {
      for (const auto& span : cluster.tracer().track(track)) {
        out << track << " " << span.name << " @" << span.begin << "\n";
      }
    }
    for (int r = 0; r < config.arm_replicas; ++r) {
      const arm::raft::RaftNode& node = cluster.arm_replica(r);
      out << "replica " << r << (node.halted() ? " dead" : " live");
      if (!node.halted()) {
        out << " term=" << node.term() << " commit=" << node.commit_index()
            << " lease_fp=" << std::hex << node.machine().fingerprint()
            << std::dec;
      }
      out << "\n";
    }
  }

  const arm::PoolStats stats = cluster.arm_stats();
  std::printf("raft_dump: seed %llu killed the leader at t=%.2f ms\n",
              static_cast<unsigned long long>(seed), to_ms(kill_at));
  std::printf(
      "pool after drain: %u free of %u (%llu acquisitions served)\n",
      stats.free, stats.total,
      static_cast<unsigned long long>(stats.acquisitions));
  std::printf("wrote %s.json, %s.prom and %s.raft\n", prefix.c_str(),
              prefix.c_str(), prefix.c_str());
  return stats.free == stats.total ? 0 : 1;
}
