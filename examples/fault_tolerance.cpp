// Fault tolerance (paper Section III.A): a broken accelerator does not take
// its compute node down.
//
// Part 1 recovers by hand: the job catches the ECC failure, reports the
// device to the resource manager, acquires a healthy replacement, and
// finishes its work.
//
// Part 2 lets the middleware do all of that transparently: with
// `retry.replace_on_failure` the session re-acquires a healthy accelerator
// behind the app's back and replays the allocation map, so the job body has
// no error handling at all — the device dies mid-run and the loop simply
// keeps going. Heartbeats revoke the dead accelerator's lease at the ARM.
//
//   $ ./examples/fault_tolerance
#include <cstdio>

#include "core/api.hpp"
#include "rt/cluster.hpp"
#include "util/units.hpp"

using namespace dacc;

// Part 1: explicit recovery through the resource-management API.
void manual_recovery() {
  rt::ClusterConfig config;
  config.compute_nodes = 1;
  config.accelerators = 2;
  rt::Cluster cluster(config);

  // The first accelerator dies 5 ms into the run.
  cluster.break_accelerator(0, 5_ms);

  rt::JobSpec job;
  job.name = "resilient";
  job.body = [](rt::JobContext& ctx) {
    auto acs = ctx.session().acquire(1, /*wait=*/true);
    core::Accelerator* ac = acs[0];
    std::printf("working on accelerator (daemon rank %d)\n",
                ac->daemon_rank());

    const std::int64_t n = 1 << 18;
    const auto bytes = static_cast<std::uint64_t>(n) * 8;
    int completed = 0;
    gpu::DevPtr p = ac->mem_alloc(bytes);
    for (int round = 0; round < 40; ++round) {
      try {
        ac->launch("fill_f64", {}, {p, n, static_cast<double>(round)});
        (void)ac->memcpy_d2h(p, bytes);
        ++completed;
      } catch (const core::AcError& e) {
        std::printf(
            "round %d: accelerator failed (%s) at t=%.2f ms — compute node "
            "unaffected\n",
            round, gpu::to_string(e.code()), to_ms(ctx.ctx().now()));
        // Tell the ARM, drop the lease, get a healthy replacement.
        ctx.session().arm().report_broken(ac->daemon_rank());
        ctx.session().release(ac);
        auto replacement = ctx.session().acquire(1, /*wait=*/true);
        ac = replacement[0];
        p = ac->mem_alloc(bytes);
        std::printf("resumed on replacement accelerator (daemon rank %d)\n",
                    ac->daemon_rank());
      }
    }
    std::printf("completed %d/40 rounds; final check: ", completed);
    auto out = ac->memcpy_d2h(p, bytes);
    std::printf("%s\n", out.as<double>()[0] == 39.0 ? "PASSED" : "FAILED");
  };
  cluster.submit(job);
  cluster.run();

  const auto stats = cluster.arm_stats();
  std::printf("pool at end: %u broken, %u free of %u\n", stats.broken,
              stats.free, stats.total);
}

// Part 2: the same failure, survived with zero application-side handling.
void transparent_replacement() {
  rt::ClusterConfig config;
  config.compute_nodes = 1;
  config.accelerators = 2;
  // Heartbeats revoke leases on silent accelerators; the retry policy
  // times out lost requests and swaps in a healthy device on failure.
  config.heartbeat.enabled = true;
  config.retry.request_timeout = 5_ms;
  config.retry.replace_on_failure = true;
  rt::Cluster cluster(config);

  cluster.break_accelerator(0, 5_ms);

  rt::JobSpec job;
  job.name = "oblivious";
  job.body = [](rt::JobContext& ctx) {
    auto acs = ctx.session().acquire(1, /*wait=*/true);
    core::Accelerator& ac = *acs[0];
    const dmpi::Rank first = ac.daemon_rank();

    const std::int64_t n = 1 << 18;
    const auto bytes = static_cast<std::uint64_t>(n) * 8;
    // No try/catch anywhere: the middleware replays the allocation and
    // re-drives the failed operation on the replacement device.
    const gpu::DevPtr p = ac.mem_alloc(bytes);
    for (int round = 0; round < 40; ++round) {
      ac.launch("fill_f64", {}, {p, n, static_cast<double>(round)});
      (void)ac.memcpy_d2h(p, bytes);
    }
    auto out = ac.memcpy_d2h(p, bytes);
    std::printf("all 40 rounds completed; device death %s to the job; "
                "final check: %s\n",
                ac.daemon_rank() == first ? "invisible (no failure hit)"
                                          : "transparent",
                out.as<double>()[0] == 39.0 ? "PASSED" : "FAILED");
  };
  cluster.submit(job);
  cluster.run();

  const auto stats = cluster.arm_stats();
  std::printf(
      "pool at end: %u broken, %u replacement(s), %u revocation(s), "
      "%llu heartbeat(s)\n",
      stats.broken, stats.replacements, stats.revocations,
      static_cast<unsigned long long>(stats.heartbeats));
}

int main() {
  std::printf("--- part 1: manual recovery ---\n");
  manual_recovery();
  std::printf("--- part 2: transparent replacement ---\n");
  transparent_replacement();
  return 0;
}
