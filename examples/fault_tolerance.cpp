// Fault tolerance (paper Section III.A): a broken accelerator does not take
// its compute node down. The job detects the ECC failure, reports the
// device to the resource manager, acquires a healthy replacement, and
// finishes its work.
//
//   $ ./examples/fault_tolerance
#include <cstdio>

#include "core/api.hpp"
#include "rt/cluster.hpp"
#include "util/units.hpp"

using namespace dacc;

int main() {
  rt::ClusterConfig config;
  config.compute_nodes = 1;
  config.accelerators = 2;
  rt::Cluster cluster(config);

  // The first accelerator dies 5 ms into the run.
  cluster.break_accelerator(0, 5_ms);

  rt::JobSpec job;
  job.name = "resilient";
  job.body = [](rt::JobContext& ctx) {
    auto acs = ctx.session().acquire(1, /*wait=*/true);
    core::Accelerator* ac = acs[0];
    std::printf("working on accelerator (daemon rank %d)\n",
                ac->daemon_rank());

    const std::int64_t n = 1 << 18;
    const auto bytes = static_cast<std::uint64_t>(n) * 8;
    int completed = 0;
    gpu::DevPtr p = ac->mem_alloc(bytes);
    for (int round = 0; round < 40; ++round) {
      try {
        ac->launch("fill_f64", {}, {p, n, static_cast<double>(round)});
        (void)ac->memcpy_d2h(p, bytes);
        ++completed;
      } catch (const core::AcError& e) {
        std::printf(
            "round %d: accelerator failed (%s) at t=%.2f ms — compute node "
            "unaffected\n",
            round, gpu::to_string(e.code()), to_ms(ctx.ctx().now()));
        // Tell the ARM, drop the lease, get a healthy replacement.
        ctx.session().arm().report_broken(ac->daemon_rank());
        ctx.session().release(ac);
        auto replacement = ctx.session().acquire(1, /*wait=*/true);
        ac = replacement[0];
        p = ac->mem_alloc(bytes);
        std::printf("resumed on replacement accelerator (daemon rank %d)\n",
                    ac->daemon_rank());
      }
    }
    std::printf("completed %d/40 rounds; final check: ", completed);
    auto out = ac->memcpy_d2h(p, bytes);
    std::printf("%s\n", out.as<double>()[0] == 39.0 ? "PASSED" : "FAILED");
  };
  cluster.submit(job);
  cluster.run();

  const auto stats = cluster.arm().stats();
  std::printf("pool at end: %u broken, %u free of %u\n", stats.broken,
              stats.free, stats.total);
  return 0;
}
