// Multi-GPU QR factorization: the paper's headline use case (Section V.B).
// A single compute node factors a matrix with 1, 2, and 3 network-attached
// GPUs — without any MPI parallelism in the application — and checks the
// result against the host reference.
//
//   $ ./examples/multi_gpu_qr
#include <cstdio>

#include "la/factorizations.hpp"
#include "la/lapack.hpp"
#include "rt/cluster.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

using namespace dacc;

int main() {
  const int n = 96;
  const int nb = 32;

  for (int g = 1; g <= 3; ++g) {
    rt::ClusterConfig config;
    config.compute_nodes = 1;
    config.accelerators = 3;
    config.registry = la::la_registry();
    rt::Cluster cluster(config);

    rt::JobSpec job;
    job.name = "qr";
    job.accelerators_per_rank = static_cast<std::uint32_t>(g);
    job.body = [&, g](rt::JobContext& ctx) {
      std::vector<std::unique_ptr<core::RemoteDeviceLink>> links;
      std::vector<core::DeviceLink*> gpus;
      for (std::size_t i = 0; i < ctx.session().size(); ++i) {
        links.push_back(std::make_unique<core::RemoteDeviceLink>(
            ctx.session()[i], ctx.ctx()));
        gpus.push_back(links.back().get());
      }

      util::Rng rng(2024);
      la::HostMatrix a(n, n);
      a.fill_random(rng);
      la::HostMatrix original = a;

      std::vector<double> tau;
      const la::FactorResult r =
          dgeqrf_hybrid(ctx.ctx(), gpus, a, nb, la::LaParams{}, &tau);

      const double resid = la::qr_residual(original, a, tau);
      std::printf(
          "QR %dx%d on %d network-attached GPU(s): %6.2f ms simulated, "
          "||A - QR||_max = %.2e  %s\n",
          n, n, g, to_ms(r.factor_time), resid,
          resid < 1e-10 * n ? "OK" : "FAIL");
    };
    cluster.submit(job);
    cluster.run();
  }
  std::printf(
      "\nNote: at this toy size more GPUs do not help (fixed overheads\n"
      "dominate); run bench/fig09_qr for the paper-scale sweep where three\n"
      "remote GPUs reach ~2.2x one local GPU.\n");
  return 0;
}
