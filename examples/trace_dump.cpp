// Middleware observability: run a small remote-GPU workload with tracing
// enabled and dump a Chrome trace (chrome://tracing, or https://ui.perfetto.dev)
// showing the front-end proxy ops and the daemon requests they trigger.
//
//   $ ./examples/trace_dump && ls dacc_trace.json
#include <cstdio>
#include <fstream>

#include "core/api.hpp"
#include "rt/cluster.hpp"
#include "util/units.hpp"

using namespace dacc;

int main() {
  rt::ClusterConfig config;
  config.compute_nodes = 1;
  config.accelerators = 2;
  config.trace = true;
  rt::Cluster cluster(config);

  rt::JobSpec job;
  job.name = "traced";
  job.accelerators_per_rank = 2;
  job.body = [](rt::JobContext& ctx) {
    core::Accelerator& a = ctx.session()[0];
    core::Accelerator& b = ctx.session()[1];
    const gpu::DevPtr pa = a.mem_alloc(16_MiB);
    const gpu::DevPtr pb = b.mem_alloc(16_MiB);
    // Two overlapping copies plus kernels: the trace shows the overlap.
    core::Future fa = a.memcpy_h2d_async(pa, util::Buffer::backed_zero(16_MiB));
    core::Future fb = b.memcpy_h2d_async(pb, util::Buffer::backed_zero(16_MiB));
    fa.get(ctx.ctx());
    fb.get(ctx.ctx());
    a.launch("dscal", {}, {std::int64_t{1 << 21}, 1.5, pa});
    b.launch("dscal", {}, {std::int64_t{1 << 21}, 2.5, pb});
    a.copy_to_peer(pa, b, pb, 16_MiB);
    (void)b.memcpy_d2h(pb, 16_MiB);
  };
  cluster.submit(job);
  cluster.run();

  std::ofstream out("dacc_trace.json");
  cluster.tracer().write_chrome_json(out);
  std::printf(
      "recorded %zu middleware spans over %.2f ms of simulated time\n"
      "wrote dacc_trace.json — open it in chrome://tracing or perfetto\n",
      cluster.tracer().size(), to_ms(cluster.engine().now()));

  // A taste of the timeline, as text:
  for (const char* track : {"fe-r0-ac1", "daemon-r1", "daemon-r2"}) {
    std::printf("\n%s:\n", track);
    for (const auto& span : cluster.tracer().track(track)) {
      std::printf("  %9.3f - %9.3f ms  %s\n", to_ms(span.begin),
                  to_ms(span.end), span.name.c_str());
    }
  }
  return 0;
}
