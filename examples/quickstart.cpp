// Quickstart: the paper's Listing 2 on a simulated dynamic accelerator
// cluster — allocate device memory on a network-attached accelerator, copy
// data to it, run a kernel, copy the result back.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <numeric>
#include <vector>

#include "core/api.hpp"
#include "rt/cluster.hpp"
#include "util/units.hpp"

using namespace dacc;

int main() {
  // A cluster with 2 compute nodes and 3 network-attached accelerators
  // (plus the accelerator resource manager), all simulated.
  rt::ClusterConfig config;
  config.compute_nodes = 2;
  config.accelerators = 3;
  rt::Cluster cluster(config);

  rt::JobSpec job;
  job.name = "quickstart";
  job.accelerators_per_rank = 1;  // static assignment at job start
  job.body = [](rt::JobContext& ctx) {
    core::Accelerator& ac = ctx.session()[0];
    std::printf("assigned accelerator: daemon rank %d (%s)\n",
                ac.daemon_rank(), ac.info().name.c_str());

    const std::int64_t n = 1 << 20;
    const auto bytes = static_cast<std::uint64_t>(n) * sizeof(double);
    std::vector<double> x(static_cast<std::size_t>(n));
    std::vector<double> y(static_cast<std::size_t>(n));
    std::iota(x.begin(), x.end(), 0.0);
    std::fill(y.begin(), y.end(), 1.0);

    // Listing 2, step by step.
    const gpu::DevPtr dx = ac.mem_alloc(bytes);            // acMemAlloc
    const gpu::DevPtr dy = ac.mem_alloc(bytes);
    const SimTime t0 = ctx.ctx().now();
    ac.memcpy_h2d(dx, util::Buffer::of<double>(             // acMemCpy
                          std::span<const double>(x)));
    ac.memcpy_h2d(dy, util::Buffer::of<double>(
                          std::span<const double>(y)));
    std::printf("H2D: 2 x %llu MiB at %.0f MiB/s effective\n",
                static_cast<unsigned long long>(bytes / 1_MiB),
                mib_per_s(2 * bytes, ctx.ctx().now() - t0));

    core::Kernel k = ac.kernel_create("daxpy");            // acKernelCreate
    k.set_args({n, 2.0, dx, dy});                          // acKernelSetArgs
    k.run();                                               // acKernelRun

    util::Buffer out = ac.memcpy_d2h(dy, bytes);           // acMemCpy
    ac.mem_free(dx);                                       // acMemFree
    ac.mem_free(dy);

    // y := 1 + 2 * iota  — verify a few entries.
    auto v = out.as<double>();
    bool ok = true;
    for (std::int64_t i = 0; i < n; i += n / 7) {
      ok = ok && v[static_cast<std::size_t>(i)] ==
                     1.0 + 2.0 * static_cast<double>(i);
    }
    std::printf("result check: %s\n", ok ? "PASSED" : "FAILED");
    std::printf("simulated time so far: %.2f ms\n",
                to_ms(ctx.ctx().now()));
  };
  cluster.submit(job);
  cluster.run();

  const auto stats = cluster.arm_stats();
  std::printf("pool after job: %u total, %u free (auto-released)\n",
              stats.total, stats.free);
  return 0;
}
