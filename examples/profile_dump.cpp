// The wallclock observability tier end to end: run a churn workload with
// the scoped profiler attached, print the per-shard per-phase wallclock
// attribution and its coverage identity, evaluate SLO targets against the
// deterministic histogram quantiles, and show the flight recorder's
// post-mortem tail.
//
// Two tiers, on purpose (DESIGN.md §9): everything under dacc_prof_* is
// real wallclock — it varies run to run and never enters the byte-compared
// deterministic snapshot. The SLO readout, by contrast, is computed from
// the deterministic registry, so its verdicts replay exactly.
//
//   $ ./examples/profile_dump [out_prefix]          # serial backend
//   $ DACC_SIM_BACKEND=parallel:4 ./examples/profile_dump
//
// Exits nonzero if the tier separation or an SLO verdict breaks.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/api.hpp"
#include "obs/flight.hpp"
#include "obs/profiler.hpp"
#include "rt/cluster.hpp"
#include "util/units.hpp"

using namespace dacc;

int main(int argc, char** argv) {
  const std::string prefix = argc > 1 ? argv[1] : "dacc_profile";

  rt::ClusterConfig config;
  config.compute_nodes = 2;
  config.accelerators = 3;
  config.metrics = true;
  config.profile = true;  // wallclock tier on regardless of DACC_PROF
  rt::Cluster cluster(config);

  rt::JobSpec job;
  job.name = "profiled-churn";
  job.ranks = 2;
  job.accelerators_per_rank = 1;
  job.body = [](rt::JobContext& ctx) {
    core::Accelerator& ac = ctx.session()[0];
    const gpu::DevPtr p = ac.mem_alloc(4_MiB);
    for (int round = 0; round < 3; ++round) {
      ac.memcpy_h2d(p, util::Buffer::phantom(4_MiB));
      ac.launch("dscal", {}, {std::int64_t{1 << 19}, 1.01, p});
      // Contend for the shared third accelerator so assign-wait spreads.
      auto extra = ctx.session().acquire(1, /*wait=*/true);
      if (!extra.empty()) {
        const gpu::DevPtr q = extra[0]->mem_alloc(1_MiB);
        extra[0]->memcpy_h2d(q, util::Buffer::phantom(1_MiB));
        extra[0]->mem_free(q);
        ctx.session().release(extra[0]);
      }
    }
    (void)ac.memcpy_d2h(p, 4_MiB);
  };
  cluster.submit(job);
  cluster.run();

  // --- wallclock tier -----------------------------------------------------
  const obs::Profiler& prof = cluster.profiler();
  std::printf("wallclock profile (%s backend):\n",
              cluster.engine().backend() == sim::ExecBackend::kParallel
                  ? "parallel"
                  : "serial");
  const std::uint64_t measured = prof.measured_ns();
  const std::uint64_t attributed = prof.attributed_ns();
  std::printf("  measured   %10.3f ms of worker wallclock\n", measured / 1e6);
  std::printf("  attributed %10.3f ms (%.1f%% coverage)\n", attributed / 1e6,
              measured > 0 ? 100.0 * attributed / measured : 0.0);
  std::printf("  serial     %10.3f ms\n", prof.serial_ns() / 1e6);
  for (int shard = 0; shard < 64; ++shard) {
    std::uint64_t total = 0;
    for (int p = 0; p < sim::WallSink::kPhases; ++p) {
      total += prof.shard_ns(shard, static_cast<sim::WallSink::Phase>(p));
    }
    if (total == 0) continue;
    std::printf("  shard %d:", shard);
    for (int p = 0; p < sim::WallSink::kPhases; ++p) {
      const auto phase = static_cast<sim::WallSink::Phase>(p);
      std::printf(" %s=%.3fms", obs::Profiler::phase_name(phase),
                  prof.shard_ns(shard, phase) / 1e6);
    }
    std::printf("\n");
  }
  {
    std::ofstream out(prefix + ".prof.prom");
    prof.write_prometheus(out);
  }
  std::printf("wrote %s.prof.prom (non-deterministic, excluded from the\n"
              "deterministic snapshot by construction)\n",
              prefix.c_str());

  // Tier separation is a hard invariant, not a convention: fail loudly if
  // a wallclock series ever shows up in the deterministic registry.
  if (cluster.metrics().prometheus().find(obs::Profiler::kSeriesPrefix) !=
      std::string::npos) {
    std::fprintf(stderr, "FAIL: dacc_prof_* leaked into the snapshot\n");
    return 1;
  }

  // --- SLO readout (deterministic tier) -----------------------------------
  obs::Registry& metrics = cluster.metrics();
  metrics.set_slo("dacc_arm_assign_wait_ns", 990, 1'000'000'000);
  metrics.set_slo("dacc_fe_op_latency_ns{op=\"h2d\"}", 990, 5'000'000'000);
  std::printf("\nSLO readout:\n");
  bool slo_fail = false;
  for (const obs::SloResult& r : metrics.check_slos()) {
    const obs::Hist h = metrics.hist(r.slo.series);
    std::printf("  %-38s p50=%9lluns p99=%9lluns q%u<=%lluns: %s\n",
                r.slo.series.c_str(),
                static_cast<unsigned long long>(h.p50()),
                static_cast<unsigned long long>(h.p99()), r.slo.q_permille,
                static_cast<unsigned long long>(r.slo.bound),
                r.ok ? "ok" : "VIOLATED");
    slo_fail = slo_fail || !r.ok;
  }

  // --- flight recorder tail -----------------------------------------------
  const std::vector<obs::FlightRecorder::Event> events =
      cluster.flight().events();
  std::printf("\nflight recorder: %llu events noted, last %zu retained\n",
              static_cast<unsigned long long>(cluster.flight().recorded()),
              events.size());
  const std::size_t tail = events.size() > 5 ? events.size() - 5 : 0;
  for (std::size_t i = tail; i < events.size(); ++i) {
    std::printf("  t=%lld [%s] %s\n",
                static_cast<long long>(events[i].time),
                events[i].category.c_str(), events[i].what.c_str());
  }

  return slo_fail ? 1 : 0;
}
