// Typed scheduler under chaos, exported: a replicated ARM serving a mixed
// heterogeneous pool (two GPUs and a MIC) to three priority classes — a
// batch job holding the GPUs, a normal job pinning the MIC by kind, and an
// urgent latecomer whose arrival preempts one batch lease — with a seeded
// leader kill mid-run. The preempted front-end replays onto a re-acquired
// slot transparently. Dumps the metrics snapshot in both exporter formats
// plus a scheduler digest (trace events, per-priority assign-wait SLO
// readout, pool counters, replica fingerprints). Everything written is
// deterministic — byte-identical under every execution backend and shard
// count — so the files double as the scheduler probe in
// scripts/check_determinism.sh.
//
//   $ ./examples/sched_dump [out_prefix] [chaos_seed]
//   wrote dacc_sched.json, dacc_sched.prom and dacc_sched.sched
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "arm/arm.hpp"
#include "arm/raft/node.hpp"
#include "core/api.hpp"
#include "gpu/device.hpp"
#include "rt/cluster.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

using namespace dacc;

namespace {

constexpr std::uint64_t kBytes = 4_KiB;

std::vector<std::byte> pattern(int salt) {
  std::vector<std::byte> host(kBytes);
  for (std::size_t i = 0; i < host.size(); ++i) {
    host[i] = static_cast<std::byte>((i * 31u) ^ (salt * 7u));
  }
  return host;
}

/// One h2d/d2h round against each held accelerator; returns false on a
/// data mismatch (replay must make preemption invisible here).
bool touch(std::vector<core::Accelerator*>& accs,
           std::vector<gpu::DevPtr>& ptrs, int salt) {
  for (std::size_t a = 0; a < accs.size(); ++a) {
    const std::vector<std::byte> host = pattern(salt + static_cast<int>(a));
    accs[a]->memcpy_h2d(ptrs[a], util::Buffer::backed_copy(
                                     std::span<const std::byte>(host)));
    const util::Buffer back = accs[a]->memcpy_d2h(ptrs[a], kBytes);
    if (back.size() != host.size() ||
        std::memcmp(back.bytes().data(), host.data(), host.size()) != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string prefix = argc > 1 ? argv[1] : "dacc_sched";
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42ull;

  rt::ClusterConfig config;
  config.compute_nodes = 3;
  config.accelerator_devices = {gpu::tesla_c1060(), gpu::tesla_c1060(),
                                gpu::mic_knc()};
  config.arm_replicas = 3;
  config.trace = true;
  config.metrics = true;
  config.retry.replace_on_failure = true;
  rt::Cluster cluster(config);

  // Seeded leader kill after the preemption/replacement drama has committed
  // but while every lease is still held: the failed-over group must carry
  // the typed scheduler state (priorities, preemption counters, replayed
  // lease) bit-identically into the new term. Killing earlier would also
  // stall the urgent client's retry ladder past the batch job's lifetime,
  // turning the preemption into a plain grant.
  util::Rng rng(seed);
  const SimTime kill_at = 8_ms + rng.next_below(4'000'000);
  cluster.kill_arm_leader(kill_at);

  bool batch_ok = true;
  std::size_t batch_granted = 0;
  std::size_t mic_granted = 0;
  std::size_t urgent_granted = 0;

  // All three jobs wait out the first election (~1.8 ms) before acquiring:
  // a request sent into a leaderless group rides the client's retry ladder
  // and lands much later, which would let the urgent job slip into a free
  // slot instead of preempting.
  rt::JobSpec batch;
  batch.name = "batch2gpu";
  batch.priority = arm::kPriorityBatch;
  batch.body = [&](rt::JobContext& job) {
    job.ctx().wait_for(3_ms);
    auto accs = job.session().acquire(
        arm::ResourceRequest{}.with_count(2).with_kind("gpu").with_wait(true));
    batch_granted = accs.size();
    if (accs.size() != 2) return;
    std::vector<gpu::DevPtr> ptrs;
    for (core::Accelerator* acc : accs) ptrs.push_back(acc->mem_alloc(kBytes));
    for (int iter = 0; iter < 40 && batch_ok; ++iter) {
      batch_ok = touch(accs, ptrs, iter);
      job.ctx().wait_for(300_us);
    }
    for (core::Accelerator* acc : accs) job.session().release(acc);
  };

  rt::JobSpec mic;
  mic.name = "mic-pinned";
  mic.body = [&](rt::JobContext& job) {
    job.ctx().wait_for(3'200_us);
    auto accs = job.session().acquire(
        arm::ResourceRequest{}.with_count(1).with_kind("mic").with_wait(true));
    mic_granted = accs.size();
    if (accs.empty()) return;
    // Hold long enough that the pool stays full even if the failover delays
    // the urgent request: preemption, not a lucky free slot, must serve it.
    job.ctx().wait_for(17_ms);
    job.session().release(accs[0]);
  };

  rt::JobSpec urgent;
  urgent.name = "urgent1";
  urgent.priority = arm::kPriorityUrgent;
  urgent.body = [&](rt::JobContext& job) {
    job.ctx().wait_for(5_ms);  // pool is full: this arrival preempts
    auto accs = job.session().acquire(
        arm::ResourceRequest{}.with_count(1).with_wait(true));
    urgent_granted = accs.size();
    if (accs.empty()) return;
    job.ctx().wait_for(2_ms);
    job.session().release(accs[0]);
  };

  cluster.submit(batch, /*first_cn=*/0);
  cluster.submit(mic, /*first_cn=*/1);
  cluster.submit(urgent, /*first_cn=*/2);

  // Per-priority assignment-wait SLOs, evaluated after the run: the urgent
  // class must be near-immediate (preemption is its fast path); batch may
  // absorb the replacement wait but stays bounded.
  obs::Registry& metrics = cluster.metrics();
  metrics.set_slo(obs::labeled("dacc_arm_assign_wait_ns", "prio", "urgent"),
                  990, 1_ms);
  metrics.set_slo(obs::labeled("dacc_arm_assign_wait_ns", "prio", "batch"),
                  990, 20_ms);
  metrics.set_slo(obs::labeled("dacc_arm_assign_wait_ns", "prio", "normal"),
                  990, 20_ms);

  cluster.run();

  if (batch_granted != 2 || mic_granted != 1 || urgent_granted != 1) {
    std::fprintf(stderr, "sched_dump: grants missing (%zu, %zu, %zu)\n",
                 batch_granted, mic_granted, urgent_granted);
    return 1;
  }
  if (!batch_ok) {
    std::fprintf(stderr, "sched_dump: replay corrupted batch data\n");
    return 1;
  }

  {
    std::ofstream out(prefix + ".json");
    metrics.write_json(out, obs::Registry::kShardSeriesPrefix,
                       /*include=*/false);
  }
  {
    std::ofstream out(prefix + ".prom");
    metrics.write_prometheus(out, obs::Registry::kShardSeriesPrefix,
                             /*include=*/false);
  }
  {
    std::ofstream out(prefix + ".shard.prom");
    metrics.write_prometheus(out, obs::Registry::kShardSeriesPrefix,
                             /*include=*/true);
  }

  const std::vector<obs::SloResult> slos = metrics.check_slos();
  const arm::PoolStats stats = cluster.arm_stats();
  {
    // Scheduler digest: the consensus/chaos event history, the pool's
    // scheduling counters, the per-priority SLO table and every surviving
    // replica's lease-table fingerprint. Byte-diffed across backends and
    // shard counts by scripts/check_determinism.sh.
    std::ofstream out(prefix + ".sched");
    for (const char* track : {"raft", "chaos"}) {
      for (const auto& span : cluster.tracer().track(track)) {
        out << track << " " << span.name << " @" << span.begin << "\n";
      }
    }
    out << "pool total=" << stats.total << " free=" << stats.free
        << " acquisitions=" << stats.acquisitions
        << " preemptions=" << stats.preemptions
        << " replacements=" << stats.replacements
        << " revocations=" << stats.revocations << "\n";
    obs::write_slo_report(slos, out);
    for (int r = 0; r < config.arm_replicas; ++r) {
      const arm::raft::RaftNode& node = cluster.arm_replica(r);
      out << "replica " << r << (node.halted() ? " dead" : " live");
      if (!node.halted()) {
        out << " term=" << node.term() << " commit=" << node.commit_index()
            << " lease_fp=" << std::hex << node.machine().fingerprint()
            << std::dec;
      }
      out << "\n";
    }
  }

  bool slos_ok = true;
  for (const obs::SloResult& r : slos) slos_ok = slos_ok && r.ok;

  std::printf("sched_dump: seed %llu killed the leader at t=%.2f ms\n",
              static_cast<unsigned long long>(seed), to_ms(kill_at));
  std::printf(
      "pool after drain: %u free of %u, %u preempted, %u replaced\n",
      stats.free, stats.total, stats.preemptions, stats.replacements);
  std::printf("wrote %s.json, %s.prom and %s.sched\n", prefix.c_str(),
              prefix.c_str(), prefix.c_str());
  if (stats.preemptions != 1 || stats.replacements != 1) {
    std::fprintf(stderr, "sched_dump: expected 1 preemption + 1 replacement\n");
    return 1;
  }
  return (stats.free == stats.total && slos_ok) ? 0 : 1;
}
