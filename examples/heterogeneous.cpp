// A heterogeneous accelerator pool: two CUDA GPUs and one Intel-MIC-class
// device behind the same ARM. Jobs lease by device kind; the same kernels
// run on both personalities ("extensible to any accelerator programming
// interface", paper Section VI), and the cluster report shows who did what.
//
//   $ ./examples/heterogeneous
#include <cstdio>
#include <iostream>

#include "core/api.hpp"
#include "rt/cluster.hpp"
#include "util/units.hpp"

using namespace dacc;

int main() {
  rt::ClusterConfig config;
  config.compute_nodes = 2;
  config.accelerator_devices = {gpu::tesla_c1060(), gpu::tesla_c1060(),
                                gpu::mic_knc()};
  rt::Cluster cluster(config);

  // Job A insists on CUDA GPUs.
  rt::JobSpec gpu_job;
  gpu_job.name = "gpu-job";
  gpu_job.body = [](rt::JobContext& ctx) {
    auto gpus = ctx.session().acquire(2, /*wait=*/true, "gpu");
    std::printf("[gpu-job] leased %zu devices: %s + %s\n", gpus.size(),
                gpus[0]->info().name.c_str(), gpus[1]->info().name.c_str());
    for (core::Accelerator* ac : gpus) {
      const gpu::DevPtr p = ac->mem_alloc(8_MiB);
      ac->memcpy_h2d(p, util::Buffer::backed_zero(8_MiB));
      ac->launch("dscal", {}, {std::int64_t{1 << 20}, 1.5, p});
      (void)ac->memcpy_d2h(p, 8_MiB);
    }
  };

  // Job B targets the MIC.
  rt::JobSpec mic_job;
  mic_job.name = "mic-job";
  mic_job.body = [](rt::JobContext& ctx) {
    auto mics = ctx.session().acquire(1, /*wait=*/true, "mic");
    std::printf("[mic-job] leased: %s\n", mics[0]->info().name.c_str());
    const std::int64_t n = 1 << 20;
    const gpu::DevPtr p = mics[0]->mem_alloc(static_cast<std::uint64_t>(n) * 8);
    mics[0]->launch("fill_f64", {}, {p, n, 3.0});
    mics[0]->launch("dscal", {}, {n, 2.0, p});
    auto out = mics[0]->memcpy_d2h(p, static_cast<std::uint64_t>(n) * 8);
    std::printf("[mic-job] result check: %s\n",
                out.as<double>()[12345] == 6.0 ? "PASSED" : "FAILED");
  };

  cluster.submit(gpu_job, 0);
  cluster.submit(mic_job, 1);
  cluster.run();

  std::printf("\n");
  cluster.report().print(std::cout);
  return 0;
}
