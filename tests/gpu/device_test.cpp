#include "gpu/device.hpp"

#include <gtest/gtest.h>

#include "util/units.hpp"

namespace dacc::gpu {
namespace {

class DeviceTest : public ::testing::Test {
 protected:
  DeviceTest()
      : device_(engine_, tesla_c1060(), KernelRegistry::with_builtins()) {}

  sim::Engine engine_;
  Device device_;
};

TEST_F(DeviceTest, AllocateAndFree) {
  DevPtr p = kNullDevPtr;
  ASSERT_EQ(device_.mem_alloc(1024, &p), Result::kSuccess);
  EXPECT_NE(p, kNullDevPtr);
  EXPECT_EQ(device_.memory_used(), 1024u);
  EXPECT_EQ(device_.mem_free(p), Result::kSuccess);
  EXPECT_EQ(device_.memory_used(), 0u);
}

TEST_F(DeviceTest, AllocationsAreDisjoint) {
  DevPtr a = kNullDevPtr;
  DevPtr b = kNullDevPtr;
  ASSERT_EQ(device_.mem_alloc(100, &a), Result::kSuccess);
  ASSERT_EQ(device_.mem_alloc(100, &b), Result::kSuccess);
  EXPECT_TRUE(b >= a + 100 || a >= b + 100);
}

TEST_F(DeviceTest, OutOfMemoryIsReported) {
  DevPtr p = kNullDevPtr;
  EXPECT_EQ(device_.mem_alloc(device_.params().memory_bytes + 1, &p),
            Result::kOutOfMemory);
}

TEST_F(DeviceTest, ZeroByteAllocIsInvalid) {
  DevPtr p = kNullDevPtr;
  EXPECT_EQ(device_.mem_alloc(0, &p), Result::kInvalidValue);
}

TEST_F(DeviceTest, FreeOfUnknownPointerFails) {
  EXPECT_EQ(device_.mem_free(0xdead), Result::kInvalidValue);
  DevPtr p = kNullDevPtr;
  ASSERT_EQ(device_.mem_alloc(64, &p), Result::kSuccess);
  // Interior pointers are not valid free targets (CUDA semantics).
  EXPECT_EQ(device_.mem_free(p + 8), Result::kInvalidValue);
}

TEST_F(DeviceTest, InteriorPointerArithmeticIsValidForAccess) {
  DevPtr p = kNullDevPtr;
  ASSERT_EQ(device_.mem_alloc(256, &p), Result::kSuccess);
  EXPECT_TRUE(device_.valid_range(p + 128, 128));
  EXPECT_FALSE(device_.valid_range(p + 128, 129));
  EXPECT_FALSE(device_.valid_range(p + 256, 1));
}

TEST_F(DeviceTest, HtoDCopyWritesDeviceMemory) {
  DevPtr p = kNullDevPtr;
  ASSERT_EQ(device_.mem_alloc(16, &p), Result::kSuccess);
  std::vector<double> host{1.5, -2.5};
  auto op = device_.memcpy_htod_async(
      device_.default_stream(), p,
      util::Buffer::of<double>(std::span<const double>(host)),
      HostMemType::kPinned, 0);
  ASSERT_TRUE(op.ok());
  auto view = device_.span_as<double>(p, 2);
  EXPECT_EQ(view[0], 1.5);
  EXPECT_EQ(view[1], -2.5);
}

TEST_F(DeviceTest, DtoHCopyReadsDeviceMemory) {
  DevPtr p = kNullDevPtr;
  ASSERT_EQ(device_.mem_alloc(16, &p), Result::kSuccess);
  device_.span_as<double>(p, 2)[1] = 7.0;
  util::Buffer out;
  auto op = device_.memcpy_dtoh_async(device_.default_stream(), p, 16,
                                      HostMemType::kPinned, 0, &out);
  ASSERT_TRUE(op.ok());
  EXPECT_EQ(out.as<double>()[1], 7.0);
}

TEST_F(DeviceTest, DtoDCopy) {
  DevPtr a = kNullDevPtr;
  DevPtr b = kNullDevPtr;
  ASSERT_EQ(device_.mem_alloc(8, &a), Result::kSuccess);
  ASSERT_EQ(device_.mem_alloc(8, &b), Result::kSuccess);
  device_.span_as<double>(a, 1)[0] = 3.0;
  auto op = device_.memcpy_dtod_async(device_.default_stream(), b, a, 8, 0);
  ASSERT_TRUE(op.ok());
  EXPECT_EQ(device_.span_as<double>(b, 1)[0], 3.0);
}

TEST_F(DeviceTest, CopyToInvalidRangeFails) {
  auto op = device_.memcpy_htod_async(device_.default_stream(), 0x42,
                                      util::Buffer::backed_zero(8),
                                      HostMemType::kPinned, 0);
  EXPECT_EQ(op.status, Result::kInvalidValue);
}

TEST_F(DeviceTest, PinnedCopyIsFasterThanPageable) {
  DevPtr p = kNullDevPtr;
  ASSERT_EQ(device_.mem_alloc(64_MiB, &p), Result::kSuccess);
  Stream s1(device_);
  Stream s2(device_);
  auto pinned = device_.memcpy_htod_async(s1, p, util::Buffer::phantom(32_MiB),
                                          HostMemType::kPinned, 0);
  auto pageable = device_.memcpy_htod_async(
      s2, p, util::Buffer::phantom(32_MiB), HostMemType::kPageable, 0);
  EXPECT_LT(pinned.done_at, pageable.done_at);
}

TEST_F(DeviceTest, LocalPinnedBandwidthMatchesPaper) {
  // Paper Fig. 7: ~5700 MiB/s peak for pinned H2D at 64 MiB.
  DevPtr p = kNullDevPtr;
  ASSERT_EQ(device_.mem_alloc(64_MiB, &p), Result::kSuccess);
  Stream s(device_);
  auto op = device_.memcpy_htod_async(s, p, util::Buffer::phantom(64_MiB),
                                      HostMemType::kPinned, 0);
  const double bw = mib_per_s(64_MiB, op.done_at);
  EXPECT_GE(bw, 5550.0);
  EXPECT_LE(bw, 5850.0);
}

TEST_F(DeviceTest, LocalPageableBandwidthMatchesPaper) {
  // Paper Fig. 7: ~4700 MiB/s peak for pageable (PIO) H2D.
  DevPtr p = kNullDevPtr;
  ASSERT_EQ(device_.mem_alloc(64_MiB, &p), Result::kSuccess);
  Stream s(device_);
  auto op = device_.memcpy_htod_async(s, p, util::Buffer::phantom(64_MiB),
                                      HostMemType::kPageable, 0);
  const double bw = mib_per_s(64_MiB, op.done_at);
  EXPECT_GE(bw, 4550.0);
  EXPECT_LE(bw, 4850.0);
}

TEST_F(DeviceTest, StreamOperationsSerialize) {
  DevPtr p = kNullDevPtr;
  ASSERT_EQ(device_.mem_alloc(2_MiB, &p), Result::kSuccess);
  Stream s(device_);
  auto op1 = device_.memcpy_htod_async(s, p, util::Buffer::phantom(1_MiB),
                                       HostMemType::kPinned, 0);
  auto op2 = device_.memcpy_htod_async(s, p, util::Buffer::phantom(1_MiB),
                                       HostMemType::kPinned, 0);
  EXPECT_GE(op2.done_at, op1.done_at + transfer_time(1_MiB, 6000.0));
  EXPECT_EQ(s.ready_at(), op2.done_at);
}

TEST_F(DeviceTest, CopyAndComputeOverlapAcrossStreams) {
  DevPtr p = kNullDevPtr;
  ASSERT_EQ(device_.mem_alloc(8_MiB, &p), Result::kSuccess);
  Stream copy_stream(device_);
  Stream compute_stream(device_);
  auto copy = device_.memcpy_htod_async(copy_stream, p,
                                        util::Buffer::phantom(8_MiB),
                                        HostMemType::kPinned, 0);
  auto compute = device_.launch_async(
      compute_stream, "fill_f64", LaunchConfig{},
      KernelArgs{p, std::int64_t{1024 * 1024}, 0.0}, 0);
  ASSERT_TRUE(copy.ok());
  ASSERT_TRUE(compute.ok());
  // The kernel does not wait for the copy: both start at t=0.
  EXPECT_LT(compute.done_at, copy.done_at + 1_ms);
}

TEST_F(DeviceTest, UnknownKernelIsNotFound) {
  auto op = device_.launch_async(device_.default_stream(), "no_such_kernel",
                                 LaunchConfig{}, KernelArgs{}, 0);
  EXPECT_EQ(op.status, Result::kNotFound);
}

TEST_F(DeviceTest, BrokenDeviceFailsEverything) {
  DevPtr p = kNullDevPtr;
  ASSERT_EQ(device_.mem_alloc(64, &p), Result::kSuccess);
  device_.mark_broken();
  DevPtr q = kNullDevPtr;
  EXPECT_EQ(device_.mem_alloc(64, &q), Result::kEccError);
  EXPECT_EQ(device_.mem_free(p), Result::kEccError);
  auto op = device_.memcpy_htod_async(device_.default_stream(), p,
                                      util::Buffer::backed_zero(8),
                                      HostMemType::kPinned, 0);
  EXPECT_EQ(op.status, Result::kEccError);
}

TEST_F(DeviceTest, UtilizationCountersAccumulate) {
  DevPtr p = kNullDevPtr;
  ASSERT_EQ(device_.mem_alloc(1_MiB, &p), Result::kSuccess);
  EXPECT_EQ(device_.copy_busy(), 0u);
  (void)device_.memcpy_htod_async(device_.default_stream(), p,
                                  util::Buffer::phantom(1_MiB),
                                  HostMemType::kPinned, 0);
  EXPECT_GT(device_.copy_busy(), 0u);
  (void)device_.launch_async(device_.default_stream(), "fill_f64",
                             LaunchConfig{},
                             KernelArgs{p, std::int64_t{128}, 1.0}, 0);
  EXPECT_GT(device_.compute_busy(), 0u);
}

TEST(PhantomDevice, AllocationsArePhantom) {
  sim::Engine engine;
  Device dev(engine, tesla_c1060(), KernelRegistry::with_builtins(),
             /*functional=*/false);
  DevPtr p = kNullDevPtr;
  ASSERT_EQ(dev.mem_alloc(1_GiB, &p), Result::kSuccess);  // no real memory
  EXPECT_THROW((void)dev.span_of(p, 16), std::logic_error);
  util::Buffer out;
  auto op = dev.memcpy_dtoh_async(dev.default_stream(), p, 1_MiB,
                                  HostMemType::kPinned, 0, &out);
  ASSERT_TRUE(op.ok());
  EXPECT_FALSE(out.is_backed());
  EXPECT_EQ(out.size(), 1_MiB);
}

TEST(PhantomDevice, KernelsChargeTimeButSkipExecution) {
  sim::Engine engine;
  Device dev(engine, tesla_c1060(), KernelRegistry::with_builtins(), false);
  DevPtr p = kNullDevPtr;
  ASSERT_EQ(dev.mem_alloc(8_MiB, &p), Result::kSuccess);
  auto op = dev.launch_async(dev.default_stream(), "fill_f64", LaunchConfig{},
                             KernelArgs{p, std::int64_t{1024 * 1024}, 1.0}, 0);
  ASSERT_TRUE(op.ok());
  EXPECT_GT(op.done_at, 0u);
}

TEST(PhantomDevice, TimingMatchesFunctionalDevice) {
  // The whole point of phantom mode: identical timing, no data.
  auto run = [](bool functional) {
    sim::Engine engine;
    Device dev(engine, tesla_c1060(), KernelRegistry::with_builtins(),
               functional);
    DevPtr p = kNullDevPtr;
    EXPECT_EQ(dev.mem_alloc(8_MiB, &p), Result::kSuccess);
    Stream s(dev);
    util::Buffer src = functional ? util::Buffer::backed_zero(8_MiB)
                                  : util::Buffer::phantom(8_MiB);
    (void)dev.memcpy_htod_async(s, p, src, HostMemType::kPinned, 0);
    auto op = dev.launch_async(s, "dscal", LaunchConfig{},
                               KernelArgs{std::int64_t{1024}, 2.0, p}, 0);
    return op.done_at;
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(MicDevice, PersonalityDiffers) {
  const DeviceParams mic = mic_knc();
  const DeviceParams gpu = tesla_c1060();
  EXPECT_NE(mic.name, gpu.name);
  EXPECT_GT(mic.compute_scale, gpu.compute_scale);
  sim::Engine engine;
  Device dev(engine, mic, KernelRegistry::with_builtins());
  DevPtr p = kNullDevPtr;
  ASSERT_EQ(dev.mem_alloc(1_MiB, &p), Result::kSuccess);
  // Faster compute_scale => shorter kernel for identical work.
  auto op = dev.launch_async(dev.default_stream(), "fill_f64", LaunchConfig{},
                             KernelArgs{p, std::int64_t{1024}, 1.0}, 0);
  ASSERT_TRUE(op.ok());
}

}  // namespace
}  // namespace dacc::gpu
