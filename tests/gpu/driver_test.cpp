#include "gpu/driver.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/units.hpp"

namespace dacc::gpu {
namespace {

/// Runs `body` as a simulated process with a Driver bound to a fresh device.
void run_with_driver(std::function<void(Driver&, sim::Context&)> body,
                     bool functional = true) {
  sim::Engine engine;
  Device device(engine, tesla_c1060(), KernelRegistry::with_builtins(),
                functional);
  engine.spawn("host", [&](sim::Context& ctx) {
    Driver drv(device, ctx);
    body(drv, ctx);
  });
  engine.run();
}

TEST(Driver, BlockingCopyAdvancesClock) {
  run_with_driver([](Driver& drv, sim::Context& ctx) {
    const DevPtr p = drv.mem_alloc(16_MiB);
    const SimTime before = ctx.now();
    drv.memcpy_htod(p, util::Buffer::phantom(16_MiB));
    EXPECT_GT(ctx.now(), before);
    const double bw = mib_per_s(16_MiB, ctx.now() - before);
    EXPECT_NEAR(bw, 5700.0, 150.0);
  });
}

TEST(Driver, RoundTripPreservesData) {
  run_with_driver([](Driver& drv, sim::Context&) {
    std::vector<double> host{3.0, 1.0, 4.0, 1.0, 5.0};
    const DevPtr p = drv.mem_alloc(host.size() * sizeof(double));
    drv.memcpy_htod(p, util::Buffer::of<double>(
                           std::span<const double>(host)));
    auto back = drv.memcpy_dtoh(p, host.size() * sizeof(double));
    auto view = back.as<double>();
    for (std::size_t i = 0; i < host.size(); ++i) {
      EXPECT_EQ(view[i], host[i]);
    }
    drv.mem_free(p);
  });
}

TEST(Driver, KernelComputesAndBlocksForCost) {
  run_with_driver([](Driver& drv, sim::Context& ctx) {
    const std::int64_t n = 1000;
    const DevPtr a = drv.mem_alloc(static_cast<std::uint64_t>(n) * 8);
    const DevPtr b = drv.mem_alloc(static_cast<std::uint64_t>(n) * 8);
    const DevPtr c = drv.mem_alloc(static_cast<std::uint64_t>(n) * 8);
    drv.launch("fill_f64", LaunchConfig{}, {a, n, 2.0});
    drv.launch("fill_f64", LaunchConfig{}, {b, n, 40.0});
    const SimTime before = ctx.now();
    drv.launch("vector_add_f64", LaunchConfig{}, {a, b, c, n});
    EXPECT_GE(ctx.now() - before, drv.device().params().kernel_launch_overhead);
    auto out = drv.memcpy_dtoh(c, static_cast<std::uint64_t>(n) * 8);
    for (double v : out.as<double>()) EXPECT_EQ(v, 42.0);
  });
}

TEST(Driver, AllocationFailureThrows) {
  run_with_driver([](Driver& drv, sim::Context&) {
    try {
      (void)drv.mem_alloc(1ull << 60);
      FAIL() << "expected DeviceError";
    } catch (const DeviceError& e) {
      EXPECT_EQ(e.code(), Result::kOutOfMemory);
    }
  });
}

TEST(Driver, AsyncPipelineOverlapsStreams) {
  // Two streams: copies on one, kernels on the other; total time is far
  // below the serial sum.
  run_with_driver([](Driver& drv, sim::Context& ctx) {
    const DevPtr p = drv.mem_alloc(64_MiB);
    Stream copy_stream(drv.device());
    Stream compute_stream(drv.device());
    const SimTime start = ctx.now();
    std::vector<OpHandle> ops;
    for (int i = 0; i < 8; ++i) {
      ops.push_back(drv.memcpy_htod_async(copy_stream, p,
                                          util::Buffer::phantom(8_MiB)));
      ops.push_back(drv.launch_async(
          compute_stream, "fill_f64", LaunchConfig{},
          {p, std::int64_t{1024 * 1024}, 1.0}));
    }
    drv.synchronize(copy_stream);
    drv.synchronize(compute_stream);
    const SimDuration elapsed = ctx.now() - start;
    SimDuration serial = 0;
    // Serial lower bound if nothing overlapped: sum of both streams' time.
    serial = copy_stream.ready_at() - start + compute_stream.ready_at() - start;
    EXPECT_LT(elapsed, serial);
  });
}

TEST(Driver, WaitOnFailedOpThrows) {
  run_with_driver([](Driver& drv, sim::Context&) {
    drv.device().mark_broken();
    Stream s(drv.device());
    auto op = drv.memcpy_htod_async(s, 0x1234, util::Buffer::phantom(8));
    EXPECT_THROW(drv.wait(op), DeviceError);
  });
}

TEST(Driver, SynchronizeWaitsForStream) {
  run_with_driver([](Driver& drv, sim::Context& ctx) {
    const DevPtr p = drv.mem_alloc(32_MiB);
    Stream s(drv.device());
    auto op = drv.memcpy_htod_async(s, p, util::Buffer::phantom(32_MiB));
    ASSERT_TRUE(op.ok());
    drv.synchronize(s);
    EXPECT_GE(ctx.now(), op.done_at);
  });
}

}  // namespace
}  // namespace dacc::gpu
