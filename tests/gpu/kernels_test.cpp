#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "gpu/driver.hpp"
#include "util/rng.hpp"

namespace dacc::gpu {
namespace {

class KernelsTest : public ::testing::Test {
 protected:
  void run(std::function<void(Driver&)> body) {
    sim::Engine engine;
    Device device(engine, tesla_c1060(), KernelRegistry::with_builtins());
    engine.spawn("host", [&](sim::Context& ctx) {
      Driver drv(device, ctx);
      body(drv);
    });
    engine.run();
  }

  static DevPtr upload(Driver& drv, const std::vector<double>& v) {
    const DevPtr p = drv.mem_alloc(v.size() * sizeof(double));
    drv.memcpy_htod(p, util::Buffer::of<double>(std::span<const double>(v)));
    return p;
  }

  static std::vector<double> download(Driver& drv, DevPtr p, std::size_t n) {
    auto buf = drv.memcpy_dtoh(p, n * sizeof(double));
    auto view = buf.as<double>();
    return {view.begin(), view.end()};
  }
};

TEST_F(KernelsTest, Fill) {
  run([](Driver& drv) {
    const std::int64_t n = 257;
    const DevPtr p = drv.mem_alloc(static_cast<std::uint64_t>(n) * 8);
    drv.launch("fill_f64", {}, {p, n, -1.25});
    for (double v : download(drv, p, 257)) EXPECT_EQ(v, -1.25);
  });
}

TEST_F(KernelsTest, Daxpy) {
  run([](Driver& drv) {
    util::Rng rng(1);
    std::vector<double> x(100);
    std::vector<double> y(100);
    for (auto& v : x) v = rng.uniform(-1, 1);
    for (auto& v : y) v = rng.uniform(-1, 1);
    const DevPtr dx = upload(drv, x);
    const DevPtr dy = upload(drv, y);
    drv.launch("daxpy", {}, {std::int64_t{100}, 2.5, dx, dy});
    auto out = download(drv, dy, 100);
    for (std::size_t i = 0; i < 100; ++i) {
      EXPECT_DOUBLE_EQ(out[i], y[i] + 2.5 * x[i]);
    }
  });
}

TEST_F(KernelsTest, Dscal) {
  run([](Driver& drv) {
    std::vector<double> x{1.0, -2.0, 3.0};
    const DevPtr dx = upload(drv, x);
    drv.launch("dscal", {}, {std::int64_t{3}, -2.0, dx});
    auto out = download(drv, dx, 3);
    EXPECT_DOUBLE_EQ(out[0], -2.0);
    EXPECT_DOUBLE_EQ(out[1], 4.0);
    EXPECT_DOUBLE_EQ(out[2], -6.0);
  });
}

TEST_F(KernelsTest, ReduceSum) {
  run([](Driver& drv) {
    std::vector<double> x(1000);
    double expected = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = static_cast<double>(i) * 0.5;
      expected += x[i];
    }
    const DevPtr dx = upload(drv, x);
    const DevPtr dout = drv.mem_alloc(8);
    drv.launch("reduce_sum_f64", {}, {dx, std::int64_t{1000}, dout});
    EXPECT_DOUBLE_EQ(download(drv, dout, 1)[0], expected);
  });
}

TEST_F(KernelsTest, VectorAddOnSubranges) {
  // Pointer arithmetic into the middle of allocations must work.
  run([](Driver& drv) {
    std::vector<double> data(10, 1.0);
    const DevPtr p = upload(drv, data);
    drv.launch("vector_add_f64", {},
               {p, p + 5 * 8, p, std::int64_t{5}});  // front += back
    auto out = download(drv, p, 10);
    for (int i = 0; i < 5; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], 2.0);
    for (int i = 5; i < 10; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], 1.0);
  });
}

TEST_F(KernelsTest, LargerKernelsChargeMoreTime) {
  sim::Engine engine;
  Device device(engine, tesla_c1060(), KernelRegistry::with_builtins(),
                /*functional=*/false);
  DevPtr p = kNullDevPtr;
  ASSERT_EQ(device.mem_alloc(64_MiB, &p), Result::kSuccess);
  Stream s1(device);
  Stream s2(device);
  auto small = device.launch_async(s1, "fill_f64", {},
                                   {p, std::int64_t{1024}, 0.0}, 0);
  auto large = device.launch_async(s2, "fill_f64", {},
                                   {p, std::int64_t{1024 * 1024}, 0.0}, 0);
  // s2's op queues behind s1's on the compute resource; compare durations.
  EXPECT_GT(large.done_at - small.done_at, 0u);
}

TEST_F(KernelsTest, RegistryListsBuiltins) {
  auto reg = KernelRegistry::with_builtins();
  EXPECT_TRUE(reg->contains("fill_f64"));
  EXPECT_TRUE(reg->contains("vector_add_f64"));
  EXPECT_TRUE(reg->contains("daxpy"));
  EXPECT_TRUE(reg->contains("dscal"));
  EXPECT_TRUE(reg->contains("reduce_sum_f64"));
  EXPECT_FALSE(reg->contains("bogus"));
  EXPECT_THROW((void)reg->lookup("bogus"), std::out_of_range);
  EXPECT_EQ(reg->names().size(), 5u);
}

TEST_F(KernelsTest, CostModelIsMandatory) {
  KernelRegistry reg;
  EXPECT_THROW(reg.register_kernel("bad", KernelDef{nullptr, nullptr}),
               std::invalid_argument);
}

}  // namespace
}  // namespace dacc::gpu
