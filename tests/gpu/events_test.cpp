// CUDA-like events: cross-stream dependencies and host synchronization.
#include <gtest/gtest.h>

#include "gpu/driver.hpp"
#include "util/units.hpp"

namespace dacc::gpu {
namespace {

void run(std::function<void(Driver&, Device&, sim::Context&)> body) {
  sim::Engine engine;
  Device device(engine, tesla_c1060(), KernelRegistry::with_builtins(),
                /*functional=*/false);
  engine.spawn("host", [&](sim::Context& ctx) {
    Driver drv(device, ctx);
    body(drv, device, ctx);
  });
  engine.run();
}

TEST(Events, RecordCapturesStreamPosition) {
  run([](Driver& drv, Device& dev, sim::Context&) {
    Stream s(dev);
    const Event before = drv.record(s);
    EXPECT_EQ(before.at, 0u);
    const DevPtr p = drv.mem_alloc(8_MiB);
    (void)drv.memcpy_htod_async(s, p, util::Buffer::phantom(8_MiB));
    const Event after = drv.record(s);
    EXPECT_GT(after.at, before.at);
    EXPECT_EQ(after.at, s.ready_at());
  });
}

TEST(Events, StreamWaitCreatesCrossStreamDependency) {
  run([](Driver& drv, Device& dev, sim::Context&) {
    const DevPtr p = drv.mem_alloc(32_MiB);
    Stream producer(dev);
    Stream consumer(dev);
    const OpHandle copy =
        drv.memcpy_htod_async(producer, p, util::Buffer::phantom(32_MiB));
    const Event copied = drv.record(producer);
    drv.stream_wait(consumer, copied);
    // The consumer's kernel cannot start before the copy finished.
    const OpHandle k = drv.launch_async(consumer, "fill_f64", {},
                                        {p, std::int64_t{16}, 0.0});
    EXPECT_GE(k.done_at, copy.done_at);
  });
}

TEST(Events, WithoutWaitStreamsOverlap) {
  run([](Driver& drv, Device& dev, sim::Context&) {
    const DevPtr p = drv.mem_alloc(32_MiB);
    Stream producer(dev);
    Stream consumer(dev);
    const OpHandle copy =
        drv.memcpy_htod_async(producer, p, util::Buffer::phantom(32_MiB));
    const OpHandle k = drv.launch_async(consumer, "fill_f64", {},
                                        {p, std::int64_t{16}, 0.0});
    EXPECT_LT(k.done_at, copy.done_at);  // no dependency => overlap
  });
}

TEST(Events, HostSynchronizeWaitsForEvent) {
  run([](Driver& drv, Device& dev, sim::Context& ctx) {
    const DevPtr p = drv.mem_alloc(16_MiB);
    Stream s(dev);
    (void)drv.memcpy_htod_async(s, p, util::Buffer::phantom(16_MiB));
    const Event e = drv.record(s);
    drv.synchronize(e);
    EXPECT_GE(ctx.now(), e.at);
  });
}

TEST(Events, WaitOnPastEventIsNoop) {
  run([](Driver& drv, Device& dev, sim::Context&) {
    Stream a(dev);
    Stream b(dev);
    const DevPtr p = drv.mem_alloc(16_MiB);
    (void)drv.memcpy_htod_async(b, p, util::Buffer::phantom(16_MiB));
    const SimTime before = b.ready_at();
    drv.stream_wait(b, Event{0});  // already in the past
    EXPECT_EQ(b.ready_at(), before);
  });
}

}  // namespace
}  // namespace dacc::gpu
