#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace dacc::util {
namespace {

TEST(Table, PrintsAlignedColumns) {
  Table t({"size", "bandwidth"});
  t.row().add(std::uint64_t{1024}).add(123.456, 1);
  t.row().add(std::uint64_t{2048}).add(7.0, 1);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("size"), std::string::npos);
  EXPECT_NE(out.find("123.5"), std::string::npos);
  EXPECT_NE(out.find("7.0"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.row().add("x").add("y");
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\nx,y\n");
}

TEST(Table, RowCount) {
  Table t({"h"});
  EXPECT_EQ(t.rows(), 0u);
  t.row().add("1");
  t.row().add("2");
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, AddWithoutRowStartsFirstRow) {
  Table t({"h"});
  t.add("implicit");
  EXPECT_EQ(t.rows(), 1u);
}

}  // namespace
}  // namespace dacc::util
