#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace dacc::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  // Sample variance of this classic sequence is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(Percentile, EmptyIsZero) { EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0); }

TEST(Percentile, MedianOfOddCount) {
  EXPECT_DOUBLE_EQ(percentile({3, 1, 2}, 50), 2.0);
}

TEST(Percentile, Interpolates) {
  EXPECT_DOUBLE_EQ(percentile({0, 10}, 25), 2.5);
  EXPECT_DOUBLE_EQ(percentile({0, 10}, 50), 5.0);
}

TEST(Percentile, Extremes) {
  EXPECT_DOUBLE_EQ(percentile({5, 1, 9}, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({5, 1, 9}, 100), 9.0);
}

}  // namespace
}  // namespace dacc::util
