#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace dacc::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  // Sample variance of this classic sequence is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStats, NegativeInputs) {
  RunningStats s;
  for (double x : {-5.0, -1.0, 3.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), -1.0);
  EXPECT_DOUBLE_EQ(s.min(), -5.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  // Sample variance: ((-4)^2 + 0 + 4^2) / 2 = 16.
  EXPECT_NEAR(s.variance(), 16.0, 1e-12);
}

TEST(RunningStats, StddevIsSqrtOfVariance) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_NEAR(s.stddev() * s.stddev(), s.variance(), 1e-12);
}

TEST(RunningStats, MinMaxTrackExtremesNotOrder) {
  RunningStats s;
  s.add(0.0);
  s.add(-100.0);
  s.add(50.0);
  s.add(-2.0);
  EXPECT_DOUBLE_EQ(s.min(), -100.0);
  EXPECT_DOUBLE_EQ(s.max(), 50.0);
}

TEST(Percentile, EmptyIsZero) { EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0); }

TEST(Percentile, SingleElementIsThatElementAtAnyP) {
  EXPECT_DOUBLE_EQ(percentile({7}, 0), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7}, 50), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7}, 100), 7.0);
}

TEST(Percentile, InterpolatesWithinUnsortedInput) {
  // p=75 over sorted {1,2,3,4}: rank 2.25 -> 3 + 0.25 * (4 - 3).
  EXPECT_DOUBLE_EQ(percentile({4, 1, 3, 2}, 75), 3.25);
}

TEST(Percentile, NegativeValues) {
  EXPECT_DOUBLE_EQ(percentile({-10, -20, -30}, 50), -20.0);
  EXPECT_DOUBLE_EQ(percentile({-10, 10}, 50), 0.0);
}

TEST(Percentile, MedianOfOddCount) {
  EXPECT_DOUBLE_EQ(percentile({3, 1, 2}, 50), 2.0);
}

TEST(Percentile, Interpolates) {
  EXPECT_DOUBLE_EQ(percentile({0, 10}, 25), 2.5);
  EXPECT_DOUBLE_EQ(percentile({0, 10}, 50), 5.0);
}

TEST(Percentile, Extremes) {
  EXPECT_DOUBLE_EQ(percentile({5, 1, 9}, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({5, 1, 9}, 100), 9.0);
}

}  // namespace
}  // namespace dacc::util
