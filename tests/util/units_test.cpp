#include "util/units.hpp"

#include <gtest/gtest.h>

namespace dacc {
namespace {

TEST(Units, SizeLiterals) {
  EXPECT_EQ(1_KiB, 1024u);
  EXPECT_EQ(1_MiB, 1024u * 1024u);
  EXPECT_EQ(1_GiB, 1024u * 1024u * 1024u);
  EXPECT_EQ(64_MiB, 67108864u);
}

TEST(Units, TimeLiterals) {
  EXPECT_EQ(1_us, 1000u);
  EXPECT_EQ(1_ms, 1000000u);
  EXPECT_EQ(1_s, 1000000000u);
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(to_seconds(1_s), 1.0);
  EXPECT_DOUBLE_EQ(to_us(5_us), 5.0);
  EXPECT_DOUBLE_EQ(to_ms(2_ms), 2.0);
}

TEST(Units, BandwidthCalculation) {
  // 1 MiB in 1 ms = 1000 MiB/s (within rounding).
  EXPECT_NEAR(mib_per_s(1_MiB, 1_ms), 1000.0, 0.01);
  EXPECT_DOUBLE_EQ(mib_per_s(123, 0), 0.0);
}

TEST(Units, TransferTimeRoundsUp) {
  // 1 MiB at 1024 MiB/s is exactly 1/1024 s.
  EXPECT_EQ(transfer_time(1_MiB, 1024.0), 976563u);
  EXPECT_EQ(transfer_time(0, 1024.0), 0u);
  EXPECT_EQ(transfer_time(100, 0.0), 0u);
}

TEST(Units, TransferTimeRoundTripsBandwidth) {
  const auto t = transfer_time(64_MiB, 2660.0);
  EXPECT_NEAR(mib_per_s(64_MiB, t), 2660.0, 0.1);
}

}  // namespace
}  // namespace dacc
