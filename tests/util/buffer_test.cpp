#include "util/buffer.hpp"

#include <gtest/gtest.h>

#include <array>

namespace dacc::util {
namespace {

TEST(Buffer, DefaultIsEmptyBacked) {
  Buffer b;
  EXPECT_TRUE(b.is_backed());
  EXPECT_TRUE(b.empty());
}

TEST(Buffer, BackedZeroInitializes) {
  auto b = Buffer::backed_zero(16);
  EXPECT_EQ(b.size(), 16u);
  for (std::byte x : b.bytes()) EXPECT_EQ(x, std::byte{0});
}

TEST(Buffer, TypedRoundTrip) {
  std::array<double, 3> values{1.0, 2.5, -7.0};
  auto b = Buffer::of<double>(values);
  EXPECT_EQ(b.size(), 24u);
  auto view = b.as<double>();
  EXPECT_EQ(view[0], 1.0);
  EXPECT_EQ(view[1], 2.5);
  EXPECT_EQ(view[2], -7.0);
}

TEST(Buffer, MutableTypedView) {
  auto b = Buffer::backed_zero(8);
  b.as_mutable<double>()[0] = 42.0;
  EXPECT_EQ(b.as<double>()[0], 42.0);
}

TEST(Buffer, AsRejectsMisalignedSize) {
  auto b = Buffer::backed_zero(10);
  EXPECT_THROW((void)b.as<double>(), std::logic_error);
}

TEST(Buffer, PhantomHasSizeButNoBytes) {
  auto b = Buffer::phantom(1024);
  EXPECT_EQ(b.size(), 1024u);
  EXPECT_FALSE(b.is_backed());
  EXPECT_THROW((void)b.bytes(), std::logic_error);
}

TEST(Buffer, SliceOfBackedCopies) {
  std::array<std::uint32_t, 4> values{10, 20, 30, 40};
  auto b = Buffer::of<std::uint32_t>(values);
  auto s = b.slice(4, 8);
  EXPECT_EQ(s.size(), 8u);
  EXPECT_EQ(s.as<std::uint32_t>()[0], 20u);
  EXPECT_EQ(s.as<std::uint32_t>()[1], 30u);
}

TEST(Buffer, SliceOfPhantomIsPhantom) {
  auto b = Buffer::phantom(100);
  auto s = b.slice(10, 20);
  EXPECT_EQ(s.size(), 20u);
  EXPECT_FALSE(s.is_backed());
}

TEST(Buffer, SliceOutOfRangeThrows) {
  auto b = Buffer::backed_zero(10);
  EXPECT_THROW((void)b.slice(5, 6), std::out_of_range);
}

TEST(Buffer, WriteAtCopiesBytes) {
  auto dst = Buffer::backed_zero(16);
  std::array<std::uint64_t, 1> v{0xdeadbeefull};
  dst.write_at(8, Buffer::of<std::uint64_t>(v));
  EXPECT_EQ(dst.as<std::uint64_t>()[0], 0u);
  EXPECT_EQ(dst.as<std::uint64_t>()[1], 0xdeadbeefull);
}

TEST(Buffer, WriteAtPhantomOnlyChecksBounds) {
  auto dst = Buffer::phantom(16);
  EXPECT_NO_THROW(dst.write_at(8, Buffer::backed_zero(8)));
  EXPECT_THROW(dst.write_at(9, Buffer::backed_zero(8)), std::out_of_range);
}

TEST(Buffer, WriteBackedFromPhantomKeepsData) {
  auto dst = Buffer::backed_zero(8);
  dst.as_mutable<std::uint64_t>()[0] = 7;
  // Phantom source: size-checked no-op (used when mixing modes in tests).
  dst.write_at(0, Buffer::phantom(8));
  EXPECT_EQ(dst.as<std::uint64_t>()[0], 7u);
}

}  // namespace
}  // namespace dacc::util
