#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dacc::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformRespectsRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.uniform(-3.0, 5.0);
    EXPECT_GE(d, -3.0);
    EXPECT_LT(d, 5.0);
  }
}

TEST(Rng, NextBelowIsInRange) {
  Rng rng(99);
  std::vector<int> histogram(10, 0);
  for (int i = 0; i < 100000; ++i) {
    const auto v = rng.next_below(10);
    ASSERT_LT(v, 10u);
    ++histogram[static_cast<std::size_t>(v)];
  }
  // Roughly uniform: each bucket within 10% of expectation.
  for (int count : histogram) EXPECT_NEAR(count, 10000, 1000);
}

TEST(Rng, NormalHasZeroMeanUnitVariance) {
  Rng rng(5);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, ExponentialHasCorrectMean) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

}  // namespace
}  // namespace dacc::util
